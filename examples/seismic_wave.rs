//! Geophysics: 3D acoustic wave propagation with a 4th-order
//! finite-difference Laplacian on the sparse-TCU pipeline.
//!
//! Second-order-in-time wave equation, `p_next = 2p − p_prev + c²Δt² ∇²p`,
//! where the ∇² stencil (the zoo's `acoustic-3d-fd4`, a radius-2 3D star)
//! runs through SparStencil and the leapfrog update happens on the host —
//! the standard split in production RTM codes. A point source is injected
//! at the center; we track the expanding wavefront radius.
//!
//! The host applies its own update between stencil applications, so each
//! Laplacian takes a *different* input: this is exactly what
//! [`Simulation::load`] is for — one session, compiled and allocated
//! once, re-loaded every time step with zero further heap allocations
//! (the pre-session API re-paid embedding + buffer setup on every step).
//!
//! ```sh
//! cargo run --release --example seismic_wave
//! ```

use sparstencil::prelude::*;

fn main() {
    let laplacian = sparstencil_zoo::find("acoustic-3d-fd4")
        .expect("zoo kernel")
        .kernel();
    let n = 48;
    let shape = [n, n, n];
    let c2dt2 = 0.05f32; // c²Δt² (stability-safe for this operator)

    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    let exec = Executor::<f32>::new(&laplacian, shape, &opts).expect("compile ∇²");
    println!(
        "== 3D acoustic wave (FD4 star, {} points) ==\n",
        laplacian.points()
    );
    println!(
        "grid {n}³ | layout ({}, {}) | operand k'' = {} | strategy {}",
        exec.plan().plan.r1,
        exec.plan().plan.r2,
        exec.plan().geom.k_logical,
        exec.plan().strategy_used
    );

    // Ricker-ish point source at the center.
    let mut p = Grid::<f32>::zeros_3d(n, n, n);
    let c = n / 2;
    p.set(c, c, c, 1.0);
    let mut p_prev = p.clone();

    // One persistent ∇² session for the whole shot: every time step
    // re-loads the current pressure field into the same buffers.
    let mut lap_sim = exec.session(&p);
    let mut total_mma = 0u64;

    println!("\n  step   wavefront radius (cells)   max |p|");
    println!("  ----   ------------------------   -------");
    for step in 1..=10 {
        // ∇²p through the sparse-TCU pipeline. The valid-region output is
        // anchored at the kernel corner: output (z,y,x) holds the
        // Laplacian centred at (z+2, y+2, x+2) for this radius-2 star.
        if step > 1 {
            lap_sim.load(&p); // reuse: no reallocation, counters cleared
        }
        lap_sim.step();
        total_mma += lap_sim
            .stats()
            .expect("engine sessions report stats")
            .counters
            .n_mma();
        let lap = lap_sim.field();
        let r = 2usize;
        let mut p_next = p.clone();
        for z in r..n - r {
            for y in r..n - r {
                for x in r..n - r {
                    let lap_v = lap.get(z - r, y - r, x - r);
                    let v = 2.0 * p.get(z, y, x) - p_prev.get(z, y, x) + c2dt2 * lap_v;
                    p_next.set(z, y, x, v);
                }
            }
        }
        p_prev = p;
        p = p_next;

        // Wavefront: farthest cell with non-negligible amplitude.
        let mut radius = 0f64;
        let mut maxamp = 0f32;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let a = p.get(z, y, x).abs();
                    maxamp = maxamp.max(a);
                    if a > 1e-4 {
                        let d = (((z as f64 - c as f64).powi(2)
                            + (y as f64 - c as f64).powi(2)
                            + (x as f64 - c as f64).powi(2))
                        .sqrt())
                        .ceil();
                        radius = radius.max(d);
                    }
                }
            }
        }
        if step % 2 == 0 {
            println!("  {step:>4}   {radius:>24.0}   {maxamp:>7.4}");
        }
    }

    lap_sim.load(&p);
    lap_sim.step_n(4);
    let stats = lap_sim.stats().expect("engine sessions report stats");
    println!(
        "\n  pipeline stats: {:.1} GStencil/s modelled, {} MMAs across the shot, occupancy {:.0}%",
        stats.gstencil_per_sec,
        total_mma + stats.counters.n_mma(),
        stats.occupancy * 100.0
    );
    drop(lap_sim);
    let err = exec.verify(&p, 1);
    println!("  Laplacian verification vs reference: {err:.2e}");
}
