//! Define a stencil in the textual kernel format and run it through the
//! whole pipeline — the workflow for kernels that are data, not code.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use sparstencil::parse::{format_kernel, parse_kernel};
use sparstencil::prelude::*;

const KERNEL_SPEC: &str = r#"
# Anisotropic 9-point advection-diffusion operator: stronger coupling
# along x (flow direction), weak diagonals.
kernel advdiff-aniso
dims 2
extent 3 3
weights
0.01  0.06 0.01
0.14  0.50 0.20
0.01  0.06 0.01
"#;

fn main() {
    let kernel = parse_kernel(KERNEL_SPEC).expect("kernel spec parses");
    println!("== custom kernel through SparStencil ==\n");
    println!(
        "parsed `{}`: {} points over a {:?} bounding box",
        kernel.name(),
        kernel.points(),
        kernel.extent()
    );

    let shape = [1, 200, 200];
    let exec = Executor::<f32>::new(&kernel, shape, &Options::default()).expect("compile");
    let plan = exec.plan();
    println!(
        "compiled: layout ({}, {}), k' {} -> k'' {} ({} pads, {} matching)",
        plan.plan.r1,
        plan.plan.r2,
        plan.geom.k_prime,
        plan.geom.k_logical,
        plan.geom.pads,
        plan.strategy_used
    );

    // A session keeps the compiled plan's buffers live across steps: the
    // 20 steps here pay setup once, and the live field is readable
    // without extraction.
    let input = Grid::<f32>::smooth_random(2, shape);
    let mut sim = exec.session(&input);
    sim.step_n(20);
    let stats = sim.stats().expect("engine sessions report stats");
    println!(
        "ran {} steps: {:.1} GStencil/s modelled, sample out[100][100] = {:.5}",
        sim.steps(),
        stats.gstencil_per_sec,
        sim.field().get(0, 100, 100)
    );

    let err = exec.verify(&input, 5);
    println!("verification (5 steps) vs reference: {err:.2e}");
    assert!(err < 5e-2);

    // The format round-trips, so kernels can be stored alongside results.
    let text = format_kernel(&kernel);
    let reparsed = parse_kernel(&text).unwrap();
    assert_eq!(reparsed, kernel);
    println!("\nround-tripped spec:\n{text}");
}
