//! Sharded-grid execution: one semantic grid decomposed into
//! shard-sessions over the batch engine, interior faces wired by a
//! plan-time halo-exchange schedule — stepped in lockstep and verified
//! bit-identical to the unsharded session.
//!
//! ```sh
//! cargo run --release --example sharded
//! ```

use std::sync::{Arc, Mutex};

use sparstencil::prelude::*;
use sparstencil_shard::{Decomposition, ShardCheckpoint, ShardedSimulation};

fn main() {
    // A 3D 27-point kernel over a domain big enough to split 4 ways.
    let kernel = StencilKernel::box3d27p();
    // Valid extents [8, 16, 18]: z slab-splits 4 ways (no alignment
    // constraint on the outermost axis), y pencil-splits 2 ways into
    // chunks of 8 — a multiple of the r2 = 4 tile period.
    let shape = [10, 18, 20];
    let input = Grid::<f32>::smooth_random(3, shape);
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };

    // The unsharded oracle: one session over the whole grid.
    let exec = Executor::<f32>::new(&kernel, shape, &opts).expect("compilation failed");
    let mut solo = exec.session(&input);

    // The same grid as 4 shard-sessions. The slab decomposition picks
    // the outermost splittable axis; interior faces become typed
    // `HaloSegment` copies, true domain boundaries keep the mirror.
    let mut sharded = ShardedSimulation::<f32>::new(&kernel, &input, &opts, 4);
    let decomp = sharded.decomposition();
    println!("== SparStencil sharded execution ==\n");
    println!(
        "domain         : {:?} split {:?} -> {} shards of {:?}",
        sharded.shape(),
        decomp.parts,
        sharded.n_shards(),
        sharded.shard_shape()
    );
    println!(
        "halo exchange  : {} cells copied between shards per step",
        sharded.exchange_cells()
    );

    // A probe sees the seamless cross-shard view every step.
    type Frames = Arc<Mutex<Vec<(usize, Grid<f32>)>>>;
    let frames: Frames = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&frames);
    sharded.probe(1, move |step, view| {
        sink.lock()
            .expect("probe sink")
            .push((step, view.to_grid()));
    });

    // Step both in lockstep: every probed step must match the oracle
    // bit for bit — the exchange schedule never costs a bit.
    for _ in 0..5 {
        sharded.step();
        solo.step();
        assert_eq!(
            sharded.to_grid(),
            solo.to_grid(),
            "sharded and unsharded fields diverged"
        );
    }
    // Scoped lock: the probe re-locks this sink on every later step.
    let probed_steps = frames.lock().expect("probe sink").len();
    println!("verified       : {probed_steps} probed steps bit-identical to the unsharded session");

    // Reads route to the owning shard with no assembly pass.
    let (owner, local, _) = sharded.field().locate(5, 10, 10);
    println!(
        "field view     : global (5, 10, 10) lives in shard {owner} at local {:?}",
        local
    );

    // Checkpoint, diverge, rewind, replay: the restored trajectory is
    // the same bit pattern as the first pass.
    let mut ck = ShardCheckpoint::new();
    sharded.checkpoint_into(&mut ck);
    sharded.step_n(3);
    let ahead = sharded.to_grid();
    sharded.restore(&ck).expect("checkpoint is filled");
    sharded.step_n(3);
    assert_eq!(sharded.to_grid(), ahead, "replay after restore diverged");
    println!(
        "checkpoint     : rewound to step {} and replayed to an identical step {}",
        ck.steps(),
        sharded.steps()
    );

    // Pencil decompositions work too: split two axes at once.
    let pencil = Decomposition::new(&kernel, shape, [2, 2, 1]).expect("domain divides 2x2x1");
    let mut penciled =
        ShardedSimulation::<f32>::try_with_decomposition(&kernel, &input, &opts, pencil, 2)
            .expect("pencil decomposition compiles");
    penciled.step_n(sharded.steps());
    assert_eq!(
        penciled.to_grid(),
        sharded.to_grid(),
        "pencil and slab decompositions diverged"
    );
    println!(
        "pencil         : [2, 2, 1] decomposition matches the slab run at step {}",
        penciled.steps()
    );
}
