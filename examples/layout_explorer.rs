//! Inside Automatic Kernel Generation: watch the layout explorer sweep
//! the `(r1, r2)` space (Equation 11), compare matching strategies, and
//! dump the generated CUDA kernel.
//!
//! ```sh
//! cargo run --release --example layout_explorer
//! ```

use sparstencil::convert::Strategy;
use sparstencil::layout::{self, ExecMode};
use sparstencil::prelude::*;

fn main() {
    let kernel = StencilKernel::box2d49p();
    let shape = [1, 2054, 2054];
    let gpu = GpuConfig::a100();
    let frag = FragmentShape::sparse_fp16();

    println!(
        "== layout exploration for {} on {} ==\n",
        kernel.name(),
        gpu.name
    );
    let exploration = layout::explore(
        &kernel,
        shape,
        frag,
        ExecMode::SparseTcu,
        Precision::Fp16,
        &gpu,
        8,
    );

    println!("  (r1,r2)   m'   k'->k''   N_MMA      T_compute  T_memory   T_total");
    println!("  -------   --   -------   --------   ---------  --------   -------");
    let mut shown = 0;
    for e in &exploration.evaluated {
        if e.geom.r1 % 2 == 0 && e.geom.r2 % 2 == 0 || (e.geom.r1, e.geom.r2) == exploration.best {
            let marker = if (e.geom.r1, e.geom.r2) == exploration.best {
                " <-- best"
            } else {
                ""
            };
            println!(
                "  ({:>2},{:>2})   {:>3}   {:>3}->{:<3}   {:>8}   {:>7.3}ms  {:>7.3}ms  {:>6.3}ms{marker}",
                e.geom.r1, e.geom.r2, e.geom.m_prime, e.geom.k_prime, e.geom.k_logical,
                e.geom.n_mma, e.t_compute * 1e3, e.t_memory * 1e3, e.t_total * 1e3
            );
            shown += 1;
        }
    }
    println!(
        "  ({} of {} candidates shown)\n",
        shown,
        exploration.evaluated.len()
    );

    // Matching strategies: Algorithm 1 vs the Blossom exact solver.
    println!("== matching strategies at the chosen layout ==\n");
    let (r1, r2) = exploration.best;
    for (label, strategy) in [
        ("hierarchical (Alg. 1)", Strategy::Hierarchical),
        ("blossom (exact)", Strategy::Blossom),
    ] {
        let [_, ey, ex] = kernel.extent();
        let plan = sparstencil::crush::CrushPlan::new(ey, ex, r1, r2);
        let a = sparstencil::crush::build_a_prime(&kernel.slice2d(0), &plan);
        let t0 = std::time::Instant::now();
        let conv = sparstencil::convert::convert(&a, &plan, strategy);
        let dt = t0.elapsed();
        println!(
            "  {label:<22} pads: {:>3}   k'': {:>4}   time: {:?}",
            conv.pad_count,
            conv.k_converted(),
            dt
        );
    }

    // Compile with the winning configuration and emit CUDA.
    println!("\n== generated kernel (head) ==\n");
    let exec = Executor::<f32>::new(&kernel, [1, 262, 262], &Options::default()).unwrap();
    for line in exec.cuda_source().lines().take(14) {
        println!("  {line}");
    }
    println!("  ...");
}
