//! Fluid dynamics: vorticity diffusion in a 2D periodic-free shear layer.
//!
//! Uses the zoo's `vorticity-2d-13p` operator (a radius-2 star) to damp a
//! double shear-layer vorticity field — the class of workload the paper's
//! introduction motivates ("the backbone of applications such as fluid
//! dynamics"). The whole time loop is **one** persistent session: the
//! field never leaves the engine's buffers between steps, and a probe
//! reports enstrophy decay (a physical sanity check: diffusion must
//! monotonically dissipate it) every 8 steps while the run is in flight.
//! Compare with the pre-session API, which re-embedded and re-extracted
//! the grid for every 8-step chunk.
//!
//! ```sh
//! cargo run --release --example fluid_dynamics
//! ```

use sparstencil::prelude::*;

fn enstrophy(field: &FieldView<'_, f32>) -> f64 {
    field.iter().map(|v| (v as f64) * (v as f64)).sum::<f64>() / field.len() as f64
}

fn main() {
    let kernel = sparstencil_zoo::find("vorticity-2d-13p")
        .expect("zoo kernel")
        .kernel();
    let n = 256;
    let shape = [1, n, n];

    // Double shear layer: two opposite-sign vortex sheets.
    let input = Grid::<f32>::from_fn_3d(2, shape, |_, y, x| {
        let fy = y as f32 / n as f32;
        let fx = x as f32 / n as f32;
        let sheet1 = (-(fy - 0.35f32).powi(2) * 400.0).exp();
        let sheet2 = -(-(fy - 0.65f32).powi(2) * 400.0).exp();
        (sheet1 + sheet2) * (1.0 + 0.05 * (8.0 * std::f32::consts::PI * fx).sin())
    });

    let exec = Executor::<f32>::new(&kernel, shape, &Options::default())
        .expect("compile vorticity operator");

    println!("== vorticity diffusion on simulated sparse TCUs ==\n");
    println!(
        "operator {} | layout ({}, {}) | k'' = {}",
        kernel.name(),
        exec.plan().plan.r1,
        exec.plan().plan.r2,
        exec.plan().geom.k_logical
    );

    // One session for the whole simulation; a probe observes the live
    // field every 8 steps with zero copies.
    let mut sim = exec.session(&input);
    println!("\n  step   enstrophy");
    println!("  ----   ---------");
    // Probe closures are `Send` (sessions can be handed to another
    // thread), so the running state is moved into the closure rather
    // than shared through a `Cell`.
    let mut last = enstrophy(&sim.field());
    println!("  {:>4}   {last:.6}", 0);
    sim.probe(8, move |step, field| {
        let e = enstrophy(field);
        println!("  {step:>4}   {e:.6}");
        assert!(
            e <= last * 1.0001,
            "diffusion must dissipate enstrophy (step {step})"
        );
        last = e;
    });
    sim.step_n(40);

    let stats = sim.stats().expect("engine sessions report stats");
    println!(
        "\n  40 steps: {:.1} GStencil/s modelled, {} fragment MMAs",
        stats.gstencil_per_sec,
        stats.counters.n_mma()
    );
    drop(sim);

    let err = exec.verify(&input, 3);
    println!("  verification vs scalar reference (3 steps): {err:.2e}");
}
