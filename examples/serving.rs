//! Serving: run a supervised multi-tenant pool over one compiled plan —
//! admission control with typed rejections, per-tenant step budgets,
//! deadline-bounded stepping with a latency histogram, and the
//! self-healing loop recovering a faulted tenant live.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::time::{Duration, Instant};

use sparstencil::prelude::*;
use sparstencil_serve::{ServeError, ServeEvent, ServePolicy, SessionManager, TenantStatus};

fn main() {
    // One compiled plan serves every tenant: compilation, layout
    // exploration, and sparsity conversion are paid once.
    let kernel = StencilKernel::box2d9p();
    let shape = [1, 96, 96];
    let exec =
        Executor::<f32>::new(&kernel, shape, &Options::default()).expect("compilation failed");

    // Capacity policy: at most 6 tenants, tight checkpoint cadence so
    // recovery rewinds are short.
    let policy = ServePolicy {
        max_sessions: 6,
        checkpoint_every: 4,
        checkpoint_ring: 3,
        backoff_base: 1,
        backoff_cap: 4,
        ..ServePolicy::default()
    };
    let mut mgr = SessionManager::new(exec.plan(), policy);

    println!("== SparStencil serving ==\n");

    // Admit a fleet of tenants, each with its own initial condition.
    let tenants: Vec<_> = (0..6)
        .map(|s| {
            mgr.admit(&Grid::<f32>::smooth_random(2 + s, shape))
                .expect("within capacity")
        })
        .collect();
    println!(
        "admitted       : {} tenants over one plan",
        mgr.live_sessions()
    );

    // The 7th admission is refused with a typed reason, not a panic.
    match mgr.admit(&Grid::<f32>::smooth_random(99, shape)) {
        Err(ServeError::Rejected(reason)) => println!("admission gate : {reason}"),
        other => panic!("expected a rejection, got {other:?}"),
    }

    // One tenant gets a step budget: it parks at the limit (zero cost
    // per round) while the others keep streaming.
    let budgeted = tenants[5];
    mgr.set_step_budget(budgeted, Some(10))
        .expect("tenant is live");

    // Serve against a wall-clock deadline; every round's latency lands
    // in a fixed-bucket histogram.
    let report = mgr.run_until(Instant::now() + Duration::from_millis(250));
    let hist = mgr.latency();
    println!(
        "\nserved         : {} rounds before the deadline",
        report.rounds
    );
    println!(
        "step latency   : p50 {:.3} ms, p99 {:.3} ms (n = {})",
        hist.quantile(0.5).as_secs_f64() * 1e3,
        hist.quantile(0.99).as_secs_f64() * 1e3,
        hist.count()
    );
    println!(
        "budget gate    : {budgeted} parked at {} steps ({:?})",
        mgr.steps(budgeted).expect("tenant is live"),
        mgr.status(budgeted).expect("tenant is live")
    );

    // Self-healing: fault a tenant administratively (an organic NaN
    // storm or panic takes the same path) and let the supervisor
    // restore it from its checkpoint ring, replay it, and back it off.
    let victim = tenants[0];
    let pre_fault_steps = mgr.steps(victim).expect("tenant is live");
    mgr.quarantine(victim).expect("tenant is live");
    assert!(matches!(mgr.status(victim), Some(TenantStatus::Faulted(_))));
    mgr.drain_events();
    mgr.step(); // the supervision round that heals
    for event in mgr.drain_events() {
        if let ServeEvent::Recovered {
            tenant,
            fault,
            restored_to_step,
            replayed,
            sit_out_rounds,
            ..
        } = event
        {
            println!("\nfault          : {fault}");
            println!(
                "recovered      : {tenant} restored to step {restored_to_step}, \
                 replayed {replayed}, sitting out {sit_out_rounds} round(s)"
            );
        }
    }
    assert_eq!(
        mgr.steps(victim),
        Some(pre_fault_steps),
        "recovery replays to the pre-fault step count"
    );

    // A few more rounds: the backoff expires and the victim rejoins.
    for _ in 0..6 {
        mgr.step();
    }
    assert_eq!(mgr.status(victim), Some(TenantStatus::Running));
    println!(
        "rejoined       : {victim} running again at step {}",
        mgr.steps(victim).expect("tenant is live")
    );

    // Churn: retire one tenant, admit another into the freed capacity —
    // survivors' buffers are never rebuilt.
    mgr.retire(tenants[1]).expect("tenant is live");
    let fresh = mgr
        .admit(&Grid::<f32>::smooth_random(42, shape))
        .expect("capacity was just freed");
    mgr.step();
    println!(
        "churn          : retired {}, admitted {fresh} (now {} live)",
        tenants[1],
        mgr.live_sessions()
    );

    // The victim's trajectory is bit-identical to a solo session run
    // the same number of steps — supervision never cost a bit.
    let steps = mgr.steps(victim).expect("tenant is live");
    let mut solo = exec.session(&Grid::<f32>::smooth_random(2, shape));
    solo.step_n(steps);
    assert_eq!(
        mgr.to_grid(victim).expect("tenant is live"),
        solo.to_grid(),
        "recovered tenant must match its solo twin"
    );
    println!("\nverified       : recovered tenant bit-identical to a solo twin at {steps} steps");
}
