//! Quickstart: compile a stencil for the simulated sparse tensor cores,
//! open a persistent simulation session, step it with a mid-run probe,
//! verify against the scalar reference, and inspect what the compiler
//! decided.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sparstencil::prelude::*;

fn main() {
    // A 2D 9-point box blur (Table 2's Box-2D9P) over a 258×258 grid.
    let kernel = StencilKernel::box2d9p();
    let shape = [1, 258, 258];

    // Compile once: layout exploration → layout morphing → structured
    // sparsity conversion → kernel generation. Options::default() is
    // FP16 on the simulated A100's sparse tensor cores.
    let exec =
        Executor::<f32>::new(&kernel, shape, &Options::default()).expect("compilation failed");
    let plan = exec.plan();

    println!("== SparStencil quickstart ==\n");
    println!(
        "kernel        : {} ({} points)",
        kernel.name(),
        kernel.points()
    );
    println!(
        "chosen layout : (r1, r2) = ({}, {})",
        plan.plan.r1, plan.plan.r2
    );
    println!(
        "operand shape : m' = {}, k' = {} -> k'' = {} (pads: {}, strategy: {})",
        plan.geom.m_prime,
        plan.geom.k_prime,
        plan.geom.k_logical,
        plan.geom.pads,
        plan.strategy_used
    );
    println!(
        "metadata      : {} B, lookup tables: {} B",
        plan.metadata_bytes(),
        plan.lut_bytes()
    );

    // Open a session: the input is embedded and quantized and all
    // buffers are allocated HERE, once — every step after this is
    // allocation-free, and the live field stays observable throughout.
    let input = Grid::<f32>::smooth_random(2, shape);
    let mut sim = exec.session(&input);

    // A probe watches the running simulation every 5 steps without
    // copying the field (zero-copy FieldView).
    println!("\n  step   mean field value");
    sim.probe(5, |step, field| {
        let mean: f64 = field.iter().map(|v| v as f64).sum::<f64>() / field.len() as f64;
        println!("  {step:>4}   {mean:.6}");
    });

    // Step incrementally: 10 steps now ...
    sim.step_n(10);
    // ... and, because the session retains its state, 10 more later
    // cost no setup at all.
    sim.step_n(10);

    let stats = sim.stats().expect("engine sessions report stats");
    println!("\nafter {} steps:", sim.steps());
    println!("  fragment MMAs issued : {}", stats.counters.n_mma());
    println!(
        "  modelled kernel time : {:.3} ms",
        stats.total_seconds * 1e3
    );
    println!(
        "  throughput           : {:.1} GStencil/s",
        stats.gstencil_per_sec
    );
    println!(
        "  sample value         : out[128][128] = {:.5}",
        sim.field().get(0, 128, 128)
    );

    // Verify several checkpoints against the scalar f64 reference —
    // one session, one running reference, no per-count setup.
    println!("\nverification vs reference:");
    for (iters, err) in exec.verify_at(&input, &[1, 5, 10]) {
        println!("  {iters:>3} steps : max relative error = {err:.2e}");
        assert!(err < 0.5, "verification failed at {iters} iters");
    }

    // Fault tolerance: under HealthPolicy::Quarantine the session
    // sidelines itself the moment a step stores a non-finite value, and
    // a caller-held checkpoint rewinds it to the last good state — no
    // re-setup, no reallocation (see the session module's "Failure
    // model" docs).
    sim.set_health_policy(HealthPolicy::Quarantine);
    let checkpoint = sim.checkpoint().expect("engine sessions checkpoint");
    let mut bad = sim.to_grid();
    bad.set(0, 128, 128, f32::NAN); // a corrupted upstream input
    sim.load(&bad); // load() is the unchecked fast path
    match sim.try_step_n(5) {
        Err(e) => println!("\nfault detected : {e}"),
        Ok(()) => unreachable!("the NaN must quarantine the session"),
    }
    sim.restore(&checkpoint).expect("same-session restore");
    sim.step_n(5); // recovered: stepping resumes from the good state
    println!(
        "recovered      : rolled back to step {}, now at step {}",
        checkpoint.steps(),
        sim.steps()
    );

    // The CUDA kernel the code generator would emit on real hardware.
    let cuda = exec.cuda_source();
    println!(
        "\ngenerated CUDA kernel: {} lines (see Executor::cuda_source)",
        cuda.lines().count()
    );
}
