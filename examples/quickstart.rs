//! Quickstart: compile a stencil for the simulated sparse tensor cores,
//! run it, verify against the scalar reference, and inspect what the
//! compiler decided.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sparstencil::prelude::*;

fn main() {
    // A 2D 9-point box blur (Table 2's Box-2D9P) over a 258×258 grid.
    let kernel = StencilKernel::box2d9p();
    let shape = [1, 258, 258];

    // Compile: layout exploration → layout morphing → structured sparsity
    // conversion → kernel generation. Options::default() is FP16 on the
    // simulated A100's sparse tensor cores.
    let exec =
        Executor::<f32>::new(&kernel, shape, &Options::default()).expect("compilation failed");
    let plan = exec.plan();

    println!("== SparStencil quickstart ==\n");
    println!(
        "kernel        : {} ({} points)",
        kernel.name(),
        kernel.points()
    );
    println!(
        "chosen layout : (r1, r2) = ({}, {})",
        plan.plan.r1, plan.plan.r2
    );
    println!(
        "operand shape : m' = {}, k' = {} -> k'' = {} (pads: {}, strategy: {})",
        plan.geom.m_prime,
        plan.geom.k_prime,
        plan.geom.k_logical,
        plan.geom.pads,
        plan.strategy_used
    );
    println!(
        "metadata      : {} B, lookup tables: {} B",
        plan.metadata_bytes(),
        plan.lut_bytes()
    );

    // Run 10 time steps on a smooth random field.
    let input = Grid::<f32>::smooth_random(2, shape);
    let (output, stats) = exec.run(&input, 10);
    println!("\nafter 10 steps:");
    println!("  fragment MMAs issued : {}", stats.counters.n_mma());
    println!(
        "  modelled kernel time : {:.3} ms",
        stats.total_seconds * 1e3
    );
    println!(
        "  throughput           : {:.1} GStencil/s",
        stats.gstencil_per_sec
    );
    println!(
        "  sample value         : out[128][128] = {:.5}",
        output.get(0, 128, 128)
    );

    // Verify against the scalar f64 reference.
    let err = exec.verify(&input, 10);
    println!("\nverification  : max relative error vs reference = {err:.2e}");
    assert!(err < 0.5, "verification failed");

    // The CUDA kernel the code generator would emit on real hardware.
    let cuda = exec.cuda_source();
    println!(
        "\ngenerated CUDA kernel: {} lines (see Executor::cuda_source)",
        cuda.lines().count()
    );
}
