//! Adaptive planning: compile a handful of zoo kernels through
//! [`Executor::auto`] and compare the tuner's choice against the fixed
//! default — same results bit-for-bit, different plan shapes.
//!
//! ```sh
//! cargo run --release --example auto_tune
//! ```

use sparstencil::prelude::*;

fn main() {
    println!("== SparStencil auto-tuned planning ==\n");
    println!(
        "{:<22} {:>8} {:>8} {:>7} {:>9} {:>9} {:>7}",
        "kernel", "default", "tuned", "policy", "mod.cost", "mod.def", "biteq"
    );

    for name in [
        "jacobi-2d-5p",
        "acoustic-2d-fd8",
        "phase-aniso-2d-9p",
        "motion-blur-5x5",
        "wave-1d-fd8",
        "lbm-d3q19",
    ] {
        let entry = sparstencil_zoo::find(name).expect("zoo kernel");
        let kernel = entry.kernel();
        let shape = entry.shape;
        let opts = Options::default();

        let fixed = Executor::<f32>::new(&kernel, shape, &opts).expect("compile");
        let (tuned, choice) = Executor::<f32>::auto(&kernel, shape, &opts).expect("tune");

        // The tuner's contract: choices change speed, never results.
        let input = Grid::<f32>::smooth_random(kernel.dims(), shape);
        let (a, _) = fixed.run(&input, 3);
        let (b, _) = tuned.run(&input, 3);
        let bit_identical = a.as_slice() == b.as_slice();
        assert!(bit_identical, "{name}: tuned plan diverged from default");

        println!(
            "{:<22} {:>8} {:>8} {:>7} {:>9.0} {:>9.0} {:>7}",
            name,
            format!("{}x{}", choice.default_layout.0, choice.default_layout.1),
            format!("{}x{}", choice.layout.0, choice.layout.1),
            format!(
                "{}{}",
                if choice.policy.shared_stage { "S" } else { "-" },
                if choice.policy.prefetch { "P" } else { "-" }
            ),
            choice.cost,
            choice.default_cost,
            bit_identical
        );
    }

    println!("\nEvery tuned plan is bit-identical to its fixed-default oracle.");
}
