//! Stencil kernel definitions.
//!
//! A stencil is a weight pattern over a `d`-dimensional neighborhood
//! (§2.2): *star* stencils weight the center and axis-aligned neighbors,
//! *box* stencils weight a full square/cube. We store every kernel as a
//! dense weight cuboid over its bounding box (zeros where a star pattern
//! has no point) with the anchor at the cuboid's corner — the matrix
//! transformations of §3 operate on exactly this cuboid, and interior
//! zeros are what Structured Sparsity Conversion later exploits.

use sparstencil_mat::DenseMatrix;

/// A stencil kernel: dense weights over the pattern's bounding box.
///
/// Axis order is `[z, y, x]`; 1D kernels have `ez = ey = 1`, 2D kernels
/// `ez = 1`. Output point `o` (in valid-region coordinates) is computed
/// as `Σ_d w[d] · input[o + d]` with `d` ranging over the cuboid.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilKernel {
    name: String,
    dims: usize,
    extent: [usize; 3],
    weights: Vec<f64>,
}

impl StencilKernel {
    /// Build from explicit extents and a row-major (`z`-major) weight
    /// vector.
    ///
    /// # Panics
    /// Panics if `weights.len() != ez*ey*ex`, any extent is zero, or
    /// `dims` is not 1–3, or extents are inconsistent with `dims`.
    pub fn new(
        name: impl Into<String>,
        dims: usize,
        extent: [usize; 3],
        weights: Vec<f64>,
    ) -> Self {
        assert!((1..=3).contains(&dims), "dims must be 1..=3");
        let [ez, ey, ex] = extent;
        assert!(ez > 0 && ey > 0 && ex > 0, "extents must be positive");
        assert_eq!(weights.len(), ez * ey * ex, "weight count mismatch");
        if dims < 3 {
            assert_eq!(ez, 1, "1D/2D kernels must have ez = 1");
        }
        if dims < 2 {
            assert_eq!(ey, 1, "1D kernels must have ey = 1");
        }
        Self {
            name: name.into(),
            dims,
            extent,
            weights,
        }
    }

    /// Kernel name (used in benchmark tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimensionality (1–3).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Extents `[ez, ey, ex]` of the bounding box.
    pub fn extent(&self) -> [usize; 3] {
        self.extent
    }

    /// Weight at offset `(dz, dy, dx)` within the bounding box.
    #[inline]
    pub fn weight(&self, dz: usize, dy: usize, dx: usize) -> f64 {
        let [_, ey, ex] = self.extent;
        self.weights[(dz * ey + dy) * ex + dx]
    }

    /// All weights, `z`-major.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of nonzero points (the "Points" column of Table 2).
    pub fn points(&self) -> usize {
        self.weights.iter().filter(|&&w| w != 0.0).count()
    }

    /// Fraction of bounding-box entries that are zero — the sparsity the
    /// pipeline will exploit.
    pub fn bounding_box_sparsity(&self) -> f64 {
        1.0 - self.points() as f64 / self.weights.len() as f64
    }

    /// The 2D slice of the kernel at depth `dz` as a `ey × ex` matrix
    /// (the per-plane operand of the 3D accumulation path).
    pub fn slice2d(&self, dz: usize) -> DenseMatrix<f64> {
        let [_, ey, ex] = self.extent;
        DenseMatrix::from_fn(ey, ex, |y, x| self.weight(dz, y, x))
    }

    /// Rename (builders for derived kernels).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Compose `self ∘ other` by full weight convolution: one application
    /// of the result equals applying `other` then `self` (exact for
    /// linear stencils on the interior). Used for the 3× temporal fusion
    /// of §4.1 ("ConvStencil employs 3x temporal fusion for small
    /// kernels; SparStencil adopts the same approach").
    pub fn compose(&self, other: &StencilKernel) -> StencilKernel {
        assert_eq!(self.dims, other.dims, "cannot compose across dims");
        let e1 = self.extent;
        let e2 = other.extent;
        let out = [e1[0] + e2[0] - 1, e1[1] + e2[1] - 1, e1[2] + e2[2] - 1];
        let mut w = vec![0.0; out[0] * out[1] * out[2]];
        for z1 in 0..e1[0] {
            for y1 in 0..e1[1] {
                for x1 in 0..e1[2] {
                    let w1 = self.weight(z1, y1, x1);
                    if w1 == 0.0 {
                        continue;
                    }
                    for z2 in 0..e2[0] {
                        for y2 in 0..e2[1] {
                            for x2 in 0..e2[2] {
                                let w2 = other.weight(z2, y2, x2);
                                if w2 == 0.0 {
                                    continue;
                                }
                                let idx = ((z1 + z2) * out[1] + (y1 + y2)) * out[2] + (x1 + x2);
                                w[idx] += w1 * w2;
                            }
                        }
                    }
                }
            }
        }
        StencilKernel::new(format!("{}∘{}", self.name, other.name), self.dims, out, w)
    }

    /// `self` composed with itself `times` times (temporal fusion of
    /// `times` steps). `times = 1` returns a clone.
    pub fn temporal_fusion(&self, times: usize) -> StencilKernel {
        assert!(times >= 1, "fusion depth must be at least 1");
        let mut out = self.clone();
        for _ in 1..times {
            out = out.compose(self);
        }
        out.with_name(format!("{}x{}", self.name, times))
    }

    // ---------------- Named constructors (Table 2 kernels) ----------------

    /// 1D 3-point heat kernel (Heat-1D of Table 2).
    pub fn heat1d() -> Self {
        Self::new("Heat-1D", 1, [1, 1, 3], vec![0.25, 0.5, 0.25])
    }

    /// 1D 5-point kernel (1D5P of Table 2), 4th-order central difference.
    pub fn onedim5p() -> Self {
        Self::new(
            "1D5P",
            1,
            [1, 1, 5],
            vec![-1.0 / 12.0, 4.0 / 3.0, -2.5, 4.0 / 3.0, -1.0 / 12.0],
        )
    }

    /// 2D 5-point star heat kernel (Heat-2D of Table 2).
    pub fn heat2d() -> Self {
        #[rustfmt::skip]
        let w = vec![
            0.0,  0.125, 0.0,
            0.125, 0.5,  0.125,
            0.0,  0.125, 0.0,
        ];
        Self::new("Heat-2D", 2, [1, 3, 3], w)
    }

    /// 2D 9-point box kernel (Box-2D9P of Table 2).
    pub fn box2d9p() -> Self {
        let w = vec![1.0 / 9.0; 9];
        Self::new("Box-2D9P", 2, [1, 3, 3], w)
    }

    /// 2D 13-point star of radius 3 (Star-2D13P of Table 2).
    pub fn star2d13p() -> Self {
        let mut w = vec![0.0; 49];
        let coeff = [0.01, 0.02, 0.05];
        // Center.
        w[3 * 7 + 3] = 0.72;
        for r in 1..=3usize {
            let c = coeff[r - 1];
            w[3 * 7 + (3 - r)] = c; // left
            w[3 * 7 + (3 + r)] = c; // right
            w[(3 - r) * 7 + 3] = c; // up
            w[(3 + r) * 7 + 3] = c; // down
        }
        Self::new("Star-2D13P", 2, [1, 7, 7], w)
    }

    /// 2D 49-point box of radius 3 (Box-2D49P of Table 2).
    pub fn box2d49p() -> Self {
        let w = vec![1.0 / 49.0; 49];
        Self::new("Box-2D49P", 2, [1, 7, 7], w)
    }

    /// Generic 2D box kernel of a given radius, uniform weights.
    pub fn box2d(radius: usize) -> Self {
        let e = 2 * radius + 1;
        let w = vec![1.0 / (e * e) as f64; e * e];
        Self::new(format!("Box-2D{}P", e * e), 2, [1, e, e], w)
    }

    /// Generic 2D star kernel of a given radius.
    pub fn star2d(radius: usize) -> Self {
        let e = 2 * radius + 1;
        let mut w = vec![0.0; e * e];
        let c = radius;
        let pts = (4 * radius + 1) as f64;
        w[c * e + c] = 1.0 / pts;
        for r in 1..=radius {
            w[c * e + (c - r)] = 1.0 / pts;
            w[c * e + (c + r)] = 1.0 / pts;
            w[(c - r) * e + c] = 1.0 / pts;
            w[(c + r) * e + c] = 1.0 / pts;
        }
        Self::new(format!("Star-2D{}P", 4 * radius + 1), 2, [1, e, e], w)
    }

    /// 3D 7-point star heat kernel (Heat-3D of Table 2).
    pub fn heat3d() -> Self {
        let mut w = vec![0.0; 27];
        let idx = |z: usize, y: usize, x: usize| (z * 3 + y) * 3 + x;
        w[idx(1, 1, 1)] = 0.4;
        for (z, y, x) in [
            (0, 1, 1),
            (2, 1, 1),
            (1, 0, 1),
            (1, 2, 1),
            (1, 1, 0),
            (1, 1, 2),
        ] {
            w[idx(z, y, x)] = 0.1;
        }
        Self::new("Heat-3D", 3, [3, 3, 3], w)
    }

    /// 3D 27-point box kernel (Box-3D27P of Table 2).
    pub fn box3d27p() -> Self {
        let w = vec![1.0 / 27.0; 27];
        Self::new("Box-3D27P", 3, [3, 3, 3], w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_point_counts() {
        assert_eq!(StencilKernel::heat1d().points(), 3);
        assert_eq!(StencilKernel::onedim5p().points(), 5);
        assert_eq!(StencilKernel::heat2d().points(), 5);
        assert_eq!(StencilKernel::box2d9p().points(), 9);
        assert_eq!(StencilKernel::star2d13p().points(), 13);
        assert_eq!(StencilKernel::box2d49p().points(), 49);
        assert_eq!(StencilKernel::heat3d().points(), 7);
        assert_eq!(StencilKernel::box3d27p().points(), 27);
    }

    #[test]
    fn star_bounding_box_sparsity() {
        let s = StencilKernel::star2d13p();
        assert_eq!(s.extent(), [1, 7, 7]);
        assert!((s.bounding_box_sparsity() - 36.0 / 49.0).abs() < 1e-12);
    }

    #[test]
    fn generic_builders_match_named() {
        assert_eq!(StencilKernel::box2d(3).points(), 49);
        assert_eq!(StencilKernel::star2d(3).points(), 13);
        assert_eq!(StencilKernel::star2d(1).points(), 5);
        assert_eq!(StencilKernel::box2d(1).points(), 9);
    }

    #[test]
    fn slices_of_3d_kernel() {
        let h = StencilKernel::heat3d();
        let mid = h.slice2d(1);
        assert_eq!(mid.get(1, 1), 0.4);
        assert_eq!(mid.nnz(), 5);
        let top = h.slice2d(0);
        assert_eq!(top.nnz(), 1);
        assert_eq!(top.get(1, 1), 0.1);
    }

    #[test]
    fn compose_extends_extent() {
        let h = StencilKernel::heat2d();
        let h2 = h.compose(&h);
        assert_eq!(h2.extent(), [1, 5, 5]);
        // Weight conservation: Σw(compose) = (Σw)².
        let sum1: f64 = h.weights().iter().sum();
        let sum2: f64 = h2.weights().iter().sum();
        assert!((sum2 - sum1 * sum1).abs() < 1e-12);
    }

    #[test]
    fn temporal_fusion_3x_extent() {
        let f = StencilKernel::heat1d().temporal_fusion(3);
        assert_eq!(f.extent(), [1, 1, 7]);
        assert_eq!(f.dims(), 1);
        let f1 = StencilKernel::heat1d().temporal_fusion(1);
        assert_eq!(f1.extent(), [1, 1, 3]);
    }

    #[test]
    fn compose_is_convolution() {
        // [1,1] ∘ [1,1] = [1,2,1].
        let a = StencilKernel::new("a", 1, [1, 1, 2], vec![1.0, 1.0]);
        let c = a.compose(&a);
        assert_eq!(c.weights(), &[1.0, 2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "weight count mismatch")]
    fn wrong_weight_count_panics() {
        let _ = StencilKernel::new("bad", 2, [1, 3, 3], vec![1.0; 8]);
    }

    #[test]
    #[should_panic(expected = "ez = 1")]
    fn dims_extent_consistency() {
        let _ = StencilKernel::new("bad", 2, [2, 3, 3], vec![1.0; 18]);
    }
}
