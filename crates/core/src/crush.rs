//! Duplicates Crush — the second half of Adaptive Layout Morphing (§3.1,
//! Figure 4).
//!
//! Crushing merges the duplicated elements that flattening creates:
//! grouping `r1` horizontally-adjacent outputs collapses their overlapping
//! windows into `kx + r1 − 1` unique columns per kernel row (horizontal
//! crush, Figure 4a); grouping `r2` vertically-adjacent outputs collapses
//! whole submatrices (vertical crush, Figure 4b). The kernel vector
//! expands into the matrix `A'` with the **self-similar staircase**
//! pattern of Figure 5(a):
//!
//! - `A'` has `m' = r1·r2` rows and `k' = (ky+r2−1)(kx+r1−1)` columns;
//! - viewed in `r1 × gx` blocks (`gx = kx+r1−1`), block row `j2` holds
//!   block `S_dy` at block column `j2 + dy` (global staircase of width
//!   `ky`), where `S_dy` is the width-`kx` staircase of kernel row `dy`
//!   (local staircase);
//! - one `B'` column per output tile holds the `gy·gx` unique inputs of
//!   that tile — each input element appears exactly once.
//!
//! The paper's dimension formulas (§3.3) follow directly:
//! `m' = r1 r2`, `k' = (k+r1−1)(k+r2−1)`, `n' = (m−k+1)(n−k+1)/(r1 r2)`.

use crate::grid::Grid;
use crate::stencil::StencilKernel;
use sparstencil_mat::{DenseMatrix, Real};

/// Geometry of a `(r1, r2)` crush for a `ky × kx` kernel bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CrushPlan {
    /// Outputs grouped along `x` per tile.
    pub r1: usize,
    /// Outputs grouped along `y` per tile.
    pub r2: usize,
    /// Kernel extent along `x`.
    pub kx: usize,
    /// Kernel extent along `y`.
    pub ky: usize,
    /// Unique input columns per tile: `kx + r1 − 1`.
    pub gx: usize,
    /// Unique input rows per tile: `ky + r2 − 1`.
    pub gy: usize,
}

impl CrushPlan {
    /// Build a plan; `r1, r2 ≥ 1`.
    ///
    /// # Panics
    /// Panics on zero parameters.
    pub fn new(ky: usize, kx: usize, r1: usize, r2: usize) -> Self {
        assert!(r1 >= 1 && r2 >= 1, "crush factors must be ≥ 1");
        assert!(kx >= 1 && ky >= 1, "kernel extents must be ≥ 1");
        Self {
            r1,
            r2,
            kx,
            ky,
            gx: kx + r1 - 1,
            gy: ky + r2 - 1,
        }
    }

    /// Rows of `A'`: `m' = r1 · r2`.
    pub fn m_prime(&self) -> usize {
        self.r1 * self.r2
    }

    /// Columns of `A'` / rows of `B'`: `k' = gy · gx`.
    pub fn k_prime(&self) -> usize {
        self.gx * self.gy
    }

    /// Number of tiles (`n'`) covering a `vy × vx` valid-output region,
    /// rounding partial tiles up (edge tiles mask their out-of-range
    /// outputs at scatter time).
    pub fn n_prime(&self, vy: usize, vx: usize) -> usize {
        vy.div_ceil(self.r2) * vx.div_ceil(self.r1)
    }

    /// Row index of `A'` for intra-tile output `(j2, j1)`.
    #[inline]
    pub fn a_row(&self, j2: usize, j1: usize) -> usize {
        j2 * self.r1 + j1
    }

    /// Column index of `A'` (= row of `B'`) for intra-tile input
    /// `(iy, ix)`.
    #[inline]
    pub fn a_col(&self, iy: usize, ix: usize) -> usize {
        iy * self.gx + ix
    }

    /// Output-space origin `(oy, ox)` of plane-local tile index `tile`
    /// when a plane's valid region is covered by `tiles_x` tiles per row
    /// (row-major tile order). The single source of truth for the
    /// tile-coordinate arithmetic shared by the gather and scatter halves
    /// of the executor and the plan-time descriptor builder.
    #[inline]
    pub fn tile_origin(&self, tile: usize, tiles_x: usize) -> (usize, usize) {
        let (ty, tx) = (tile / tiles_x, tile % tiles_x);
        (ty * self.r2, tx * self.r1)
    }

    /// Ghost-padded plane extents `(pad_ny, pad_nx)` for a `tiles_y ×
    /// tiles_x` tile grid: the smallest plane in which every tile's
    /// `gy × gx` gather window *and* every tile's full `r2 × r1` output
    /// footprint are in-bounds by construction. Planning over a grid
    /// embedded in this padded domain is what lets the executor drop all
    /// per-tile edge classification (no tile is ever "edge").
    ///
    /// The last tile row starts at output row `(tiles_y − 1)·r2`, so its
    /// gather window ends at `(tiles_y − 1)·r2 + gy = tiles_y·r2 + ky − 1`
    /// (and symmetrically in `x`). The padded extent always covers the
    /// semantic grid: `tiles_y·r2 ≥ vy` gives `pad_ny ≥ vy + ky − 1 = ny`.
    pub fn padded_extent(&self, tiles_y: usize, tiles_x: usize) -> (usize, usize) {
        (
            tiles_y * self.r2 + self.ky - 1,
            tiles_x * self.r1 + self.kx - 1,
        )
    }

    /// Fraction of `A'` entries that are zero for a dense (box) kernel:
    /// `1 − kx·ky / k'` — the residual sparsity the sparse TCU will
    /// exploit (50–80% in the paper's insight #2).
    pub fn box_sparsity(&self) -> f64 {
        1.0 - (self.kx * self.ky) as f64 / self.k_prime() as f64
    }
}

/// Build `A'` from a 2D kernel slice (a `ky × kx` weight matrix, zeros
/// preserved): `A'[j2·r1+j1, (j2+dy)·gx + (j1+dx)] = K[dy, dx]`.
///
/// ```
/// use sparstencil::crush::{build_a_prime, CrushPlan};
/// use sparstencil::stencil::StencilKernel;
/// use sparstencil_mat::staircase::is_self_similar_staircase;
///
/// let kernel = StencilKernel::box2d9p();
/// let plan = CrushPlan::new(3, 3, 4, 4);
/// let a = build_a_prime(&kernel.slice2d(0), &plan);
/// assert_eq!(a.shape(), (16, 36)); // m' = 16, k' = 36
/// assert!(is_self_similar_staircase(&a, 4, 6, 3, 3));
/// ```
pub fn build_a_prime(kernel2d: &DenseMatrix<f64>, plan: &CrushPlan) -> DenseMatrix<f64> {
    assert_eq!(
        kernel2d.shape(),
        (plan.ky, plan.kx),
        "kernel slice shape must match the plan"
    );
    let mut a = DenseMatrix::zeros(plan.m_prime(), plan.k_prime());
    for j2 in 0..plan.r2 {
        for j1 in 0..plan.r1 {
            let row = plan.a_row(j2, j1);
            for dy in 0..plan.ky {
                for dx in 0..plan.kx {
                    let w = kernel2d.get(dy, dx);
                    if w != 0.0 {
                        a.set(row, plan.a_col(j2 + dy, j1 + dx), w);
                    }
                }
            }
        }
    }
    a
}

/// Gather the `B'` column for the tile whose first output is `(oy, ox)`
/// on plane `z` — the `gy·gx` unique inputs starting at grid position
/// `(z, oy, ox)`. Reads beyond the grid edge (possible for partial edge
/// tiles) produce zeros; the corresponding outputs are masked at scatter.
pub fn gather_b_column<R: Real>(
    grid: &Grid<R>,
    z: usize,
    oy: usize,
    ox: usize,
    plan: &CrushPlan,
) -> Vec<R> {
    let [_, ny, nx] = grid.shape();
    let mut col = Vec::with_capacity(plan.k_prime());
    for iy in 0..plan.gy {
        for ix in 0..plan.gx {
            let (y, x) = (oy + iy, ox + ix);
            col.push(if y < ny && x < nx {
                grid.get(z, y, x)
            } else {
                R::ZERO
            });
        }
    }
    col
}

/// Materialize the full `B'` (`k' × n'`) for a grid plane — tiles ordered
/// row-major by tile coordinates. Used by tests and the Figure-1 demo;
/// production execution gathers tiles on the fly through lookup tables.
pub fn build_b_prime<R: Real>(
    grid: &Grid<R>,
    z: usize,
    kernel: &StencilKernel,
    plan: &CrushPlan,
) -> DenseMatrix<R> {
    let v = grid.valid_extent(kernel);
    let (vy, vx) = (v[1], v[2]);
    let tiles_y = vy.div_ceil(plan.r2);
    let tiles_x = vx.div_ceil(plan.r1);
    let mut b = DenseMatrix::zeros(plan.k_prime(), tiles_y * tiles_x);
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let col = gather_b_column(grid, z, ty * plan.r2, tx * plan.r1, plan);
            for (i, v) in col.into_iter().enumerate() {
                b.set(i, ty * tiles_x + tx, v);
            }
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sparstencil_mat::gemm;
    use sparstencil_mat::staircase::is_self_similar_staircase;

    #[test]
    fn dimension_formulas_match_paper() {
        // §3.3: m' = r1 r2, k' = (k+r1−1)(k+r2−1),
        // n' = (m−k+1)(n−k+1)/(r1 r2) for divisible sizes.
        let plan = CrushPlan::new(3, 3, 4, 2);
        assert_eq!(plan.m_prime(), 8);
        assert_eq!(plan.k_prime(), (3 + 4 - 1) * (3 + 2 - 1));
        assert_eq!(plan.n_prime(8, 12), (8 / 2) * (12 / 4));
        // Non-divisible: rounds up.
        assert_eq!(plan.n_prime(9, 13), 5 * 4);
    }

    #[test]
    fn a_prime_is_self_similar_staircase() {
        let k = StencilKernel::box2d9p();
        let plan = CrushPlan::new(3, 3, 4, 3);
        let a = build_a_prime(&k.slice2d(0), &plan);
        // m' = 4·3 = 12, k' = (3+4−1)(3+3−1) = 6·5 = 30.
        assert_eq!(a.shape(), (12, 30));
        // Blocks: r1 × gx = 4 × 6; global width ky = 3, local width kx = 3.
        assert!(is_self_similar_staircase(
            &a, plan.r1, plan.gx, plan.ky, plan.kx
        ));
    }

    #[test]
    fn a_prime_sparsity_in_papers_range() {
        // Insight #2: residual sparsity 50–80% for practical layouts.
        for (r1, r2) in [(4, 4), (8, 2), (2, 8), (4, 2)] {
            let plan = CrushPlan::new(3, 3, r1, r2);
            let k = StencilKernel::box2d9p();
            let a = build_a_prime(&k.slice2d(0), &plan);
            let s = a.sparsity();
            assert!(
                (0.5..=0.9).contains(&s),
                "r1={r1} r2={r2}: sparsity {s:.2} outside expected band"
            );
            assert!((s - plan.box_sparsity()).abs() < 1e-12);
        }
    }

    #[test]
    fn crushed_product_equals_reference_2d() {
        for k in [
            StencilKernel::heat2d(),
            StencilKernel::box2d9p(),
            StencilKernel::star2d13p(),
        ] {
            let [_, ky, kx] = k.extent();
            for (r1, r2) in [(1, 1), (2, 2), (4, 3), (3, 4)] {
                let plan = CrushPlan::new(ky, kx, r1, r2);
                let g = Grid::<f64>::smooth_random(2, [1, 16, 17]);
                let a = build_a_prime(&k.slice2d(0), &plan);
                let b = build_b_prime(&g, 0, &k, &plan);
                let c = gemm::matmul(&a, &b);
                let expect = reference::apply(&k, &g);
                let v = g.valid_extent(&k);
                let tiles_x = v[2].div_ceil(r1);
                for oy in 0..v[1] {
                    for ox in 0..v[2] {
                        let (ty, j2) = (oy / r2, oy % r2);
                        let (tx, j1) = (ox / r1, ox % r1);
                        let got = c.get(plan.a_row(j2, j1), ty * tiles_x + tx);
                        let want = expect.get(0, oy, ox);
                        assert!(
                            (got - want).abs() < 1e-12,
                            "{} r1={r1} r2={r2} at ({oy},{ox}): {got} vs {want}",
                            k.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn crush_removes_all_duplicates() {
        // Every interior grid element appears exactly once in B' columns
        // covering it... more precisely: each tile's column holds gy·gx
        // *distinct* grid positions — no duplicates inside a column, and
        // total storage shrinks from k'·outputs (flattened) to
        // k'·outputs/(r1·r2).
        let k = StencilKernel::box2d9p();
        let plan = CrushPlan::new(3, 3, 4, 4);
        let g = Grid::<f64>::smooth_random(2, [1, 18, 18]);
        let b = build_b_prime(&g, 0, &k, &plan);
        let flat_cells = 9 * 16 * 16; // flattened storage for 16×16 outputs
        let crushed_cells = b.rows() * b.cols();
        assert!(
            crushed_cells * 2 < flat_cells,
            "crush should at least halve storage: {crushed_cells} vs {flat_cells}"
        );
    }

    #[test]
    fn one_dimensional_crush() {
        // 1D kernels: ky = 1, r2 = 1; A' is a plain staircase.
        let k = StencilKernel::heat1d();
        let plan = CrushPlan::new(1, 3, 8, 1);
        let a = build_a_prime(&k.slice2d(0), &plan);
        assert_eq!(a.shape(), (8, 10));
        assert!(sparstencil_mat::staircase::is_staircase_within(&a, 3));
        let g = Grid::<f64>::smooth_random(1, [1, 1, 42]);
        let b = build_b_prime(&g, 0, &k, &plan);
        let c = gemm::matmul(&a, &b);
        let expect = reference::apply(&k, &g);
        let v = g.valid_extent(&k);
        for ox in 0..v[2] {
            let (tx, j1) = (ox / 8, ox % 8);
            assert!((c.get(j1, tx) - expect.get(0, 0, ox)).abs() < 1e-12);
        }
    }

    #[test]
    fn edge_tile_gather_zero_fills() {
        let plan = CrushPlan::new(3, 3, 4, 4);
        let g = Grid::<f64>::from_fn_3d(2, [1, 6, 6], |_, _, _| 1.0);
        // Tile starting at (4, 4): rows/cols 4..10 overhang the 6×6 grid.
        let col = gather_b_column(&g, 0, 4, 4, &plan);
        assert_eq!(col.len(), 36);
        let zeros = col.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 36 - 4); // only the 2×2 in-grid corner is real
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn zero_crush_factor_panics() {
        let _ = CrushPlan::new(3, 3, 0, 1);
    }
}
