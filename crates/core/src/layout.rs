//! Layout Exploration — the first phase of Automatic Kernel Generation
//! (§3.3, Equations 9–11).
//!
//! The crush factors `(r1, r2)` trade redundancy elimination against
//! staircase sparsity: larger factors shrink `n'` (fewer tiles, less
//! shared-memory traffic) but grow `k'` quadratically (more, sparser MMA
//! work). The explorer evaluates every candidate in the search space with
//! the analytic model of Equations 6–8 — `N_MMA` from Equation 9, memory
//! volumes from the exact traffic accounting shared with the executor —
//! and picks `argmin T` (Equation 11). The full evaluation grid is
//! retained for the Figure-9 heatmaps.

use crate::crush::CrushPlan;
use crate::stencil::StencilKernel;
use sparstencil_graph::hierarchical::{hierarchical_pad_count, StaircaseSpec};
use sparstencil_mat::half::Precision;
use sparstencil_tcu::{FragmentShape, GpuConfig};

/// How the plan executes on the simulated GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ExecMode {
    /// 2:4 sparse tensor cores (the paper's main path).
    SparseTcu,
    /// Dense tensor cores on the crushed layout (the ConvStencil-
    /// equivalent path, also used for FP64 — Table 3).
    DenseTcu,
}

/// Geometry derived from a `(r1, r2)` candidate for a given kernel and
/// grid, including conversion padding. All Equation-9 quantities.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LayoutGeometry {
    /// Crush factors.
    pub r1: usize,
    /// Crush factors.
    pub r2: usize,
    /// `m' = r1·r2`.
    pub m_prime: usize,
    /// `k' = gy·gx`.
    pub k_prime: usize,
    /// Zero columns inserted by sparsity conversion (0 in dense mode).
    pub pads: usize,
    /// Logical operand depth after conversion and fragment round-up.
    pub k_logical: usize,
    /// `m'` rounded up to the fragment `m`.
    pub m_padded: usize,
    /// Tiles per output plane (`n'`).
    pub tiles_per_plane: usize,
    /// Tiles along `x` per plane (`⌈vx / r1⌉`); row-major tile order.
    pub tiles_x: usize,
    /// Tiles along `y` per plane (`⌈vy / r2⌉`).
    pub tiles_y: usize,
    /// Ghost-padded plane rows (`tiles_y·r2 + ky − 1 ≥ ny`): the executor
    /// embeds the grid in `pad_ny × pad_nx` planes so every tile's gather
    /// window and output footprint is in-bounds by construction.
    pub pad_ny: usize,
    /// Ghost-padded plane columns (`tiles_x·r1 + kx − 1 ≥ nx`).
    pub pad_nx: usize,
    /// Output planes (1 for 1D/2D).
    pub planes: usize,
    /// Kernel depth (slices accumulated per output plane; 1 for 1D/2D).
    pub slices: usize,
    /// Fragment MMAs per iteration (Equation 9, times slices × planes).
    pub n_mma: u64,
}

/// Analytic evaluation of one layout candidate.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelEval {
    /// Geometry of the candidate.
    pub geom: LayoutGeometry,
    /// Compute time per iteration, seconds (Eq. 7).
    pub t_compute: f64,
    /// Memory time per iteration, seconds (Eq. 8).
    pub t_memory: f64,
    /// Total modelled time per iteration (Eq. 6).
    pub t_total: f64,
    /// Residual sparsity of the stored (compressed) operand.
    pub stored_sparsity: f64,
    /// Useful FLOPs / executed TCU FLOPs — the compute-density heatmap
    /// metric of Figure 9.
    pub compute_density: f64,
}

/// Exact per-iteration traffic volumes, shared between the analytic model
/// and the executor's counters (so "analytic equals counted" is testable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Traffic {
    /// Global reads in bytes (input + operand + metadata + LUT).
    pub global_read: u64,
    /// Global writes in bytes (valid outputs).
    pub global_write: u64,
    /// Bytes staged into shared memory.
    pub shared_write: u64,
    /// Bytes read from shared memory by fragment operands.
    pub shared_read: u64,
    /// Global-read bytes expected to hit in L2 (halo overlap reuse).
    pub l2_hit: u64,
}

/// Compute the geometry of a candidate layout.
///
/// `grid_shape` is `[nz, ny, nx]`. For 3D kernels the crush applies to
/// the `y/x` axes and slices accumulate along `z`.
pub fn geometry(
    kernel: &StencilKernel,
    grid_shape: [usize; 3],
    r1: usize,
    r2: usize,
    frag: FragmentShape,
    mode: ExecMode,
) -> LayoutGeometry {
    let [ez, ey, ex] = kernel.extent();
    let plan = CrushPlan::new(ey, ex, r1, r2);
    let (vz, vy, vx) = (
        grid_shape[0] - ez + 1,
        grid_shape[1] - ey + 1,
        grid_shape[2] - ex + 1,
    );
    let tiles = plan.n_prime(vy, vx);
    let tiles_x = vx.div_ceil(r1);
    let tiles_y = vy.div_ceil(r2);
    // 3D kernels fold their `ez` depth slices into one stacked operand of
    // width `ez·k'` (gather offsets span planes), so the fragment depth
    // amortizes across the whole accumulation instead of per slice.
    let k_stacked = plan.k_prime() * ez;

    let (pads, k_logical) = match mode {
        ExecMode::DenseTcu => (0, k_stacked.div_ceil(frag.k) * frag.k),
        ExecMode::SparseTcu => {
            // Pad estimate for the explorer: per-segment hierarchical
            // count (the exact count comes from the conversion at
            // compile time; `compile` overwrites these fields).
            let per_segment = hierarchical_pad_count(StaircaseSpec {
                n: plan.k_prime(),
                g: plan.gx,
                k: plan.kx.max(plan.ky),
            })
            .unwrap_or(plan.k_prime());
            let pads = per_segment * ez;
            let logical = (k_stacked + pads).div_ceil(frag.k) * frag.k;
            (pads, logical)
        }
    };

    let m_padded = plan.m_prime().div_ceil(frag.m) * frag.m;
    let m_strips = (m_padded / frag.m) as u64;
    let k_strips = (k_logical / frag.k) as u64;
    let col_blocks = tiles.div_ceil(frag.n) as u64;
    let n_mma = m_strips * k_strips * col_blocks * vz as u64;
    let (pad_ny, pad_nx) = plan.padded_extent(tiles_y, tiles_x);

    LayoutGeometry {
        r1,
        r2,
        m_prime: plan.m_prime(),
        k_prime: k_stacked,
        pads,
        k_logical,
        m_padded,
        tiles_per_plane: tiles,
        tiles_x,
        tiles_y,
        pad_ny,
        pad_nx,
        planes: vz,
        slices: ez,
        n_mma,
    }
}

/// Recompute the fragment-dependent fields of a geometry for an *actual*
/// converted width (used by `compile` after the conversion determines the
/// exact padding, which for z-folded 3D operands comes from the Blossom
/// matcher rather than the explorer's estimate).
pub fn refine_geometry(
    geom: &mut LayoutGeometry,
    frag: FragmentShape,
    k_logical: usize,
    pads: usize,
) {
    geom.k_logical = k_logical;
    geom.pads = pads;
    let m_strips = (geom.m_padded / frag.m) as u64;
    let k_strips = (k_logical / frag.k) as u64;
    let col_blocks = geom.tiles_per_plane.div_ceil(frag.n) as u64;
    geom.n_mma = m_strips * k_strips * col_blocks * geom.planes as u64;
}

/// Maximum resident (persistent) blocks the generated kernels launch:
/// enough to fill every SM several times over, few enough that per-block
/// table loads stay negligible.
pub const PERSISTENT_BLOCKS: u64 = 1024;

/// Output planes a 3D kernel block advances before refreshing its staged
/// z-window (z-blocking depth of the generated kernels).
pub const Z_WINDOW: usize = 8;

/// Exact per-iteration traffic for a geometry. This is the accounting the
/// executor reproduces op-by-op.
pub fn traffic(
    kernel: &StencilKernel,
    grid_shape: [usize; 3],
    geom: &LayoutGeometry,
    frag: FragmentShape,
    precision: Precision,
    use_lut: bool,
) -> Traffic {
    let [_ez, ey, ex] = kernel.extent();
    let plan = CrushPlan::new(ey, ex, geom.r1, geom.r2);
    let elem = precision.bytes() as u64;
    let grid_points = (grid_shape[0] * grid_shape[1] * grid_shape[2]) as u64;

    // Gather touches: one CUDA block stages `tiles_per_block` consecutive
    // tiles of a tile row cooperatively, so x-adjacent tiles share their
    // halo columns and each block fetches the union region once —
    // `gy × (tiles·r1 + kx − 1)` elements. Only inter-block and
    // inter-row halos are re-fetched (and then usually hit in L2).
    let tiles_per_block = 4 * frag.n;
    let (tiles_x, tiles_y) = (geom.tiles_x, geom.tiles_y);
    let full_chunks = tiles_x / tiles_per_block;
    let rem = tiles_x % tiles_per_block;
    let row_touches = full_chunks as u64
        * (plan.gy * (tiles_per_block * geom.r1 + plan.kx - 1)) as u64
        + if rem > 0 {
            (plan.gy * (rem * geom.r1 + plan.kx - 1)) as u64
        } else {
            0
        };
    // 3D kernels block along z as well: a block keeps a window of
    // `Z_WINDOW` staged planes and slides it, so each input plane is
    // re-fetched only when the window moves past it instead of once per
    // accumulation slice.
    let z_reuse = 1.0 + (geom.slices as f64 - 1.0) / Z_WINDOW as f64;
    let touches = ((row_touches * tiles_y as u64 * geom.planes as u64) as f64 * z_reuse) as u64;
    let unique = grid_points;
    let l2_hit = touches.saturating_sub(unique) * elem;

    // Operand fetch: the kernel launches persistent blocks (grid-stride
    // loop over column blocks), so the kernel-operand tables (A values,
    // metadata, LUT) are loaded once per *resident* block, not per tile.
    let col_blocks = (geom.tiles_per_plane.div_ceil(frag.n) * geom.planes) as u64;
    let resident_blocks = col_blocks.div_ceil(4).min(PERSISTENT_BLOCKS);
    let stored_k = match frag.sparse {
        true => geom.k_logical as u64 / 2,
        false => geom.k_logical as u64,
    };
    let meta_bytes = if frag.sparse {
        // 2 bits per stored element, packed into u32 words per row.
        (geom.m_padded as u64) * (stored_k / 16).max(1) * 4
    } else {
        0
    };
    // One stacked operand covers every depth slice (k_logical spans them).
    let a_bytes = geom.m_padded as u64 * stored_k * elem + meta_bytes;
    let lut_bytes = if use_lut {
        geom.k_logical as u64 * 8 // i64 offsets
    } else {
        0
    };

    // Global: input touches go through L2 with reuse hits served on-chip.
    // Operand, metadata and LUT reads repeat once per resident block; the
    // tables are tiny and pinned in L2 after the first block — DRAM sees
    // exactly one copy.
    let table_bytes_once = a_bytes + lut_bytes;
    let table_reads = resident_blocks * table_bytes_once;
    let global_read = touches * elem + table_reads;
    let l2_hit = l2_hit + table_reads.saturating_sub(table_bytes_once);

    // Valid outputs written once.
    let [_, vy, vx] = [0, grid_shape[1] - ey + 1, grid_shape[2] - ex + 1];
    let global_write = (geom.planes * vy * vx) as u64 * elem;

    // Shared: staging writes mirror gather touches plus operand staging
    // (once per resident block); operand reads stream every fragment's A
    // and B bytes.
    let shared_write = touches * elem + resident_blocks * a_bytes;
    // Operand streaming: every fragment op re-reads its B panel from the
    // staging buffer; the A operand is register-resident for the block's
    // lifetime (charged once above).
    let b_bytes_per_mma = (frag.k * frag.n) as u64 * elem;
    let shared_read = geom.n_mma * b_bytes_per_mma;

    Traffic {
        global_read,
        global_write,
        shared_write,
        shared_read,
        l2_hit,
    }
}

/// Evaluate one candidate with the analytic model (Equations 6–9).
#[allow(clippy::too_many_arguments)]
pub fn evaluate(
    kernel: &StencilKernel,
    grid_shape: [usize; 3],
    r1: usize,
    r2: usize,
    frag: FragmentShape,
    mode: ExecMode,
    precision: Precision,
    gpu: &GpuConfig,
) -> ModelEval {
    let geom = geometry(kernel, grid_shape, r1, r2, frag, mode);
    let tr = traffic(kernel, grid_shape, &geom, frag, precision, true);

    let t_compute = (geom.n_mma * frag.executed_flops()) as f64 / gpu.effective_tc_flops(precision);
    let dram = (tr.global_read - tr.l2_hit) + tr.global_write;
    let t_global = dram as f64 / gpu.effective_global_bw();
    let t_l2 = (tr.global_read + tr.global_write) as f64 / gpu.effective_l2_bw();
    let t_shared = (tr.shared_write + tr.shared_read) as f64 / gpu.effective_shared_bw();
    let t_memory = t_global.max(t_shared).max(t_l2);

    // Stored-operand sparsity: nonzeros per row = kernel points in the
    // bounding box row (box: ky·kx); stored slots per row = k_logical/2
    // (sparse) or k_logical (dense).
    let nnz_per_row = kernel.points() as f64 / kernel.extent()[0] as f64; // per-slice average
    let stored_slots = match mode {
        ExecMode::SparseTcu => geom.k_logical as f64 / 2.0,
        ExecMode::DenseTcu => geom.k_logical as f64,
    };
    let stored_sparsity = (1.0 - nnz_per_row / stored_slots).clamp(0.0, 1.0);

    // Useful work: 2 FLOPs per kernel point per valid output.
    let [_ez, ey, ex] = kernel.extent();
    let (vy, vx) = (grid_shape[1] - ey + 1, grid_shape[2] - ex + 1);
    let useful = 2.0 * kernel.points() as f64 * (geom.planes * vy * vx) as f64;
    let executed = (geom.n_mma * frag.executed_flops()) as f64;

    ModelEval {
        geom,
        t_compute,
        t_memory,
        t_total: t_compute.max(t_memory),
        stored_sparsity,
        compute_density: (useful / executed).min(1.0),
    }
}

/// The search space `S` of Equation 11 and the chosen optimum.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Winning crush factors.
    pub best: (usize, usize),
    /// Every evaluated candidate (for the Figure-9 heatmaps).
    pub evaluated: Vec<ModelEval>,
}

/// Exhaustively search `(r1, r2)` (Equation 11). The space is bounded by
/// `max_r` per axis and `m' ≤ 2·frag.m` (larger tiles waste fragment rows
/// without reducing traffic further); 1D kernels fix `r2 = 1`.
///
/// ```
/// use sparstencil::layout::{explore, ExecMode};
/// use sparstencil::stencil::StencilKernel;
/// use sparstencil_tcu::{FragmentShape, GpuConfig, Precision};
///
/// let ex = explore(
///     &StencilKernel::box2d49p(),
///     [1, 1030, 1030],
///     FragmentShape::sparse_fp16(),
///     ExecMode::SparseTcu,
///     Precision::Fp16,
///     &GpuConfig::a100(),
///     8,
/// );
/// let (r1, r2) = ex.best;
/// assert!(r1 >= 1 && r2 >= 1 && r1 * r2 <= 32);
/// ```
pub fn explore(
    kernel: &StencilKernel,
    grid_shape: [usize; 3],
    frag: FragmentShape,
    mode: ExecMode,
    precision: Precision,
    gpu: &GpuConfig,
    max_r: usize,
) -> Exploration {
    let one_d = kernel.dims() == 1;
    let mut evaluated = Vec::new();
    let mut best: Option<((usize, usize), f64)> = None;
    for r2 in 1..=(if one_d { 1 } else { max_r }) {
        for r1 in 1..=max_r {
            let m_prime = r1 * r2;
            if m_prime > 2 * frag.m {
                continue;
            }
            // Tiles larger than the valid region are pure padding.
            let [_, ey, ex] = kernel.extent();
            if r2 > grid_shape[1].saturating_sub(ey) + 1
                || r1 > grid_shape[2].saturating_sub(ex) + 1
            {
                continue;
            }
            let eval = evaluate(kernel, grid_shape, r1, r2, frag, mode, precision, gpu);
            let score = eval.t_total;
            evaluated.push(eval);
            if best.is_none_or(|(_, t)| score < t) {
                best = Some(((r1, r2), score));
            }
        }
    }
    let best = best.expect("search space must be non-empty").0;
    Exploration { best, evaluated }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuConfig {
        GpuConfig::a100()
    }

    #[test]
    fn equation9_mma_count() {
        // Box-2D9P on 130×130, r=(4,4), sparse m16n8k32:
        // m'=16→1 strip; k'=36, pads → k_logical multiple of 32;
        // tiles = 32×32 = 1024 → 128 column blocks.
        let k = StencilKernel::box2d9p();
        let g = geometry(
            &k,
            [1, 130, 130],
            4,
            4,
            FragmentShape::sparse_fp16(),
            ExecMode::SparseTcu,
        );
        assert_eq!(g.m_prime, 16);
        assert_eq!(g.m_padded, 16);
        assert_eq!(g.k_prime, 36);
        assert_eq!(g.tiles_per_plane, 1024);
        let k_strips = g.k_logical / 32;
        assert_eq!(g.n_mma, (k_strips * 128) as u64);
    }

    #[test]
    fn dense_mode_skips_conversion() {
        let k = StencilKernel::box2d9p();
        let g = geometry(
            &k,
            [1, 130, 130],
            4,
            4,
            FragmentShape::dense_fp16(),
            ExecMode::DenseTcu,
        );
        assert_eq!(g.pads, 0);
        assert_eq!(g.k_logical, 48); // 36 → 48 (multiple of 16)
    }

    #[test]
    fn sparse_halves_compute_vs_dense() {
        let k = StencilKernel::box2d49p();
        let shape = [1, 1030, 1030];
        let gpu = gpu();
        let sp = evaluate(
            &k,
            shape,
            4,
            4,
            FragmentShape::sparse_fp16(),
            ExecMode::SparseTcu,
            Precision::Fp16,
            &gpu,
        );
        let dn = evaluate(
            &k,
            shape,
            4,
            4,
            FragmentShape::dense_fp16(),
            ExecMode::DenseTcu,
            Precision::Fp16,
            &gpu,
        );
        let ratio = dn.t_compute / sp.t_compute;
        assert!(
            (1.5..=2.6).contains(&ratio),
            "sparse should roughly halve compute: ratio {ratio:.2}"
        );
    }

    #[test]
    fn explorer_picks_low_time() {
        let k = StencilKernel::box2d9p();
        let gpu = gpu();
        let ex = explore(
            &k,
            [1, 514, 514],
            FragmentShape::sparse_fp16(),
            ExecMode::SparseTcu,
            Precision::Fp16,
            &gpu,
            16,
        );
        let best_eval = ex
            .evaluated
            .iter()
            .find(|e| (e.geom.r1, e.geom.r2) == ex.best)
            .unwrap();
        for e in &ex.evaluated {
            assert!(best_eval.t_total <= e.t_total + 1e-15);
        }
        // (1,1) is never optimal: it wastes 15/16 fragment rows.
        assert_ne!(ex.best, (1, 1));
    }

    #[test]
    fn one_dimensional_explorer_fixes_r2() {
        let k = StencilKernel::heat1d();
        let gpu = gpu();
        let ex = explore(
            &k,
            [1, 1, 100_000],
            FragmentShape::sparse_fp16(),
            ExecMode::SparseTcu,
            Precision::Fp16,
            &gpu,
            32,
        );
        assert!(ex.evaluated.iter().all(|e| e.geom.r2 == 1));
        assert!(
            ex.best.0 >= 8,
            "1D should pick a wide r1, got {:?}",
            ex.best
        );
    }

    #[test]
    fn three_d_geometry_has_slices_and_planes() {
        let k = StencilKernel::heat3d();
        let g = geometry(
            &k,
            [34, 34, 34],
            4,
            4,
            FragmentShape::sparse_fp16(),
            ExecMode::SparseTcu,
        );
        assert_eq!(g.slices, 3);
        assert_eq!(g.planes, 32);
        assert_eq!(g.tiles_per_plane, 64);
    }

    #[test]
    fn compute_density_bounded_and_meaningful() {
        let k = StencilKernel::box2d49p();
        let gpu = gpu();
        let e = evaluate(
            &k,
            [1, 1030, 1030],
            8,
            2,
            FragmentShape::sparse_fp16(),
            ExecMode::SparseTcu,
            Precision::Fp16,
            &gpu,
        );
        assert!(e.compute_density > 0.0 && e.compute_density <= 1.0);
        assert!(e.stored_sparsity >= 0.0 && e.stored_sparsity < 1.0);
    }

    #[test]
    fn traffic_global_write_counts_valid_outputs() {
        let k = StencilKernel::box2d9p();
        let shape = [1, 34, 34];
        let g = geometry(
            &k,
            shape,
            4,
            4,
            FragmentShape::sparse_fp16(),
            ExecMode::SparseTcu,
        );
        let t = traffic(
            &k,
            shape,
            &g,
            FragmentShape::sparse_fp16(),
            Precision::Fp16,
            true,
        );
        assert_eq!(t.global_write, 32 * 32 * 2);
        assert!(t.global_read > 0 && t.shared_read > 0);
    }
}
