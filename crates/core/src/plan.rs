//! Kernel plans — the compiled artifact of Automatic Kernel Generation.
//!
//! A [`CompiledStencil`] is everything the generated CUDA kernel would
//! embed, in executable form for the simulator: the converted and
//! compressed `A''` operands (per 3D slice, split into fragment strips),
//! the 2:4 **metadata** (inside [`sparstencil_mat::TwoFourMatrix`]), the
//! gather **lookup table** mapping operand rows to input offsets (§3.3:
//! precomputed on the host to avoid per-access integer division), the
//! scatter table for outputs, and the launch geometry. Host-side
//! preparation is timed per artifact ([`PrepStats`]) to reproduce the
//! Figure-8 overhead analysis.
//!
//! # Cost model
//!
//! [`tune`] makes planning adaptive per kernel. Where
//! [`crate::layout::explore`] ranks `(r1, r2)` layouts with the paper's
//! analytic *GPU* model (Equations 6–11), the tuner scores fully
//! **compiled plans** with a model of the *simulator's* staged
//! executor, fed by the [`TableMetrics`] read off the tables:
//!
//! - **staged-band size** ([`StageSchedule::band_rows`]) and
//!   **gather-footprint density** (referenced union-window cells over
//!   the `gy × gx` window area) — the strided-gather volume per plane;
//! - **run lengths** ([`StageSchedule::run_len`]) — how much of the
//!   ring's staging a z-sliding run amortizes, and whether the
//!   software-prefetch hints ever have a next plane to target;
//! - **shared-staging shape** (fresh vs shift ranks in
//!   [`StageSchedule::stage_ops`]) — how much gather the in-scratch
//!   shift copies replace;
//! - **MMA block raggedness** (the fraction of scheduled multiplies in
//!   register-blocked lockstep streams vs ragged row-serial fallback)
//!   plus operand padding rows — dead or slow MMA lanes.
//!
//! The **choice lattice** has three axes with different safety rules:
//!
//! 1. *Staging-window policy* ([`StagePolicy`]): pure data-movement
//!    switches, bit-identical by construction — adopted at the model's
//!    argmin.
//! 2. *Tile shape*: changes the staircase conversion's column
//!    permutation and therefore potentially the per-cell accumulation
//!    **order**. A non-default shape is adopted only when modeled at
//!    least [`TuneOpts::margin`] cheaper than the default (the oracle)
//!    **and** bit-verified against it: the tuner runs both plans a few
//!    steps on a deterministic probe grid and adopts the candidate only
//!    if the outputs match exactly. Accumulation order is a
//!    data-independent property of the compiled tables, so one probe
//!    certifies every input and step count. (The strict structural
//!    certificate, [`CompiledStencil::accumulation_canonical`], is kept
//!    as a diagnostic — it is sufficient but far from necessary: most
//!    2D layouts share a common permuted order without being
//!    coordinate-ascending.)
//! 3. *Temporal-fusion depth*: composing a kernel with itself
//!    re-quantizes the composed weights, so fusion is **never**
//!    bit-preserving; depths above 1 must be opted into via
//!    [`TuneOpts::max_fusion`].
//!
//! Finally, any adopted non-default layout/policy combination is
//! **measured-validated**: the tuner times the default and tuned plans
//! interleaved on the probe grid and restores the default
//! ([`PlanChoice::reverted`]) if the tuned configuration measures
//! slower. The model proposes, measurement disposes — this is what
//! turns "modeled cheaper" into a never-slower-than-default contract.
//!
//! The invariant the defaults guarantee — pinned by the tuner proptest
//! and consumed by [`crate::pipeline::Executor::auto`] — is that tuning
//! may change speed, never results.

use crate::convert::{self, Strategy};
use crate::crush::{build_a_prime, CrushPlan};
use crate::layout::{self, ExecMode, LayoutGeometry};
use crate::stencil::StencilKernel;
use sparstencil_mat::half::Precision;
use sparstencil_mat::{DenseMatrix, Permutation, Real, TwoFourMatrix};
use sparstencil_tcu::fragment::{BlockedRowProgram, RowProgram};
use sparstencil_tcu::{FragmentShape, GpuConfig, LaunchConfig};
use std::time::Instant;

/// Runtime optimizations of the generated kernel (the "+opts" stage of
/// Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OptFlags {
    /// Host-precomputed lookup tables for global→shared address mapping.
    /// Without it the kernel spends integer ops per gathered element.
    pub lut: bool,
    /// Double-buffered async pipeline (compute/memory overlap). Without
    /// it kernel time is `T_compute + T_memory` instead of the `max`.
    pub double_buffer: bool,
}

impl Default for OptFlags {
    fn default() -> Self {
        Self {
            lut: true,
            double_buffer: true,
        }
    }
}

/// Host-side preprocessing times (Figure 8: TS / MD / LUT).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PrepStats {
    /// Layout search time, seconds.
    pub search_s: f64,
    /// Transformation time (crush + sparsity conversion), seconds.
    pub transform_s: f64,
    /// Metadata generation (2:4 compression) time, seconds.
    pub metadata_s: f64,
    /// Lookup-table construction time, seconds.
    pub lut_s: f64,
}

impl PrepStats {
    /// Total preprocessing time.
    pub fn total(&self) -> f64 {
        self.search_s + self.transform_s + self.metadata_s + self.lut_s
    }
}

/// One fragment-strip operand of `A''`.
#[derive(Debug, Clone)]
pub enum Operand<R: Real> {
    /// Compressed 2:4 operand with metadata (sparse mode).
    Sparse(TwoFourMatrix<R>),
    /// Dense operand (dense-TCU mode).
    Dense(DenseMatrix<R>),
}

impl<R: Real> Operand<R> {
    /// Bytes of metadata carried by this strip (0 for dense).
    pub fn metadata_bytes(&self) -> usize {
        match self {
            Operand::Sparse(m) => m.metadata_bytes(),
            Operand::Dense(_) => 0,
        }
    }
}

/// The per-`dz` operand block: strips indexed `[m_strip][k_strip]`.
#[derive(Debug, Clone)]
pub struct SliceOperands<R: Real> {
    /// Kernel depth offset this slice multiplies against.
    pub dz: usize,
    /// Fragment strips `[m_strip][k_strip]`.
    pub strips: Vec<Vec<Operand<R>>>,
}

/// Plan-time per-tile execution descriptor. Everything the per-step hot
/// loop previously re-derived from the tile index — origin coordinates
/// and the linear base offset *in the ghost-padded plane* — computed once
/// at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileDesc {
    /// Linear offset of the tile origin within its ghost-padded plane
    /// (`oy·pad_nx + ox`).
    pub base: usize,
    /// Output-space origin row `oy`.
    pub oy: usize,
    /// Output-space origin column `ox`.
    pub ox: usize,
    /// The whole `gy × gx` gather window lies inside the padded plane —
    /// `true` for every tile by construction of the padded domain
    /// ([`CrushPlan::padded_extent`]); retained as the classification the
    /// interior-only executor is built on, asserted at plan build and in
    /// tests, and reported by [`ExecTables::edge_block_fraction`].
    pub interior: bool,
}

/// Plan-time staging schedule: everything the executor's two-phase
/// **staged gather** needs, compiled once per plan.
///
/// The step hot path no longer gathers one strided scalar load per
/// (operand row, tile) straight into the MMA operand buffer. Instead it
/// *stages* the whole `window`-plane gather footprint of a work item
/// into a contiguous per-lane scratch **ring** of `window` bands — one
/// band per source z-plane, `band_rows` cells each, ranked in
/// first-reference order ([`StageSchedule::cell_offsets`]) so the MMA's
/// far more numerous staged reads stay ascending — and the row programs
/// read operands by dense offset from that staged buffer
/// ([`StageSchedule::programs`], rebased via
/// [`sparstencil_tcu::fragment::RowProgram::remap_rows`]).
///
/// The work list is ordered so the ring actually pays off: items are
/// grouped into **z-sliding runs** of [`StageSchedule::run_len`]
/// consecutive output planes per fragment-column block. Within a run,
/// work item `z` shares `window − 1` source planes with work item
/// `z − 1`, so only the one new plane is staged
/// ([`StageSchedule::overlap`]) and its band overwrites the ring slot of
/// the plane that just slid out (`plane mod window`). Because the band
/// assignment rotates with `z`, the operand addressing depends on
/// `z mod window`: there is one rebased program set (and one
/// [`StageSchedule::stage_map`] row-index map) per ring *phase*.
#[derive(Debug, Clone)]
pub struct StageSchedule<R: Real> {
    /// Ring depth: source planes per gather window (the kernel z-extent).
    pub window: usize,
    /// Staged cells per band: the number of distinct in-plane window
    /// cells any referenced operand row reads at *any* depth (the union
    /// staging window — staging the union is what makes a band's content
    /// valid for every depth the plane serves as the window slides).
    pub band_rows: usize,
    /// Tile-base-relative padded in-plane offsets of the union window
    /// cells, in first-reference (operand) order — the order that keeps
    /// the rebased programs' `B` reads ascending; the cell at rank `r`
    /// is staged into band row `r`.
    pub cell_offsets: Vec<usize>,
    /// Work items per z-sliding run (= output planes); run `r` covers
    /// `work[r·run_len .. (r+1)·run_len]`, all on one fragment-column
    /// block with `z` ascending.
    pub run_len: usize,
    /// Per work item: staged planes shared with the *previous* item in
    /// schedule order — `window − 1` inside a run, `0` at run starts.
    /// The executor stages only planes `overlap[wi] .. window` of the
    /// item's window.
    pub overlap: Vec<u32>,
    /// Index of the guaranteed-zero staged row (`window · band_rows`):
    /// allocated after the bands, zeroed once, never written by staging.
    /// Synthetic zero-store entries and operand padding rows rebase
    /// here.
    pub zero_row: usize,
    /// `stage_map[phase][operand row]` → staged row index: referenced
    /// rows map to `band(phase, dz) · band_rows + rank(iy, ix)`;
    /// padding and never-referenced rows map to [`StageSchedule::zero_row`].
    pub stage_map: Vec<Vec<u32>>,
    /// Phase-rebased operand programs `[phase][m_strip]`: the slice-0
    /// overwrite-first programs of [`ExecTables::programs`] with every
    /// entry's `B` index rewritten through `stage_map[phase]` — same
    /// entries, same order, same arithmetic, staged addressing — then
    /// compiled to the register-blocked lockstep layout
    /// ([`BlockedRowProgram`], [`crate::exec::MMA_BLOCK_ROWS`] rows per
    /// block) the multi-row MMA kernels execute. Every rebased row is
    /// asserted non-empty at build, which is what lets the
    /// overwrite-first kernels drop their per-row runtime check.
    pub programs: Vec<Vec<BlockedRowProgram<R>>>,
    /// Per-band staging ops in execution order, shared by every `(plane,
    /// column block)` staging pass: all [`StageOp::Fresh`] ranks first,
    /// then [`StageOp::Shift`] ranks ordered so every shift's source row
    /// is already staged (descending source offset — shift chains run
    /// toward smaller offsets). Covers each band rank exactly once;
    /// validated at plan build.
    pub stage_ops: Vec<StageOp>,
    /// Per fragment-column block: `true` iff the block's tiles sit in
    /// one tile row with bases stepping by exactly `r1` — the geometry
    /// under which [`StageOp::Shift`] is valid and the executor takes
    /// the shared-staging path. Blocks that wrap a tile-row boundary
    /// stage every rank fresh.
    pub shift_blocks: Vec<bool>,
    /// Cache-line-deduplicated element offsets (relative to a plane
    /// base plus the block's first tile base) covering one
    /// (plane, column block) staging footprint — the executor's
    /// software-prefetch list. A z-sliding run's next item stages a
    /// plane one full plane stride ahead, beyond the page-bounded reach
    /// of hardware prefetch streams, so without the hints every staged
    /// line is a demand miss. Offsets are aligned down to cache-line
    /// granularity for `R`, padded one line for base misalignment.
    pub prefetch_offs: Vec<u32>,
    /// Runtime staging-window policy the executor consults per work
    /// item (see [`StagePolicy`]). Pure data-movement switches: every
    /// setting produces bit-identical results; [`tune`] picks the
    /// cheapest one from the compiled tables.
    pub policy: StagePolicy,
}

/// Staging-window policy: the executor-side switches of the staged
/// gather that change *how* bytes move but never *which* values feed
/// the MMA — every combination is bit-identical by construction, which
/// is what lets [`tune`] flip them freely without touching results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StagePolicy {
    /// Take the shared-staging path ([`StageSchedule::stage_ops`]) on
    /// blocks where it is geometrically valid
    /// ([`StageSchedule::shift_blocks`]). Off, every band rank stages
    /// fresh strided loads — cheaper when the schedule contains no
    /// shift ops to amortize the op-list walk.
    pub shared_stage: bool,
    /// Issue the software-prefetch line list
    /// ([`StageSchedule::prefetch_offs`]) for the next window plane.
    /// Only profitable inside multi-plane z-sliding runs
    /// ([`StageSchedule::run_len`] > 1); for single-plane runs the
    /// hinted plane is never staged by the same run and the hints are
    /// pure overhead.
    pub prefetch: bool,
}

impl Default for StagePolicy {
    fn default() -> Self {
        Self {
            shared_stage: true,
            prefetch: true,
        }
    }
}

/// One per-rank staging operation of the shared-staging schedule (see
/// [`StageSchedule::stage_ops`]). For x-adjacent tiles (`base` stepping
/// by `r1`), the cell rank `r` reads for tile `t ≥ 1` is the very cell
/// rank `src` (with `cell_offsets[src] = cell_offsets[r] + r1`) read for
/// tile `t − 1` — so all but the first column of a shifted rank's band
/// row is a contiguous in-scratch copy of the source rank's row instead
/// of `tiles_in_block` strided grid loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageOp {
    /// Stage every column of band rank `rank` from the source grid (one
    /// strided load per tile).
    Fresh {
        /// Band rank to stage.
        rank: u32,
    },
    /// Stage column 0 of `rank` from the grid, then copy columns
    /// `1..tiles_in_block` from columns `0..tiles_in_block − 1` of rank
    /// `src`'s already-staged row (same band).
    Shift {
        /// Band rank to stage.
        rank: u32,
        /// Source band rank (`cell_offsets[src] = cell_offsets[rank] + r1`).
        src: u32,
    },
}

impl<R: Real> StageSchedule<R> {
    /// Rows of the per-lane staged operand buffer: `window` bands plus
    /// the guaranteed-zero row.
    pub fn staged_depth(&self) -> usize {
        self.window * self.band_rows + 1
    }
}

/// Precomputed execution tables: the step-invariant part of `exec::run`'s
/// inner loop, hoisted into the compiled plan (the simulator-side analogue
/// of §3.3's host-precomputed lookup tables). Built once by [`compile`];
/// the executor's hot path only indexes, never divides.
///
/// All offsets here address the **ghost-padded** plane geometry
/// (`pad_ny × pad_nx` per plane, [`LayoutGeometry::pad_ny`]/`pad_nx`):
/// the executor embeds the grid in a padded domain where every tile's
/// gather window and output footprint is in-bounds by construction, so
/// there is no edge-tile path at all. The shipped [`CompiledStencil::
/// gather_lut`]/`scatter_lut` keep semantic-grid strides — they model
/// what the generated kernel uploads for the *unpadded* layout.
#[derive(Debug, Clone)]
pub struct ExecTables<R: Real> {
    /// Valid output rows per plane (`ny − ey + 1`).
    pub vy: usize,
    /// Valid output columns per plane (`nx − ex + 1`).
    pub vx: usize,
    /// Fragment-column blocks per plane (`⌈n' / frag.n⌉`).
    pub col_blocks: usize,
    /// Tiles per fragment-column block (`frag.n`).
    pub frag_n: usize,
    /// Fragment m-strips (`m_padded / frag.m`).
    pub m_strips: usize,
    /// Fragment k-strips (`k_logical / frag.k`).
    pub k_strips: usize,
    /// The per-step work list `(output plane, fragment column block)` —
    /// pure plan geometry, formerly rebuilt on every step. Ordered by
    /// **source locality**: column-block-major with `z` innermost, so
    /// each contiguous group of [`StageSchedule::run_len`] items is a
    /// z-sliding run whose consecutive items overlap in `window − 1`
    /// source planes (the order the staged gather's ring reuse needs).
    pub work: Vec<(usize, usize)>,
    /// Per-tile descriptors, plane-local tile order; bases in padded
    /// coordinates.
    pub tiles: Vec<TileDesc>,
    /// `(operand row, tile-base-relative padded input offset)` for every
    /// non-padding operand row the programs reference, on padded strides
    /// — the flat per-row gather LUT. The executor no longer walks it
    /// (it stages through [`ExecTables::stage`] instead); it is retained
    /// as the reference table the staging schedule is validated and
    /// property-tested against, row for row.
    pub gather_rows: Vec<(usize, usize)>,
    /// The two-phase staged-gather schedule (windows, ring maps, rebased
    /// programs) the executor stages and multiplies through.
    pub stage: StageSchedule<R>,
    /// Per `A''` row `< m'`: padded-plane output offset relative to the
    /// tile base (`(row / r1)·pad_nx + row % r1`). The scatter is
    /// unconditional — ghost outputs land in the padding and are restored
    /// by the boundary mirror.
    pub scatter_offs: Vec<usize>,
    /// Plane-relative `(offset, len)` row segments of the semantic
    /// boundary band that ghost scatters may overwrite; the executor
    /// copies them back from the previous buffer once per step ("boundary
    /// mirror"). Empty when the layout tiles the valid region exactly.
    pub mirror_segments: Vec<(usize, usize)>,
    /// Compiled operand programs `[slice][m_strip]`, spanning the full
    /// logical depth `k_logical` — the per-k-strip fragment programs
    /// concatenated in k-strip order (preserving the hardware's
    /// accumulation order), with the 2:4 metadata decode and zero-skip
    /// hoisted out of every MMA. Slice 0's programs are compiled
    /// **overwrite-first**: every row is guaranteed at least one entry
    /// (empty rows get a synthetic zero-store), so the executor's first
    /// scheduled multiply per row stores instead of accumulating and the
    /// per-work-item accumulator zeroing pass disappears.
    pub programs: Vec<Vec<RowProgram<R>>>,
}

/// Session-tagged batch work index: the union of `sessions` identical
/// per-session run lists over **one** shared plan, in the order the
/// batch executor's single guided queue drains it.
///
/// The claim unit of batched execution is one `(session, z-sliding
/// run)` pair — never a bare work item — so the staged ring's reuse
/// discipline survives batching unchanged: a run is staged and
/// multiplied by one lane start to finish, and every run *start*
/// re-stages its full window, which makes whatever another session left
/// in the lane's ring unreachable. Within a session the runs keep the
/// plan's column-block-major order ([`ExecTables::work`]); across
/// sessions the list is session-major, so the flat run index `f`
/// decomposes as `f = session · runs_per_session + local_run` and a
/// contiguous claim range stays inside one session until it drains.
///
/// The tagged list is the sequence `run(0) .. run(total_runs())` —
/// pure arithmetic over the flat claim index, never materialized. The
/// property tests pin it: it must be a permutation of the per-session
/// run lists, order-preserving within each session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchWork {
    /// Sessions in the batch.
    pub sessions: usize,
    /// z-sliding runs per session (`work.len() / run_len`).
    pub runs_per_session: usize,
    /// Work items per run (copied from [`StageSchedule::run_len`]).
    pub run_len: usize,
}

impl BatchWork {
    /// Total runs across all sessions (`sessions · runs_per_session`).
    pub fn total_runs(&self) -> usize {
        self.sessions * self.runs_per_session
    }

    /// The `(session, local run)` tag at flat claim index `f`.
    pub fn run(&self, f: usize) -> (usize, usize) {
        debug_assert!(f < self.total_runs());
        (f / self.runs_per_session, f % self.runs_per_session)
    }

    /// Work-item index range (into [`ExecTables::work`]) of one
    /// session-local run.
    pub fn items(&self, local_run: usize) -> std::ops::Range<usize> {
        local_run * self.run_len..(local_run + 1) * self.run_len
    }

    /// The same per-session run geometry re-tagged for a different
    /// member count — the membership-churn path
    /// ([`Batch::admit`](crate::session::Batch::admit) /
    /// [`Batch::retire`](crate::session::Batch::retire)). Pure
    /// arithmetic: no plan data is touched, so a resize costs nothing.
    /// Unlike [`ExecTables::batch_work`], `sessions == 0` is allowed
    /// here — a batch drained by retires holds no members until the
    /// next admit, and its work index must say so rather than panic.
    pub fn with_sessions(&self, sessions: usize) -> BatchWork {
        BatchWork { sessions, ..*self }
    }
}

impl<R: Real> ExecTables<R> {
    /// Build the session-tagged batch work index for `sessions`
    /// sessions sharing this plan (see [`BatchWork`]).
    ///
    /// # Panics
    /// Panics if `sessions` is zero.
    pub fn batch_work(&self, sessions: usize) -> BatchWork {
        assert!(sessions > 0, "a batch needs at least one session");
        let run_len = self.stage.run_len;
        BatchWork {
            sessions,
            runs_per_session: self.work.len() / run_len,
            run_len,
        }
    }

    fn build(
        grid_shape: [usize; 3],
        kernel_extent: [usize; 3],
        plan: &CrushPlan,
        geom: &LayoutGeometry,
        frag: FragmentShape,
        slices: &[SliceOperands<R>],
        gather_coords: &[(u32, u32, u32)],
    ) -> Self {
        let [_, ny, nx] = grid_shape;
        let [_, ey, ex] = kernel_extent;
        let vy = ny - ey + 1;
        let vx = nx - ex + 1;
        let (pad_ny, pad_nx) = (geom.pad_ny, geom.pad_nx);
        let pad_ps = pad_ny * pad_nx;
        let m_prime = plan.m_prime();
        let col_blocks = geom.tiles_per_plane.div_ceil(frag.n);
        let m_strips = geom.m_padded / frag.m;
        let k_strips = geom.k_logical / frag.k;

        // Locality-ordered work list: column-block-major, `z` innermost.
        // Each column block's `planes` items form one z-sliding run —
        // consecutive items share all but one source plane of their
        // gather window, which is what the staged ring reuses.
        let work: Vec<(usize, usize)> = (0..col_blocks)
            .flat_map(|cb| (0..geom.planes).map(move |z| (z, cb)))
            .collect();

        let tiles: Vec<TileDesc> = (0..geom.tiles_per_plane)
            .map(|tile| {
                let (oy, ox) = plan.tile_origin(tile, geom.tiles_x);
                TileDesc {
                    base: oy * pad_nx + ox,
                    oy,
                    ox,
                    interior: oy + plan.gy <= pad_ny && ox + plan.gx <= pad_nx,
                }
            })
            .collect();
        assert!(
            tiles.iter().all(|t| t.interior),
            "halo padding must make every tile interior"
        );

        // One program per m-strip spanning the whole logical depth: the
        // per-k-strip fragment programs concatenated in k-strip order,
        // which is exactly the order the per-strip MMA sequence
        // accumulates in. The first slice is the first write of every
        // accumulator element each step, so its programs are compiled
        // overwrite-first: empty rows get a synthetic zero-store entry,
        // pointed at an operand padding row (guaranteed zero in the
        // staging buffer) when the conversion produced one.
        let pad_zero_row = gather_coords.iter().position(|&(dz, _, _)| dz == u32::MAX);
        let zero_row = pad_zero_row.unwrap_or(0);
        let programs: Vec<Vec<RowProgram<R>>> = slices
            .iter()
            .enumerate()
            .map(|(si, slice)| {
                slice
                    .strips
                    .iter()
                    .enumerate()
                    .map(|(mi, row)| {
                        let parts: Vec<RowProgram<R>> = row
                            .iter()
                            .map(|op| match op {
                                Operand::Sparse(a24) => RowProgram::from_two_four(a24),
                                Operand::Dense(a) => RowProgram::from_dense(a),
                            })
                            .collect();
                        let prog = RowProgram::concat(&parts);
                        if si == 0 {
                            if pad_zero_row.is_none() {
                                // Without a guaranteed-zero B row, the
                                // synthetic store computes 0·b[0] — an
                                // exact +0 only if the row is never
                                // observed. Pin the invariant that empty
                                // rows occur only in the m-padding band
                                // (rows ≥ m', which the scatter never
                                // reads), so a future kernel that breaks
                                // it fails loudly at plan build instead
                                // of silently perturbing outputs.
                                for i in 0..prog.rows() {
                                    assert!(
                                        !prog.row(i).is_empty() || mi * frag.m + i >= m_prime,
                                        "empty program row {} below m' with no operand padding row",
                                        mi * frag.m + i
                                    );
                                }
                            }
                            prog.with_zero_fill_rows(zero_row)
                        } else {
                            prog
                        }
                    })
                    .collect()
            })
            .collect();

        // Operand rows actually referenced by some program entry: rows
        // outside this set (padding rows, and window cells every kernel
        // weight skips — common for star kernels in a box bounding box)
        // never feed an MMA lane, so the gather need not stage them.
        let mut referenced = vec![false; geom.k_logical];
        for slice_programs in &programs {
            for prog in slice_programs {
                for i in 0..prog.rows() {
                    for &(kk, _) in prog.row(i) {
                        referenced[kk as usize] = true;
                    }
                }
            }
        }

        // Gather offsets on padded strides; padding and unreferenced
        // rows dropped. (The semantic-stride `gather_lut` cannot be
        // reused here: its linear offsets bake in `ny·nx` plane
        // geometry.)
        let gather_rows: Vec<(usize, usize)> = gather_coords
            .iter()
            .enumerate()
            .filter(|&(i, &(dz, _, _))| dz != u32::MAX && referenced[i])
            .map(|(i, &(dz, iy, ix))| {
                (i, dz as usize * pad_ps + iy as usize * pad_nx + ix as usize)
            })
            .collect();

        // ---- Staging schedule ----
        // The staged executor assumes the z-folded single-slice operand
        // layout `compile` always emits (one stacked operand whose
        // gather coordinates span the kernel depth); anything else would
        // need per-slice rings.
        assert_eq!(
            slices.len(),
            1,
            "staged execution requires the z-folded single-slice operand layout"
        );
        let window = kernel_extent[0].max(1);

        // Union staging window: every in-plane cell some referenced row
        // reads at any depth, ranked in **first-reference (operand)
        // order** — the order the row programs consume operand rows in —
        // so the rebased programs keep the plain path's ascending `B`
        // read pattern through the MMA's inner loops (the MMA issues
        // 2–3× more staged reads than the stager issues writes, so its
        // access order is the one worth preserving; the stager absorbs
        // the permuted source offsets exactly as the flat gather did).
        // Staging the union (rather than the per-depth cell sets) is
        // what lets a band staged for depth `d` be reused verbatim when
        // the sliding window later reads the same plane at depth
        // `d − 1`.
        let mut cell_offsets: Vec<usize> = Vec::new();
        let mut rank_of = std::collections::HashMap::new();
        for (i, &(dz, iy, ix)) in gather_coords.iter().enumerate() {
            if dz != u32::MAX && referenced[i] {
                let off = iy as usize * pad_nx + ix as usize;
                rank_of.entry(off).or_insert_with(|| {
                    cell_offsets.push(off);
                    cell_offsets.len() - 1
                });
            }
        }
        let band_rows = cell_offsets.len();
        let staged_zero_row = window * band_rows;
        let staged_depth = staged_zero_row + 1;

        // Ring phase maps: operand row -> staged row, one map per
        // `z mod window`. The band a source plane lands in rotates with
        // `z` (plane `z + dz` lives in band `(z + dz) mod window`), so
        // the rebased addressing is phase-dependent.
        let stage_map: Vec<Vec<u32>> = (0..window)
            .map(|phase| {
                gather_coords
                    .iter()
                    .enumerate()
                    .map(|(i, &(dz, iy, ix))| {
                        if dz == u32::MAX || !referenced[i] {
                            staged_zero_row as u32
                        } else {
                            let off = iy as usize * pad_nx + ix as usize;
                            let rank = rank_of[&off];
                            let band = (phase + dz as usize) % window;
                            (band * band_rows + rank) as u32
                        }
                    })
                    .collect()
            })
            .collect();

        // Phase-rebased programs: slice 0's overwrite-first programs
        // with the `B` addressing rewritten onto the staged ring, then
        // compiled to the register-blocked lockstep layout the multi-row
        // kernels execute. Entry order is preserved per row (the blocked
        // layout only regroups addressing), so the staged MMA stays
        // bit-identical. Non-emptiness of every rebased row is *the*
        // plan-time guarantee the overwrite-first kernels rely on — the
        // single checked home of the invariant the hot loop used to
        // re-check per row.
        let staged_programs: Vec<Vec<BlockedRowProgram<R>>> = stage_map
            .iter()
            .map(|map| {
                programs[0]
                    .iter()
                    .map(|p| {
                        let rebased = p.remap_rows(map, staged_depth);
                        for i in 0..rebased.rows() {
                            assert!(
                                !rebased.row(i).is_empty(),
                                "overwrite-first programs guarantee non-empty rows (row {i})"
                            );
                        }
                        BlockedRowProgram::compile(&rebased, crate::exec::MMA_BLOCK_ROWS)
                    })
                    .collect()
            })
            .collect();

        // Shared-staging schedule (SPIDER-style): for x-adjacent tiles
        // (bases stepping by r1), rank r's staged cell for tile t equals
        // rank src's cell for tile t−1 whenever cell_offsets[src] =
        // cell_offsets[r] + r1 — the overlapping halo columns of the
        // union window. Such ranks become in-scratch shift copies;
        // ranks with no +r1 partner stay fresh grid loads.
        let mut stage_ops: Vec<StageOp> = Vec::with_capacity(band_rows);
        {
            let mut shifted: Vec<(usize, u32, u32)> = Vec::new();
            for (rank, &off) in cell_offsets.iter().enumerate() {
                match rank_of.get(&(off + plan.r1)) {
                    Some(&src) => shifted.push((off, rank as u32, src as u32)),
                    None => stage_ops.push(StageOp::Fresh { rank: rank as u32 }),
                }
            }
            // A shift's source offset is larger by r1, so descending
            // offset order stages every source (fresh or earlier shift
            // in the chain) before its dependents.
            shifted.sort_unstable_by_key(|s| std::cmp::Reverse(s.0));
            stage_ops.extend(
                shifted
                    .into_iter()
                    .map(|(_, rank, src)| StageOp::Shift { rank, src }),
            );
        }
        // Validate the op list once so the executor can run it without
        // checks: exact cover of the band ranks, offset relation on
        // every shift, and sources staged before dependents.
        {
            let mut staged_rank = vec![false; band_rows];
            for op in &stage_ops {
                match *op {
                    StageOp::Fresh { rank } => {
                        assert!(!staged_rank[rank as usize], "rank staged twice");
                        staged_rank[rank as usize] = true;
                    }
                    StageOp::Shift { rank, src } => {
                        assert!(!staged_rank[rank as usize], "rank staged twice");
                        assert!(
                            staged_rank[src as usize],
                            "shift source staged after its dependent"
                        );
                        assert_eq!(
                            cell_offsets[src as usize],
                            cell_offsets[rank as usize] + plan.r1,
                            "shift source is not the +r1 neighbor"
                        );
                        staged_rank[rank as usize] = true;
                    }
                }
            }
            assert!(
                staged_rank.iter().all(|&s| s),
                "stage ops must cover every band rank"
            );
        }

        // Shift validity is per column block: the copy identity needs
        // every consecutive tile pair x-adjacent in one tile row. Blocks
        // wrapping a tile-row boundary (and the final partial block when
        // it wraps) stage fresh.
        let shift_blocks: Vec<bool> = (0..col_blocks)
            .map(|cb| {
                let first = cb * frag.n;
                let count = frag.n.min(geom.tiles_per_plane - first);
                tiles[first..first + count]
                    .windows(2)
                    .all(|w| w[1].oy == w[0].oy && w[1].base == w[0].base + plan.r1)
            })
            .collect();

        // Reuse descriptors: planes of the staged window shared with the
        // previous work item in schedule order.
        let overlap: Vec<u32> = (0..work.len())
            .map(|wi| {
                if wi % geom.planes == 0 {
                    0
                } else {
                    (window - 1) as u32
                }
            })
            .collect();

        // Prefetch line list: the union of cache lines one
        // (plane, column block) staging pass touches, relative to
        // `plane base + first tile base`, assuming x-adjacent tiles
        // (bases stepping by `r1` — exact for shift blocks, a harmless
        // superset for wrapping blocks since prefetch is only a hint).
        let prefetch_offs: Vec<u32> = {
            let epl = (64 / std::mem::size_of::<R>()).max(1);
            let span = (frag.n - 1) * plan.r1;
            let mut lines = std::collections::BTreeSet::new();
            for &off in &cell_offsets {
                // `+1` line covers footprints straddling a boundary
                // when the runtime base is not line-aligned.
                for l in (off / epl)..=((off + span) / epl + 1) {
                    lines.insert(l);
                }
            }
            lines.into_iter().map(|l| (l * epl) as u32).collect()
        };

        let stage = StageSchedule {
            window,
            band_rows,
            cell_offsets,
            run_len: geom.planes,
            overlap,
            zero_row: staged_zero_row,
            stage_map,
            programs: staged_programs,
            stage_ops,
            shift_blocks,
            prefetch_offs,
            policy: StagePolicy::default(),
        };
        assert_eq!(
            work.len(),
            stage.run_len * col_blocks,
            "work list must decompose into whole z-sliding runs"
        );
        // Staged loads stay inside the padded grid for the unchecked
        // fast path: deepest window plane of the last run item, largest
        // tile base, largest union-cell offset.
        if let (Some(max_base), Some(&max_cell)) = (
            tiles.iter().map(|t| t.base).max(),
            stage.cell_offsets.iter().max(),
        ) {
            assert!(
                (geom.planes - 1 + window - 1) * pad_ps + max_base + max_cell
                    < grid_shape[0] * pad_ps,
                "staging window exceeds the padded grid"
            );
        }

        let scatter_offs: Vec<usize> = (0..m_prime)
            .map(|row| (row / plan.r1) * pad_nx + row % plan.r1)
            .collect();

        // Boundary mirror: ghost outputs (tile rows/cols past the valid
        // region) are scattered unconditionally into the padded plane and
        // may overlap the semantic boundary band `[vy, ny) × [0, nx)` and
        // `[0, vy) × [vx, nx)`, whose cells must keep their original
        // input values. Record the overwritten row segments once; the
        // executor restores them from the previous buffer after each
        // step's scatter. Cells past the semantic grid (`≥ ny`/`≥ nx`)
        // are pure ghost and never need restoring.
        let mut mirror_segments: Vec<(usize, usize)> = Vec::new();
        if geom.tiles_x * plan.r1 > vx && nx > vx {
            for y in 0..vy {
                mirror_segments.push((y * pad_nx + vx, nx - vx));
            }
        }
        if geom.tiles_y * plan.r2 > vy {
            for y in vy..ny {
                mirror_segments.push((y * pad_nx, nx));
            }
        }

        // Validate the gather indexing once, so the executor can use
        // unchecked loads: the largest possible data index — deepest
        // source plane, bottom-right tile, largest offset — must be
        // inside the padded buffer.
        if let Some(max_base) = tiles.iter().map(|t| t.base).max() {
            let max_off = gather_rows.iter().map(|&(_, off)| off).max().unwrap_or(0);
            let max_dz = slices.iter().map(|s| s.dz).max().unwrap_or(0);
            assert!(
                (geom.planes - 1 + max_dz) * pad_ps + max_base + max_off < grid_shape[0] * pad_ps,
                "gather table exceeds the padded grid"
            );
        }

        Self {
            vy,
            vx,
            col_blocks,
            frag_n: frag.n,
            m_strips,
            k_strips,
            work,
            tiles,
            gather_rows,
            stage,
            scatter_offs,
            mirror_segments,
            programs,
        }
    }

    /// Fraction of fragment-column blocks containing at least one
    /// non-interior (edge) tile — the work share that would fall off the
    /// branch-free gather path. `0.0` for every plan since the executor
    /// plans over the halo-padded domain; emitted per benchmark case as
    /// the regression guard for that invariant.
    pub fn edge_block_fraction(&self) -> f64 {
        if self.col_blocks == 0 {
            return 0.0;
        }
        let edge_blocks = (0..self.col_blocks)
            .filter(|cb| {
                let first = cb * self.frag_n;
                let count = self.frag_n.min(self.tiles.len() - first);
                self.tiles[first..first + count].iter().any(|t| !t.interior)
            })
            .count();
        edge_blocks as f64 / self.col_blocks as f64
    }
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The kernel is larger than the grid on some axis.
    KernelTooLarge {
        /// Offending axis (0 = z).
        axis: usize,
    },
    /// Sparse execution requested at a precision without hardware 2:4
    /// support (FP64 — §4.7).
    SparseUnsupported {
        /// The requested precision.
        precision: Precision,
    },
    /// Fragment/mode mismatch (e.g. dense fragment in sparse mode).
    FragmentModeMismatch,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::KernelTooLarge { axis } => {
                write!(f, "kernel larger than grid on axis {axis}")
            }
            CompileError::SparseUnsupported { precision } => {
                write!(f, "no sparse tensor core support at {}", precision.name())
            }
            CompileError::FragmentModeMismatch => {
                write!(f, "fragment shape incompatible with mode")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compilation options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Operand precision (default FP16, the paper's main mode).
    pub precision: Precision,
    /// Fragment geometry; `None` picks the mode's default.
    pub frag: Option<FragmentShape>,
    /// Sparse or dense tensor-core execution.
    pub mode: ExecMode,
    /// Matching strategy for sparsity conversion.
    pub strategy: Strategy,
    /// Fixed `(r1, r2)`, or `None` to run layout exploration.
    pub layout: Option<(usize, usize)>,
    /// Runtime optimization flags.
    pub flags: OptFlags,
    /// Search-space bound per axis for exploration.
    pub max_r: usize,
    /// Hardware model.
    pub gpu: GpuConfig,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            precision: Precision::Fp16,
            frag: None,
            mode: ExecMode::SparseTcu,
            strategy: Strategy::Auto,
            layout: None,
            flags: OptFlags::default(),
            max_r: 16,
            gpu: GpuConfig::a100(),
        }
    }
}

impl Options {
    /// The fragment geometry in effect.
    pub fn effective_frag(&self) -> FragmentShape {
        self.frag.unwrap_or(match (self.mode, self.precision) {
            (ExecMode::SparseTcu, Precision::Fp64) => FragmentShape::sparse_fp64_projected(),
            (ExecMode::SparseTcu, _) => FragmentShape::sparse_fp16(),
            (ExecMode::DenseTcu, Precision::Fp64) => FragmentShape::dense_fp64(),
            (ExecMode::DenseTcu, _) => FragmentShape::dense_fp16(),
        })
    }
}

/// A fully compiled stencil: the simulator-executable equivalent of the
/// generated CUDA kernel.
#[derive(Debug, Clone)]
pub struct CompiledStencil<R: Real> {
    /// The (possibly temporally fused) kernel this plan executes.
    pub kernel: StencilKernel,
    /// Grid shape the plan was compiled for.
    pub grid_shape: [usize; 3],
    /// Crush geometry.
    pub plan: CrushPlan,
    /// Derived layout geometry (Equation 9 quantities).
    pub geom: LayoutGeometry,
    /// Fragment geometry.
    pub frag: FragmentShape,
    /// Execution mode.
    pub mode: ExecMode,
    /// Operand precision.
    pub precision: Precision,
    /// Optimization flags.
    pub flags: OptFlags,
    /// Hardware model.
    pub gpu: GpuConfig,
    /// PIT permutation used (identity-with-padding in dense mode).
    pub perm: Permutation,
    /// Per-slice operands, `[dz]` → strips `[mi][ki]`.
    pub slices: Vec<SliceOperands<R>>,
    /// Gather LUT: operand row → input offset relative to the tile base
    /// (`dz·plane_stride + iy·nx + ix`), `-1` for padding rows. This is
    /// the table the generated kernel ships to the GPU.
    pub gather_lut: Vec<i64>,
    /// Gather coordinates `(dz, iy, ix)` per operand row (`u32::MAX`
    /// triple for padding rows) — used by the executor's edge-tile path,
    /// where the linear offset alone cannot be bounds-checked.
    pub gather_coords: Vec<(u32, u32, u32)>,
    /// Scatter LUT: `A''` row → output offset within the plane relative
    /// to the tile base, `usize::MAX` for padded rows.
    pub scatter_lut: Vec<usize>,
    /// Which matcher the conversion used.
    pub strategy_used: &'static str,
    /// Host preprocessing times.
    pub prep: PrepStats,
    /// Launch geometry for the occupancy model.
    pub launch: LaunchConfig,
    /// Precomputed execution tables (per-tile descriptors, work list,
    /// split gather LUT, compiled operand programs) for the
    /// zero-allocation executor.
    pub exec: ExecTables<R>,
}

impl<R: Real> CompiledStencil<R> {
    /// Total metadata bytes across all operand strips (Figure 8's MD
    /// artifact).
    pub fn metadata_bytes(&self) -> usize {
        self.slices
            .iter()
            .flat_map(|s| s.strips.iter().flatten())
            .map(Operand::metadata_bytes)
            .sum()
    }

    /// Lookup-table size in bytes (Figure 8's LUT artifact).
    pub fn lut_bytes(&self) -> usize {
        self.gather_lut.len() * 8 + self.scatter_lut.len() * 8
    }

    /// Achieved occupancy under the launch model.
    pub fn occupancy(&self) -> f64 {
        self.launch.occupancy(&self.gpu)
    }
}

/// Compile a stencil kernel for a grid (Automatic Kernel Generation).
pub fn compile<R: Real>(
    kernel: &StencilKernel,
    grid_shape: [usize; 3],
    options: &Options,
) -> Result<CompiledStencil<R>, CompileError> {
    let e = kernel.extent();
    for axis in 0..3 {
        if grid_shape[axis] < e[axis] {
            return Err(CompileError::KernelTooLarge { axis });
        }
    }
    let frag = options.effective_frag();
    match options.mode {
        ExecMode::SparseTcu => {
            if !frag.sparse {
                return Err(CompileError::FragmentModeMismatch);
            }
            if !options.gpu.supports_sparse(options.precision) {
                return Err(CompileError::SparseUnsupported {
                    precision: options.precision,
                });
            }
        }
        ExecMode::DenseTcu => {
            if frag.sparse {
                return Err(CompileError::FragmentModeMismatch);
            }
        }
    }

    let mut prep = PrepStats::default();

    // ---- Layout exploration (Equation 11) or fixed layout. ----
    let t0 = Instant::now();
    let (r1, r2) = match options.layout {
        Some(rs) => rs,
        None => {
            layout::explore(
                kernel,
                grid_shape,
                frag,
                options.mode,
                options.precision,
                &options.gpu,
                options.max_r,
            )
            .best
        }
    };
    prep.search_s = t0.elapsed().as_secs_f64();

    let [ez, ey, ex] = e;
    let plan = CrushPlan::new(ey, ex, r1, r2);

    // ---- Transformation: crush + sparsity conversion. ----
    // 3D kernels fold their depth slices into ONE stacked operand of
    // width `ez·k'` (source column `dz·k' + s` multiplies the input at
    // depth offset `dz`), so fragment depth amortizes across the whole
    // z-accumulation.
    let t0 = Instant::now();
    let k_stacked = ez * plan.k_prime();
    let mut stacked = DenseMatrix::<f64>::zeros(plan.m_prime(), k_stacked);
    for dz in 0..ez {
        let a_dz = build_a_prime(&kernel.slice2d(dz), &plan);
        stacked.set_block(0, dz * plan.k_prime(), &a_dz);
    }

    let (perm, strategy_used) = match options.mode {
        ExecMode::DenseTcu => {
            // Identity order padded up to a fragment multiple.
            let k_pad = k_stacked.div_ceil(frag.k) * frag.k;
            let mut order: Vec<usize> = (0..k_stacked).collect();
            order.resize(k_pad, Permutation::PAD);
            (Permutation::from_order(order, k_stacked), "dense")
        }
        ExecMode::SparseTcu => {
            let conv = convert::convert_segments(&stacked, &plan, ez, options.strategy);
            // Round the converted width up to a fragment multiple.
            let k_pad = conv.k_converted().div_ceil(frag.k) * frag.k;
            let mut order = conv.perm.order().to_vec();
            order.resize(k_pad, Permutation::PAD);
            (
                Permutation::from_order(order, k_stacked),
                conv.strategy_used,
            )
        }
    };
    prep.transform_s = t0.elapsed().as_secs_f64();

    let k_logical = perm.len();
    let m_padded = plan.m_prime().div_ceil(frag.m) * frag.m;

    // ---- Operand build + metadata generation (2:4 compression). ----
    let t0 = Instant::now();
    let permuted = perm.apply_to_cols(&stacked);
    let quantized = DenseMatrix::<R>::from_fn(m_padded, k_logical, |r, c| {
        if r < plan.m_prime() {
            R::from_f64(options.precision.round_f64(permuted.get(r, c)))
        } else {
            R::ZERO
        }
    });
    let m_strips = m_padded / frag.m;
    let k_strips = k_logical / frag.k;
    let mut strips = Vec::with_capacity(m_strips);
    for mi in 0..m_strips {
        let mut row = Vec::with_capacity(k_strips);
        for ki in 0..k_strips {
            let block = quantized.block(mi * frag.m, ki * frag.k, frag.m, frag.k);
            row.push(match options.mode {
                ExecMode::SparseTcu => Operand::Sparse(
                    TwoFourMatrix::compress(&block)
                        .expect("conversion guarantees 2:4 compatibility"),
                ),
                ExecMode::DenseTcu => Operand::Dense(block),
            });
        }
        strips.push(row);
    }
    let slices = vec![SliceOperands { dz: 0, strips }];
    prep.metadata_s = t0.elapsed().as_secs_f64();

    // ---- Lookup tables. ----
    let t0 = Instant::now();
    let nx = grid_shape[2];
    let plane_stride = grid_shape[1] * grid_shape[2];
    let gather_coords: Vec<(u32, u32, u32)> = (0..k_logical)
        .map(|j| {
            let src = perm.source_of(j);
            if src == Permutation::PAD {
                (u32::MAX, u32::MAX, u32::MAX)
            } else {
                let dz = src / plan.k_prime();
                let rem = src % plan.k_prime();
                (dz as u32, (rem / plan.gx) as u32, (rem % plan.gx) as u32)
            }
        })
        .collect();
    let gather_lut: Vec<i64> = gather_coords
        .iter()
        .map(|&(dz, iy, ix)| {
            if dz == u32::MAX {
                -1
            } else {
                (dz as usize * plane_stride + iy as usize * nx + ix as usize) as i64
            }
        })
        .collect();
    let scatter_lut: Vec<usize> = (0..m_padded)
        .map(|row| {
            if row < plan.m_prime() {
                let (j2, j1) = (row / plan.r1, row % plan.r1);
                j2 * nx + j1
            } else {
                usize::MAX
            }
        })
        .collect();
    prep.lut_s = t0.elapsed().as_secs_f64();

    let mut geom = layout::geometry(kernel, grid_shape, r1, r2, frag, options.mode);
    // The explorer's pad count is an estimate; pin the geometry to the
    // conversion's actual converted width so Equation-9 counts match the
    // executed fragment ops exactly.
    layout::refine_geometry(&mut geom, frag, k_logical, perm.pad_count());

    // Launch geometry: persistent blocks (grid-stride over 4
    // fragment-column blocks at a time), 128 threads (4 warps),
    // double-buffered staging in shared memory.
    let tiles_total = geom.tiles_per_plane * geom.planes;
    let col_blocks = tiles_total.div_ceil(frag.n);
    let blocks = col_blocks
        .div_ceil(4)
        .min(layout::PERSISTENT_BLOCKS as usize);
    let stage_bytes = 4 * frag.n * plan.k_prime() * options.precision.bytes();
    let buffers = if options.flags.double_buffer { 2 } else { 1 };
    let launch = LaunchConfig {
        blocks,
        threads_per_block: 128,
        shared_bytes_per_block: (buffers * stage_bytes).min(options.gpu.shared_per_sm),
    };

    let exec = ExecTables::build(grid_shape, e, &plan, &geom, frag, &slices, &gather_coords);

    Ok(CompiledStencil {
        kernel: kernel.clone(),
        grid_shape,
        plan,
        geom,
        frag,
        mode: options.mode,
        precision: options.precision,
        flags: options.flags,
        gpu: options.gpu.clone(),
        perm,
        slices,
        gather_lut,
        gather_coords,
        scatter_lut,
        strategy_used,
        prep,
        launch,
        exec,
    })
}

// ---------------------------------------------------------------------------
// Plan-time cost model and auto-tuning
// ---------------------------------------------------------------------------

impl<R: Real> CompiledStencil<R> {
    /// `true` iff every output cell's multiply schedule accumulates its
    /// kernel points in **canonical order** — each interior program
    /// row's entries strictly ascending in the logical source
    /// coordinates `(dz, iy, ix)`. For a fixed output row the window
    /// coordinates are the kernel offsets shifted by the row's in-tile
    /// position, so ascending `(dz, iy, ix)` is ascending kernel-point
    /// order `(dz, ky, kx)` — a tile-shape-independent ordering.
    ///
    /// Two plans for the same kernel/grid/precision that are **both**
    /// canonical perform, per output cell, the identical ordered
    /// sequence of (quantized weight × gathered value) accumulations —
    /// regardless of their `(r1, r2)` tile shapes — so their outputs
    /// are bit-identical for every input and step count.
    ///
    /// This is a *sufficient* certificate but far from necessary: the
    /// staircase conversion's column permutation usually leaves rows in
    /// a consistent non-ascending order that many layouts share, which
    /// is why [`tune`] gates tile-shape switches on an empirical
    /// bit-equality probe instead and reports this predicate only as a
    /// diagnostic ([`PlanChoice::canonical`]).
    pub fn accumulation_canonical(&self) -> bool {
        let m_prime = self.plan.m_prime();
        let frag_m = self.frag.m;
        self.exec.programs.iter().all(|slice_programs| {
            slice_programs.iter().enumerate().all(|(mi, prog)| {
                (0..prog.rows()).all(|i| {
                    if mi * frag_m + i >= m_prime {
                        return true; // padding rows (incl. synthetic zero stores)
                    }
                    prog.row(i).windows(2).all(|w| {
                        let a = self.gather_coords[w[0].0 as usize];
                        let b = self.gather_coords[w[1].0 as usize];
                        a < b
                    })
                })
            })
        })
    }
}

/// The cost-model inputs [`tune`] reads off a compiled plan's tables —
/// the simulator-relevant geometry the analytic GPU model
/// ([`crate::layout::explore`]) cannot see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableMetrics {
    /// Staged cells per band ([`StageSchedule::band_rows`]).
    pub band_rows: usize,
    /// Ring depth (kernel z-extent).
    pub window: usize,
    /// Work items per z-sliding run.
    pub run_len: usize,
    /// Gather-footprint density: referenced union-window cells over the
    /// full `gy × gx` window area. Low density (star kernels in a box
    /// window) means the staged band is small relative to the tile.
    pub gather_density: f64,
    /// Band ranks staged by strided grid loads per tile column.
    pub fresh_ranks: usize,
    /// Band ranks staged as in-scratch shift copies (shared staging).
    pub shift_ranks: usize,
    /// Scheduled multiplies per (plane, column block) work item.
    pub entries: usize,
    /// Fraction of scheduled multiplies executed through register-blocked
    /// lockstep streams (the rest fall back to ragged row-serial MMA).
    pub lockstep_fraction: f64,
    /// Operand padding rows (`m_padded − m'`) — dead MMA lanes.
    pub padding_rows: usize,
    /// Boundary-mirror cells restored per step.
    pub mirror_cells: usize,
}

/// Extract the [`TableMetrics`] of a compiled plan.
pub fn metrics<R: Real>(plan: &CompiledStencil<R>) -> TableMetrics {
    let ss = &plan.exec.stage;
    let (mut fresh, mut shift) = (0usize, 0usize);
    for op in &ss.stage_ops {
        match op {
            StageOp::Fresh { .. } => fresh += 1,
            StageOp::Shift { .. } => shift += 1,
        }
    }
    let (mut uniform_entries, mut total_entries) = (0usize, 0usize);
    for prog in &ss.programs[0] {
        total_entries += prog.nnz();
        for &(_, steps) in prog.blocks().iter().flatten() {
            uniform_entries += steps as usize * prog.block_rows();
        }
    }
    TableMetrics {
        band_rows: ss.band_rows,
        window: ss.window,
        run_len: ss.run_len,
        gather_density: ss.band_rows as f64 / (plan.plan.gy * plan.plan.gx) as f64,
        fresh_ranks: fresh,
        shift_ranks: shift,
        entries: total_entries,
        lockstep_fraction: if total_entries == 0 {
            1.0
        } else {
            uniform_entries as f64 / total_entries as f64
        },
        padding_rows: plan.geom.m_padded - plan.plan.m_prime(),
        mirror_cells: plan.exec.mirror_segments.iter().map(|&(_, n)| n).sum(),
    }
}

/// Modeled cost of one staged step under `policy`, in arbitrary units
/// (relative ranking is what [`tune`] consumes). The terms mirror the
/// executor's phases — see the module-level "Cost model" section for
/// the inputs and weights.
pub fn model_step_cost<R: Real>(plan: &CompiledStencil<R>, policy: StagePolicy) -> f64 {
    // Per-element weights, calibrated against `exec::profile_phases` on
    // the SIMD engine: strided gather loads dominate; lockstep MMA
    // lanes and contiguous copies are cheap; ragged row-serial MMA
    // lanes pay the per-row loop overhead; scatter stores are strided.
    const C_GATHER: f64 = 1.0;
    const C_SHIFT: f64 = 0.2;
    const C_PF: f64 = 0.15;
    const C_MMA_LOCKSTEP: f64 = 0.35;
    const C_MMA_RAGGED: f64 = 0.8;
    const C_SCATTER: f64 = 0.45;
    const C_MIRROR: f64 = 0.1;
    // Fraction of strided-gather latency the prefetch hints hide when a
    // z-sliding run gives them a plane of lead time.
    const PF_RELIEF: f64 = 0.25;

    let ss = &plan.exec.stage;
    let m = metrics(plan);
    let frag_n = plan.frag.n;
    let tiles_per_plane = plan.geom.tiles_per_plane;
    let col_blocks = plan.exec.col_blocks;
    let m_prime = plan.plan.m_prime();

    // MMA + scatter per work item are block-width-independent /
    // -dependent respectively; staging depends on the block's shift
    // validity and width.
    let mma_per_item = m.entries as f64
        * frag_n as f64
        * (m.lockstep_fraction * C_MMA_LOCKSTEP + (1.0 - m.lockstep_fraction) * C_MMA_RAGGED);

    // Prefetch only has a target when the run has a next plane; its
    // relief applies to the staged planes that had a hint issued one
    // item earlier (all but each run's first item).
    let pf_active = policy.prefetch && m.run_len > 1;
    let covered = if pf_active {
        (m.run_len - 1) as f64 / m.run_len as f64
    } else {
        0.0
    };
    let gather_unit = C_GATHER * (1.0 - PF_RELIEF * covered);

    let mut cost = 0.0;
    for cb in 0..col_blocks {
        let n_t = frag_n.min(tiles_per_plane - cb * frag_n);
        // Planes staged across the block's whole run: `window` for the
        // first item, one fresh plane for each of the rest.
        let staged_planes = (m.window + m.run_len - 1) as f64;
        let stage_per_plane = if policy.shared_stage && ss.shift_blocks[cb] {
            (m.fresh_ranks * n_t + m.shift_ranks) as f64 * gather_unit
                + (m.shift_ranks * n_t.saturating_sub(1)) as f64 * C_SHIFT
        } else {
            (m.band_rows * n_t) as f64 * gather_unit
        };
        cost += staged_planes * stage_per_plane;
        let items = m.run_len as f64;
        if policy.prefetch {
            cost += items * ss.prefetch_offs.len() as f64 * C_PF;
        }
        cost += items * mma_per_item;
        cost += items * (m_prime * n_t) as f64 * C_SCATTER;
    }
    cost + m.mirror_cells as f64 * C_MIRROR
}

/// Tuner knobs for [`tune_with`]. The defaults are the
/// results-preserving configuration [`tune`] uses: no temporal fusion
/// (fusing re-quantizes composed weights, so a fused plan is *not*
/// bit-identical to stepping the base plan) and a 3% adoption margin so
/// modeled near-ties keep the oracle's layout. The margin is pure
/// performance hysteresis — bit-safety comes from the probe, not the
/// margin.
#[derive(Debug, Clone, Copy)]
pub struct TuneOpts {
    /// Maximum temporal-fusion depth the tuner may adopt. `1` (the
    /// default) guarantees the chosen plan is bit-identical to the
    /// default plan; depths above 1 trade exactness for fewer sweeps
    /// and must be opted into explicitly.
    pub max_fusion: usize,
    /// Relative modeled-cost improvement a candidate must exceed to be
    /// adopted over the default — hysteresis against model noise.
    pub margin: f64,
    /// How many of the cheapest under-margin layout candidates to
    /// bit-verify against the default before giving up (each probe
    /// costs a few engine steps on the caller's grid shape).
    pub probe_attempts: usize,
    /// Steps per bit-equality probe. Accumulation order is
    /// data-independent, so a short run certifies all step counts; a
    /// couple of steps exercises the cross-step staging ring.
    pub probe_steps: usize,
}

impl Default for TuneOpts {
    fn default() -> Self {
        Self {
            max_fusion: 1,
            margin: 0.03,
            probe_attempts: 4,
            probe_steps: 3,
        }
    }
}

/// The decision [`tune`] made, alongside the fixed-default oracle's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanChoice {
    /// Tile shape of the adopted plan.
    pub layout: (usize, usize),
    /// Tile shape of the fixed-default plan (the oracle).
    pub default_layout: (usize, usize),
    /// Adopted staging-window policy.
    pub policy: StagePolicy,
    /// Adopted temporal-fusion depth (`1` unless opted into via
    /// [`TuneOpts::max_fusion`]).
    pub fusion: usize,
    /// Layout candidates scored (including the default).
    pub candidates: usize,
    /// Modeled per-application cost of the adopted configuration.
    pub cost: f64,
    /// Modeled cost of the default plan under the default policy.
    pub default_cost: f64,
    /// Whether a non-default tile shape was adopted. When `true` the
    /// adopted layout passed the bit-equality probe against the
    /// default plan.
    pub retuned: bool,
    /// Whether measured validation rejected the model's proposal and
    /// the default configuration was restored. A `true` here is the
    /// never-slower backstop firing: the model scored a candidate as
    /// cheaper but the timed probe disagreed.
    pub reverted: bool,
    /// Structural diagnostic: whether the adopted plan's accumulation
    /// order is canonical (strictly coordinate-ascending per row). Not
    /// the adoption gate — see
    /// [`CompiledStencil::accumulation_canonical`].
    pub canonical: bool,
}

/// Results-preserving auto-tune: [`tune_with`] under [`TuneOpts::default`].
/// The returned plan's output is bit-identical to the default
/// [`compile`]'s for every input and step count — tuning may change
/// speed, never results (pinned by the tuner proptest).
pub fn tune<R: Real>(
    kernel: &StencilKernel,
    grid_shape: [usize; 3],
    options: &Options,
) -> Result<(CompiledStencil<R>, PlanChoice), CompileError> {
    tune_with(kernel, grid_shape, options, &TuneOpts::default())
}

/// Auto-tune tile shape, staging-window policy, and temporal-fusion
/// depth from the compiled tables (see the module-level "Cost model"
/// section). The fixed-default [`compile`] path is the oracle: a
/// candidate is adopted only when the model scores it at least
/// [`TuneOpts::margin`] cheaper, and a non-default **tile shape** is
/// additionally bit-verified — both plans run
/// [`TuneOpts::probe_steps`] engine steps on a deterministic probe
/// grid and the candidate is adopted only if the outputs are
/// bit-identical (accumulation order is data-independent, so one probe
/// certifies every input and step count). Any adopted non-default
/// configuration is then **measured-validated**: default and tuned are
/// timed interleaved on the probe grid and the default is restored
/// ([`PlanChoice::reverted`]) if the tuned configuration measures
/// slower — the model proposes, measurement disposes. Fusion depths
/// above 1 are *never* bit-preserving and require
/// [`TuneOpts::max_fusion`] > 1.
pub fn tune_with<R: Real>(
    kernel: &StencilKernel,
    grid_shape: [usize; 3],
    options: &Options,
    tune_opts: &TuneOpts,
) -> Result<(CompiledStencil<R>, PlanChoice), CompileError> {
    let default_plan = compile::<R>(kernel, grid_shape, options)?;
    let default_layout = (default_plan.plan.r1, default_plan.plan.r2);
    let default_cost = model_step_cost(&default_plan, StagePolicy::default());
    let margin = tune_opts.margin.max(0.0);
    let probe_steps = tune_opts.probe_steps.max(1);

    // ---- Tile shape: pick the cheapest *bit-verified* candidate. ----
    // A caller-pinned layout stays pinned; otherwise candidates come
    // from a bounded lattice around the fragment height (including the
    // non-power-of-2 shapes the analytic explorer favors). Candidates
    // that beat the margin are bit-probed cheapest-first: both plans
    // run a few steps on a deterministic grid, and the first candidate
    // whose output matches the default's exactly is adopted.
    let mut best_plan = default_plan.clone();
    let mut best_cost = default_cost;
    let mut best_layout = default_layout;
    let mut candidates = 1usize;
    if options.layout.is_none() {
        let frag = options.effective_frag();
        let [_, ey, ex] = kernel.extent();
        let (vy, vx) = (grid_shape[1] - ey + 1, grid_shape[2] - ex + 1);
        let mut scored: Vec<(f64, CompiledStencil<R>)> = Vec::new();
        for &r1 in &[1usize, 2, 3, 4, 5, 6, 8, 10, 12, 16] {
            for &r2 in &[1usize, 2, 3, 4, 5, 6, 8, 10, 12, 16] {
                if (r1, r2) == default_layout
                    || (kernel.dims() == 1 && r2 != 1)
                    || r1 > options.max_r
                    || r2 > options.max_r
                    || r1 > vx
                    || r2 > vy
                {
                    continue;
                }
                let m_prime = r1 * r2;
                if m_prime < frag.m / 2 || m_prime > 2 * frag.m {
                    continue;
                }
                let cand_opts = Options {
                    layout: Some((r1, r2)),
                    ..options.clone()
                };
                let Ok(cand) = compile::<R>(kernel, grid_shape, &cand_opts) else {
                    continue;
                };
                candidates += 1;
                let cost = model_step_cost(&cand, StagePolicy::default());
                if cost < default_cost * (1.0 - margin) {
                    scored.push((cost, cand));
                }
            }
        }
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        if !scored.is_empty() {
            let probe = crate::grid::Grid::<R>::smooth_random(kernel.dims(), grid_shape);
            let (oracle, _) = crate::exec::run(&best_plan, &probe, probe_steps);
            for (cost, cand) in scored.into_iter().take(tune_opts.probe_attempts) {
                let (out, _) = crate::exec::run(&cand, &probe, probe_steps);
                if out.as_slice() == oracle.as_slice() {
                    best_cost = cost;
                    best_layout = (cand.plan.r1, cand.plan.r2);
                    best_plan = cand;
                    break;
                }
            }
        }
    }

    // ---- Staging-window policy: exhaustive over the 2×2 lattice. ----
    // Every combination is bit-identical (pure data movement), so the
    // model's argmin is adopted directly, no margin needed.
    let mut policy = StagePolicy::default();
    for shared_stage in [true, false] {
        for prefetch in [true, false] {
            let p = StagePolicy {
                shared_stage,
                prefetch,
            };
            let cost = model_step_cost(&best_plan, p);
            if cost < best_cost {
                best_cost = cost;
                policy = p;
            }
        }
    }
    best_plan.exec.stage.policy = policy;

    // ---- Measured validation: the model proposes, the probe disposes. ----
    // Layout and policy switches are bit-safe, so the only risk a model
    // error carries is speed. When the adopted configuration differs
    // from the default, build a persistent session per plan (so setup —
    // quantization, staging buffers — stays outside the timed region,
    // matching steady-state use), warm both up, then time interleaved
    // tuned/default step chunks and take the median per-pair ratio so
    // machine drift hits both sides of every pair equally. If the tuned
    // configuration measures slower, the default is restored. "Never
    // slower than the oracle" is part of the tuner's contract, and a
    // cost model cannot guarantee it alone.
    let mut reverted = false;
    if best_layout != default_layout || policy != StagePolicy::default() {
        let probe = crate::grid::Grid::<R>::smooth_random(kernel.dims(), grid_shape);
        let chunk = probe_steps.max(2);
        let median_ratio = {
            let mut def_sim = crate::session::Simulation::new(
                crate::session::EngineBackend::with_parallelism(&default_plan, &probe, 1),
            );
            let mut tuned_sim = crate::session::Simulation::new(
                crate::session::EngineBackend::with_parallelism(&best_plan, &probe, 1),
            );
            def_sim.step_n(chunk);
            tuned_sim.step_n(chunk);
            let mut ratios = [0.0f64; 3];
            for r in ratios.iter_mut() {
                let t0 = Instant::now();
                tuned_sim.step_n(chunk);
                let t_tuned = t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                def_sim.step_n(chunk);
                let t_def = t0.elapsed().as_secs_f64();
                *r = t_tuned / t_def.max(f64::MIN_POSITIVE);
            }
            ratios.sort_by(|a, b| a.total_cmp(b));
            ratios[1]
        };
        if median_ratio > 1.0 {
            best_plan = default_plan.clone();
            best_cost = default_cost;
            best_layout = default_layout;
            policy = StagePolicy::default();
            reverted = true;
        }
    }

    // ---- Temporal fusion: opt-in, never bit-preserving. ----
    // Depth `d` executes `d` applications per staged sweep; its modeled
    // per-application cost is the fused step cost over `d`.
    let mut fusion = 1usize;
    for depth in 2..=tune_opts.max_fusion.max(1) {
        let fused_kernel = kernel.temporal_fusion(depth);
        let Ok(mut fused) = compile::<R>(&fused_kernel, grid_shape, options) else {
            continue;
        };
        fused.exec.stage.policy = policy;
        let cost = model_step_cost(&fused, policy) / depth as f64;
        if cost < best_cost * (1.0 - margin) {
            best_cost = cost;
            fusion = depth;
            best_plan = fused;
        }
    }

    let choice = PlanChoice {
        layout: best_layout,
        default_layout,
        policy,
        fusion,
        candidates,
        cost: best_cost,
        default_cost,
        retuned: best_layout != default_layout,
        reverted,
        canonical: best_plan.accumulation_canonical(),
    };
    Ok((best_plan, choice))
}

// ---------------------------------------------------------------------------
// Sharded-grid decomposition + halo-exchange compilation
// ---------------------------------------------------------------------------

/// Errors from shard decomposition or halo-exchange compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecomposeError {
    /// A decomposition needs at least one shard per axis.
    ZeroShards,
    /// The kernel is larger than the global grid on some axis.
    KernelTooLarge {
        /// Offending axis (0 = z).
        axis: usize,
    },
    /// A split axis's valid extent is not evenly divisible by the
    /// requested shard count, so equal-size owned blocks (one shared
    /// plan for every shard) are impossible.
    Indivisible {
        /// The split axis (0 = z).
        axis: usize,
        /// The global valid extent `n − e + 1` on that axis.
        valid: usize,
        /// The requested shard count on that axis.
        parts: usize,
    },
    /// A split axis's chunk is not a multiple of the tile period on
    /// that axis (`r2` for y, `r1` for x), which would shift every
    /// shard's program-row assignment relative to the unsharded grid
    /// and break bit-exactness.
    MisalignedChunk {
        /// The split axis (1 = y, 2 = x).
        axis: usize,
        /// The owned cells per shard on that axis.
        chunk: usize,
        /// The tile period the chunk must divide by.
        period: usize,
    },
    /// The plan handed to [`compile_halo_exchange`] was compiled for a
    /// shape other than the decomposition's per-shard shape.
    PlanShapeMismatch {
        /// The decomposition's per-shard local shape.
        expected: [usize; 3],
        /// The plan's compiled shape.
        got: [usize; 3],
    },
}

impl std::fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecomposeError::ZeroShards => {
                write!(f, "a decomposition needs at least one shard per axis")
            }
            DecomposeError::KernelTooLarge { axis } => {
                write!(f, "kernel larger than the global grid on axis {axis}")
            }
            DecomposeError::Indivisible { axis, valid, parts } => write!(
                f,
                "axis {axis}: valid extent {valid} is not divisible into {parts} equal shards"
            ),
            DecomposeError::MisalignedChunk {
                axis,
                chunk,
                period,
            } => write!(
                f,
                "axis {axis}: shard chunk {chunk} is not a multiple of the tile period \
                 {period}, which would break bit-exactness with the unsharded grid"
            ),
            DecomposeError::PlanShapeMismatch { expected, got } => write!(
                f,
                "shard plan shape {got:?} differs from the decomposition's \
                 per-shard shape {expected:?}"
            ),
        }
    }
}

impl std::error::Error for DecomposeError {}

/// A slab/pencil decomposition of one semantic grid into equal shards.
///
/// Each shard owns an equal block of `chunk` **valid** (computed) cells
/// per axis and carries a local grid of `shard_shape` cells: the owned
/// block plus, on every split axis, the `e − 1` input overlap the
/// forward-window kernel reads past the block (which doubles as the
/// halo the exchange refreshes each step). All shards share the same
/// local shape, so one [`CompiledStencil`] drives the whole set as a
/// [`crate::session::Batch`].
///
/// Shards are numbered x-fastest: shard `s` has per-axis coordinates
/// `coords(s)` with `s = (pz·parts[1] + py)·parts[2] + px`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// The global semantic shape being decomposed.
    pub global_shape: [usize; 3],
    /// Shards per axis (product = total shard count).
    pub parts: [usize; 3],
    /// Owned valid cells per shard per axis. On unsplit axes this is
    /// the full global valid extent.
    pub chunk: [usize; 3],
    /// Each shard's local semantic shape: `chunk + e − 1` on split
    /// axes, the full global extent on unsplit axes.
    pub shard_shape: [usize; 3],
    /// The kernel extent the decomposition was built for.
    pub kernel_extent: [usize; 3],
}

impl Decomposition {
    /// Decompose `global_shape` for `kernel` into `parts` shards per
    /// axis. `parts = [1, 1, 1]` is the degenerate single-shard case.
    pub fn new(
        kernel: &StencilKernel,
        global_shape: [usize; 3],
        parts: [usize; 3],
    ) -> Result<Self, DecomposeError> {
        if parts.contains(&0) {
            return Err(DecomposeError::ZeroShards);
        }
        let e = kernel.extent();
        let mut chunk = [0; 3];
        let mut shard_shape = [0; 3];
        for axis in 0..3 {
            if global_shape[axis] < e[axis] {
                return Err(DecomposeError::KernelTooLarge { axis });
            }
            let valid = global_shape[axis] - e[axis] + 1;
            if parts[axis] == 1 {
                chunk[axis] = valid;
                shard_shape[axis] = global_shape[axis];
            } else {
                if !valid.is_multiple_of(parts[axis]) {
                    return Err(DecomposeError::Indivisible {
                        axis,
                        valid,
                        parts: parts[axis],
                    });
                }
                chunk[axis] = valid / parts[axis];
                shard_shape[axis] = chunk[axis] + e[axis] - 1;
            }
        }
        Ok(Self {
            global_shape,
            parts,
            chunk,
            shard_shape,
            kernel_extent: e,
        })
    }

    /// Slab decomposition: split the outermost axis with more than one
    /// shard's worth of valid cells (z for 3D, y for 2D, x for 1D) into
    /// `n_shards` equal slabs.
    pub fn slab(
        kernel: &StencilKernel,
        global_shape: [usize; 3],
        n_shards: usize,
    ) -> Result<Self, DecomposeError> {
        if n_shards == 0 {
            return Err(DecomposeError::ZeroShards);
        }
        let e = kernel.extent();
        // Prefer the outermost axis whose valid extent divides evenly;
        // z-slabs have no alignment constraint at all, y/x slabs are
        // checked against the tile period later (`validate_layout`).
        let mut split_axis = None;
        for axis in 0..3 {
            if global_shape[axis] < e[axis] {
                return Err(DecomposeError::KernelTooLarge { axis });
            }
            let valid = global_shape[axis] - e[axis] + 1;
            if n_shards == 1 || (valid >= n_shards && valid.is_multiple_of(n_shards)) {
                split_axis = Some(axis);
                break;
            }
        }
        let Some(axis) = split_axis else {
            // Report against the outermost axis that has any valid
            // extent to split (the one a caller would expect).
            let axis = (0..3)
                .find(|&a| global_shape[a] - e[a] + 1 > 1)
                .unwrap_or(0);
            return Err(DecomposeError::Indivisible {
                axis,
                valid: global_shape[axis] - e[axis] + 1,
                parts: n_shards,
            });
        };
        let mut parts = [1, 1, 1];
        parts[axis] = n_shards;
        Self::new(kernel, global_shape, parts)
    }

    /// Total shard count.
    pub fn n_shards(&self) -> usize {
        self.parts[0] * self.parts[1] * self.parts[2]
    }

    /// Per-axis shard coordinates of linear shard `s` (x fastest).
    pub fn coords(&self, s: usize) -> [usize; 3] {
        [
            s / (self.parts[1] * self.parts[2]),
            s / self.parts[2] % self.parts[1],
            s % self.parts[2],
        ]
    }

    /// Linear shard index of per-axis coordinates `p`.
    pub fn linear(&self, p: [usize; 3]) -> usize {
        (p[0] * self.parts[1] + p[1]) * self.parts[2] + p[2]
    }

    /// Global origin of shard `s`'s local grid (also the origin of its
    /// owned block: local cell `l` sits at global `origin + l`).
    pub fn origin(&self, s: usize) -> [usize; 3] {
        let p = self.coords(s);
        [
            p[0] * self.chunk[0],
            p[1] * self.chunk[1],
            p[2] * self.chunk[2],
        ]
    }

    /// Global valid (computed) extent per axis: `chunk · parts`.
    pub fn global_valid(&self) -> [usize; 3] {
        [
            self.chunk[0] * self.parts[0],
            self.chunk[1] * self.parts[1],
            self.chunk[2] * self.parts[2],
        ]
    }

    /// The shard holding global cell `g`, and `g` in that shard's local
    /// coordinates. Cells in the global boundary band map to the last
    /// shard along each axis (whose local grid contains them); halo
    /// overlaps mean several shards may hold a cell, and any holder has
    /// the same value — this returns a canonical one.
    pub fn owner_of(&self, g: [usize; 3]) -> (usize, [usize; 3]) {
        let mut p = [0; 3];
        let mut l = [0; 3];
        for a in 0..3 {
            p[a] = (g[a] / self.chunk[a]).min(self.parts[a] - 1);
            l[a] = g[a] - p[a] * self.chunk[a];
        }
        (self.linear(p), l)
    }

    /// Check the split chunks against a resolved `(r1, r2)` tile
    /// layout: a y-split chunk must be a multiple of `r2` and an
    /// x-split chunk a multiple of `r1`, so every shard assigns the
    /// same program row to each global cell as the unsharded grid does
    /// (program rows are `(y mod r2)·r1 + (x mod r1)`). z-splits carry
    /// no constraint — program rows are z-invariant.
    pub fn validate_layout(&self, r1: usize, r2: usize) -> Result<(), DecomposeError> {
        for (axis, period) in [(1usize, r2), (2usize, r1)] {
            if self.parts[axis] > 1 && !self.chunk[axis].is_multiple_of(period) {
                return Err(DecomposeError::MisalignedChunk {
                    axis,
                    chunk: self.chunk[axis],
                    period,
                });
            }
        }
        Ok(())
    }
}

/// One plan-time halo copy: `len` contiguous cells of shard
/// `src_shard`'s freshly stepped buffer, at padded-buffer offsets
/// `src_range`, land at `dst_range` in shard `dst_shard`'s buffer.
/// The generalization of one `mirror_segments` entry to a cross-shard
/// copy (a mirror entry is the degenerate `src_shard == dst_shard`,
/// `src_range == dst_range` case, kept as the in-place mirror instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaloSegment {
    /// Batch member the data is read from.
    pub src_shard: usize,
    /// Contiguous source range in `src_shard`'s padded buffer.
    pub src_range: std::ops::Range<usize>,
    /// Batch member the data is written to.
    pub dst_shard: usize,
    /// Contiguous destination range in `dst_shard`'s padded buffer.
    pub dst_range: std::ops::Range<usize>,
}

/// A compiled plan-time halo-exchange schedule: every [`HaloSegment`]
/// needed to refresh each shard's halo from its neighbors' freshly
/// stepped buffers, grouped by destination, plus the dependency
/// counters that let the exchange run *inside* the parallel region
/// (see the "Halo protocol" section of [`crate::session`]).
///
/// Built once by [`compile_halo_exchange`]; iterated allocation-free
/// every step.
#[derive(Debug, Clone)]
pub struct HaloExchange {
    sessions: usize,
    buf_len: usize,
    /// All segments, sorted by `dst_shard` (CSR below).
    segments: Vec<HaloSegment>,
    /// CSR row starts into `segments`, length `sessions + 1`.
    dst_starts: Vec<usize>,
    /// Per destination: number of members whose step completion gates
    /// this destination's exchange (its sources plus itself), or 0 for
    /// destinations with no incoming segments.
    deps: Vec<u32>,
    /// CSR: for each member, the destinations it must notify when its
    /// own step (scatter + mirror) completes.
    notify_starts: Vec<usize>,
    notify_list: Vec<u32>,
}

impl HaloExchange {
    /// Number of batch members the schedule was compiled for.
    pub fn sessions(&self) -> usize {
        self.sessions
    }

    /// The padded-buffer length every segment range was validated
    /// against.
    pub fn buf_len(&self) -> usize {
        self.buf_len
    }

    /// All halo segments, sorted by destination shard.
    pub fn segments(&self) -> &[HaloSegment] {
        &self.segments
    }

    /// The segments refreshing destination shard `d`'s halo.
    pub fn segments_for(&self, d: usize) -> &[HaloSegment] {
        &self.segments[self.dst_starts[d]..self.dst_starts[d + 1]]
    }

    /// How many members gate destination `d`'s exchange (0 when `d`
    /// receives nothing).
    pub fn deps(&self, d: usize) -> u32 {
        self.deps[d]
    }

    /// The destinations member `j` must notify once its step completes.
    pub fn notify(&self, j: usize) -> &[u32] {
        &self.notify_list[self.notify_starts[j]..self.notify_starts[j + 1]]
    }

    /// Total cells copied per step across all segments (the exchange
    /// traffic; benches report it as a fraction of the domain).
    pub fn exchange_cells(&self) -> usize {
        self.segments.iter().map(|s| s.src_range.len()).sum()
    }

    /// `true` when no shard receives anything (single shard, or halos
    /// of zero width).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

/// Compile the halo-exchange schedule for stepping `d`'s shards as one
/// batch over `plan` (which must be compiled for `d.shard_shape`).
///
/// A shard's halo is every local cell that is *globally* computed (some
/// shard scatters a fresh value into it each step) but not *locally*
/// computed. Each such cell is owned by exactly one shard — the one
/// whose owned block contains its global coordinates — and one segment
/// per contiguous row run copies the owner's freshly stepped values
/// across. Cells in the true global boundary band are deliberately
/// *not* covered: they are step-invariant and every shard's own mirror
/// (or untouched z-planes) already keeps them correct.
pub fn compile_halo_exchange<R: Real>(
    plan: &CompiledStencil<R>,
    d: &Decomposition,
) -> Result<HaloExchange, DecomposeError> {
    if plan.grid_shape != d.shard_shape {
        return Err(DecomposeError::PlanShapeMismatch {
            expected: d.shard_shape,
            got: plan.grid_shape,
        });
    }
    d.validate_layout(plan.plan.r1, plan.plan.r2)?;

    let n = d.n_shards();
    let e = d.kernel_extent;
    let sh = d.shard_shape;
    let v_local = [sh[0] - e[0] + 1, sh[1] - e[1] + 1, sh[2] - e[2] + 1];
    let v_global = d.global_valid();
    let (pad_ny, pad_nx) = (plan.geom.pad_ny, plan.geom.pad_nx);
    let buf_len = sh[0] * pad_ny * pad_nx;

    let mut segments = Vec::new();
    let mut dst_starts = Vec::with_capacity(n + 1);
    dst_starts.push(0);
    for dst in 0..n {
        let o = d.origin(dst);
        for lz in 0..sh[0] {
            let gz = o[0] + lz;
            if gz >= v_global[0] {
                break; // global boundary band in z: step-invariant
            }
            for ly in 0..sh[1] {
                let gy = o[1] + ly;
                if gy >= v_global[1] {
                    break; // global boundary band in y
                }
                // Along x the halo of this row is one contiguous run:
                // everything globally computed minus the (prefix) block
                // of locally computed cells.
                let x_start = if lz < v_local[0] && ly < v_local[1] {
                    v_local[2]
                } else {
                    0
                };
                let x_end = sh[2].min(v_global[2] - o[2]);
                let mut lx = x_start;
                while lx < x_end {
                    let g = [gz, gy, o[2] + lx];
                    let q = [g[0] / d.chunk[0], g[1] / d.chunk[1], g[2] / d.chunk[2]];
                    let src = d.linear(q);
                    debug_assert_ne!(src, dst, "owned cells are never halo");
                    // Run until the x-owner changes (z/y owners are
                    // fixed along the row) or the halo ends.
                    let run_end = x_end.min((q[2] + 1) * d.chunk[2] - o[2]);
                    let len = run_end - lx;
                    let s = [
                        g[0] - q[0] * d.chunk[0],
                        g[1] - q[1] * d.chunk[1],
                        g[2] - q[2] * d.chunk[2],
                    ];
                    let src_off = (s[0] * pad_ny + s[1]) * pad_nx + s[2];
                    let dst_off = (lz * pad_ny + ly) * pad_nx + lx;
                    segments.push(HaloSegment {
                        src_shard: src,
                        src_range: src_off..src_off + len,
                        dst_shard: dst,
                        dst_range: dst_off..dst_off + len,
                    });
                    lx = run_end;
                }
            }
        }
        dst_starts.push(segments.len());
    }

    // Dependency counters: a destination's exchange may run only after
    // every source shard's step AND its own step (its mirror writes
    // stale values into y/x halo rows that the exchange then refreshes)
    // have completed. `deps[d]` counts the distinct gating members;
    // `notify` inverts the relation.
    let mut deps = vec![0u32; n];
    let mut notifiers: Vec<Vec<u32>> = vec![Vec::new(); n];
    for dst in 0..n {
        let segs = &segments[dst_starts[dst]..dst_starts[dst + 1]];
        if segs.is_empty() {
            continue;
        }
        let mut gates = vec![false; n];
        gates[dst] = true;
        for seg in segs {
            gates[seg.src_shard] = true;
        }
        for (j, &g) in gates.iter().enumerate() {
            if g {
                deps[dst] += 1;
                notifiers[j].push(dst as u32);
            }
        }
    }
    let mut notify_starts = Vec::with_capacity(n + 1);
    let mut notify_list = Vec::new();
    notify_starts.push(0);
    for j in notifiers {
        notify_list.extend(j);
        notify_starts.push(notify_list.len());
    }

    debug_assert!(segments
        .iter()
        .all(|s| s.src_range.end <= buf_len && s.dst_range.end <= buf_len));
    Ok(HaloExchange {
        sessions: n,
        buf_len,
        segments,
        dst_starts,
        deps,
        notify_starts,
        notify_list,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_box2d9p_sparse() {
        let k = StencilKernel::box2d9p();
        let c: CompiledStencil<f32> = compile(&k, [1, 66, 66], &Options::default()).unwrap();
        assert_eq!(c.mode, ExecMode::SparseTcu);
        assert!(c.geom.k_logical.is_multiple_of(32));
        assert_eq!(c.slices.len(), 1);
        assert!(c.metadata_bytes() > 0);
        assert!(c.lut_bytes() > 0);
        assert_eq!(c.gather_lut.len(), c.geom.k_logical);
        // Every non-pad gather offset is within one tile's window.
        let max_off = ((c.plan.gy - 1) * 66 + (c.plan.gx - 1)) as i64;
        for &o in &c.gather_lut {
            assert!(o == -1 || (0..=max_off).contains(&o));
        }
    }

    #[test]
    fn compile_dense_mode_identity_perm() {
        let k = StencilKernel::box2d9p();
        let opts = Options {
            mode: ExecMode::DenseTcu,
            layout: Some((4, 4)),
            ..Options::default()
        };
        let c: CompiledStencil<f32> = compile(&k, [1, 66, 66], &opts).unwrap();
        assert_eq!(c.strategy_used, "dense");
        assert_eq!(c.metadata_bytes(), 0);
        assert_eq!(c.perm.pad_count(), c.geom.k_logical - c.plan.k_prime());
        // Identity prefix.
        for j in 0..c.plan.k_prime() {
            assert_eq!(c.perm.source_of(j), j);
        }
    }

    #[test]
    fn fp64_sparse_rejected() {
        let k = StencilKernel::heat2d();
        let opts = Options {
            precision: Precision::Fp64,
            ..Options::default()
        };
        let err = compile::<f64>(&k, [1, 34, 34], &opts).unwrap_err();
        assert_eq!(
            err,
            CompileError::SparseUnsupported {
                precision: Precision::Fp64
            }
        );
    }

    #[test]
    fn fp64_dense_accepted() {
        let k = StencilKernel::heat2d();
        let opts = Options {
            precision: Precision::Fp64,
            mode: ExecMode::DenseTcu,
            layout: Some((2, 4)),
            ..Options::default()
        };
        let c: CompiledStencil<f64> = compile(&k, [1, 34, 34], &opts).unwrap();
        assert_eq!(c.frag, FragmentShape::dense_fp64());
    }

    #[test]
    fn kernel_too_large_rejected() {
        let k = StencilKernel::box2d49p();
        let err = compile::<f32>(&k, [1, 4, 100], &Options::default()).unwrap_err();
        assert_eq!(err, CompileError::KernelTooLarge { axis: 1 });
    }

    #[test]
    fn fragment_mode_mismatch_rejected() {
        let k = StencilKernel::heat2d();
        let opts = Options {
            frag: Some(FragmentShape::dense_fp16()),
            mode: ExecMode::SparseTcu,
            ..Options::default()
        };
        assert_eq!(
            compile::<f32>(&k, [1, 34, 34], &opts).unwrap_err(),
            CompileError::FragmentModeMismatch
        );
    }

    #[test]
    fn three_d_kernel_folds_slices_into_one_operand() {
        let k = StencilKernel::heat3d();
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let c: CompiledStencil<f32> = compile(&k, [10, 34, 34], &opts).unwrap();
        // z-folded: one operand spanning ez·k' logical columns.
        assert_eq!(c.slices.len(), 1);
        assert!(c.geom.k_prime >= 3 * c.plan.k_prime());
        let s = &c.slices[0];
        assert_eq!(s.strips.len(), c.geom.m_padded / c.frag.m);
        assert_eq!(s.strips[0].len(), c.geom.k_logical / c.frag.k);
        // Some gather offsets must reach into deeper planes.
        let ps = (34 * 34) as i64;
        assert!(c.gather_lut.iter().any(|&o| o >= ps));
    }

    #[test]
    fn prep_stats_populated() {
        let k = StencilKernel::box2d49p();
        let c: CompiledStencil<f32> = compile(&k, [1, 130, 130], &Options::default()).unwrap();
        assert!(c.prep.total() > 0.0);
        assert!(c.prep.search_s > 0.0);
        assert!(c.prep.transform_s > 0.0);
    }

    #[test]
    fn stage_schedule_orders_runs_and_rotates_bands() {
        let k = StencilKernel::box3d27p();
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let c: CompiledStencil<f32> = compile(&k, [10, 20, 20], &opts).unwrap();
        let t = &c.exec;
        let ss = &t.stage;

        // 3-plane window, one run per column block, z ascending inside.
        assert_eq!(ss.window, 3);
        assert_eq!(ss.run_len, c.geom.planes);
        assert_eq!(t.work.len(), ss.run_len * t.col_blocks);
        for (run, chunk) in t.work.chunks(ss.run_len).enumerate() {
            for (step, &(z, cb)) in chunk.iter().enumerate() {
                assert_eq!(z, step, "z ascends within a run");
                assert_eq!(cb, run, "one column block per run");
            }
        }

        // Reuse descriptors: full staging at run starts, one new plane
        // everywhere else.
        for (wi, &ov) in ss.overlap.iter().enumerate() {
            let want = if wi % ss.run_len == 0 { 0 } else { 2 };
            assert_eq!(ov, want, "overlap at work item {wi}");
        }

        // The union staging window of a box kernel is the full gy×gx
        // tile window, each cell ranked exactly once.
        assert_eq!(ss.band_rows, c.plan.k_prime());
        let mut uniq: Vec<usize> = ss.cell_offsets.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), ss.band_rows, "ranks are distinct cells");
        assert_eq!(ss.zero_row, ss.window * ss.band_rows);
        assert_eq!(ss.staged_depth(), ss.zero_row + 1);

        // Phase maps land every gathered row in the rotated band of its
        // source depth, at its union-cell rank.
        let pad_ps = c.geom.pad_ny * c.geom.pad_nx;
        assert_eq!(ss.stage_map.len(), ss.window);
        assert_eq!(ss.programs.len(), ss.window);
        for &(i, off) in &t.gather_rows {
            let (dz, iy, ix) = c.gather_coords[i];
            let inplane = iy as usize * c.geom.pad_nx + ix as usize;
            assert_eq!(off, dz as usize * pad_ps + inplane);
            for phase in 0..ss.window {
                let s = ss.stage_map[phase][i] as usize;
                assert!(s < ss.zero_row, "referenced rows stage into bands");
                assert_eq!(s / ss.band_rows, (phase + dz as usize) % ss.window);
                assert_eq!(ss.cell_offsets[s % ss.band_rows], inplane);
            }
        }
    }

    #[test]
    fn stage_schedule_degenerates_cleanly_in_2d() {
        let k = StencilKernel::star2d(2); // zero corners: sparse union
        let opts = Options {
            layout: Some((5, 3)),
            ..Options::default()
        };
        let c: CompiledStencil<f32> = compile(&k, [1, 41, 39], &opts).unwrap();
        let ss = &c.exec.stage;
        assert_eq!(ss.window, 1);
        assert_eq!(ss.run_len, 1, "2D: every work item is its own run");
        assert!(ss.overlap.iter().all(|&o| o == 0));
        // The star's zero corners are referenced by no program, so the
        // union window is strictly smaller than the bounding-box window.
        assert!(ss.band_rows < c.plan.k_prime());
        // Unreferenced and padding operand rows rebase onto the zero row.
        let staged_rows: std::collections::HashSet<usize> =
            c.exec.gather_rows.iter().map(|&(i, _)| i).collect();
        for i in 0..c.geom.k_logical {
            if !staged_rows.contains(&i) {
                assert_eq!(ss.stage_map[0][i] as usize, ss.zero_row);
            }
        }
    }

    #[test]
    fn staged_programs_are_rebased_logical_programs() {
        let k = StencilKernel::heat3d();
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let c: CompiledStencil<f32> = compile(&k, [8, 18, 18], &opts).unwrap();
        let t = &c.exec;
        let ss = &t.stage;
        for (phase, staged_set) in ss.programs.iter().enumerate() {
            assert_eq!(staged_set.len(), t.programs[0].len());
            for (mi, staged) in staged_set.iter().enumerate() {
                let base = &t.programs[0][mi];
                assert_eq!(staged.rows(), base.rows());
                assert_eq!(staged.nnz(), base.nnz());
                assert_eq!(staged.depth(), ss.staged_depth());
                for r in 0..base.rows() {
                    let (be, se) = (base.row(r), staged.row(r));
                    assert_eq!(be.len(), se.len());
                    for (&(kk, v), &(sk, sv)) in be.iter().zip(se) {
                        assert_eq!(v, sv, "values unchanged by rebasing");
                        assert_eq!(sk, ss.stage_map[phase][kk as usize]);
                    }
                }
            }
        }
    }

    #[test]
    fn batch_work_tags_every_session_run_once() {
        let k = StencilKernel::box3d27p();
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let c: CompiledStencil<f32> = compile(&k, [10, 20, 20], &opts).unwrap();
        let t = &c.exec;
        let n_runs = t.work.len() / t.stage.run_len;

        for sessions in [1usize, 3, 8] {
            let bw = t.batch_work(sessions);
            assert_eq!(bw.sessions, sessions);
            assert_eq!(bw.runs_per_session, n_runs);
            assert_eq!(bw.run_len, t.stage.run_len);
            assert_eq!(bw.total_runs(), sessions * n_runs);

            // Session-major flat order, column-block-major run order
            // preserved within each session.
            for f in 0..bw.total_runs() {
                assert_eq!(bw.run(f), (f / n_runs, f % n_runs));
            }
            // Run item ranges tile the plan's work list.
            for r in 0..n_runs {
                let items = bw.items(r);
                assert_eq!(items.len(), bw.run_len);
                for wi in items {
                    let (_, cb) = t.work[wi];
                    assert_eq!(cb, r, "run r covers column block r's items");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one session")]
    fn batch_work_rejects_zero_sessions() {
        let k = StencilKernel::heat2d();
        let c: CompiledStencil<f32> = compile(&k, [1, 20, 20], &Options::default()).unwrap();
        let _ = c.exec.batch_work(0);
    }

    #[test]
    fn scatter_lut_maps_rows() {
        let k = StencilKernel::box2d9p();
        let opts = Options {
            layout: Some((4, 2)),
            ..Options::default()
        };
        let c: CompiledStencil<f32> = compile(&k, [1, 34, 34], &opts).unwrap();
        // Row (j2=1, j1=3) → offset 1*34 + 3.
        assert_eq!(c.scatter_lut[4 + 3], 34 + 3);
        // Padded rows marked.
        assert!(c.scatter_lut[c.plan.m_prime()..]
            .iter()
            .all(|&v| v == usize::MAX));
    }
}
