//! Stencil Flattening — the first half of Adaptive Layout Morphing (§3.1,
//! Figure 2).
//!
//! Flattening unfolds the kernel weights into a single-row *kernel vector*
//! and reshapes each sliding-window region of the input into a column of
//! the *input matrix* `B'`, turning the stencil into one vector–matrix
//! product. This module materializes both explicitly; it exists for
//! validation and for the duplicate-structure analysis (Equations 3–4) —
//! the production path never materializes `B'` (that is the whole point
//! of Duplicates Crush).

use crate::grid::Grid;
use crate::stencil::StencilKernel;
use sparstencil_mat::{DenseMatrix, Real};

/// The flattened form of a 2D stencil over a 2D grid plane.
#[derive(Debug, Clone)]
pub struct Flattened<R: Real> {
    /// The kernel vector `A` (length `ey·ex`, row-major over the kernel
    /// bounding box, zeros included for star patterns).
    pub kernel_vector: Vec<f64>,
    /// The input matrix `B'` (`ey·ex` rows × one column per valid output,
    /// outputs ordered row-major).
    pub input_matrix: DenseMatrix<R>,
}

/// Flatten a 2D kernel against (a 2D plane of) a grid.
///
/// # Panics
/// Panics if the kernel is not 2D (or 1D, which is handled as `ey = 1`)
/// or larger than the grid.
pub fn flatten_2d<R: Real>(kernel: &StencilKernel, grid: &Grid<R>) -> Flattened<R> {
    assert!(kernel.dims() <= 2, "flatten_2d requires a 1D/2D kernel");
    let [_, ey, ex] = kernel.extent();
    let v = grid.valid_extent(kernel);
    let (vy, vx) = (v[1], v[2]);

    let kernel_vector: Vec<f64> = (0..ey)
        .flat_map(|dy| (0..ex).map(move |dx| (dy, dx)))
        .map(|(dy, dx)| kernel.weight(0, dy, dx))
        .collect();

    let input_matrix = DenseMatrix::from_fn(ey * ex, vy * vx, |kidx, out| {
        let (dy, dx) = (kidx / ex, kidx % ex);
        let (oy, ox) = (out / vx, out % vx);
        grid.get(0, oy + dy, ox + dx)
    });

    Flattened {
        kernel_vector,
        input_matrix,
    }
}

/// Check the **horizontal duplicate** identity of Equation 3 on a
/// flattened matrix: within each kernel-row submatrix `Bᵢ`, adjacent
/// output columns share shifted elements, `Bᵢ(r+1, j) = Bᵢ(r, j+1)` —
/// with `Bᵢ`'s rows indexed by `dx` and restricted to outputs in the same
/// grid row. Returns the number of violations (0 for a correct flatten).
pub fn horizontal_duplicate_violations<R: Real>(
    f: &Flattened<R>,
    kernel: &StencilKernel,
    valid_x: usize,
) -> usize {
    let [_, ey, ex] = kernel.extent();
    let b = &f.input_matrix;
    let mut violations = 0;
    let n_out = b.cols();
    for dy in 0..ey {
        for dx in 0..ex.saturating_sub(1) {
            for out in 0..n_out {
                // Next output in the same grid row.
                if (out % valid_x) + 1 >= valid_x {
                    continue;
                }
                let row_a = dy * ex + dx + 1; // B_i(r+1, j)
                let row_b = dy * ex + dx; // B_i(r, j+1)
                if b.get(row_a, out) != b.get(row_b, out + 1) {
                    violations += 1;
                }
            }
        }
    }
    violations
}

/// Check the **vertical duplicate** identity of Equation 4: the submatrix
/// of kernel row `dy+1` equals the submatrix of kernel row `dy` shifted by
/// one output row, `B'_{i+1, j} = B'_{i, j+1}` at the submatrix level.
/// Returns the number of violations.
pub fn vertical_duplicate_violations<R: Real>(
    f: &Flattened<R>,
    kernel: &StencilKernel,
    valid_x: usize,
) -> usize {
    let [_, ey, ex] = kernel.extent();
    let b = &f.input_matrix;
    let n_out = b.cols();
    let mut violations = 0;
    for dy in 0..ey.saturating_sub(1) {
        for dx in 0..ex {
            for out in 0..n_out {
                // Output one grid row below.
                if out + valid_x >= n_out {
                    continue;
                }
                let row_upper = (dy + 1) * ex + dx;
                let row_lower = dy * ex + dx;
                if b.get(row_upper, out) != b.get(row_lower, out + valid_x) {
                    violations += 1;
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sparstencil_mat::gemm;

    #[test]
    fn figure2_example_shape() {
        // 3×3 kernel on a 5×5 input: kernel vector length 9, input matrix
        // 9 × 9 (3×3 valid outputs).
        let k = StencilKernel::box2d9p();
        let g = Grid::<f64>::smooth_random(2, [1, 5, 5]);
        let f = flatten_2d(&k, &g);
        assert_eq!(f.kernel_vector.len(), 9);
        assert_eq!(f.input_matrix.shape(), (9, 9));
    }

    #[test]
    fn vecmat_equals_reference() {
        for k in [
            StencilKernel::heat2d(),
            StencilKernel::box2d9p(),
            StencilKernel::star2d13p(),
            StencilKernel::heat1d(),
        ] {
            let shape = if k.dims() == 1 {
                [1, 1, 24]
            } else {
                [1, 11, 13]
            };
            let g = Grid::<f64>::smooth_random(k.dims(), shape);
            let f = flatten_2d(&k, &g);
            let kv: Vec<f64> = f.kernel_vector.clone();
            let result = gemm::vecmat(&kv, &f.input_matrix);
            let expect = reference::apply(&k, &g);
            let v = g.valid_extent(&k);
            for oy in 0..v[1] {
                for ox in 0..v[2] {
                    let got = result[oy * v[2] + ox];
                    let want = expect.get(0, oy, ox);
                    assert!(
                        (got - want).abs() < 1e-12,
                        "{}: mismatch at ({oy},{ox}): {got} vs {want}",
                        k.name()
                    );
                }
            }
        }
    }

    #[test]
    fn equation3_horizontal_duplicates_hold() {
        let k = StencilKernel::box2d9p();
        let g = Grid::<f64>::smooth_random(2, [1, 7, 8]);
        let f = flatten_2d(&k, &g);
        let v = g.valid_extent(&k);
        assert_eq!(horizontal_duplicate_violations(&f, &k, v[2]), 0);
    }

    #[test]
    fn equation4_vertical_duplicates_hold() {
        let k = StencilKernel::box2d49p();
        let g = Grid::<f64>::smooth_random(2, [1, 10, 9]);
        let f = flatten_2d(&k, &g);
        let v = g.valid_extent(&k);
        assert_eq!(vertical_duplicate_violations(&f, &k, v[2]), 0);
    }

    #[test]
    fn duplicate_checks_detect_corruption() {
        let k = StencilKernel::box2d9p();
        let g = Grid::<f64>::smooth_random(2, [1, 6, 6]);
        let mut f = flatten_2d(&k, &g);
        let v = g.valid_extent(&k);
        f.input_matrix.set(0, 1, -999.0);
        assert!(
            horizontal_duplicate_violations(&f, &k, v[2]) > 0
                || vertical_duplicate_violations(&f, &k, v[2]) > 0
        );
    }

    #[test]
    fn redundancy_factor_is_kernel_size() {
        // The flattened matrix stores ey*ex copies of (almost) every
        // input element — the redundancy Duplicates Crush removes.
        let k = StencilKernel::box2d9p();
        let g = Grid::<f64>::smooth_random(2, [1, 20, 20]);
        let f = flatten_2d(&k, &g);
        let stored = f.input_matrix.rows() * f.input_matrix.cols();
        let unique = g.len();
        let factor = stored as f64 / unique as f64;
        assert!(factor > 7.0, "expected ~9x redundancy, got {factor:.2}");
    }
}
