//! Plan execution on the simulated GPU.
//!
//! Executes a [`CompiledStencil`] functionally — every fragment MMA the
//! generated kernel would issue is issued against the simulator, with
//! `B` operands gathered through the lookup table exactly as the CUDA
//! kernel's async-copy stage would — while the engine accumulates exact
//! activity counters. Timing is then derived from the counters through
//! the analytic model (with or without double-buffer overlap, per the
//! plan's [`crate::plan::OptFlags`]); GStencil/s follows Equation 12.
//!
//! The numeric path is deliberately the *same arithmetic* as the
//! hardware: operands pre-rounded to the plan's precision, accumulation
//! at full scalar width, outputs re-rounded on store.
//!
//! # Execution engine: staged-gather, halo-padded, interior-only
//!
//! [`run`] mirrors the discipline of the generated kernels — all
//! bookkeeping hoisted to plan time, all buffers allocated once, and
//! **no edge-tile path at all**. A step is a **two-phase pipeline** per
//! work item — *stage* the operand window into contiguous per-lane
//! scratch, then *MMA* from it by dense offset — followed by the direct
//! scatter and, once per step, the boundary mirror:
//!
//! ```text
//!   step = for each work item:  ① stage  →  ② MMA  →  ③ scatter
//!          then once:           ④ mirror boundary band
//! ```
//!
//! - **Halo-padded ping-pong buffering.** A `StepBuffers` arena owns
//!   two persistent grids embedded in a ghost-zone-padded domain
//!   (`pad_ny × pad_nx` planes, [`crate::crush::CrushPlan::padded_extent`]) where
//!   every tile's gather window and output footprint is in-bounds *by
//!   construction*. `cur` is the quantized input embedded once per run;
//!   `next` is cloned from it once, which seeds the boundary cells. Each
//!   step computes `next` from `cur` and the buffers swap; the semantic
//!   grid is extracted from the padded buffer once at run end.
//! - **Staged gather with sliding-window halo reuse.** Operand bytes no
//!   longer flow straight from strided padded-grid loads into the MMA:
//!   each worker stages its work item's whole gather window — `window`
//!   source z-planes × the union of in-plane cells any operand row
//!   reads, sorted by source offset — into a contiguous scratch **ring**
//!   ([`crate::plan::StageSchedule`]), and the row programs read
//!   operands by dense offset from that staged buffer (entries rebased
//!   at plan time, [`sparstencil_tcu::fragment::RowProgram::remap_rows`]).
//!   The work list is locality-ordered into **z-sliding runs** (one
//!   fragment-column block, `z` ascending), so consecutive items share
//!   `window − 1` of their source planes and only the one new plane is
//!   gathered — the new band overwrites the ring slot of the plane that
//!   slid out:
//!
//! ```text
//!   z-sliding run, 3-plane window (3D kernel), ring bands b0 b1 b2:
//!
//!   item z=0   stage p0→b0, p1→b1, p2→b2      MMA phase 0: [p0 p1 p2]
//!   item z=1   stage p3→b0   (reuse p1, p2)   MMA phase 1: [p3 p1 p2]
//!   item z=2   stage p4→b1   (reuse p2, p3)   MMA phase 2: [p4 p2 p3]
//!   item z=3   stage p5→b2   (reuse p3, p4)   MMA phase 0: [p5 p3 p4]
//!                 │                                  │
//!                 └ 1 of 3 planes gathered           └ band of plane z+d
//!                   per steady-state item              is (z+d) mod 3, so
//!                   (the ~40% gather share              programs are rebased
//!                   shrinks ~3× on 3D-27pt)             once per ring phase
//! ```
//!
//!   For 2D/1D kernels the window is one plane and a "run" is one item:
//!   staging degenerates to a locality-sorted gather into the scratch
//!   buffer, with the same staged addressing.
//! - **Shared staging across x-adjacent tiles.** Within a
//!   fragment-column block the tiles' gather windows are shifted copies
//!   of one another — tile `t+1`'s window base is tile `t`'s plus one
//!   fragment row (`r1`) — so a plane's bytes are staged once per
//!   (plane, tile-row), not once per tile. The plan compiles each
//!   plane's gather into an ordered [`crate::plan::StageOp`] list: a
//!   rank whose cell offset has no `+r1` partner in the window is
//!   **fresh** (strided grid loads for every tile column, as before);
//!   a rank with a partner is a **shift** — one fresh grid cell for
//!   tile column 0, then an inline shift copy pulls the partner's
//!   already-staged row over by one tile for columns `1..`. Shifts are
//!   pure memory moves with no FP ops, so bit-exactness is untouched,
//!   and the strided-gather volume per plane drops from
//!   `ranks × tiles` cells to `fresh_ranks × tiles + shift_ranks`.
//!   Blocks whose tiles are not uniformly x-adjacent
//!   ([`crate::plan::StageSchedule::shift_blocks`] false — boundary
//!   blocks that wrap a tile-row) keep the per-rank strided gather.
//! - **Interior-only branch-free hot loop.** Because no tile is ever
//!   "edge" in the padded domain ([`crate::plan::TileDesc::interior`] is
//!   universally true, asserted at plan build), the per-tile
//!   interior/edge and full/partial classification of the previous
//!   engine — and the branchy mixed-gather and bounds-checked-scatter
//!   paths it guarded — are gone. Every staged load is in-bounds by
//!   plan-time validation, and the scatter is unconditional: ghost
//!   outputs land in the padding, and a plan-time **mirror list**
//!   (`mirror_segments`) restores the few overwritten semantic boundary
//!   cells from the previous buffer once per step.
//! - **Overwrite-first accumulation.** The row programs are compiled so
//!   every row has at least one entry (synthetic zero-store for empty
//!   rows, [`sparstencil_tcu::fragment::RowProgram::with_zero_fill_rows`],
//!   rebased onto the ring's guaranteed-zero row); the first scheduled
//!   multiply of each accumulator row *stores* `v·b` instead of
//!   accumulating into a pre-zeroed register, eliminating the
//!   per-work-item `c_frag.fill(0)` pass from the steady-state loop
//!   entirely.
//! - **Run-aligned guided partitioning.** Lanes claim work from an
//!   atomic cursor in shrinking chunks
//!   (`rayon::pool::parallel_for_slots_guided`) — but the claim unit is
//!   a whole **z-sliding run**, not a work item, so a claim can never
//!   split a run across lanes and every item with a nonzero reuse
//!   descriptor is processed by the lane that just staged its
//!   predecessor. Each slot of persistent `WorkerScratch` (which owns
//!   the staged ring) is owned by exactly one task.
//!   [`run_with_parallelism`] exposes the lane count for thread-scaling
//!   benchmarks.
//! - **Parallel direct scatter.** Each work item writes its results
//!   straight into the shared padded output grid. Tiles partition the
//!   padded output footprint and each tile belongs to exactly one work
//!   item, so all writes are disjoint; `SharedOutput` encapsulates the
//!   aliasing argument.
//!
//! The same hot path scales across **sessions**: the batched stepper
//! (`step_all_into`, driving [`crate::session::Batch`]) binds a
//! per-session `(data, out)` buffer pair per claimed range and
//! dispatches the union of N sessions' run lists through a two-level
//! guided queue ([`rayon::pool::parallel_for_slots_guided2`]) whose
//! claim unit is one `(session, z-run)` pair — lanes drain work from
//! whichever session still has it, the ring discipline is untouched
//! (run starts restage the full window, so a lane switching sessions
//! can never observe another session's staged planes), and every
//! session's step stays bit-identical to stepping it alone.
//!
//! After the first iteration warms the buffers, a step performs **zero
//! heap allocations** (asserted by `tests/alloc_steady_state.rs`); the
//! staged ring is sized at plan time and survives `load()`/`reset()`
//! untouched. Counter totals are closed-form from plan geometry via
//! `iter_counters` — the same helper `model_run` scales analytically,
//! so "analytic == counted" holds by construction. [`run_naive`] retains
//! the original implementation as the equivalence oracle:
//! `tests/exec_equivalence.rs` pins bit-identical grids and identical
//! counters between the two, and [`profile_phases`] reports the
//! per-phase (stage / MMA / scatter / mirror) wall-time split.

use crate::grid::Grid;
use crate::layout::{self, ExecMode};
use crate::plan::{BatchWork, CompiledStencil, Operand, PrepStats, StageOp};
use rayon::prelude::*;
use sparstencil_mat::{DenseMatrix, Real};
use sparstencil_tcu::{
    fragment::dense_fragment_mma, fragment::BlockedRowProgram, fragment::RowProgram, model,
    sparse::sparse_fragment_mma, Counters, Engine, TimingBreakdown, UtilizationReport,
};
use std::sync::atomic::{AtomicU32, Ordering};

pub mod simd;

/// Accumulator rows per register block of the multi-row MMA kernels —
/// the `R` of the R×N register blocking, and the `block_rows` the plan
/// compiles [`BlockedRowProgram`]s with. Four rows keeps the common
/// `n = 8`/`n = 16` fragments entirely in architectural vector
/// registers (f32 n=8: 4 accumulator vectors + broadcast + operand
/// load) while giving the FP add chains 4-way independence; the widest
/// f64 kernels trade some register pressure for the same blocking.
pub const MMA_BLOCK_ROWS: usize = 4;

/// Statistics of one simulated run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Iterations executed.
    pub iters: usize,
    /// Exact activity counters over the whole run.
    pub counters: Counters,
    /// Modelled timing over the whole run (overlap per plan flags).
    pub timing: TimingBreakdown,
    /// Modelled seconds per iteration.
    pub seconds_per_iter: f64,
    /// Modelled total seconds.
    pub total_seconds: f64,
    /// Stencil points updated per iteration (valid outputs).
    pub points_per_iter: u64,
    /// GStencil/s (Equation 12) over the modelled time.
    pub gstencil_per_sec: f64,
    /// Useful GFlop/s (Table 3 metric).
    pub gflops_per_sec: f64,
    /// Achieved occupancy.
    pub occupancy: f64,
    /// Figure-11 utilization metrics.
    pub utilization: UtilizationReport,
    /// Host preprocessing times (copied from the plan).
    pub prep: PrepStats,
}

/// Execute `iters` stencil steps of a compiled plan over `input`.
/// Returns the final grid and run statistics.
///
/// This is the optimized engine: ping-pong buffers, plan-time gather
/// tables, persistent per-worker scratch, parallel direct scatter (see
/// the module docs). Bit-identical to [`run_naive`].
///
/// A thin wrapper over a throwaway [`crate::session::Simulation`] — for
/// anything that steps more than once per setup (benchmarks, drivers,
/// mid-run observation), open a session instead and keep it.
///
/// # Panics
/// Panics if the input shape differs from the plan's compile-time shape.
pub fn run<R: Real>(
    plan: &CompiledStencil<R>,
    input: &Grid<R>,
    iters: usize,
) -> (Grid<R>, RunStats) {
    run_with_parallelism(plan, input, iters, rayon::current_num_threads())
}

/// [`run`] with an explicit worker-lane count: `lanes` persistent scratch
/// slots are created and the guided scheduler dispatches that many slot
/// tasks (each executed by at most one pool thread at a time, so `lanes`
/// bounds the effective parallelism even on a wider pool). Results and
/// counters are identical for every lane count — the thread-sweep
/// benchmark measures scaling through this entry point.
///
/// # Panics
/// Panics if the input shape differs from the plan's compile-time shape.
pub fn run_with_parallelism<R: Real>(
    plan: &CompiledStencil<R>,
    input: &Grid<R>,
    iters: usize,
    lanes: usize,
) -> (Grid<R>, RunStats) {
    let mut sim = crate::session::Simulation::new(crate::session::EngineBackend::throwaway(
        plan, input, lanes,
    ));
    sim.step_n(iters);
    let stats = sim.stats().expect("engine backend reports stats");
    (sim.into_grid(), stats)
}

/// Per-worker reusable scratch: the staged operand ring (`window` bands
/// of `band_rows` locality-ordered cells plus the guaranteed-zero row,
/// see [`crate::plan::StageSchedule`]) plus one accumulator fragment per
/// m-strip. Allocated once per session — sized from the plan, so
/// `load()`/`reset()` never touch it — and reused across tiles, runs,
/// and steps.
///
/// Invariant: the ring's zero row stays zero for the buffer's whole
/// lifetime — it is zeroed at construction and staging only ever writes
/// band rows (`< zero_row`).
pub(crate) struct WorkerScratch<R: Real> {
    staged: DenseMatrix<R>,
    strips: Vec<DenseMatrix<R>>,
    /// Per-phase nanoseconds (stage, MMA, scatter), accumulated only by
    /// the instrumented [`profile_phases`] stepper — the production
    /// stepper never reads a clock.
    phase_ns: [u64; 3],
}

impl<R: Real> WorkerScratch<R> {
    /// The per-lane scratch pool for `lanes` worker lanes, sized from
    /// the plan. Owned separately from [`StepBuffers`] because the pool
    /// belongs to the *stepper*, not to any one field: a batch steps N
    /// sessions' buffers through one shared pool of lane rings.
    pub(crate) fn pool(plan: &CompiledStencil<R>, lanes: usize) -> Vec<Self> {
        let frag = plan.frag;
        (0..lanes)
            .map(|_| WorkerScratch {
                staged: DenseMatrix::zeros(plan.exec.stage.staged_depth(), frag.n),
                strips: (0..plan.exec.m_strips)
                    .map(|_| DenseMatrix::zeros(frag.m, frag.n))
                    .collect(),
                phase_ns: [0; 3],
            })
            .collect()
    }
}

/// The persistent ping-pong field buffers of one engine session: two
/// halo-padded grids, allocated once up front. The per-lane
/// [`WorkerScratch`] pool lives beside (not inside) these, so a batch
/// can own one buffer pair per session while all sessions step through
/// one shared lane pool.
pub(crate) struct StepBuffers<R: Real> {
    pub(crate) cur: Grid<R>,
    pub(crate) next: Grid<R>,
}

impl<R: Real> StepBuffers<R> {
    pub(crate) fn new(plan: &CompiledStencil<R>, input: &Grid<R>) -> Self {
        // Embed the input in the ghost-padded domain (padding reads as
        // zero, like the old edge path's out-of-range loads) and
        // quantize once.
        let pad_shape = [plan.grid_shape[0], plan.geom.pad_ny, plan.geom.pad_nx];
        let mut cur = input.embedded_in(pad_shape);
        cur.quantize(plan.precision);
        // One clone seeds the boundary cells of the second buffer; steps
        // rewrite every tile output and re-mirror the boundary band, so
        // a full boundary copy never happens again.
        let next = cur.clone();
        Self { cur, next }
    }
}

/// Shared output buffer for the parallel direct scatter.
///
/// Safety argument: tiles have pairwise-disjoint `r2 × r1` output
/// footprints in the padded plane (origins on an `r2/r1`-strided
/// lattice), every tile belongs to exactly one `(plane, column block)`
/// work item, and each work item is claimed by exactly one pool task per
/// step. Each cell index passed to `write` is therefore touched by at
/// most one task per step; the boundary mirror runs after the parallel
/// region, on the caller's thread.
struct SharedOutput<R> {
    ptr: *mut R,
    len: usize,
}

// SAFETY: see the struct docs — all concurrent writes target disjoint
// indices.
unsafe impl<R: Send> Sync for SharedOutput<R> {}

impl<R: Real> SharedOutput<R> {
    /// Write one output cell.
    ///
    /// # Safety
    /// `idx < len`, and no other task writes `idx` during this step.
    #[inline]
    unsafe fn write(&self, idx: usize, v: R) {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) = v }
    }
}

/// One optimized stencil step over the padded buffers: compute every tile
/// output of `out` from `cur`, then mirror the semantic boundary band
/// back. Boundary planes (`z ≥ planes`) of `out` already hold the (old,
/// never-changing) boundary values.
///
/// Returns `true` if any stored output value was non-finite — the
/// per-step numeric-health verdict the session layer feeds its
/// [`crate::session::HealthPolicy`].
pub(crate) fn step_into<R: Real>(
    plan: &CompiledStencil<R>,
    cur: &Grid<R>,
    out: &mut Grid<R>,
    scratch: &mut [WorkerScratch<R>],
) -> bool {
    step_into_impl(plan, cur, out, scratch, false).1
}

/// The staged two-phase step body. `timed` threads the clock through for
/// [`profile_phases`] (per-lane phase nanoseconds plus the returned
/// mirror nanoseconds). A runtime flag rather than a const generic on
/// purpose: one instantiation means the production hot path has the
/// same machine code in every binary, whether or not that binary also
/// profiles (a second monomorphization measurably perturbed code layout
/// on the micro-kernels); when `timed` is false the cost is four
/// predicted-untaken branches per work item and no clock reads.
fn step_into_impl<R: Real>(
    plan: &CompiledStencil<R>,
    cur: &Grid<R>,
    out: &mut Grid<R>,
    scratch: &mut [WorkerScratch<R>],
    timed: bool,
) -> (u64, bool) {
    let t = &plan.exec;
    let ss = &t.stage;
    let plane_stride = cur.plane_stride(); // padded: pad_ny · pad_nx
    let data = cur.as_slice();
    let out_slice = out.as_mut_slice();
    let shared_out = SharedOutput {
        ptr: out_slice.as_mut_ptr(),
        len: out_slice.len(),
    };

    // The guided scheduler's claim unit is a whole z-sliding run, so a
    // run is never split across lanes and every item's reuse descriptor
    // (`overlap[wi] > 0` ⇒ the same lane just staged item `wi − 1`'s
    // window) holds by construction. Run starts always stage their full
    // window, which also makes stale ring content from the previous
    // step (the buffers swapped) unreachable — no per-step invalidation
    // pass is needed.
    let n_runs = t.work.len() / ss.run_len;
    // Health verdict, merged across lanes without allocating: lanes only
    // ever raise the flag, so a Relaxed store suffices (the guided
    // dispatch's completion is the synchronization point).
    let nonfinite = AtomicU32::new(0);
    rayon::pool::parallel_for_slots_guided(n_runs, 1, scratch, |_slot, ws, runs| {
        if exec_items(
            plan,
            data,
            &shared_out,
            ws,
            runs.start * ss.run_len..runs.end * ss.run_len,
            timed,
        ) {
            nonfinite.store(1, Ordering::Relaxed);
        }
    });

    // Boundary mirror: restore the semantic boundary cells the ghost
    // scatters overwrote. Boundary values are step-invariant, so copying
    // from `cur` (whose band was restored the same way last step, or
    // seeded at arena build) is exact.
    let t0 = timed.then(std::time::Instant::now);
    for z in 0..plan.geom.planes {
        let p = z * plane_stride;
        for &(off, len) in &t.mirror_segments {
            out_slice[p + off..p + off + len].copy_from_slice(&data[p + off..p + off + len]);
        }
    }
    let mirror_ns = t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
    (mirror_ns, nonfinite.load(Ordering::Relaxed) != 0)
}

/// A contiguous range of staged work items — phase 1 stage, phase 2
/// MMA, phase 3 scatter each — against an explicit `(data, shared_out)`
/// buffer pair, with the plan-derived loop invariants hoisted once per
/// call. This is the whole steady-state hot path, shared verbatim by
/// the solo stepper ([`step_into`], one call per claimed run range) and
/// the batch stepper ([`step_all_into`], one call per claimed
/// `(session, run range)` — the pair is re-bound per claim).
///
/// `#[inline(never)]` is load-bearing: with two dispatch closures in
/// the binary, inlining would duplicate the step body and the second
/// copy measurably perturbs code layout (the effect the `timed` runtime
/// flag exists to avoid — A/B-measured at −10–18% on the solo
/// microkernels when this body was `inline(always)`). One
/// out-of-line instantiation means the solo and batch paths execute
/// literally the same machine code, and the call cost is amortized over
/// a whole claimed run range.
///
/// Ring precondition: `items` must start at a run boundary and cover
/// whole z-sliding runs — if `stage.overlap[wi] > 0` for an item, the
/// *same* `ws` ring must have just executed work item `wi − 1` against
/// the *same* `data` buffer. Both callers guarantee it by claiming
/// whole runs for one lane: run starts (`overlap == 0`) stage their
/// full window, which also makes stale ring content — from a previous
/// step *or another batched session* — unreachable.
///
/// Returns `true` if any stored output value was non-finite (NaN/Inf
/// after the store rounding) — the numeric-health scan, folded into the
/// scatter so it reads each value while it is already in a register and
/// costs no extra pass and no allocation.
#[inline(never)]
fn exec_items<R: Real>(
    plan: &CompiledStencil<R>,
    data: &[R],
    shared_out: &SharedOutput<R>,
    ws: &mut WorkerScratch<R>,
    items: std::ops::Range<usize>,
    timed: bool,
) -> bool {
    let t = &plan.exec;
    let ss = &t.stage;
    let plane_stride = plan.geom.pad_ny * plan.geom.pad_nx;
    let frag = plan.frag;
    let n = frag.n;
    let band_rows = ss.band_rows;
    let m_prime = plan.plan.m_prime();
    let tiles_per_plane = plan.geom.tiles_per_plane;
    let precision = plan.precision;
    let WorkerScratch {
        staged,
        strips,
        phase_ns,
    } = ws;
    let mut nonfinite = false;
    // One kernel-dispatch decision per claimed range: the AVX2 paths
    // are selected by CPU feature + scalar type + fragment width, none
    // of which change mid-range, so the per-fragment dispatch below is
    // a branch on a hoisted bool, not an atomic load.
    let use_avx2 = simd::avx2_active::<R>(n);
    // Store-rounding is hoisted the same way: with AVX2 up and a
    // precision whose f32 rounding has a vector twin, each fragment row
    // is rounded and health-scanned eight lanes at a time into this
    // reused stack buffer (fragment widths with kernels are ≤ 32), and
    // only the strided stores stay scalar.
    let round_vec = use_avx2 && simd::round_dispatchable::<R>(precision);
    let mut round_buf = [R::ZERO; 32];

    for wi in items {
        let (z, cb) = t.work[wi];
        let first_tile = cb * n;
        let tiles_in_block = n.min(tiles_per_plane - first_tile);
        let block_tiles = &t.tiles[first_tile..first_tile + tiles_in_block];
        let out_plane = z * plane_stride;

        // ---- Phase 1: stage the new window planes. ----
        // Only planes the previous item did not leave in the ring
        // (all of them at a run start, exactly one mid-run). Cells
        // are copied in rank order — first-reference (permuted
        // operand) order, chosen so the MMA's staged reads stay
        // ascending; the source offsets are whatever the PIT
        // permutation left. Columns past `tiles_in_block` may hold
        // stale data, which the MMA computes garbage from and the
        // scatter never reads.
        //
        // Shared staging (SPIDER-style): when the block's tiles are
        // x-adjacent in one tile row (`shift_blocks[cb]`), the plan's
        // op list replaces the strided grid loads of every rank whose
        // `+r1` neighbor is also staged with one fresh load (column 0)
        // plus a contiguous in-scratch shift copy of the neighbor's
        // row — same memory values, no FP ops, so bit-exactness is
        // untouched. Op order guarantees every shift source is staged
        // first (plan-validated).
        let t0 = timed.then(std::time::Instant::now);
        let staged_data = staged.as_mut_slice();
        // Window-policy hook: the tuner can switch the whole plan to
        // fresh staging when the schedule has no shift ops worth the
        // op-list walk (`StagePolicy::shared_stage`); per-block
        // geometric validity still gates the shared path.
        let shiftable = ss.policy.shared_stage && ss.shift_blocks[cb];
        for d in ss.overlap[wi] as usize..ss.window {
            let src = (z + d) * plane_stride;
            let band_base = ((z + d) % ss.window) * band_rows;
            if shiftable {
                for op in &ss.stage_ops {
                    match *op {
                        StageOp::Fresh { rank } => {
                            let rank = rank as usize;
                            let off = ss.cell_offsets[rank];
                            let row_start = (band_base + rank) * n;
                            let row = &mut staged_data[row_start..row_start + tiles_in_block];
                            for (dst, td) in row.iter_mut().zip(block_tiles) {
                                let idx = src + td.base + off;
                                // SAFETY: `ExecTables::build` validated
                                // every (plane, tile, cell) staging
                                // combination against the padded grid
                                // length.
                                debug_assert!(idx < data.len());
                                *dst = unsafe { *data.get_unchecked(idx) };
                            }
                        }
                        StageOp::Shift {
                            rank,
                            src: src_rank,
                        } => {
                            let rank = rank as usize;
                            let off = ss.cell_offsets[rank];
                            let dst_start = (band_base + rank) * n;
                            let src_start = (band_base + src_rank as usize) * n;
                            let idx = src + block_tiles[0].base + off;
                            // SAFETY: as above (column 0 is the
                            // smallest base of the block); rank ≠ src,
                            // so the two band rows are disjoint and the
                            // inline copy below never overlaps. A plain
                            // indexed loop instead of `copy_within`: the
                            // copies are a handful of elements, where
                            // the memmove call overhead dominates the
                            // move itself.
                            debug_assert!(idx < data.len());
                            debug_assert!(dst_start + tiles_in_block <= staged_data.len());
                            debug_assert!(src_start + tiles_in_block <= staged_data.len());
                            unsafe {
                                *staged_data.get_unchecked_mut(dst_start) =
                                    *data.get_unchecked(idx);
                                for j in 0..tiles_in_block - 1 {
                                    *staged_data.get_unchecked_mut(dst_start + 1 + j) =
                                        *staged_data.get_unchecked(src_start + j);
                                }
                            }
                        }
                    }
                }
            } else {
                for (rank, &off) in ss.cell_offsets.iter().enumerate() {
                    let row_start = (band_base + rank) * n;
                    let row = &mut staged_data[row_start..row_start + tiles_in_block];
                    for (dst, td) in row.iter_mut().zip(block_tiles) {
                        let idx = src + td.base + off;
                        // SAFETY: `ExecTables::build` validated every
                        // (plane, tile, cell) staging combination
                        // against the padded grid length.
                        debug_assert!(idx < data.len());
                        *dst = unsafe { *data.get_unchecked(idx) };
                    }
                }
            }
        }

        // Software prefetch for the *next* item's staging: a z-sliding
        // run's next item stages plane `z + window`, a full plane
        // stride ahead — past the page-bounded reach of the hardware
        // prefetch streams, so without hints every staged line is a
        // demand miss. The plan's deduplicated line list covers the
        // block's footprint; the MMA + scatter below provide the
        // latency cover. Addresses past the grid at run ends are
        // harmless: prefetch never faults (`wrapping_add` keeps the
        // pointer arithmetic defined). Window-policy hook: the tuner
        // disables the hints for plans whose runs never have a next
        // plane (`StagePolicy::prefetch`).
        if ss.policy.prefetch {
            let next_plane = (z + ss.window) * plane_stride + block_tiles[0].base;
            for &po in &ss.prefetch_offs {
                simd::prefetch_t0(data.as_ptr().wrapping_add(next_plane + po as usize));
            }
        }

        // ---- Phase 2: MMA from the staged ring. ----
        // Operand addressing rotates with the ring, so the program
        // set is selected by the phase `z mod window`; programs are
        // overwrite-first, so no accumulator zeroing pass runs.
        let t1 = timed.then(std::time::Instant::now);
        let programs = &ss.programs[z % ss.window];
        for (mi, c_frag) in strips.iter_mut().enumerate() {
            program_mma_overwrite(&programs[mi], staged, c_frag, frag, use_avx2);
        }

        // ---- Phase 3: unconditional direct scatter. ----
        // This work item owns every output cell of its tiles, and in
        // the padded domain every tile's full r2×r1 footprint is
        // writable — ghost outputs land in the padding (restored by
        // the mirror below), so no per-cell validity checks remain.
        let t2 = timed.then(std::time::Instant::now);
        for (mi, c_frag) in strips.iter().enumerate() {
            let row0 = mi * frag.m;
            let rows = frag.m.min(m_prime.saturating_sub(row0));
            for fr in 0..rows {
                let off = t.scatter_offs[row0 + fr];
                let c_row = &c_frag.row(fr)[..tiles_in_block];
                if round_vec {
                    // Vector store-rounding, bit-identical to the
                    // per-element `round_to` below (see
                    // `simd::round_finite_row`), with the health scan
                    // folded into the same pass.
                    let rounded = &mut round_buf[..tiles_in_block];
                    nonfinite |= simd::round_finite_row(c_row, rounded, precision);
                    for (&r, td) in rounded.iter().zip(block_tiles) {
                        // SAFETY: disjointness per the SharedOutput
                        // docs; the padded plane contains every tile's
                        // full output footprint.
                        unsafe {
                            shared_out.write(out_plane + td.base + off, r);
                        }
                    }
                } else {
                    for (&v, td) in c_row.iter().zip(block_tiles) {
                        // Health scan on the *stored* value: rounding
                        // to a narrower store format can itself
                        // overflow to Inf, which the scan must catch.
                        let r = v.round_to(precision);
                        nonfinite |= !r.is_finite();
                        // SAFETY: disjointness per the SharedOutput
                        // docs; the padded plane contains every tile's
                        // full output footprint.
                        unsafe {
                            shared_out.write(out_plane + td.base + off, r);
                        }
                    }
                }
            }
        }
        if let (true, Some(t0), Some(t1), Some(t2)) = (timed, t0, t1, t2) {
            let t3 = std::time::Instant::now();
            phase_ns[0] += (t1 - t0).as_nanos() as u64;
            phase_ns[1] += (t2 - t1).as_nanos() as u64;
            phase_ns[2] += (t3 - t2).as_nanos() as u64;
        }
    }
    nonfinite
}

/// Raw per-session buffer bindings for one batched step: one entry per
/// session, filled from the live `&mut [StepBuffers]` at the top of
/// [`step_all_into`] and cleared before it returns, so no dangling
/// pointer outlives the call. Kept in a caller-owned `Vec` (capacity
/// reserved at batch construction) so refilling it each step allocates
/// nothing.
pub(crate) struct SessionPtrs<R> {
    data: *const R,
    out: *mut R,
    len: usize,
}

// SAFETY: entries are only dereferenced inside `step_all_into`'s
// parallel region, where they point into live, pairwise-disjoint
// session buffers (see the safety argument there); between steps the
// vec is empty.
unsafe impl<R: Send> Send for SessionPtrs<R> {}
unsafe impl<R: Send> Sync for SessionPtrs<R> {}

/// Per-session health flags for one batched step, shared between the
/// parallel region (which raises them) and the [`crate::session::Batch`]
/// driver (which publishes `SKIP` before dispatch and reads the verdict
/// after). One `AtomicU32` of or-able bits per session, reset each step.
pub(crate) mod health {
    /// Some claim of this session stored a non-finite output value.
    pub(crate) const NONFINITE: u32 = 1;
    /// Some claim of this session panicked; its `next` buffer is
    /// partial garbage and must not be swapped in.
    pub(crate) const POISONED: u32 = 2;
    /// Published by the driver before dispatch: this session sits out
    /// the step (quarantined or already poisoned). Claims decrement the
    /// run countdown and return without executing.
    pub(crate) const SKIP: u32 = 4;
}

/// Deterministic fault injection for the isolation test suite
/// (`tests/fault_injection.rs`). Compiled only under the `fault-inject`
/// feature, so the production hot path carries no hook at all.
///
/// Faults are armed per *batch session index* through process-global
/// one-shot cells (`usize::MAX` = disarmed): the next batched step that
/// reaches the armed session consumes the cell and trips exactly one
/// fault — a panic inside that session's first executed claim, or a NaN
/// written into the session's live field right before dispatch. Tests
/// that arm faults must serialize themselves (the cells are global).
#[cfg(feature = "fault-inject")]
pub mod fault {
    use std::sync::atomic::{AtomicUsize, Ordering};

    const DISARMED: usize = usize::MAX;
    static PANIC_SESSION: AtomicUsize = AtomicUsize::new(DISARMED);
    static NAN_SESSION: AtomicUsize = AtomicUsize::new(DISARMED);

    /// Arm a one-shot panic inside batch session `session`'s next
    /// executed claim.
    pub fn arm_panic(session: usize) {
        PANIC_SESSION.store(session, Ordering::SeqCst);
    }

    /// Arm a one-shot NaN storm: the next batched step writes NaN into
    /// session `session`'s live field before dispatch, so the scatter's
    /// health scan observes non-finite outputs that same step.
    pub fn arm_nan_storm(session: usize) {
        NAN_SESSION.store(session, Ordering::SeqCst);
    }

    /// Disarm every pending fault.
    pub fn disarm() {
        PANIC_SESSION.store(DISARMED, Ordering::SeqCst);
        NAN_SESSION.store(DISARMED, Ordering::SeqCst);
    }

    /// Consume a pending panic armed for `session` (exactly one caller
    /// wins even when claims race).
    pub(crate) fn take_panic(session: usize) -> bool {
        PANIC_SESSION
            .compare_exchange(session, DISARMED, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Consume a pending NaN storm armed for `session`.
    pub(crate) fn take_nan(session: usize) -> bool {
        NAN_SESSION
            .compare_exchange(session, DISARMED, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }
}

/// Fixed-bucket wall-time histogram for deadline-aware stepping: 8
/// linear sub-buckets per power-of-two of nanoseconds (≤ 12.5% relative
/// bucket width), covering 1 ns to the full `u64` nanosecond range in a
/// flat 496-slot array. Recording is a shift, a mask, and an increment —
/// no allocation ever — so [`crate::session::Batch::step_all_until`]
/// can fold every step's latency in without perturbing the thing it
/// measures, and the serving bench reads p50/p99 out of one struct.
///
/// Quantiles report a bucket's **upper** bound (conservative for
/// latency targets: a reported p99 is never below the true p99 by more
/// than the bucket's width).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; Self::BUCKETS],
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Linear sub-buckets per power of two (as a shift).
    const SUB_BITS: u32 = 3;
    const SUB: usize = 1 << Self::SUB_BITS;
    /// One sub-range for values below `SUB`, plus one per remaining
    /// leading-bit position.
    const BUCKETS: usize = (64 - Self::SUB_BITS as usize) * Self::SUB + Self::SUB;

    /// An empty histogram. The struct is a flat array — no allocation
    /// here or anywhere later.
    pub fn new() -> Self {
        Self {
            buckets: [0; Self::BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < Self::SUB as u64 {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros();
        let sub = ((ns >> (msb - Self::SUB_BITS)) & (Self::SUB as u64 - 1)) as usize;
        (msb - Self::SUB_BITS + 1) as usize * Self::SUB + sub
    }

    /// Upper bound (inclusive, in ns) of bucket `b` — what quantiles
    /// report.
    fn bucket_upper(b: usize) -> u64 {
        if b < Self::SUB {
            return b as u64;
        }
        let major = (b / Self::SUB) as u32 + Self::SUB_BITS - 1;
        let sub = (b % Self::SUB) as u128;
        // Lower bound of the *next* sub-bucket, minus one (in u128: the
        // topmost bucket's bound is exactly 2^64 before the decrement).
        let ub = ((Self::SUB as u128 + sub + 1) << (major - Self::SUB_BITS)) - 1;
        ub.min(u64::MAX as u128) as u64
    }

    /// Record one sample.
    pub fn record(&mut self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one sample given directly in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no sample was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded samples as the
    /// matching bucket's upper bound; zero when empty. `quantile(0.5)`
    /// is the p50, `quantile(0.99)` the p99.
    pub fn quantile(&self, q: f64) -> std::time::Duration {
        if self.count == 0 {
            return std::time::Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The top bucket's upper bound saturates; report the
                // exact observed maximum instead.
                let ns = Self::bucket_upper(b).min(self.max_ns);
                return std::time::Duration::from_nanos(ns);
            }
        }
        std::time::Duration::from_nanos(self.max_ns)
    }

    /// Arithmetic mean of the recorded samples; zero when empty.
    pub fn mean(&self) -> std::time::Duration {
        if self.count == 0 {
            return std::time::Duration::ZERO;
        }
        std::time::Duration::from_nanos(self.sum_ns / self.count)
    }

    /// Smallest recorded sample; zero when empty.
    pub fn min(&self) -> std::time::Duration {
        if self.count == 0 {
            return std::time::Duration::ZERO;
        }
        std::time::Duration::from_nanos(self.min_ns)
    }

    /// Largest recorded sample; zero when empty.
    pub fn max(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.max_ns)
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Forget every sample (the array stays allocated inline).
    pub fn clear(&mut self) {
        *self = Self::new();
    }
}

/// One batched stencil step: advance **every** session's `next` buffer
/// from its `cur` buffer by dispatching the union of all sessions'
/// z-sliding runs ([`BatchWork`]) through a single two-level guided
/// queue ([`rayon::pool::parallel_for_slots_guided2`]) — lanes drain
/// work from whichever session still has it, with no barrier between
/// sessions. The caller swaps each session's buffers afterwards.
///
/// Equivalence and ring discipline: a claim is a contiguous range of
/// one session's runs (the 2-level clipping guarantees it), every run
/// is executed start-to-finish by one lane, and run starts stage their
/// full window — so each work item runs under exactly the conditions of
/// the solo stepper and every session's output is **bit-identical** to
/// stepping it alone (`tests/batch_exec.rs` pins this). The ring never
/// carries state across sessions: a lane that switches sessions does so
/// at a run boundary, where the full-window restage overwrites every
/// band the MMA can reach.
///
/// Safety argument for the shared writes: within one session, tiles
/// partition the padded output footprint and each `(plane, column
/// block)` item is claimed once (the solo argument, see
/// [`SharedOutput`]); across sessions, buffers are disjoint
/// allocations. The boundary mirror — which overwrites cells the ghost
/// scatters just wrote — runs inside the region too, but only after
/// the owning session's run countdown (`pending`) hits zero: every
/// scatter of that session happens-before the `AcqRel` decrement that
/// releases it, exactly one lane observes zero, and that lane performs
/// the mirror while the session's planes are still cache-warm (the
/// post-region serial mirror cost N cold re-walks).
///
/// Fault containment: each claim body runs under `catch_unwind`, and a
/// panic raises only the owning session's [`health::POISONED`] flag —
/// the claim unit is one session's contiguous runs, so an unwind can
/// touch no other session's buffers, and the lane's staged ring needs
/// no repair (the next claim's run start restages its full window).
/// The countdown is decremented on both paths, so surviving sessions'
/// mirrors still fire; a poisoned session skips its mirror (its `next`
/// buffer is discarded by the driver, which never swaps it in).
/// Sessions whose [`health::SKIP`] flag was published before dispatch
/// are drained without executing — the degraded-mode path, still
/// allocation-free.
///
/// Halo exchange: when `exchange` is present the batch is one sharded
/// job, and each member's countdown-zero lane additionally *notifies*
/// the destinations listed in the schedule by decrementing their
/// `xpending` counters (armed to [`HaloExchange::deps`] before
/// dispatch). The lane that retires a destination's last dependency
/// copies that destination's incoming [`HaloSegment`]s — neighbor
/// `next` → own `next` — still inside the parallel region and still
/// allocation-free. The `AcqRel` chain `scatters → pending → mirror →
/// xpending → segment copy` makes every source's writes visible to the
/// copying lane. Poisoned members still notify (so counters retire and
/// the region always drains), and the driver discards every `next`
/// buffer un-swapped when any member poisons, so garbage propagated by
/// a post-poison copy is never observable.
#[allow(clippy::too_many_arguments)]
pub(crate) fn step_all_into<R: Real>(
    plan: &CompiledStencil<R>,
    work: &BatchWork,
    bufs: &mut [StepBuffers<R>],
    scratch: &mut [WorkerScratch<R>],
    ptrs: &mut Vec<SessionPtrs<R>>,
    pending: &[AtomicU32],
    flags: &[AtomicU32],
    exchange: Option<&crate::plan::HaloExchange>,
    xpending: &[AtomicU32],
) {
    assert_eq!(
        work.sessions,
        bufs.len(),
        "batch work/buffer table mismatch"
    );
    assert_eq!(
        work.sessions,
        pending.len(),
        "batch countdown table mismatch"
    );
    assert_eq!(work.sessions, flags.len(), "batch health table mismatch");
    if let Some(hx) = exchange {
        assert_eq!(hx.sessions(), work.sessions, "halo schedule session count");
        assert_eq!(work.sessions, xpending.len(), "halo countdown table");
        for (d, xp) in xpending.iter().enumerate() {
            // As with `pending` below: armed before the dispatch
            // publishes the work, so Relaxed suffices.
            xp.store(hx.deps(d), Ordering::Relaxed);
        }
    }
    let t = &plan.exec;
    debug_assert_eq!(work.runs_per_session * work.run_len, t.work.len());

    // (Re)bind the per-session buffer table. `clear` + `push` within
    // the capacity reserved at batch construction: no allocation.
    ptrs.clear();
    debug_assert!(ptrs.capacity() >= bufs.len());
    for (sb, pend) in bufs.iter_mut().zip(pending) {
        let len = sb.next.as_mut_slice().len();
        debug_assert_eq!(sb.cur.as_slice().len(), len);
        ptrs.push(SessionPtrs {
            data: sb.cur.as_slice().as_ptr(),
            out: sb.next.as_mut_slice().as_mut_ptr(),
            len,
        });
        // No lane can touch this step's counters before the dispatch
        // below publishes the work, so Relaxed is enough.
        pend.store(work.runs_per_session as u32, Ordering::Relaxed);
    }
    let table: &[SessionPtrs<R>] = ptrs;
    let plane_stride = plan.geom.pad_ny * plan.geom.pad_nx;

    rayon::pool::parallel_for_slots_guided2(
        work.sessions,
        work.runs_per_session,
        1,
        scratch,
        |_slot, ws, session, runs| {
            let claimed = runs.len() as u32;
            // Degraded mode: a session flagged SKIP (quarantined or
            // poisoned before this step) is drained, not executed — the
            // countdown still retires so the dispatch completes, and no
            // mirror runs (its buffers are not stepping).
            let drained =
                flags[session].load(Ordering::Relaxed) & (health::SKIP | health::POISONED) != 0;
            if !drained {
                let sp = &table[session];
                // SAFETY: filled above from this step's live buffers;
                // `data` is only read, `shared_out` writes are disjoint
                // per the function docs.
                let data = unsafe { std::slice::from_raw_parts(sp.data, sp.len) };
                let shared_out = SharedOutput {
                    ptr: sp.out,
                    len: sp.len,
                };
                #[cfg(feature = "fault-inject")]
                let inject_panic = fault::take_panic(session);
                // A claim is contiguous session-local runs, so its work
                // items are one contiguous range (`BatchWork::items` per
                // run, concatenated). AssertUnwindSafe: after a caught
                // panic the only state a later observer can see is this
                // session's own `next` buffer (partial scatter output,
                // discarded un-swapped once POISONED is read) and the
                // lane's staged ring (restaged in full at every run
                // start); the plan and every other session's buffers are
                // untouched by construction of the claim unit.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    #[cfg(feature = "fault-inject")]
                    if inject_panic {
                        panic!("injected fault: panic in batch session {session}");
                    }
                    exec_items(
                        plan,
                        data,
                        &shared_out,
                        ws,
                        runs.start * work.run_len..runs.end * work.run_len,
                        false,
                    )
                }));
                match result {
                    Ok(true) => {
                        flags[session].fetch_or(health::NONFINITE, Ordering::Relaxed);
                    }
                    Ok(false) => {}
                    Err(_) => {
                        flags[session].fetch_or(health::POISONED, Ordering::Relaxed);
                    }
                }
            }
            // Session run countdown: the lane that retires the last run
            // restores the session's boundary band (identical to the
            // solo stepper's post-dispatch mirror). `AcqRel` pairs this
            // lane's scatter writes (released by the decrement) with
            // the zero-observer's reads of every other lane's writes.
            // A poisoned or drained session skips the mirror: its `next`
            // buffer is already condemned, and mirroring garbage helps
            // no one.
            if pending[session].fetch_sub(claimed, Ordering::AcqRel) == claimed {
                let sp = &table[session];
                if flags[session].load(Ordering::Relaxed) & (health::SKIP | health::POISONED) == 0 {
                    for z in 0..plan.geom.planes {
                        let p = z * plane_stride;
                        for &(off, len) in &t.mirror_segments {
                            // SAFETY: all of this session's scatters
                            // happened-before the countdown reached
                            // zero, only this lane observed zero, and
                            // the ranges are in-bounds (mirror offsets
                            // address the padded plane, validated at
                            // plan build).
                            unsafe {
                                std::ptr::copy_nonoverlapping(
                                    sp.data.add(p + off),
                                    sp.out.add(p + off),
                                    len,
                                );
                            }
                        }
                    }
                }
                // Halo exchange: this member's step is complete
                // (scatter + mirror, or condemned) — notify every
                // destination gated on it; whoever retires a
                // destination's last dependency copies its segments.
                if let Some(hx) = exchange {
                    for &d in hx.notify(session) {
                        let d = d as usize;
                        if xpending[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                            let dp = &table[d];
                            for seg in hx.segments_for(d) {
                                let spn = &table[seg.src_shard];
                                // SAFETY: every gating member's writes
                                // happened-before its `xpending`
                                // decrement (release), this lane
                                // acquired the last one, exactly one
                                // lane observes 1→0, the ranges were
                                // validated in-bounds against the
                                // buffer length at install, and source
                                // and destination are distinct
                                // allocations (`src_shard !=
                                // dst_shard` by construction).
                                unsafe {
                                    std::ptr::copy_nonoverlapping(
                                        spn.out.add(seg.src_range.start),
                                        dp.out.add(seg.dst_range.start),
                                        seg.src_range.len(),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        },
    );
    ptrs.clear();
}

/// # MMA kernel: R×N register blocking, overwrite-first, no FMA
///
/// The staged MMA executes one rebased, **register-blocked** row
/// program ([`BlockedRowProgram`], compiled at plan time) against the
/// staged operand ring. The kernel processes [`MMA_BLOCK_ROWS`] output
/// rows per pass, holding all `R × N` accumulator lanes in registers
/// and walking the plan-compiled step-major lockstep stream: each step
/// advances every row of the block by one `(kk, v)` entry, so the
/// kernel runs `R` *independent* FP dependency chains instead of the
/// one chain per row that made the row-serial kernel latency-bound
/// (~one add-latency per entry), and each staged `b_row` load is
/// amortized across the rows of the block that reference it in the
/// same step. Blocks the plan could not make uniform (ragged entry
/// counts, the partial tail block) fall back to the row-serial range
/// kernel — same arithmetic, same order.
///
/// **Overwrite-first**: the first scheduled multiply of each row
/// *stores* `v·b` (replacing whatever the previous work item left in
/// the accumulator) and the rest accumulate, eliminating the
/// per-work-item zeroing pass. Numerically identical to zero-fill +
/// accumulate: IEEE `0 + x = x` (the sign of an exact-zero result is
/// unobservable downstream). Every row having ≥ 1 entry is a **checked
/// plan-time guarantee** — `ExecTables::build` asserts it on every
/// rebased program row (synthetic zero-stores fill empty rows,
/// [`sparstencil_tcu::fragment::RowProgram::with_zero_fill_rows`]) —
/// so the hot loop carries no per-row unwrap, only a `debug_assert`.
///
/// **Bit-exactness (the no-FMA rule)**: every kernel — scalar
/// row-serial, scalar blocked, and the AVX2 paths in [`simd`] —
/// performs, per output row, the *same* IEEE operation sequence on the
/// *same* operands: `acc = v₀·b₀`, then `acc = acc + (vᵢ·bᵢ)` in
/// program-entry order, each lane `j` independent. Blocking interleaves
/// *rows*, never the entries within a row, and rows accumulate
/// independently, so the per-row sequence is untouched. The SIMD paths
/// use separate multiply and add (`vmulps` + `vaddps`), **never FMA**:
/// a fused multiply-add skips the intermediate rounding of `v·b` and
/// would produce different low bits than the scalar oracle. rustc never
/// contracts `a + b * c` on its own, so the scalar kernels compile to
/// the same discipline. This is what keeps every path bit-identical to
/// [`run_naive`] on grids *and* counters.
///
/// `B` row slicing is unchecked — entry indices were validated against
/// the staged depth when the program was rebased, and the ring is
/// allocated at exactly `staged_depth × frag.n`. `use_avx2` is hoisted
/// by the caller (one dispatch decision per claimed run range, not per
/// fragment).
fn program_mma_overwrite<R: Real>(
    prog: &BlockedRowProgram<R>,
    staged: &DenseMatrix<R>,
    c_frag: &mut DenseMatrix<R>,
    frag: sparstencil_tcu::FragmentShape,
    use_avx2: bool,
) {
    debug_assert_eq!(staged.shape(), (prog.depth(), frag.n));
    debug_assert_eq!(c_frag.shape(), (frag.m, frag.n));
    if use_avx2 && simd::try_mma_avx2(prog, staged.as_slice(), c_frag, frag.n) {
        return;
    }
    match frag.n {
        8 => mma_rows_blocked::<R, 8>(prog, staged.as_slice(), c_frag),
        16 => mma_rows_blocked::<R, 16>(prog, staged.as_slice(), c_frag),
        32 => mma_rows_blocked::<R, 32>(prog, staged.as_slice(), c_frag),
        n => mma_rows_generic::<R>(prog.base(), staged.as_slice(), c_frag, n),
    }
}

/// Scalar R×N register-blocked kernel (see the dispatch docs above):
/// `MMA_BLOCK_ROWS` accumulator rows advance in lockstep through the
/// plan-compiled step-major entry stream; non-uniform blocks fall back
/// to [`mma_rows_range`]. The compile-time width lets LLVM keep the
/// `R × N` accumulator block in registers and vectorize the lane
/// loops; the per-row, per-lane operation sequence is exactly the
/// row-serial path's, so results stay bit-identical. Portable fallback
/// and oracle for the AVX2 paths in [`simd`].
fn mma_rows_blocked<R: Real, const N: usize>(
    prog: &BlockedRowProgram<R>,
    b_data: &[R],
    c_frag: &mut DenseMatrix<R>,
) {
    debug_assert_eq!(prog.block_rows(), MMA_BLOCK_ROWS);
    let ls = prog.lockstep();
    for (bi, blk) in prog.blocks().iter().enumerate() {
        let r0 = bi * MMA_BLOCK_ROWS;
        let Some((start, steps)) = *blk else {
            mma_rows_range::<R, N>(
                prog.base(),
                r0..(r0 + MMA_BLOCK_ROWS).min(prog.rows()),
                b_data,
                c_frag,
            );
            continue;
        };
        let mut acc = [[R::ZERO; N]; MMA_BLOCK_ROWS];
        let mut p = start as usize;
        debug_assert!(p + steps as usize * MMA_BLOCK_ROWS <= ls.len());
        // Step 0 stores (overwrite-first), steps 1.. accumulate.
        for (r, acc_row) in acc.iter_mut().enumerate() {
            // SAFETY: (start, steps) point at steps·MMA_BLOCK_ROWS
            // in-bounds lockstep entries by plan compilation.
            let (kk, v) = unsafe { *ls.get_unchecked(p + r) };
            let start_b = kk as usize * N;
            // SAFETY: kk < prog.depth() by construction, so the row
            // [start_b, start_b + N) lies inside the depth×N buffer.
            debug_assert!(start_b + N <= b_data.len());
            let b_row = unsafe { b_data.get_unchecked(start_b..start_b + N) };
            for j in 0..N {
                acc_row[j] = v * b_row[j];
            }
        }
        p += MMA_BLOCK_ROWS;
        for _ in 1..steps {
            for (r, acc_row) in acc.iter_mut().enumerate() {
                // SAFETY: as above.
                let (kk, v) = unsafe { *ls.get_unchecked(p + r) };
                let start_b = kk as usize * N;
                debug_assert!(start_b + N <= b_data.len());
                let b_row = unsafe { b_data.get_unchecked(start_b..start_b + N) };
                for j in 0..N {
                    acc_row[j] += v * b_row[j];
                }
            }
            p += MMA_BLOCK_ROWS;
        }
        for (r, acc_row) in acc.iter().enumerate() {
            c_frag.row_mut(r0 + r)[..N].copy_from_slice(acc_row);
        }
    }
}

/// Row-serial width-specialized execution of rows `rows` of a program:
/// the fallback for blocks the plan could not compile to the lockstep
/// layout. One `N`-lane accumulator row in registers per output row,
/// per-row entry order identical to every other path.
fn mma_rows_range<R: Real, const N: usize>(
    prog: &RowProgram<R>,
    rows: std::ops::Range<usize>,
    b_data: &[R],
    c_frag: &mut DenseMatrix<R>,
) {
    for i in rows {
        let row = prog.row(i);
        let c_row = &mut c_frag.row_mut(i)[..N];
        let mut acc = [R::ZERO; N];
        // Non-emptiness is the checked plan-time guarantee asserted by
        // `ExecTables::build` on every rebased row; no runtime unwrap.
        debug_assert!(!row.is_empty(), "overwrite-first requires zero-filled rows");
        let Some((&(kk0, v0), rest)) = row.split_first() else {
            continue;
        };
        let start = kk0 as usize * N;
        // SAFETY: kk < prog.depth() by construction, so the row
        // [start, start + N) lies inside the depth×N buffer.
        debug_assert!(start + N <= b_data.len());
        let b_row = unsafe { b_data.get_unchecked(start..start + N) };
        for j in 0..N {
            acc[j] = v0 * b_row[j];
        }
        for &(kk, v) in rest {
            let start = kk as usize * N;
            // SAFETY: as above.
            debug_assert!(start + N <= b_data.len());
            let b_row = unsafe { b_data.get_unchecked(start..start + N) };
            for j in 0..N {
                acc[j] += v * b_row[j];
            }
        }
        c_row.copy_from_slice(&acc);
    }
}

/// Fallback for fragment widths without a specialized kernel
/// (row-serial, runtime width).
fn mma_rows_generic<R: Real>(
    prog: &RowProgram<R>,
    b_data: &[R],
    c_frag: &mut DenseMatrix<R>,
    n: usize,
) {
    for i in 0..prog.rows() {
        let c_row = &mut c_frag.row_mut(i)[..n];
        let row = prog.row(i);
        // Non-emptiness is the checked plan-time guarantee asserted by
        // `ExecTables::build` on every rebased row; no runtime unwrap.
        debug_assert!(!row.is_empty(), "overwrite-first requires zero-filled rows");
        let Some((&(kk0, v0), rest)) = row.split_first() else {
            continue;
        };
        let start = kk0 as usize * n;
        // SAFETY: kk < prog.depth() by construction.
        debug_assert!(start + n <= b_data.len());
        let b_row = unsafe { b_data.get_unchecked(start..start + n) };
        for (cj, &bj) in c_row.iter_mut().zip(b_row) {
            *cj = v0 * bj;
        }
        for &(kk, v) in rest {
            let start = kk as usize * n;
            // SAFETY: as above.
            debug_assert!(start + n <= b_data.len());
            let b_row = unsafe { b_data.get_unchecked(start..start + n) };
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj += v * bj;
            }
        }
    }
}

/// Direct kernel entry points for the equivalence property tests
/// (`crates/core/tests/proptests.rs`): each function pins one dispatch
/// path regardless of the process-global kernel selection, so the
/// kernel-level proptest can compare paths without racing other tests
/// over [`simd::force_scalar`]. Not part of the public API.
#[doc(hidden)]
pub mod kernel_testing {
    use super::*;

    /// Execute the scalar register-blocked path (what the engine runs
    /// when AVX2 is unavailable or forced off).
    pub fn blocked_overwrite<R: Real>(
        prog: &BlockedRowProgram<R>,
        staged: &DenseMatrix<R>,
        c_frag: &mut DenseMatrix<R>,
        n: usize,
    ) {
        match n {
            8 => mma_rows_blocked::<R, 8>(prog, staged.as_slice(), c_frag),
            16 => mma_rows_blocked::<R, 16>(prog, staged.as_slice(), c_frag),
            32 => mma_rows_blocked::<R, 32>(prog, staged.as_slice(), c_frag),
            n => mma_rows_generic::<R>(prog.base(), staged.as_slice(), c_frag, n),
        }
    }

    /// Execute the row-serial generic path — the scalar oracle every
    /// other kernel is pinned bit-identical to.
    pub fn generic_overwrite<R: Real>(
        prog: &BlockedRowProgram<R>,
        staged: &DenseMatrix<R>,
        c_frag: &mut DenseMatrix<R>,
        n: usize,
    ) {
        mma_rows_generic(prog.base(), staged.as_slice(), c_frag, n);
    }

    /// Try the AVX2 path; `false` when it cannot run here (non-x86_64
    /// build, `simd` feature off, CPU without AVX2, or a width/type
    /// combination without a vector kernel).
    pub fn avx2_overwrite<R: Real>(
        prog: &BlockedRowProgram<R>,
        staged: &DenseMatrix<R>,
        c_frag: &mut DenseMatrix<R>,
        n: usize,
    ) -> bool {
        simd::avx2_supported()
            && simd::dispatchable::<R>(n)
            && simd::try_mma_avx2(prog, staged.as_slice(), c_frag, n)
    }
}

/// Wall-time split of the staged step's phases, measured by
/// [`profile_phases`]. Stage + MMA + scatter are per-lane sums over
/// every work item (single-lane: also wall time); the mirror runs once
/// per step on the dispatching thread. `wall_seconds` is the measured
/// end-to-end stepping time and exceeds the phase sum by the
/// instrumentation and dispatch overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseProfile {
    /// Instrumented steps measured.
    pub iters: usize,
    /// Seconds staging operand windows (phase 1), summed over lanes.
    pub stage_seconds: f64,
    /// Seconds in the staged MMA programs (phase 2), summed over lanes.
    pub mma_seconds: f64,
    /// Seconds in the direct scatter (phase 3), summed over lanes.
    pub scatter_seconds: f64,
    /// Seconds restoring the boundary band (once per step).
    pub mirror_seconds: f64,
    /// Measured wall seconds across all instrumented steps.
    pub wall_seconds: f64,
}

/// Measure the per-phase (stage / MMA / scatter / mirror) wall-time
/// split of the staged executor over `iters` single-lane steps on a
/// fresh arena — the breakdown the `bench` bin emits so the gather
/// share of a step stays visible in the perf trajectory. One untimed
/// warm-up step runs first; the instrumented stepper reads the clock
/// around each phase, so rates derived from `wall_seconds` sit slightly
/// below the uninstrumented throughput.
///
/// # Panics
/// Panics if the input shape differs from the plan's compile-time shape.
pub fn profile_phases<R: Real>(
    plan: &CompiledStencil<R>,
    input: &Grid<R>,
    iters: usize,
) -> PhaseProfile {
    let mut bufs = StepBuffers::new(plan, input);
    let mut scratch = WorkerScratch::pool(plan, 1);
    step_into(plan, &bufs.cur, &mut bufs.next, &mut scratch);
    std::mem::swap(&mut bufs.cur, &mut bufs.next);
    for ws in &mut scratch {
        ws.phase_ns = [0; 3];
    }
    let mut mirror_ns = 0u64;
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        mirror_ns += step_into_impl(plan, &bufs.cur, &mut bufs.next, &mut scratch, true).0;
        std::mem::swap(&mut bufs.cur, &mut bufs.next);
    }
    let wall_seconds = t0.elapsed().as_secs_f64();
    let phase = scratch.iter().fold([0u64; 3], |acc, ws| {
        [
            acc[0] + ws.phase_ns[0],
            acc[1] + ws.phase_ns[1],
            acc[2] + ws.phase_ns[2],
        ]
    });
    PhaseProfile {
        iters,
        stage_seconds: phase[0] as f64 * 1e-9,
        mma_seconds: phase[1] as f64 * 1e-9,
        scatter_seconds: phase[2] as f64 * 1e-9,
        mirror_seconds: mirror_ns as f64 * 1e-9,
        wall_seconds,
    }
}

/// Closed-form per-iteration activity counters of a compiled plan at a
/// grid shape — **the** single source of the executor-side accounting:
/// [`run`] merges this into its engine once per step, [`model_run`]
/// scales it by the iteration count, so "analytic == counted" holds by
/// construction instead of by parallel re-derivation. [`run_naive`]
/// passes `include_mma = false` and keeps counting fragment ops one by
/// one as the independent oracle the equivalence suite compares against.
pub(crate) fn iter_counters<R: Real>(
    plan: &CompiledStencil<R>,
    geom: &layout::LayoutGeometry,
    grid_shape: [usize; 3],
    include_mma: bool,
) -> Counters {
    let tr = layout::traffic(
        &plan.kernel,
        grid_shape,
        geom,
        plan.frag,
        plan.precision,
        plan.flags.lut,
    );
    let mut c = Counters::new();
    c.kernel_launches = 1;
    c.global_read_bytes = tr.global_read;
    c.global_write_bytes = tr.global_write;
    c.l2_hit_bytes = tr.l2_hit.min(tr.global_read);
    c.shared_write_bytes = tr.shared_write;
    c.shared_read_bytes = tr.shared_read;
    if include_mma {
        match plan.mode {
            ExecMode::SparseTcu => c.sparse_mma_count = geom.n_mma,
            ExecMode::DenseTcu => c.dense_mma_count = geom.n_mma,
        }
        c.tc_executed_flops = geom.n_mma * plan.frag.executed_flops();
    }
    if !plan.flags.lut {
        // Without lookup tables every gathered element pays address
        // arithmetic (integer div/mod chains, ~4 scalar ops each — §3.3).
        let touches = (geom.tiles_per_plane * geom.planes) as u64 * geom.k_prime as u64;
        c.ffma_count = touches * 4;
    }
    c
}

/// Execute `iters` steps through the retained pre-refactor path: clone
/// the grid per step, allocate per-work-item scratch, collect results
/// and scatter serially, count every MMA as it is issued.
///
/// Kept as the equivalence oracle for [`run`] (bit-identical grids,
/// identical counters — `tests/exec_equivalence.rs`) and as the baseline
/// the `simulator_throughput` bench measures the rewrite against.
///
/// # Panics
/// Panics if the input shape differs from the plan's compile-time shape.
pub fn run_naive<R: Real>(
    plan: &CompiledStencil<R>,
    input: &Grid<R>,
    iters: usize,
) -> (Grid<R>, RunStats) {
    let mut sim =
        crate::session::Simulation::new(crate::session::NaiveBackend::throwaway(plan, input));
    sim.step_n(iters);
    let stats = sim.stats().expect("naive backend reports stats");
    (sim.into_grid(), stats)
}

/// One naive stencil step: returns the new grid (valid region updated,
/// boundary copied) and adds the issued MMA ops to the engine.
pub(crate) fn step_naive<R: Real>(
    plan: &CompiledStencil<R>,
    cur: &Grid<R>,
    engine: &mut Engine,
) -> Grid<R> {
    let [_, ny, nx] = cur.shape();
    let [_ez, ey, ex] = plan.kernel.extent();
    let (vy, vx) = (ny - ey + 1, nx - ex + 1);
    let (r1, r2) = (plan.plan.r1, plan.plan.r2);
    let tiles_x = vx.div_ceil(r1);
    let tiles_y = vy.div_ceil(r2);
    let tiles_per_plane = tiles_x * tiles_y;
    let frag = plan.frag;
    let col_blocks = tiles_per_plane.div_ceil(frag.n);
    let planes = plan.geom.planes;
    let plane_stride = cur.plane_stride();

    let mut out = cur.clone();

    // Work item = (output plane, fragment column block).
    let work: Vec<(usize, usize)> = (0..planes)
        .flat_map(|z| (0..col_blocks).map(move |cb| (z, cb)))
        .collect();

    struct BlockResult<R: Real> {
        z: usize,
        first_tile: usize,
        strips: Vec<DenseMatrix<R>>, // per m-strip: frag.m × frag.n
        mma_ops: u64,
    }

    let results: Vec<BlockResult<R>> = work
        .par_iter()
        .map(|&(z, cb)| {
            let first_tile = cb * frag.n;
            let m_strips = plan.geom.m_padded / frag.m;
            let k_strips = plan.geom.k_logical / frag.k;
            let mut strips: Vec<DenseMatrix<R>> = (0..m_strips)
                .map(|_| DenseMatrix::zeros(frag.m, frag.n))
                .collect();
            let mut mma_ops = 0u64;
            let mut b_frag = DenseMatrix::<R>::zeros(frag.k, frag.n);

            for slice in &plan.slices {
                // z-folded operands: gather offsets already include the
                // depth term `dz·plane_stride`; `slice.dz` is 0.
                let src_plane = z + slice.dz;
                let plane_base = src_plane * plane_stride;
                let data = cur.as_slice();
                for ki in 0..k_strips {
                    // Gather the B fragment for this k-strip: one column
                    // per tile, rows via the lookup table.
                    for t in 0..frag.n {
                        let tile = first_tile + t;
                        if tile >= tiles_per_plane {
                            for i in 0..frag.k {
                                b_frag.set(i, t, R::ZERO);
                            }
                            continue;
                        }
                        let (oy, ox) = plan.plan.tile_origin(tile, tiles_x);
                        let interior = oy + plan.plan.gy <= ny && ox + plan.plan.gx <= nx;
                        let base = plane_base + oy * nx + ox;
                        if interior {
                            for i in 0..frag.k {
                                let off = plan.gather_lut[ki * frag.k + i];
                                let v = if off < 0 {
                                    R::ZERO
                                } else {
                                    data[base + off as usize]
                                };
                                b_frag.set(i, t, v);
                            }
                        } else {
                            // Edge tile: the linear offset is ambiguous
                            // past the grid boundary; use the explicit
                            // (dz, iy, ix) coordinates with bounds checks
                            // (dz is always in range: z + dz < nz by
                            // construction).
                            for i in 0..frag.k {
                                let (dz, iy, ix) = plan.gather_coords[ki * frag.k + i];
                                let v = if dz == u32::MAX {
                                    R::ZERO
                                } else {
                                    let (dz, iy, ix) = (dz as usize, iy as usize, ix as usize);
                                    if oy + iy < ny && ox + ix < nx {
                                        data[plane_base
                                            + dz * plane_stride
                                            + (oy + iy) * nx
                                            + ox
                                            + ix]
                                    } else {
                                        R::ZERO
                                    }
                                };
                                b_frag.set(i, t, v);
                            }
                        }
                    }
                    for (mi, c_frag) in strips.iter_mut().enumerate() {
                        match &slice.strips[mi][ki] {
                            Operand::Sparse(a24) => sparse_fragment_mma(frag, a24, &b_frag, c_frag),
                            Operand::Dense(a) => dense_fragment_mma(frag, a, &b_frag, c_frag),
                        }
                        mma_ops += 1;
                    }
                }
            }
            BlockResult {
                z,
                first_tile,
                strips,
                mma_ops,
            }
        })
        .collect();

    // Scatter results and absorb op counts.
    let mut total_mma = 0u64;
    for br in results {
        total_mma += br.mma_ops;
        let out_plane_base = br.z * plane_stride;
        for t in 0..frag.n {
            let tile = br.first_tile + t;
            if tile >= tiles_per_plane {
                continue;
            }
            let (oy, ox) = plan.plan.tile_origin(tile, tiles_x);
            for (mi, c_frag) in br.strips.iter().enumerate() {
                for fr in 0..frag.m {
                    let row = mi * frag.m + fr;
                    if row >= plan.plan.m_prime() {
                        break;
                    }
                    let (j2, j1) = (row / r1, row % r1);
                    let (y, x) = (oy + j2, ox + j1);
                    if y < vy && x < vx {
                        out.as_mut_slice()[out_plane_base + y * nx + x] = c_frag.get(fr, t);
                    }
                }
            }
        }
    }

    match plan.mode {
        ExecMode::SparseTcu => engine.counters.sparse_mma_count += total_mma,
        ExecMode::DenseTcu => engine.counters.dense_mma_count += total_mma,
    }
    engine.counters.tc_executed_flops += total_mma * frag.executed_flops();

    out
}

pub(crate) fn finalize_stats<R: Real>(
    plan: &CompiledStencil<R>,
    engine: &Engine,
    iters: usize,
) -> RunStats {
    let timing = engine.timing();
    // Overlap policy: double buffering gives max(compute, memory);
    // without it stages serialize.
    let total_seconds = if plan.flags.double_buffer {
        timing.total
    } else {
        timing.t_compute() + timing.t_memory() + timing.t_launch
    };
    let [ez, ey, ex] = plan.kernel.extent();
    let [nz, ny, nx] = plan.grid_shape;
    let points_per_iter = ((nz - ez + 1) * (ny - ey + 1) * (nx - ex + 1)) as u64;
    let occupancy = plan.occupancy();
    let utilization = model::utilization(&plan.gpu, &engine.counters, &timing, occupancy);
    let seconds_per_iter = if iters > 0 {
        total_seconds / iters as f64
    } else {
        0.0
    };
    RunStats {
        iters,
        counters: engine.counters,
        timing,
        seconds_per_iter,
        total_seconds,
        points_per_iter,
        gstencil_per_sec: if total_seconds > 0.0 {
            model::gstencils_per_sec(points_per_iter, iters as u64, total_seconds)
        } else {
            0.0
        },
        gflops_per_sec: if total_seconds > 0.0 {
            model::gflops_per_sec(
                points_per_iter,
                plan.kernel.points() as u64,
                iters as u64,
                total_seconds,
            )
        } else {
            0.0
        },
        occupancy,
        utilization,
        prep: plan.prep,
    }
}

/// Analytically extrapolate a run to an arbitrary (paper-scale) problem
/// size without functional execution: evaluates the model at `grid_shape`
/// and returns modelled stats. Functional correctness is established at
/// test scale; this produces the benchmark numbers for Table-2-sized
/// problems.
pub fn model_run<R: Real>(
    plan: &CompiledStencil<R>,
    grid_shape: [usize; 3],
    iters: usize,
) -> RunStats {
    let mut geom = layout::geometry(
        &plan.kernel,
        grid_shape,
        plan.plan.r1,
        plan.plan.r2,
        plan.frag,
        plan.mode,
    );
    // Pin to the compiled plan's actual converted width (grid-size
    // independent) so modelled counts match functional counts.
    layout::refine_geometry(&mut geom, plan.frag, plan.geom.k_logical, plan.geom.pads);
    // The same closed-form per-iteration helper `run` merges per step —
    // analytic and counted totals agree by construction.
    let counters = iter_counters(plan, &geom, grid_shape, true).scaled(iters as u64);

    let timing = model::kernel_time(&plan.gpu, &counters, plan.precision);
    let total_seconds = if plan.flags.double_buffer {
        timing.total
    } else {
        timing.t_compute() + timing.t_memory() + timing.t_launch
    };
    let [ez, ey, ex] = plan.kernel.extent();
    let points_per_iter =
        ((grid_shape[0] - ez + 1) * (grid_shape[1] - ey + 1) * (grid_shape[2] - ex + 1)) as u64;

    // Launch geometry scales with the grid (persistent-block cap).
    let col_blocks = geom.tiles_per_plane.div_ceil(plan.frag.n) * geom.planes;
    let launch = sparstencil_tcu::LaunchConfig {
        blocks: col_blocks
            .div_ceil(4)
            .min(layout::PERSISTENT_BLOCKS as usize),
        ..plan.launch
    };
    let occupancy = launch.occupancy(&plan.gpu);
    let utilization = model::utilization(&plan.gpu, &counters, &timing, occupancy);

    RunStats {
        iters,
        counters,
        timing,
        seconds_per_iter: if iters > 0 {
            total_seconds / iters as f64
        } else {
            0.0
        },
        total_seconds,
        points_per_iter,
        gstencil_per_sec: if total_seconds > 0.0 {
            model::gstencils_per_sec(points_per_iter, iters as u64, total_seconds)
        } else {
            0.0
        },
        gflops_per_sec: if total_seconds > 0.0 {
            model::gflops_per_sec(
                points_per_iter,
                plan.kernel.points() as u64,
                iters as u64,
                total_seconds,
            )
        } else {
            0.0
        },
        occupancy,
        utilization,
        prep: plan.prep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile, Options};
    use crate::reference;
    use crate::stencil::StencilKernel;
    use sparstencil_mat::half::verify_tolerance;

    #[test]
    fn latency_histogram_buckets_are_contiguous_and_monotone() {
        // Every nanosecond value maps to exactly one bucket, bucket
        // indices never decrease with the value, and each bucket's
        // upper bound contains the values mapped to it.
        let mut prev = 0usize;
        for ns in (0u64..4096).chain([u64::MAX / 3, u64::MAX - 1, u64::MAX]) {
            let b = LatencyHistogram::bucket_of(ns);
            assert!(b >= prev, "bucket index regressed at ns {ns}");
            assert!(b < LatencyHistogram::BUCKETS);
            assert!(
                LatencyHistogram::bucket_upper(b) >= ns,
                "bucket {b} ns {ns}"
            );
            if b > 0 {
                assert!(LatencyHistogram::bucket_upper(b - 1) < ns);
            }
            prev = b;
        }
    }

    #[test]
    fn latency_histogram_quantiles_and_merge() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), std::time::Duration::ZERO);
        // 100 samples at 1..=100 µs: p50 within a bucket of 50 µs, p99
        // within a bucket of 99 µs, never *below* the true quantile.
        for us in 1..=100u64 {
            h.record_ns(us * 1_000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5).as_nanos() as u64;
        let p99 = h.quantile(0.99).as_nanos() as u64;
        assert!((50_000..=57_000).contains(&p50), "p50 {p50}");
        assert!((99_000..=100_000).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
        assert_eq!(h.min(), std::time::Duration::from_nanos(1_000));
        assert_eq!(h.max(), std::time::Duration::from_nanos(100_000));
        let mean = h.mean().as_nanos() as u64;
        assert!((50_000..=51_000).contains(&mean), "mean {mean}");

        let mut other = LatencyHistogram::new();
        other.record(std::time::Duration::from_nanos(7));
        other.merge(&h);
        assert_eq!(other.count(), 101);
        assert_eq!(other.min(), std::time::Duration::from_nanos(7));
        h.clear();
        assert!(h.is_empty());
    }

    fn check_kernel(k: &StencilKernel, shape: [usize; 3], opts: &Options, iters: usize) {
        let plan = compile::<f32>(k, shape, opts).unwrap();
        let input = Grid::<f32>::smooth_random(k.dims(), shape);
        let (got, stats) = run(&plan, &input, iters);

        let mut ref_in =
            Grid::<f64>::from_fn_3d(k.dims(), shape, |z, y, x| input.get(z, y, x) as f64);
        ref_in.quantize(plan.precision);
        let want = reference::iterate(k, &ref_in, iters);
        let got64 = Grid::<f64>::from_fn_3d(k.dims(), shape, |z, y, x| got.get(z, y, x) as f64);

        // Compare over the region that stays valid across `iters` steps.
        let reach = k.extent().map(|e| (e - 1) * iters + 1);
        let probe = StencilKernel::new(
            "probe",
            k.dims(),
            [
                if k.dims() == 3 { reach[0] } else { 1 },
                if k.dims() >= 2 { reach[1] } else { 1 },
                reach[2],
            ],
            vec![
                0.0;
                (if k.dims() == 3 { reach[0] } else { 1 })
                    * (if k.dims() >= 2 { reach[1] } else { 1 })
                    * reach[2]
            ],
        );
        let diff = got64.max_rel_diff_interior(&want, &probe);
        let tol = verify_tolerance(plan.precision) * iters as f64;
        assert!(
            diff <= tol,
            "{}: rel diff {diff:.3e} > tol {tol:.1e} (iters={iters})",
            k.name()
        );
        assert!(stats.counters.n_mma() > 0);
        assert!(stats.gstencil_per_sec > 0.0);
    }

    #[test]
    fn sparse_matches_reference_2d_kernels() {
        for k in [
            StencilKernel::heat2d(),
            StencilKernel::box2d9p(),
            StencilKernel::star2d13p(),
            StencilKernel::box2d49p(),
        ] {
            check_kernel(&k, [1, 48, 52], &Options::default(), 1);
        }
    }

    #[test]
    fn sparse_matches_reference_1d_kernels() {
        for k in [StencilKernel::heat1d(), StencilKernel::onedim5p()] {
            check_kernel(&k, [1, 1, 400], &Options::default(), 1);
        }
    }

    #[test]
    fn sparse_matches_reference_3d_kernels() {
        for k in [StencilKernel::heat3d(), StencilKernel::box3d27p()] {
            let opts = Options {
                layout: Some((4, 4)),
                ..Options::default()
            };
            check_kernel(&k, [12, 20, 20], &opts, 1);
        }
    }

    #[test]
    fn multiple_iterations_stay_accurate() {
        check_kernel(
            &StencilKernel::heat2d(),
            [1, 40, 40],
            &Options::default(),
            3,
        );
    }

    #[test]
    fn dense_mode_matches_reference() {
        let opts = Options {
            mode: crate::layout::ExecMode::DenseTcu,
            layout: Some((4, 4)),
            ..Options::default()
        };
        check_kernel(&StencilKernel::box2d9p(), [1, 40, 44], &opts, 1);
    }

    #[test]
    fn counted_mma_equals_equation9() {
        let k = StencilKernel::box2d49p();
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let plan = compile::<f32>(&k, [1, 70, 70], &opts).unwrap();
        let input = Grid::<f32>::smooth_random(2, [1, 70, 70]);
        let (_, stats) = run(&plan, &input, 2);
        assert_eq!(stats.counters.n_mma(), plan.geom.n_mma * 2);
    }

    #[test]
    fn model_run_matches_functional_counters() {
        let k = StencilKernel::box2d9p();
        let opts = Options {
            layout: Some((4, 2)),
            ..Options::default()
        };
        let plan = compile::<f32>(&k, [1, 50, 50], &opts).unwrap();
        let input = Grid::<f32>::smooth_random(2, [1, 50, 50]);
        let (_, functional) = run(&plan, &input, 1);
        let modelled = model_run(&plan, [1, 50, 50], 1);
        assert_eq!(functional.counters.n_mma(), modelled.counters.n_mma());
        assert_eq!(
            functional.counters.global_read_bytes,
            modelled.counters.global_read_bytes
        );
        assert_eq!(
            functional.counters.shared_bytes(),
            modelled.counters.shared_bytes()
        );
    }

    #[test]
    fn no_lut_costs_scalar_ops() {
        let k = StencilKernel::box2d9p();
        let base = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let no_lut = Options {
            flags: crate::plan::OptFlags {
                lut: false,
                double_buffer: true,
            },
            ..base.clone()
        };
        let p1 = compile::<f32>(&k, [1, 50, 50], &base).unwrap();
        let p2 = compile::<f32>(&k, [1, 50, 50], &no_lut).unwrap();
        let g = Grid::<f32>::smooth_random(2, [1, 50, 50]);
        let (_, s1) = run(&p1, &g, 1);
        let (_, s2) = run(&p2, &g, 1);
        assert_eq!(s1.counters.ffma_count, 0);
        assert!(s2.counters.ffma_count > 0);
    }

    #[test]
    fn double_buffer_reduces_modelled_time() {
        let k = StencilKernel::box2d49p();
        let db = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let no_db = Options {
            flags: crate::plan::OptFlags {
                lut: true,
                double_buffer: false,
            },
            ..db.clone()
        };
        let p1 = compile::<f32>(&k, [1, 70, 70], &db).unwrap();
        let p2 = compile::<f32>(&k, [1, 70, 70], &no_db).unwrap();
        let g = Grid::<f32>::smooth_random(2, [1, 70, 70]);
        let (_, s1) = run(&p1, &g, 1);
        let (_, s2) = run(&p2, &g, 1);
        assert!(s1.total_seconds < s2.total_seconds);
    }

    #[test]
    fn staged_claims_never_split_sliding_runs() {
        // The executor dispatches the guided scheduler over *runs* (claim
        // granularity = run_len work items, min_chunk = 1 run), so a
        // z-sliding run can never be split across lanes: every work item
        // whose reuse descriptor is nonzero is processed, immediately
        // after its predecessor, by the lane that staged that
        // predecessor's window. Reproduce the dispatch and check the
        // per-lane item sequences directly.
        let k = StencilKernel::box3d27p();
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let plan = compile::<f32>(&k, [12, 28, 36], &opts).unwrap();
        let t = &plan.exec;
        let ss = &t.stage;
        let n_runs = t.work.len() / ss.run_len;
        assert!(n_runs > 4, "needs several runs to contend over");

        for lanes in [1usize, 2, 5] {
            let mut slots: Vec<Vec<usize>> = vec![Vec::new(); lanes];
            rayon::pool::parallel_for_slots_guided(n_runs, 1, &mut slots, |_, slot, runs| {
                slot.extend(runs.start * ss.run_len..runs.end * ss.run_len);
            });
            let mut seen = vec![false; t.work.len()];
            for items in &slots {
                for (j, &wi) in items.iter().enumerate() {
                    assert!(!seen[wi], "work item {wi} claimed twice");
                    seen[wi] = true;
                    if ss.overlap[wi] > 0 {
                        assert_eq!(
                            j.checked_sub(1).and_then(|p| items.get(p)),
                            Some(&(wi - 1)),
                            "lanes={lanes}: item {wi} reuses a window its own \
                             lane must have just staged"
                        );
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "lanes={lanes}: full coverage");
        }
    }

    #[test]
    fn phase_profile_accounts_for_the_step() {
        let k = StencilKernel::box3d27p();
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let plan = compile::<f32>(&k, [10, 22, 22], &opts).unwrap();
        let input = Grid::<f32>::smooth_random(3, [10, 22, 22]);
        let p = profile_phases(&plan, &input, 2);
        assert_eq!(p.iters, 2);
        assert!(p.stage_seconds > 0.0, "staging does measurable work");
        assert!(p.mma_seconds > 0.0, "MMA does measurable work");
        assert!(p.scatter_seconds > 0.0);
        assert!(p.wall_seconds > 0.0);
        // Single-lane phases are disjoint sub-intervals of the wall.
        assert!(
            p.stage_seconds + p.mma_seconds + p.scatter_seconds + p.mirror_seconds
                <= p.wall_seconds * 1.05
        );
    }

    #[test]
    #[should_panic(expected = "differs from the compiled plan")]
    fn wrong_grid_shape_panics() {
        let k = StencilKernel::heat2d();
        let plan = compile::<f32>(&k, [1, 40, 40], &Options::default()).unwrap();
        let g = Grid::<f32>::smooth_random(2, [1, 30, 30]);
        let _ = run(&plan, &g, 1);
    }
}

#[cfg(test)]
mod multi_strip_tests {
    use super::*;
    use crate::plan::{compile, Options};
    use crate::stencil::StencilKernel;
    use sparstencil_mat::half::verify_tolerance;
    use sparstencil_tcu::FragmentShape;

    /// m' = 32 → two fragment m-strips: exercises the strip loop that the
    /// default m' = 16 layouts never touch.
    #[test]
    fn two_m_strips_verify() {
        let k = StencilKernel::box2d9p();
        let shape = [1, 52, 68];
        let opts = Options {
            layout: Some((8, 4)), // m' = 32
            ..Options::default()
        };
        let plan = compile::<f32>(&k, shape, &opts).unwrap();
        assert_eq!(plan.geom.m_padded / plan.frag.m, 2, "expected 2 m-strips");
        let g = Grid::<f32>::smooth_random(2, shape);
        let (got, stats) = run(&plan, &g, 1);
        assert_eq!(stats.counters.n_mma(), plan.geom.n_mma);

        let mut ref_in = Grid::<f64>::from_fn_3d(2, shape, |z, y, x| got.get(z, y, x) as f64);
        // Cheap self-check: re-run and compare (determinism), then verify
        // against the reference via the pipeline helper.
        let (again, _) = run(&plan, &g, 1);
        assert_eq!(got, again, "execution must be deterministic");
        ref_in.quantize(plan.precision);
        let exec = crate::pipeline::Executor::<f32>::new(&k, shape, &opts).unwrap();
        let err = exec.verify(&g, 1);
        assert!(err <= verify_tolerance(plan.precision), "err {err}");
    }

    /// Non-default sparse fragment (m16n16k16 class) end to end.
    #[test]
    fn alternate_sparse_fragment_verifies() {
        let k = StencilKernel::heat2d();
        let shape = [1, 50, 50];
        let opts = Options {
            frag: Some(FragmentShape::sparse_m16n16k16()),
            layout: Some((4, 4)),
            ..Options::default()
        };
        let exec = crate::pipeline::Executor::<f32>::new(&k, shape, &opts).unwrap();
        let g = Grid::<f32>::smooth_random(2, shape);
        let err = exec.verify(&g, 1);
        assert!(
            err <= verify_tolerance(sparstencil_mat::half::Precision::Fp16),
            "err {err}"
        );
    }

    /// Wide-n fragment (m16n32k8 dense class) on the dense path.
    #[test]
    fn wide_n_dense_fragment_verifies() {
        let k = StencilKernel::box2d9p();
        let shape = [1, 44, 60];
        let opts = Options {
            frag: Some(FragmentShape::m16n32k8()),
            mode: crate::layout::ExecMode::DenseTcu,
            layout: Some((4, 4)),
            ..Options::default()
        };
        let exec = crate::pipeline::Executor::<f32>::new(&k, shape, &opts).unwrap();
        let g = Grid::<f32>::smooth_random(2, shape);
        let err = exec.verify(&g, 1);
        assert!(
            err <= verify_tolerance(sparstencil_mat::half::Precision::Fp16),
            "err {err}"
        );
    }
}
