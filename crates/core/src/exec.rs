//! Plan execution on the simulated GPU.
//!
//! Executes a [`CompiledStencil`] functionally — every fragment MMA the
//! generated kernel would issue is issued against the simulator, with
//! `B` operands gathered through the lookup table exactly as the CUDA
//! kernel's async-copy stage would — while the engine accumulates exact
//! activity counters. Timing is then derived from the counters through
//! the analytic model (with or without double-buffer overlap, per the
//! plan's [`OptFlags`]); GStencil/s follows Equation 12.
//!
//! The numeric path is deliberately the *same arithmetic* as the
//! hardware: operands pre-rounded to the plan's precision, accumulation
//! at full scalar width, outputs re-rounded on store.
//!
//! # Execution engine: buffer ownership and scratch lifecycle
//!
//! [`run`] mirrors the discipline of the generated kernels — all
//! bookkeeping hoisted to plan time, all buffers allocated once:
//!
//! - **Ping-pong double buffering.** A [`StepBuffers`] arena owns two
//!   persistent grids. `cur` is cloned from the caller's input (and
//!   quantized) once per run; `next` is cloned from `cur` once, which
//!   copies the boundary cells that no step ever rewrites. Each step
//!   computes the valid region of `next` from `cur` and the buffers
//!   swap — the per-step full-grid `clone()` of the naive path is gone.
//!   Every valid cell is overwritten every step (tiles tile the valid
//!   region exactly), so stale interior values from two steps ago are
//!   never observable.
//! - **Plan-time gather/scatter tables.** Tile origins, base offsets,
//!   interior/edge and full/partial classification
//!   ([`crate::plan::TileDesc`]), the per-step work list, the gather LUT
//!   with padding rows removed, per-row scatter offsets, and the
//!   operands compiled to full-depth nonzero row programs
//!   ([`sparstencil_tcu::fragment::RowProgram`], k-strips concatenated
//!   in accumulation order) all live in [`crate::plan::ExecTables`],
//!   built once by `compile`. The hot loop only indexes — no division,
//!   no metadata decode, no zero tests, no per-k-strip bookkeeping.
//! - **Per-worker scratch.** Each pool worker owns a `WorkerScratch`
//!   with one full-depth `B` staging buffer and one accumulator per
//!   m-strip, allocated at run start and reused across slices, tiles,
//!   and steps. The staging buffer keeps the invariant "padding rows
//!   are zero" across steps without rewriting them: interior gathers
//!   touch only non-padding rows, edge gathers rewrite their full
//!   column (zeros included).
//! - **Parallel direct scatter.** Each work item writes its results
//!   straight into the shared output grid. Tiles partition the valid
//!   region and each tile belongs to exactly one work item, so all
//!   writes are disjoint; `SharedOutput` encapsulates the aliasing
//!   argument.
//!
//! After the first iteration warms the buffers, a step performs **zero
//! heap allocations** (asserted by `tests/alloc_steady_state.rs`).
//! Counter totals are closed-form from plan geometry (`work × m-strips ×
//! k-strips` MMAs), identical to what per-op counting in the naive path
//! produces. [`run_naive`] retains the original implementation as the
//! equivalence oracle: `tests/exec_equivalence.rs` pins bit-identical
//! grids and identical counters between the two.

use crate::grid::Grid;
use crate::layout::{self, ExecMode};
use crate::plan::{CompiledStencil, Operand, PrepStats};
use rayon::prelude::*;
use sparstencil_mat::half::Precision;
use sparstencil_mat::{DenseMatrix, Real};
use sparstencil_tcu::{
    fragment::dense_fragment_mma, model, sparse::sparse_fragment_mma, Counters, Engine,
    TimingBreakdown, UtilizationReport,
};

/// Statistics of one simulated run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Iterations executed.
    pub iters: usize,
    /// Exact activity counters over the whole run.
    pub counters: Counters,
    /// Modelled timing over the whole run (overlap per plan flags).
    pub timing: TimingBreakdown,
    /// Modelled seconds per iteration.
    pub seconds_per_iter: f64,
    /// Modelled total seconds.
    pub total_seconds: f64,
    /// Stencil points updated per iteration (valid outputs).
    pub points_per_iter: u64,
    /// GStencil/s (Equation 12) over the modelled time.
    pub gstencil_per_sec: f64,
    /// Useful GFlop/s (Table 3 metric).
    pub gflops_per_sec: f64,
    /// Achieved occupancy.
    pub occupancy: f64,
    /// Figure-11 utilization metrics.
    pub utilization: UtilizationReport,
    /// Host preprocessing times (copied from the plan).
    pub prep: PrepStats,
}

/// Execute `iters` stencil steps of a compiled plan over `input`.
/// Returns the final grid and run statistics.
///
/// This is the optimized engine: ping-pong buffers, plan-time gather
/// tables, persistent per-worker scratch, parallel direct scatter (see
/// the module docs). Bit-identical to [`run_naive`].
///
/// # Panics
/// Panics if the input shape differs from the plan's compile-time shape.
pub fn run<R: Real>(
    plan: &CompiledStencil<R>,
    input: &Grid<R>,
    iters: usize,
) -> (Grid<R>, RunStats) {
    assert_eq!(
        input.shape(),
        plan.grid_shape,
        "grid shape differs from the compiled plan"
    );
    let mut engine = Engine::new(plan.gpu.clone(), plan.precision);
    let mut bufs = StepBuffers::new(plan, input);

    for _ in 0..iters {
        engine.launch();
        account_traffic(plan, &mut engine);
        // Output quantization happens inside the scatter (each value is
        // rounded as it is stored, exactly like the hardware's store
        // path), so no separate whole-grid re-quantization pass runs:
        // boundary cells were quantized once when the arena was built
        // and never change.
        step_into(
            plan,
            &bufs.cur,
            &mut bufs.next,
            &mut bufs.scratch,
            &mut engine,
        );
        std::mem::swap(&mut bufs.cur, &mut bufs.next);
    }

    let stats = finalize_stats(plan, &engine, iters);
    (bufs.cur, stats)
}

/// Per-worker reusable scratch: one `B` staging buffer spanning the full
/// logical operand depth plus one accumulator fragment per m-strip.
/// Allocated once per run, reused across slices, tiles, and steps.
///
/// Invariant: padding rows of `b_all` stay zero for the buffer's whole
/// lifetime — they are zeroed at construction, interior gathers only
/// write non-padding rows, and edge gathers rewrite whole columns
/// (writing explicit zeros for padding rows).
struct WorkerScratch<R: Real> {
    b_all: DenseMatrix<R>,
    strips: Vec<DenseMatrix<R>>,
}

/// The persistent execution arena of one [`run`]: the two ping-pong
/// grids and the per-worker scratch pool. Everything a step touches is
/// allocated here, up front.
struct StepBuffers<R: Real> {
    cur: Grid<R>,
    next: Grid<R>,
    scratch: Vec<WorkerScratch<R>>,
}

impl<R: Real> StepBuffers<R> {
    fn new(plan: &CompiledStencil<R>, input: &Grid<R>) -> Self {
        let mut cur = input.clone();
        cur.quantize(plan.precision);
        // One clone copies the boundary cells into the second buffer;
        // steps rewrite every valid cell, so the boundary never needs
        // copying again.
        let next = cur.clone();
        let frag = plan.frag;
        let scratch = (0..rayon::current_num_threads())
            .map(|_| WorkerScratch {
                b_all: DenseMatrix::zeros(plan.geom.k_logical, frag.n),
                strips: (0..plan.exec.m_strips)
                    .map(|_| DenseMatrix::zeros(frag.m, frag.n))
                    .collect(),
            })
            .collect();
        Self { cur, next, scratch }
    }
}

/// Shared output buffer for the parallel direct scatter.
///
/// Safety argument: the valid output region is exactly tiled by the
/// plan's tiles; every tile belongs to exactly one `(plane, column
/// block)` work item, and the work list is partitioned across pool
/// tasks. Each cell index passed to `write` is therefore touched by at
/// most one task per step.
struct SharedOutput<R> {
    ptr: *mut R,
    len: usize,
}

// SAFETY: see the struct docs — all concurrent writes target disjoint
// indices.
unsafe impl<R: Send> Sync for SharedOutput<R> {}

impl<R: Real> SharedOutput<R> {
    /// Write one output cell.
    ///
    /// # Safety
    /// `idx < len`, and no other task writes `idx` during this step.
    #[inline]
    unsafe fn write(&self, idx: usize, v: R) {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) = v }
    }
}

/// One optimized stencil step: compute the valid region of `out` from
/// `cur`. Boundary cells of `out` are expected to already hold the (old,
/// never-changing) boundary values.
fn step_into<R: Real>(
    plan: &CompiledStencil<R>,
    cur: &Grid<R>,
    out: &mut Grid<R>,
    scratch: &mut [WorkerScratch<R>],
    engine: &mut Engine,
) {
    let t = &plan.exec;
    let plane_stride = cur.plane_stride();
    let frag = plan.frag;
    let m_prime = plan.plan.m_prime();
    let tiles_per_plane = plan.geom.tiles_per_plane;
    let precision = plan.precision;
    let data = cur.as_slice();
    let out_slice = out.as_mut_slice();
    let shared_out = SharedOutput {
        ptr: out_slice.as_mut_ptr(),
        len: out_slice.len(),
    };

    rayon::pool::parallel_for_slots(t.work.len(), scratch, |_slot, ws, range| {
        for wi in range {
            let (z, cb) = t.work[wi];
            let first_tile = cb * frag.n;
            let tiles_in_block = frag.n.min(tiles_per_plane - first_tile);
            let block_tiles = &t.tiles[first_tile..first_tile + tiles_in_block];
            let out_plane = z * plane_stride;

            for c_frag in &mut ws.strips {
                c_frag.fill(R::ZERO);
            }

            for (si, slice) in plan.slices.iter().enumerate() {
                let src_plane = (z + slice.dz) * plane_stride;
                let b_all = &mut ws.b_all;
                if t.block_interior[cb] {
                    // Branch-free interior gather: for every non-padding
                    // operand row, one strided load per tile into a
                    // contiguous b_all row segment.
                    for &(i, off) in &t.gather_rows {
                        let row = &mut b_all.row_mut(i)[..tiles_in_block];
                        for (dst, td) in row.iter_mut().zip(block_tiles) {
                            let idx = src_plane + td.base + off;
                            // SAFETY: `ExecTables::build` validated
                            // every (interior tile, LUT offset)
                            // combination against the grid length.
                            debug_assert!(idx < data.len());
                            *dst = unsafe { *data.get_unchecked(idx) };
                        }
                    }
                } else {
                    gather_mixed(plan, block_tiles, data, src_plane, b_all);
                }
                // Columns past `tiles_in_block` (and columns of tiles
                // past the plane) may hold stale data; the MMA computes
                // per-column results independently and the scatter
                // below never reads those columns.
                for (mi, c_frag) in ws.strips.iter_mut().enumerate() {
                    program_mma_hot(&t.programs[si][mi], b_all, c_frag, frag);
                }
            }

            // Direct scatter: this work item owns every output cell of
            // its tiles. Per accumulator row, the source values are one
            // contiguous c_frag row; the branch-free path needs no
            // per-cell validity checks.
            let block_full = t.block_full[cb];
            for (mi, c_frag) in ws.strips.iter().enumerate() {
                let row0 = mi * frag.m;
                let rows = frag.m.min(m_prime.saturating_sub(row0));
                for fr in 0..rows {
                    let sr = &t.scatter_rows[row0 + fr];
                    let c_row = &c_frag.row(fr)[..tiles_in_block];
                    if block_full {
                        for (&v, td) in c_row.iter().zip(block_tiles) {
                            // SAFETY: disjointness per the SharedOutput
                            // docs; full tiles index cell
                            // (z, oy+j2, ox+j1) which is in range.
                            unsafe {
                                shared_out
                                    .write(out_plane + td.base + sr.off, v.round_to(precision));
                            }
                        }
                    } else {
                        for (&v, td) in c_row.iter().zip(block_tiles) {
                            if td.full || (td.oy + sr.j2 < t.vy && td.ox + sr.j1 < t.vx) {
                                // SAFETY: as above; the bounds check
                                // guards partial tiles.
                                unsafe {
                                    shared_out
                                        .write(out_plane + td.base + sr.off, v.round_to(precision));
                                }
                            }
                        }
                    }
                }
            }
        }
    });

    let total_mma = (t.work.len() * t.k_strips * t.m_strips * plan.slices.len()) as u64;
    engine.record_mma_bulk(frag, matches!(plan.mode, ExecMode::SparseTcu), total_mma);
}

/// The executor's MMA inner loop: identical arithmetic (and accumulation
/// order) to [`sparstencil_tcu::fragment::program_mma`], with the `B`
/// row slicing unchecked — entry
/// indices were validated against the program depth when it was
/// compiled, and the scratch `B` buffer is allocated at exactly
/// `depth × frag.n`.
fn program_mma_hot<R: Real>(
    prog: &sparstencil_tcu::fragment::RowProgram<R>,
    b_all: &DenseMatrix<R>,
    c_frag: &mut DenseMatrix<R>,
    frag: sparstencil_tcu::FragmentShape,
) {
    debug_assert_eq!(b_all.shape(), (prog.depth(), frag.n));
    debug_assert_eq!(c_frag.shape(), (frag.m, frag.n));
    let n = frag.n;
    let b_data = b_all.as_slice();
    for i in 0..prog.rows() {
        let c_row = &mut c_frag.row_mut(i)[..n];
        for &(kk, v) in prog.row(i) {
            let start = kk as usize * n;
            // SAFETY: kk < prog.depth() by construction, so the
            // row [start, start + n) lies inside the depth×n buffer.
            debug_assert!(start + n <= b_data.len());
            let b_row = unsafe { b_data.get_unchecked(start..start + n) };
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj += v * bj;
            }
        }
    }
}

/// Gather for blocks containing edge tiles: interior tiles copy through
/// the LUT row-wise (per-tile branch, but uniform per column so well
/// predicted), edge tiles resolve explicit coordinates with bounds
/// checks (out-of-range and padding rows read as zero).
fn gather_mixed<R: Real>(
    plan: &CompiledStencil<R>,
    block_tiles: &[crate::plan::TileDesc],
    data: &[R],
    src_plane: usize,
    b_all: &mut DenseMatrix<R>,
) {
    let t = &plan.exec;
    let [_, ny, nx] = plan.grid_shape;
    let plane_stride = ny * nx;
    let nblk = block_tiles.len();
    for &(i, off) in &t.gather_rows {
        let row = &mut b_all.row_mut(i)[..nblk];
        for (dst, td) in row.iter_mut().zip(block_tiles) {
            if td.interior {
                let idx = src_plane + td.base + off;
                // SAFETY: `ExecTables::build` validated every (interior
                // tile, LUT offset) combination against the grid length.
                debug_assert!(idx < data.len());
                *dst = unsafe { *data.get_unchecked(idx) };
            }
        }
    }
    for (tcol, td) in block_tiles.iter().enumerate() {
        if td.interior {
            continue;
        }
        for (i, &(dz, iy, ix)) in plan.gather_coords.iter().enumerate() {
            let v = if dz == u32::MAX {
                R::ZERO
            } else {
                let (dz, iy, ix) = (dz as usize, iy as usize, ix as usize);
                if td.oy + iy < ny && td.ox + ix < nx {
                    data[src_plane + dz * plane_stride + (td.oy + iy) * nx + td.ox + ix]
                } else {
                    R::ZERO
                }
            };
            b_all.set(i, tcol, v);
        }
    }
}

/// Bulk-account the per-iteration memory traffic using the same formulas
/// the layout explorer evaluates (keeping "analytic == counted" exact).
fn account_traffic<R: Real>(plan: &CompiledStencil<R>, engine: &mut Engine) {
    let tr = layout::traffic(
        &plan.kernel,
        plan.grid_shape,
        &plan.geom,
        plan.frag,
        plan.precision,
        plan.flags.lut,
    );
    let hit_fraction = if tr.global_read > 0 {
        tr.l2_hit as f64 / tr.global_read as f64
    } else {
        0.0
    };
    engine.read_global(tr.global_read, hit_fraction.clamp(0.0, 1.0));
    engine.write_global(tr.global_write);
    engine.smem_write(tr.shared_write);
    engine.smem_read(tr.shared_read);

    if !plan.flags.lut {
        // Without lookup tables every gathered element pays address
        // arithmetic (integer div/mod chains, ~4 scalar ops each — §3.3).
        let touches =
            (plan.geom.tiles_per_plane * plan.geom.planes) as u64 * plan.geom.k_prime as u64;
        engine.ffma(touches * 4);
    }
}

/// Execute `iters` steps through the retained pre-refactor path: clone
/// the grid per step, allocate per-work-item scratch, collect results
/// and scatter serially, count every MMA as it is issued.
///
/// Kept as the equivalence oracle for [`run`] (bit-identical grids,
/// identical counters — `tests/exec_equivalence.rs`) and as the baseline
/// the `simulator_throughput` bench measures the rewrite against.
///
/// # Panics
/// Panics if the input shape differs from the plan's compile-time shape.
pub fn run_naive<R: Real>(
    plan: &CompiledStencil<R>,
    input: &Grid<R>,
    iters: usize,
) -> (Grid<R>, RunStats) {
    assert_eq!(
        input.shape(),
        plan.grid_shape,
        "grid shape differs from the compiled plan"
    );
    let mut engine = Engine::new(plan.gpu.clone(), plan.precision);

    let mut cur = input.clone();
    cur.quantize(plan.precision);

    for _ in 0..iters {
        engine.launch();
        account_traffic(plan, &mut engine);
        cur = step_naive(plan, &cur, &mut engine);
        if !matches!(plan.precision, Precision::Fp64) {
            cur.quantize(plan.precision);
        }
    }

    let stats = finalize_stats(plan, &engine, iters);
    (cur, stats)
}

/// One naive stencil step: returns the new grid (valid region updated,
/// boundary copied) and adds the issued MMA ops to the engine.
fn step_naive<R: Real>(plan: &CompiledStencil<R>, cur: &Grid<R>, engine: &mut Engine) -> Grid<R> {
    let [_, ny, nx] = cur.shape();
    let [_ez, ey, ex] = plan.kernel.extent();
    let (vy, vx) = (ny - ey + 1, nx - ex + 1);
    let (r1, r2) = (plan.plan.r1, plan.plan.r2);
    let tiles_x = vx.div_ceil(r1);
    let tiles_y = vy.div_ceil(r2);
    let tiles_per_plane = tiles_x * tiles_y;
    let frag = plan.frag;
    let col_blocks = tiles_per_plane.div_ceil(frag.n);
    let planes = plan.geom.planes;
    let plane_stride = cur.plane_stride();

    let mut out = cur.clone();

    // Work item = (output plane, fragment column block).
    let work: Vec<(usize, usize)> = (0..planes)
        .flat_map(|z| (0..col_blocks).map(move |cb| (z, cb)))
        .collect();

    struct BlockResult<R: Real> {
        z: usize,
        first_tile: usize,
        strips: Vec<DenseMatrix<R>>, // per m-strip: frag.m × frag.n
        mma_ops: u64,
    }

    let results: Vec<BlockResult<R>> = work
        .par_iter()
        .map(|&(z, cb)| {
            let first_tile = cb * frag.n;
            let m_strips = plan.geom.m_padded / frag.m;
            let k_strips = plan.geom.k_logical / frag.k;
            let mut strips: Vec<DenseMatrix<R>> = (0..m_strips)
                .map(|_| DenseMatrix::zeros(frag.m, frag.n))
                .collect();
            let mut mma_ops = 0u64;
            let mut b_frag = DenseMatrix::<R>::zeros(frag.k, frag.n);

            for slice in &plan.slices {
                // z-folded operands: gather offsets already include the
                // depth term `dz·plane_stride`; `slice.dz` is 0.
                let src_plane = z + slice.dz;
                let plane_base = src_plane * plane_stride;
                let data = cur.as_slice();
                for ki in 0..k_strips {
                    // Gather the B fragment for this k-strip: one column
                    // per tile, rows via the lookup table.
                    for t in 0..frag.n {
                        let tile = first_tile + t;
                        if tile >= tiles_per_plane {
                            for i in 0..frag.k {
                                b_frag.set(i, t, R::ZERO);
                            }
                            continue;
                        }
                        let (oy, ox) = plan.plan.tile_origin(tile, tiles_x);
                        let interior = oy + plan.plan.gy <= ny && ox + plan.plan.gx <= nx;
                        let base = plane_base + oy * nx + ox;
                        if interior {
                            for i in 0..frag.k {
                                let off = plan.gather_lut[ki * frag.k + i];
                                let v = if off < 0 {
                                    R::ZERO
                                } else {
                                    data[base + off as usize]
                                };
                                b_frag.set(i, t, v);
                            }
                        } else {
                            // Edge tile: the linear offset is ambiguous
                            // past the grid boundary; use the explicit
                            // (dz, iy, ix) coordinates with bounds checks
                            // (dz is always in range: z + dz < nz by
                            // construction).
                            for i in 0..frag.k {
                                let (dz, iy, ix) = plan.gather_coords[ki * frag.k + i];
                                let v = if dz == u32::MAX {
                                    R::ZERO
                                } else {
                                    let (dz, iy, ix) = (dz as usize, iy as usize, ix as usize);
                                    if oy + iy < ny && ox + ix < nx {
                                        data[plane_base
                                            + dz * plane_stride
                                            + (oy + iy) * nx
                                            + ox
                                            + ix]
                                    } else {
                                        R::ZERO
                                    }
                                };
                                b_frag.set(i, t, v);
                            }
                        }
                    }
                    for (mi, c_frag) in strips.iter_mut().enumerate() {
                        match &slice.strips[mi][ki] {
                            Operand::Sparse(a24) => sparse_fragment_mma(frag, a24, &b_frag, c_frag),
                            Operand::Dense(a) => dense_fragment_mma(frag, a, &b_frag, c_frag),
                        }
                        mma_ops += 1;
                    }
                }
            }
            BlockResult {
                z,
                first_tile,
                strips,
                mma_ops,
            }
        })
        .collect();

    // Scatter results and absorb op counts.
    let mut total_mma = 0u64;
    for br in results {
        total_mma += br.mma_ops;
        let out_plane_base = br.z * plane_stride;
        for t in 0..frag.n {
            let tile = br.first_tile + t;
            if tile >= tiles_per_plane {
                continue;
            }
            let (oy, ox) = plan.plan.tile_origin(tile, tiles_x);
            for (mi, c_frag) in br.strips.iter().enumerate() {
                for fr in 0..frag.m {
                    let row = mi * frag.m + fr;
                    if row >= plan.plan.m_prime() {
                        break;
                    }
                    let (j2, j1) = (row / r1, row % r1);
                    let (y, x) = (oy + j2, ox + j1);
                    if y < vy && x < vx {
                        out.as_mut_slice()[out_plane_base + y * nx + x] = c_frag.get(fr, t);
                    }
                }
            }
        }
    }

    match plan.mode {
        ExecMode::SparseTcu => engine.counters.sparse_mma_count += total_mma,
        ExecMode::DenseTcu => engine.counters.dense_mma_count += total_mma,
    }
    engine.counters.tc_executed_flops += total_mma * frag.executed_flops();

    out
}

fn finalize_stats<R: Real>(plan: &CompiledStencil<R>, engine: &Engine, iters: usize) -> RunStats {
    let timing = engine.timing();
    // Overlap policy: double buffering gives max(compute, memory);
    // without it stages serialize.
    let total_seconds = if plan.flags.double_buffer {
        timing.total
    } else {
        timing.t_compute() + timing.t_memory() + timing.t_launch
    };
    let [ez, ey, ex] = plan.kernel.extent();
    let [nz, ny, nx] = plan.grid_shape;
    let points_per_iter = ((nz - ez + 1) * (ny - ey + 1) * (nx - ex + 1)) as u64;
    let occupancy = plan.occupancy();
    let utilization = model::utilization(&plan.gpu, &engine.counters, &timing, occupancy);
    let seconds_per_iter = if iters > 0 {
        total_seconds / iters as f64
    } else {
        0.0
    };
    RunStats {
        iters,
        counters: engine.counters,
        timing,
        seconds_per_iter,
        total_seconds,
        points_per_iter,
        gstencil_per_sec: if total_seconds > 0.0 {
            model::gstencils_per_sec(points_per_iter, iters as u64, total_seconds)
        } else {
            0.0
        },
        gflops_per_sec: if total_seconds > 0.0 {
            model::gflops_per_sec(
                points_per_iter,
                plan.kernel.points() as u64,
                iters as u64,
                total_seconds,
            )
        } else {
            0.0
        },
        occupancy,
        utilization,
        prep: plan.prep,
    }
}

/// Analytically extrapolate a run to an arbitrary (paper-scale) problem
/// size without functional execution: evaluates the model at `grid_shape`
/// and returns modelled stats. Functional correctness is established at
/// test scale; this produces the benchmark numbers for Table-2-sized
/// problems.
pub fn model_run<R: Real>(
    plan: &CompiledStencil<R>,
    grid_shape: [usize; 3],
    iters: usize,
) -> RunStats {
    let mut geom = layout::geometry(
        &plan.kernel,
        grid_shape,
        plan.plan.r1,
        plan.plan.r2,
        plan.frag,
        plan.mode,
    );
    // Pin to the compiled plan's actual converted width (grid-size
    // independent) so modelled counts match functional counts.
    layout::refine_geometry(&mut geom, plan.frag, plan.geom.k_logical, plan.geom.pads);
    let tr = layout::traffic(
        &plan.kernel,
        grid_shape,
        &geom,
        plan.frag,
        plan.precision,
        plan.flags.lut,
    );
    let mut counters = Counters::new();
    counters.kernel_launches = iters as u64;
    match plan.mode {
        ExecMode::SparseTcu => counters.sparse_mma_count = geom.n_mma * iters as u64,
        ExecMode::DenseTcu => counters.dense_mma_count = geom.n_mma * iters as u64,
    }
    counters.tc_executed_flops = geom.n_mma * plan.frag.executed_flops() * iters as u64;
    counters.global_read_bytes = tr.global_read * iters as u64;
    counters.global_write_bytes = tr.global_write * iters as u64;
    counters.l2_hit_bytes = tr.l2_hit * iters as u64;
    counters.shared_write_bytes = tr.shared_write * iters as u64;
    counters.shared_read_bytes = tr.shared_read * iters as u64;
    if !plan.flags.lut {
        let touches = (geom.tiles_per_plane * geom.planes) as u64 * geom.k_prime as u64;
        counters.ffma_count = touches * 4 * iters as u64;
    }

    let timing = model::kernel_time(&plan.gpu, &counters, plan.precision);
    let total_seconds = if plan.flags.double_buffer {
        timing.total
    } else {
        timing.t_compute() + timing.t_memory() + timing.t_launch
    };
    let [ez, ey, ex] = plan.kernel.extent();
    let points_per_iter =
        ((grid_shape[0] - ez + 1) * (grid_shape[1] - ey + 1) * (grid_shape[2] - ex + 1)) as u64;

    // Launch geometry scales with the grid (persistent-block cap).
    let col_blocks = geom.tiles_per_plane.div_ceil(plan.frag.n) * geom.planes;
    let launch = sparstencil_tcu::LaunchConfig {
        blocks: col_blocks
            .div_ceil(4)
            .min(layout::PERSISTENT_BLOCKS as usize),
        ..plan.launch
    };
    let occupancy = launch.occupancy(&plan.gpu);
    let utilization = model::utilization(&plan.gpu, &counters, &timing, occupancy);

    RunStats {
        iters,
        counters,
        timing,
        seconds_per_iter: if iters > 0 {
            total_seconds / iters as f64
        } else {
            0.0
        },
        total_seconds,
        points_per_iter,
        gstencil_per_sec: if total_seconds > 0.0 {
            model::gstencils_per_sec(points_per_iter, iters as u64, total_seconds)
        } else {
            0.0
        },
        gflops_per_sec: if total_seconds > 0.0 {
            model::gflops_per_sec(
                points_per_iter,
                plan.kernel.points() as u64,
                iters as u64,
                total_seconds,
            )
        } else {
            0.0
        },
        occupancy,
        utilization,
        prep: plan.prep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile, Options};
    use crate::reference;
    use crate::stencil::StencilKernel;
    use sparstencil_mat::half::verify_tolerance;

    fn check_kernel(k: &StencilKernel, shape: [usize; 3], opts: &Options, iters: usize) {
        let plan = compile::<f32>(k, shape, opts).unwrap();
        let input = Grid::<f32>::smooth_random(k.dims(), shape);
        let (got, stats) = run(&plan, &input, iters);

        let mut ref_in =
            Grid::<f64>::from_fn_3d(k.dims(), shape, |z, y, x| input.get(z, y, x) as f64);
        ref_in.quantize(plan.precision);
        let want = reference::iterate(k, &ref_in, iters);
        let got64 = Grid::<f64>::from_fn_3d(k.dims(), shape, |z, y, x| got.get(z, y, x) as f64);

        // Compare over the region that stays valid across `iters` steps.
        let reach = k.extent().map(|e| (e - 1) * iters + 1);
        let probe = StencilKernel::new(
            "probe",
            k.dims(),
            [
                if k.dims() == 3 { reach[0] } else { 1 },
                if k.dims() >= 2 { reach[1] } else { 1 },
                reach[2],
            ],
            vec![
                0.0;
                (if k.dims() == 3 { reach[0] } else { 1 })
                    * (if k.dims() >= 2 { reach[1] } else { 1 })
                    * reach[2]
            ],
        );
        let diff = got64.max_rel_diff_interior(&want, &probe);
        let tol = verify_tolerance(plan.precision) * iters as f64;
        assert!(
            diff <= tol,
            "{}: rel diff {diff:.3e} > tol {tol:.1e} (iters={iters})",
            k.name()
        );
        assert!(stats.counters.n_mma() > 0);
        assert!(stats.gstencil_per_sec > 0.0);
    }

    #[test]
    fn sparse_matches_reference_2d_kernels() {
        for k in [
            StencilKernel::heat2d(),
            StencilKernel::box2d9p(),
            StencilKernel::star2d13p(),
            StencilKernel::box2d49p(),
        ] {
            check_kernel(&k, [1, 48, 52], &Options::default(), 1);
        }
    }

    #[test]
    fn sparse_matches_reference_1d_kernels() {
        for k in [StencilKernel::heat1d(), StencilKernel::onedim5p()] {
            check_kernel(&k, [1, 1, 400], &Options::default(), 1);
        }
    }

    #[test]
    fn sparse_matches_reference_3d_kernels() {
        for k in [StencilKernel::heat3d(), StencilKernel::box3d27p()] {
            let opts = Options {
                layout: Some((4, 4)),
                ..Options::default()
            };
            check_kernel(&k, [12, 20, 20], &opts, 1);
        }
    }

    #[test]
    fn multiple_iterations_stay_accurate() {
        check_kernel(
            &StencilKernel::heat2d(),
            [1, 40, 40],
            &Options::default(),
            3,
        );
    }

    #[test]
    fn dense_mode_matches_reference() {
        let opts = Options {
            mode: crate::layout::ExecMode::DenseTcu,
            layout: Some((4, 4)),
            ..Options::default()
        };
        check_kernel(&StencilKernel::box2d9p(), [1, 40, 44], &opts, 1);
    }

    #[test]
    fn counted_mma_equals_equation9() {
        let k = StencilKernel::box2d49p();
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let plan = compile::<f32>(&k, [1, 70, 70], &opts).unwrap();
        let input = Grid::<f32>::smooth_random(2, [1, 70, 70]);
        let (_, stats) = run(&plan, &input, 2);
        assert_eq!(stats.counters.n_mma(), plan.geom.n_mma * 2);
    }

    #[test]
    fn model_run_matches_functional_counters() {
        let k = StencilKernel::box2d9p();
        let opts = Options {
            layout: Some((4, 2)),
            ..Options::default()
        };
        let plan = compile::<f32>(&k, [1, 50, 50], &opts).unwrap();
        let input = Grid::<f32>::smooth_random(2, [1, 50, 50]);
        let (_, functional) = run(&plan, &input, 1);
        let modelled = model_run(&plan, [1, 50, 50], 1);
        assert_eq!(functional.counters.n_mma(), modelled.counters.n_mma());
        assert_eq!(
            functional.counters.global_read_bytes,
            modelled.counters.global_read_bytes
        );
        assert_eq!(
            functional.counters.shared_bytes(),
            modelled.counters.shared_bytes()
        );
    }

    #[test]
    fn no_lut_costs_scalar_ops() {
        let k = StencilKernel::box2d9p();
        let base = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let no_lut = Options {
            flags: crate::plan::OptFlags {
                lut: false,
                double_buffer: true,
            },
            ..base.clone()
        };
        let p1 = compile::<f32>(&k, [1, 50, 50], &base).unwrap();
        let p2 = compile::<f32>(&k, [1, 50, 50], &no_lut).unwrap();
        let g = Grid::<f32>::smooth_random(2, [1, 50, 50]);
        let (_, s1) = run(&p1, &g, 1);
        let (_, s2) = run(&p2, &g, 1);
        assert_eq!(s1.counters.ffma_count, 0);
        assert!(s2.counters.ffma_count > 0);
    }

    #[test]
    fn double_buffer_reduces_modelled_time() {
        let k = StencilKernel::box2d49p();
        let db = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let no_db = Options {
            flags: crate::plan::OptFlags {
                lut: true,
                double_buffer: false,
            },
            ..db.clone()
        };
        let p1 = compile::<f32>(&k, [1, 70, 70], &db).unwrap();
        let p2 = compile::<f32>(&k, [1, 70, 70], &no_db).unwrap();
        let g = Grid::<f32>::smooth_random(2, [1, 70, 70]);
        let (_, s1) = run(&p1, &g, 1);
        let (_, s2) = run(&p2, &g, 1);
        assert!(s1.total_seconds < s2.total_seconds);
    }

    #[test]
    #[should_panic(expected = "differs from the compiled plan")]
    fn wrong_grid_shape_panics() {
        let k = StencilKernel::heat2d();
        let plan = compile::<f32>(&k, [1, 40, 40], &Options::default()).unwrap();
        let g = Grid::<f32>::smooth_random(2, [1, 30, 30]);
        let _ = run(&plan, &g, 1);
    }
}

#[cfg(test)]
mod multi_strip_tests {
    use super::*;
    use crate::plan::{compile, Options};
    use crate::stencil::StencilKernel;
    use sparstencil_mat::half::verify_tolerance;
    use sparstencil_tcu::FragmentShape;

    /// m' = 32 → two fragment m-strips: exercises the strip loop that the
    /// default m' = 16 layouts never touch.
    #[test]
    fn two_m_strips_verify() {
        let k = StencilKernel::box2d9p();
        let shape = [1, 52, 68];
        let opts = Options {
            layout: Some((8, 4)), // m' = 32
            ..Options::default()
        };
        let plan = compile::<f32>(&k, shape, &opts).unwrap();
        assert_eq!(plan.geom.m_padded / plan.frag.m, 2, "expected 2 m-strips");
        let g = Grid::<f32>::smooth_random(2, shape);
        let (got, stats) = run(&plan, &g, 1);
        assert_eq!(stats.counters.n_mma(), plan.geom.n_mma);

        let mut ref_in = Grid::<f64>::from_fn_3d(2, shape, |z, y, x| got.get(z, y, x) as f64);
        // Cheap self-check: re-run and compare (determinism), then verify
        // against the reference via the pipeline helper.
        let (again, _) = run(&plan, &g, 1);
        assert_eq!(got, again, "execution must be deterministic");
        ref_in.quantize(plan.precision);
        let exec = crate::pipeline::Executor::<f32>::new(&k, shape, &opts).unwrap();
        let err = exec.verify(&g, 1);
        assert!(err <= verify_tolerance(plan.precision), "err {err}");
    }

    /// Non-default sparse fragment (m16n16k16 class) end to end.
    #[test]
    fn alternate_sparse_fragment_verifies() {
        let k = StencilKernel::heat2d();
        let shape = [1, 50, 50];
        let opts = Options {
            frag: Some(FragmentShape::sparse_m16n16k16()),
            layout: Some((4, 4)),
            ..Options::default()
        };
        let exec = crate::pipeline::Executor::<f32>::new(&k, shape, &opts).unwrap();
        let g = Grid::<f32>::smooth_random(2, shape);
        let err = exec.verify(&g, 1);
        assert!(
            err <= verify_tolerance(sparstencil_mat::half::Precision::Fp16),
            "err {err}"
        );
    }

    /// Wide-n fragment (m16n32k8 dense class) on the dense path.
    #[test]
    fn wide_n_dense_fragment_verifies() {
        let k = StencilKernel::box2d9p();
        let shape = [1, 44, 60];
        let opts = Options {
            frag: Some(FragmentShape::m16n32k8()),
            mode: crate::layout::ExecMode::DenseTcu,
            layout: Some((4, 4)),
            ..Options::default()
        };
        let exec = crate::pipeline::Executor::<f32>::new(&k, shape, &opts).unwrap();
        let g = Grid::<f32>::smooth_random(2, shape);
        let err = exec.verify(&g, 1);
        assert!(
            err <= verify_tolerance(sparstencil_mat::half::Precision::Fp16),
            "err {err}"
        );
    }
}
