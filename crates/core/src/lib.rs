//! # SparStencil — sparse-Tensor-Core stencil computation
//!
//! A Rust reproduction of *"SparStencil: Retargeting Sparse Tensor Cores
//! to Scientific Stencil Computations via Structured Sparsity
//! Transformation"* (SC '25). The system turns stencil computations into
//! 2:4-structured sparse matrix multiplications executable on (simulated)
//! sparse tensor cores, through three stages:
//!
//! 1. **Adaptive Layout Morphing** ([`flatten`], [`crush`]) — im2row-style
//!    flattening followed by Duplicates Crush, producing the self-similar
//!    k-staircase kernel matrix `A'` and an implicit, duplicate-free input
//!    operand `B'`.
//! 2. **Structured Sparsity Conversion** ([`convert`]) — a Permutation
//!    Invariant Transformation found by Hierarchical Two-Level Matching
//!    (Algorithm 1, with a Blossom exact fallback) that rearranges `A'`
//!    into a 2:4-compatible layout with minimal zero-padding.
//! 3. **Automatic Kernel Generation** ([`layout`], [`plan`], [`codegen`])
//!    — analytic layout exploration (Equations 6–11), 2:4 metadata
//!    encoding, lookup-table memory mapping, and CUDA source synthesis;
//!    execution happens on the `sparstencil-tcu` simulator ([`exec`]).
//!
//! # Execution
//!
//! The functional engine runs each step as a **two-phase staged-gather
//! pipeline** over a halo-padded domain: every work item first *stages*
//! its operand window — the union of in-plane cells its row programs
//! read, across the kernel's z-extent of source planes — into a
//! contiguous per-lane scratch ring, then the rebased row programs
//! *multiply* from that staged buffer by dense offset, the results
//! scatter directly into the shared output grid, and a per-step
//! boundary mirror restores the semantic edge band. The work list is
//! ordered into z-sliding runs so consecutive items reuse all but one
//! staged plane (see [`plan::StageSchedule`] and the [`exec`] module
//! docs for the ring diagram); steps are allocation-free after warm-up
//! and bit-identical to the retained naive oracle.
//!
//! Staging itself is shared across x-adjacent tiles: within a
//! fragment-column block, tile `t+1`'s gather window is tile `t`'s
//! shifted by one fragment row, so each plane is staged once per
//! (plane, tile-row) rather than once per tile — ranks with an
//! in-window partner take one fresh grid cell plus a pure in-scratch
//! shift copy of the partner's already-staged row (a memory move, no FP
//! ops, so bit-exactness holds), and only partnerless ranks pay the
//! full strided gather:
//!
//! ```text
//!  one staged plane, fragment-column block of tiles t0..t3
//!  (tile t+1's window base = tile t's + one fragment row r1):
//!
//!    Fresh rank:  grid ──strided loads──▶ [t0 t1 t2 t3]
//!    Shift rank:  grid ──▶ [t0] ; [t1 t2 t3] ◀──memcpy── partner's
//!                                              staged [t0 t1 t2]
//! ```
//!
//! The MMA phase dispatches at run time to register-blocked AVX2
//! kernels on supporting x86-64 CPUs ([`exec::simd`]); the scalar
//! blocked kernels remain the portable fallback and the oracle, and the
//! vector path is bit-identical to them (separate multiply and add —
//! never FMA — so every lane performs the scalar IEEE op sequence).
//!
//! The friendly entry point is [`pipeline::Executor`]; long-running
//! drivers open a persistent [`session::Simulation`] (which is `Send`,
//! so servers can hold one per client and step it on any thread) so
//! compilation and buffer setup are paid once, steps are incremental,
//! and the live field is observable between steps:
//!
//! ```
//! use sparstencil::prelude::*;
//!
//! let kernel = StencilKernel::box2d9p();
//! let shape = [1, 66, 66];
//! let exec = Executor::<f32>::new(&kernel, shape, &Options::default()).unwrap();
//! let input = Grid::<f32>::smooth_random(2, shape);
//!
//! let mut sim = exec.session(&input);
//! sim.step_n(2);
//! assert_eq!(sim.field().shape(), shape);
//! let stats = sim.stats().unwrap();
//! assert!(stats.gstencil_per_sec > 0.0);
//!
//! // One-shot convenience (a throwaway session under the hood):
//! let (output, _) = exec.run(&input, 2);
//! assert_eq!(output, sim.to_grid());
//! ```
//!
//! Planning is **adaptive**: [`pipeline::Executor::auto`] (over
//! [`plan::tune`]) picks tile shape and staging-window policy per
//! kernel from a plan-time cost model of the staged executor,
//! bit-verifies and measured-validates the choice against the
//! fixed-default plan, and reports the decision as a
//! [`plan::PlanChoice`] — tuning may change speed, never results. The
//! tuner's behavior across the full 79-kernel zoo
//! (`sparstencil-zoo`) is tracked in the committed `BENCH_zoo.json`
//! (written by the `bench_zoo` bin, gated in CI by
//! `bench_compare --zoo`).

#![warn(missing_docs)]

pub mod codegen;
pub mod convert;
pub mod crush;
pub mod exec;
pub mod flatten;
pub mod grid;
pub mod layout;
pub mod parse;
pub mod pipeline;
pub mod plan;
pub mod reference;
pub mod session;
pub mod stencil;

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use crate::convert::Strategy;
    pub use crate::exec::{LatencyHistogram, RunStats};
    pub use crate::grid::{FieldView, Grid};
    pub use crate::layout::ExecMode;
    pub use crate::pipeline::Executor;
    pub use crate::plan::{CompileError, OptFlags, Options};
    pub use crate::session::{
        Backend, Batch, Checkpoint, Health, HealthPolicy, SessionError, Simulation,
    };
    pub use crate::stencil::StencilKernel;
    pub use sparstencil_mat::half::Precision;
    pub use sparstencil_tcu::{FragmentShape, GpuConfig};
}

pub use grid::Grid;
pub use pipeline::Executor;
pub use plan::Options;
pub use session::Simulation;
pub use stencil::StencilKernel;
