//! Runtime-dispatched AVX2 MMA kernels for the staged executor.
//!
//! Explicit `std::arch` implementations of the R×N register-blocked
//! overwrite-first kernel (see the dispatch docs in [`super`]) for
//! `f32`/`f64` at the specialized fragment widths {8, 16, 32}. Each
//! kernel holds the full `MMA_BLOCK_ROWS × N` accumulator block in YMM
//! registers and walks the plan-compiled lockstep stream; per step it
//! broadcasts the entry value, multiplies against the staged `b_row`
//! vectors, and adds into the row's accumulators with **separate
//! multiply and add — never FMA**. A fused multiply-add would skip the
//! intermediate rounding of `v·b` and diverge from the scalar kernels
//! in the low bits; with the separate ops, every lane performs exactly
//! the scalar path's IEEE operation sequence, so the vector kernels are
//! bit-identical to the scalar fallback (and therefore to `run_naive`).
//!
//! Dispatch is decided at run time — `is_x86_feature_detected!("avx2")`
//! cached in a `OnceLock`, the scalar type via `TypeId` (the `Real`
//! bound carries `'static`; the comparison const-folds away under
//! monomorphization), the width by the same `match` the scalar path
//! uses — and hoisted to one decision per claimed run range. Compiling
//! without the `simd` feature (or for a non-x86_64 target) removes the
//! vector paths entirely and every call lands on the scalar blocked
//! kernels, which stay the portable fallback and the oracle.

use sparstencil_mat::half::Precision;
use sparstencil_mat::{DenseMatrix, Real};
use sparstencil_tcu::fragment::BlockedRowProgram;
use std::sync::atomic::{AtomicBool, Ordering};

/// Test hook: when set, [`avx2_active`] (the hot-path dispatch) and
/// [`kernel_path`] report the scalar path even on AVX2 hardware, so the
/// portable kernels can be exercised end-to-end without rebuilding.
/// Does not affect [`try_mma_avx2`] itself — the kernel-level tests
/// pin paths explicitly and must not race this flag.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Force (or release) scalar-kernel dispatch at run time. Test support
/// for exercising the portable fallback on AVX2 hardware; not intended
/// for production use.
#[doc(hidden)]
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Whether the AVX2 kernels exist in this build and the CPU supports
/// them (cached detection; ignores [`force_scalar`]).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) fn avx2_supported() -> bool {
    static DETECTED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DETECTED.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Scalar-only build (no `simd` feature or non-x86_64 target): the
/// vector paths do not exist.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
pub(crate) fn avx2_supported() -> bool {
    false
}

/// Which kernel path the engine's hot loop dispatches to on this
/// machine right now: `"avx2"` or `"scalar"`. Recorded in the bench
/// JSON (`simd` field) so committed numbers say which kernels produced
/// them.
pub fn kernel_path() -> &'static str {
    if avx2_supported() && !FORCE_SCALAR.load(Ordering::Relaxed) {
        "avx2"
    } else {
        "scalar"
    }
}

/// Whether scalar type `R` at fragment width `n` has a vector kernel
/// (type/width gate only — no CPU or feature check).
pub(crate) fn dispatchable<R: Real>(n: usize) -> bool {
    use std::any::TypeId;
    matches!(n, 8 | 16 | 32)
        && (TypeId::of::<R>() == TypeId::of::<f32>() || TypeId::of::<R>() == TypeId::of::<f64>())
}

/// The hot-path dispatch decision, hoisted to one call per claimed run
/// range by `exec_items`: vector kernels exist, the CPU has AVX2, the
/// (type, width) pair has a kernel, and the scalar override is off.
#[inline]
pub(crate) fn avx2_active<R: Real>(n: usize) -> bool {
    dispatchable::<R>(n) && avx2_supported() && !FORCE_SCALAR.load(Ordering::Relaxed)
}

/// Execute one blocked program through the AVX2 kernel for `(R, n)`,
/// returning `false` (without touching `c_frag`) when no vector kernel
/// applies — unsupported CPU/build, or a (type, width) pair without
/// one. Bit-identical to the scalar blocked kernel by the no-FMA
/// argument in the module docs.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) fn try_mma_avx2<R: Real>(
    prog: &BlockedRowProgram<R>,
    b_data: &[R],
    c_frag: &mut DenseMatrix<R>,
    n: usize,
) -> bool {
    use std::any::TypeId;
    if !avx2_supported() {
        return false;
    }
    if TypeId::of::<R>() == TypeId::of::<f32>() {
        // SAFETY: `R` *is* `f32` (TypeId equality on `'static` types),
        // so these reference casts are identity casts.
        let prog =
            unsafe { &*(prog as *const BlockedRowProgram<R>).cast::<BlockedRowProgram<f32>>() };
        let b = unsafe { std::slice::from_raw_parts(b_data.as_ptr().cast::<f32>(), b_data.len()) };
        let c = unsafe { &mut *(c_frag as *mut DenseMatrix<R>).cast::<DenseMatrix<f32>>() };
        // SAFETY: AVX2 availability checked above.
        match n {
            8 => unsafe { x86::f32_w8(prog, b, c) },
            16 => unsafe { x86::f32_w16(prog, b, c) },
            32 => unsafe { x86::f32_w32(prog, b, c) },
            _ => return false,
        }
        true
    } else if TypeId::of::<R>() == TypeId::of::<f64>() {
        // SAFETY: as above, with `R` = `f64`.
        let prog =
            unsafe { &*(prog as *const BlockedRowProgram<R>).cast::<BlockedRowProgram<f64>>() };
        let b = unsafe { std::slice::from_raw_parts(b_data.as_ptr().cast::<f64>(), b_data.len()) };
        let c = unsafe { &mut *(c_frag as *mut DenseMatrix<R>).cast::<DenseMatrix<f64>>() };
        // SAFETY: AVX2 availability checked above.
        match n {
            8 => unsafe { x86::f64_w8(prog, b, c) },
            16 => unsafe { x86::f64_w16(prog, b, c) },
            32 => unsafe { x86::f64_w32(prog, b, c) },
            _ => return false,
        }
        true
    } else {
        false
    }
}

/// Scalar-only build: no vector kernel ever applies.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
pub(crate) fn try_mma_avx2<R: Real>(
    _prog: &BlockedRowProgram<R>,
    _b_data: &[R],
    _c_frag: &mut DenseMatrix<R>,
    _n: usize,
) -> bool {
    false
}

/// Prefetch the cache line at `p` into all cache levels (T0 hint).
/// Prefetch is a hint, not an access — it never faults, so `p` may
/// point anywhere (the staging prefetcher runs off the end of the grid
/// at z-run boundaries). No-op on scalar builds.
#[inline(always)]
pub(crate) fn prefetch_t0<T>(p: *const T) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    // SAFETY: prefetch has no memory effects and never faults; SSE is
    // baseline on x86_64.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>())
    };
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = p;
}

/// Whether the scatter's store-rounding for scalar type `R` at
/// `precision` has a vector implementation (type/precision gate only —
/// no CPU or feature check). Only `f32` rows are covered: `Fp16` is the
/// integer round-to-nearest-even fast path vectorized, `Fp32`/`Fp64`
/// are the identity plus a vector health scan. `Bf16`/`Tf32` (and all
/// `f64` grids) keep the scalar per-element loop.
pub(crate) fn round_dispatchable<R: Real>(precision: Precision) -> bool {
    use std::any::TypeId;
    TypeId::of::<R>() == TypeId::of::<f32>()
        && matches!(
            precision,
            Precision::Fp16 | Precision::Fp32 | Precision::Fp64
        )
}

/// Round one fragment row through `precision`'s storage format —
/// bit-identical to per-element [`Real::round_to`] — writing the
/// rounded values to `dst` and returning `true` iff any rounded value
/// is non-finite (the scatter's health scan, folded into the same
/// pass).
///
/// Bit-exactness holds by construction: the vector fast path computes
/// the *same* integer round-to-nearest-even formula as
/// [`fp16_round`]'s fast path over the same exponent range
/// (`113..=141`), and any 8-lane group containing a lane outside that
/// range — zeros, f16 subnormals, overflow, NaNs — is deferred
/// wholesale to the scalar `fp16_round`. Non-finiteness is detected as
/// "rounded exponent field all-ones", which is exactly
/// `!f32::is_finite`.
///
/// Callers must have checked [`avx2_active`] (CPU + build gate) and
/// [`round_dispatchable`] (type + precision gate) first.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) fn round_finite_row<R: Real>(src: &[R], dst: &mut [R], precision: Precision) -> bool {
    debug_assert_eq!(src.len(), dst.len());
    // SAFETY: `R` *is* `f32` per the `round_dispatchable` contract
    // (TypeId equality on `'static` types), so these are identity
    // casts.
    let s = unsafe { std::slice::from_raw_parts(src.as_ptr().cast::<f32>(), src.len()) };
    let d = unsafe { std::slice::from_raw_parts_mut(dst.as_mut_ptr().cast::<f32>(), dst.len()) };
    // SAFETY: AVX2 availability is the `avx2_active` caller contract.
    match precision {
        Precision::Fp16 => unsafe { x86::round_fp16_finite_row(s, d) },
        _ => unsafe { x86::copy_finite_row(s, d) },
    }
}

/// Scalar-only build: plain per-element rounding (never reached by the
/// executor — `avx2_active` is `false` — but kept correct).
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
pub(crate) fn round_finite_row<R: Real>(src: &[R], dst: &mut [R], precision: Precision) -> bool {
    let mut nonfinite = false;
    for (d, &v) in dst.iter_mut().zip(src) {
        let r = v.round_to(precision);
        nonfinite |= !r.is_finite();
        *d = r;
    }
    nonfinite
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use super::BlockedRowProgram;
    use sparstencil_mat::DenseMatrix;
    use std::arch::x86_64::*;

    /// Generate one AVX2 R×N kernel: `$elem` scalar type, `$n` fragment
    /// width, `$lanes` vector lanes, and the matching load/store/
    /// broadcast/mul/add intrinsics. The kernel mirrors the scalar
    /// `mma_rows_blocked` exactly — step 0 stores, later steps
    /// accumulate with separate mul/add, ragged blocks fall back to the
    /// row-serial range kernel — only the lane loop is a vector op.
    macro_rules! avx2_kernel {
        ($name:ident, $elem:ty, $n:expr, $lanes:expr,
         $loadu:ident, $storeu:ident, $set1:ident, $mul:ident, $add:ident) => {
            /// # Safety
            /// The caller must ensure the CPU supports AVX2.
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $name(
                prog: &BlockedRowProgram<$elem>,
                b_data: &[$elem],
                c_frag: &mut DenseMatrix<$elem>,
            ) {
                const V: usize = $n / $lanes;
                const RB: usize = crate::exec::MMA_BLOCK_ROWS;
                debug_assert_eq!(prog.block_rows(), RB);
                let ls = prog.lockstep();
                let bp = b_data.as_ptr();
                for (bi, blk) in prog.blocks().iter().enumerate() {
                    let r0 = bi * RB;
                    let Some((start, steps)) = *blk else {
                        crate::exec::mma_rows_range::<$elem, $n>(
                            prog.base(),
                            r0..(r0 + RB).min(prog.rows()),
                            b_data,
                            c_frag,
                        );
                        continue;
                    };
                    let mut p = start as usize;
                    debug_assert!(p + steps as usize * RB <= ls.len());
                    debug_assert!(prog.depth() * $n <= b_data.len());
                    let mut acc = [[$set1(0.0); V]; RB];
                    // Step 0 stores (overwrite-first), steps 1..
                    // accumulate — mul then add, never fused, so each
                    // lane's IEEE sequence matches the scalar kernel.
                    for r in 0..RB {
                        // SAFETY: (start, steps) point at in-bounds
                        // lockstep entries by plan compilation; kk <
                        // prog.depth() bounds the operand row.
                        let (kk, v) = *ls.get_unchecked(p + r);
                        let row = bp.add(kk as usize * $n);
                        let vv = $set1(v);
                        for u in 0..V {
                            acc[r][u] = $mul(vv, $loadu(row.add(u * $lanes)));
                        }
                    }
                    p += RB;
                    for _ in 1..steps {
                        for r in 0..RB {
                            // SAFETY: as above.
                            let (kk, v) = *ls.get_unchecked(p + r);
                            let row = bp.add(kk as usize * $n);
                            let vv = $set1(v);
                            for u in 0..V {
                                acc[r][u] = $add(acc[r][u], $mul(vv, $loadu(row.add(u * $lanes))));
                            }
                        }
                        p += RB;
                    }
                    for r in 0..RB {
                        let out = c_frag.row_mut(r0 + r).as_mut_ptr();
                        for u in 0..V {
                            $storeu(out.add(u * $lanes), acc[r][u]);
                        }
                    }
                }
            }
        };
    }

    avx2_kernel!(
        f32_w8,
        f32,
        8,
        8,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        _mm256_set1_ps,
        _mm256_mul_ps,
        _mm256_add_ps
    );
    avx2_kernel!(
        f32_w16,
        f32,
        16,
        8,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        _mm256_set1_ps,
        _mm256_mul_ps,
        _mm256_add_ps
    );
    avx2_kernel!(
        f32_w32,
        f32,
        32,
        8,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        _mm256_set1_ps,
        _mm256_mul_ps,
        _mm256_add_ps
    );
    avx2_kernel!(
        f64_w8,
        f64,
        8,
        4,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_set1_pd,
        _mm256_mul_pd,
        _mm256_add_pd
    );
    avx2_kernel!(
        f64_w16,
        f64,
        16,
        4,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_set1_pd,
        _mm256_mul_pd,
        _mm256_add_pd
    );
    avx2_kernel!(
        f64_w32,
        f64,
        32,
        4,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_set1_pd,
        _mm256_mul_pd,
        _mm256_add_pd
    );

    /// Non-finite scan mask for one group of 8 rounded `f32` lanes:
    /// exponent field all-ones ⇔ Inf or NaN ⇔ `!is_finite`.
    #[inline]
    unsafe fn nonfinite_mask(r: __m256i) -> __m256i {
        let rexp = _mm256_and_si256(_mm256_srli_epi32::<23>(r), _mm256_set1_epi32(0xff));
        _mm256_cmpeq_epi32(rexp, _mm256_set1_epi32(0xff))
    }

    /// Vectorized `fp16_round` over a fragment row, plus the health
    /// scan, bit-identical to the scalar routine: the 8-lane fast path
    /// is the same integer RNE formula over the same exponent window
    /// (`113..=141`), and a group with any lane outside the window is
    /// deferred wholesale to scalar [`fp16_round`].
    ///
    /// # Safety
    /// The caller must ensure the CPU supports AVX2, and that
    /// `src.len() == dst.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn round_fp16_finite_row(src: &[f32], dst: &mut [f32]) -> bool {
        use sparstencil_mat::half::fp16_round;
        let len = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let mut any_nonfinite = _mm256_setzero_si256();
        let mut i = 0;
        while i + 8 <= len {
            // SAFETY: `i + 8 <= len` bounds every lane; f32 loads have
            // no alignment requirement through `loadu`.
            let v = _mm256_loadu_si256(sp.add(i).cast());
            let exp = _mm256_and_si256(_mm256_srli_epi32::<23>(v), _mm256_set1_epi32(0xff));
            // exp ∈ 113..=141 per lane (values in [0, 255], so signed
            // 32-bit compares are exact).
            let fast = _mm256_and_si256(
                _mm256_cmpgt_epi32(exp, _mm256_set1_epi32(112)),
                _mm256_cmpgt_epi32(_mm256_set1_epi32(142), exp),
            );
            let r = if _mm256_movemask_epi8(fast) == -1 {
                // All lanes normal-range: round-to-nearest-even on the
                // low 13 mantissa bits, directly on the f32 bits —
                // `(bits + 0x0FFF + ((bits >> 13) & 1)) & !0x1FFF`,
                // the exact `fp16_round` fast-path formula.
                let lsb = _mm256_and_si256(_mm256_srli_epi32::<13>(v), _mm256_set1_epi32(1));
                let sum = _mm256_add_epi32(_mm256_add_epi32(v, _mm256_set1_epi32(0x0FFF)), lsb);
                _mm256_and_si256(sum, _mm256_set1_epi32(!0x1FFFu32 as i32))
            } else {
                // Some lane is a zero, f16 subnormal, overflow, or NaN:
                // defer the whole group to the scalar routine and
                // reload the results for the shared health scan.
                for j in i..i + 8 {
                    *dst.get_unchecked_mut(j) = fp16_round(*src.get_unchecked(j));
                }
                _mm256_loadu_si256(dp.add(i).cast())
            };
            _mm256_storeu_si256(dp.add(i).cast(), r);
            any_nonfinite = _mm256_or_si256(any_nonfinite, nonfinite_mask(r));
            i += 8;
        }
        let mut nonfinite = _mm256_movemask_epi8(any_nonfinite) != 0;
        while i < len {
            let r = fp16_round(*src.get_unchecked(i));
            *dst.get_unchecked_mut(i) = r;
            nonfinite |= !r.is_finite();
            i += 1;
        }
        nonfinite
    }

    /// Identity "rounding" (`Fp32`/`Fp64` store formats at `f32` grid
    /// width) with the vector health scan.
    ///
    /// # Safety
    /// The caller must ensure the CPU supports AVX2, and that
    /// `src.len() == dst.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn copy_finite_row(src: &[f32], dst: &mut [f32]) -> bool {
        let len = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let mut any_nonfinite = _mm256_setzero_si256();
        let mut i = 0;
        while i + 8 <= len {
            // SAFETY: `i + 8 <= len` bounds every lane.
            let v = _mm256_loadu_si256(sp.add(i).cast());
            _mm256_storeu_si256(dp.add(i).cast(), v);
            any_nonfinite = _mm256_or_si256(any_nonfinite, nonfinite_mask(v));
            i += 8;
        }
        let mut nonfinite = _mm256_movemask_epi8(any_nonfinite) != 0;
        while i < len {
            let v = *src.get_unchecked(i);
            *dst.get_unchecked_mut(i) = v;
            nonfinite |= !v.is_finite();
            i += 1;
        }
        nonfinite
    }
}

#[cfg(all(test, feature = "simd", target_arch = "x86_64"))]
mod tests {
    use super::*;
    use sparstencil_mat::half::fp16_round;

    /// Every interesting f32 neighborhood for the fp16 round: normals,
    /// halfway RNE cases at both tie directions, the fast-path exponent
    /// boundaries (112/113 and 141/142), f16 subnormal range, zeros,
    /// overflow-to-Inf, infinities, NaN, and negatives of all of them.
    fn edge_values() -> Vec<f32> {
        let mut vals = vec![
            0.0_f32,
            1.0,
            1.5,
            0.1,
            2.5,
            f32::from_bits(0x3F80_2000), // 1 + 2⁻¹⁰: halfway, ties to even
            f32::from_bits(0x3F80_6000), // 1 + 3·2⁻¹⁰: halfway, ties up
            65504.0,                     // f16 max normal
            65519.9,                     // rounds to f16 max
            65520.0,                     // rounds up past f16 max → Inf
            100000.0,                    // overflow → Inf
            f32::from_bits(0x387F_FFFF), // just below f16 min normal (slow path)
            5.9604645e-8,                // f16 min subnormal
            2.9802322e-8,                // below half the min subnormal → 0
            1.0e-30,                     // deep underflow → 0
            f32::from_bits(0x3880_0000), // exp 113 exactly (fast-path low edge)
            f32::from_bits(0x3800_0000), // exp 112 (slow path)
            f32::from_bits(0x46FF_FFFF), // exp 141 mantissa all-ones (carry)
            f32::from_bits(0x4700_0000), // exp 142 (slow path)
            f32::INFINITY,
            f32::NAN,
            f32::MIN_POSITIVE, // f32 min normal, way below f16 range
            f32::MAX,
        ];
        let negs: Vec<f32> = vals.iter().map(|v| -v).collect();
        vals.extend(negs);
        vals
    }

    /// The vector fp16 row round is bit-identical to scalar
    /// `fp16_round` — and its folded health scan to `!is_finite` — for
    /// every edge value in every lane position, at lengths that
    /// exercise full groups, the scalar tail, and tail-only rows.
    #[test]
    fn vector_fp16_round_matches_scalar() {
        if !avx2_supported() {
            return;
        }
        let vals = edge_values();
        for len in [1, 5, 8, 11, 16, 24, 27, 32] {
            for (i, &seed) in vals.iter().enumerate() {
                // Rotate the edge values through every lane position.
                let src: Vec<f32> = (0..len).map(|j| vals[(i + j) % vals.len()]).collect();
                let mut dst = vec![0.0_f32; len];
                let nonfinite = round_finite_row::<f32>(&src, &mut dst, Precision::Fp16);
                let mut want_nonfinite = false;
                for (j, (&s, &d)) in src.iter().zip(&dst).enumerate() {
                    let want = fp16_round(s);
                    assert_eq!(
                        d.to_bits(),
                        want.to_bits(),
                        "lane {j} of {len}: {s} (bits {:#010x}) rounded to {:#010x}, want {:#010x} (seed {seed})",
                        s.to_bits(),
                        d.to_bits(),
                        want.to_bits()
                    );
                    want_nonfinite |= !want.is_finite();
                }
                assert_eq!(
                    nonfinite, want_nonfinite,
                    "health scan at len {len}, seed {seed}"
                );
            }
        }
    }

    /// The identity path (`Fp32` at f32 grids) copies bits verbatim and
    /// still reports non-finite lanes.
    #[test]
    fn vector_identity_round_scans_health() {
        if !avx2_supported() {
            return;
        }
        let vals = edge_values();
        for len in [3, 8, 13, 32] {
            for start in 0..vals.len() {
                let src: Vec<f32> = (0..len).map(|j| vals[(start + j) % vals.len()]).collect();
                let mut dst = vec![0.0_f32; len];
                let nonfinite = round_finite_row::<f32>(&src, &mut dst, Precision::Fp32);
                for (&s, &d) in src.iter().zip(&dst) {
                    assert_eq!(s.to_bits(), d.to_bits());
                }
                assert_eq!(nonfinite, src.iter().any(|v| !v.is_finite()));
            }
        }
    }

    /// The (type, precision) gate: f32 vectors exist for Fp16 and the
    /// identity formats; Bf16/Tf32 and all f64 grids stay scalar.
    #[test]
    fn round_dispatch_gate() {
        assert!(round_dispatchable::<f32>(Precision::Fp16));
        assert!(round_dispatchable::<f32>(Precision::Fp32));
        assert!(round_dispatchable::<f32>(Precision::Fp64));
        assert!(!round_dispatchable::<f32>(Precision::Bf16));
        assert!(!round_dispatchable::<f32>(Precision::Tf32));
        assert!(!round_dispatchable::<f64>(Precision::Fp16));
        assert!(!round_dispatchable::<f64>(Precision::Fp64));
    }
}
