//! Persistent execution sessions: the retained-state API every driver
//! goes through.
//!
//! The paper's pipeline (layout exploration → morphing → 2:4 conversion
//! → kernel generation, §3–4) produces a plan that real workloads reuse
//! across thousands of time steps. A [`Simulation`] is the run-time
//! counterpart of that reuse: it owns the execution state — the
//! halo-padded ping-pong [`Grid`]s, the per-worker scratch pool, the
//! activity-counting engine — and steps it incrementally, so setup
//! (embedding, quantization, buffer allocation) is paid once per session
//! instead of once per `run` call, and the live field can be observed
//! between steps without stopping the run.
//!
//! # Ownership and lifetimes
//!
//! A session never copies the compiled plan on the borrowed path: the
//! backend holds `Cow<'p, CompiledStencil>`, so
//! [`Executor::session`](crate::pipeline::Executor::session) lends its
//! plan for `'p` (the session cannot outlive the executor), while
//! [`Executor::into_session`](crate::pipeline::Executor::into_session)
//! moves the plan in and yields a self-contained `Simulation<'static>` —
//! the form the baseline crates use to hand sessions across API
//! boundaries. Everything else (grids, scratch, counters) is owned by
//! the session outright; [`Simulation::load`] and [`Simulation::reset`]
//! rewrite that state in place, so reusing one session across many
//! inputs performs **zero** further heap allocations (asserted by
//! `tests/alloc_steady_state.rs`) — including the engine's staged
//! operand ring, which is sized from the plan at session construction
//! and never touched by `load`/`reset`.
//!
//! Sessions are **`Send`**: a `Simulation` (and every backend behind
//! it) can be moved to another thread, which is what lets an async or
//! streaming server hold one session per client and step it wherever
//! its scheduler runs. The boxed [`Backend`] and every probe closure
//! therefore carry a `Send` bound; a compile-time test pins
//! `Simulation: Send` so a backend that silently loses the property
//! fails the build, not a deployment.
//!
//! # Pluggable backends
//!
//! The stepping strategy is a [`Backend`] trait object, so one driver
//! runs any execution path interchangeably:
//!
//! - [`EngineBackend`] — the optimized halo-padded interior-only engine
//!   (see [`crate::exec`]'s module docs); zero allocations per step.
//! - [`NaiveBackend`] — the retained pre-refactor path, the equivalence
//!   oracle (`tests/exec_equivalence.rs` pins it bit-identical to the
//!   engine).
//! - The `sparstencil-baselines` crate plugs its seven comparison
//!   systems in through the same trait (pipeline-backed baselines as
//!   engine sessions over their fixed layouts, counter-model baselines
//!   as scalar-reference sessions).
//!
//! # Batched multi-session execution
//!
//! A [`Batch`] holds N sessions over **one** shared plan and steps them
//! all per [`Batch::step_all`] call through a **single** guided work
//! queue: the union of every session's z-sliding runs
//! ([`crate::plan::BatchWork`]) is drained by the worker lanes with no
//! barrier between sessions — a lane that finishes one session's last
//! run immediately claims the next session's first, so tail imbalance
//! in one session is absorbed by work from another. The claim unit is
//! one `(session, z-run)` pair, which keeps the staged ring's reuse
//! discipline intact across the batch (see [`crate::exec`]).
//!
//! ```text
//!            ┌────────── CompiledStencil (one plan, Cow-shared) ─────────┐
//!            │   ExecTables · StageSchedule · BatchWork(N)               │
//!            └──────────────────────────┬────────────────────────────────┘
//!                                       │ read-only
//!   Batch ──────────────────────────────┼────────────────────────────────┐
//!   step_all()  per-session buffers     │          one guided queue      │
//!               ┌───────────────────┐   │   runs: S0r0 S0r1 … S1r0 …     │
//!               │ S0  cur ⇄ next    │◄──┤        ▲        ▲              │
//!               │ S1  cur ⇄ next    │   │   lane 0 ring  lane 1 ring     │
//!               │ …                 │   │   (scratch is per-LANE, shared │
//!               │ SN  cur ⇄ next    │   │    across sessions — run       │
//!               └───────────────────┘   │    starts restage the window)  │
//!               + per-session counters, │                                │
//!                 initial snapshot      │                                │
//!   ────────────────────────────────────┴────────────────────────────────┘
//! ```
//!
//! Each session stays **bit-identical** to stepping it alone
//! (`tests/batch_exec.rs` pins grids and counters against solo
//! sessions), `step_all` performs zero steady-state heap allocations,
//! and [`Batch::session_mut`] hands out a [`BatchSession`] — the
//! per-session view with the familiar
//! `step`/`field`/`load`/`reset`/`stats` surface — so one member can be
//! observed, reloaded, or even stepped ahead individually between
//! batched steps.
//!
//! # Observation
//!
//! [`Simulation::field`] returns a zero-copy [`FieldView`] of the
//! semantic grid inside the live buffer — no extraction, no boundary
//! pass (the engine's per-step boundary mirror keeps the semantic band
//! current, so the view is valid the moment a step returns).
//! [`Simulation::probe`] registers closures invoked every `k` steps with
//! the step number and that view: reductions, snapshots, and convergence
//! checks run mid-flight without breaking the zero-allocation steady
//! state of the stepper itself.
//!
//! ```
//! use sparstencil::prelude::*;
//!
//! let kernel = StencilKernel::heat2d();
//! let shape = [1, 40, 40];
//! let exec = Executor::<f32>::new(&kernel, shape, &Options::default()).unwrap();
//! let input = Grid::<f32>::smooth_random(2, shape);
//!
//! let mut sim = exec.session(&input);
//! sim.probe(2, |step, field| {
//!     let mean: f64 = field.iter().map(|v| v as f64).sum::<f64>() / field.len() as f64;
//!     assert!(mean.is_finite(), "step {step}");
//! });
//! sim.step_n(6);
//! assert_eq!(sim.steps(), 6);
//! let stats = sim.stats().unwrap();
//! assert!(stats.counters.n_mma() > 0);
//! ```

use crate::exec::{self, RunStats};
use crate::grid::{FieldView, Grid};
use crate::plan::{BatchWork, CompiledStencil};
use sparstencil_mat::half::Precision;
use sparstencil_mat::Real;
use sparstencil_tcu::{Counters, Engine};
use std::borrow::Cow;

/// A pluggable execution strategy behind a [`Simulation`].
///
/// A backend owns the live state of one run — field buffers plus
/// whatever bookkeeping its stepping discipline needs — and advances it
/// one stencil time step at a time. The [`Simulation`] driver layers the
/// session services (step counting, probes, stats, reuse) on top, so
/// every backend gets them for free and every consumer drives every
/// backend through the same five calls.
pub trait Backend<R: Real> {
    /// Short display name ("engine", "naive", a baseline's name).
    fn name(&self) -> &'static str;

    /// Semantic grid shape `[nz, ny, nx]` of the simulated field.
    fn shape(&self) -> [usize; 3];

    /// Advance the field by one stencil time step.
    fn step(&mut self);

    /// Zero-copy view of the current semantic field.
    fn field(&self) -> FieldView<'_, R>;

    /// Replace the field with a new input (same shape) without
    /// reallocating, clearing accumulated activity.
    ///
    /// # Panics
    /// Panics if `input`'s shape differs from [`Backend::shape`].
    fn load(&mut self, input: &Grid<R>);

    /// Restore the initially loaded field and clear accumulated
    /// activity, without reallocating.
    fn reset(&mut self);

    /// Simulated-hardware statistics over `steps` executed steps.
    /// `None` for backends with no hardware model behind them (e.g. the
    /// baselines' scalar-reference sessions).
    fn stats(&self, steps: usize) -> Option<RunStats> {
        let _ = steps;
        None
    }

    /// Consume the backend and return the final semantic field. The
    /// default materializes a copy via [`Backend::field`]; backends
    /// whose live buffer *is* the semantic grid override this to move it
    /// out without copying.
    fn into_grid(self: Box<Self>) -> Grid<R> {
        self.field().to_grid()
    }
}

/// Shared [`Backend::load`] staging step: (re)materialize `slot` as
/// `input` embedded in the low corner of a `padded_shape` buffer,
/// quantized through `precision`. Reuses the existing allocation when
/// `slot` is already materialized with matching dimensionality; the
/// first call (or a dimensionality change) allocates it.
pub fn stage_initial<R: Real>(
    input: &Grid<R>,
    slot: &mut Option<Grid<R>>,
    padded_shape: [usize; 3],
    precision: Precision,
) {
    match slot {
        Some(init) if init.dims() == input.dims() => input.embed_into(init),
        _ => *slot = Some(input.embedded_in(padded_shape)),
    }
    slot.as_mut()
        .expect("just materialized")
        .quantize(precision);
}

/// Shared `reset` core of every engine-backed session (solo backend and
/// batch member alike): restore **both** ping-pong buffers from the
/// pristine snapshot — `cur` is the field, `next`'s copy seeds the
/// boundary cells exactly as `StepBuffers::new` did — and clear the
/// activity counters. One implementation is what keeps `load`/`reset`
/// bit-identical between a batch member and its solo twin
/// (`tests/batch_exec.rs` pins that identity).
fn rewind_to_initial<R: Real>(
    bufs: &mut exec::StepBuffers<R>,
    initial: &Option<Grid<R>>,
    engine: &mut Engine,
) {
    let initial = initial
        .as_ref()
        .expect("sessions that rewind retain their initial snapshot");
    bufs.cur.as_mut_slice().copy_from_slice(initial.as_slice());
    bufs.next.as_mut_slice().copy_from_slice(initial.as_slice());
    engine.counters = Counters::new();
}

/// Shared `load` core of every engine-backed session: shape check,
/// re-embed + re-quantize into the retained staging slot, record the
/// input's dimensionality, and rewind onto the new snapshot.
fn load_engine_session<R: Real>(
    plan: &CompiledStencil<R>,
    input: &Grid<R>,
    bufs: &mut exec::StepBuffers<R>,
    initial: &mut Option<Grid<R>>,
    dims: &mut usize,
    engine: &mut Engine,
) {
    assert_eq!(
        input.shape(),
        plan.grid_shape,
        "grid shape differs from the compiled plan"
    );
    stage_initial(input, initial, bufs.cur.shape(), plan.precision);
    *dims = input.dims();
    rewind_to_initial(bufs, initial, engine);
}

/// The optimized execution engine as a session backend: halo-padded
/// ping-pong buffers, plan-time gather tables, per-worker scratch,
/// guided partitioning, closed-form counters (see [`crate::exec`]).
/// After construction, [`Backend::step`] performs zero heap allocations.
pub struct EngineBackend<'p, R: Real> {
    plan: Cow<'p, CompiledStencil<R>>,
    engine: Engine,
    per_iter: Counters,
    bufs: exec::StepBuffers<R>,
    scratch: Vec<exec::WorkerScratch<R>>,
    /// Pristine padded+quantized input, kept for [`Backend::reset`] and
    /// reused as the embedding staging buffer by [`Backend::load`].
    /// `None` only for internal throwaway sessions (the one-shot `run`
    /// wrappers), which never rewind — skipping the snapshot spares them
    /// a full-grid clone.
    initial: Option<Grid<R>>,
    dims: usize,
}

impl<'p, R: Real> EngineBackend<'p, R> {
    /// Backend borrowing `plan`, with the pool-wide default lane count.
    ///
    /// # Panics
    /// Panics if the input shape differs from the plan's compile-time
    /// shape.
    pub fn new(plan: &'p CompiledStencil<R>, input: &Grid<R>) -> Self {
        Self::with_parallelism(plan, input, rayon::current_num_threads())
    }

    /// Backend borrowing `plan` with an explicit worker-lane count
    /// (scratch slots / guided-scheduler tasks); results and counters
    /// are identical for every lane count.
    ///
    /// # Panics
    /// Panics if the input shape differs from the plan's compile-time
    /// shape.
    pub fn with_parallelism(plan: &'p CompiledStencil<R>, input: &Grid<R>, lanes: usize) -> Self {
        Self::from_cow(Cow::Borrowed(plan), input, lanes, true)
    }

    /// Backend that owns its plan — a self-contained `'static` session
    /// state, used by the baseline crates to return sessions without a
    /// lender.
    pub fn owned(plan: CompiledStencil<R>, input: &Grid<R>) -> EngineBackend<'static, R> {
        EngineBackend::from_cow(Cow::Owned(plan), input, rayon::current_num_threads(), true)
    }

    /// One-shot internal variant for the `exec::run*` wrappers: skips
    /// the initial-state snapshot (the wrapper never calls
    /// `load`/`reset` before the first step), so a one-shot run pays no
    /// more setup than the pre-session engine did.
    pub(crate) fn throwaway(plan: &'p CompiledStencil<R>, input: &Grid<R>, lanes: usize) -> Self {
        Self::from_cow(Cow::Borrowed(plan), input, lanes, false)
    }

    fn from_cow(
        plan: Cow<'p, CompiledStencil<R>>,
        input: &Grid<R>,
        lanes: usize,
        retain_initial: bool,
    ) -> Self {
        assert_eq!(
            input.shape(),
            plan.grid_shape,
            "grid shape differs from the compiled plan"
        );
        let engine = Engine::new(plan.gpu.clone(), plan.precision);
        let per_iter = exec::iter_counters(&plan, &plan.geom, plan.grid_shape, true);
        let bufs = exec::StepBuffers::new(&plan, input);
        let scratch = exec::WorkerScratch::pool(&plan, lanes.max(1));
        let initial = retain_initial.then(|| bufs.cur.clone());
        Self {
            plan,
            engine,
            per_iter,
            bufs,
            scratch,
            initial,
            dims: input.dims(),
        }
    }
}

impl<R: Real> Backend<R> for EngineBackend<'_, R> {
    fn name(&self) -> &'static str {
        "engine"
    }

    fn shape(&self) -> [usize; 3] {
        self.plan.grid_shape
    }

    fn step(&mut self) {
        self.engine.counters.merge(&self.per_iter);
        // Output quantization happens inside the scatter (each value is
        // rounded as it is stored, exactly like the hardware's store
        // path); boundary cells were quantized once at load and are
        // re-mirrored, not recomputed.
        exec::step_into(
            &self.plan,
            &self.bufs.cur,
            &mut self.bufs.next,
            &mut self.scratch,
        );
        std::mem::swap(&mut self.bufs.cur, &mut self.bufs.next);
    }

    fn field(&self) -> FieldView<'_, R> {
        FieldView::windowed(&self.bufs.cur, self.dims, self.plan.grid_shape)
    }

    fn load(&mut self, input: &Grid<R>) {
        load_engine_session(
            &self.plan,
            input,
            &mut self.bufs,
            &mut self.initial,
            &mut self.dims,
            &mut self.engine,
        );
    }

    fn reset(&mut self) {
        rewind_to_initial(&mut self.bufs, &self.initial, &mut self.engine);
    }

    fn stats(&self, steps: usize) -> Option<RunStats> {
        Some(exec::finalize_stats(&self.plan, &self.engine, steps))
    }
}

/// The retained pre-refactor execution path as a session backend: clones
/// the grid per step, counts every fragment MMA as it is issued. Kept as
/// the equivalence oracle — `tests/exec_equivalence.rs` pins it
/// bit-identical (grids and counters) to [`EngineBackend`].
pub struct NaiveBackend<'p, R: Real> {
    plan: Cow<'p, CompiledStencil<R>>,
    engine: Engine,
    per_iter: Counters,
    cur: Grid<R>,
    /// Pristine quantized input (see [`EngineBackend`]'s field docs:
    /// `None` only for internal throwaway sessions).
    initial: Option<Grid<R>>,
    dims: usize,
}

impl<'p, R: Real> NaiveBackend<'p, R> {
    /// Backend borrowing `plan`.
    ///
    /// # Panics
    /// Panics if the input shape differs from the plan's compile-time
    /// shape.
    pub fn new(plan: &'p CompiledStencil<R>, input: &Grid<R>) -> Self {
        Self::from_cow(Cow::Borrowed(plan), input, true)
    }

    /// Backend that owns its plan (see [`EngineBackend::owned`]).
    pub fn owned(plan: CompiledStencil<R>, input: &Grid<R>) -> NaiveBackend<'static, R> {
        NaiveBackend::from_cow(Cow::Owned(plan), input, true)
    }

    /// One-shot internal variant for `exec::run_naive` (see
    /// [`EngineBackend::throwaway`]).
    pub(crate) fn throwaway(plan: &'p CompiledStencil<R>, input: &Grid<R>) -> Self {
        Self::from_cow(Cow::Borrowed(plan), input, false)
    }

    fn from_cow(plan: Cow<'p, CompiledStencil<R>>, input: &Grid<R>, retain_initial: bool) -> Self {
        assert_eq!(
            input.shape(),
            plan.grid_shape,
            "grid shape differs from the compiled plan"
        );
        let engine = Engine::new(plan.gpu.clone(), plan.precision);
        // Traffic/launch accounting shares the closed-form helper with
        // the optimized engine; the fragment ops stay counted one by one
        // inside `step_naive` as the independent oracle.
        let per_iter = exec::iter_counters(&plan, &plan.geom, plan.grid_shape, false);
        let mut cur = input.clone();
        cur.quantize(plan.precision);
        let initial = retain_initial.then(|| cur.clone());
        Self {
            plan,
            engine,
            per_iter,
            cur,
            initial,
            dims: input.dims(),
        }
    }
}

impl<R: Real> Backend<R> for NaiveBackend<'_, R> {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn shape(&self) -> [usize; 3] {
        self.plan.grid_shape
    }

    fn step(&mut self) {
        self.engine.counters.merge(&self.per_iter);
        self.cur = exec::step_naive(&self.plan, &self.cur, &mut self.engine);
        if !matches!(self.plan.precision, Precision::Fp64) {
            self.cur.quantize(self.plan.precision);
        }
    }

    fn field(&self) -> FieldView<'_, R> {
        // Explicit dims: a `load` may change the input's dimensionality
        // while `cur`'s own metadata still carries the construction-time
        // value.
        FieldView::windowed(&self.cur, self.dims, self.plan.grid_shape)
    }

    fn load(&mut self, input: &Grid<R>) {
        assert_eq!(
            input.shape(),
            self.plan.grid_shape,
            "grid shape differs from the compiled plan"
        );
        stage_initial(
            input,
            &mut self.initial,
            self.cur.shape(),
            self.plan.precision,
        );
        self.dims = input.dims();
        self.reset();
    }

    fn reset(&mut self) {
        let initial = self
            .initial
            .as_ref()
            .expect("internal throwaway sessions never rewind");
        self.cur.as_mut_slice().copy_from_slice(initial.as_slice());
        self.engine.counters = Counters::new();
    }

    fn stats(&self, steps: usize) -> Option<RunStats> {
        Some(exec::finalize_stats(&self.plan, &self.engine, steps))
    }

    fn into_grid(self: Box<Self>) -> Grid<R> {
        // `cur` already is the semantic grid — move it out, unless a
        // dims-changing `load` left stale dimensionality metadata on it.
        if self.cur.dims() == self.dims {
            self.cur
        } else {
            self.field().to_grid()
        }
    }
}

/// A probe callback: receives the completed-step count and a zero-copy
/// view of the live field. `Send` so registering a probe never costs a
/// session its `Send`-ness (share state with a probe through `Mutex`,
/// atomics, or owned captures rather than `Rc`/`RefCell` references).
type ProbeFn<'p, R> = Box<dyn FnMut(usize, &FieldView<'_, R>) + Send + 'p>;

/// A registered observer: fires every `every` steps with the step number
/// and the live field view.
struct Probe<'p, R: Real> {
    every: usize,
    f: ProbeFn<'p, R>,
}

/// A persistent stencil-simulation session: retained execution state
/// stepped incrementally, observed mid-run, and reused across inputs.
///
/// Obtain one from [`Executor::session`](crate::pipeline::Executor::session)
/// (borrowing the executor's plan) or wrap any [`Backend`] directly with
/// [`Simulation::new`]. See the [module docs](self) for the ownership
/// story and the backend roster.
pub struct Simulation<'p, R: Real> {
    backend: Box<dyn Backend<R> + Send + 'p>,
    steps: usize,
    probes: Vec<Probe<'p, R>>,
}

impl<'p, R: Real> Simulation<'p, R> {
    /// Wrap a backend in a session driver.
    pub fn new(backend: impl Backend<R> + Send + 'p) -> Self {
        Self::from_boxed(Box::new(backend))
    }

    /// Wrap an already-boxed backend (for callers assembling `dyn`
    /// backends, e.g. a driver iterating over several of them). The
    /// `Send` bound keeps the whole session `Send`.
    pub fn from_boxed(backend: Box<dyn Backend<R> + Send + 'p>) -> Self {
        Self {
            backend,
            steps: 0,
            probes: Vec::new(),
        }
    }

    /// The backend's display name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Semantic grid shape `[nz, ny, nx]`.
    pub fn shape(&self) -> [usize; 3] {
        self.backend.shape()
    }

    /// Steps executed since construction / the last [`Simulation::load`]
    /// or [`Simulation::reset`].
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Register an observer invoked after every `every`-th step with the
    /// completed-step count and a zero-copy view of the live field.
    /// Probes stack (all matching probes fire, in registration order)
    /// and survive [`Simulation::load`]/[`Simulation::reset`].
    ///
    /// # Panics
    /// Panics if `every` is zero.
    pub fn probe(&mut self, every: usize, f: impl FnMut(usize, &FieldView<'_, R>) + Send + 'p) {
        assert!(every > 0, "probe cadence must be at least 1");
        self.probes.push(Probe {
            every,
            f: Box::new(f),
        });
    }

    /// Advance one time step (and fire any due probes).
    pub fn step(&mut self) {
        self.step_n(1);
    }

    /// Advance `n` time steps, firing due probes after each one. The
    /// stepping itself performs zero heap allocations on the engine
    /// backend; whatever a probe closure allocates is its own business.
    pub fn step_n(&mut self, n: usize) {
        for _ in 0..n {
            self.backend.step();
            self.steps += 1;
            if !self.probes.is_empty() {
                // Split borrows: the view reads `backend`, the closures
                // live in `probes` — disjoint fields.
                let Self {
                    backend,
                    probes,
                    steps,
                } = self;
                let view = backend.field();
                for p in probes.iter_mut() {
                    if *steps % p.every == 0 {
                        (p.f)(*steps, &view);
                    }
                }
            }
        }
    }

    /// Zero-copy view of the current semantic field — valid immediately
    /// after any step, no extraction pass.
    pub fn field(&self) -> FieldView<'_, R> {
        self.backend.field()
    }

    /// Materialize the current semantic field as an owned [`Grid`].
    pub fn to_grid(&self) -> Grid<R> {
        self.backend.field().to_grid()
    }

    /// Consume the session and return the final semantic field, moving
    /// the live buffer out without a copy where the backend allows it
    /// (the naive and reference paths; the padded engine extracts).
    pub fn into_grid(self) -> Grid<R> {
        self.backend.into_grid()
    }

    /// Start over on a new input of the same shape, reusing every buffer
    /// (no reallocation, unless the input's *dimensionality* changed,
    /// which re-materializes one staging buffer): the field is
    /// re-embedded and re-quantized, the step counter and activity
    /// counters are cleared, probes stay registered.
    ///
    /// # Panics
    /// Panics if `input`'s shape differs from the session's.
    pub fn load(&mut self, input: &Grid<R>) {
        self.backend.load(input);
        self.steps = 0;
    }

    /// Rewind to the initially loaded field (as of construction or the
    /// last [`Simulation::load`]), clearing steps and counters. No
    /// reallocation.
    pub fn reset(&mut self) {
        self.backend.reset();
        self.steps = 0;
    }

    /// Accumulated simulated-hardware statistics over the session's
    /// steps so far. `None` for backends without a hardware model (the
    /// baselines' scalar-reference sessions).
    pub fn stats(&self) -> Option<RunStats> {
        self.backend.stats(self.steps)
    }
}

/// Per-session execution state a [`Batch`] keeps beside the buffer
/// table: the activity-counting engine, the pristine-input snapshot for
/// `load`/`reset`, and the session's own step count (sessions may be
/// stepped ahead individually through [`BatchSession`]).
struct SessionState<R: Real> {
    engine: Engine,
    /// Pristine padded+quantized input (see [`EngineBackend`]'s field
    /// docs); always retained — batches exist to be reused.
    initial: Option<Grid<R>>,
    steps: usize,
    dims: usize,
}

/// N simulation sessions over one shared compiled plan, stepped
/// together through a single guided work queue.
///
/// Construction embeds and quantizes every input once (one halo-padded
/// ping-pong buffer pair per session) and builds the session-tagged
/// run index ([`BatchWork`]) once; [`Batch::step_all`] then advances
/// **every** session by one time step with zero heap allocations,
/// dispatching the union of all sessions' z-sliding runs to the lanes —
/// no barrier between sessions, no per-session dispatch overhead. See
/// the [module docs](self) for the ownership diagram and the
/// bit-identity guarantee versus solo stepping.
///
/// Obtain one from [`Executor::batch`](crate::pipeline::Executor::batch)
/// (borrowing the executor's plan) or [`Batch::new`] over a compiled
/// plan. Per-session access goes through [`Batch::field`],
/// [`Batch::load`], [`Batch::stats`], or the full per-session view
/// [`Batch::session_mut`].
pub struct Batch<'p, R: Real> {
    plan: Cow<'p, CompiledStencil<R>>,
    work: BatchWork,
    /// Per-session buffer table: `bufs[i]` are session `i`'s ping-pong
    /// grids, the `&mut [StepBuffers]` view the batch stepper takes.
    bufs: Vec<exec::StepBuffers<R>>,
    state: Vec<SessionState<R>>,
    /// Per-lane staged-ring scratch, shared by all sessions (a claimed
    /// run re-stages its full window at its start, so rings never carry
    /// state across sessions or steps).
    scratch: Vec<exec::WorkerScratch<R>>,
    /// Reusable raw buffer-binding table for the batch stepper; cleared
    /// between steps, capacity reserved once.
    ptrs: Vec<exec::SessionPtrs<R>>,
    /// Per-session run countdown: the lane retiring a session's last
    /// run mirrors its boundary band inside the parallel region (cache-
    /// warm) instead of a serial post-pass. Reset every step.
    pending: Vec<std::sync::atomic::AtomicU32>,
    per_iter: Counters,
}

impl<'p, R: Real> Batch<'p, R> {
    /// A batch borrowing `plan`, one session per input, with the
    /// pool-wide default lane count.
    ///
    /// # Panics
    /// Panics if `inputs` is empty or any input's shape differs from
    /// the plan's compile-time shape (mixed-shape batches are rejected:
    /// one batch shares one plan, and a plan is shape-specific).
    pub fn new(plan: &'p CompiledStencil<R>, inputs: &[Grid<R>]) -> Self {
        Self::with_parallelism(plan, inputs, rayon::current_num_threads())
    }

    /// [`Batch::new`] with an explicit worker-lane count; results and
    /// counters are identical for every lane count.
    ///
    /// # Panics
    /// As [`Batch::new`].
    pub fn with_parallelism(
        plan: &'p CompiledStencil<R>,
        inputs: &[Grid<R>],
        lanes: usize,
    ) -> Self {
        Self::from_cow(Cow::Borrowed(plan), inputs, lanes)
    }

    /// A batch that owns its plan — a self-contained `'static` batch,
    /// the form to store in long-lived serving state.
    ///
    /// # Panics
    /// As [`Batch::new`].
    pub fn owned(plan: CompiledStencil<R>, inputs: &[Grid<R>]) -> Batch<'static, R> {
        Batch::from_cow(Cow::Owned(plan), inputs, rayon::current_num_threads())
    }

    fn from_cow(plan: Cow<'p, CompiledStencil<R>>, inputs: &[Grid<R>], lanes: usize) -> Self {
        assert!(!inputs.is_empty(), "a batch needs at least one session");
        for input in inputs {
            assert_eq!(
                input.shape(),
                plan.grid_shape,
                "grid shape differs from the compiled plan"
            );
        }
        let per_iter = exec::iter_counters(&plan, &plan.geom, plan.grid_shape, true);
        let work = plan.exec.batch_work(inputs.len());
        let bufs: Vec<exec::StepBuffers<R>> = inputs
            .iter()
            .map(|input| exec::StepBuffers::new(&plan, input))
            .collect();
        let state = inputs
            .iter()
            .zip(&bufs)
            .map(|(input, b)| SessionState {
                engine: Engine::new(plan.gpu.clone(), plan.precision),
                initial: Some(b.cur.clone()),
                steps: 0,
                dims: input.dims(),
            })
            .collect();
        let scratch = exec::WorkerScratch::pool(&plan, lanes.max(1));
        let ptrs = Vec::with_capacity(inputs.len());
        let pending = (0..inputs.len())
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        Self {
            plan,
            work,
            bufs,
            state,
            scratch,
            ptrs,
            pending,
            per_iter,
        }
    }

    /// Number of sessions in the batch.
    pub fn sessions(&self) -> usize {
        self.bufs.len()
    }

    /// Semantic grid shape `[nz, ny, nx]`, shared by every session.
    pub fn shape(&self) -> [usize; 3] {
        self.plan.grid_shape
    }

    /// The shared compiled plan.
    pub fn plan(&self) -> &CompiledStencil<R> {
        &self.plan
    }

    /// Steps executed by session `i` since construction or its last
    /// [`Batch::load`]/reset.
    pub fn steps(&self, i: usize) -> usize {
        self.state[i].steps
    }

    /// Advance **every** session by one time step through the single
    /// guided queue. Allocation-free after construction.
    pub fn step_all(&mut self) {
        for st in &mut self.state {
            st.engine.counters.merge(&self.per_iter);
        }
        exec::step_all_into(
            &self.plan,
            &self.work,
            &mut self.bufs,
            &mut self.scratch,
            &mut self.ptrs,
            &self.pending,
        );
        for (sb, st) in self.bufs.iter_mut().zip(&mut self.state) {
            std::mem::swap(&mut sb.cur, &mut sb.next);
            st.steps += 1;
        }
    }

    /// Advance every session by `n` time steps.
    pub fn step_all_n(&mut self, n: usize) {
        for _ in 0..n {
            self.step_all();
        }
    }

    /// Zero-copy view of session `i`'s current semantic field.
    pub fn field(&self, i: usize) -> FieldView<'_, R> {
        FieldView::windowed(&self.bufs[i].cur, self.state[i].dims, self.plan.grid_shape)
    }

    /// Materialize session `i`'s current semantic field.
    pub fn to_grid(&self, i: usize) -> Grid<R> {
        self.field(i).to_grid()
    }

    /// Session `i`'s accumulated simulated-hardware statistics.
    pub fn stats(&self, i: usize) -> RunStats {
        exec::finalize_stats(&self.plan, &self.state[i].engine, self.state[i].steps)
    }

    /// Replace session `i`'s field with a new input of the same shape,
    /// reusing its buffers (no reallocation) and clearing its step and
    /// activity counters. Other sessions are untouched.
    ///
    /// # Panics
    /// Panics if `input`'s shape differs from the plan's.
    pub fn load(&mut self, i: usize, input: &Grid<R>) {
        self.session_mut(i).load(input);
    }

    /// Rewind every session to its initially loaded field, clearing
    /// steps and counters. No reallocation.
    pub fn reset(&mut self) {
        for i in 0..self.sessions() {
            self.session_mut(i).reset();
        }
    }

    /// Mutable per-session view: the familiar session surface
    /// (`step`/`field`/`load`/`reset`/`stats`) over one member, sharing
    /// the batch's plan and lane scratch. Stepping through the view
    /// advances only that session — useful for catching a freshly
    /// loaded member up to the rest of the batch.
    pub fn session_mut(&mut self, i: usize) -> BatchSession<'_, R> {
        BatchSession {
            plan: &self.plan,
            per_iter: &self.per_iter,
            bufs: &mut self.bufs[i],
            state: &mut self.state[i],
            scratch: &mut self.scratch,
        }
    }
}

/// A mutable view of one [`Batch`] member: the per-session slice of the
/// batch's state, with the same stepping semantics as a solo
/// [`EngineBackend`] session (bit-identical, allocation-free). Borrowed
/// from [`Batch::session_mut`]; dropping it returns control to the
/// batch.
pub struct BatchSession<'a, R: Real> {
    plan: &'a CompiledStencil<R>,
    per_iter: &'a Counters,
    bufs: &'a mut exec::StepBuffers<R>,
    state: &'a mut SessionState<R>,
    scratch: &'a mut [exec::WorkerScratch<R>],
}

impl<R: Real> BatchSession<'_, R> {
    /// Advance this session (only) by one time step.
    pub fn step(&mut self) {
        self.state.engine.counters.merge(self.per_iter);
        exec::step_into(self.plan, &self.bufs.cur, &mut self.bufs.next, self.scratch);
        std::mem::swap(&mut self.bufs.cur, &mut self.bufs.next);
        self.state.steps += 1;
    }

    /// Advance this session by `n` time steps.
    pub fn step_n(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Steps this session has executed.
    pub fn steps(&self) -> usize {
        self.state.steps
    }

    /// Zero-copy view of this session's current semantic field.
    pub fn field(&self) -> FieldView<'_, R> {
        FieldView::windowed(&self.bufs.cur, self.state.dims, self.plan.grid_shape)
    }

    /// Materialize this session's current semantic field.
    pub fn to_grid(&self) -> Grid<R> {
        self.field().to_grid()
    }

    /// This session's accumulated simulated-hardware statistics.
    pub fn stats(&self) -> RunStats {
        exec::finalize_stats(self.plan, &self.state.engine, self.state.steps)
    }

    /// Replace this session's field with a new input of the same shape
    /// (no reallocation), clearing its step and activity counters.
    ///
    /// # Panics
    /// Panics if `input`'s shape differs from the plan's.
    pub fn load(&mut self, input: &Grid<R>) {
        load_engine_session(
            self.plan,
            input,
            self.bufs,
            &mut self.state.initial,
            &mut self.state.dims,
            &mut self.state.engine,
        );
        self.state.steps = 0;
    }

    /// Rewind this session to its initially loaded field, clearing
    /// steps and counters. No reallocation.
    pub fn reset(&mut self) {
        rewind_to_initial(self.bufs, &self.state.initial, &mut self.state.engine);
        self.state.steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile, Options};
    use crate::stencil::StencilKernel;

    fn plan_and_input(shape: [usize; 3]) -> (CompiledStencil<f32>, Grid<f32>) {
        let k = StencilKernel::box2d9p();
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let plan = compile::<f32>(&k, shape, &opts).unwrap();
        let input = Grid::<f32>::smooth_random(2, shape);
        (plan, input)
    }

    #[test]
    fn stepwise_equals_oneshot() {
        let (plan, input) = plan_and_input([1, 44, 48]);
        let (want, want_stats) = exec::run(&plan, &input, 4);

        let mut sim = Simulation::new(EngineBackend::new(&plan, &input));
        for _ in 0..4 {
            sim.step();
        }
        assert_eq!(sim.steps(), 4);
        assert_eq!(sim.to_grid(), want);
        let stats = sim.stats().unwrap();
        assert_eq!(stats.counters, want_stats.counters);
        assert_eq!(stats.iters, 4);
    }

    #[test]
    fn probes_fire_on_cadence_with_live_values() {
        let (plan, input) = plan_and_input([1, 40, 40]);
        let (after2, _) = exec::run(&plan, &input, 2);
        // Mutex rather than RefCell: probe closures are `Send` (sessions
        // are `Send`), and `&Mutex<_>` is.
        let fired = std::sync::Mutex::new(Vec::new());
        let mut sim = Simulation::new(EngineBackend::new(&plan, &input));
        sim.probe(2, |step, field| {
            fired.lock().unwrap().push((step, field.get(0, 10, 10)));
        });
        sim.step_n(5);
        drop(sim);
        let fired = fired.into_inner().unwrap();
        assert_eq!(fired.iter().map(|&(s, _)| s).collect::<Vec<_>>(), [2, 4]);
        assert_eq!(fired[0].1, after2.get(0, 10, 10));
    }

    #[test]
    fn load_and_reset_reuse_buffers() {
        let (plan, a) = plan_and_input([1, 40, 40]);
        let b = Grid::<f32>::from_fn_3d(2, [1, 40, 40], |_, y, x| ((y * 7 + x) % 11) as f32 * 0.1);

        let mut sim = Simulation::new(EngineBackend::new(&plan, &a));
        sim.step_n(3);
        let first = sim.to_grid();

        sim.load(&b);
        assert_eq!(sim.steps(), 0);
        sim.step_n(3);
        let (fresh_b, fresh_b_stats) = exec::run(&plan, &b, 3);
        assert_eq!(sim.to_grid(), fresh_b);
        assert_eq!(sim.stats().unwrap().counters, fresh_b_stats.counters);

        sim.reset();
        sim.step_n(3);
        assert_eq!(sim.to_grid(), fresh_b, "reset rewinds to the last load");

        sim.load(&a);
        sim.step_n(3);
        assert_eq!(sim.to_grid(), first);
    }

    #[test]
    fn naive_backend_matches_engine_through_one_driver() {
        let (plan, input) = plan_and_input([1, 44, 40]);
        let mut results = Vec::new();
        let backends: Vec<Box<dyn Backend<f32> + Send>> = vec![
            Box::new(EngineBackend::new(&plan, &input)),
            Box::new(NaiveBackend::new(&plan, &input)),
        ];
        for backend in backends {
            let mut sim = Simulation::from_boxed(backend);
            sim.step_n(3);
            results.push((sim.to_grid(), sim.stats().unwrap().counters));
        }
        assert_eq!(results[0].0, results[1].0);
        assert_eq!(results[0].1, results[1].1);
    }

    #[test]
    fn owned_backend_outlives_its_plan_binding() {
        let (plan, input) = plan_and_input([1, 40, 40]);
        let (want, _) = exec::run(&plan, &input, 2);
        let mut sim: Simulation<'static, f32> = Simulation::new(EngineBackend::owned(plan, &input));
        sim.step_n(2);
        assert_eq!(sim.to_grid(), want);
    }

    #[test]
    fn sessions_and_backends_are_send() {
        // Compile-time pin of the async/streaming story: a session (and
        // every first-party backend) can be moved across threads. If a
        // backend gains a non-Send field, this stops compiling.
        fn assert_send<T: Send>() {}
        assert_send::<Simulation<'static, f32>>();
        assert_send::<Simulation<'static, f64>>();
        assert_send::<EngineBackend<'static, f32>>();
        assert_send::<NaiveBackend<'static, f64>>();
        // A batch moves across threads too (one server task can own a
        // whole fleet of sessions); the raw buffer-binding table inside
        // is empty between steps.
        assert_send::<Batch<'static, f32>>();
        assert_send::<Batch<'static, f64>>();

        // The borrowed-plan form is Send too (CompiledStencil is Sync),
        // and stays Send with a probe registered.
        fn _borrowed<'p>(plan: &'p CompiledStencil<f32>, input: &Grid<f32>) -> impl Send + use<'p> {
            let mut sim = Simulation::new(EngineBackend::new(plan, input));
            sim.probe(1, |_, field| {
                let _ = field.get(0, 0, 0);
            });
            sim
        }
    }

    #[test]
    #[should_panic(expected = "differs from the compiled plan")]
    fn load_rejects_wrong_shape() {
        let (plan, input) = plan_and_input([1, 40, 40]);
        let mut sim = Simulation::new(EngineBackend::new(&plan, &input));
        sim.load(&Grid::<f32>::smooth_random(2, [1, 30, 30]));
    }

    #[test]
    fn batch_steps_every_session_like_solo() {
        let shape = [1, 44, 48];
        let (plan, _) = plan_and_input(shape);
        let inputs: Vec<Grid<f32>> = (0..3)
            .map(|s| {
                Grid::<f32>::from_fn_3d(2, shape, |_, y, x| {
                    ((y * 5 + x * 3 + s * 7) % 13) as f32 * 0.07
                })
            })
            .collect();

        let mut batch = Batch::new(&plan, &inputs);
        assert_eq!(batch.sessions(), 3);
        assert_eq!(batch.shape(), shape);
        batch.step_all_n(3);

        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(batch.steps(i), 3);
            let (want, want_stats) = exec::run(&plan, input, 3);
            assert_eq!(batch.to_grid(i), want, "session {i} grid");
            assert_eq!(batch.stats(i).counters, want_stats.counters, "session {i}");
        }
    }

    #[test]
    fn batch_session_view_steps_and_reloads_one_member() {
        let shape = [1, 40, 40];
        let (plan, a) = plan_and_input(shape);
        let b = Grid::<f32>::from_fn_3d(2, shape, |_, y, x| ((y * 7 + x) % 11) as f32 * 0.1);

        let mut batch = Batch::new(&plan, &[a.clone(), a.clone()]);
        batch.step_all_n(2);

        // Reload member 1 mid-flight and catch it up through the view.
        {
            let mut s1 = batch.session_mut(1);
            s1.load(&b);
            assert_eq!(s1.steps(), 0);
            s1.step_n(2);
        }
        batch.step_all();

        let (want_a, _) = exec::run(&plan, &a, 3);
        let (want_b, want_b_stats) = exec::run(&plan, &b, 3);
        assert_eq!(batch.to_grid(0), want_a);
        assert_eq!(batch.to_grid(1), want_b);
        assert_eq!(batch.stats(1).counters, want_b_stats.counters);
        assert_eq!(batch.steps(0), 3);
        assert_eq!(batch.steps(1), 3);
    }

    #[test]
    #[should_panic(expected = "differs from the compiled plan")]
    fn batch_rejects_mixed_shapes() {
        let (plan, input) = plan_and_input([1, 44, 48]);
        let wrong = Grid::<f32>::smooth_random(2, [1, 30, 30]);
        let _ = Batch::new(&plan, &[input, wrong]);
    }

    #[test]
    #[should_panic(expected = "at least one session")]
    fn batch_rejects_empty_input_set() {
        let (plan, _) = plan_and_input([1, 40, 40]);
        let _ = Batch::<f32>::new(&plan, &[]);
    }
}
