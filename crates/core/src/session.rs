//! Persistent execution sessions: the retained-state API every driver
//! goes through.
//!
//! The paper's pipeline (layout exploration → morphing → 2:4 conversion
//! → kernel generation, §3–4) produces a plan that real workloads reuse
//! across thousands of time steps. A [`Simulation`] is the run-time
//! counterpart of that reuse: it owns the execution state — the
//! halo-padded ping-pong [`Grid`]s, the per-worker scratch pool, the
//! activity-counting engine — and steps it incrementally, so setup
//! (embedding, quantization, buffer allocation) is paid once per session
//! instead of once per `run` call, and the live field can be observed
//! between steps without stopping the run.
//!
//! # Ownership and lifetimes
//!
//! A session never copies the compiled plan on the borrowed path: the
//! backend holds `Cow<'p, CompiledStencil>`, so
//! [`Executor::session`](crate::pipeline::Executor::session) lends its
//! plan for `'p` (the session cannot outlive the executor), while
//! [`Executor::into_session`](crate::pipeline::Executor::into_session)
//! moves the plan in and yields a self-contained `Simulation<'static>` —
//! the form the baseline crates use to hand sessions across API
//! boundaries. Everything else (grids, scratch, counters) is owned by
//! the session outright; [`Simulation::load`] and [`Simulation::reset`]
//! rewrite that state in place, so reusing one session across many
//! inputs performs **zero** further heap allocations (asserted by
//! `tests/alloc_steady_state.rs`) — including the engine's staged
//! operand ring, which is sized from the plan at session construction
//! and never touched by `load`/`reset`.
//!
//! Sessions are **`Send`**: a `Simulation` (and every backend behind
//! it) can be moved to another thread, which is what lets an async or
//! streaming server hold one session per client and step it wherever
//! its scheduler runs. The boxed [`Backend`] and every probe closure
//! therefore carry a `Send` bound; a compile-time test pins
//! `Simulation: Send` so a backend that silently loses the property
//! fails the build, not a deployment.
//!
//! # Pluggable backends
//!
//! The stepping strategy is a [`Backend`] trait object, so one driver
//! runs any execution path interchangeably:
//!
//! - [`EngineBackend`] — the optimized halo-padded interior-only engine
//!   (see [`crate::exec`]'s module docs); zero allocations per step.
//! - [`NaiveBackend`] — the retained pre-refactor path, the equivalence
//!   oracle (`tests/exec_equivalence.rs` pins it bit-identical to the
//!   engine).
//! - The `sparstencil-baselines` crate plugs its seven comparison
//!   systems in through the same trait (pipeline-backed baselines as
//!   engine sessions over their fixed layouts, counter-model baselines
//!   as scalar-reference sessions).
//!
//! # Batched multi-session execution
//!
//! A [`Batch`] holds N sessions over **one** shared plan and steps them
//! all per [`Batch::step_all`] call through a **single** guided work
//! queue: the union of every session's z-sliding runs
//! ([`crate::plan::BatchWork`]) is drained by the worker lanes with no
//! barrier between sessions — a lane that finishes one session's last
//! run immediately claims the next session's first, so tail imbalance
//! in one session is absorbed by work from another. The claim unit is
//! one `(session, z-run)` pair, which keeps the staged ring's reuse
//! discipline intact across the batch (see [`crate::exec`]).
//!
//! ```text
//!            ┌────────── CompiledStencil (one plan, Cow-shared) ─────────┐
//!            │   ExecTables · StageSchedule · BatchWork(N)               │
//!            └──────────────────────────┬────────────────────────────────┘
//!                                       │ read-only
//!   Batch ──────────────────────────────┼────────────────────────────────┐
//!   step_all()  per-session buffers     │          one guided queue      │
//!               ┌───────────────────┐   │   runs: S0r0 S0r1 … S1r0 …     │
//!               │ S0  cur ⇄ next    │◄──┤        ▲        ▲              │
//!               │ S1  cur ⇄ next    │   │   lane 0 ring  lane 1 ring     │
//!               │ …                 │   │   (scratch is per-LANE, shared │
//!               │ SN  cur ⇄ next    │   │    across sessions — run       │
//!               └───────────────────┘   │    starts restage the window)  │
//!               + per-session counters, │                                │
//!                 initial snapshot      │                                │
//!   ────────────────────────────────────┴────────────────────────────────┘
//! ```
//!
//! Each session stays **bit-identical** to stepping it alone
//! (`tests/batch_exec.rs` pins grids and counters against solo
//! sessions), `step_all` performs zero steady-state heap allocations,
//! and [`Batch::session_mut`] hands out a [`BatchSession`] — the
//! per-session view with the familiar
//! `step`/`field`/`load`/`reset`/`stats` surface — so one member can be
//! observed, reloaded, or even stepped ahead individually between
//! batched steps.
//!
//! Membership is **dynamic**: [`Batch::admit`] appends a member and
//! [`Batch::retire`] swap-removes one, both re-tagging the arithmetic
//! work index ([`BatchWork::with_sessions`]) without rebuilding the
//! plan or touching any surviving member's buffers — the primitives a
//! serving layer's admission control is built on. [`Batch::pause`]
//! parks a member on the same SKIP path quarantine uses (backpressure
//! without state changes), and [`Batch::step_all_until`] drives the
//! whole fleet against a wall-clock deadline while folding per-step
//! latency into a fixed-bucket [`exec::LatencyHistogram`].
//!
//! # Halo protocol
//!
//! Two kinds of boundary bookkeeping keep every member's semantic band
//! current after a step, and both run **inside** the parallel region at
//! countdown-zero (the moment a member's last work item retires), so
//! neither costs a barrier or an allocation:
//!
//! - **Mirror segments** ([`crate::plan::ExecTables::mirror_segments`])
//!   serve true *domain* boundaries: the forward-window engine computes
//!   the valid region `[0, v)` per axis, and the mirror copies the edge
//!   rows of that region into the step-invariant band so a solo grid is
//!   seamless. Source and destination live in the **same** member's
//!   buffer.
//! - **Halo-exchange segments** ([`crate::plan::HaloSegment`]) serve
//!   *interior* shard faces when one semantic grid is decomposed across
//!   batch members ([`crate::plan::Decomposition`]): each shard's
//!   uncomputed band is owned — and freshly computed — by a neighbor
//!   shard, so the segment copies **across** members
//!   (`src_shard → dst_shard`, `next` buffer to `next` buffer). True
//!   domain faces of edge shards keep the mirror.
//!
//! ```text
//!        shard 0 (owns z < c)          shard 1 (owns z ≥ c)
//!   ┌──────────────────────────┐  ┌──────────────────────────┐
//!   │ mirror (domain face)     │  │ halo rows  ◄─── exchange │
//!   │ ▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒  │  │ ░░░░░░░░░░░░░░░░░░░│░░░  │
//!   │ computed interior        │  │ computed interior  │     │
//!   │                    │     │  │                    │     │
//!   │ halo rows ◄────────┼──── │──│── copied from next─┘     │
//!   │ ░░░░░░░░░░░░░░░░░░░┘░░░  │  │ ▒▒ mirror (domain face)  │
//!   └──────────────────────────┘  └──────────────────────────┘
//!      ▒ same-member copy            ░ cross-member copy
//! ```
//!
//! A [`crate::plan::HaloExchange`] is compiled once at plan time
//! ([`crate::plan::compile_halo_exchange`]) and installed with
//! [`Batch::install_halo_exchange`], which validates every segment
//! against the batch's real buffers — that validation is what makes the
//! executor's unchecked in-region copies sound. At run time each
//! destination shard carries an atomic countdown over its *gating*
//! members (its sources plus itself); the lane that retires the last
//! gate performs that destination's copies, release/acquire-ordered
//! after the sources' scatters and mirrors. Exchange-coupled batches
//! step **all-or-nothing** ([`Batch::step_all_coupled`]): if any member
//! poisons mid-step, *no* member publishes its `next` buffer, so a
//! fault never leaks a partially-exchanged field — the victim reports
//! [`SessionError::Poisoned`] and [`Batch::clear_fault`] (or a
//! checkpoint restore) resumes from the still-consistent `cur` state.
//! The `sparstencil-shard` crate packages this protocol behind a
//! single-simulation facade (`ShardedSimulation`) that stays
//! bit-identical to an unsharded session.
//!
//! # Observation
//!
//! [`Simulation::field`] returns a zero-copy [`FieldView`] of the
//! semantic grid inside the live buffer — no extraction, no boundary
//! pass (the engine's per-step boundary mirror keeps the semantic band
//! current, so the view is valid the moment a step returns).
//! [`Simulation::probe`] registers closures invoked every `k` steps with
//! the step number and that view: reductions, snapshots, and convergence
//! checks run mid-flight without breaking the zero-allocation steady
//! state of the stepper itself.
//!
//! # Failure model
//!
//! The session layer is the serving boundary, so every public entry
//! point has a fallible `try_*` form returning [`SessionError`] — the
//! typed taxonomy of everything that can go wrong at this layer:
//!
//! - [`SessionError::ShapeMismatch`] — an input grid's shape differs
//!   from the plan's compile-time shape (`try_load`, `try_new`).
//! - [`SessionError::EmptyBatch`] — a batch was constructed over zero
//!   inputs.
//! - [`SessionError::NonFiniteInput`] — a validated input contained
//!   NaN/Inf (the `try_*` constructors and loads scan; the unchecked
//!   `load` fast path does not, by design — it is the hot path).
//! - [`SessionError::Poisoned`] — a panic unwound inside a batched
//!   member's step; see below.
//! - [`SessionError::Quarantined`] — a member was sidelined by its
//!   [`HealthPolicy`] after producing non-finite outputs (or by an
//!   explicit [`Batch::quarantine`]).
//! - [`SessionError::ProbeMisuse`] — a probe registered with cadence 0.
//! - [`SessionError::EmptyCheckpoint`] / [`SessionError::Unsupported`] —
//!   checkpoint misuse (restoring from a never-filled [`Checkpoint`], or
//!   checkpointing a backend with no retained state path).
//!
//! The historical panicking methods remain as thin wrappers that
//! `panic!("{error}")` — same messages, one source of truth.
//!
//! **Numeric health.** Every engine step scans its stored outputs for
//! NaN/Inf inside the scatter (free of extra passes and allocations; see
//! [`crate::exec`]). The per-session [`HealthPolicy`] decides the
//! reaction: `Ignore` drops the verdict, `Record` (the default) counts
//! tainted steps in [`Health`], `Quarantine` additionally sidelines the
//! session — batched members sit out subsequent `step_all` calls (their
//! buffers frozen, the queue drained allocation-free) and solo
//! `try_step_n` returns the typed error. Quarantine is advisory, not
//! destructive: the tainted field is still observable, and
//! [`Simulation::restore`]/[`Batch::restore`] (or `load`/`reset`)
//! rewinds the member to health.
//!
//! **Poisoning.** A panic inside `step_all`'s parallel region is caught
//! at the claim boundary (one session's contiguous runs — see
//! [`crate::exec`]), so it marks only the owning member poisoned. The
//! guarantee for the surviving members is *bit-identity*: their runs all
//! execute, their boundary mirrors fire, and their grids and counters
//! are exactly what solo stepping would have produced
//! (`tests/fault_injection.rs` pins this). The poisoned member's
//! ping-pong buffers are **not** swapped — its visible field remains the
//! last consistent pre-step state, its counters exclude the failed step
//! — and it reports [`SessionError::Poisoned`] until a
//! `restore`/`load`/`reset` clears it.
//!
//! **Checkpoint/rollback.** [`Simulation::checkpoint`] snapshots the
//! live padded field plus counters into a caller-held [`Checkpoint`];
//! [`Simulation::checkpoint_into`] reuses the checkpoint's buffer on
//! every later call (zero steady-state allocations, same discipline as
//! [`Grid::embed_into`]). [`Simulation::restore`] rewinds the session —
//! field, counters, step count — to the snapshot and clears any
//! quarantine, which is the cheap recovery path for a sidelined member
//! (a `reset()` would lose all progress since load). Restore
//! *validates* the snapshot first: shape, fill, and a non-finite scan —
//! a checkpoint that captured a tainted field is rejected with
//! [`SessionError::NonFiniteInput`] instead of restored silently, so a
//! supervisor walking a checkpoint ring falls back to the next-older
//! snapshot rather than re-tripping quarantine one step later.
//!
//! **Supervision state machine.** The batch layer exposes the
//! mechanisms — SKIP-path sit-outs ([`Batch::pause`]), retire-and-swap
//! membership ([`Batch::admit`]/[`Batch::retire`]), validated
//! checkpoint/restore — and the `sparstencil-serve` crate's
//! `SessionManager` composes them into the serving-side member
//! lifecycle:
//!
//! ```text
//!             step_all: NaN output / panic            admin signal
//!                           │                              │
//!   ┌─────────┐      ┌──────▼──────────────┐               │
//!   │ healthy │─────►│ quarantined/poisoned│◄──────────────┘
//!   └────▲────┘      └──────┬──────────────┘
//!        │                  │ supervisor: restore newest finite
//!        │                  │ checkpoint in the ring
//!        │           ┌──────▼─────┐  solo catch-up to the pre-fault
//!        │           │ restoring  │  step count (session_mut), then
//!        │           └──────┬─────┘  an escalating paused sit-out
//!        │                  │
//!        │   rejoined ┌─────▼──────┐   retry budget exhausted
//!        └────────────┤ backoff    ├──────────► evicted (retire +
//!          (resume)   │ (paused)   │            typed reason to the
//!                     └────────────┘            tenant)
//! ```
//!
//! Every hop is a published `Batch` operation, so a custom supervisor
//! can implement a different policy over the same machine; the
//! guarantees that make the loop sound — survivors stay bit-identical
//! through faults, recovery, and membership churn — are pinned by
//! `tests/fault_injection.rs` and `tests/serve_soak.rs`.
//!
//! ```
//! use sparstencil::prelude::*;
//!
//! let kernel = StencilKernel::heat2d();
//! let shape = [1, 40, 40];
//! let exec = Executor::<f32>::new(&kernel, shape, &Options::default()).unwrap();
//! let input = Grid::<f32>::smooth_random(2, shape);
//!
//! let mut sim = exec.session(&input);
//! sim.probe(2, |step, field| {
//!     let mean: f64 = field.iter().map(|v| v as f64).sum::<f64>() / field.len() as f64;
//!     assert!(mean.is_finite(), "step {step}");
//! });
//! sim.step_n(6);
//! assert_eq!(sim.steps(), 6);
//! let stats = sim.stats().unwrap();
//! assert!(stats.counters.n_mma() > 0);
//! ```

use crate::exec::{self, RunStats};
use crate::grid::{FieldView, Grid};
use crate::plan::{BatchWork, CompiledStencil};
use sparstencil_mat::half::Precision;
use sparstencil_mat::Real;
use sparstencil_tcu::{Counters, Engine};
use std::borrow::Cow;
use std::sync::atomic::{AtomicU32, Ordering};

/// Everything that can go wrong at the session layer — the typed error
/// taxonomy behind every `try_*` entry point (see the
/// [module docs](self#failure-model)). The historical panicking methods
/// wrap these and `panic!` with the same `Display` messages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionError {
    /// An input grid's shape differs from the plan's compile-time shape
    /// (one batch shares one plan, and a plan is shape-specific).
    ShapeMismatch {
        /// The shape the plan (or checkpoint target) requires.
        expected: [usize; 3],
        /// The shape that was supplied.
        got: [usize; 3],
    },
    /// A batch was constructed over an empty input set.
    EmptyBatch,
    /// A validated input contained a NaN or infinity.
    NonFiniteInput {
        /// Batch member the input was destined for (0 for solo sessions).
        session: usize,
        /// Linear (`z`-major) index of the first non-finite cell.
        index: usize,
    },
    /// A panic unwound inside this batched member's step; its field is
    /// the last consistent pre-step state and it sits out further
    /// batched steps until restored/reloaded/reset.
    Poisoned {
        /// The poisoned batch member.
        session: usize,
    },
    /// The session was sidelined by [`HealthPolicy::Quarantine`] after
    /// producing non-finite outputs (or by an explicit
    /// [`Batch::quarantine`]).
    Quarantined {
        /// The quarantined batch member (0 for solo sessions).
        session: usize,
        /// The session's completed-step count when quarantine triggered.
        step: usize,
    },
    /// A probe was registered with cadence 0.
    ProbeMisuse,
    /// A restore was attempted from a [`Checkpoint`] never filled by a
    /// `checkpoint_into` call.
    EmptyCheckpoint,
    /// The operation is not supported by this backend.
    Unsupported {
        /// The backend's display name.
        backend: &'static str,
        /// What was attempted.
        what: &'static str,
    },
    /// A halo-exchange schedule did not fit the batch it was installed
    /// into: wrong member count, wrong buffer length, or a segment
    /// outside the padded buffers (see
    /// [`Batch::install_halo_exchange`]).
    HaloMismatch,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::ShapeMismatch { expected, got } => write!(
                f,
                "grid shape {got:?} differs from the compiled plan's shape {expected:?}"
            ),
            SessionError::EmptyBatch => write!(f, "a batch needs at least one session"),
            SessionError::NonFiniteInput { session, index } => write!(
                f,
                "input for session {session} contains a non-finite value at linear index {index}"
            ),
            SessionError::Poisoned { session } => write!(
                f,
                "session {session} is poisoned: a panic unwound inside its batched step"
            ),
            SessionError::Quarantined { session, step } => write!(
                f,
                "session {session} was quarantined at step {step} after producing \
                 non-finite values"
            ),
            SessionError::ProbeMisuse => write!(f, "probe cadence must be at least 1"),
            SessionError::EmptyCheckpoint => {
                write!(f, "cannot restore: the checkpoint was never filled")
            }
            SessionError::Unsupported { backend, what } => {
                write!(f, "{what} is not supported by the {backend} backend")
            }
            SessionError::HaloMismatch => write!(
                f,
                "halo-exchange schedule does not match the batch \
                 (member count, buffer length, or segment bounds)"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// Reaction to the executor's per-step numeric-health scan (NaN/Inf in
/// stored outputs — see [`crate::exec`]); set per session via
/// [`Simulation::set_health_policy`] / [`Batch::set_health_policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthPolicy {
    /// Drop the verdict entirely; [`Health`] stays empty.
    Ignore,
    /// Count tainted steps in [`Health`] but keep stepping (default —
    /// observability without behavior change).
    #[default]
    Record,
    /// As `Record`, and additionally sideline the session the moment a
    /// step stores a non-finite value: batched members sit out further
    /// `step_all` calls, solo `try_step_n` returns
    /// [`SessionError::Quarantined`]. Recover via
    /// `restore`/`load`/`reset`.
    Quarantine,
}

/// Per-session numeric-health record, maintained by the step drivers
/// according to the session's [`HealthPolicy`] and cleared by
/// `load`/`reset`/`restore`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Health {
    /// Steps whose stored outputs contained at least one non-finite
    /// value (since construction or the last `load`/`reset`/`restore`).
    pub nonfinite_steps: usize,
    /// Completed-step count at the first tainted step, if any.
    pub first_nonfinite_step: Option<usize>,
    /// Completed-step count when quarantine triggered, if it did.
    pub quarantined_at: Option<usize>,
}

impl Health {
    /// `true` if the session is currently sidelined.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined_at.is_some()
    }
}

/// A caller-held snapshot of one session's execution state: the live
/// (padded, quantized) field, the activity counters, and the step
/// count. Created empty with [`Checkpoint::new`]; filled by
/// [`Simulation::checkpoint_into`] / [`Batch::checkpoint_into`], which
/// reuse the buffer on every refill — repeated checkpoint/restore
/// cycles perform zero heap allocations after the first fill
/// (`tests/alloc_steady_state.rs` pins this).
///
/// A checkpoint is backend-private state: restore it only into a
/// session over the same plan it was taken from (a shape mismatch is
/// caught and reported; a same-shape different-plan restore is the
/// caller's responsibility, exactly like `load`ing an unrelated grid).
#[derive(Debug, Clone, Default)]
pub struct Checkpoint<R: Real> {
    /// Snapshot of the live buffer (padded for engine sessions, semantic
    /// for the naive backend); `None` until first filled.
    buf: Option<Grid<R>>,
    counters: Counters,
    steps: usize,
    dims: usize,
}

impl<R: Real> Checkpoint<R> {
    /// An empty checkpoint; the first `checkpoint_into` allocates its
    /// buffer, later refills reuse it.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` once a `checkpoint_into` call has filled this checkpoint.
    pub fn is_filled(&self) -> bool {
        self.buf.is_some()
    }

    /// The completed-step count captured at the snapshot.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

/// Refill `slot` with a copy of `src`, reusing the existing allocation
/// when the shape matches (the steady-state checkpoint path).
fn save_grid_into<R: Real>(src: &Grid<R>, slot: &mut Option<Grid<R>>) {
    match slot {
        Some(g) if g.shape() == src.shape() => {
            g.as_mut_slice().copy_from_slice(src.as_slice());
        }
        _ => *slot = Some(src.clone()),
    }
}

/// Shared restore gate: the snapshot must match the live buffer's shape
/// **and** hold only finite values. The content scan is what makes a
/// checkpoint ring walkable — a snapshot that happened to capture a
/// NaN-tainted field is reported as [`SessionError::NonFiniteInput`]
/// (with the snapshot's linear index) instead of restoring silently and
/// re-tripping quarantine one step later, so a supervisor can fall back
/// to the next-older snapshot. `session` names the restoring batch
/// member in the error (0 for solo sessions).
fn check_restore<R: Real>(
    ck: &Checkpoint<R>,
    live_shape: [usize; 3],
    session: usize,
) -> Result<&Grid<R>, SessionError> {
    let g = ck.buf.as_ref().ok_or(SessionError::EmptyCheckpoint)?;
    if g.shape() != live_shape {
        return Err(SessionError::ShapeMismatch {
            expected: live_shape,
            got: g.shape(),
        });
    }
    if let Some(index) = g.first_non_finite() {
        return Err(SessionError::NonFiniteInput { session, index });
    }
    Ok(g)
}

/// A pluggable execution strategy behind a [`Simulation`].
///
/// A backend owns the live state of one run — field buffers plus
/// whatever bookkeeping its stepping discipline needs — and advances it
/// one stencil time step at a time. The [`Simulation`] driver layers the
/// session services (step counting, probes, stats, reuse) on top, so
/// every backend gets them for free and every consumer drives every
/// backend through the same five calls.
pub trait Backend<R: Real> {
    /// Short display name ("engine", "naive", a baseline's name).
    fn name(&self) -> &'static str;

    /// Semantic grid shape `[nz, ny, nx]` of the simulated field.
    fn shape(&self) -> [usize; 3];

    /// Advance the field by one stencil time step.
    fn step(&mut self);

    /// Zero-copy view of the current semantic field.
    fn field(&self) -> FieldView<'_, R>;

    /// Replace the field with a new input (same shape) without
    /// reallocating, clearing accumulated activity.
    ///
    /// # Panics
    /// Panics if `input`'s shape differs from [`Backend::shape`].
    fn load(&mut self, input: &Grid<R>);

    /// Restore the initially loaded field and clear accumulated
    /// activity, without reallocating.
    fn reset(&mut self);

    /// Simulated-hardware statistics over `steps` executed steps.
    /// `None` for backends with no hardware model behind them (e.g. the
    /// baselines' scalar-reference sessions).
    fn stats(&self, steps: usize) -> Option<RunStats> {
        let _ = steps;
        None
    }

    /// `true` if the most recent [`Backend::step`] stored any
    /// non-finite output value. Backends without a health scan report
    /// `false` (never tainted), which the driver treats as "healthy".
    fn last_step_nonfinite(&self) -> bool {
        false
    }

    /// Snapshot the live field and counters into `ck`, reusing its
    /// buffer when already filled with a matching shape. Backends
    /// without retained-state access return
    /// [`SessionError::Unsupported`] (the default).
    fn save_state(&self, ck: &mut Checkpoint<R>) -> Result<(), SessionError> {
        let _ = ck;
        Err(SessionError::Unsupported {
            backend: self.name(),
            what: "checkpoint",
        })
    }

    /// Rewind the live field and counters to `ck`'s snapshot. Errors:
    /// [`SessionError::EmptyCheckpoint`] for a never-filled checkpoint,
    /// [`SessionError::ShapeMismatch`] for a snapshot from a
    /// differently-shaped session, [`SessionError::Unsupported`] for
    /// backends without retained-state access (the default).
    fn restore_state(&mut self, ck: &Checkpoint<R>) -> Result<(), SessionError> {
        let _ = ck;
        Err(SessionError::Unsupported {
            backend: self.name(),
            what: "checkpoint restore",
        })
    }

    /// Consume the backend and return the final semantic field. The
    /// default materializes a copy via [`Backend::field`]; backends
    /// whose live buffer *is* the semantic grid override this to move it
    /// out without copying.
    fn into_grid(self: Box<Self>) -> Grid<R> {
        self.field().to_grid()
    }
}

/// Shared [`Backend::load`] staging step: (re)materialize `slot` as
/// `input` embedded in the low corner of a `padded_shape` buffer,
/// quantized through `precision`. Reuses the existing allocation when
/// `slot` is already materialized with matching dimensionality; the
/// first call (or a dimensionality change) allocates it.
pub fn stage_initial<R: Real>(
    input: &Grid<R>,
    slot: &mut Option<Grid<R>>,
    padded_shape: [usize; 3],
    precision: Precision,
) {
    match slot {
        Some(init) if init.dims() == input.dims() => input.embed_into(init),
        _ => *slot = Some(input.embedded_in(padded_shape)),
    }
    slot.as_mut()
        .expect("just materialized")
        .quantize(precision);
}

/// Shared `reset` core of every engine-backed session (solo backend and
/// batch member alike): restore **both** ping-pong buffers from the
/// pristine snapshot — `cur` is the field, `next`'s copy seeds the
/// boundary cells exactly as `StepBuffers::new` did — and clear the
/// activity counters. One implementation is what keeps `load`/`reset`
/// bit-identical between a batch member and its solo twin
/// (`tests/batch_exec.rs` pins that identity).
fn rewind_to_initial<R: Real>(
    bufs: &mut exec::StepBuffers<R>,
    initial: &Option<Grid<R>>,
    engine: &mut Engine,
) {
    let initial = initial
        .as_ref()
        .expect("sessions that rewind retain their initial snapshot");
    bufs.cur.as_mut_slice().copy_from_slice(initial.as_slice());
    bufs.next.as_mut_slice().copy_from_slice(initial.as_slice());
    engine.counters = Counters::new();
}

/// Shared `load` core of every engine-backed session: shape check,
/// re-embed + re-quantize into the retained staging slot, record the
/// input's dimensionality, and rewind onto the new snapshot.
fn load_engine_session<R: Real>(
    plan: &CompiledStencil<R>,
    input: &Grid<R>,
    bufs: &mut exec::StepBuffers<R>,
    initial: &mut Option<Grid<R>>,
    dims: &mut usize,
    engine: &mut Engine,
) {
    assert_eq!(
        input.shape(),
        plan.grid_shape,
        "grid shape differs from the compiled plan"
    );
    stage_initial(input, initial, bufs.cur.shape(), plan.precision);
    *dims = input.dims();
    rewind_to_initial(bufs, initial, engine);
}

/// The optimized execution engine as a session backend: halo-padded
/// ping-pong buffers, plan-time gather tables, per-worker scratch,
/// guided partitioning, closed-form counters (see [`crate::exec`]).
/// After construction, [`Backend::step`] performs zero heap allocations.
pub struct EngineBackend<'p, R: Real> {
    plan: Cow<'p, CompiledStencil<R>>,
    engine: Engine,
    per_iter: Counters,
    bufs: exec::StepBuffers<R>,
    scratch: Vec<exec::WorkerScratch<R>>,
    /// Pristine padded+quantized input, kept for [`Backend::reset`] and
    /// reused as the embedding staging buffer by [`Backend::load`].
    /// `None` only for internal throwaway sessions (the one-shot `run`
    /// wrappers), which never rewind — skipping the snapshot spares them
    /// a full-grid clone.
    initial: Option<Grid<R>>,
    dims: usize,
    /// Verdict of the last step's scatter-folded health scan.
    last_nonfinite: bool,
}

impl<'p, R: Real> EngineBackend<'p, R> {
    /// Backend borrowing `plan`, with the pool-wide default lane count.
    ///
    /// # Panics
    /// Panics if the input shape differs from the plan's compile-time
    /// shape.
    pub fn new(plan: &'p CompiledStencil<R>, input: &Grid<R>) -> Self {
        Self::with_parallelism(plan, input, rayon::current_num_threads())
    }

    /// Backend borrowing `plan` with an explicit worker-lane count
    /// (scratch slots / guided-scheduler tasks); results and counters
    /// are identical for every lane count.
    ///
    /// # Panics
    /// Panics if the input shape differs from the plan's compile-time
    /// shape.
    pub fn with_parallelism(plan: &'p CompiledStencil<R>, input: &Grid<R>, lanes: usize) -> Self {
        Self::from_cow(Cow::Borrowed(plan), input, lanes, true)
    }

    /// Backend that owns its plan — a self-contained `'static` session
    /// state, used by the baseline crates to return sessions without a
    /// lender.
    pub fn owned(plan: CompiledStencil<R>, input: &Grid<R>) -> EngineBackend<'static, R> {
        EngineBackend::from_cow(Cow::Owned(plan), input, rayon::current_num_threads(), true)
    }

    /// One-shot internal variant for the `exec::run*` wrappers: skips
    /// the initial-state snapshot (the wrapper never calls
    /// `load`/`reset` before the first step), so a one-shot run pays no
    /// more setup than the pre-session engine did.
    pub(crate) fn throwaway(plan: &'p CompiledStencil<R>, input: &Grid<R>, lanes: usize) -> Self {
        Self::from_cow(Cow::Borrowed(plan), input, lanes, false)
    }

    fn from_cow(
        plan: Cow<'p, CompiledStencil<R>>,
        input: &Grid<R>,
        lanes: usize,
        retain_initial: bool,
    ) -> Self {
        assert_eq!(
            input.shape(),
            plan.grid_shape,
            "grid shape differs from the compiled plan"
        );
        let engine = Engine::new(plan.gpu.clone(), plan.precision);
        let per_iter = exec::iter_counters(&plan, &plan.geom, plan.grid_shape, true);
        let bufs = exec::StepBuffers::new(&plan, input);
        let scratch = exec::WorkerScratch::pool(&plan, lanes.max(1));
        let initial = retain_initial.then(|| bufs.cur.clone());
        Self {
            plan,
            engine,
            per_iter,
            bufs,
            scratch,
            initial,
            dims: input.dims(),
            last_nonfinite: false,
        }
    }
}

impl<R: Real> Backend<R> for EngineBackend<'_, R> {
    fn name(&self) -> &'static str {
        "engine"
    }

    fn shape(&self) -> [usize; 3] {
        self.plan.grid_shape
    }

    fn step(&mut self) {
        self.engine.counters.merge(&self.per_iter);
        // Output quantization happens inside the scatter (each value is
        // rounded as it is stored, exactly like the hardware's store
        // path); boundary cells were quantized once at load and are
        // re-mirrored, not recomputed.
        self.last_nonfinite = exec::step_into(
            &self.plan,
            &self.bufs.cur,
            &mut self.bufs.next,
            &mut self.scratch,
        );
        std::mem::swap(&mut self.bufs.cur, &mut self.bufs.next);
    }

    fn field(&self) -> FieldView<'_, R> {
        FieldView::windowed(&self.bufs.cur, self.dims, self.plan.grid_shape)
    }

    fn load(&mut self, input: &Grid<R>) {
        load_engine_session(
            &self.plan,
            input,
            &mut self.bufs,
            &mut self.initial,
            &mut self.dims,
            &mut self.engine,
        );
    }

    fn reset(&mut self) {
        rewind_to_initial(&mut self.bufs, &self.initial, &mut self.engine);
    }

    fn stats(&self, steps: usize) -> Option<RunStats> {
        Some(exec::finalize_stats(&self.plan, &self.engine, steps))
    }

    fn last_step_nonfinite(&self) -> bool {
        self.last_nonfinite
    }

    fn save_state(&self, ck: &mut Checkpoint<R>) -> Result<(), SessionError> {
        save_grid_into(&self.bufs.cur, &mut ck.buf);
        ck.counters = self.engine.counters;
        ck.dims = self.dims;
        Ok(())
    }

    fn restore_state(&mut self, ck: &Checkpoint<R>) -> Result<(), SessionError> {
        let snap = check_restore(ck, self.bufs.cur.shape(), 0)?;
        // Both buffers, like `rewind_to_initial`: `next`'s copy reseeds
        // the boundary cells the mirror reads from.
        self.bufs
            .cur
            .as_mut_slice()
            .copy_from_slice(snap.as_slice());
        self.bufs
            .next
            .as_mut_slice()
            .copy_from_slice(snap.as_slice());
        self.engine.counters = ck.counters;
        self.dims = ck.dims;
        self.last_nonfinite = false;
        Ok(())
    }
}

/// The retained pre-refactor execution path as a session backend: clones
/// the grid per step, counts every fragment MMA as it is issued. Kept as
/// the equivalence oracle — `tests/exec_equivalence.rs` pins it
/// bit-identical (grids and counters) to [`EngineBackend`].
pub struct NaiveBackend<'p, R: Real> {
    plan: Cow<'p, CompiledStencil<R>>,
    engine: Engine,
    per_iter: Counters,
    cur: Grid<R>,
    /// Pristine quantized input (see [`EngineBackend`]'s field docs:
    /// `None` only for internal throwaway sessions).
    initial: Option<Grid<R>>,
    dims: usize,
}

impl<'p, R: Real> NaiveBackend<'p, R> {
    /// Backend borrowing `plan`.
    ///
    /// # Panics
    /// Panics if the input shape differs from the plan's compile-time
    /// shape.
    pub fn new(plan: &'p CompiledStencil<R>, input: &Grid<R>) -> Self {
        Self::from_cow(Cow::Borrowed(plan), input, true)
    }

    /// Backend that owns its plan (see [`EngineBackend::owned`]).
    pub fn owned(plan: CompiledStencil<R>, input: &Grid<R>) -> NaiveBackend<'static, R> {
        NaiveBackend::from_cow(Cow::Owned(plan), input, true)
    }

    /// One-shot internal variant for `exec::run_naive` (see
    /// [`EngineBackend::throwaway`]).
    pub(crate) fn throwaway(plan: &'p CompiledStencil<R>, input: &Grid<R>) -> Self {
        Self::from_cow(Cow::Borrowed(plan), input, false)
    }

    fn from_cow(plan: Cow<'p, CompiledStencil<R>>, input: &Grid<R>, retain_initial: bool) -> Self {
        assert_eq!(
            input.shape(),
            plan.grid_shape,
            "grid shape differs from the compiled plan"
        );
        let engine = Engine::new(plan.gpu.clone(), plan.precision);
        // Traffic/launch accounting shares the closed-form helper with
        // the optimized engine; the fragment ops stay counted one by one
        // inside `step_naive` as the independent oracle.
        let per_iter = exec::iter_counters(&plan, &plan.geom, plan.grid_shape, false);
        let mut cur = input.clone();
        cur.quantize(plan.precision);
        let initial = retain_initial.then(|| cur.clone());
        Self {
            plan,
            engine,
            per_iter,
            cur,
            initial,
            dims: input.dims(),
        }
    }
}

impl<R: Real> Backend<R> for NaiveBackend<'_, R> {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn shape(&self) -> [usize; 3] {
        self.plan.grid_shape
    }

    fn step(&mut self) {
        self.engine.counters.merge(&self.per_iter);
        self.cur = exec::step_naive(&self.plan, &self.cur, &mut self.engine);
        if !matches!(self.plan.precision, Precision::Fp64) {
            self.cur.quantize(self.plan.precision);
        }
    }

    fn field(&self) -> FieldView<'_, R> {
        // Explicit dims: a `load` may change the input's dimensionality
        // while `cur`'s own metadata still carries the construction-time
        // value.
        FieldView::windowed(&self.cur, self.dims, self.plan.grid_shape)
    }

    fn load(&mut self, input: &Grid<R>) {
        assert_eq!(
            input.shape(),
            self.plan.grid_shape,
            "grid shape differs from the compiled plan"
        );
        stage_initial(
            input,
            &mut self.initial,
            self.cur.shape(),
            self.plan.precision,
        );
        self.dims = input.dims();
        self.reset();
    }

    fn reset(&mut self) {
        let initial = self
            .initial
            .as_ref()
            .expect("internal throwaway sessions never rewind");
        self.cur.as_mut_slice().copy_from_slice(initial.as_slice());
        self.engine.counters = Counters::new();
    }

    fn stats(&self, steps: usize) -> Option<RunStats> {
        Some(exec::finalize_stats(&self.plan, &self.engine, steps))
    }

    fn save_state(&self, ck: &mut Checkpoint<R>) -> Result<(), SessionError> {
        save_grid_into(&self.cur, &mut ck.buf);
        ck.counters = self.engine.counters;
        ck.dims = self.dims;
        Ok(())
    }

    fn restore_state(&mut self, ck: &Checkpoint<R>) -> Result<(), SessionError> {
        let snap = check_restore(ck, self.cur.shape(), 0)?;
        self.cur.as_mut_slice().copy_from_slice(snap.as_slice());
        self.engine.counters = ck.counters;
        self.dims = ck.dims;
        Ok(())
    }

    fn into_grid(self: Box<Self>) -> Grid<R> {
        // `cur` already is the semantic grid — move it out, unless a
        // dims-changing `load` left stale dimensionality metadata on it.
        if self.cur.dims() == self.dims {
            self.cur
        } else {
            self.field().to_grid()
        }
    }
}

/// A probe callback: receives the completed-step count and a zero-copy
/// view of the live field. `Send` so registering a probe never costs a
/// session its `Send`-ness (share state with a probe through `Mutex`,
/// atomics, or owned captures rather than `Rc`/`RefCell` references).
type ProbeFn<'p, R> = Box<dyn FnMut(usize, &FieldView<'_, R>) + Send + 'p>;

/// A registered observer: fires every `every` steps with the step number
/// and the live field view.
struct Probe<'p, R: Real> {
    every: usize,
    f: ProbeFn<'p, R>,
}

/// A persistent stencil-simulation session: retained execution state
/// stepped incrementally, observed mid-run, and reused across inputs.
///
/// Obtain one from [`Executor::session`](crate::pipeline::Executor::session)
/// (borrowing the executor's plan) or wrap any [`Backend`] directly with
/// [`Simulation::new`]. See the [module docs](self) for the ownership
/// story and the backend roster.
pub struct Simulation<'p, R: Real> {
    backend: Box<dyn Backend<R> + Send + 'p>,
    steps: usize,
    probes: Vec<Probe<'p, R>>,
    policy: HealthPolicy,
    health: Health,
}

impl<'p, R: Real> Simulation<'p, R> {
    /// Wrap a backend in a session driver.
    pub fn new(backend: impl Backend<R> + Send + 'p) -> Self {
        Self::from_boxed(Box::new(backend))
    }

    /// Wrap an already-boxed backend (for callers assembling `dyn`
    /// backends, e.g. a driver iterating over several of them). The
    /// `Send` bound keeps the whole session `Send`.
    pub fn from_boxed(backend: Box<dyn Backend<R> + Send + 'p>) -> Self {
        Self {
            backend,
            steps: 0,
            probes: Vec::new(),
            policy: HealthPolicy::default(),
            health: Health::default(),
        }
    }

    /// The backend's display name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Semantic grid shape `[nz, ny, nx]`.
    pub fn shape(&self) -> [usize; 3] {
        self.backend.shape()
    }

    /// Steps executed since construction / the last [`Simulation::load`]
    /// or [`Simulation::reset`].
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Register an observer invoked after every `every`-th step with the
    /// completed-step count and a zero-copy view of the live field.
    /// Probes stack (all matching probes fire, in registration order)
    /// and survive [`Simulation::load`]/[`Simulation::reset`].
    ///
    /// # Panics
    /// Panics if `every` is zero (use [`Simulation::try_probe`] for the
    /// fallible form).
    pub fn probe(&mut self, every: usize, f: impl FnMut(usize, &FieldView<'_, R>) + Send + 'p) {
        self.try_probe(every, f).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Simulation::probe`]: returns
    /// [`SessionError::ProbeMisuse`] for a zero cadence instead of
    /// panicking.
    pub fn try_probe(
        &mut self,
        every: usize,
        f: impl FnMut(usize, &FieldView<'_, R>) + Send + 'p,
    ) -> Result<(), SessionError> {
        if every == 0 {
            return Err(SessionError::ProbeMisuse);
        }
        self.probes.push(Probe {
            every,
            f: Box::new(f),
        });
        Ok(())
    }

    /// This session's [`HealthPolicy`] (default: [`HealthPolicy::Record`]).
    pub fn health_policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Set the reaction to the per-step numeric-health scan. Takes
    /// effect from the next step; does not retroactively quarantine.
    pub fn set_health_policy(&mut self, policy: HealthPolicy) {
        self.policy = policy;
    }

    /// The session's numeric-health record so far.
    pub fn health(&self) -> Health {
        self.health
    }

    /// Advance one time step (and fire any due probes).
    pub fn step(&mut self) {
        self.step_n(1);
    }

    /// Advance `n` time steps, firing due probes after each one. The
    /// stepping itself performs zero heap allocations on the engine
    /// backend; whatever a probe closure allocates is its own business.
    ///
    /// # Panics
    /// Panics if the session is quarantined under
    /// [`HealthPolicy::Quarantine`] — drive a quarantining session
    /// through [`Simulation::try_step_n`] instead.
    pub fn step_n(&mut self, n: usize) {
        self.try_step_n(n).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Simulation::step_n`]: steps until `n` steps completed
    /// or the session quarantines itself (per its [`HealthPolicy`]), in
    /// which case [`SessionError::Quarantined`] is returned — after the
    /// triggering step's probes fired (the tainted field is
    /// observable). Stepping an already-quarantined session returns the
    /// error immediately without advancing.
    pub fn try_step_n(&mut self, n: usize) -> Result<(), SessionError> {
        for _ in 0..n {
            if let Some(step) = self.health.quarantined_at {
                return Err(SessionError::Quarantined { session: 0, step });
            }
            self.backend.step();
            self.steps += 1;
            if self.backend.last_step_nonfinite() && self.policy != HealthPolicy::Ignore {
                self.health.nonfinite_steps += 1;
                if self.health.first_nonfinite_step.is_none() {
                    self.health.first_nonfinite_step = Some(self.steps);
                }
                if self.policy == HealthPolicy::Quarantine {
                    self.health.quarantined_at = Some(self.steps);
                }
            }
            self.fire_probes();
            if let Some(step) = self.health.quarantined_at {
                return Err(SessionError::Quarantined { session: 0, step });
            }
        }
        Ok(())
    }

    /// Fire every due probe for the just-completed step.
    fn fire_probes(&mut self) {
        if self.probes.is_empty() {
            return;
        }
        // Split borrows: the view reads `backend`, the closures live in
        // `probes` — disjoint fields.
        let Self {
            backend,
            probes,
            steps,
            ..
        } = self;
        let view = backend.field();
        for p in probes.iter_mut() {
            if *steps % p.every == 0 {
                (p.f)(*steps, &view);
            }
        }
    }

    /// Zero-copy view of the current semantic field — valid immediately
    /// after any step, no extraction pass.
    pub fn field(&self) -> FieldView<'_, R> {
        self.backend.field()
    }

    /// Materialize the current semantic field as an owned [`Grid`].
    pub fn to_grid(&self) -> Grid<R> {
        self.backend.field().to_grid()
    }

    /// Consume the session and return the final semantic field, moving
    /// the live buffer out without a copy where the backend allows it
    /// (the naive and reference paths; the padded engine extracts).
    pub fn into_grid(self) -> Grid<R> {
        self.backend.into_grid()
    }

    /// Start over on a new input of the same shape, reusing every buffer
    /// (no reallocation, unless the input's *dimensionality* changed,
    /// which re-materializes one staging buffer): the field is
    /// re-embedded and re-quantized, the step counter and activity
    /// counters are cleared, probes stay registered.
    ///
    /// # Panics
    /// Panics if `input`'s shape differs from the session's. This is
    /// the unchecked fast path: it does **not** scan the input for
    /// non-finite values (use [`Simulation::try_load`] for a validated
    /// load).
    pub fn load(&mut self, input: &Grid<R>) {
        self.backend.load(input);
        self.steps = 0;
        self.health = Health::default();
    }

    /// Fallible, validating [`Simulation::load`]: returns
    /// [`SessionError::ShapeMismatch`] on a wrong-shape input and
    /// [`SessionError::NonFiniteInput`] if the input contains NaN/Inf
    /// (the unchecked `load` skips that scan). On error the session is
    /// untouched.
    pub fn try_load(&mut self, input: &Grid<R>) -> Result<(), SessionError> {
        let expected = self.backend.shape();
        if input.shape() != expected {
            return Err(SessionError::ShapeMismatch {
                expected,
                got: input.shape(),
            });
        }
        if let Some(index) = input.first_non_finite() {
            return Err(SessionError::NonFiniteInput { session: 0, index });
        }
        self.load(input);
        Ok(())
    }

    /// Rewind to the initially loaded field (as of construction or the
    /// last [`Simulation::load`]), clearing steps, counters, and any
    /// quarantine. No reallocation.
    pub fn reset(&mut self) {
        self.backend.reset();
        self.steps = 0;
        self.health = Health::default();
    }

    /// Snapshot the live field, counters, and step count into a fresh
    /// [`Checkpoint`] (allocates its buffer; for the zero-allocation
    /// steady-state path, hold one checkpoint and refill it with
    /// [`Simulation::checkpoint_into`]).
    ///
    /// # Errors
    /// [`SessionError::Unsupported`] for backends without retained-state
    /// access (the engine and naive backends both support it).
    pub fn checkpoint(&self) -> Result<Checkpoint<R>, SessionError> {
        let mut ck = Checkpoint::new();
        self.checkpoint_into(&mut ck)?;
        Ok(ck)
    }

    /// Refill a caller-held [`Checkpoint`] with the current state,
    /// reusing its buffer when already filled (zero allocations after
    /// the first fill).
    ///
    /// # Errors
    /// As [`Simulation::checkpoint`].
    pub fn checkpoint_into(&self, ck: &mut Checkpoint<R>) -> Result<(), SessionError> {
        self.backend.save_state(ck)?;
        ck.steps = self.steps;
        Ok(())
    }

    /// Rewind the session — field, counters, step count — to a
    /// checkpoint taken from it earlier, clearing any quarantine: the
    /// cheap recovery path for a sidelined session (`reset` would lose
    /// all progress since load). No reallocation.
    ///
    /// # Errors
    /// [`SessionError::EmptyCheckpoint`] for a never-filled checkpoint,
    /// [`SessionError::ShapeMismatch`] for a snapshot of another shape,
    /// [`SessionError::NonFiniteInput`] for a snapshot holding NaN/Inf
    /// (restoring it would re-trip quarantine one step later — fall
    /// back to an older checkpoint instead), and
    /// [`SessionError::Unsupported`] for backends without
    /// retained-state access. On error the session is untouched.
    pub fn restore(&mut self, ck: &Checkpoint<R>) -> Result<(), SessionError> {
        self.backend.restore_state(ck)?;
        self.steps = ck.steps;
        self.health = Health::default();
        Ok(())
    }

    /// Accumulated simulated-hardware statistics over the session's
    /// steps so far. `None` for backends without a hardware model (the
    /// baselines' scalar-reference sessions).
    pub fn stats(&self) -> Option<RunStats> {
        self.backend.stats(self.steps)
    }
}

/// Per-session execution state a [`Batch`] keeps beside the buffer
/// table: the activity-counting engine, the pristine-input snapshot for
/// `load`/`reset`, and the session's own step count (sessions may be
/// stepped ahead individually through [`BatchSession`]).
struct SessionState<R: Real> {
    engine: Engine,
    /// Pristine padded+quantized input (see [`EngineBackend`]'s field
    /// docs); always retained — batches exist to be reused.
    initial: Option<Grid<R>>,
    steps: usize,
    dims: usize,
    policy: HealthPolicy,
    health: Health,
    /// A panic unwound inside this member's batched step; its buffers
    /// hold the last consistent pre-step state, un-swapped.
    poisoned: bool,
    /// Administratively parked ([`Batch::pause`]): the member sits out
    /// `step_all` through the same SKIP path as a quarantined member,
    /// but is *not* faulted — solo access stays open, and recovery
    /// paths (`load`/`reset`/`restore`) do not resume it.
    paused: bool,
}

impl<R: Real> SessionState<R> {
    /// `true` if this member participates in batched steps.
    fn active(&self) -> bool {
        !self.poisoned && !self.paused && self.health.quarantined_at.is_none()
    }

    /// Apply the per-step health verdict under this member's policy
    /// (shared by `step_all`'s post-pass and the solo view's stepper).
    fn note_step_health(&mut self, nonfinite: bool) {
        if !nonfinite || self.policy == HealthPolicy::Ignore {
            return;
        }
        self.health.nonfinite_steps += 1;
        if self.health.first_nonfinite_step.is_none() {
            self.health.first_nonfinite_step = Some(self.steps);
        }
        if self.policy == HealthPolicy::Quarantine {
            self.health.quarantined_at = Some(self.steps);
        }
    }

    /// Clear poison/quarantine (recovery via restore/load/reset).
    fn clear_faults(&mut self) {
        self.poisoned = false;
        self.health = Health::default();
    }

    /// The typed error a sick member reports, if any.
    fn error(&self, i: usize) -> Option<SessionError> {
        if self.poisoned {
            return Some(SessionError::Poisoned { session: i });
        }
        self.health
            .quarantined_at
            .map(|step| SessionError::Quarantined { session: i, step })
    }
}

/// N simulation sessions over one shared compiled plan, stepped
/// together through a single guided work queue.
///
/// Construction embeds and quantizes every input once (one halo-padded
/// ping-pong buffer pair per session) and builds the session-tagged
/// run index ([`BatchWork`]) once; [`Batch::step_all`] then advances
/// **every** session by one time step with zero heap allocations,
/// dispatching the union of all sessions' z-sliding runs to the lanes —
/// no barrier between sessions, no per-session dispatch overhead. See
/// the [module docs](self) for the ownership diagram and the
/// bit-identity guarantee versus solo stepping.
///
/// Obtain one from [`Executor::batch`](crate::pipeline::Executor::batch)
/// (borrowing the executor's plan) or [`Batch::new`] over a compiled
/// plan. Per-session access goes through [`Batch::field`],
/// [`Batch::load`], [`Batch::stats`], or the full per-session view
/// [`Batch::session_mut`].
pub struct Batch<'p, R: Real> {
    plan: Cow<'p, CompiledStencil<R>>,
    work: BatchWork,
    /// Per-session buffer table: `bufs[i]` are session `i`'s ping-pong
    /// grids, the `&mut [StepBuffers]` view the batch stepper takes.
    bufs: Vec<exec::StepBuffers<R>>,
    state: Vec<SessionState<R>>,
    /// Per-lane staged-ring scratch, shared by all sessions (a claimed
    /// run re-stages its full window at its start, so rings never carry
    /// state across sessions or steps).
    scratch: Vec<exec::WorkerScratch<R>>,
    /// Reusable raw buffer-binding table for the batch stepper; cleared
    /// between steps, capacity reserved once.
    ptrs: Vec<exec::SessionPtrs<R>>,
    /// Per-session run countdown: the lane retiring a session's last
    /// run mirrors its boundary band inside the parallel region (cache-
    /// warm) instead of a serial post-pass. Reset every step.
    pending: Vec<AtomicU32>,
    /// Per-session health flags for the in-flight step (skip / poisoned
    /// / non-finite bits, see `exec::health`), driven by the same lanes
    /// as `pending`. Reset every step.
    flags: Vec<AtomicU32>,
    /// Plan-time halo-exchange schedule, when this batch is one sharded
    /// job rather than independent tenants (see the "Halo protocol"
    /// section of the [module docs](self)). Installed by
    /// [`Batch::install_halo_exchange`].
    exchange: Option<crate::plan::HaloExchange>,
    /// Per-destination exchange dependency countdown, armed to
    /// [`crate::plan::HaloExchange::deps`] every step. Empty until an
    /// exchange is installed.
    xpending: Vec<AtomicU32>,
    per_iter: Counters,
}

impl<'p, R: Real> Batch<'p, R> {
    /// A batch borrowing `plan`, one session per input, with the
    /// pool-wide default lane count.
    ///
    /// # Panics
    /// Panics if `inputs` is empty, any input's shape differs from the
    /// plan's compile-time shape (mixed-shape batches are rejected: one
    /// batch shares one plan, and a plan is shape-specific), or any
    /// input contains a non-finite value. [`Batch::try_new`] is the
    /// fallible form.
    pub fn new(plan: &'p CompiledStencil<R>, inputs: &[Grid<R>]) -> Self {
        Self::try_new(plan, inputs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Batch::new`]: [`SessionError::EmptyBatch`] for zero
    /// inputs, [`SessionError::ShapeMismatch`] for a wrong-shape input,
    /// [`SessionError::NonFiniteInput`] for an input containing
    /// NaN/Inf.
    pub fn try_new(plan: &'p CompiledStencil<R>, inputs: &[Grid<R>]) -> Result<Self, SessionError> {
        Self::try_with_parallelism(plan, inputs, rayon::current_num_threads())
    }

    /// [`Batch::new`] with an explicit worker-lane count; results and
    /// counters are identical for every lane count.
    ///
    /// # Panics
    /// As [`Batch::new`].
    pub fn with_parallelism(
        plan: &'p CompiledStencil<R>,
        inputs: &[Grid<R>],
        lanes: usize,
    ) -> Self {
        Self::try_with_parallelism(plan, inputs, lanes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Batch::with_parallelism`] (errors as
    /// [`Batch::try_new`]).
    pub fn try_with_parallelism(
        plan: &'p CompiledStencil<R>,
        inputs: &[Grid<R>],
        lanes: usize,
    ) -> Result<Self, SessionError> {
        Self::try_from_cow(Cow::Borrowed(plan), inputs, lanes)
    }

    /// A batch that owns its plan — a self-contained `'static` batch,
    /// the form to store in long-lived serving state.
    ///
    /// # Panics
    /// As [`Batch::new`].
    pub fn owned(plan: CompiledStencil<R>, inputs: &[Grid<R>]) -> Batch<'static, R> {
        Batch::try_owned(plan, inputs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Batch::owned`] (errors as [`Batch::try_new`]).
    pub fn try_owned(
        plan: CompiledStencil<R>,
        inputs: &[Grid<R>],
    ) -> Result<Batch<'static, R>, SessionError> {
        Batch::try_owned_with_parallelism(plan, inputs, rayon::current_num_threads())
    }

    /// Fallible [`Batch::owned`] with an explicit worker-lane count
    /// (errors as [`Batch::try_new`]); results and counters are
    /// identical for every lane count.
    pub fn try_owned_with_parallelism(
        plan: CompiledStencil<R>,
        inputs: &[Grid<R>],
        lanes: usize,
    ) -> Result<Batch<'static, R>, SessionError> {
        Batch::try_from_cow(Cow::Owned(plan), inputs, lanes)
    }

    fn try_from_cow(
        plan: Cow<'p, CompiledStencil<R>>,
        inputs: &[Grid<R>],
        lanes: usize,
    ) -> Result<Self, SessionError> {
        if inputs.is_empty() {
            return Err(SessionError::EmptyBatch);
        }
        for (session, input) in inputs.iter().enumerate() {
            if input.shape() != plan.grid_shape {
                return Err(SessionError::ShapeMismatch {
                    expected: plan.grid_shape,
                    got: input.shape(),
                });
            }
            if let Some(index) = input.first_non_finite() {
                return Err(SessionError::NonFiniteInput { session, index });
            }
        }
        let per_iter = exec::iter_counters(&plan, &plan.geom, plan.grid_shape, true);
        let work = plan.exec.batch_work(inputs.len());
        let bufs: Vec<exec::StepBuffers<R>> = inputs
            .iter()
            .map(|input| exec::StepBuffers::new(&plan, input))
            .collect();
        let state = inputs
            .iter()
            .zip(&bufs)
            .map(|(input, b)| SessionState {
                engine: Engine::new(plan.gpu.clone(), plan.precision),
                initial: Some(b.cur.clone()),
                steps: 0,
                dims: input.dims(),
                policy: HealthPolicy::default(),
                health: Health::default(),
                poisoned: false,
                paused: false,
            })
            .collect();
        let scratch = exec::WorkerScratch::pool(&plan, lanes.max(1));
        let ptrs = Vec::with_capacity(inputs.len());
        let pending = (0..inputs.len()).map(|_| AtomicU32::new(0)).collect();
        let flags = (0..inputs.len()).map(|_| AtomicU32::new(0)).collect();
        Ok(Self {
            plan,
            work,
            bufs,
            state,
            scratch,
            ptrs,
            pending,
            flags,
            exchange: None,
            xpending: Vec::new(),
            per_iter,
        })
    }

    /// Install a plan-time halo-exchange schedule
    /// ([`crate::plan::compile_halo_exchange`]), turning this batch's
    /// members from independent tenants into the shards of **one**
    /// cooperating job: every subsequent step runs through
    /// [`Batch::step_all_coupled`] semantics, and after each member's
    /// scatter + mirror completes, the schedule's
    /// [`crate::plan::HaloSegment`]s copy freshly stepped neighbor data
    /// into each shard's halo — inside the parallel region,
    /// allocation-free (see the "Halo protocol" module docs).
    ///
    /// Membership churn is frozen while an exchange is installed:
    /// [`Batch::admit`] returns [`SessionError::Unsupported`] and
    /// [`Batch::retire`] panics (the schedule's shard indices would
    /// dangle). Solo member views ([`Batch::session_mut`]) are refused
    /// for the same reason — stepping one shard alone would desynchronize
    /// the job.
    ///
    /// # Errors
    /// [`SessionError::HaloMismatch`] if the schedule was compiled for
    /// a different member count or buffer geometry, or any segment is
    /// out of bounds / self-referential / length-mismatched. The
    /// exchange executes segments unchecked, so this gate is what makes
    /// that sound.
    pub fn install_halo_exchange(
        &mut self,
        hx: crate::plan::HaloExchange,
    ) -> Result<(), SessionError> {
        let n = self.sessions();
        let buf_len = self.bufs[0].cur.as_slice().len();
        if hx.sessions() != n || hx.buf_len() != buf_len {
            return Err(SessionError::HaloMismatch);
        }
        for seg in hx.segments() {
            let ok = seg.src_shard < n
                && seg.dst_shard < n
                && seg.src_shard != seg.dst_shard
                && seg.src_range.len() == seg.dst_range.len()
                && seg.src_range.end <= buf_len
                && seg.dst_range.end <= buf_len
                && seg.src_range.start <= seg.src_range.end
                && seg.dst_range.start <= seg.dst_range.end;
            if !ok {
                return Err(SessionError::HaloMismatch);
            }
        }
        if self.xpending.len() != n {
            self.xpending = (0..n).map(|_| AtomicU32::new(0)).collect();
        }
        self.exchange = Some(hx);
        Ok(())
    }

    /// The installed halo-exchange schedule, if any.
    pub fn halo_exchange(&self) -> Option<&crate::plan::HaloExchange> {
        self.exchange.as_ref()
    }

    /// Admit one more member mid-flight: validate `input` (shape check
    /// plus non-finite scan, as [`Batch::try_new`] does), append a
    /// fresh ping-pong buffer pair and session state, and re-tag the
    /// work index ([`BatchWork::with_sessions`] — pure arithmetic). The
    /// shared plan and every existing member's buffers are untouched;
    /// admission is the only allocating membership operation (the new
    /// member's buffers plus binding-table headroom), and `step_all`
    /// stays allocation-free afterwards.
    ///
    /// The new member occupies the returned slot (the previous
    /// [`Batch::sessions`] count) at zero steps — catch it up to the
    /// rest of the batch through [`Batch::session_mut`] if the workload
    /// needs aligned step counts.
    ///
    /// # Errors
    /// [`SessionError::ShapeMismatch`],
    /// [`SessionError::NonFiniteInput`], or
    /// [`SessionError::Unsupported`] when a halo exchange is installed
    /// (a sharded job has a fixed topology); on error the batch is
    /// untouched.
    pub fn admit(&mut self, input: &Grid<R>) -> Result<usize, SessionError> {
        if self.exchange.is_some() {
            return Err(SessionError::Unsupported {
                backend: "sharded batch",
                what: "membership churn",
            });
        }
        let session = self.bufs.len();
        if input.shape() != self.plan.grid_shape {
            return Err(SessionError::ShapeMismatch {
                expected: self.plan.grid_shape,
                got: input.shape(),
            });
        }
        if let Some(index) = input.first_non_finite() {
            return Err(SessionError::NonFiniteInput { session, index });
        }
        let bufs = exec::StepBuffers::new(&self.plan, input);
        self.state.push(SessionState {
            engine: Engine::new(self.plan.gpu.clone(), self.plan.precision),
            initial: Some(bufs.cur.clone()),
            steps: 0,
            dims: input.dims(),
            policy: HealthPolicy::default(),
            health: Health::default(),
            poisoned: false,
            paused: false,
        });
        self.bufs.push(bufs);
        self.pending.push(AtomicU32::new(0));
        self.flags.push(AtomicU32::new(0));
        // The raw binding table is empty between steps; keep its
        // *capacity* ahead of the member count so the next `step_all`'s
        // refill performs no allocation.
        self.ptrs.reserve(self.bufs.len());
        self.work = self.work.with_sessions(self.bufs.len());
        Ok(session)
    }

    /// Retire member `i` by swap-removal: its buffers are dropped, the
    /// member formerly at the **last** slot moves into slot `i` (when
    /// `i` was not last), and the work index is re-tagged for the new
    /// count — no plan rebuild, no copy of any surviving member's
    /// buffers (`swap_remove` moves the `StepBuffers` struct; the grids'
    /// heap storage stays where it is). Callers that key members by
    /// slot index must re-map the moved member — that is what
    /// `sparstencil-serve`'s `SessionManager` does with its tenant
    /// table.
    ///
    /// Any member may be retired in any state (healthy, paused, or
    /// faulted); retiring the last member leaves a valid empty batch —
    /// [`Batch::step_all`] becomes a no-op until an
    /// [`Batch::admit`] repopulates it (only *construction* over zero
    /// inputs is rejected).
    ///
    /// # Panics
    /// Panics if `i` is out of range, or if a halo exchange is
    /// installed (the schedule's shard indices would dangle — a sharded
    /// job has a fixed topology).
    pub fn retire(&mut self, i: usize) {
        assert!(
            self.exchange.is_none(),
            "cannot retire a shard from a halo-exchanging batch"
        );
        assert!(i < self.bufs.len(), "no batch member {i} to retire");
        self.bufs.swap_remove(i);
        self.state.swap_remove(i);
        self.pending.swap_remove(i);
        self.flags.swap_remove(i);
        self.work = self.work.with_sessions(self.bufs.len());
    }

    /// Administratively park member `i`: it sits out subsequent
    /// [`Batch::step_all`] calls through the same SKIP path as a
    /// quarantined member (buffers frozen, queue drained
    /// allocation-free) but is **not** faulted — [`Batch::session_mut`]
    /// still hands out its view, and recovery paths
    /// (`load`/`reset`/`restore`) do not resume it. This is the
    /// backpressure primitive: a serving layer pauses a tenant at its
    /// step budget or in a post-recovery sit-out without touching its
    /// state.
    pub fn pause(&mut self, i: usize) {
        self.state[i].paused = true;
    }

    /// Re-admit a paused member to batched stepping (no-op when not
    /// paused).
    pub fn resume(&mut self, i: usize) {
        self.state[i].paused = false;
    }

    /// `true` iff member `i` is administratively paused.
    pub fn is_paused(&self, i: usize) -> bool {
        self.state[i].paused
    }

    /// Number of sessions in the batch.
    pub fn sessions(&self) -> usize {
        self.bufs.len()
    }

    /// Semantic grid shape `[nz, ny, nx]`, shared by every session.
    pub fn shape(&self) -> [usize; 3] {
        self.plan.grid_shape
    }

    /// The shared compiled plan.
    pub fn plan(&self) -> &CompiledStencil<R> {
        &self.plan
    }

    /// Steps executed by session `i` since construction or its last
    /// [`Batch::load`]/reset.
    pub fn steps(&self, i: usize) -> usize {
        self.state[i].steps
    }

    /// Advance every **active** session by one time step through the
    /// single guided queue. Allocation-free after construction.
    ///
    /// Degraded mode: quarantined and poisoned members are skipped (the
    /// guided queue drains their claims without executing — their
    /// fields, steps and counters do not move) while the remaining
    /// members step exactly as in a full batch, bit-identical to solo
    /// twins. A member whose claim panics during this step is poisoned:
    /// its half-written `next` buffer is discarded (never swapped in)
    /// so its visible field stays at the pre-step state. A member whose
    /// step produces non-finite values is recorded or quarantined per
    /// its [`HealthPolicy`] — its step *did* complete (the tainted
    /// field is swapped in), matching solo semantics.
    ///
    /// With a halo exchange installed the batch is one cooperating job,
    /// and this delegates to [`Batch::step_all_coupled`] (all-or-nothing
    /// semantics), discarding the typed error — query
    /// [`Batch::error`] afterwards, or call the coupled form directly.
    pub fn step_all(&mut self) {
        if self.exchange.is_some() {
            let _ = self.step_all_coupled();
            return;
        }
        // A batch drained by retires has nothing to dispatch (and the
        // guided queue is not built for zero groups).
        if self.bufs.is_empty() {
            return;
        }
        // Publish skip flags for inactive members before the dispatch;
        // the store below is the only write lanes can observe (flags
        // were zeroed by the previous step's post-pass / construction).
        for (st, flags) in self.state.iter().zip(&self.flags) {
            if !st.active() {
                flags.store(exec::health::SKIP, Ordering::Relaxed);
            }
        }
        self.inject_faults();
        exec::step_all_into(
            &self.plan,
            &self.work,
            &mut self.bufs,
            &mut self.scratch,
            &mut self.ptrs,
            &self.pending,
            &self.flags,
            None,
            &self.xpending,
        );
        for ((sb, st), flags) in self.bufs.iter_mut().zip(&mut self.state).zip(&self.flags) {
            let f = flags.swap(0, Ordering::Relaxed);
            if f & exec::health::SKIP != 0 {
                continue; // inactive member: untouched this step
            }
            if f & exec::health::POISONED != 0 {
                // The step never completed: discard the partial `next`
                // buffer (no swap), freeze steps and counters.
                st.poisoned = true;
                continue;
            }
            st.engine.counters.merge(&self.per_iter);
            std::mem::swap(&mut sb.cur, &mut sb.next);
            st.steps += 1;
            st.note_step_health(f & exec::health::NONFINITE != 0);
        }
    }

    /// Apply any armed one-shot fault injections (no-op without the
    /// `fault-inject` feature).
    fn inject_faults(&mut self) {
        #[cfg(feature = "fault-inject")]
        for (i, sb) in self.bufs.iter_mut().enumerate() {
            if exec::fault::take_nan(i) {
                let sh = sb.cur.shape();
                let nan = R::from_f64(f64::NAN);
                sb.cur.set(sh[0] / 2, sh[1] / 2, sh[2] / 2, nan);
            }
        }
    }

    /// Advance every member by one time step as **one cooperating
    /// job**, all-or-nothing: either every member completes the step
    /// (buffers swap, steps advance) or — if any member's claim panics —
    /// **no** member's field moves and the typed fault is returned.
    /// This is the stepping discipline of a sharded batch (members
    /// exchange halo data mid-step, so a partial step would leave
    /// shards at different times), but works on any batch. Runs the
    /// installed halo exchange, if any, inside the parallel region.
    /// Allocation-free after construction.
    ///
    /// On [`SessionError::Poisoned`], every member's visible field —
    /// including the victim's — is the consistent pre-step state (the
    /// half-written and halo-polluted `next` buffers are all
    /// discarded), so there is **no partial-step corruption** to clean
    /// up: recover the victim with [`Batch::clear_fault`] (resume from
    /// the pre-step state) or rewind the whole job via
    /// [`Batch::restore`]/[`Batch::reset`].
    ///
    /// # Errors
    /// [`SessionError::EmptyBatch`] for a drained batch;
    /// [`SessionError::Poisoned`]/[`SessionError::Quarantined`] if a
    /// member is already faulted (coupled stepping needs every member —
    /// recover or reset first) or when this step's panic poisons one;
    /// [`SessionError::Unsupported`] if a member is paused.
    pub fn step_all_coupled(&mut self) -> Result<(), SessionError> {
        if self.bufs.is_empty() {
            return Err(SessionError::EmptyBatch);
        }
        for (i, st) in self.state.iter().enumerate() {
            if let Some(e) = st.error(i) {
                return Err(e);
            }
            if st.paused {
                return Err(SessionError::Unsupported {
                    backend: "coupled batch",
                    what: "stepping with a paused member",
                });
            }
        }
        self.inject_faults();
        exec::step_all_into(
            &self.plan,
            &self.work,
            &mut self.bufs,
            &mut self.scratch,
            &mut self.ptrs,
            &self.pending,
            &self.flags,
            self.exchange.as_ref(),
            &self.xpending,
        );
        // All-or-nothing post-pass: find any poison before touching any
        // member, so a fault freezes the whole job at pre-step state.
        let poisoned = self
            .flags
            .iter()
            .position(|f| f.load(Ordering::Relaxed) & exec::health::POISONED != 0);
        for ((sb, st), flags) in self.bufs.iter_mut().zip(&mut self.state).zip(&self.flags) {
            let f = flags.swap(0, Ordering::Relaxed);
            if poisoned.is_some() {
                // No member swaps: every `next` buffer (including
                // halo-exchanged neighbor data sourced from the
                // victim) is discarded, every `cur` is pre-step.
                if f & exec::health::POISONED != 0 {
                    st.poisoned = true;
                }
                continue;
            }
            st.engine.counters.merge(&self.per_iter);
            std::mem::swap(&mut sb.cur, &mut sb.next);
            st.steps += 1;
            st.note_step_health(f & exec::health::NONFINITE != 0);
        }
        match poisoned {
            Some(session) => Err(SessionError::Poisoned { session }),
            None => Ok(()),
        }
    }

    /// Clear member `i`'s poisoned/quarantined status **without**
    /// rewinding its field. Sound because a faulted member's visible
    /// buffers always hold the last consistent pre-fault state (a
    /// poisoned step's partial output is never swapped in), so clearing
    /// the flag simply resumes from there — the recovery path for a
    /// coupled job aborted by [`Batch::step_all_coupled`], where every
    /// member (victim included) froze at the same step. A paused member
    /// stays paused.
    pub fn clear_fault(&mut self, i: usize) {
        self.state[i].clear_faults();
    }

    /// Advance every session by `n` time steps.
    pub fn step_all_n(&mut self, n: usize) {
        for _ in 0..n {
            self.step_all();
        }
    }

    /// Deadline-aware stepping: repeat [`Batch::step_all`] until the
    /// wall clock reaches `deadline`, folding each step's wall time
    /// into `hist` (see [`exec::LatencyHistogram`] — fixed buckets,
    /// zero allocations). Returns the number of completed steps.
    ///
    /// The deadline is checked **between** steps: a step in flight runs
    /// to completion (aborting one mid-dispatch would break the
    /// bit-identity guarantee), so the loop can overshoot the deadline
    /// by at most one step's latency — which is exactly what the
    /// recorded histogram quantifies. A deadline already in the past
    /// performs no steps.
    pub fn step_all_until(
        &mut self,
        deadline: std::time::Instant,
        hist: &mut exec::LatencyHistogram,
    ) -> usize {
        let mut steps = 0;
        loop {
            let now = std::time::Instant::now();
            if now >= deadline {
                return steps;
            }
            self.step_all();
            hist.record(now.elapsed());
            steps += 1;
        }
    }

    /// Zero-copy view of session `i`'s current semantic field.
    pub fn field(&self, i: usize) -> FieldView<'_, R> {
        FieldView::windowed(&self.bufs[i].cur, self.state[i].dims, self.plan.grid_shape)
    }

    /// Materialize session `i`'s current semantic field.
    pub fn to_grid(&self, i: usize) -> Grid<R> {
        self.field(i).to_grid()
    }

    /// Session `i`'s accumulated simulated-hardware statistics.
    pub fn stats(&self, i: usize) -> RunStats {
        exec::finalize_stats(&self.plan, &self.state[i].engine, self.state[i].steps)
    }

    /// Replace session `i`'s field with a new input of the same shape,
    /// reusing its buffers (no reallocation) and clearing its step and
    /// activity counters — including any poisoned/quarantined status,
    /// so `load` is one of the two recovery paths (the other is
    /// [`Batch::restore`]). Other sessions are untouched.
    ///
    /// Like [`Simulation::load`] this is the unchecked fast path: the
    /// input is **not** scanned for non-finite values.
    ///
    /// # Panics
    /// Panics if `input`'s shape differs from the plan's.
    pub fn load(&mut self, i: usize, input: &Grid<R>) {
        self.member(i).load(input);
    }

    /// Rewind every session to its initially loaded field, clearing
    /// steps, counters and any poisoned/quarantined status. No
    /// reallocation.
    pub fn reset(&mut self) {
        for i in 0..self.sessions() {
            self.member(i).reset();
        }
    }

    /// Per-session view without a health gate — the internal form used
    /// by recovery paths (`load`/`reset`/`restore`), which must reach
    /// poisoned and quarantined members.
    fn member(&mut self, i: usize) -> BatchSession<'_, R> {
        BatchSession {
            plan: &self.plan,
            per_iter: &self.per_iter,
            bufs: &mut self.bufs[i],
            state: &mut self.state[i],
            scratch: &mut self.scratch,
        }
    }

    /// Mutable per-session view: the familiar session surface
    /// (`step`/`field`/`load`/`reset`/`stats`) over one member, sharing
    /// the batch's plan and lane scratch. Stepping through the view
    /// advances only that session — useful for catching a freshly
    /// loaded member up to the rest of the batch.
    ///
    /// # Panics
    /// Panics if the member is poisoned or quarantined
    /// ([`Batch::try_session_mut`] is the fallible form; recover the
    /// member first via [`Batch::load`], [`Batch::reset`] or
    /// [`Batch::restore`]).
    pub fn session_mut(&mut self, i: usize) -> BatchSession<'_, R> {
        self.try_session_mut(i).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Batch::session_mut`]: [`SessionError::Poisoned`] or
    /// [`SessionError::Quarantined`] when the member is faulted,
    /// [`SessionError::Unsupported`] when a halo exchange is installed
    /// (solo-stepping one shard would desynchronize the coupled job).
    pub fn try_session_mut(&mut self, i: usize) -> Result<BatchSession<'_, R>, SessionError> {
        if self.exchange.is_some() {
            return Err(SessionError::Unsupported {
                backend: "sharded batch",
                what: "solo member stepping",
            });
        }
        if let Some(e) = self.state[i].error(i) {
            return Err(e);
        }
        Ok(self.member(i))
    }

    /// Session `i`'s health record (non-finite step count, first
    /// occurrence, quarantine step).
    pub fn health(&self, i: usize) -> &Health {
        &self.state[i].health
    }

    /// Session `i`'s numeric-health policy.
    pub fn health_policy(&self, i: usize) -> HealthPolicy {
        self.state[i].policy
    }

    /// Set session `i`'s numeric-health policy. Takes effect from the
    /// next step; an existing health record is kept.
    pub fn set_health_policy(&mut self, i: usize, policy: HealthPolicy) {
        self.state[i].policy = policy;
    }

    /// Set every session's numeric-health policy.
    pub fn set_health_policy_all(&mut self, policy: HealthPolicy) {
        for st in &mut self.state {
            st.policy = policy;
        }
    }

    /// `true` iff session `i` was poisoned by a panic during a batched
    /// step.
    pub fn is_poisoned(&self, i: usize) -> bool {
        self.state[i].poisoned
    }

    /// `true` iff session `i` will step on the next [`Batch::step_all`]
    /// (neither poisoned, quarantined, nor paused).
    pub fn is_active(&self, i: usize) -> bool {
        self.state[i].active()
    }

    /// The typed fault for session `i`, if any:
    /// [`SessionError::Poisoned`] or [`SessionError::Quarantined`].
    pub fn error(&self, i: usize) -> Option<SessionError> {
        self.state[i].error(i)
    }

    /// Administratively quarantine session `i`: it is skipped by
    /// subsequent [`Batch::step_all`] calls (degraded mode) until
    /// recovered via [`Batch::load`], [`Batch::reset`] or
    /// [`Batch::restore`]. Useful for benchmarking degraded batches and
    /// for callers with out-of-band failure signals.
    pub fn quarantine(&mut self, i: usize) {
        let st = &mut self.state[i];
        if st.health.quarantined_at.is_none() {
            st.health.quarantined_at = Some(st.steps);
        }
    }

    /// Snapshot session `i` into a fresh [`Checkpoint`]. Prefer
    /// [`Batch::checkpoint_into`] in steady state (reuses the caller's
    /// buffer, zero allocations once warm).
    pub fn checkpoint(&self, i: usize) -> Checkpoint<R> {
        let mut ck = Checkpoint::new();
        self.checkpoint_into(i, &mut ck);
        ck
    }

    /// Snapshot session `i`'s padded field, counters and step count
    /// into `ck`, reusing `ck`'s buffer when the shape matches.
    pub fn checkpoint_into(&self, i: usize, ck: &mut Checkpoint<R>) {
        save_grid_into(&self.bufs[i].cur, &mut ck.buf);
        ck.counters = self.state[i].engine.counters;
        ck.steps = self.state[i].steps;
        ck.dims = self.state[i].dims;
    }

    /// Rewind session `i` to `ck`, clearing any poisoned/quarantined
    /// status — the targeted recovery path: the member resumes from the
    /// checkpointed step instead of from its initial field
    /// ([`Batch::reset`]). Zero allocations (buffer reuse). A paused
    /// member stays paused.
    ///
    /// # Errors
    /// As [`Simulation::restore`]: `EmptyCheckpoint`, `ShapeMismatch`,
    /// or [`SessionError::NonFiniteInput`] for a snapshot holding
    /// NaN/Inf (it names session `i` and the tainted linear index; walk
    /// back to an older checkpoint). On error the member is untouched.
    pub fn restore(&mut self, i: usize, ck: &Checkpoint<R>) -> Result<(), SessionError> {
        let snap = check_restore(ck, self.bufs[i].cur.shape(), i)?;
        self.bufs[i]
            .cur
            .as_mut_slice()
            .copy_from_slice(snap.as_slice());
        self.bufs[i]
            .next
            .as_mut_slice()
            .copy_from_slice(snap.as_slice());
        let st = &mut self.state[i];
        st.engine.counters = ck.counters;
        st.steps = ck.steps;
        st.dims = ck.dims;
        st.clear_faults();
        Ok(())
    }
}

/// A mutable view of one [`Batch`] member: the per-session slice of the
/// batch's state, with the same stepping semantics as a solo
/// [`EngineBackend`] session (bit-identical, allocation-free). Borrowed
/// from [`Batch::session_mut`]; dropping it returns control to the
/// batch.
pub struct BatchSession<'a, R: Real> {
    plan: &'a CompiledStencil<R>,
    per_iter: &'a Counters,
    bufs: &'a mut exec::StepBuffers<R>,
    state: &'a mut SessionState<R>,
    scratch: &'a mut [exec::WorkerScratch<R>],
}

impl<R: Real> BatchSession<'_, R> {
    /// Advance this session (only) by one time step. Numeric health is
    /// tracked exactly as in [`Batch::step_all`] (the solo stepper's
    /// scatter pass carries the same non-finite scan).
    pub fn step(&mut self) {
        self.state.engine.counters.merge(self.per_iter);
        let nonfinite =
            exec::step_into(self.plan, &self.bufs.cur, &mut self.bufs.next, self.scratch);
        std::mem::swap(&mut self.bufs.cur, &mut self.bufs.next);
        self.state.steps += 1;
        self.state.note_step_health(nonfinite);
    }

    /// Advance this session by `n` time steps.
    pub fn step_n(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Steps this session has executed.
    pub fn steps(&self) -> usize {
        self.state.steps
    }

    /// Zero-copy view of this session's current semantic field.
    pub fn field(&self) -> FieldView<'_, R> {
        FieldView::windowed(&self.bufs.cur, self.state.dims, self.plan.grid_shape)
    }

    /// Materialize this session's current semantic field.
    pub fn to_grid(&self) -> Grid<R> {
        self.field().to_grid()
    }

    /// This session's accumulated simulated-hardware statistics.
    pub fn stats(&self) -> RunStats {
        exec::finalize_stats(self.plan, &self.state.engine, self.state.steps)
    }

    /// Replace this session's field with a new input of the same shape
    /// (no reallocation), clearing its step and activity counters.
    ///
    /// # Panics
    /// Panics if `input`'s shape differs from the plan's.
    pub fn load(&mut self, input: &Grid<R>) {
        load_engine_session(
            self.plan,
            input,
            self.bufs,
            &mut self.state.initial,
            &mut self.state.dims,
            &mut self.state.engine,
        );
        self.state.steps = 0;
        self.state.clear_faults();
    }

    /// Rewind this session to its initially loaded field, clearing
    /// steps, counters and any poisoned/quarantined status. No
    /// reallocation.
    pub fn reset(&mut self) {
        rewind_to_initial(self.bufs, &self.state.initial, &mut self.state.engine);
        self.state.steps = 0;
        self.state.clear_faults();
    }

    /// This session's health record.
    pub fn health(&self) -> &Health {
        &self.state.health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile, Options};
    use crate::stencil::StencilKernel;

    fn plan_and_input(shape: [usize; 3]) -> (CompiledStencil<f32>, Grid<f32>) {
        let k = StencilKernel::box2d9p();
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let plan = compile::<f32>(&k, shape, &opts).unwrap();
        let input = Grid::<f32>::smooth_random(2, shape);
        (plan, input)
    }

    #[test]
    fn stepwise_equals_oneshot() {
        let (plan, input) = plan_and_input([1, 44, 48]);
        let (want, want_stats) = exec::run(&plan, &input, 4);

        let mut sim = Simulation::new(EngineBackend::new(&plan, &input));
        for _ in 0..4 {
            sim.step();
        }
        assert_eq!(sim.steps(), 4);
        assert_eq!(sim.to_grid(), want);
        let stats = sim.stats().unwrap();
        assert_eq!(stats.counters, want_stats.counters);
        assert_eq!(stats.iters, 4);
    }

    #[test]
    fn probes_fire_on_cadence_with_live_values() {
        let (plan, input) = plan_and_input([1, 40, 40]);
        let (after2, _) = exec::run(&plan, &input, 2);
        // Mutex rather than RefCell: probe closures are `Send` (sessions
        // are `Send`), and `&Mutex<_>` is.
        let fired = std::sync::Mutex::new(Vec::new());
        let mut sim = Simulation::new(EngineBackend::new(&plan, &input));
        sim.probe(2, |step, field| {
            fired.lock().unwrap().push((step, field.get(0, 10, 10)));
        });
        sim.step_n(5);
        drop(sim);
        let fired = fired.into_inner().unwrap();
        assert_eq!(fired.iter().map(|&(s, _)| s).collect::<Vec<_>>(), [2, 4]);
        assert_eq!(fired[0].1, after2.get(0, 10, 10));
    }

    #[test]
    fn load_and_reset_reuse_buffers() {
        let (plan, a) = plan_and_input([1, 40, 40]);
        let b = Grid::<f32>::from_fn_3d(2, [1, 40, 40], |_, y, x| ((y * 7 + x) % 11) as f32 * 0.1);

        let mut sim = Simulation::new(EngineBackend::new(&plan, &a));
        sim.step_n(3);
        let first = sim.to_grid();

        sim.load(&b);
        assert_eq!(sim.steps(), 0);
        sim.step_n(3);
        let (fresh_b, fresh_b_stats) = exec::run(&plan, &b, 3);
        assert_eq!(sim.to_grid(), fresh_b);
        assert_eq!(sim.stats().unwrap().counters, fresh_b_stats.counters);

        sim.reset();
        sim.step_n(3);
        assert_eq!(sim.to_grid(), fresh_b, "reset rewinds to the last load");

        sim.load(&a);
        sim.step_n(3);
        assert_eq!(sim.to_grid(), first);
    }

    #[test]
    fn naive_backend_matches_engine_through_one_driver() {
        let (plan, input) = plan_and_input([1, 44, 40]);
        let mut results = Vec::new();
        let backends: Vec<Box<dyn Backend<f32> + Send>> = vec![
            Box::new(EngineBackend::new(&plan, &input)),
            Box::new(NaiveBackend::new(&plan, &input)),
        ];
        for backend in backends {
            let mut sim = Simulation::from_boxed(backend);
            sim.step_n(3);
            results.push((sim.to_grid(), sim.stats().unwrap().counters));
        }
        assert_eq!(results[0].0, results[1].0);
        assert_eq!(results[0].1, results[1].1);
    }

    #[test]
    fn owned_backend_outlives_its_plan_binding() {
        let (plan, input) = plan_and_input([1, 40, 40]);
        let (want, _) = exec::run(&plan, &input, 2);
        let mut sim: Simulation<'static, f32> = Simulation::new(EngineBackend::owned(plan, &input));
        sim.step_n(2);
        assert_eq!(sim.to_grid(), want);
    }

    #[test]
    fn sessions_and_backends_are_send() {
        // Compile-time pin of the async/streaming story: a session (and
        // every first-party backend) can be moved across threads. If a
        // backend gains a non-Send field, this stops compiling.
        fn assert_send<T: Send>() {}
        assert_send::<Simulation<'static, f32>>();
        assert_send::<Simulation<'static, f64>>();
        assert_send::<EngineBackend<'static, f32>>();
        assert_send::<NaiveBackend<'static, f64>>();
        // A batch moves across threads too (one server task can own a
        // whole fleet of sessions); the raw buffer-binding table inside
        // is empty between steps.
        assert_send::<Batch<'static, f32>>();
        assert_send::<Batch<'static, f64>>();

        // The borrowed-plan form is Send too (CompiledStencil is Sync),
        // and stays Send with a probe registered.
        fn _borrowed<'p>(plan: &'p CompiledStencil<f32>, input: &Grid<f32>) -> impl Send + use<'p> {
            let mut sim = Simulation::new(EngineBackend::new(plan, input));
            sim.probe(1, |_, field| {
                let _ = field.get(0, 0, 0);
            });
            sim
        }
    }

    #[test]
    #[should_panic(expected = "differs from the compiled plan")]
    fn load_rejects_wrong_shape() {
        let (plan, input) = plan_and_input([1, 40, 40]);
        let mut sim = Simulation::new(EngineBackend::new(&plan, &input));
        sim.load(&Grid::<f32>::smooth_random(2, [1, 30, 30]));
    }

    #[test]
    fn batch_steps_every_session_like_solo() {
        let shape = [1, 44, 48];
        let (plan, _) = plan_and_input(shape);
        let inputs: Vec<Grid<f32>> = (0..3)
            .map(|s| {
                Grid::<f32>::from_fn_3d(2, shape, |_, y, x| {
                    ((y * 5 + x * 3 + s * 7) % 13) as f32 * 0.07
                })
            })
            .collect();

        let mut batch = Batch::new(&plan, &inputs);
        assert_eq!(batch.sessions(), 3);
        assert_eq!(batch.shape(), shape);
        batch.step_all_n(3);

        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(batch.steps(i), 3);
            let (want, want_stats) = exec::run(&plan, input, 3);
            assert_eq!(batch.to_grid(i), want, "session {i} grid");
            assert_eq!(batch.stats(i).counters, want_stats.counters, "session {i}");
        }
    }

    #[test]
    fn batch_session_view_steps_and_reloads_one_member() {
        let shape = [1, 40, 40];
        let (plan, a) = plan_and_input(shape);
        let b = Grid::<f32>::from_fn_3d(2, shape, |_, y, x| ((y * 7 + x) % 11) as f32 * 0.1);

        let mut batch = Batch::new(&plan, &[a.clone(), a.clone()]);
        batch.step_all_n(2);

        // Reload member 1 mid-flight and catch it up through the view.
        {
            let mut s1 = batch.session_mut(1);
            s1.load(&b);
            assert_eq!(s1.steps(), 0);
            s1.step_n(2);
        }
        batch.step_all();

        let (want_a, _) = exec::run(&plan, &a, 3);
        let (want_b, want_b_stats) = exec::run(&plan, &b, 3);
        assert_eq!(batch.to_grid(0), want_a);
        assert_eq!(batch.to_grid(1), want_b);
        assert_eq!(batch.stats(1).counters, want_b_stats.counters);
        assert_eq!(batch.steps(0), 3);
        assert_eq!(batch.steps(1), 3);
    }

    #[test]
    #[should_panic(expected = "differs from the compiled plan")]
    fn batch_rejects_mixed_shapes() {
        let (plan, input) = plan_and_input([1, 44, 48]);
        let wrong = Grid::<f32>::smooth_random(2, [1, 30, 30]);
        let _ = Batch::new(&plan, &[input, wrong]);
    }

    #[test]
    #[should_panic(expected = "at least one session")]
    fn batch_rejects_empty_input_set() {
        let (plan, _) = plan_and_input([1, 40, 40]);
        let _ = Batch::<f32>::new(&plan, &[]);
    }
}
