//! Persistent execution sessions: the retained-state API every driver
//! goes through.
//!
//! The paper's pipeline (layout exploration → morphing → 2:4 conversion
//! → kernel generation, §3–4) produces a plan that real workloads reuse
//! across thousands of time steps. A [`Simulation`] is the run-time
//! counterpart of that reuse: it owns the execution state — the
//! halo-padded ping-pong [`Grid`]s, the per-worker scratch pool, the
//! activity-counting engine — and steps it incrementally, so setup
//! (embedding, quantization, buffer allocation) is paid once per session
//! instead of once per `run` call, and the live field can be observed
//! between steps without stopping the run.
//!
//! # Ownership and lifetimes
//!
//! A session never copies the compiled plan on the borrowed path: the
//! backend holds `Cow<'p, CompiledStencil>`, so
//! [`Executor::session`](crate::pipeline::Executor::session) lends its
//! plan for `'p` (the session cannot outlive the executor), while
//! [`Executor::into_session`](crate::pipeline::Executor::into_session)
//! moves the plan in and yields a self-contained `Simulation<'static>` —
//! the form the baseline crates use to hand sessions across API
//! boundaries. Everything else (grids, scratch, counters) is owned by
//! the session outright; [`Simulation::load`] and [`Simulation::reset`]
//! rewrite that state in place, so reusing one session across many
//! inputs performs **zero** further heap allocations (asserted by
//! `tests/alloc_steady_state.rs`) — including the engine's staged
//! operand ring, which is sized from the plan at session construction
//! and never touched by `load`/`reset`.
//!
//! Sessions are **`Send`**: a `Simulation` (and every backend behind
//! it) can be moved to another thread, which is what lets an async or
//! streaming server hold one session per client and step it wherever
//! its scheduler runs. The boxed [`Backend`] and every probe closure
//! therefore carry a `Send` bound; a compile-time test pins
//! `Simulation: Send` so a backend that silently loses the property
//! fails the build, not a deployment.
//!
//! # Pluggable backends
//!
//! The stepping strategy is a [`Backend`] trait object, so one driver
//! runs any execution path interchangeably:
//!
//! - [`EngineBackend`] — the optimized halo-padded interior-only engine
//!   (see [`crate::exec`]'s module docs); zero allocations per step.
//! - [`NaiveBackend`] — the retained pre-refactor path, the equivalence
//!   oracle (`tests/exec_equivalence.rs` pins it bit-identical to the
//!   engine).
//! - The `sparstencil-baselines` crate plugs its seven comparison
//!   systems in through the same trait (pipeline-backed baselines as
//!   engine sessions over their fixed layouts, counter-model baselines
//!   as scalar-reference sessions).
//!
//! # Observation
//!
//! [`Simulation::field`] returns a zero-copy [`FieldView`] of the
//! semantic grid inside the live buffer — no extraction, no boundary
//! pass (the engine's per-step boundary mirror keeps the semantic band
//! current, so the view is valid the moment a step returns).
//! [`Simulation::probe`] registers closures invoked every `k` steps with
//! the step number and that view: reductions, snapshots, and convergence
//! checks run mid-flight without breaking the zero-allocation steady
//! state of the stepper itself.
//!
//! ```
//! use sparstencil::prelude::*;
//!
//! let kernel = StencilKernel::heat2d();
//! let shape = [1, 40, 40];
//! let exec = Executor::<f32>::new(&kernel, shape, &Options::default()).unwrap();
//! let input = Grid::<f32>::smooth_random(2, shape);
//!
//! let mut sim = exec.session(&input);
//! sim.probe(2, |step, field| {
//!     let mean: f64 = field.iter().map(|v| v as f64).sum::<f64>() / field.len() as f64;
//!     assert!(mean.is_finite(), "step {step}");
//! });
//! sim.step_n(6);
//! assert_eq!(sim.steps(), 6);
//! let stats = sim.stats().unwrap();
//! assert!(stats.counters.n_mma() > 0);
//! ```

use crate::exec::{self, RunStats};
use crate::grid::{FieldView, Grid};
use crate::plan::CompiledStencil;
use sparstencil_mat::half::Precision;
use sparstencil_mat::Real;
use sparstencil_tcu::{Counters, Engine};
use std::borrow::Cow;

/// A pluggable execution strategy behind a [`Simulation`].
///
/// A backend owns the live state of one run — field buffers plus
/// whatever bookkeeping its stepping discipline needs — and advances it
/// one stencil time step at a time. The [`Simulation`] driver layers the
/// session services (step counting, probes, stats, reuse) on top, so
/// every backend gets them for free and every consumer drives every
/// backend through the same five calls.
pub trait Backend<R: Real> {
    /// Short display name ("engine", "naive", a baseline's name).
    fn name(&self) -> &'static str;

    /// Semantic grid shape `[nz, ny, nx]` of the simulated field.
    fn shape(&self) -> [usize; 3];

    /// Advance the field by one stencil time step.
    fn step(&mut self);

    /// Zero-copy view of the current semantic field.
    fn field(&self) -> FieldView<'_, R>;

    /// Replace the field with a new input (same shape) without
    /// reallocating, clearing accumulated activity.
    ///
    /// # Panics
    /// Panics if `input`'s shape differs from [`Backend::shape`].
    fn load(&mut self, input: &Grid<R>);

    /// Restore the initially loaded field and clear accumulated
    /// activity, without reallocating.
    fn reset(&mut self);

    /// Simulated-hardware statistics over `steps` executed steps.
    /// `None` for backends with no hardware model behind them (e.g. the
    /// baselines' scalar-reference sessions).
    fn stats(&self, steps: usize) -> Option<RunStats> {
        let _ = steps;
        None
    }

    /// Consume the backend and return the final semantic field. The
    /// default materializes a copy via [`Backend::field`]; backends
    /// whose live buffer *is* the semantic grid override this to move it
    /// out without copying.
    fn into_grid(self: Box<Self>) -> Grid<R> {
        self.field().to_grid()
    }
}

/// Shared [`Backend::load`] staging step: (re)materialize `slot` as
/// `input` embedded in the low corner of a `padded_shape` buffer,
/// quantized through `precision`. Reuses the existing allocation when
/// `slot` is already materialized with matching dimensionality; the
/// first call (or a dimensionality change) allocates it.
pub fn stage_initial<R: Real>(
    input: &Grid<R>,
    slot: &mut Option<Grid<R>>,
    padded_shape: [usize; 3],
    precision: Precision,
) {
    match slot {
        Some(init) if init.dims() == input.dims() => input.embed_into(init),
        _ => *slot = Some(input.embedded_in(padded_shape)),
    }
    slot.as_mut()
        .expect("just materialized")
        .quantize(precision);
}

/// The optimized execution engine as a session backend: halo-padded
/// ping-pong buffers, plan-time gather tables, per-worker scratch,
/// guided partitioning, closed-form counters (see [`crate::exec`]).
/// After construction, [`Backend::step`] performs zero heap allocations.
pub struct EngineBackend<'p, R: Real> {
    plan: Cow<'p, CompiledStencil<R>>,
    engine: Engine,
    per_iter: Counters,
    bufs: exec::StepBuffers<R>,
    /// Pristine padded+quantized input, kept for [`Backend::reset`] and
    /// reused as the embedding staging buffer by [`Backend::load`].
    /// `None` only for internal throwaway sessions (the one-shot `run`
    /// wrappers), which never rewind — skipping the snapshot spares them
    /// a full-grid clone.
    initial: Option<Grid<R>>,
    dims: usize,
}

impl<'p, R: Real> EngineBackend<'p, R> {
    /// Backend borrowing `plan`, with the pool-wide default lane count.
    ///
    /// # Panics
    /// Panics if the input shape differs from the plan's compile-time
    /// shape.
    pub fn new(plan: &'p CompiledStencil<R>, input: &Grid<R>) -> Self {
        Self::with_parallelism(plan, input, rayon::current_num_threads())
    }

    /// Backend borrowing `plan` with an explicit worker-lane count
    /// (scratch slots / guided-scheduler tasks); results and counters
    /// are identical for every lane count.
    ///
    /// # Panics
    /// Panics if the input shape differs from the plan's compile-time
    /// shape.
    pub fn with_parallelism(plan: &'p CompiledStencil<R>, input: &Grid<R>, lanes: usize) -> Self {
        Self::from_cow(Cow::Borrowed(plan), input, lanes, true)
    }

    /// Backend that owns its plan — a self-contained `'static` session
    /// state, used by the baseline crates to return sessions without a
    /// lender.
    pub fn owned(plan: CompiledStencil<R>, input: &Grid<R>) -> EngineBackend<'static, R> {
        EngineBackend::from_cow(Cow::Owned(plan), input, rayon::current_num_threads(), true)
    }

    /// One-shot internal variant for the `exec::run*` wrappers: skips
    /// the initial-state snapshot (the wrapper never calls
    /// `load`/`reset` before the first step), so a one-shot run pays no
    /// more setup than the pre-session engine did.
    pub(crate) fn throwaway(plan: &'p CompiledStencil<R>, input: &Grid<R>, lanes: usize) -> Self {
        Self::from_cow(Cow::Borrowed(plan), input, lanes, false)
    }

    fn from_cow(
        plan: Cow<'p, CompiledStencil<R>>,
        input: &Grid<R>,
        lanes: usize,
        retain_initial: bool,
    ) -> Self {
        assert_eq!(
            input.shape(),
            plan.grid_shape,
            "grid shape differs from the compiled plan"
        );
        let engine = Engine::new(plan.gpu.clone(), plan.precision);
        let per_iter = exec::iter_counters(&plan, &plan.geom, plan.grid_shape, true);
        let bufs = exec::StepBuffers::new(&plan, input, lanes.max(1));
        let initial = retain_initial.then(|| bufs.cur.clone());
        Self {
            plan,
            engine,
            per_iter,
            bufs,
            initial,
            dims: input.dims(),
        }
    }
}

impl<R: Real> Backend<R> for EngineBackend<'_, R> {
    fn name(&self) -> &'static str {
        "engine"
    }

    fn shape(&self) -> [usize; 3] {
        self.plan.grid_shape
    }

    fn step(&mut self) {
        self.engine.counters.merge(&self.per_iter);
        // Output quantization happens inside the scatter (each value is
        // rounded as it is stored, exactly like the hardware's store
        // path); boundary cells were quantized once at load and are
        // re-mirrored, not recomputed.
        exec::step_into(
            &self.plan,
            &self.bufs.cur,
            &mut self.bufs.next,
            &mut self.bufs.scratch,
        );
        std::mem::swap(&mut self.bufs.cur, &mut self.bufs.next);
    }

    fn field(&self) -> FieldView<'_, R> {
        FieldView::windowed(&self.bufs.cur, self.dims, self.plan.grid_shape)
    }

    fn load(&mut self, input: &Grid<R>) {
        assert_eq!(
            input.shape(),
            self.plan.grid_shape,
            "grid shape differs from the compiled plan"
        );
        stage_initial(
            input,
            &mut self.initial,
            self.bufs.cur.shape(),
            self.plan.precision,
        );
        self.dims = input.dims();
        self.reset();
    }

    fn reset(&mut self) {
        let initial = self
            .initial
            .as_ref()
            .expect("internal throwaway sessions never rewind");
        // Both buffers restart from the pristine input: `cur` is the
        // field, `next`'s copy seeds the boundary cells exactly as
        // `StepBuffers::new` did.
        self.bufs
            .cur
            .as_mut_slice()
            .copy_from_slice(initial.as_slice());
        self.bufs
            .next
            .as_mut_slice()
            .copy_from_slice(initial.as_slice());
        self.engine.counters = Counters::new();
    }

    fn stats(&self, steps: usize) -> Option<RunStats> {
        Some(exec::finalize_stats(&self.plan, &self.engine, steps))
    }
}

/// The retained pre-refactor execution path as a session backend: clones
/// the grid per step, counts every fragment MMA as it is issued. Kept as
/// the equivalence oracle — `tests/exec_equivalence.rs` pins it
/// bit-identical (grids and counters) to [`EngineBackend`].
pub struct NaiveBackend<'p, R: Real> {
    plan: Cow<'p, CompiledStencil<R>>,
    engine: Engine,
    per_iter: Counters,
    cur: Grid<R>,
    /// Pristine quantized input (see [`EngineBackend`]'s field docs:
    /// `None` only for internal throwaway sessions).
    initial: Option<Grid<R>>,
    dims: usize,
}

impl<'p, R: Real> NaiveBackend<'p, R> {
    /// Backend borrowing `plan`.
    ///
    /// # Panics
    /// Panics if the input shape differs from the plan's compile-time
    /// shape.
    pub fn new(plan: &'p CompiledStencil<R>, input: &Grid<R>) -> Self {
        Self::from_cow(Cow::Borrowed(plan), input, true)
    }

    /// Backend that owns its plan (see [`EngineBackend::owned`]).
    pub fn owned(plan: CompiledStencil<R>, input: &Grid<R>) -> NaiveBackend<'static, R> {
        NaiveBackend::from_cow(Cow::Owned(plan), input, true)
    }

    /// One-shot internal variant for `exec::run_naive` (see
    /// [`EngineBackend::throwaway`]).
    pub(crate) fn throwaway(plan: &'p CompiledStencil<R>, input: &Grid<R>) -> Self {
        Self::from_cow(Cow::Borrowed(plan), input, false)
    }

    fn from_cow(plan: Cow<'p, CompiledStencil<R>>, input: &Grid<R>, retain_initial: bool) -> Self {
        assert_eq!(
            input.shape(),
            plan.grid_shape,
            "grid shape differs from the compiled plan"
        );
        let engine = Engine::new(plan.gpu.clone(), plan.precision);
        // Traffic/launch accounting shares the closed-form helper with
        // the optimized engine; the fragment ops stay counted one by one
        // inside `step_naive` as the independent oracle.
        let per_iter = exec::iter_counters(&plan, &plan.geom, plan.grid_shape, false);
        let mut cur = input.clone();
        cur.quantize(plan.precision);
        let initial = retain_initial.then(|| cur.clone());
        Self {
            plan,
            engine,
            per_iter,
            cur,
            initial,
            dims: input.dims(),
        }
    }
}

impl<R: Real> Backend<R> for NaiveBackend<'_, R> {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn shape(&self) -> [usize; 3] {
        self.plan.grid_shape
    }

    fn step(&mut self) {
        self.engine.counters.merge(&self.per_iter);
        self.cur = exec::step_naive(&self.plan, &self.cur, &mut self.engine);
        if !matches!(self.plan.precision, Precision::Fp64) {
            self.cur.quantize(self.plan.precision);
        }
    }

    fn field(&self) -> FieldView<'_, R> {
        // Explicit dims: a `load` may change the input's dimensionality
        // while `cur`'s own metadata still carries the construction-time
        // value.
        FieldView::windowed(&self.cur, self.dims, self.plan.grid_shape)
    }

    fn load(&mut self, input: &Grid<R>) {
        assert_eq!(
            input.shape(),
            self.plan.grid_shape,
            "grid shape differs from the compiled plan"
        );
        stage_initial(
            input,
            &mut self.initial,
            self.cur.shape(),
            self.plan.precision,
        );
        self.dims = input.dims();
        self.reset();
    }

    fn reset(&mut self) {
        let initial = self
            .initial
            .as_ref()
            .expect("internal throwaway sessions never rewind");
        self.cur.as_mut_slice().copy_from_slice(initial.as_slice());
        self.engine.counters = Counters::new();
    }

    fn stats(&self, steps: usize) -> Option<RunStats> {
        Some(exec::finalize_stats(&self.plan, &self.engine, steps))
    }

    fn into_grid(self: Box<Self>) -> Grid<R> {
        // `cur` already is the semantic grid — move it out, unless a
        // dims-changing `load` left stale dimensionality metadata on it.
        if self.cur.dims() == self.dims {
            self.cur
        } else {
            self.field().to_grid()
        }
    }
}

/// A probe callback: receives the completed-step count and a zero-copy
/// view of the live field. `Send` so registering a probe never costs a
/// session its `Send`-ness (share state with a probe through `Mutex`,
/// atomics, or owned captures rather than `Rc`/`RefCell` references).
type ProbeFn<'p, R> = Box<dyn FnMut(usize, &FieldView<'_, R>) + Send + 'p>;

/// A registered observer: fires every `every` steps with the step number
/// and the live field view.
struct Probe<'p, R: Real> {
    every: usize,
    f: ProbeFn<'p, R>,
}

/// A persistent stencil-simulation session: retained execution state
/// stepped incrementally, observed mid-run, and reused across inputs.
///
/// Obtain one from [`Executor::session`](crate::pipeline::Executor::session)
/// (borrowing the executor's plan) or wrap any [`Backend`] directly with
/// [`Simulation::new`]. See the [module docs](self) for the ownership
/// story and the backend roster.
pub struct Simulation<'p, R: Real> {
    backend: Box<dyn Backend<R> + Send + 'p>,
    steps: usize,
    probes: Vec<Probe<'p, R>>,
}

impl<'p, R: Real> Simulation<'p, R> {
    /// Wrap a backend in a session driver.
    pub fn new(backend: impl Backend<R> + Send + 'p) -> Self {
        Self::from_boxed(Box::new(backend))
    }

    /// Wrap an already-boxed backend (for callers assembling `dyn`
    /// backends, e.g. a driver iterating over several of them). The
    /// `Send` bound keeps the whole session `Send`.
    pub fn from_boxed(backend: Box<dyn Backend<R> + Send + 'p>) -> Self {
        Self {
            backend,
            steps: 0,
            probes: Vec::new(),
        }
    }

    /// The backend's display name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Semantic grid shape `[nz, ny, nx]`.
    pub fn shape(&self) -> [usize; 3] {
        self.backend.shape()
    }

    /// Steps executed since construction / the last [`Simulation::load`]
    /// or [`Simulation::reset`].
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Register an observer invoked after every `every`-th step with the
    /// completed-step count and a zero-copy view of the live field.
    /// Probes stack (all matching probes fire, in registration order)
    /// and survive [`Simulation::load`]/[`Simulation::reset`].
    ///
    /// # Panics
    /// Panics if `every` is zero.
    pub fn probe(&mut self, every: usize, f: impl FnMut(usize, &FieldView<'_, R>) + Send + 'p) {
        assert!(every > 0, "probe cadence must be at least 1");
        self.probes.push(Probe {
            every,
            f: Box::new(f),
        });
    }

    /// Advance one time step (and fire any due probes).
    pub fn step(&mut self) {
        self.step_n(1);
    }

    /// Advance `n` time steps, firing due probes after each one. The
    /// stepping itself performs zero heap allocations on the engine
    /// backend; whatever a probe closure allocates is its own business.
    pub fn step_n(&mut self, n: usize) {
        for _ in 0..n {
            self.backend.step();
            self.steps += 1;
            if !self.probes.is_empty() {
                // Split borrows: the view reads `backend`, the closures
                // live in `probes` — disjoint fields.
                let Self {
                    backend,
                    probes,
                    steps,
                } = self;
                let view = backend.field();
                for p in probes.iter_mut() {
                    if *steps % p.every == 0 {
                        (p.f)(*steps, &view);
                    }
                }
            }
        }
    }

    /// Zero-copy view of the current semantic field — valid immediately
    /// after any step, no extraction pass.
    pub fn field(&self) -> FieldView<'_, R> {
        self.backend.field()
    }

    /// Materialize the current semantic field as an owned [`Grid`].
    pub fn to_grid(&self) -> Grid<R> {
        self.backend.field().to_grid()
    }

    /// Consume the session and return the final semantic field, moving
    /// the live buffer out without a copy where the backend allows it
    /// (the naive and reference paths; the padded engine extracts).
    pub fn into_grid(self) -> Grid<R> {
        self.backend.into_grid()
    }

    /// Start over on a new input of the same shape, reusing every buffer
    /// (no reallocation, unless the input's *dimensionality* changed,
    /// which re-materializes one staging buffer): the field is
    /// re-embedded and re-quantized, the step counter and activity
    /// counters are cleared, probes stay registered.
    ///
    /// # Panics
    /// Panics if `input`'s shape differs from the session's.
    pub fn load(&mut self, input: &Grid<R>) {
        self.backend.load(input);
        self.steps = 0;
    }

    /// Rewind to the initially loaded field (as of construction or the
    /// last [`Simulation::load`]), clearing steps and counters. No
    /// reallocation.
    pub fn reset(&mut self) {
        self.backend.reset();
        self.steps = 0;
    }

    /// Accumulated simulated-hardware statistics over the session's
    /// steps so far. `None` for backends without a hardware model (the
    /// baselines' scalar-reference sessions).
    pub fn stats(&self) -> Option<RunStats> {
        self.backend.stats(self.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile, Options};
    use crate::stencil::StencilKernel;

    fn plan_and_input(shape: [usize; 3]) -> (CompiledStencil<f32>, Grid<f32>) {
        let k = StencilKernel::box2d9p();
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let plan = compile::<f32>(&k, shape, &opts).unwrap();
        let input = Grid::<f32>::smooth_random(2, shape);
        (plan, input)
    }

    #[test]
    fn stepwise_equals_oneshot() {
        let (plan, input) = plan_and_input([1, 44, 48]);
        let (want, want_stats) = exec::run(&plan, &input, 4);

        let mut sim = Simulation::new(EngineBackend::new(&plan, &input));
        for _ in 0..4 {
            sim.step();
        }
        assert_eq!(sim.steps(), 4);
        assert_eq!(sim.to_grid(), want);
        let stats = sim.stats().unwrap();
        assert_eq!(stats.counters, want_stats.counters);
        assert_eq!(stats.iters, 4);
    }

    #[test]
    fn probes_fire_on_cadence_with_live_values() {
        let (plan, input) = plan_and_input([1, 40, 40]);
        let (after2, _) = exec::run(&plan, &input, 2);
        // Mutex rather than RefCell: probe closures are `Send` (sessions
        // are `Send`), and `&Mutex<_>` is.
        let fired = std::sync::Mutex::new(Vec::new());
        let mut sim = Simulation::new(EngineBackend::new(&plan, &input));
        sim.probe(2, |step, field| {
            fired.lock().unwrap().push((step, field.get(0, 10, 10)));
        });
        sim.step_n(5);
        drop(sim);
        let fired = fired.into_inner().unwrap();
        assert_eq!(fired.iter().map(|&(s, _)| s).collect::<Vec<_>>(), [2, 4]);
        assert_eq!(fired[0].1, after2.get(0, 10, 10));
    }

    #[test]
    fn load_and_reset_reuse_buffers() {
        let (plan, a) = plan_and_input([1, 40, 40]);
        let b = Grid::<f32>::from_fn_3d(2, [1, 40, 40], |_, y, x| ((y * 7 + x) % 11) as f32 * 0.1);

        let mut sim = Simulation::new(EngineBackend::new(&plan, &a));
        sim.step_n(3);
        let first = sim.to_grid();

        sim.load(&b);
        assert_eq!(sim.steps(), 0);
        sim.step_n(3);
        let (fresh_b, fresh_b_stats) = exec::run(&plan, &b, 3);
        assert_eq!(sim.to_grid(), fresh_b);
        assert_eq!(sim.stats().unwrap().counters, fresh_b_stats.counters);

        sim.reset();
        sim.step_n(3);
        assert_eq!(sim.to_grid(), fresh_b, "reset rewinds to the last load");

        sim.load(&a);
        sim.step_n(3);
        assert_eq!(sim.to_grid(), first);
    }

    #[test]
    fn naive_backend_matches_engine_through_one_driver() {
        let (plan, input) = plan_and_input([1, 44, 40]);
        let mut results = Vec::new();
        let backends: Vec<Box<dyn Backend<f32> + Send>> = vec![
            Box::new(EngineBackend::new(&plan, &input)),
            Box::new(NaiveBackend::new(&plan, &input)),
        ];
        for backend in backends {
            let mut sim = Simulation::from_boxed(backend);
            sim.step_n(3);
            results.push((sim.to_grid(), sim.stats().unwrap().counters));
        }
        assert_eq!(results[0].0, results[1].0);
        assert_eq!(results[0].1, results[1].1);
    }

    #[test]
    fn owned_backend_outlives_its_plan_binding() {
        let (plan, input) = plan_and_input([1, 40, 40]);
        let (want, _) = exec::run(&plan, &input, 2);
        let mut sim: Simulation<'static, f32> = Simulation::new(EngineBackend::owned(plan, &input));
        sim.step_n(2);
        assert_eq!(sim.to_grid(), want);
    }

    #[test]
    fn sessions_and_backends_are_send() {
        // Compile-time pin of the async/streaming story: a session (and
        // every first-party backend) can be moved across threads. If a
        // backend gains a non-Send field, this stops compiling.
        fn assert_send<T: Send>() {}
        assert_send::<Simulation<'static, f32>>();
        assert_send::<Simulation<'static, f64>>();
        assert_send::<EngineBackend<'static, f32>>();
        assert_send::<NaiveBackend<'static, f64>>();

        // The borrowed-plan form is Send too (CompiledStencil is Sync),
        // and stays Send with a probe registered.
        fn _borrowed<'p>(plan: &'p CompiledStencil<f32>, input: &Grid<f32>) -> impl Send + use<'p> {
            let mut sim = Simulation::new(EngineBackend::new(plan, input));
            sim.probe(1, |_, field| {
                let _ = field.get(0, 0, 0);
            });
            sim
        }
    }

    #[test]
    #[should_panic(expected = "differs from the compiled plan")]
    fn load_rejects_wrong_shape() {
        let (plan, input) = plan_and_input([1, 40, 40]);
        let mut sim = Simulation::new(EngineBackend::new(&plan, &input));
        sim.load(&Grid::<f32>::smooth_random(2, [1, 30, 30]));
    }
}
