//! Spatial grids the stencils iterate over.
//!
//! A [`Grid`] is a dense row-major array over up to three axes
//! (`[nz, ny, nx]`; unused leading axes have size 1). Stencil application
//! uses *valid-region* semantics: output point `o` needs the full kernel
//! window `o .. o+extent` inside the grid, so each application shrinks the
//! writable region by `extent−1` per axis; boundary cells are copied
//! through unchanged. This matches the matrix formulation of §3.1, where
//! `n' = (m−k+1)(n−k+1)/(r1·r2)` counts exactly the valid outputs.

use crate::stencil::StencilKernel;
use sparstencil_mat::half::Precision;
use sparstencil_mat::Real;

/// A dense grid over `[nz, ny, nx]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid<R: Real> {
    shape: [usize; 3],
    dims: usize,
    data: Vec<R>,
}

impl<R: Real> Grid<R> {
    /// Zero-filled 1D grid.
    pub fn zeros_1d(nx: usize) -> Self {
        Self::zeros(1, [1, 1, nx])
    }

    /// Zero-filled 2D grid (`ny` rows × `nx` columns).
    pub fn zeros_2d(ny: usize, nx: usize) -> Self {
        Self::zeros(2, [1, ny, nx])
    }

    /// Zero-filled 3D grid.
    pub fn zeros_3d(nz: usize, ny: usize, nx: usize) -> Self {
        Self::zeros(3, [nz, ny, nx])
    }

    fn zeros(dims: usize, shape: [usize; 3]) -> Self {
        assert!(
            shape.iter().all(|&s| s > 0),
            "grid extents must be positive"
        );
        Self {
            shape,
            dims,
            data: vec![R::ZERO; shape[0] * shape[1] * shape[2]],
        }
    }

    /// Build from a closure over `(z, y, x)`.
    pub fn from_fn_3d(
        dims: usize,
        shape: [usize; 3],
        mut f: impl FnMut(usize, usize, usize) -> R,
    ) -> Self {
        let mut g = Self::zeros(dims, shape);
        for z in 0..shape[0] {
            for y in 0..shape[1] {
                for x in 0..shape[2] {
                    let v = f(z, y, x);
                    g.set(z, y, x, v);
                }
            }
        }
        g
    }

    /// A deterministic pseudo-random initialization in `[0, 1)` — keeps
    /// tests reproducible without threading an RNG through the library.
    pub fn smooth_random(dims: usize, shape: [usize; 3]) -> Self {
        Self::from_fn_3d(dims, shape, |z, y, x| {
            let mut h = (z as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((y as u64).wrapping_mul(0xd1b5_4a32_d192_ed03))
                .wrapping_add((x as u64).wrapping_mul(0x94d0_49bb_1331_11eb));
            h ^= h >> 31;
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^= h >> 27;
            R::from_f64((h % 10_000) as f64 / 10_000.0)
        })
    }

    /// Grid dimensionality (1–3).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Shape `[nz, ny, nx]`.
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff the grid has no points (never: extents are positive).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Linear index of `(z, y, x)`.
    #[inline]
    pub fn index(&self, z: usize, y: usize, x: usize) -> usize {
        debug_assert!(z < self.shape[0] && y < self.shape[1] && x < self.shape[2]);
        (z * self.shape[1] + y) * self.shape[2] + x
    }

    /// Read `(z, y, x)`.
    #[inline]
    pub fn get(&self, z: usize, y: usize, x: usize) -> R {
        self.data[self.index(z, y, x)]
    }

    /// Write `(z, y, x)`.
    #[inline]
    pub fn set(&mut self, z: usize, y: usize, x: usize, v: R) {
        let i = self.index(z, y, x);
        self.data[i] = v;
    }

    /// Raw data, `z`-major.
    pub fn as_slice(&self) -> &[R] {
        &self.data
    }

    /// Mutable raw data.
    pub fn as_mut_slice(&mut self) -> &mut [R] {
        &mut self.data
    }

    /// Linear (`z`-major) index of the first non-finite (NaN or ±Inf)
    /// value, or `None` if every cell is finite. Session input
    /// validation ([`crate::session::SessionError::NonFiniteInput`])
    /// reports this index so a caller can locate the offending cell.
    pub fn first_non_finite(&self) -> Option<usize> {
        self.data.iter().position(|v| !v.is_finite())
    }

    /// Row stride (elements between consecutive `y` values).
    pub fn row_stride(&self) -> usize {
        self.shape[2]
    }

    /// Plane stride (elements between consecutive `z` values).
    pub fn plane_stride(&self) -> usize {
        self.shape[1] * self.shape[2]
    }

    /// Valid-output extents for a kernel: `n − e + 1` per axis.
    ///
    /// # Panics
    /// Panics if the kernel is larger than the grid on any axis.
    pub fn valid_extent(&self, kernel: &StencilKernel) -> [usize; 3] {
        let e = kernel.extent();
        let mut out = [0; 3];
        for a in 0..3 {
            assert!(
                self.shape[a] >= e[a],
                "kernel extent {} exceeds grid extent {} on axis {a}",
                e[a],
                self.shape[a]
            );
            out[a] = self.shape[a] - e[a] + 1;
        }
        out
    }

    /// Number of valid output points for a kernel.
    pub fn valid_points(&self, kernel: &StencilKernel) -> usize {
        let v = self.valid_extent(kernel);
        v[0] * v[1] * v[2]
    }

    /// Embed this grid in the low corner of a zero-filled grid of `shape`
    /// (ghost-zone padding: `shape ≥ self.shape()` per axis). The padding
    /// cells read as zero, exactly what out-of-range gathers produced
    /// before the executor planned over a padded domain.
    ///
    /// # Panics
    /// Panics if `shape` is smaller than this grid on any axis.
    pub fn embedded_in(&self, shape: [usize; 3]) -> Grid<R> {
        // `zeros` hands back zero-filled storage, so only the semantic
        // rows need writing (no redundant padding clear).
        let mut out = Self::zeros(self.dims, shape);
        self.copy_rows_into(&mut out);
        out
    }

    /// Re-embed this grid into an existing (ghost-padded) buffer without
    /// allocating: the allocation-free counterpart of [`Grid::embedded_in`]
    /// used by session [`load`](crate::session::Simulation::load). Padding
    /// cells are zeroed, then the semantic rows are copied into the low
    /// corner.
    ///
    /// # Panics
    /// Panics if `dst` is smaller than this grid on any axis or the
    /// dimensionalities differ.
    pub fn embed_into(&self, dst: &mut Grid<R>) {
        assert_eq!(self.dims, dst.dims, "dimensionality mismatch");
        dst.data.fill(R::ZERO);
        self.copy_rows_into(dst);
    }

    /// Copy this grid's rows into the low corner of `dst` (shared body
    /// of [`Grid::embedded_in`] / [`Grid::embed_into`]; padding cells
    /// are left untouched).
    fn copy_rows_into(&self, dst: &mut Grid<R>) {
        let s = self.shape;
        let d = dst.shape;
        assert!(
            (0..3).all(|a| d[a] >= s[a]),
            "padded shape {d:?} smaller than grid {s:?}"
        );
        for z in 0..s[0] {
            for y in 0..s[1] {
                let src = (z * s[1] + y) * s[2];
                let to = (z * d[1] + y) * d[2];
                dst.data[to..to + s[2]].copy_from_slice(&self.data[src..src + s[2]]);
            }
        }
    }

    /// Extract the low-corner `shape` window (the inverse of
    /// [`Grid::embedded_in`]: recovers the semantic grid from a
    /// ghost-padded one).
    ///
    /// # Panics
    /// Panics if `shape` exceeds this grid on any axis.
    pub fn window(&self, shape: [usize; 3]) -> Grid<R> {
        let s = self.shape;
        assert!(
            (0..3).all(|a| shape[a] <= s[a]),
            "window {shape:?} larger than grid {s:?}"
        );
        let mut out = Self::zeros(self.dims, shape);
        for z in 0..shape[0] {
            for y in 0..shape[1] {
                let src = (z * s[1] + y) * s[2];
                let dst = (z * shape[1] + y) * shape[2];
                out.data[dst..dst + shape[2]].copy_from_slice(&self.data[src..src + shape[2]]);
            }
        }
        out
    }

    /// Extract an arbitrary-origin `shape` block starting at `origin`
    /// (`[z, y, x]`), the general form of [`Grid::window`]. Used by the
    /// shard decomposition to slice each shard's local input (owned
    /// cells plus halo overlap) out of the global grid.
    ///
    /// # Panics
    /// Panics if `origin + shape` exceeds this grid on any axis.
    pub fn subgrid(&self, origin: [usize; 3], shape: [usize; 3]) -> Grid<R> {
        let s = self.shape;
        assert!(
            (0..3).all(|a| origin[a] + shape[a] <= s[a]),
            "subgrid origin {origin:?} + shape {shape:?} exceeds grid {s:?}"
        );
        let mut out = Self::zeros(self.dims, shape);
        for z in 0..shape[0] {
            for y in 0..shape[1] {
                let src = ((origin[0] + z) * s[1] + origin[1] + y) * s[2] + origin[2];
                let dst = (z * shape[1] + y) * shape[2];
                out.data[dst..dst + shape[2]].copy_from_slice(&self.data[src..src + shape[2]]);
            }
        }
        out
    }

    /// Round every value through `precision` (operand quantization applied
    /// once per buffer, as on real tensor-core kernels). Operates in place
    /// at native scalar width, so the per-step re-quantization in the
    /// executor allocates nothing.
    pub fn quantize(&mut self, precision: Precision) {
        for v in &mut self.data {
            *v = v.round_to(precision);
        }
    }

    /// Max relative difference over the *valid interior* of a kernel — the
    /// region the stencil actually wrote. Boundary handling differences
    /// between implementations are excluded by construction.
    pub fn max_rel_diff_interior(&self, other: &Self, kernel: &StencilKernel) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        let v = self.valid_extent(kernel);
        let mut worst = 0.0f64;
        for z in 0..v[0] {
            for y in 0..v[1] {
                for x in 0..v[2] {
                    let a = self.get(z, y, x).to_f64();
                    let b = other.get(z, y, x).to_f64();
                    let d = (a - b).abs() / 1.0_f64.max(a.abs()).max(b.abs());
                    worst = worst.max(d);
                }
            }
        }
        worst
    }
}

/// A zero-copy, read-only view of the semantic `[nz, ny, nx]` field
/// inside a (possibly ghost-padded) storage buffer.
///
/// Execution backends keep their live state in whatever layout their hot
/// loop wants — the optimized engine in a halo-padded ping-pong buffer,
/// the naive and reference paths in plain semantic grids. `FieldView`
/// is the common observation surface over all of them: it carries the
/// semantic shape plus the storage strides, so reading `(z, y, x)` or a
/// whole row never copies or allocates. Materialize with
/// [`FieldView::to_grid`] only when an owned [`Grid`] is actually needed.
#[derive(Debug, Clone, Copy)]
pub struct FieldView<'a, R: Real> {
    data: &'a [R],
    dims: usize,
    shape: [usize; 3],
    row_stride: usize,
    plane_stride: usize,
}

impl<'a, R: Real> FieldView<'a, R> {
    /// View the whole of `grid` (strides equal the semantic shape).
    pub fn full(grid: &'a Grid<R>) -> Self {
        Self {
            data: &grid.data,
            dims: grid.dims,
            shape: grid.shape,
            row_stride: grid.shape[2],
            plane_stride: grid.shape[1] * grid.shape[2],
        }
    }

    /// View the low-corner `shape` window of a ghost-padded `grid`
    /// (the zero-copy analogue of [`Grid::window`]).
    ///
    /// # Panics
    /// Panics if `shape` exceeds the padded grid on any axis.
    pub fn windowed(grid: &'a Grid<R>, dims: usize, shape: [usize; 3]) -> Self {
        let s = grid.shape;
        assert!(
            (0..3).all(|a| shape[a] <= s[a]),
            "window {shape:?} larger than grid {s:?}"
        );
        Self {
            data: &grid.data,
            dims,
            shape,
            row_stride: s[2],
            plane_stride: s[1] * s[2],
        }
    }

    /// Semantic shape `[nz, ny, nx]`.
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// Field dimensionality (1–3).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total number of semantic points.
    pub fn len(&self) -> usize {
        self.shape[0] * self.shape[1] * self.shape[2]
    }

    /// `true` iff the view covers no points (never: extents are positive).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read `(z, y, x)`.
    #[inline]
    pub fn get(&self, z: usize, y: usize, x: usize) -> R {
        debug_assert!(z < self.shape[0] && y < self.shape[1] && x < self.shape[2]);
        self.data[z * self.plane_stride + y * self.row_stride + x]
    }

    /// The contiguous semantic row `(z, y, ..)` as a slice.
    #[inline]
    pub fn row(&self, z: usize, y: usize) -> &'a [R] {
        let base = z * self.plane_stride + y * self.row_stride;
        &self.data[base..base + self.shape[2]]
    }

    /// Iterate every semantic value in `z`-major order (probe-friendly:
    /// reductions over the live field without materializing a grid).
    pub fn iter(&self) -> impl Iterator<Item = R> + 'a {
        let (shape, plane_stride, row_stride, data) =
            (self.shape, self.plane_stride, self.row_stride, self.data);
        (0..shape[0]).flat_map(move |z| {
            (0..shape[1]).flat_map(move |y| {
                let base = z * plane_stride + y * row_stride;
                data[base..base + shape[2]].iter().copied()
            })
        })
    }

    /// Materialize an owned [`Grid`] of the semantic region (the one
    /// copy a zero-copy observer can explicitly opt into).
    pub fn to_grid(&self) -> Grid<R> {
        let mut out = Grid::zeros(self.dims, self.shape);
        for z in 0..self.shape[0] {
            for y in 0..self.shape[1] {
                let dst = (z * self.shape[1] + y) * self.shape[2];
                out.data[dst..dst + self.shape[2]].copy_from_slice(self.row(z, y));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut g = Grid::<f64>::zeros_2d(4, 5);
        assert_eq!(g.shape(), [1, 4, 5]);
        assert_eq!(g.dims(), 2);
        assert_eq!(g.len(), 20);
        g.set(0, 2, 3, 7.5);
        assert_eq!(g.get(0, 2, 3), 7.5);
        assert_eq!(g.index(0, 2, 3), 13);
        assert_eq!(g.row_stride(), 5);
    }

    #[test]
    fn three_d_strides() {
        let g = Grid::<f32>::zeros_3d(2, 3, 4);
        assert_eq!(g.plane_stride(), 12);
        assert_eq!(g.index(1, 2, 3), 23);
    }

    #[test]
    fn valid_extent_for_kernels() {
        let g = Grid::<f64>::zeros_2d(10, 12);
        let k = StencilKernel::box2d9p();
        assert_eq!(g.valid_extent(&k), [1, 8, 10]);
        assert_eq!(g.valid_points(&k), 80);
    }

    #[test]
    #[should_panic(expected = "exceeds grid extent")]
    fn kernel_too_large_panics() {
        let g = Grid::<f64>::zeros_2d(2, 2);
        let _ = g.valid_extent(&StencilKernel::box2d49p());
    }

    #[test]
    fn smooth_random_in_unit_interval_and_deterministic() {
        let a = Grid::<f32>::smooth_random(2, [1, 8, 8]);
        let b = Grid::<f32>::smooth_random(2, [1, 8, 8]);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
        // Not constant.
        assert!(a.as_slice().iter().any(|&v| v != a.get(0, 0, 0)));
    }

    #[test]
    fn quantize_rounds_through_precision() {
        let mut g = Grid::<f32>::from_fn_3d(1, [1, 1, 4], |_, _, x| 0.1 * (x as f32 + 1.0));
        g.quantize(Precision::Fp16);
        for x in 0..4 {
            let v = g.get(0, 0, x);
            assert_eq!(Precision::Fp16.round_f32(v), v, "already rounded");
        }
    }

    #[test]
    fn embed_window_round_trip() {
        let g = Grid::<f32>::smooth_random(3, [2, 3, 4]);
        let padded = g.embedded_in([2, 5, 7]);
        assert_eq!(padded.shape(), [2, 5, 7]);
        assert_eq!(padded.dims(), 3);
        // Low corner holds the original values, padding is zero.
        assert_eq!(padded.get(1, 2, 3), g.get(1, 2, 3));
        assert_eq!(padded.get(1, 4, 6), 0.0);
        assert_eq!(padded.get(0, 3, 0), 0.0);
        assert_eq!(padded.window([2, 3, 4]), g);
    }

    #[test]
    #[should_panic(expected = "smaller than grid")]
    fn embed_rejects_shrinking() {
        let g = Grid::<f32>::zeros_2d(4, 4);
        let _ = g.embedded_in([1, 4, 3]);
    }

    #[test]
    fn embed_into_matches_embedded_in() {
        let g = Grid::<f32>::smooth_random(3, [2, 3, 4]);
        let mut dst = Grid::<f32>::from_fn_3d(3, [2, 5, 7], |_, _, _| 9.0);
        g.embed_into(&mut dst);
        assert_eq!(dst, g.embedded_in([2, 5, 7]), "padding must be re-zeroed");
    }

    #[test]
    fn field_view_windowed_reads_through_padded_strides() {
        let g = Grid::<f32>::smooth_random(2, [1, 6, 5]);
        let padded = g.embedded_in([1, 9, 8]);
        let view = FieldView::windowed(&padded, 2, [1, 6, 5]);
        assert_eq!(view.shape(), [1, 6, 5]);
        assert_eq!(view.dims(), 2);
        assert_eq!(view.len(), 30);
        assert_eq!(view.get(0, 5, 4), g.get(0, 5, 4));
        assert_eq!(view.row(0, 3), {
            let s = g.as_slice();
            &s[3 * 5..4 * 5]
        });
        assert_eq!(view.to_grid(), g);
        let full = FieldView::full(&g);
        assert_eq!(full.to_grid(), g);
        assert_eq!(view.iter().collect::<Vec<_>>(), g.as_slice().to_vec());
    }

    #[test]
    fn interior_diff_ignores_boundary() {
        let k = StencilKernel::heat2d();
        let mut a = Grid::<f64>::zeros_2d(6, 6);
        let b = Grid::<f64>::zeros_2d(6, 6);
        // Difference only outside the 4×4 valid region.
        a.set(0, 5, 5, 100.0);
        assert_eq!(a.max_rel_diff_interior(&b, &k), 0.0);
        a.set(0, 1, 1, 1.0);
        assert!(a.max_rel_diff_interior(&b, &k) > 0.0);
    }
}
