//! Structured Sparsity Conversion (§3.2).
//!
//! Takes the staircase matrix `A'` from Duplicates Crush and produces a
//! column permutation (a PIT, Equation 5) under which every aligned
//! 4-column group of the permuted `A''` holds at most 2 nonzeros per row —
//! the 2:4-compatible layout sparse tensor cores require.
//!
//! The pairing comes from either
//!
//! - **Hierarchical Two-Level Matching** (Algorithm 1) using the
//!   staircase geometry `(n = k', g = gx, k = max(kx, ky))` — `O(k')`,
//!   pad-optimal per subgraph (Theorem 2); or
//! - the **Blossom** exact solver on the complement of the true conflict
//!   graph — handles arbitrary patterns and is globally pad-minimal,
//!   at `O(|E||V|²)` (fine for kernel-sized graphs, §3.2's fallback).
//!
//! `Auto` runs the hierarchical matcher and *validates* the result against
//! the true conflict graph (cheap), falling back to Blossom if the input
//! deviates from the staircase structure. Matched pairs are laid out two
//! per 4-group — `[a₁ b₁ | a₂ b₂]` — so conflict-free pairs imply ≤2
//! nonzeros per group in every row.

use crate::crush::CrushPlan;
use sparstencil_graph::conflict::conflict_graph;
use sparstencil_graph::hierarchical::{hierarchical_matching, StaircaseSpec};
use sparstencil_graph::matching::{min_padding_matching, PairList};
use sparstencil_mat::{BitMask, DenseMatrix, Permutation, GROUP};

/// Which matcher produced the conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Strategy {
    /// Always use Algorithm 1 (requires staircase-shaped input).
    Hierarchical,
    /// Always use the Blossom exact solver on the true conflict graph.
    Blossom,
    /// Hierarchical with validation, Blossom fallback (the default).
    Auto,
}

/// The result of Structured Sparsity Conversion.
#[derive(Debug, Clone)]
pub struct Conversion {
    /// Destination order over the `k'` source columns (PIT). Length is a
    /// multiple of 4; PAD entries are inserted zero columns.
    pub perm: Permutation,
    /// Number of inserted zero columns (before 4-group round-up).
    pub pad_count: usize,
    /// Matcher actually used ("hierarchical" or "blossom").
    pub strategy_used: &'static str,
}

impl Conversion {
    /// Logical column count after conversion (multiple of 4).
    pub fn k_converted(&self) -> usize {
        self.perm.len()
    }
}

/// Convert the columns of a 2D kernel's `A'` (width `k'`).
///
/// ```
/// use sparstencil::convert::{convert, violations_after, Strategy};
/// use sparstencil::crush::{build_a_prime, CrushPlan};
/// use sparstencil::stencil::StencilKernel;
///
/// let kernel = StencilKernel::box2d9p();
/// let plan = CrushPlan::new(3, 3, 4, 4);
/// let a = build_a_prime(&kernel.slice2d(0), &plan);
/// let conv = convert(&a, &plan, Strategy::Auto);
/// assert_eq!(violations_after(&a, &conv), 0); // 2:4-compatible
/// assert_eq!(conv.strategy_used, "hierarchical");
/// ```
///
/// # Panics
/// Panics if `a_stack` has no columns, or with `Strategy::Hierarchical`
/// when Algorithm 1's output is invalid for this matrix (non-staircase
/// input).
pub fn convert(a_stack: &DenseMatrix<f64>, plan: &CrushPlan, strategy: Strategy) -> Conversion {
    convert_segments(a_stack, plan, 1, strategy)
}

/// Convert a (possibly z-folded) kernel matrix: `segments` horizontally
/// concatenated `A'` blocks of width `k'` each (3D kernels fold their
/// `ez` depth slices into one operand of width `ez·k'`). Cross-segment
/// columns generally conflict in a non-staircase pattern, so `Auto`
/// typically falls back to the Blossom exact matcher for `segments > 1`.
pub fn convert_segments(
    a_stack: &DenseMatrix<f64>,
    plan: &CrushPlan,
    segments: usize,
    strategy: Strategy,
) -> Conversion {
    let n = a_stack.cols();
    assert!(n > 0, "cannot convert an empty matrix");
    assert_eq!(
        n,
        plan.k_prime() * segments,
        "matrix width must equal segments × k'"
    );

    let conflicts = conflict_graph(a_stack);

    let (pairs, used): (PairList, &'static str) = match strategy {
        Strategy::Blossom => (min_padding_matching(&conflicts), "blossom"),
        Strategy::Hierarchical | Strategy::Auto => {
            let spec = StaircaseSpec {
                n,
                g: plan.gx,
                k: plan.kx.max(plan.ky),
            };
            match hierarchical_matching(spec) {
                Ok(pl) if pl.validate(&conflicts).is_ok() => (pl, "hierarchical"),
                result => {
                    if matches!(strategy, Strategy::Hierarchical) {
                        match result.map(|pl| pl.validate(&conflicts)) {
                            Ok(Err(v)) => {
                                panic!("hierarchical matching invalid for this matrix: {v:?}")
                            }
                            // Unreachable: this arm only runs when the
                            // guard above saw validate() fail.
                            Ok(Ok(())) => unreachable!("validated on the guard path"),
                            Err(e) => panic!("hierarchical matching failed: {e}"),
                        }
                    }
                    (min_padding_matching(&conflicts), "blossom")
                }
            }
        }
    };

    let pad_count = pairs.pad_count();
    let perm = pairs_to_order(&pairs, n);
    Conversion {
        perm,
        pad_count,
        strategy_used: used,
    }
}

/// Lay matched pairs into a destination order: two pairs per aligned
/// 4-group (`[a₁ b₁ a₂ b₂]`), PAD partners as zero columns, tail rounded
/// up to a multiple of 4 with extra PADs.
fn pairs_to_order(pairs: &PairList, n: usize) -> Permutation {
    let mut order = Vec::with_capacity(pairs.pairs.len() * 2 + GROUP);
    for &(a, b) in &pairs.pairs {
        order.push(a);
        order.push(if b == PairList::PAD {
            Permutation::PAD
        } else {
            b
        });
    }
    while order.len() % GROUP != 0 {
        order.push(Permutation::PAD);
    }
    Permutation::from_order(order, n)
}

/// Verify that applying `conversion` to `a` yields a 2:4-compatible
/// layout; returns the violation count (0 on success). Used by tests and
/// by `Strategy::Auto`'s internal assertions.
pub fn violations_after(a: &DenseMatrix<f64>, conversion: &Conversion) -> usize {
    let permuted = conversion.perm.apply_to_cols(a);
    BitMask::from_matrix(&permuted).two_four_violations()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crush::build_a_prime;
    use crate::stencil::StencilKernel;

    fn convert_kernel(
        k: &StencilKernel,
        r1: usize,
        r2: usize,
        s: Strategy,
    ) -> (DenseMatrix<f64>, Conversion) {
        let [_, ky, kx] = k.extent();
        let plan = CrushPlan::new(ky, kx, r1, r2);
        let a = build_a_prime(&k.slice2d(0), &plan);
        let c = convert(&a, &plan, s);
        (a, c)
    }

    #[test]
    fn box2d9p_converts_clean() {
        for s in [Strategy::Hierarchical, Strategy::Blossom, Strategy::Auto] {
            let (a, c) = convert_kernel(&StencilKernel::box2d9p(), 4, 4, s);
            assert_eq!(violations_after(&a, &c), 0, "strategy {s:?}");
            assert_eq!(c.k_converted() % 4, 0);
        }
    }

    #[test]
    fn box2d49p_converts_clean() {
        let (a, c) = convert_kernel(&StencilKernel::box2d49p(), 4, 4, Strategy::Auto);
        assert_eq!(c.strategy_used, "hierarchical");
        assert_eq!(violations_after(&a, &c), 0);
    }

    #[test]
    fn star_kernels_convert_clean() {
        for s in [Strategy::Hierarchical, Strategy::Blossom] {
            let (a, c) = convert_kernel(&StencilKernel::star2d13p(), 4, 2, s);
            assert_eq!(violations_after(&a, &c), 0, "strategy {s:?}");
        }
    }

    #[test]
    fn blossom_never_pads_more_than_hierarchical() {
        for k in [
            StencilKernel::heat2d(),
            StencilKernel::box2d9p(),
            StencilKernel::box2d49p(),
            StencilKernel::star2d13p(),
        ] {
            for (r1, r2) in [(2, 2), (4, 4), (8, 2), (3, 5)] {
                let (_, ch) = convert_kernel(&k, r1, r2, Strategy::Hierarchical);
                let (_, cb) = convert_kernel(&k, r1, r2, Strategy::Blossom);
                assert!(
                    cb.pad_count <= ch.pad_count,
                    "{} r=({r1},{r2}): blossom {} vs hierarchical {}",
                    k.name(),
                    cb.pad_count,
                    ch.pad_count
                );
            }
        }
    }

    #[test]
    fn conversion_length_includes_pads() {
        let (_, c) = convert_kernel(&StencilKernel::box2d9p(), 4, 4, Strategy::Hierarchical);
        // k' = 36; conversion length = 36 + pads, rounded to multiple of 4.
        assert!(c.k_converted() >= 36);
        assert_eq!(c.k_converted() % 4, 0);
        assert_eq!(c.perm.pad_count() + 36, c.k_converted());
    }

    #[test]
    fn one_dimensional_staircase_converts() {
        let k = StencilKernel::heat1d();
        let plan = CrushPlan::new(1, 3, 16, 1);
        let a = build_a_prime(&k.slice2d(0), &plan);
        let c = convert(&a, &plan, Strategy::Auto);
        assert_eq!(violations_after(&a, &c), 0);
        assert_eq!(c.strategy_used, "hierarchical");
    }

    #[test]
    fn stacked_slices_share_one_permutation() {
        // 3D kernel: stack the three slice A' matrices; one permutation
        // must clean all of them simultaneously.
        let k = StencilKernel::heat3d();
        let plan = CrushPlan::new(3, 3, 4, 4);
        let slices: Vec<DenseMatrix<f64>> = (0..3)
            .map(|dz| build_a_prime(&k.slice2d(dz), &plan))
            .collect();
        let mut stack = DenseMatrix::zeros(3 * plan.m_prime(), plan.k_prime());
        for (i, s) in slices.iter().enumerate() {
            stack.set_block(i * plan.m_prime(), 0, s);
        }
        let c = convert(&stack, &plan, Strategy::Auto);
        assert_eq!(violations_after(&stack, &c), 0);
        for s in &slices {
            assert_eq!(violations_after(s, &c), 0, "per-slice violation");
        }
    }

    #[test]
    fn pit_preserves_product() {
        use sparstencil_mat::gemm;
        let (a, c) = convert_kernel(&StencilKernel::box2d9p(), 4, 3, Strategy::Auto);
        let b = DenseMatrix::from_fn(a.cols(), 7, |r, cc| ((r * 7 + cc * 3) % 11) as f64 - 5.0);
        let (ap, bp) = c.perm.pit(&a, &b);
        // Permutation reorders the additions: compare within rounding slack.
        let diff = gemm::matmul(&ap, &bp).max_abs_diff(&gemm::matmul(&a, &b));
        assert!(diff < 1e-12, "PIT deviation {diff}");
    }

    #[test]
    #[should_panic(expected = "must equal segments × k'")]
    fn wrong_width_panics() {
        let plan = CrushPlan::new(3, 3, 4, 4);
        let a = DenseMatrix::<f64>::zeros(4, 10);
        let _ = convert(&a, &plan, Strategy::Auto);
    }
}
