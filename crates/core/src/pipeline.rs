//! The top-level SparStencil API.
//!
//! [`Executor`] bundles the full flow of Figure-less §3: compile a kernel
//! (layout exploration → layout morphing → sparsity conversion → kernel
//! generation), execute it on the simulated sparse TCUs, verify against
//! the scalar reference, inspect the generated CUDA source, and profile
//! preprocessing overhead (Figure 8).

use crate::codegen;
use crate::exec::{self, RunStats};
use crate::grid::Grid;
use crate::plan::{self, CompileError, CompiledStencil, Options};
use crate::reference;
use crate::session::{Batch, EngineBackend, NaiveBackend, SessionError, Simulation};
use crate::stencil::StencilKernel;
use sparstencil_mat::Real;

/// A compiled, runnable stencil pipeline.
#[derive(Debug, Clone)]
pub struct Executor<R: Real> {
    plan: CompiledStencil<R>,
}

/// One point of the Figure-8 overhead profile.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OverheadPoint {
    /// Iteration count the overhead is amortized over.
    pub iters: usize,
    /// Transformation share of total time (TS in Figure 8).
    pub transform_pct: f64,
    /// Metadata-generation share (MD).
    pub metadata_pct: f64,
    /// Lookup-table share (LUT).
    pub lut_pct: f64,
}

impl<R: Real> Executor<R> {
    /// Compile `kernel` for `grid_shape` under `options`.
    pub fn new(
        kernel: &StencilKernel,
        grid_shape: [usize; 3],
        options: &Options,
    ) -> Result<Self, CompileError> {
        Ok(Self {
            plan: plan::compile(kernel, grid_shape, options)?,
        })
    }

    /// Compile `kernel` with the plan-time auto-tuner
    /// ([`plan::tune`]): tile shape and staging-window policy are
    /// chosen per kernel from the compiled tables, and the decision is
    /// returned alongside the executor. The tuned plan's output is
    /// bit-identical to [`Executor::new`]'s for every input and step
    /// count — the fixed-default path stays available as the oracle
    /// (tuning may change speed, never results).
    pub fn auto(
        kernel: &StencilKernel,
        grid_shape: [usize; 3],
        options: &Options,
    ) -> Result<(Self, plan::PlanChoice), CompileError> {
        let (plan, choice) = plan::tune(kernel, grid_shape, options)?;
        Ok((Self { plan }, choice))
    }

    /// The underlying compiled plan.
    pub fn plan(&self) -> &CompiledStencil<R> {
        &self.plan
    }

    /// Open a persistent [`Simulation`] session over `input` on the
    /// optimized engine: buffers are embedded, quantized, and allocated
    /// once, then [`Simulation::step_n`] advances with zero per-step
    /// heap allocations, [`Simulation::field`] observes the live field
    /// zero-copy, and [`Simulation::load`] reuses the session across
    /// inputs. The session borrows this executor's plan (see
    /// [`crate::session`] for the ownership story); use
    /// [`Executor::into_session`] for a self-contained session.
    ///
    /// # Panics
    /// Panics if the input shape differs from the plan's compile-time
    /// shape.
    pub fn session(&self, input: &Grid<R>) -> Simulation<'_, R> {
        Simulation::new(EngineBackend::new(&self.plan, input))
    }

    /// [`Executor::session`] with an explicit worker-lane count (see
    /// [`exec::run_with_parallelism`]); results and counters are
    /// identical for every lane count.
    ///
    /// # Panics
    /// Panics if the input shape differs from the plan's compile-time
    /// shape.
    pub fn session_with_parallelism(&self, input: &Grid<R>, lanes: usize) -> Simulation<'_, R> {
        Simulation::new(EngineBackend::with_parallelism(&self.plan, input, lanes))
    }

    /// Open a [`Batch`] of persistent sessions — one per input — over
    /// this executor's plan: every session shares the one compiled
    /// plan, and [`Batch::step_all`] advances them all through a single
    /// guided work queue with no barrier between sessions (see
    /// [`crate::session`]'s module docs for the ownership diagram).
    /// Each session remains bit-identical to a solo
    /// [`Executor::session`] over the same input.
    ///
    /// # Panics
    /// Panics if `inputs` is empty or any input's shape differs from
    /// the plan's compile-time shape.
    pub fn batch(&self, inputs: &[Grid<R>]) -> Batch<'_, R> {
        Batch::new(&self.plan, inputs)
    }

    /// Fallible [`Executor::batch`]: typed [`SessionError`]s
    /// (empty batch, shape mismatch, non-finite input) instead of
    /// panics — the form for serving paths that must degrade
    /// gracefully on bad caller input.
    pub fn try_batch(&self, inputs: &[Grid<R>]) -> Result<Batch<'_, R>, SessionError> {
        Batch::try_new(&self.plan, inputs)
    }

    /// [`Executor::batch`] with an explicit worker-lane count; results
    /// and counters are identical for every lane count.
    ///
    /// # Panics
    /// As [`Executor::batch`].
    pub fn batch_with_parallelism(&self, inputs: &[Grid<R>], lanes: usize) -> Batch<'_, R> {
        Batch::with_parallelism(&self.plan, inputs, lanes)
    }

    /// Fallible [`Executor::batch_with_parallelism`] (errors as
    /// [`Executor::try_batch`]).
    pub fn try_batch_with_parallelism(
        &self,
        inputs: &[Grid<R>],
        lanes: usize,
    ) -> Result<Batch<'_, R>, SessionError> {
        Batch::try_with_parallelism(&self.plan, inputs, lanes)
    }

    /// Fallible [`Executor::session`]: [`SessionError::ShapeMismatch`]
    /// for a wrong-shape input, [`SessionError::NonFiniteInput`] for an
    /// input containing NaN/Inf.
    pub fn try_session(&self, input: &Grid<R>) -> Result<Simulation<'_, R>, SessionError> {
        if input.shape() != self.plan.grid_shape {
            return Err(SessionError::ShapeMismatch {
                expected: self.plan.grid_shape,
                got: input.shape(),
            });
        }
        if let Some(index) = input.first_non_finite() {
            return Err(SessionError::NonFiniteInput { session: 0, index });
        }
        Ok(Simulation::new(EngineBackend::new(&self.plan, input)))
    }

    /// A session over the retained naive reference path — the same
    /// driver API, bit-identical results (the equivalence suite pins
    /// it), without the plan-time-table/ping-pong optimizations.
    ///
    /// # Panics
    /// Panics if the input shape differs from the plan's compile-time
    /// shape.
    pub fn session_naive(&self, input: &Grid<R>) -> Simulation<'_, R> {
        Simulation::new(NaiveBackend::new(&self.plan, input))
    }

    /// Consume the executor into a self-contained `'static` session that
    /// owns the compiled plan — the form to store in long-lived driver
    /// state or hand across API boundaries (the baseline crates return
    /// these).
    ///
    /// # Panics
    /// Panics if the input shape differs from the plan's compile-time
    /// shape.
    pub fn into_session(self, input: &Grid<R>) -> Simulation<'static, R> {
        Simulation::new(EngineBackend::owned(self.plan, input))
    }

    /// Execute `iters` steps functionally on the simulator, through the
    /// zero-allocation double-buffered engine (see [`exec`]'s module
    /// docs for the buffer ownership and scratch lifecycle). A thin
    /// wrapper over a throwaway [`Executor::session`].
    pub fn run(&self, input: &Grid<R>, iters: usize) -> (Grid<R>, RunStats) {
        exec::run(&self.plan, input, iters)
    }

    /// Execute through the retained naive reference path — bit-identical
    /// to [`Executor::run`] but without the plan-time-table/ping-pong
    /// optimizations. Useful as a cross-check and as the baseline for
    /// the `simulator_throughput` benchmarks. A thin wrapper over a
    /// throwaway [`Executor::session_naive`].
    pub fn run_naive(&self, input: &Grid<R>, iters: usize) -> (Grid<R>, RunStats) {
        exec::run_naive(&self.plan, input, iters)
    }

    /// Evaluate the analytic model at an arbitrary (paper-scale) problem
    /// size without functional execution.
    pub fn run_modelled(&self, grid_shape: [usize; 3], iters: usize) -> RunStats {
        exec::model_run(&self.plan, grid_shape, iters)
    }

    /// Run functionally and return the max relative interior error versus
    /// the scalar `f64` reference (after quantizing the reference input
    /// through the plan's precision, as the hardware would). Drives a
    /// single throwaway session — see [`Executor::verify_at`] to verify
    /// several iteration counts without re-paying setup per count.
    pub fn verify(&self, input: &Grid<R>, iters: usize) -> f64 {
        self.verify_at(input, &[iters])
            .pop()
            .expect("one checkpoint requested")
            .1
    }

    /// Verify at several iteration checkpoints through **one** session
    /// and **one** running reference field, both stepped incrementally —
    /// setup (embedding, quantization, buffer allocation) happens once,
    /// not once per count. `counts` must be non-decreasing. Returns
    /// `(iters, max relative interior error)` per checkpoint, comparing
    /// over the region that stays valid across that many applications.
    ///
    /// # Panics
    /// Panics if `counts` is not non-decreasing or the input shape
    /// differs from the plan's.
    pub fn verify_at(&self, input: &Grid<R>, counts: &[usize]) -> Vec<(usize, f64)> {
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "iteration checkpoints must be non-decreasing"
        );
        let k = &self.plan.kernel;
        let shape = self.plan.grid_shape;
        let mut sim = self.session(input);
        let mut want =
            Grid::<f64>::from_fn_3d(k.dims(), shape, |z, y, x| input.get(z, y, x).to_f64());
        want.quantize(self.plan.precision);

        let mut out = Vec::with_capacity(counts.len());
        let mut done = 0usize;
        for &c in counts {
            sim.step_n(c - done);
            for _ in done..c {
                want = reference::apply_parallel(k, &want);
            }
            done = c;
            let field = sim.field();
            let got64 =
                Grid::<f64>::from_fn_3d(k.dims(), shape, |z, y, x| field.get(z, y, x).to_f64());
            out.push((c, got64.max_rel_diff_interior(&want, &reach_probe(k, c))));
        }
        out
    }

    /// The CUDA source the code generator emits for this plan.
    pub fn cuda_source(&self) -> String {
        codegen::emit_cuda(&self.plan)
    }

    /// The Figure-8 overhead profile: preprocessing shares (TS / MD /
    /// LUT) of total runtime as a function of the iteration count the
    /// preprocessing is amortized over. Uses measured host times and the
    /// modelled per-iteration kernel time — evaluated **once** and
    /// scaled per checkpoint (steady-state per-step cost is
    /// iteration-invariant, exactly like a reused session's), so no
    /// setup or model evaluation is re-run per iteration count.
    pub fn overhead_profile(&self, iteration_counts: &[usize]) -> Vec<OverheadPoint> {
        let per_iter = self.run_modelled(self.plan.grid_shape, 1).seconds_per_iter;
        iteration_counts
            .iter()
            .map(|&iters| {
                let kernel_time = per_iter * iters as f64;
                let p = &self.plan.prep;
                // Search is part of transformation in the paper's TS bar.
                let ts = p.transform_s + p.search_s;
                let total = kernel_time + ts + p.metadata_s + p.lut_s;
                OverheadPoint {
                    iters,
                    transform_pct: 100.0 * ts / total,
                    metadata_pct: 100.0 * p.metadata_s / total,
                    lut_pct: 100.0 * p.lut_s / total,
                }
            })
            .collect()
    }
}

/// The zero-weight probe kernel whose valid region is exactly the set of
/// outputs that stay valid across `iters` stencil applications
/// (`reach = (e − 1)·iters + 1` per axis).
fn reach_probe(k: &StencilKernel, iters: usize) -> StencilKernel {
    let reach = k.extent().map(|e| (e - 1) * iters + 1);
    let ext = [
        if k.dims() == 3 { reach[0] } else { 1 },
        if k.dims() >= 2 { reach[1] } else { 1 },
        reach[2],
    ];
    StencilKernel::new(
        "reach-probe",
        k.dims(),
        ext,
        vec![0.0; ext[0] * ext[1] * ext[2]],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparstencil_mat::half::verify_tolerance;

    #[test]
    fn executor_end_to_end() {
        let ex = Executor::<f32>::new(&StencilKernel::box2d9p(), [1, 50, 50], &Options::default())
            .unwrap();
        let g = Grid::<f32>::smooth_random(2, [1, 50, 50]);
        let err = ex.verify(&g, 1);
        assert!(err <= verify_tolerance(ex.plan().precision), "err {err}");
    }

    #[test]
    fn cuda_source_nonempty() {
        let ex = Executor::<f32>::new(&StencilKernel::heat2d(), [1, 34, 34], &Options::default())
            .unwrap();
        assert!(ex.cuda_source().contains("sparstencil_kernel"));
    }

    #[test]
    fn overhead_decays_with_iterations() {
        let ex = Executor::<f32>::new(
            &StencilKernel::box2d49p(),
            [1, 130, 130],
            &Options::default(),
        )
        .unwrap();
        let profile = ex.overhead_profile(&[1, 10, 100, 1000]);
        assert_eq!(profile.len(), 4);
        let total = |p: &OverheadPoint| p.transform_pct + p.metadata_pct + p.lut_pct;
        for w in profile.windows(2) {
            assert!(
                total(&w[1]) <= total(&w[0]) + 1e-9,
                "overhead must decay: {:?}",
                profile
            );
        }
        assert!(total(&profile[3]) < total(&profile[0]));
    }

    #[test]
    fn modelled_run_at_larger_scale() {
        let ex = Executor::<f32>::new(&StencilKernel::box2d9p(), [1, 66, 66], &Options::default())
            .unwrap();
        let small = ex.run_modelled([1, 66, 66], 10);
        let big = ex.run_modelled([1, 1026, 1026], 10);
        assert!(
            big.gstencil_per_sec > small.gstencil_per_sec,
            "bigger problems amortize launches: {} vs {}",
            big.gstencil_per_sec,
            small.gstencil_per_sec
        );
    }
}
