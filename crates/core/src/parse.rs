//! A small textual format for stencil kernels.
//!
//! Downstream users (and the paper's 79-kernel evaluation protocol)
//! need kernels that are data, not code. Two equivalent layouts are
//! accepted:
//!
//! **Grid form** — weights written as the bounding-box rows (planes
//! separated by `plane` lines for 3D):
//!
//! ```text
//! kernel heat2d
//! dims 2
//! extent 3 3
//! weights
//! 0     0.125 0
//! 0.125 0.5   0.125
//! 0     0.125 0
//! ```
//!
//! **Point form** — one `point dz dy dx weight` line per nonzero, with
//! offsets relative to the bounding-box corner:
//!
//! ```text
//! kernel cross
//! dims 2
//! extent 3 3
//! point 0 0 1  0.25
//! point 0 1 0  0.25
//! point 0 1 2  0.25
//! point 0 2 1  0.25
//! ```
//!
//! `#` starts a comment; blank lines are ignored. 1D kernels use
//! `extent N`, 2D `extent EY EX`, 3D `extent EZ EY EX`.

use crate::stencil::StencilKernel;

/// Parse errors with line positions.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number (0 for end-of-input errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse a kernel from the textual format.
pub fn parse_kernel(input: &str) -> Result<StencilKernel, ParseError> {
    let mut name: Option<String> = None;
    let mut dims: Option<usize> = None;
    let mut extent: Option<[usize; 3]> = None;
    let mut weights: Option<Vec<f64>> = None;
    let mut points: Vec<(usize, usize, usize, f64)> = Vec::new();
    let mut in_weights = false;
    let mut weight_values: Vec<f64> = Vec::new();

    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let Some(head) = tokens.next() else {
            continue; // unreachable: the line was checked non-empty
        };

        if in_weights {
            // Inside the weights block everything numeric belongs to it;
            // `plane` separators are accepted and ignored.
            if head == "plane" {
                continue;
            }
            if head.parse::<f64>().is_ok() {
                for tok in std::iter::once(head).chain(tokens) {
                    weight_values.push(
                        tok.parse::<f64>()
                            .map_err(|_| err(lineno, format!("bad weight `{tok}`")))?,
                    );
                }
                continue;
            }
            // Any keyword terminates the weights block.
            weights = Some(std::mem::take(&mut weight_values));
            in_weights = false;
        }

        match head {
            "kernel" => {
                let n: Vec<&str> = tokens.collect();
                if n.is_empty() {
                    return Err(err(lineno, "kernel requires a name"));
                }
                name = Some(n.join(" "));
            }
            "dims" => {
                let d = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "dims requires a value"))?;
                let d: usize = d
                    .parse()
                    .map_err(|_| err(lineno, format!("bad dims `{d}`")))?;
                if !(1..=3).contains(&d) {
                    return Err(err(lineno, "dims must be 1, 2 or 3"));
                }
                dims = Some(d);
            }
            "extent" => {
                let vals: Result<Vec<usize>, _> = tokens.map(str::parse).collect();
                let vals = vals.map_err(|_| err(lineno, "bad extent values"))?;
                let d = dims.ok_or_else(|| err(lineno, "extent must follow dims"))?;
                if vals.len() != d {
                    return Err(err(
                        lineno,
                        format!("extent expects {d} values for dims {d}, got {}", vals.len()),
                    ));
                }
                if vals.contains(&0) {
                    return Err(err(lineno, "extents must be positive"));
                }
                let mut e = [1usize; 3];
                e[3 - d..].copy_from_slice(&vals);
                extent = Some(e);
            }
            "weights" => {
                if extent.is_none() {
                    return Err(err(lineno, "weights must follow extent"));
                }
                in_weights = true;
            }
            "point" => {
                let vals: Vec<&str> = tokens.collect();
                if vals.len() != 4 {
                    return Err(err(lineno, "point expects `dz dy dx weight`"));
                }
                let dz: usize = vals[0]
                    .parse()
                    .map_err(|_| err(lineno, "bad point offset"))?;
                let dy: usize = vals[1]
                    .parse()
                    .map_err(|_| err(lineno, "bad point offset"))?;
                let dx: usize = vals[2]
                    .parse()
                    .map_err(|_| err(lineno, "bad point offset"))?;
                let w: f64 = vals[3]
                    .parse()
                    .map_err(|_| err(lineno, "bad point weight"))?;
                points.push((dz, dy, dx, w));
            }
            other => return Err(err(lineno, format!("unknown directive `{other}`"))),
        }
    }
    if in_weights {
        weights = Some(weight_values);
    }

    let name = name.ok_or_else(|| err(0, "missing `kernel` name"))?;
    let dims = dims.ok_or_else(|| err(0, "missing `dims`"))?;
    let extent = extent.ok_or_else(|| err(0, "missing `extent`"))?;
    let [ez, ey, ex] = extent;

    let weight_vec = match (weights, points.is_empty()) {
        (Some(w), true) => {
            if w.len() != ez * ey * ex {
                return Err(err(
                    0,
                    format!(
                        "weights block holds {} values, extent needs {}",
                        w.len(),
                        ez * ey * ex
                    ),
                ));
            }
            w
        }
        (None, false) => {
            let mut w = vec![0.0; ez * ey * ex];
            for (dz, dy, dx, v) in points {
                if dz >= ez || dy >= ey || dx >= ex {
                    return Err(err(0, format!("point ({dz},{dy},{dx}) outside extent")));
                }
                w[(dz * ey + dy) * ex + dx] = v;
            }
            w
        }
        (Some(_), false) => {
            return Err(err(
                0,
                "use either a weights block or point lines, not both",
            ))
        }
        (None, true) => return Err(err(0, "no weights given")),
    };

    if weight_vec.iter().all(|&w| w == 0.0) {
        return Err(err(0, "kernel has no nonzero weights"));
    }
    Ok(StencilKernel::new(name, dims, extent, weight_vec))
}

/// Serialize a kernel back into the grid-form text (round-trips through
/// [`parse_kernel`]).
pub fn format_kernel(kernel: &StencilKernel) -> String {
    use std::fmt::Write as _;
    let [ez, ey, ex] = kernel.extent();
    let mut s = String::new();
    let _ = writeln!(s, "kernel {}", kernel.name());
    let _ = writeln!(s, "dims {}", kernel.dims());
    match kernel.dims() {
        1 => {
            let _ = writeln!(s, "extent {ex}");
        }
        2 => {
            let _ = writeln!(s, "extent {ey} {ex}");
        }
        _ => {
            let _ = writeln!(s, "extent {ez} {ey} {ex}");
        }
    }
    let _ = writeln!(s, "weights");
    for z in 0..ez {
        if z > 0 {
            let _ = writeln!(s, "plane");
        }
        for y in 0..ey {
            let row: Vec<String> = (0..ex)
                .map(|x| format!("{}", kernel.weight(z, y, x)))
                .collect();
            let _ = writeln!(s, "{}", row.join(" "));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_form_2d() {
        let k = parse_kernel(
            "kernel heat2d\n\
             dims 2\n\
             extent 3 3\n\
             weights\n\
             0 0.125 0\n\
             0.125 0.5 0.125\n\
             0 0.125 0\n",
        )
        .unwrap();
        assert_eq!(k.name(), "heat2d");
        assert_eq!(k.points(), 5);
        assert_eq!(k.weight(0, 1, 1), 0.5);
        assert_eq!(k, StencilKernel::heat2d().with_name("heat2d"));
    }

    #[test]
    fn point_form_2d() {
        let k = parse_kernel(
            "kernel cross\n\
             dims 2\n\
             extent 3 3\n\
             point 0 0 1 0.25\n\
             point 0 1 0 0.25\n\
             point 0 1 2 0.25\n\
             point 0 2 1 0.25\n",
        )
        .unwrap();
        assert_eq!(k.points(), 4);
        assert_eq!(k.weight(0, 0, 1), 0.25);
        assert_eq!(k.weight(0, 1, 1), 0.0);
    }

    #[test]
    fn one_dimensional_extent_shorthand() {
        let k = parse_kernel("kernel h1\ndims 1\nextent 3\nweights\n0.25 0.5 0.25\n").unwrap();
        assert_eq!(k.extent(), [1, 1, 3]);
        assert_eq!(k.dims(), 1);
    }

    #[test]
    fn three_dimensional_with_planes() {
        let text = "kernel h3\ndims 3\nextent 3 3 3\nweights\n\
            0 0 0\n0 0.1 0\n0 0 0\nplane\n\
            0 0.1 0\n0.1 0.4 0.1\n0 0.1 0\nplane\n\
            0 0 0\n0 0.1 0\n0 0 0\n";
        let k = parse_kernel(text).unwrap();
        assert_eq!(k.points(), 7);
        assert_eq!(k, StencilKernel::heat3d().with_name("h3"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let k = parse_kernel(
            "# a heat kernel\nkernel h\n\ndims 1\nextent 3 # inline comment\nweights\n1 2 1\n",
        )
        .unwrap();
        assert_eq!(k.points(), 3);
    }

    #[test]
    fn roundtrip_all_table2_kernels() {
        for k in [
            StencilKernel::heat1d(),
            StencilKernel::onedim5p(),
            StencilKernel::heat2d(),
            StencilKernel::box2d49p(),
            StencilKernel::star2d13p(),
            StencilKernel::heat3d(),
            StencilKernel::box3d27p(),
        ] {
            let text = format_kernel(&k);
            let back = parse_kernel(&text).unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            assert_eq!(back, k, "roundtrip failed for {}", k.name());
        }
    }

    #[test]
    fn error_cases_report_lines() {
        assert!(parse_kernel("dims 2\n")
            .unwrap_err()
            .message
            .contains("kernel"));
        let e = parse_kernel("kernel x\ndims 7\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_kernel("kernel x\ndims 2\nextent 3\n").unwrap_err();
        assert!(e.message.contains("expects 2 values"));
        let e = parse_kernel("kernel x\ndims 2\nextent 3 3\nweights\n1 2 3\n").unwrap_err();
        assert!(e.message.contains("holds 3 values"));
        let e = parse_kernel("kernel x\ndims 2\nextent 3 3\npoint 0 5 0 1.0\n").unwrap_err();
        assert!(e.message.contains("outside extent"));
        let e = parse_kernel("kernel x\ndims 2\nextent 3 3\nbogus 1\n").unwrap_err();
        assert!(e.message.contains("unknown directive"));
        let e = parse_kernel("kernel x\ndims 2\nextent 3 3\nweights\n0 0 0\n0 0 0\n0 0 0\n")
            .unwrap_err();
        assert!(e.message.contains("no nonzero"));
    }

    #[test]
    fn parsed_kernel_runs_through_the_pipeline() {
        use crate::pipeline::Executor;
        use crate::plan::Options;
        let k = parse_kernel(
            "kernel custom-L\ndims 2\nextent 3 3\n\
             point 0 0 0 0.2\npoint 0 1 0 0.2\npoint 0 2 0 0.2\n\
             point 0 2 1 0.2\npoint 0 2 2 0.2\n",
        )
        .unwrap();
        let shape = [1, 40, 40];
        let exec = Executor::<f32>::new(&k, shape, &Options::default()).unwrap();
        let g = crate::grid::Grid::<f32>::smooth_random(2, shape);
        let err = exec.verify(&g, 1);
        assert!(err < 5e-2, "custom kernel err {err}");
    }
}
