//! Scalar reference executors — the ground truth every accelerated path
//! is verified against.
//!
//! `apply` computes one stencil step with valid-region semantics (outputs
//! written at `0..n−e+1` per axis, remaining cells copied from the input);
//! `apply_parallel` is the Rayon row-parallel equivalent with identical
//! per-point arithmetic order, so the two agree bit-for-bit. `iterate`
//! runs multiple steps with buffer swapping, the execution model of every
//! benchmark (Equation 12 counts `T` iterations).

use crate::grid::Grid;
use crate::stencil::StencilKernel;
use rayon::prelude::*;
use sparstencil_mat::Real;

/// One stencil step, serial. Returns a new grid: valid region updated,
/// boundary copied from the input.
pub fn apply<R: Real>(kernel: &StencilKernel, input: &Grid<R>) -> Grid<R> {
    let mut out = input.clone();
    let v = input.valid_extent(kernel);
    let e = kernel.extent();
    for oz in 0..v[0] {
        for oy in 0..v[1] {
            for ox in 0..v[2] {
                let mut acc = R::ZERO;
                for dz in 0..e[0] {
                    for dy in 0..e[1] {
                        for dx in 0..e[2] {
                            let w = kernel.weight(dz, dy, dx);
                            if w == 0.0 {
                                continue;
                            }
                            acc += R::from_f64(w) * input.get(oz + dz, oy + dy, ox + dx);
                        }
                    }
                }
                out.set(oz, oy, ox, acc);
            }
        }
    }
    out
}

/// One stencil step, Rayon-parallel over output rows. Identical per-point
/// arithmetic order to [`apply`].
pub fn apply_parallel<R: Real>(kernel: &StencilKernel, input: &Grid<R>) -> Grid<R> {
    let mut out = input.clone();
    let v = input.valid_extent(kernel);
    let e = kernel.extent();
    let [_, ny, nx] = input.shape();
    let row_elems = nx;

    // Parallelize over (z, y) output rows; each row band of the output is
    // disjoint, so we can split the output buffer mutably by rows.
    let valid_rows: Vec<(usize, usize)> = (0..v[0])
        .flat_map(|z| (0..v[1]).map(move |y| (z, y)))
        .collect();

    let results: Vec<(usize, Vec<R>)> = valid_rows
        .par_iter()
        .map(|&(oz, oy)| {
            let mut row = vec![R::ZERO; v[2]];
            for (ox, slot) in row.iter_mut().enumerate() {
                let mut acc = R::ZERO;
                for dz in 0..e[0] {
                    for dy in 0..e[1] {
                        for dx in 0..e[2] {
                            let w = kernel.weight(dz, dy, dx);
                            if w == 0.0 {
                                continue;
                            }
                            acc += R::from_f64(w) * input.get(oz + dz, oy + dy, ox + dx);
                        }
                    }
                }
                *slot = acc;
            }
            ((oz * ny + oy) * row_elems, row)
        })
        .collect();

    for (base, row) in results {
        out.as_mut_slice()[base..base + row.len()].copy_from_slice(&row);
    }
    out
}

/// Run `iters` serial steps with buffer swapping.
pub fn iterate<R: Real>(kernel: &StencilKernel, input: &Grid<R>, iters: usize) -> Grid<R> {
    let mut cur = input.clone();
    for _ in 0..iters {
        cur = apply(kernel, &cur);
    }
    cur
}

/// Run `iters` parallel steps with buffer swapping.
pub fn iterate_parallel<R: Real>(kernel: &StencilKernel, input: &Grid<R>, iters: usize) -> Grid<R> {
    let mut cur = input.clone();
    for _ in 0..iters {
        cur = apply_parallel(kernel, &cur);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_is_shift_free() {
        // A 1×1×1 kernel with weight 1 leaves the grid unchanged.
        let k = StencilKernel::new("id", 2, [1, 1, 1], vec![1.0]);
        let g = Grid::<f64>::smooth_random(2, [1, 6, 7]);
        assert_eq!(apply(&k, &g), g);
    }

    #[test]
    fn constant_field_is_fixed_point_of_normalized_kernels() {
        // Σw = 1 kernels preserve constant fields on the interior.
        for k in [
            StencilKernel::heat1d(),
            StencilKernel::heat2d(),
            StencilKernel::box2d9p(),
            StencilKernel::heat3d(),
            StencilKernel::box3d27p(),
        ] {
            let shape = match k.dims() {
                1 => [1, 1, 32],
                2 => [1, 12, 12],
                _ => [8, 8, 8],
            };
            let g = Grid::<f64>::from_fn_3d(k.dims(), shape, |_, _, _| 2.5);
            let out = apply(&k, &g);
            let v = g.valid_extent(&k);
            for z in 0..v[0] {
                for y in 0..v[1] {
                    for x in 0..v[2] {
                        assert!(
                            (out.get(z, y, x) - 2.5).abs() < 1e-12,
                            "kernel {} not conservative",
                            k.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn known_1d_values() {
        // Heat-1D on [0,1,2,3,4]: out[i] = 0.25 a + 0.5 b + 0.25 c.
        let g = Grid::<f64>::from_fn_3d(1, [1, 1, 5], |_, _, x| x as f64);
        let out = apply(&StencilKernel::heat1d(), &g);
        assert_eq!(out.get(0, 0, 0), 1.0);
        assert_eq!(out.get(0, 0, 1), 2.0);
        assert_eq!(out.get(0, 0, 2), 3.0);
        // Boundary copied.
        assert_eq!(out.get(0, 0, 3), 3.0);
        assert_eq!(out.get(0, 0, 4), 4.0);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        for k in [
            StencilKernel::heat2d(),
            StencilKernel::box2d49p(),
            StencilKernel::star2d13p(),
            StencilKernel::heat3d(),
        ] {
            let shape = if k.dims() == 3 {
                [9, 10, 11]
            } else {
                [1, 17, 19]
            };
            let g = Grid::<f64>::smooth_random(k.dims(), shape);
            assert_eq!(apply(&k, &g), apply_parallel(&k, &g), "kernel {}", k.name());
        }
    }

    #[test]
    fn temporal_fusion_equals_repeated_steps_on_interior() {
        let k = StencilKernel::heat2d();
        let fused = k.temporal_fusion(3);
        let g = Grid::<f64>::smooth_random(2, [1, 16, 16]);
        let stepped = iterate(&k, &g, 3);
        let direct = apply(&fused, &g);
        // Compare on the fused kernel's valid region (deep interior).
        let diff = direct.max_rel_diff_interior(&stepped, &fused);
        assert!(diff < 1e-12, "fusion mismatch: {diff}");
    }

    #[test]
    fn iterate_zero_steps_is_identity() {
        let g = Grid::<f64>::smooth_random(2, [1, 8, 8]);
        assert_eq!(iterate(&StencilKernel::heat2d(), &g, 0), g);
    }

    #[test]
    fn iterate_parallel_matches_serial() {
        let k = StencilKernel::box2d9p();
        let g = Grid::<f64>::smooth_random(2, [1, 12, 12]);
        assert_eq!(iterate(&k, &g, 3), iterate_parallel(&k, &g, 3));
    }
}
