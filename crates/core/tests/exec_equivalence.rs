//! Equivalence suite: the optimized execution engine (`exec::run` —
//! halo-padded interior-only planning, ping-pong buffers, plan-time
//! gather tables, overwrite-first accumulators, per-worker scratch,
//! guided work partitioning, parallel direct scatter, closed-form
//! counters) must be indistinguishable from the retained naive
//! reference path (`exec::run_naive`): bit-identical output grids and
//! identical modelled counters, across dimensionalities, modes,
//! fragment shapes, layouts, grid asymmetries, and iteration counts.

use sparstencil::exec::{model_run, run, run_naive, run_with_parallelism};
use sparstencil::grid::Grid;
use sparstencil::layout::ExecMode;
use sparstencil::plan::{compile, Options};
use sparstencil::stencil::StencilKernel;
use sparstencil_tcu::FragmentShape;

fn assert_equivalent(k: &StencilKernel, shape: [usize; 3], opts: &Options, iters: usize) {
    let plan = compile::<f32>(k, shape, opts).unwrap();
    let input = Grid::<f32>::smooth_random(k.dims(), shape);

    let (fast, fast_stats) = run(&plan, &input, iters);
    let (naive, naive_stats) = run_naive(&plan, &input, iters);

    assert_eq!(
        fast,
        naive,
        "{}: optimized and naive grids must be bit-identical (iters={iters})",
        k.name()
    );
    assert_eq!(
        fast_stats.counters,
        naive_stats.counters,
        "{}: counters must be identical (iters={iters})",
        k.name()
    );
    assert_eq!(fast_stats.iters, naive_stats.iters);
    assert_eq!(fast_stats.points_per_iter, naive_stats.points_per_iter);
    // Timing is a pure function of the counters, so it must agree too.
    assert_eq!(fast_stats.total_seconds, naive_stats.total_seconds);
}

#[test]
fn equivalent_1d_kernels() {
    for k in [StencilKernel::heat1d(), StencilKernel::onedim5p()] {
        assert_equivalent(&k, [1, 1, 400], &Options::default(), 1);
    }
}

#[test]
fn equivalent_2d_kernels() {
    for k in [
        StencilKernel::heat2d(),
        StencilKernel::box2d9p(),
        StencilKernel::star2d13p(),
        StencilKernel::box2d49p(),
    ] {
        assert_equivalent(&k, [1, 48, 52], &Options::default(), 1);
    }
}

#[test]
fn equivalent_3d_kernels() {
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    for k in [StencilKernel::heat3d(), StencilKernel::box3d27p()] {
        assert_equivalent(&k, [12, 20, 20], &opts, 1);
    }
}

#[test]
fn equivalent_multi_iteration() {
    // Several steps exercise the ping-pong swap, the boundary-copied-once
    // invariant, and scratch reuse across steps.
    assert_equivalent(
        &StencilKernel::heat2d(),
        [1, 40, 40],
        &Options::default(),
        5,
    );
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::heat3d(), [10, 18, 18], &opts, 3);
}

#[test]
fn equivalent_dense_mode() {
    let opts = Options {
        mode: ExecMode::DenseTcu,
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::box2d9p(), [1, 40, 44], &opts, 2);
}

#[test]
fn equivalent_multi_m_strip_layout() {
    // m' = 32 → two fragment m-strips.
    let opts = Options {
        layout: Some((8, 4)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::box2d9p(), [1, 52, 68], &opts, 2);
}

#[test]
fn equivalent_alternate_fragments() {
    let sparse16 = Options {
        frag: Some(FragmentShape::sparse_m16n16k16()),
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::heat2d(), [1, 50, 50], &sparse16, 1);

    let wide_n = Options {
        frag: Some(FragmentShape::m16n32k8()),
        mode: ExecMode::DenseTcu,
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::box2d9p(), [1, 44, 60], &wide_n, 1);
}

#[test]
fn equivalent_edge_heavy_layouts() {
    // Deliberately misaligned grids: valid extents not multiples of
    // (r1, r2) produce partial tiles on both axes, and tile counts not
    // multiples of frag.n produce tail column blocks — the scatter
    // bounds-check path and the stale-tail-column invariant.
    let opts = Options {
        layout: Some((5, 3)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::box2d9p(), [1, 39, 41], &opts, 2);
    assert_equivalent(&StencilKernel::star2d13p(), [1, 37, 43], &opts, 1);
}

#[test]
fn equivalent_no_lut_flag() {
    let opts = Options {
        flags: sparstencil::plan::OptFlags {
            lut: false,
            double_buffer: false,
        },
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::box2d9p(), [1, 50, 50], &opts, 1);
}

#[test]
fn equivalent_fp64_dense() {
    let opts = Options {
        precision: sparstencil_mat::half::Precision::Fp64,
        mode: ExecMode::DenseTcu,
        layout: Some((2, 4)),
        ..Options::default()
    };
    let k = StencilKernel::heat2d();
    let shape = [1, 34, 34];
    let plan = compile::<f64>(&k, shape, &opts).unwrap();
    let input = Grid::<f64>::smooth_random(2, shape);
    let (fast, fs) = run(&plan, &input, 2);
    let (naive, ns) = run_naive(&plan, &input, 2);
    assert_eq!(fast, naive);
    assert_eq!(fs.counters, ns.counters);
}

#[test]
fn equivalent_asymmetric_grids() {
    // All-distinct extents per axis exercise the padded planner's
    // per-axis ghost-zone arithmetic (pad_ny ≠ pad_nx, and a z extent
    // that is no multiple of either).
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::heat2d(), [1, 96, 64], &opts, 2);
    assert_equivalent(&StencilKernel::box3d27p(), [12, 28, 20], &opts, 1);
    // Asymmetric layout on an asymmetric grid: ghost tiles on both axes.
    let skewed = Options {
        layout: Some((6, 2)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::box2d9p(), [1, 45, 61], &skewed, 2);
}

#[test]
fn equivalent_staged_sliding_window_long_runs() {
    // Runs much longer than the 3-plane window: the staged ring cycles
    // through every phase many times per run, reusing 2 of 3 staged
    // planes per steady-state work item, across several steps (each
    // step re-stages from the swapped buffer at every run start). The
    // star kernel additionally stages a union window larger than any
    // single depth's referenced cell set.
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::box3d27p(), [16, 20, 20], &opts, 2);
    assert_equivalent(&StencilKernel::heat3d(), [15, 18, 22], &opts, 3);
    // Misaligned layout: partial tiles and tail column blocks through
    // the staged path (stale staged columns must never be observable).
    let skewed = Options {
        layout: Some((5, 3)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::heat3d(), [11, 19, 23], &skewed, 2);
}

#[test]
fn equivalent_radius2_star() {
    // Radius-2 star (extent 5×5, zero corners) through the staged path:
    // the program compiler skips the zero weights, the union staging
    // window drops window cells no program references, and the staged
    // programs rebase around the holes; both paths must still agree
    // exactly.
    let opts = Options {
        layout: Some((5, 3)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::star2d(2), [1, 41, 39], &opts, 2);
    assert_equivalent(
        &StencilKernel::star2d(2),
        [1, 36, 52],
        &Options::default(),
        1,
    );
}

#[test]
fn equivalent_temporal_fusion_3x() {
    // Fused kernels widen the operand substantially (k' grows with the
    // composed extent, and with it the staged band size); the staged
    // engine must stay exact through them.
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    let fused2d = StencilKernel::heat2d().temporal_fusion(3);
    assert_equivalent(&fused2d, [1, 40, 44], &opts, 2);
    let fused1d = StencilKernel::heat1d().temporal_fusion(3);
    assert_equivalent(&fused1d, [1, 1, 300], &Options::default(), 2);
}

#[test]
fn equivalent_across_lane_counts() {
    // The guided scheduler partitions work dynamically, but tiles are
    // disjoint and counters closed-form, so grids and stats must be
    // identical for every lane count (including lanes beyond the pool).
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    let k = StencilKernel::box3d27p();
    let shape = [10, 22, 18];
    let plan = compile::<f32>(&k, shape, &opts).unwrap();
    let input = Grid::<f32>::smooth_random(3, shape);
    let (base, base_stats) = run_with_parallelism(&plan, &input, 2, 1);
    for lanes in [2, 3, 8] {
        let (g, stats) = run_with_parallelism(&plan, &input, 2, lanes);
        assert_eq!(base, g, "lanes={lanes}: grids must be identical");
        assert_eq!(base_stats.counters, stats.counters, "lanes={lanes}");
    }
}

#[test]
fn all_column_blocks_interior_after_padding() {
    // The tentpole invariant: planning over the halo-padded domain makes
    // 100% of tiles (hence 100% of column blocks) interior, even for
    // misaligned layouts that previously routed ~25% of blocks through
    // the edge path.
    type Case = (StencilKernel, [usize; 3], Option<(usize, usize)>);
    let cases: [Case; 4] = [
        (StencilKernel::box2d9p(), [1, 39, 41], Some((5, 3))),
        (StencilKernel::box3d27p(), [12, 20, 20], Some((4, 4))),
        (StencilKernel::star2d13p(), [1, 37, 43], Some((5, 3))),
        (StencilKernel::box2d49p(), [1, 48, 52], None),
    ];
    for (kernel, shape, layout) in cases {
        let opts = Options {
            layout,
            ..Options::default()
        };
        let plan = compile::<f32>(&kernel, shape, &opts).unwrap();
        assert!(
            plan.exec.tiles.iter().all(|t| t.interior),
            "{}: every tile must be interior after padding",
            kernel.name()
        );
        assert_eq!(
            plan.exec.edge_block_fraction(),
            0.0,
            "{}: edge block fraction must be zero",
            kernel.name()
        );
        // The padded plane covers the semantic plane.
        assert!(plan.geom.pad_ny >= shape[1] && plan.geom.pad_nx >= shape[2]);
    }
}

#[test]
fn optimized_counters_still_match_model() {
    // The closed-form bulk counter update must agree with the analytic
    // model exactly, like the naive per-op counting did.
    let k = StencilKernel::box2d9p();
    let opts = Options {
        layout: Some((4, 2)),
        ..Options::default()
    };
    let plan = compile::<f32>(&k, [1, 50, 50], &opts).unwrap();
    let input = Grid::<f32>::smooth_random(2, [1, 50, 50]);
    let (_, functional) = run(&plan, &input, 1);
    let modelled = model_run(&plan, [1, 50, 50], 1);
    assert_eq!(functional.counters.n_mma(), modelled.counters.n_mma());
    assert_eq!(functional.counters.n_mma(), plan.geom.n_mma);
}

#[test]
fn equivalent_forced_scalar_dispatch() {
    // The run-time kernel override: forcing the scalar blocked kernels
    // on AVX2 hardware must leave grids, counters, and stats
    // bit-identical to the default dispatch and to the naive oracle —
    // the dispatch decision is unobservable in every output bit. The
    // guard restores the process-global flag even if an assert fires
    // (the flag only selects between bit-identical kernels, so a
    // concurrent test observing it mid-flip stays correct).
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            sparstencil::exec::simd::force_scalar(false);
        }
    }
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    let k = StencilKernel::box3d27p();
    let shape = [10, 22, 18];
    let plan = compile::<f32>(&k, shape, &opts).unwrap();
    let input = Grid::<f32>::smooth_random(3, shape);

    let (default_out, default_stats) = run(&plan, &input, 3);

    let _restore = Restore;
    sparstencil::exec::simd::force_scalar(true);
    assert_eq!(sparstencil::exec::simd::kernel_path(), "scalar");
    let (scalar_out, scalar_stats) = run(&plan, &input, 3);
    let (naive_out, naive_stats) = run_naive(&plan, &input, 3);

    assert_eq!(
        scalar_out, default_out,
        "forced-scalar grid must be bit-identical to the default dispatch"
    );
    assert_eq!(
        scalar_out, naive_out,
        "forced-scalar grid must be bit-identical to the naive oracle"
    );
    assert_eq!(scalar_stats.counters, default_stats.counters);
    assert_eq!(scalar_stats.counters, naive_stats.counters);
}
