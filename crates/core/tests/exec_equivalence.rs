//! Equivalence suite: the optimized execution engine (`exec::run` —
//! ping-pong buffers, plan-time gather tables, per-worker scratch,
//! parallel direct scatter, closed-form counters) must be
//! indistinguishable from the retained naive reference path
//! (`exec::run_naive`): bit-identical output grids and identical
//! modelled counters, across dimensionalities, modes, fragment shapes,
//! layouts, and iteration counts.

use sparstencil::exec::{model_run, run, run_naive};
use sparstencil::grid::Grid;
use sparstencil::layout::ExecMode;
use sparstencil::plan::{compile, Options};
use sparstencil::stencil::StencilKernel;
use sparstencil_tcu::FragmentShape;

fn assert_equivalent(k: &StencilKernel, shape: [usize; 3], opts: &Options, iters: usize) {
    let plan = compile::<f32>(k, shape, opts).unwrap();
    let input = Grid::<f32>::smooth_random(k.dims(), shape);

    let (fast, fast_stats) = run(&plan, &input, iters);
    let (naive, naive_stats) = run_naive(&plan, &input, iters);

    assert_eq!(
        fast,
        naive,
        "{}: optimized and naive grids must be bit-identical (iters={iters})",
        k.name()
    );
    assert_eq!(
        fast_stats.counters,
        naive_stats.counters,
        "{}: counters must be identical (iters={iters})",
        k.name()
    );
    assert_eq!(fast_stats.iters, naive_stats.iters);
    assert_eq!(fast_stats.points_per_iter, naive_stats.points_per_iter);
    // Timing is a pure function of the counters, so it must agree too.
    assert_eq!(fast_stats.total_seconds, naive_stats.total_seconds);
}

#[test]
fn equivalent_1d_kernels() {
    for k in [StencilKernel::heat1d(), StencilKernel::onedim5p()] {
        assert_equivalent(&k, [1, 1, 400], &Options::default(), 1);
    }
}

#[test]
fn equivalent_2d_kernels() {
    for k in [
        StencilKernel::heat2d(),
        StencilKernel::box2d9p(),
        StencilKernel::star2d13p(),
        StencilKernel::box2d49p(),
    ] {
        assert_equivalent(&k, [1, 48, 52], &Options::default(), 1);
    }
}

#[test]
fn equivalent_3d_kernels() {
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    for k in [StencilKernel::heat3d(), StencilKernel::box3d27p()] {
        assert_equivalent(&k, [12, 20, 20], &opts, 1);
    }
}

#[test]
fn equivalent_multi_iteration() {
    // Several steps exercise the ping-pong swap, the boundary-copied-once
    // invariant, and scratch reuse across steps.
    assert_equivalent(
        &StencilKernel::heat2d(),
        [1, 40, 40],
        &Options::default(),
        5,
    );
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::heat3d(), [10, 18, 18], &opts, 3);
}

#[test]
fn equivalent_dense_mode() {
    let opts = Options {
        mode: ExecMode::DenseTcu,
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::box2d9p(), [1, 40, 44], &opts, 2);
}

#[test]
fn equivalent_multi_m_strip_layout() {
    // m' = 32 → two fragment m-strips.
    let opts = Options {
        layout: Some((8, 4)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::box2d9p(), [1, 52, 68], &opts, 2);
}

#[test]
fn equivalent_alternate_fragments() {
    let sparse16 = Options {
        frag: Some(FragmentShape::sparse_m16n16k16()),
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::heat2d(), [1, 50, 50], &sparse16, 1);

    let wide_n = Options {
        frag: Some(FragmentShape::m16n32k8()),
        mode: ExecMode::DenseTcu,
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::box2d9p(), [1, 44, 60], &wide_n, 1);
}

#[test]
fn equivalent_edge_heavy_layouts() {
    // Deliberately misaligned grids: valid extents not multiples of
    // (r1, r2) produce partial tiles on both axes, and tile counts not
    // multiples of frag.n produce tail column blocks — the scatter
    // bounds-check path and the stale-tail-column invariant.
    let opts = Options {
        layout: Some((5, 3)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::box2d9p(), [1, 39, 41], &opts, 2);
    assert_equivalent(&StencilKernel::star2d13p(), [1, 37, 43], &opts, 1);
}

#[test]
fn equivalent_no_lut_flag() {
    let opts = Options {
        flags: sparstencil::plan::OptFlags {
            lut: false,
            double_buffer: false,
        },
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_equivalent(&StencilKernel::box2d9p(), [1, 50, 50], &opts, 1);
}

#[test]
fn equivalent_fp64_dense() {
    let opts = Options {
        precision: sparstencil_mat::half::Precision::Fp64,
        mode: ExecMode::DenseTcu,
        layout: Some((2, 4)),
        ..Options::default()
    };
    let k = StencilKernel::heat2d();
    let shape = [1, 34, 34];
    let plan = compile::<f64>(&k, shape, &opts).unwrap();
    let input = Grid::<f64>::smooth_random(2, shape);
    let (fast, fs) = run(&plan, &input, 2);
    let (naive, ns) = run_naive(&plan, &input, 2);
    assert_eq!(fast, naive);
    assert_eq!(fs.counters, ns.counters);
}

#[test]
fn optimized_counters_still_match_model() {
    // The closed-form bulk counter update must agree with the analytic
    // model exactly, like the naive per-op counting did.
    let k = StencilKernel::box2d9p();
    let opts = Options {
        layout: Some((4, 2)),
        ..Options::default()
    };
    let plan = compile::<f32>(&k, [1, 50, 50], &opts).unwrap();
    let input = Grid::<f32>::smooth_random(2, [1, 50, 50]);
    let (_, functional) = run(&plan, &input, 1);
    let modelled = model_run(&plan, [1, 50, 50], 1);
    assert_eq!(functional.counters.n_mma(), modelled.counters.n_mma());
    assert_eq!(functional.counters.n_mma(), plan.geom.n_mma);
}
