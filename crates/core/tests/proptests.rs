//! Property-based tests over the whole SparStencil pipeline.
//!
//! Random kernels (box and star shapes with random weights) and random
//! crush factors exercise the full transformation chain; the invariants
//! are numeric agreement with the scalar reference and structural 2:4
//! validity after conversion.

use proptest::prelude::*;
use sparstencil::convert::{convert, violations_after, Strategy as ConvStrategy};
use sparstencil::crush::{build_a_prime, build_b_prime, CrushPlan};
use sparstencil::exec::kernel_testing::{avx2_overwrite, blocked_overwrite, generic_overwrite};
use sparstencil::exec::MMA_BLOCK_ROWS;
use sparstencil::grid::Grid;
use sparstencil::layout::ExecMode;
use sparstencil::pipeline::Executor;
use sparstencil::plan::StageOp;
use sparstencil::plan::{
    compile, compile_halo_exchange, tune_with, Decomposition, Options, TuneOpts,
};
use sparstencil::reference;
use sparstencil::stencil::StencilKernel;
use sparstencil_mat::gemm;
use sparstencil_mat::half::verify_tolerance;
use sparstencil_mat::half::Precision;

/// Strategy: a random 2D kernel — box or star over a radius-`r` bounding
/// box with nonzero weights.
fn random_kernel_2d() -> impl Strategy<Value = StencilKernel> {
    (1usize..=3, any::<bool>(), 1i32..=9).prop_map(|(radius, star, seed)| {
        let e = 2 * radius + 1;
        let mut w = vec![0.0f64; e * e];
        let c = radius;
        let mut s = seed as u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 17) as f64 - 8.0) / 16.0
        };
        if star {
            w[c * e + c] = next().abs().max(0.1);
            for r in 1..=radius {
                for (y, x) in [(c, c - r), (c, c + r), (c - r, c), (c + r, c)] {
                    let mut v = next();
                    if v == 0.0 {
                        v = 0.25;
                    }
                    w[y * e + x] = v;
                }
            }
        } else {
            for v in w.iter_mut() {
                let mut val = next();
                if val == 0.0 {
                    val = 0.125;
                }
                *v = val;
            }
        }
        StencilKernel::new(
            format!("rand-{}-r{radius}", if star { "star" } else { "box" }),
            2,
            [1, e, e],
            w,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crush_product_equals_reference(
        kernel in random_kernel_2d(),
        r1 in 1usize..=6,
        r2 in 1usize..=6,
    ) {
        let [_, ey, ex] = kernel.extent();
        let plan = CrushPlan::new(ey, ex, r1, r2);
        let shape = [1, ey + 13, ex + 17];
        let g = Grid::<f64>::smooth_random(2, shape);
        let a = build_a_prime(&kernel.slice2d(0), &plan);
        let b = build_b_prime(&g, 0, &kernel, &plan);
        let c = gemm::matmul(&a, &b);
        let want = reference::apply(&kernel, &g);
        let v = g.valid_extent(&kernel);
        let tiles_x = v[2].div_ceil(r1);
        for oy in 0..v[1] {
            for ox in 0..v[2] {
                let (ty, j2) = (oy / r2, oy % r2);
                let (tx, j1) = (ox / r1, ox % r1);
                let got = c.get(plan.a_row(j2, j1), ty * tiles_x + tx);
                prop_assert!((got - want.get(0, oy, ox)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn conversion_always_two_four_valid(
        kernel in random_kernel_2d(),
        r1 in 1usize..=6,
        r2 in 1usize..=6,
        blossom in any::<bool>(),
    ) {
        let [_, ey, ex] = kernel.extent();
        let plan = CrushPlan::new(ey, ex, r1, r2);
        let a = build_a_prime(&kernel.slice2d(0), &plan);
        let strat = if blossom { ConvStrategy::Blossom } else { ConvStrategy::Auto };
        let conv = convert(&a, &plan, strat);
        prop_assert_eq!(violations_after(&a, &conv), 0);
        prop_assert_eq!(conv.k_converted() % 4, 0);
    }

    #[test]
    fn end_to_end_matches_reference(
        kernel in random_kernel_2d(),
        r1 in 2usize..=5,
        r2 in 2usize..=5,
    ) {
        let [_, ey, ex] = kernel.extent();
        let shape = [1, ey + 24, ex + 28];
        let opts = Options {
            layout: Some((r1, r2)),
            ..Options::default()
        };
        let exec = Executor::<f32>::new(&kernel, shape, &opts).unwrap();
        let g = Grid::<f32>::smooth_random(2, shape);
        let err = exec.verify(&g, 1);
        // Random weights are not normalized; scale the FP16 tolerance by
        // the kernel's ℓ1 mass.
        let mass: f64 = kernel.weights().iter().map(|w| w.abs()).sum::<f64>().max(1.0);
        prop_assert!(
            err <= verify_tolerance(Precision::Fp16) * mass,
            "err {err} for kernel {} mass {mass}", kernel.name()
        );
    }

    #[test]
    fn dense_mode_matches_sparse_mode(
        kernel in random_kernel_2d(),
    ) {
        // The two TCU paths must agree with each other bit-for-bit after
        // quantization-identical inputs (same arithmetic, different
        // operand encodings).
        let [_, ey, ex] = kernel.extent();
        let shape = [1, ey + 20, ex + 20];
        let g = Grid::<f32>::smooth_random(2, shape);
        let sparse = Executor::<f32>::new(&kernel, shape, &Options {
            layout: Some((4, 2)),
            ..Options::default()
        }).unwrap();
        let dense = Executor::<f32>::new(&kernel, shape, &Options {
            layout: Some((4, 2)),
            mode: ExecMode::DenseTcu,
            ..Options::default()
        }).unwrap();
        let (a, _) = sparse.run(&g, 1);
        let (b, _) = dense.run(&g, 1);
        let va = Grid::<f64>::from_fn_3d(2, shape, |z, y, x| a.get(z, y, x) as f64);
        let vb = Grid::<f64>::from_fn_3d(2, shape, |z, y, x| b.get(z, y, x) as f64);
        prop_assert!(va.max_rel_diff_interior(&vb, &kernel) < 1e-6);
    }

    #[test]
    fn equation9_counts_hold(
        kernel in random_kernel_2d(),
        r1 in 2usize..=5,
        r2 in 2usize..=5,
    ) {
        let [_, ey, ex] = kernel.extent();
        let shape = [1, ey + 16, ex + 16];
        let opts = Options { layout: Some((r1, r2)), ..Options::default() };
        let plan = compile::<f32>(&kernel, shape, &opts).unwrap();
        let g = Grid::<f32>::smooth_random(2, shape);
        let (_, stats) = sparstencil::exec::run(&plan, &g, 1);
        prop_assert_eq!(stats.counters.n_mma(), plan.geom.n_mma);
    }
}

/// Strategy: a compilable (kernel, grid shape) case for the staging
/// schedule — random-weight 2D kernels plus fixed 3D kernels (the shapes
/// where the sliding window is non-trivial).
fn staged_case() -> impl Strategy<Value = (StencilKernel, [usize; 3])> {
    (0usize..4, random_kernel_2d()).prop_map(|(which, k2)| match which {
        0 | 1 => {
            let [_, ey, ex] = k2.extent();
            (k2, [1, ey + 19, ex + 23])
        }
        2 => (StencilKernel::heat3d(), [9, 17, 19]),
        _ => (StencilKernel::box3d27p(), [8, 16, 18]),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The staging schedule is a pure re-addressing of the flat gather
    // LUT: for random kernels and layouts, every `gather_rows` offset
    // is reproduced exactly by the staged-window decomposition (ring
    // band of the source depth at the current phase + union-cell rank),
    // at every ring phase, and the rebased programs are the logical
    // programs entry-for-entry.
    #[test]
    fn staged_windows_reproduce_gather_rows(
        case in staged_case(),
        r1 in 2usize..=5,
        r2 in 2usize..=5,
    ) {
        let (kernel, shape) = case;
        let opts = Options { layout: Some((r1, r2)), ..Options::default() };
        let plan = compile::<f32>(&kernel, shape, &opts).unwrap();
        let t = &plan.exec;
        let ss = &t.stage;
        let pad_ps = plan.geom.pad_ny * plan.geom.pad_nx;

        prop_assert_eq!(ss.window, kernel.extent()[0]);
        prop_assert_eq!(ss.run_len, plan.geom.planes);
        prop_assert_eq!(ss.stage_map.len(), ss.window);
        // Ranks are distinct cells (first-reference order).
        let mut uniq = ss.cell_offsets.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), ss.band_rows);

        let mut staged_rows = vec![false; plan.geom.k_logical];
        for &(i, off) in &t.gather_rows {
            staged_rows[i] = true;
            let (dz, iy, ix) = plan.gather_coords[i];
            let inplane = iy as usize * plan.geom.pad_nx + ix as usize;
            // The flat LUT offset decomposes into (depth, in-plane cell).
            prop_assert_eq!(off, dz as usize * pad_ps + inplane);
            for phase in 0..ss.window {
                let s = ss.stage_map[phase][i] as usize;
                prop_assert!(s < ss.zero_row);
                // Band: the ring slot plane `z + dz` occupies at `z ≡
                // phase (mod window)`; rank: the cell's position in the
                // ascending union window.
                prop_assert_eq!(s / ss.band_rows, (phase + dz as usize) % ss.window);
                prop_assert_eq!(ss.cell_offsets[s % ss.band_rows], inplane);
            }
        }
        // Padding and never-referenced rows rebase onto the
        // guaranteed-zero staged row, at every phase.
        for (i, &staged) in staged_rows.iter().enumerate() {
            if !staged {
                for phase in 0..ss.window {
                    prop_assert_eq!(ss.stage_map[phase][i] as usize, ss.zero_row);
                }
            }
        }
        // Rebased programs: identical entries in identical order, with
        // only the B addressing rewritten through the phase map.
        for (phase, staged_set) in ss.programs.iter().enumerate() {
            for (mi, staged) in staged_set.iter().enumerate() {
                let base = &t.programs[0][mi];
                prop_assert_eq!(staged.rows(), base.rows());
                prop_assert_eq!(staged.depth(), ss.staged_depth());
                for r in 0..base.rows() {
                    let (be, se) = (base.row(r), staged.row(r));
                    prop_assert_eq!(be.len(), se.len());
                    prop_assert!(!se.is_empty(), "rebased rows must be non-empty");
                    for (&(kk, v), &(sk, sv)) in be.iter().zip(se) {
                        prop_assert_eq!(v, sv);
                        prop_assert_eq!(sk, ss.stage_map[phase][kk as usize]);
                    }
                }
                // Blocked layout: uniform blocks hold full row groups of
                // equal length with the lockstep stream step-major
                // (step s of block row r at `start + s·RB + r`); every
                // other block is ragged and served through the base
                // program.
                prop_assert_eq!(staged.block_rows(), MMA_BLOCK_ROWS);
                let n_blocks = staged.rows().div_ceil(MMA_BLOCK_ROWS);
                prop_assert_eq!(staged.blocks().len(), n_blocks);
                for (bi, blk) in staged.blocks().iter().enumerate() {
                    let r0 = bi * MMA_BLOCK_ROWS;
                    let rows_here = MMA_BLOCK_ROWS.min(staged.rows() - r0);
                    match *blk {
                        Some((start, steps)) => {
                            prop_assert_eq!(rows_here, MMA_BLOCK_ROWS);
                            prop_assert!(steps > 0);
                            for r in 0..MMA_BLOCK_ROWS {
                                let row = staged.row(r0 + r);
                                prop_assert_eq!(row.len(), steps as usize);
                                for (s, &(kk, v)) in row.iter().enumerate() {
                                    let li = start as usize + s * MMA_BLOCK_ROWS + r;
                                    prop_assert_eq!(staged.lockstep()[li], (kk, v));
                                }
                            }
                        }
                        None => {
                            let lens: Vec<usize> =
                                (0..rows_here).map(|r| staged.row(r0 + r).len()).collect();
                            prop_assert!(
                                rows_here < MMA_BLOCK_ROWS
                                    || lens.iter().any(|&l| l != lens[0]),
                                "a full equal-length block must compile uniform"
                            );
                        }
                    }
                }
            }
        }

        // Stage ops: exact cover of the band ranks, every shift pulls
        // from its +r1 partner, and every shift's source is staged
        // earlier in the list (fresh loads or upstream shifts).
        prop_assert_eq!(ss.stage_ops.len(), ss.band_rows);
        let mut op_staged = vec![false; ss.band_rows];
        for op in &ss.stage_ops {
            match *op {
                StageOp::Fresh { rank } => {
                    prop_assert!(!op_staged[rank as usize], "rank staged twice");
                    op_staged[rank as usize] = true;
                }
                StageOp::Shift { rank, src } => {
                    prop_assert!(!op_staged[rank as usize], "rank staged twice");
                    prop_assert!(op_staged[src as usize], "source staged after dependent");
                    prop_assert_eq!(
                        ss.cell_offsets[src as usize],
                        ss.cell_offsets[rank as usize] + r1
                    );
                    op_staged[rank as usize] = true;
                }
            }
        }
        prop_assert!(op_staged.iter().all(|&s| s), "ops must cover every rank");

        // Shift eligibility per column block: exactly the blocks whose
        // tiles sit in one tile row with bases stepping by r1 — the
        // geometry under which the shift-copy identity holds.
        let col_blocks = t.work.len() / ss.run_len;
        prop_assert_eq!(ss.shift_blocks.len(), col_blocks);
        for (cb, &shiftable) in ss.shift_blocks.iter().enumerate() {
            let first = cb * plan.frag.n;
            let count = plan.frag.n.min(plan.geom.tiles_per_plane - first);
            let adjacent = t.tiles[first..first + count]
                .windows(2)
                .all(|w| w[1].oy == w[0].oy && w[1].base == w[0].base + r1);
            prop_assert_eq!(shiftable, adjacent, "column block {}", cb);
        }
    }

    // The session-tagged batch work list is a permutation of the N
    // per-session run lists — every (session, run) pair exactly once —
    // that preserves the plan's column-block-major run order within
    // each session, and its item ranges tile the plan's work list. This
    // is the index the batch executor's single guided queue drains, so
    // a duplicate or dropped pair would double- or under-step a
    // session's column block.
    #[test]
    fn batch_work_is_an_order_preserving_permutation(
        case in staged_case(),
        r1 in 2usize..=5,
        r2 in 2usize..=5,
        sessions in 1usize..=9,
    ) {
        let (kernel, shape) = case;
        let opts = Options { layout: Some((r1, r2)), ..Options::default() };
        let plan = compile::<f32>(&kernel, shape, &opts).unwrap();
        let t = &plan.exec;
        let n_runs = t.work.len() / t.stage.run_len;

        let bw = t.batch_work(sessions);
        prop_assert_eq!(bw.sessions, sessions);
        prop_assert_eq!(bw.runs_per_session, n_runs);
        prop_assert_eq!(bw.run_len, t.stage.run_len);
        prop_assert_eq!(bw.total_runs(), sessions * n_runs);

        // Permutation: every (session, run) pair tagged exactly once.
        let mut seen = vec![false; sessions * n_runs];
        for f in 0..bw.total_runs() {
            let (s, r) = bw.run(f);
            prop_assert!(s < sessions && r < n_runs);
            prop_assert!(!seen[s * n_runs + r], "pair tagged twice");
            seen[s * n_runs + r] = true;
        }
        prop_assert!(seen.iter().all(|&v| v));

        // Order-preserving per session: filtering the flat list down to
        // one session yields its run list in the plan's own order.
        for s in 0..sessions {
            let filtered: Vec<usize> = (0..bw.total_runs())
                .map(|f| bw.run(f))
                .filter(|&(fs, _)| fs == s)
                .map(|(_, r)| r)
                .collect();
            let want: Vec<usize> = (0..n_runs).collect();
            prop_assert_eq!(filtered, want, "session {} run order", s);
        }

        // Item ranges: each session-local run covers exactly its column
        // block's work items, and together they tile the work list.
        let mut covered = vec![false; t.work.len()];
        for r in 0..n_runs {
            for wi in bw.items(r) {
                prop_assert!(!covered[wi]);
                covered[wi] = true;
                prop_assert_eq!(t.work[wi].1, r);
            }
        }
        prop_assert!(covered.iter().all(|&v| v));
    }
}

/// Strategy: a shardable (kernel, global shape, parts, layout) case.
/// The global shape is derived from per-axis chunk sizes and shard
/// counts so every split axis divides evenly, and the y/x chunks are
/// multiples of the pinned tile period (`r2`, `r1`) so the layout
/// validates for any split.
fn shard_case() -> impl Strategy<Value = (StencilKernel, [usize; 3], [usize; 3], (usize, usize))> {
    (
        0usize..3,
        1usize..=3, // pz
        1usize..=3, // py
        1usize..=2, // px
        2usize..=4, // r1
        2usize..=4, // r2
        1usize..=2, // my: chunk_y = r2 * my
        1usize..=2, // mx: chunk_x = r1 * mx
        2usize..=5, // chunk_z
    )
        .prop_map(|(which, pz, py, px, r1, r2, my, mx, cz)| {
            let kernel = match which {
                0 => StencilKernel::box2d9p(),
                1 => StencilKernel::heat3d(),
                _ => StencilKernel::box3d27p(),
            };
            let e = kernel.extent();
            let (pz, cz) = if e[0] == 1 { (1, 1) } else { (pz, cz) };
            let parts = [pz, py, px];
            let chunk = [cz, r2 * my, r1 * mx];
            let mut shape = [0; 3];
            for a in 0..3 {
                shape[a] = chunk[a] * parts[a] + e[a] - 1;
            }
            (kernel, shape, parts, (r1, r2))
        })
}

/// Decode a padded-buffer offset back to local (z, y, x).
fn unpad(off: usize, pad_ny: usize, pad_nx: usize) -> [usize; 3] {
    [off / (pad_ny * pad_nx), off / pad_nx % pad_ny, off % pad_nx]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    // The decomposition's owned blocks tile the global computed region
    // exactly: every globally computed cell is owned by exactly one
    // shard (no gap, no overlap), `owner_of` agrees with the block
    // arithmetic, and no owned block leaks into the step-invariant
    // boundary band.
    #[test]
    fn decomposition_tiles_domain(case in shard_case()) {
        let (kernel, shape, parts, _) = case;
        let d = Decomposition::new(&kernel, shape, parts).unwrap();
        let gv = d.global_valid();
        let e = kernel.extent();
        for a in 0..3 {
            prop_assert_eq!(gv[a], shape[a] - e[a] + 1, "axis {}", a);
            prop_assert_eq!(d.chunk[a] * d.parts[a], gv[a], "axis {}", a);
        }
        let mut owned = vec![0u8; gv[0] * gv[1] * gv[2]];
        for s in 0..d.n_shards() {
            let o = d.origin(s);
            prop_assert_eq!(d.linear(d.coords(s)), s);
            for lz in 0..d.chunk[0] {
                for ly in 0..d.chunk[1] {
                    for lx in 0..d.chunk[2] {
                        let g = [o[0] + lz, o[1] + ly, o[2] + lx];
                        prop_assert!(g[0] < gv[0] && g[1] < gv[1] && g[2] < gv[2]);
                        owned[(g[0] * gv[1] + g[1]) * gv[2] + g[2]] += 1;
                        prop_assert_eq!(d.owner_of(g), (s, [lz, ly, lx]));
                    }
                }
            }
        }
        prop_assert!(owned.iter().all(|&c| c == 1), "gap or overlap in tiling");
    }

    // The compiled halo-exchange schedule is exact and symmetric: the
    // destination cells of the segments are precisely the halo set
    // (globally computed, not locally computed), each received exactly
    // once; every element's source decodes to the *same global cell* in
    // the owner shard's locally computed block (every receive is matched
    // by a send of fresh data, never of mirrored/ghost cells); and the
    // dependency counters/notify lists are exact inverses.
    #[test]
    fn halo_exchange_is_exact_and_symmetric(case in shard_case()) {
        let (kernel, shape, parts, (r1, r2)) = case;
        let d = Decomposition::new(&kernel, shape, parts).unwrap();
        let opts = Options { layout: Some((r1, r2)), ..Options::default() };
        let plan = compile::<f32>(&kernel, d.shard_shape, &opts).unwrap();
        let hx = compile_halo_exchange(&plan, &d).unwrap();
        let (pad_ny, pad_nx) = (plan.geom.pad_ny, plan.geom.pad_nx);
        prop_assert_eq!(hx.sessions(), d.n_shards());
        prop_assert_eq!(hx.buf_len(), d.shard_shape[0] * pad_ny * pad_nx);

        let gv = d.global_valid();
        let sh = d.shard_shape;
        let n = d.n_shards();

        // Expected halo set per shard.
        let mut expected = std::collections::BTreeSet::new();
        for s in 0..n {
            let o = d.origin(s);
            for lz in 0..sh[0] {
                for ly in 0..sh[1] {
                    for lx in 0..sh[2] {
                        let g = [o[0] + lz, o[1] + ly, o[2] + lx];
                        let global = g[0] < gv[0] && g[1] < gv[1] && g[2] < gv[2];
                        let local =
                            lz < d.chunk[0] && ly < d.chunk[1] && lx < d.chunk[2];
                        if global && !local {
                            expected.insert((s, [lz, ly, lx]));
                        }
                    }
                }
            }
        }

        // Decode every segment element: received exactly once, source
        // matches the same global cell inside the owner's computed
        // block.
        let mut received = std::collections::BTreeSet::new();
        let mut cells = 0usize;
        for seg in hx.segments() {
            prop_assert!(seg.src_shard < n && seg.dst_shard < n);
            prop_assert_ne!(seg.src_shard, seg.dst_shard);
            prop_assert_eq!(seg.src_range.len(), seg.dst_range.len());
            prop_assert!(seg.src_range.end <= hx.buf_len());
            prop_assert!(seg.dst_range.end <= hx.buf_len());
            let so = d.origin(seg.src_shard);
            let do_ = d.origin(seg.dst_shard);
            for k in 0..seg.src_range.len() {
                let sl = unpad(seg.src_range.start + k, pad_ny, pad_nx);
                let dl = unpad(seg.dst_range.start + k, pad_ny, pad_nx);
                // Runs never wrap a padded row.
                prop_assert!(sl[2] < sh[2] && dl[2] < sh[2]);
                // Same global cell on both sides (the "send matches
                // receive" symmetry).
                for a in 0..3 {
                    prop_assert_eq!(so[a] + sl[a], do_[a] + dl[a], "axis {}", a);
                }
                // The source is locally computed in the owner — fresh
                // data, never a mirrored or ghost cell.
                prop_assert!(
                    sl[0] < d.chunk[0] && sl[1] < d.chunk[1] && sl[2] < d.chunk[2],
                    "segment sources a non-owned cell"
                );
                prop_assert!(
                    received.insert((seg.dst_shard, dl)),
                    "halo cell received twice"
                );
                cells += 1;
            }
        }
        prop_assert_eq!(&received, &expected, "halo coverage mismatch");
        prop_assert_eq!(hx.exchange_cells(), cells);

        // deps/notify are exact inverses of the segment graph.
        let mut want_notify = vec![std::collections::BTreeSet::new(); n];
        for dd in 0..n {
            let segs = hx.segments_for(dd);
            let mut gates = std::collections::BTreeSet::new();
            if !segs.is_empty() {
                gates.insert(dd);
                for seg in segs {
                    gates.insert(seg.src_shard);
                }
            }
            prop_assert_eq!(hx.deps(dd) as usize, gates.len());
            for j in gates {
                want_notify[j].insert(dd as u32);
            }
        }
        for (j, want) in want_notify.iter().enumerate() {
            let got: std::collections::BTreeSet<u32> =
                hx.notify(j).iter().copied().collect();
            prop_assert_eq!(hx.notify(j).len(), got.len(), "duplicate notify");
            prop_assert_eq!(&got, want, "notify list mismatch for member {}", j);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The tuner's contract: tuning may change speed, never results. For
    // random kernels (2D random-weight plus fixed 3D) and random
    // adoption margins, the plan `tune_with` picks must produce output
    // bit-identical to the fixed-default plan's — on an input that is
    // *not* the tuner's internal probe grid (accumulation order is
    // data-independent, so the probe's certificate must transfer), at
    // several step counts, and through both the staged engine and the
    // retained naive path.
    #[test]
    fn tuned_plan_is_bit_identical_to_default(
        case in staged_case(),
        margin in 0.0f64..0.08,
        steps in 1usize..=4,
        seed in any::<u32>(),
    ) {
        let (kernel, shape) = case;
        let opts = Options::default();
        let default_plan = compile::<f32>(&kernel, shape, &opts).unwrap();
        let tune_opts = TuneOpts { margin, ..TuneOpts::default() };
        let (tuned, choice) = tune_with::<f32>(&kernel, shape, &opts, &tune_opts).unwrap();
        prop_assert_eq!(choice.fusion, 1, "default tune must never fuse");
        prop_assert_eq!(
            choice.retuned,
            choice.layout != choice.default_layout,
            "retuned flag must track the layout decision"
        );
        prop_assert!(choice.cost <= choice.default_cost, "tuner may never model-regress");

        // Deterministic input distinct from the tuner's probe grid.
        let g = Grid::<f32>::from_fn_3d(kernel.dims(), shape, |z, y, x| {
            let h = (seed as u64)
                .wrapping_add(z as u64 * 7919)
                .wrapping_add(y as u64 * 104729)
                .wrapping_add(x as u64 * 1299709)
                .wrapping_mul(0x2545_f491_4f6c_dd1d);
            ((h >> 16) % 10_000) as f32 / 10_000.0
        });
        let (a, _) = sparstencil::exec::run(&default_plan, &g, steps);
        let (b, _) = sparstencil::exec::run(&tuned, &g, steps);
        prop_assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "tuned layout {:?} -> {:?} (policy {:?}) changed results",
            choice.default_layout,
            choice.layout,
            choice.policy
        );
        let (c, _) = sparstencil::exec::run_naive(&tuned, &g, steps);
        prop_assert_eq!(b.as_slice(), c.as_slice(), "tuned engine != tuned naive");
    }
}

// ---------------------------------------------------------------------------
// MMA kernel paths: scalar blocked and AVX2 vs the row-serial oracle
// ---------------------------------------------------------------------------

/// Compare every MMA kernel path on one random row program: the scalar
/// register-blocked kernel always, and the AVX2 kernel whenever this
/// build/CPU has one for `(R, n)`. Both must be bit-identical to the
/// row-serial generic oracle — the engine's correctness rests on the
/// dispatch being unobservable in the output bits.
///
/// The program is built from a dense matrix with zeros sprinkled at
/// random positions (so block row-lengths differ and the ragged
/// fallback path runs) but at least one non-zero per row (the
/// executor's checked plan invariant: overwrite-first kernels never see
/// an empty row).
fn check_kernel_paths<R: sparstencil_mat::Real>(m: usize, k: usize, n: usize, seed: u64) {
    use sparstencil_mat::DenseMatrix;
    use sparstencil_tcu::fragment::{BlockedRowProgram, RowProgram};

    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let a = DenseMatrix::from_fn(m, k, |r, c| {
        let v = next();
        if c != r % k && v % 3 == 0 {
            R::ZERO
        } else {
            let mag = ((v % 1000) + 1) as f64 / 256.0;
            R::from_f64(if v & 1024 != 0 { -mag } else { mag })
        }
    });
    let b = DenseMatrix::from_fn(k, n, |_, _| {
        let v = next();
        R::from_f64(((v % 2048) as f64 - 1024.0) / 128.0)
    });
    let base = RowProgram::from_dense(&a);
    let prog = BlockedRowProgram::compile(&base, MMA_BLOCK_ROWS);
    prop_assert_eq!(prog.block_rows(), MMA_BLOCK_ROWS);

    let mut c_oracle = DenseMatrix::<R>::zeros(m, n);
    generic_overwrite(&prog, &b, &mut c_oracle, n);

    let mut c_blocked = DenseMatrix::<R>::zeros(m, n);
    blocked_overwrite(&prog, &b, &mut c_blocked, n);
    prop_assert_eq!(
        c_blocked.as_slice(),
        c_oracle.as_slice(),
        "scalar blocked kernel diverged from the row-serial oracle \
         (m={}, k={}, n={}, seed={})",
        m,
        k,
        n,
        seed
    );

    let mut c_avx2 = DenseMatrix::<R>::zeros(m, n);
    if avx2_overwrite(&prog, &b, &mut c_avx2, n) {
        prop_assert_eq!(
            c_avx2.as_slice(),
            c_oracle.as_slice(),
            "AVX2 kernel diverged from the row-serial oracle \
             (m={}, k={}, n={}, seed={})",
            m,
            k,
            n,
            seed
        );
    } else {
        // The vector path must only decline for a principled reason:
        // no kernel for this width, or no AVX2 in this build/CPU.
        prop_assert!(!matches!(n, 8 | 16 | 32) || !cfg!(target_arch = "x86_64"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // All kernel dispatch paths are bit-identical on random row
    // programs, across the specialized fragment widths, the generic
    // width fallback, and both scalar types.
    #[test]
    fn kernel_paths_bit_identical(
        m in 1usize..40,
        k in 1usize..48,
        n in (0usize..4).prop_map(|i| [8usize, 16, 32, 12][i]),
        seed in any::<u64>(),
    ) {
        check_kernel_paths::<f32>(m, k, n, seed);
        check_kernel_paths::<f64>(m, k, n, seed);
    }
}
