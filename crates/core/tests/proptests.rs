//! Property-based tests over the whole SparStencil pipeline.
//!
//! Random kernels (box and star shapes with random weights) and random
//! crush factors exercise the full transformation chain; the invariants
//! are numeric agreement with the scalar reference and structural 2:4
//! validity after conversion.

use proptest::prelude::*;
use sparstencil::convert::{convert, violations_after, Strategy as ConvStrategy};
use sparstencil::crush::{build_a_prime, build_b_prime, CrushPlan};
use sparstencil::grid::Grid;
use sparstencil::layout::ExecMode;
use sparstencil::pipeline::Executor;
use sparstencil::plan::{compile, Options};
use sparstencil::reference;
use sparstencil::stencil::StencilKernel;
use sparstencil_mat::gemm;
use sparstencil_mat::half::verify_tolerance;
use sparstencil_mat::half::Precision;

/// Strategy: a random 2D kernel — box or star over a radius-`r` bounding
/// box with nonzero weights.
fn random_kernel_2d() -> impl Strategy<Value = StencilKernel> {
    (1usize..=3, any::<bool>(), 1i32..=9).prop_map(|(radius, star, seed)| {
        let e = 2 * radius + 1;
        let mut w = vec![0.0f64; e * e];
        let c = radius;
        let mut s = seed as u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 17) as f64 - 8.0) / 16.0
        };
        if star {
            w[c * e + c] = next().abs().max(0.1);
            for r in 1..=radius {
                for (y, x) in [(c, c - r), (c, c + r), (c - r, c), (c + r, c)] {
                    let mut v = next();
                    if v == 0.0 {
                        v = 0.25;
                    }
                    w[y * e + x] = v;
                }
            }
        } else {
            for v in w.iter_mut() {
                let mut val = next();
                if val == 0.0 {
                    val = 0.125;
                }
                *v = val;
            }
        }
        StencilKernel::new(
            format!("rand-{}-r{radius}", if star { "star" } else { "box" }),
            2,
            [1, e, e],
            w,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crush_product_equals_reference(
        kernel in random_kernel_2d(),
        r1 in 1usize..=6,
        r2 in 1usize..=6,
    ) {
        let [_, ey, ex] = kernel.extent();
        let plan = CrushPlan::new(ey, ex, r1, r2);
        let shape = [1, ey + 13, ex + 17];
        let g = Grid::<f64>::smooth_random(2, shape);
        let a = build_a_prime(&kernel.slice2d(0), &plan);
        let b = build_b_prime(&g, 0, &kernel, &plan);
        let c = gemm::matmul(&a, &b);
        let want = reference::apply(&kernel, &g);
        let v = g.valid_extent(&kernel);
        let tiles_x = v[2].div_ceil(r1);
        for oy in 0..v[1] {
            for ox in 0..v[2] {
                let (ty, j2) = (oy / r2, oy % r2);
                let (tx, j1) = (ox / r1, ox % r1);
                let got = c.get(plan.a_row(j2, j1), ty * tiles_x + tx);
                prop_assert!((got - want.get(0, oy, ox)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn conversion_always_two_four_valid(
        kernel in random_kernel_2d(),
        r1 in 1usize..=6,
        r2 in 1usize..=6,
        blossom in any::<bool>(),
    ) {
        let [_, ey, ex] = kernel.extent();
        let plan = CrushPlan::new(ey, ex, r1, r2);
        let a = build_a_prime(&kernel.slice2d(0), &plan);
        let strat = if blossom { ConvStrategy::Blossom } else { ConvStrategy::Auto };
        let conv = convert(&a, &plan, strat);
        prop_assert_eq!(violations_after(&a, &conv), 0);
        prop_assert_eq!(conv.k_converted() % 4, 0);
    }

    #[test]
    fn end_to_end_matches_reference(
        kernel in random_kernel_2d(),
        r1 in 2usize..=5,
        r2 in 2usize..=5,
    ) {
        let [_, ey, ex] = kernel.extent();
        let shape = [1, ey + 24, ex + 28];
        let opts = Options {
            layout: Some((r1, r2)),
            ..Options::default()
        };
        let exec = Executor::<f32>::new(&kernel, shape, &opts).unwrap();
        let g = Grid::<f32>::smooth_random(2, shape);
        let err = exec.verify(&g, 1);
        // Random weights are not normalized; scale the FP16 tolerance by
        // the kernel's ℓ1 mass.
        let mass: f64 = kernel.weights().iter().map(|w| w.abs()).sum::<f64>().max(1.0);
        prop_assert!(
            err <= verify_tolerance(Precision::Fp16) * mass,
            "err {err} for kernel {} mass {mass}", kernel.name()
        );
    }

    #[test]
    fn dense_mode_matches_sparse_mode(
        kernel in random_kernel_2d(),
    ) {
        // The two TCU paths must agree with each other bit-for-bit after
        // quantization-identical inputs (same arithmetic, different
        // operand encodings).
        let [_, ey, ex] = kernel.extent();
        let shape = [1, ey + 20, ex + 20];
        let g = Grid::<f32>::smooth_random(2, shape);
        let sparse = Executor::<f32>::new(&kernel, shape, &Options {
            layout: Some((4, 2)),
            ..Options::default()
        }).unwrap();
        let dense = Executor::<f32>::new(&kernel, shape, &Options {
            layout: Some((4, 2)),
            mode: ExecMode::DenseTcu,
            ..Options::default()
        }).unwrap();
        let (a, _) = sparse.run(&g, 1);
        let (b, _) = dense.run(&g, 1);
        let va = Grid::<f64>::from_fn_3d(2, shape, |z, y, x| a.get(z, y, x) as f64);
        let vb = Grid::<f64>::from_fn_3d(2, shape, |z, y, x| b.get(z, y, x) as f64);
        prop_assert!(va.max_rel_diff_interior(&vb, &kernel) < 1e-6);
    }

    #[test]
    fn equation9_counts_hold(
        kernel in random_kernel_2d(),
        r1 in 2usize..=5,
        r2 in 2usize..=5,
    ) {
        let [_, ey, ex] = kernel.extent();
        let shape = [1, ey + 16, ex + 16];
        let opts = Options { layout: Some((r1, r2)), ..Options::default() };
        let plan = compile::<f32>(&kernel, shape, &opts).unwrap();
        let g = Grid::<f32>::smooth_random(2, shape);
        let (_, stats) = sparstencil::exec::run(&plan, &g, 1);
        prop_assert_eq!(stats.counters.n_mma(), plan.geom.n_mma);
    }
}
