//! # sparstencil-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§4); see
//! `DESIGN.md` for the experiment index. Every binary supports
//! `--quick` (CI-scale functional verification + modelled numbers at
//! reduced sizes) and `--full` (analytic model evaluated at the paper's
//! Table-2 problem sizes). This library holds the shared pieces: the
//! Table-2 benchmark list, scale selection, SparStencil invocation
//! wrappers, and fixed-width table printing.
//!
//! Three additional bins track the *functional engine* over time:
//! `bench` writes the two-workload `BENCH_step_throughput.json`,
//! `bench_zoo` sweeps all 79 zoo kernels through auto-tuned sessions
//! into `BENCH_zoo.json`, and `bench_compare` schema- and ratio-gates
//! fresh runs of either file against the committed baselines in CI.

#![warn(missing_docs)]

use sparstencil::exec::RunStats;
use sparstencil::layout::ExecMode;
use sparstencil::pipeline::Executor;
use sparstencil::plan::{OptFlags, Options};
use sparstencil::prelude::*;
use sparstencil_tcu::GpuConfig;

/// One Table-2 benchmark row.
pub struct Benchmark {
    /// Kernel under test.
    pub kernel: StencilKernel,
    /// The paper's problem size `[nz, ny, nx]`.
    pub full_shape: [usize; 3],
    /// The paper's iteration count.
    pub full_iters: usize,
    /// Reduced shape for functional verification / quick runs.
    pub quick_shape: [usize; 3],
    /// Whether §4.1's 3× temporal fusion applies ("small kernels").
    pub fuse_small: bool,
}

/// The eight Table-2 benchmarks.
pub fn table2() -> Vec<Benchmark> {
    let b = |kernel: StencilKernel,
             full_shape: [usize; 3],
             full_iters: usize,
             quick_shape: [usize; 3],
             fuse_small: bool| Benchmark {
        kernel,
        full_shape,
        full_iters,
        quick_shape,
        fuse_small,
    };
    vec![
        b(
            StencilKernel::heat1d(),
            [1, 1, 10_240_000],
            10_000,
            [1, 1, 4096],
            true,
        ),
        b(
            StencilKernel::onedim5p(),
            [1, 1, 10_240_000],
            10_000,
            [1, 1, 4096],
            true,
        ),
        b(
            StencilKernel::heat2d(),
            [1, 10_240, 10_240],
            10_240,
            [1, 258, 258],
            true,
        ),
        b(
            StencilKernel::box2d9p(),
            [1, 10_240, 10_240],
            10_240,
            [1, 258, 258],
            true,
        ),
        b(
            StencilKernel::star2d13p(),
            [1, 10_246, 10_246],
            10_240,
            [1, 262, 262],
            false,
        ),
        b(
            StencilKernel::box2d49p(),
            [1, 10_246, 10_246],
            10_240,
            [1, 262, 262],
            false,
        ),
        // 3D kernels are not fused: folding three steps cubes the stacked
        // operand depth (k'' grows ~e³), which costs more than the three
        // memory passes it saves — the layout cost model agrees.
        b(
            StencilKernel::heat3d(),
            [1024, 1024, 1024],
            1024,
            [34, 66, 66],
            false,
        ),
        b(
            StencilKernel::box3d27p(),
            [1024, 1024, 1024],
            1024,
            [34, 66, 66],
            false,
        ),
    ]
}

/// Run scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes; functional execution feasible.
    Quick,
    /// Paper problem sizes; analytic model only.
    Full,
}

impl Scale {
    /// Parse from argv: `--full` selects full scale, default quick.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Shape for a benchmark at this scale.
    pub fn shape(self, b: &Benchmark) -> [usize; 3] {
        match self {
            Scale::Quick => b.quick_shape,
            Scale::Full => b.full_shape,
        }
    }

    /// Modelled iterations at this scale (enough to amortize launches).
    pub fn iters(self, b: &Benchmark) -> usize {
        match self {
            Scale::Quick => 50,
            Scale::Full => b.full_iters.min(1000),
        }
    }
}

/// SparStencil invocation wrapper: compile at a compile-time shape (small
/// enough to build quickly) and model at the evaluation shape. Returns
/// `(stats, fusion_factor)` — GStencil/s must be multiplied by the fusion
/// factor because one fused application advances `fusion` time steps.
#[allow(clippy::too_many_arguments)]
pub fn sparstencil_stats(
    kernel: &StencilKernel,
    eval_shape: [usize; 3],
    iters: usize,
    fusion: usize,
    mode: ExecMode,
    flags: OptFlags,
    precision: Precision,
    gpu: &GpuConfig,
) -> (RunStats, f64) {
    let run_kernel = if fusion > 1 {
        kernel.temporal_fusion(fusion)
    } else {
        kernel.clone()
    };
    let opts = Options {
        precision,
        mode,
        flags,
        gpu: gpu.clone(),
        ..Options::default()
    };
    // Compile against a shape big enough for the layout explorer to see
    // realistic tiling but small enough to build instantly.
    let compile_shape = compile_shape_for(&run_kernel, eval_shape);
    let stats = match precision {
        Precision::Fp64 => {
            let exec = Executor::<f64>::new(&run_kernel, compile_shape, &opts)
                .expect("compile must succeed");
            exec.run_modelled(eval_shape, iters)
        }
        _ => {
            let exec = Executor::<f32>::new(&run_kernel, compile_shape, &opts)
                .expect("compile must succeed");
            exec.run_modelled(eval_shape, iters)
        }
    };
    (stats, fusion as f64)
}

/// A compile shape that preserves the kernel's validity on tiny axes.
pub fn compile_shape_for(kernel: &StencilKernel, eval_shape: [usize; 3]) -> [usize; 3] {
    let e = kernel.extent();
    [
        eval_shape[0].min(e[0] + 31).max(e[0]),
        eval_shape[1].min(e[1] + 255).max(e[1]),
        eval_shape[2].min(e[2] + 255).max(e[2]),
    ]
}

/// Fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render with per-column widths.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    s.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    s.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            s
        };
        println!("{}", line(&self.headers));
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("--")
        );
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// Format a float to 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float to 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_rows() {
        let t = table2();
        assert_eq!(t.len(), 8);
        assert_eq!(t[0].kernel.points(), 3);
        assert_eq!(t[5].kernel.points(), 49);
        assert_eq!(t[6].full_shape, [1024, 1024, 1024]);
        // Small kernels fused, 7×7 kernels not.
        assert!(t[2].fuse_small);
        assert!(!t[5].fuse_small);
    }

    #[test]
    fn geomean_known_value() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn sparstencil_stats_runs_quick() {
        let b = &table2()[3]; // Box-2D9P
        let (stats, fusion) = sparstencil_stats(
            &b.kernel,
            b.quick_shape,
            10,
            3,
            ExecMode::SparseTcu,
            OptFlags::default(),
            Precision::Fp16,
            &GpuConfig::a100(),
        );
        assert!(stats.gstencil_per_sec > 0.0);
        assert_eq!(fusion, 3.0);
    }

    #[test]
    fn compile_shape_never_smaller_than_kernel() {
        let k = StencilKernel::box2d49p().temporal_fusion(3);
        let s = compile_shape_for(&k, [1, 256, 256]);
        let e = k.extent();
        assert!(s[1] >= e[1] && s[2] >= e[2]);
    }
}
