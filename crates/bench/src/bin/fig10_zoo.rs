//! Figure 10 — 79 real-world kernels across 9 domains.
//!
//! Top: end-to-end throughput (GStencil/s) of SparStencil vs cuDNN vs
//! ConvStencil; bottom: compute intensity (useful FLOPs per DRAM byte).
//! The paper reports up to 156.7 GStencil/s, 6.3× over cuDNN and 3.1×
//! over ConvStencil on average, and 17.92× / 4.46× compute-density gains.
//! No temporal fusion here (as in §4.5's adaptivity protocol).

use sparstencil::layout::ExecMode;
use sparstencil::plan::OptFlags;
use sparstencil::prelude::*;
use sparstencil_baselines::{gemm_libs::CudnnLike, tcu_pipelines::ConvStencilLike, Baseline};
use sparstencil_bench::{f1, f2, geomean, sparstencil_stats, Scale, Table};
use sparstencil_tcu::GpuConfig;
use sparstencil_zoo::{all, Domain};

fn shape_for(kernel: &StencilKernel, scale: Scale) -> [usize; 3] {
    let e = kernel.extent();
    let n = match (kernel.dims(), scale) {
        (1, Scale::Quick) => 262_144,
        (1, Scale::Full) => 10_240_000,
        (2, Scale::Quick) => 1024,
        (2, Scale::Full) => 10_240,
        (_, Scale::Quick) => 128,
        (_, Scale::Full) => 512,
    };
    match kernel.dims() {
        1 => [1, 1, n + e[2] - 1],
        2 => [1, n + e[1] - 1, n + e[2] - 1],
        _ => [n + e[0] - 1, n + e[1] - 1, n + e[2] - 1],
    }
}

/// Arithmetic intensity over *operand traffic* (L2-level bytes): useful
/// FLOPs per byte the mapping actually moves. This is the quantity the
/// layout transformation improves — DRAM bytes alone would hide cuDNN's
/// im2col expansion behind L2 hits.
fn intensity(stats: &sparstencil::exec::RunStats, kernel: &StencilKernel) -> f64 {
    let useful = stats.points_per_iter as f64 * kernel.points() as f64 * 2.0 * stats.iters as f64;
    useful / stats.counters.global_bytes().max(1) as f64
}

fn main() {
    let scale = Scale::from_args();
    let gpu = GpuConfig::a100();
    let iters = 100;
    println!("== Figure 10: 79 kernels / 9 domains (FP16, GStencil/s and FLOP/DRAM-byte) ==\n");

    let mut t = Table::new(&[
        "domain", "kernel", "pts", "Spar", "cuDNN", "ConvSt", "x cuDNN", "x ConvSt", "AI Spar",
        "AI cuDNN",
    ]);
    let mut vs_cudnn = Vec::new();
    let mut vs_conv = Vec::new();
    let mut ai_ratio_cudnn = Vec::new();
    let mut peak: (f64, String) = (0.0, String::new());
    let mut per_domain: std::collections::BTreeMap<Domain, Vec<f64>> = Default::default();

    for entry in all() {
        let kernel = entry.kernel();
        let shape = shape_for(&kernel, scale);
        let (spar, _) = sparstencil_stats(
            &kernel,
            shape,
            iters,
            1,
            ExecMode::SparseTcu,
            OptFlags::default(),
            Precision::Fp16,
            &gpu,
        );
        let cudnn = CudnnLike
            .model(&kernel, shape, iters, Precision::Fp16, &gpu)
            .expect("cudnn model");
        let conv = ConvStencilLike
            .model(&kernel, shape, iters, Precision::Fp16, &gpu)
            .expect("convstencil model");

        let (s, c, v) = (
            spar.gstencil_per_sec,
            cudnn.gstencil_per_sec,
            conv.gstencil_per_sec,
        );
        vs_cudnn.push(s / c);
        vs_conv.push(s / v);
        let ai_s = intensity(&spar, &kernel);
        let ai_c = intensity(&cudnn, &kernel);
        ai_ratio_cudnn.push(ai_s / ai_c);
        if s > peak.0 {
            peak = (s, entry.name.to_string());
        }
        per_domain.entry(entry.domain).or_default().push(s / v);

        t.row(vec![
            entry.domain.name().into(),
            entry.name.into(),
            kernel.points().to_string(),
            f1(s),
            f1(c),
            f1(v),
            f2(s / c),
            f2(s / v),
            f1(ai_s),
            f1(ai_c),
        ]);
    }
    t.print();

    println!("\n== summary ==");
    println!(
        "  peak SparStencil throughput: {:.1} GStencil/s ({})   (paper: 156.7)",
        peak.0, peak.1
    );
    println!(
        "  geomean speedup vs cuDNN:       {:.2}x   (paper avg: 6.3x)",
        geomean(&vs_cudnn)
    );
    println!(
        "  geomean speedup vs ConvStencil: {:.2}x   (paper avg: 3.1x)",
        geomean(&vs_conv)
    );
    println!(
        "  geomean compute-intensity gain vs cuDNN: {:.2}x   (paper: 17.92x)",
        geomean(&ai_ratio_cudnn)
    );
    println!("\n  per-domain geomean speedup vs ConvStencil:");
    for (d, v) in per_domain {
        println!(
            "    {:<8} {:.2}x  ({} kernels)",
            d.name(),
            geomean(&v),
            v.len()
        );
    }
}
