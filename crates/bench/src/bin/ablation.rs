//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! A. **Matching strategy** — Algorithm 1 (hierarchical) vs the exact
//!    Blossom matcher across all 79 zoo kernels: zero-column pads, host
//!    time, and where the exact matcher saves padding (quantifying the
//!    Theorem-2 boundary documented in EXPERIMENTS.md note 1).
//! B. **Kernel optimizations** — the LUT and double-buffering flags,
//!    independently toggled, on Table-2 kernels (decomposing Figure 7's
//!    "+opts" stage).

use sparstencil::convert::{convert, Strategy};
use sparstencil::crush::{build_a_prime, CrushPlan};
use sparstencil::layout::ExecMode;
use sparstencil::plan::OptFlags;
use sparstencil::prelude::*;
use sparstencil_bench::{f1, sparstencil_stats, table2, Scale, Table};
use sparstencil_tcu::GpuConfig;
use std::time::Instant;

fn main() {
    matching_ablation();
    println!();
    flag_ablation();
}

fn matching_ablation() {
    println!("== Ablation A: Hierarchical (Alg. 1) vs Blossom matching ==\n");
    let mut t = Table::new(&[
        "kernel",
        "k'",
        "pads hier",
        "pads blossom",
        "saved",
        "t hier (µs)",
        "t blossom (µs)",
    ]);
    let (mut total_h, mut total_b, mut blossom_wins) = (0usize, 0usize, 0usize);
    let mut time_ratio = Vec::new();
    for entry in sparstencil_zoo::all() {
        let kernel = entry.kernel();
        if kernel.dims() != 2 {
            continue; // 2D staircases are Algorithm 1's home turf
        }
        let [_, ey, ex] = kernel.extent();
        let plan = CrushPlan::new(ey, ex, 4, 4);
        let a = build_a_prime(&kernel.slice2d(0), &plan);

        let t0 = Instant::now();
        let h = convert(&a, &plan, Strategy::Auto);
        let th = t0.elapsed().as_secs_f64() * 1e6;
        let t0 = Instant::now();
        let b = convert(&a, &plan, Strategy::Blossom);
        let tb = t0.elapsed().as_secs_f64() * 1e6;

        total_h += h.pad_count;
        total_b += b.pad_count;
        if b.pad_count < h.pad_count {
            blossom_wins += 1;
            t.row(vec![
                entry.name.into(),
                plan.k_prime().to_string(),
                h.pad_count.to_string(),
                b.pad_count.to_string(),
                (h.pad_count - b.pad_count).to_string(),
                f1(th),
                f1(tb),
            ]);
        }
        time_ratio.push(tb / th.max(1e-9));
    }
    t.print();
    println!(
        "\n  totals over 2D zoo kernels: hierarchical pads {total_h}, blossom pads {total_b}; \
         blossom strictly better on {blossom_wins} kernels"
    );
    println!(
        "  blossom/hierarchical host-time ratio (geomean): {:.1}x — Algorithm 1's O(k') \
         speed is why it is the default",
        sparstencil_bench::geomean(&time_ratio)
    );
}

fn flag_ablation() {
    let scale = Scale::from_args();
    let gpu = GpuConfig::a100();
    println!("== Ablation B: kernel optimization flags (GStencil/s, FP16) ==\n");
    let mut t = Table::new(&["kernel", "neither", "+LUT", "+DB", "+both", "both/neither"]);
    let variants = [
        (
            "neither",
            OptFlags {
                lut: false,
                double_buffer: false,
            },
        ),
        (
            "+LUT",
            OptFlags {
                lut: true,
                double_buffer: false,
            },
        ),
        (
            "+DB",
            OptFlags {
                lut: false,
                double_buffer: true,
            },
        ),
        (
            "+both",
            OptFlags {
                lut: true,
                double_buffer: true,
            },
        ),
    ];
    for b in table2() {
        if b.kernel.dims() == 1 {
            continue; // 1D flags behave identically to 2D; keep the table tight
        }
        let shape = scale.shape(&b);
        let iters = scale.iters(&b);
        let mut cells = vec![b.kernel.name().to_string()];
        let mut first = 0.0f64;
        let mut last = 0.0f64;
        for (i, (_, flags)) in variants.iter().enumerate() {
            let (stats, _) = sparstencil_stats(
                &b.kernel,
                shape,
                iters,
                1,
                ExecMode::SparseTcu,
                *flags,
                Precision::Fp16,
                &gpu,
            );
            let v = stats.gstencil_per_sec;
            if i == 0 {
                first = v;
            }
            last = v;
            cells.push(f1(v));
        }
        cells.push(format!("{:.2}x", last / first));
        t.row(cells);
    }
    t.print();
    println!("\n  DB (compute/memory overlap) dominates; LUT removes the scalar address");
    println!("  arithmetic that otherwise grows with gather volume (§3.3).");
}
