//! Figure 7 — performance breakdown on Box-2D49P across problem sizes.
//!
//! Incremental stages (§4.4):
//!   1. CUDA baseline (scalar cores)
//!   2. + Layout Morphing on **dense** TCUs            (paper: ~1.58×)
//!   3. + PIT on **sparse** TCUs                        (paper: ~1.22×;
//!        `<1×` at small sizes where PIT's memory overhead outweighs it)
//!   4. + further optimizations (LUT + double buffering) (paper: ~1.24×)

use sparstencil::layout::ExecMode;
use sparstencil::plan::OptFlags;
use sparstencil::prelude::*;
use sparstencil_baselines::{cuda_cores::NaiveCuda, Baseline};
use sparstencil_bench::{f1, f2, sparstencil_stats, Scale, Table};
use sparstencil_tcu::GpuConfig;

fn main() {
    let scale = Scale::from_args();
    let gpu = GpuConfig::a100();
    let kernel = StencilKernel::box2d49p();
    println!("== Figure 7: performance breakdown, Box-2D49P (FP16, GStencil/s) ==\n");

    let sizes: &[usize] = match scale {
        Scale::Quick => &[256, 768, 1536, 2560],
        Scale::Full => &[256, 768, 2560, 5120, 10240],
    };
    let iters = 100;
    let raw = OptFlags {
        lut: false,
        double_buffer: false,
    };

    let mut t = Table::new(&[
        "size",
        "CUDA",
        "+Morphing(dense)",
        "+PIT(sparse)",
        "+Opts(LUT+DB)",
        "morph x",
        "pit x",
        "opts x",
    ]);

    for &n in sizes {
        let shape = [1, n + 6, n + 6]; // 7×7 kernel → n×n valid outputs
        let cuda = NaiveCuda
            .model(&kernel, shape, iters, Precision::Fp16, &gpu)
            .unwrap()
            .gstencil_per_sec;
        let (dense, _) = sparstencil_stats(
            &kernel,
            shape,
            iters,
            1,
            ExecMode::DenseTcu,
            raw,
            Precision::Fp16,
            &gpu,
        );
        let (sparse, _) = sparstencil_stats(
            &kernel,
            shape,
            iters,
            1,
            ExecMode::SparseTcu,
            raw,
            Precision::Fp16,
            &gpu,
        );
        let (opt, _) = sparstencil_stats(
            &kernel,
            shape,
            iters,
            1,
            ExecMode::SparseTcu,
            OptFlags::default(),
            Precision::Fp16,
            &gpu,
        );
        let (d, s, o) = (
            dense.gstencil_per_sec,
            sparse.gstencil_per_sec,
            opt.gstencil_per_sec,
        );
        t.row(vec![
            n.to_string(),
            f1(cuda),
            f1(d),
            f1(s),
            f1(o),
            f2(d / cuda),
            f2(s / d),
            f2(o / s),
        ]);
    }
    t.print();
    println!(
        "\n  paper stage gains at 10240: morphing 1.58x, PIT 1.22x (0.79x/0.90x at 256/768), opts 1.24x"
    );
}
