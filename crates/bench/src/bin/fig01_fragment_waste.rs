//! Figure 1 — architectural mapping challenges of stencils on TCUs.
//!
//! (a) A naive im2row matrix-vector mapping places the kernel vector in
//!     one row of the fragment: on an 8×4 fragment only 1 of 8 rows is
//!     active → 12.5% utilization, "87.5% columns wasted".
//! (b) The clustered sparsity of a crushed stencil matrix violates the
//!     2:4 constraint; after Structured Sparsity Conversion the same
//!     matrix is 2:4-compatible.

use sparstencil::convert::{convert, violations_after, Strategy};
use sparstencil::crush::{build_a_prime, CrushPlan};
use sparstencil::flatten::flatten_2d;
use sparstencil::grid::Grid;
use sparstencil::stencil::StencilKernel;
use sparstencil_bench::{f1, Table};
use sparstencil_mat::BitMask;

fn main() {
    println!("== Figure 1(a): naive matrix-vector fragment utilization ==\n");
    let kernel = StencilKernel::box2d9p();
    let grid = Grid::<f64>::smooth_random(2, [1, 5, 5]);
    let f = flatten_2d(&kernel, &grid);
    // The kernel vector occupies one row of an (8-row, 4-deep) fragment
    // tiling of the GEMV.
    let frag_rows = 8.0;
    let active_rows = 1.0;
    let util = active_rows / frag_rows;
    let mut t = Table::new(&["mapping", "fragment", "active rows", "utilization %"]);
    t.row(vec![
        "im2row matrix-vector".into(),
        "8x4".into(),
        "1 / 8".into(),
        f1(util * 100.0),
    ]);
    t.print();
    println!(
        "\n  kernel vector length {} over input matrix {}x{} — {}% of fragment rows wasted\n",
        f.kernel_vector.len(),
        f.input_matrix.rows(),
        f.input_matrix.cols(),
        f1((1.0 - util) * 100.0),
    );

    println!("== Figure 1(b): clustered vs structured sparsity ==\n");
    let [_, ey, ex] = kernel.extent();
    let plan = CrushPlan::new(ey, ex, 4, 4);
    let a = build_a_prime(&kernel.slice2d(0), &plan);
    let mask_before = BitMask::from_matrix(&a);
    let conv = convert(&a, &plan, Strategy::Auto);
    let permuted = conv.perm.apply_to_cols(&a);
    let mask_after = BitMask::from_matrix(&permuted);

    let mut t = Table::new(&[
        "stage",
        "sparsity %",
        "clustered groups %",
        "2:4 violations",
    ]);
    t.row(vec![
        "after layout morphing".into(),
        f1(mask_before.sparsity() * 100.0),
        f1(mask_before.clustering_ratio() * 100.0),
        mask_before.two_four_violations().to_string(),
    ]);
    t.row(vec![
        "after sparsity conversion".into(),
        f1(mask_after.sparsity() * 100.0),
        f1(mask_after.clustering_ratio() * 100.0),
        mask_after.two_four_violations().to_string(),
    ]);
    t.print();
    assert_eq!(violations_after(&a, &conv), 0);
    println!(
        "\n  conversion strategy: {}, zero-column pads: {}",
        conv.strategy_used, conv.pad_count
    );
}
