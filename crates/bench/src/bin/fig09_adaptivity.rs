//! Figure 9 — adaptivity and sparsity across configurations.
//!
//! Top half: throughput and residual (stored-operand) sparsity across
//! stencil sizes `k ∈ {3,5,7,9}` on two sparse fragment geometries,
//! against a dense-TCU baseline at the same layout (§4.5: "up to 4.1×
//! speedup ... maintaining sparsity below 60%"; temporal fusion is
//! disabled here, as in the paper).
//!
//! Bottom half (`-- --heatmap`): GStencil/s and compute density over the
//! `(r1, r2)` layout space for Box-2D9P and Box-2D49P.

use sparstencil::layout::{self, ExecMode};
use sparstencil::prelude::*;
use sparstencil_bench::{f1, f2, Scale, Table};
use sparstencil_tcu::GpuConfig;

fn main() {
    let scale = Scale::from_args();
    let heatmap = std::env::args().any(|a| a == "--heatmap");
    let gpu = GpuConfig::a100();
    let n = match scale {
        Scale::Quick => 1024,
        Scale::Full => 10240,
    };

    println!("== Figure 9 (top): throughput & sparsity across stencil sizes ==\n");
    let frags = [
        ("m16n8k32.sp", FragmentShape::sparse_fp16()),
        ("m16n16k16.sp", FragmentShape::sparse_m16n16k16()),
    ];
    for (label, frag) in frags {
        println!("-- fragment {label} --");
        let mut t = Table::new(&[
            "kernel",
            "sparse GSt/s",
            "dense GSt/s",
            "speedup",
            "stored sparsity %",
        ]);
        for radius in 1..=4usize {
            let kernel = StencilKernel::box2d(radius);
            let e = 2 * radius + 1;
            let shape = [1, n + e - 1, n + e - 1];
            let opts_sparse = sparstencil::plan::Options {
                frag: Some(frag),
                gpu: gpu.clone(),
                ..Default::default()
            };
            let compile_shape = sparstencil_bench::compile_shape_for(&kernel, shape);
            let exec =
                sparstencil::pipeline::Executor::<f32>::new(&kernel, compile_shape, &opts_sparse)
                    .expect("compile");
            let sparse = exec.run_modelled(shape, 100);
            let layout = (exec.plan().plan.r1, exec.plan().plan.r2);
            // Dense baseline at the same layout.
            let opts_dense = sparstencil::plan::Options {
                mode: ExecMode::DenseTcu,
                layout: Some(layout),
                gpu: gpu.clone(),
                ..Default::default()
            };
            let dense_exec =
                sparstencil::pipeline::Executor::<f32>::new(&kernel, compile_shape, &opts_dense)
                    .expect("compile dense");
            let dense = dense_exec.run_modelled(shape, 100);
            let eval = layout::evaluate(
                &kernel,
                shape,
                layout.0,
                layout.1,
                frag,
                ExecMode::SparseTcu,
                Precision::Fp16,
                &gpu,
            );
            t.row(vec![
                format!("Box-2D k={e} ({}P)", kernel.points()),
                f1(sparse.gstencil_per_sec),
                f1(dense.gstencil_per_sec),
                format!("{:.2}x", sparse.gstencil_per_sec / dense.gstencil_per_sec),
                f1(eval.stored_sparsity * 100.0),
            ]);
        }
        t.print();
        println!();
    }

    if heatmap {
        println!("== Figure 9 (bottom): (r1, r2) heatmaps ==");
        for kernel in [StencilKernel::box2d9p(), StencilKernel::box2d49p()] {
            let e = kernel.extent()[2];
            let shape = [1, n + e - 1, n + e - 1];
            println!("\n-- {}: GStencil/s (rows r2, cols r1) --", kernel.name());
            print_heatmap(&kernel, shape, &gpu, |ev| {
                let useful = 1e-9 / ev.t_total; // relative scale per point
                useful * (shape[1] - e + 1) as f64 * (shape[2] - e + 1) as f64
            });
            println!(
                "\n-- {}: compute density (useful/executed FLOPs) --",
                kernel.name()
            );
            print_heatmap(&kernel, shape, &gpu, |ev| ev.compute_density * 100.0);
        }
    } else {
        println!("(run with `-- --heatmap` for the Figure 9 bottom-half layout heatmaps)");
    }
}

fn print_heatmap(
    kernel: &StencilKernel,
    shape: [usize; 3],
    gpu: &GpuConfig,
    metric: impl Fn(&layout::ModelEval) -> f64,
) {
    let rs = [1usize, 2, 3, 4, 6, 8, 12, 16];
    print!("{:>6}", "r2\\r1");
    for r1 in rs {
        print!("{r1:>9}");
    }
    println!();
    let mut best = (0.0f64, (0, 0));
    for r2 in rs {
        print!("{r2:>6}");
        for r1 in rs {
            if r1 * r2 > 32 {
                print!("{:>9}", "-");
                continue;
            }
            let ev = layout::evaluate(
                kernel,
                shape,
                r1,
                r2,
                FragmentShape::sparse_fp16(),
                ExecMode::SparseTcu,
                Precision::Fp16,
                gpu,
            );
            let v = metric(&ev);
            if v > best.0 {
                best = (v, (r1, r2));
            }
            print!("{:>9}", f2(v));
        }
        println!();
    }
    println!("  best: {:.2} at (r1, r2) = {:?}", best.0, best.1);
}
