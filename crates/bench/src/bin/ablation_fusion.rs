//! Temporal-fusion depth ablation.
//!
//! §4.1 adopts 3× fusion for small kernels (matching ConvStencil's
//! protocol) without justifying the "3": this ablation sweeps fusion
//! depth 1–5 on the small Table-2 kernels and reports effective
//! GStencil/s (updates per second across all fused steps). The expected
//! shape: gains while the fused kernel stays memory-bound, a maximum
//! where compute catches up (the fused operand grows ~(d·(e−1)+1)² per
//! application), then decline — locating the optimum the paper uses.

use sparstencil::layout::ExecMode;
use sparstencil::plan::OptFlags;
use sparstencil::prelude::*;
use sparstencil_bench::{f1, sparstencil_stats, table2, Scale, Table};
use sparstencil_tcu::GpuConfig;

fn main() {
    let scale = Scale::from_args();
    let gpu = GpuConfig::a100();
    println!("== Ablation: temporal-fusion depth (effective GStencil/s, FP16) ==\n");

    let depths = [1usize, 2, 3, 4, 5];
    let mut headers = vec!["kernel".to_string()];
    headers.extend(depths.iter().map(|d| format!("{d}x")));
    headers.push("best".into());
    let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&hdr);

    for b in table2() {
        if !b.fuse_small {
            continue;
        }
        let shape = scale.shape(&b);
        let iters = scale.iters(&b);
        let mut cells = vec![b.kernel.name().to_string()];
        let mut best = (0.0f64, 0usize);
        for &d in &depths {
            let (stats, ff) = sparstencil_stats(
                &b.kernel,
                shape,
                iters,
                d,
                ExecMode::SparseTcu,
                OptFlags::default(),
                Precision::Fp16,
                &gpu,
            );
            let eff = stats.gstencil_per_sec * ff;
            if eff > best.0 {
                best = (eff, d);
            }
            cells.push(f1(eff));
        }
        cells.push(format!("{}x", best.1));
        t.row(cells);
    }
    t.print();
    println!("\n  under our idealized overlap model the returns stay near-linear");
    println!("  through 4x and begin bending at 5x on 2D kernels (the fused operand");
    println!("  k'' grows quadratically); on real hardware register pressure and");
    println!("  halo growth bend the curve earlier, which is where the paper's 3x");
    println!("  convention comes from.");
}
