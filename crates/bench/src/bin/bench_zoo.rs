//! Zoo-at-scale benchmark: drives **all 79 zoo kernels** through the
//! session engine at their per-entry problem sizes
//! ([`sparstencil_zoo::ZooEntry::shape`]) and writes `BENCH_zoo.json` —
//! one row per kernel — so the perf trajectory sees exotic stencils
//! (radius-4 stars, dense diagonal boxes, anisotropic patterns,
//! long-range 1D lines, LBM streams), not just the two tracking
//! workloads of the main bench.
//!
//! Per kernel the row reports:
//! - the **auto-tuned** plan ([`sparstencil::plan::tune`]): steady-state
//!   cells/s of a persistent session on the tuner's choice, plus the
//!   decision itself — `default_layout` vs `tuned_layout`,
//!   `shared_stage`/`prefetch` policy bits, `retuned`, and the modeled
//!   costs (`model_cost` vs `model_default_cost`);
//! - `default_cells_per_sec` — the same session protocol on the
//!   fixed-default plan (the oracle), and `tuned_vs_default` — the
//!   **median of per-pair interleaved ratios** (each repetition times
//!   tuned then default back-to-back, so machine-speed drift hits both
//!   sides of a pair equally; the ratio is same-process and
//!   machine-invariant, which is what `bench_compare --zoo` gates);
//! - `naive_cells_per_sec` and `speedup` — tuned engine vs the retained
//!   naive reference session on the default plan, the zoo counterpart
//!   of the main bench's speedup-vs-naive trajectory;
//! - the per-step phase split of the tuned plan (`stage_seconds`,
//!   `mma_seconds`, `scatter_seconds`, `mirror_seconds`, via
//!   [`sparstencil::exec::profile_phases`]) and the `simd` kernel-path
//!   tag, so a tuner decision that shifts time between gather and MMA
//!   stays auditable.
//!
//! **Protocol** (same as the main bench): setup — compile, tune, session
//! construction — happens outside the timed region; every rate is the
//! median of [`MEASURE_REPS`] = 5 timed repetitions after one untimed
//! warm-up, single-lane.
//!
//! Usage: `cargo run --release -p sparstencil-bench --bin bench_zoo`
//! (`--iters N` pins the measured step count; by default each kernel
//! gets enough iterations to push ~[`TARGET_CELLS_PER_CHUNK`] cells
//! per timed chunk, so tiny grids don't measure timer resolution).

use sparstencil::plan::{compile, model_step_cost, tune, Options, StagePolicy};
use sparstencil::session::{EngineBackend, NaiveBackend, Simulation};
use std::time::Instant;

/// Repetitions per measured configuration — median-of-5, matching the
/// main bench protocol.
const MEASURE_REPS: usize = 5;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Work volume a timed chunk targets when `--iters` is not given:
/// enough cells that a chunk lasts milliseconds, not timer-resolution
/// territory, even on the smallest zoo shapes.
const TARGET_CELLS_PER_CHUNK: usize = 1_000_000;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let forced_iters: Option<usize> = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let detected_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let simd = sparstencil::exec::simd::kernel_path();

    let entries = sparstencil_zoo::all();
    let mut rows = Vec::with_capacity(entries.len());
    let mut retuned_count = 0usize;
    for entry in &entries {
        let kernel = entry.kernel();
        let shape = entry.shape;
        let cells = entry.cells() as f64;
        let iters = forced_iters
            .unwrap_or_else(|| TARGET_CELLS_PER_CHUNK / entry.cells().max(1))
            .max(8);
        let opts = Options::default();

        let default_plan = compile::<f32>(&kernel, shape, &opts)
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", entry.name));
        let (tuned_plan, choice) = tune::<f32>(&kernel, shape, &opts)
            .unwrap_or_else(|e| panic!("{}: tune failed: {e}", entry.name));
        let input = sparstencil::grid::Grid::<f32>::smooth_random(kernel.dims(), shape);

        // Reused sessions: construction (buffers, quantization, scratch)
        // once, outside every timed region.
        let mut tuned_sim =
            Simulation::new(EngineBackend::with_parallelism(&tuned_plan, &input, 1));
        let mut default_sim =
            Simulation::new(EngineBackend::with_parallelism(&default_plan, &input, 1));
        let mut naive_sim = Simulation::new(NaiveBackend::new(&default_plan, &input));
        tuned_sim.step_n(1);
        default_sim.step_n(1);
        naive_sim.step_n(1);

        // Interleaved tuned/default pairs: the gated ratio is the median
        // of per-pair ratios, immune to drift between the two medians.
        let mut tuned_rates = Vec::with_capacity(MEASURE_REPS);
        let mut default_rates = Vec::with_capacity(MEASURE_REPS);
        let mut pair_ratios = Vec::with_capacity(MEASURE_REPS);
        for _ in 0..MEASURE_REPS {
            let t0 = Instant::now();
            tuned_sim.step_n(iters);
            let t = cells * iters as f64 / t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            default_sim.step_n(iters);
            let d = cells * iters as f64 / t0.elapsed().as_secs_f64();
            tuned_rates.push(t);
            default_rates.push(d);
            pair_ratios.push(t / d);
        }
        let tuned_rate = median(tuned_rates);
        let default_rate = median(default_rates);
        let tuned_vs_default = median(pair_ratios);
        let naive_rate = median(
            (0..MEASURE_REPS)
                .map(|_| {
                    let t0 = Instant::now();
                    naive_sim.step_n(iters);
                    cells * iters as f64 / t0.elapsed().as_secs_f64()
                })
                .collect(),
        );
        let speedup = tuned_rate / naive_rate;

        let phases = sparstencil::exec::profile_phases(&tuned_plan, &input, iters);
        let stage_seconds = phases.stage_seconds / iters as f64;
        let mma_seconds = phases.mma_seconds / iters as f64;
        let scatter_seconds = phases.scatter_seconds / iters as f64;
        let mirror_seconds = phases.mirror_seconds / iters as f64;

        let model_default_cost = model_step_cost(&default_plan, StagePolicy::default());
        if choice.retuned {
            retuned_count += 1;
        }
        println!(
            "{:<26} {:<7} {:>11.0} cells/s  speedup {speedup:>6.2}x  \
             vs-default {tuned_vs_default:>5.3}  layout {}x{} -> {}x{}{}  policy {}{}",
            entry.name,
            entry.domain.name(),
            tuned_rate,
            choice.default_layout.0,
            choice.default_layout.1,
            choice.layout.0,
            choice.layout.1,
            if choice.retuned { " (retuned)" } else { "" },
            if choice.policy.shared_stage { "S" } else { "-" },
            if choice.policy.prefetch { "P" } else { "-" },
        );
        rows.push(format!(
            "    {{\"case\": \"{}\", \"domain\": \"{}\", \"cells\": {}, \"iters\": {iters}, \
             \"detected_cores\": {detected_cores}, \
             \"default_layout\": \"{}x{}\", \"tuned_layout\": \"{}x{}\", \
             \"shared_stage\": {}, \"prefetch\": {}, \"retuned\": {}, \
             \"model_cost\": {:.1}, \"model_default_cost\": {model_default_cost:.1}, \
             \"tuned_cells_per_sec\": {tuned_rate:.1}, \
             \"default_cells_per_sec\": {default_rate:.1}, \
             \"naive_cells_per_sec\": {naive_rate:.1}, \
             \"speedup\": {speedup:.3}, \
             \"tuned_vs_default\": {tuned_vs_default:.3}, \
             \"stage_seconds\": {stage_seconds:.9}, \
             \"mma_seconds\": {mma_seconds:.9}, \
             \"scatter_seconds\": {scatter_seconds:.9}, \
             \"mirror_seconds\": {mirror_seconds:.9}, \
             \"simd\": \"{simd}\"}}",
            entry.name,
            entry.domain.name(),
            entry.cells(),
            choice.default_layout.0,
            choice.default_layout.1,
            choice.layout.0,
            choice.layout.1,
            choice.policy.shared_stage,
            choice.policy.prefetch,
            choice.retuned,
            choice.cost,
        ));
    }

    println!(
        "\n{} kernels, {} retuned layouts, simd {simd}, {} cores",
        entries.len(),
        retuned_count,
        detected_cores
    );
    let json = format!(
        "{{\n  \"benchmark\": \"zoo\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_zoo.json", &json).expect("write BENCH_zoo.json");
    println!("wrote BENCH_zoo.json");
}
