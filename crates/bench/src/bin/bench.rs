//! Step-throughput benchmark: measures the functional executor's
//! steady-state cells/second on the two tracking workloads (2D-5pt at
//! 256², 3D-27pt at 128³) and writes `BENCH_step_throughput.json` so
//! successive PRs accumulate a perf trajectory.
//!
//! Measurement drives a persistent [`Simulation`] session per
//! configuration: setup (input embedding, quantization, ping-pong buffer
//! and scratch allocation) happens once, **outside** the timed region,
//! and the timed region is pure steady-state stepping — the quantity a
//! long-running solver actually experiences. Setup is reported
//! separately as `setup_seconds` instead of being smeared into the rate.
//!
//! Per case it reports:
//! - the optimized engine session across a 1/2/4 worker-lane sweep
//!   (multi-core scaling is first-class; on a single-CPU box the
//!   >1-lane rows measure scheduling overhead only),
//! - the retained naive reference path (a [`NaiveBackend`] session),
//! - `setup_seconds` — one-time session construction cost,
//! - `stage_seconds` / `mma_seconds` / `scatter_seconds` /
//!   `mirror_seconds` — the full per-step wall-time split of the staged
//!   executor's phases (single-lane,
//!   [`sparstencil::exec::profile_phases`]), so the gather and kernel
//!   shares of a step stay visible in the perf trajectory as the
//!   staging pipeline evolves,
//! - `simd` — which MMA kernel path the engine dispatched on the
//!   measuring machine (`"avx2"` or `"scalar"`,
//!   [`sparstencil::exec::simd::kernel_path`]), so committed numbers
//!   say which kernels produced them,
//! - `edge_block_fraction` — the share of fragment-column blocks that
//!   would fall off the branch-free gather path, `0.0` for every plan
//!   since the executor plans over a halo-padded domain (regression
//!   guard for that invariant),
//! - `detected_cores` — `std::thread::available_parallelism()` on the
//!   measuring machine, so `bench_compare` and readers can discount
//!   multi-lane rows recorded on a single-CPU box (where they measure
//!   scheduling overhead only).
//!
//! A second **batch** section measures multi-session serving
//! throughput: N sessions over one shared plan stepped through
//! [`sparstencil::session::Batch`]'s single guided work queue
//! (`batch_cells_per_sec`, aggregate cells/s across all sessions,
//! single-lane) against the serial round-robin loop over N solo
//! sessions (`serial_cells_per_sec`) — the `batch_speedup` ratio is the
//! regression guard for "one queue over many simulations is never
//! slower than stepping them in turn". A companion `degraded_*` row per
//! batch case measures the same batch with one member quarantined
//! ([`Batch::quarantine`], the fault-tolerant serving path): its gated
//! ratio is per-member throughput, degraded vs full, guarding "a
//! sidelined member must not slow the survivors down".
//!
//! A third **serving** section measures the supervised multi-tenant
//! path ([`sparstencil_serve::SessionManager`], single-lane): per-round
//! step latency over a tenant fleet, reported as `p50_step_ms` /
//! `p99_step_ms` from the manager's fixed-bucket latency histogram
//! (with mid-run fault recoveries exercising the self-healing loop, so
//! the percentiles include supervision overhead), and membership-churn
//! throughput `churn_ops_per_sec` (retire + admit cycles against the
//! live pool, no plan rebuild). `recoveries`/`evictions` land in the
//! row so the fault-handling activity behind the numbers is auditable.
//! Latencies are machine-dependent, so `bench_compare` schema-gates
//! these rows (presence + sanity) without a cross-machine ratio gate.
//!
//! A fourth **shard** section measures sharded-grid execution
//! ([`sparstencil_shard::ShardedSimulation`], single-lane): one
//! semantic grid decomposed across 1/2/4/8 halo-exchanging
//! shard-sessions (a 256³-class 3D-27pt case plus an edge-heavy
//! radius-3 2D case), reporting aggregate `shard_cells_per_sec` over
//! the global grid and the static `exchange_fraction` (halo cells
//! copied per step as a share of the domain). Rates are wall-clock, so
//! `bench_compare` schema-gates these rows without a cross-machine
//! ratio gate; the trajectory of the 1-shard vs N-shard numbers tracks
//! the protocol's overhead.
//!
//! **Protocol:** every reported rate is the median of
//! [`MEASURE_REPS`] = 5 timed repetitions after one untimed warm-up
//! (paired ratios like `batch_speedup` are medians of per-pair ratios),
//! so one scheduler hiccup on the runner cannot move a committed
//! number.
//!
//! `optimized_cells_per_sec` stays the single-lane number so the CI
//! regression gate (`bench_compare`) tracks one stable configuration —
//! the gate keeps comparing total throughput (speedup vs naive), never
//! the phase split.
//!
//! Usage: `cargo run --release -p sparstencil-bench --bin bench`
//! (`--iters N` to change the measured step count, default 8).

use sparstencil::grid::Grid;
use sparstencil::plan::{compile, Options};
use sparstencil::session::{Batch, EngineBackend, NaiveBackend, Simulation};
use sparstencil::stencil::StencilKernel;
use std::time::Instant;

struct Case {
    name: &'static str,
    kernel: StencilKernel,
    shape: [usize; 3],
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "2d5pt_256x256",
            kernel: StencilKernel::heat2d(),
            shape: [1, 256, 256],
        },
        Case {
            name: "3d27pt_128x128x128",
            kernel: StencilKernel::box3d27p(),
            shape: [128, 128, 128],
        },
    ]
}

struct BatchCase {
    name: &'static str,
    kernel: StencilKernel,
    shape: [usize; 3],
    sessions: usize,
}

struct ServeCase {
    name: &'static str,
    kernel: StencilKernel,
    shape: [usize; 3],
    tenants: usize,
    /// Supervised rounds in the timed latency phase.
    rounds: usize,
    /// Retire+admit cycles in the timed churn phase.
    churn_cycles: usize,
}

fn serve_cases() -> Vec<ServeCase> {
    vec![
        ServeCase {
            name: "serve32_2d5pt_96x96",
            kernel: StencilKernel::heat2d(),
            shape: [1, 96, 96],
            tenants: 32,
            rounds: 48,
            churn_cycles: 64,
        },
        ServeCase {
            name: "serve8_3d27pt_32x48x48",
            kernel: StencilKernel::box3d27p(),
            shape: [32, 48, 48],
            tenants: 8,
            rounds: 24,
            churn_cycles: 16,
        },
    ]
}

fn batch_cases() -> Vec<BatchCase> {
    vec![
        BatchCase {
            name: "batch16_2d5pt_256x256",
            kernel: StencilKernel::heat2d(),
            shape: [1, 256, 256],
            sessions: 16,
        },
        BatchCase {
            name: "batch8_3d27pt_128x128x128",
            kernel: StencilKernel::box3d27p(),
            shape: [128, 128, 128],
            sessions: 8,
        },
    ]
}

struct ShardCase {
    name: &'static str,
    kernel: StencilKernel,
    shape: [usize; 3],
    /// Shard counts to sweep (every valid extent must divide evenly).
    shard_counts: &'static [usize],
}

fn shard_cases() -> Vec<ShardCase> {
    vec![
        // 256 valid z-planes: z-slab splits at 1/2/4/8 with no
        // tile-period alignment constraint.
        ShardCase {
            name: "shard_3d27pt_258x256x256",
            kernel: StencilKernel::box3d27p(),
            shape: [258, 256, 256],
            shard_counts: &[1, 2, 4, 8],
        },
        // Edge-heavy: a radius-3 49-point box makes the halo 3 rows
        // deep, so the exchange fraction is the stress axis; 512 valid
        // y rows split at 1/2/4/8 with every chunk a multiple of r2.
        ShardCase {
            name: "shard_2d49pt_518x518",
            kernel: StencilKernel::box2d49p(),
            shape: [1, 518, 518],
            shard_counts: &[1, 2, 4, 8],
        },
    ]
}

/// Repetitions per measured configuration: every rate this harness
/// reports is the **median of `MEASURE_REPS` timed repetitions** (one
/// untimed warm-up first), so a single scheduler hiccup or frequency
/// excursion on the runner cannot move a committed number.
const MEASURE_REPS: usize = 5;

/// Steady-state wall-clock cells/second of a live session over `iters`
/// steps (median of [`MEASURE_REPS`] repetitions, one untimed warm-up
/// step). The session keeps stepping the same field — setup never
/// re-runs.
fn measure(sim: &mut Simulation<'_, f32>, cells: f64, iters: usize) -> f64 {
    sim.step_n(1); // warm up pool, caches, lazy init
    median(
        (0..MEASURE_REPS)
            .map(|_| {
                let t0 = Instant::now();
                sim.step_n(iters);
                cells * iters as f64 / t0.elapsed().as_secs_f64()
            })
            .collect(),
    )
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Batched vs serial-loop stepping over the same sessions, measured in
/// **interleaved** repetition pairs so slow machine-speed drift hits
/// both sides of each pair equally: the gated `batch_speedup` is the
/// median of the per-pair ratios, not the ratio of two medians taken a
/// second apart. Returns `(batch cells/s, serial cells/s, speedup)`,
/// all aggregate over every session; one untimed warm-up round each.
///
/// The serial baseline steps the sessions round-robin — one full
/// dispatch per session per step, the pattern a server without a batch
/// driver would run.
fn measure_batch_vs_serial(
    batch: &mut Batch<'_, f32>,
    sims: &mut [Simulation<'_, f32>],
    total_cells: f64,
    iters: usize,
) -> (f64, f64, f64) {
    batch.step_all();
    for sim in sims.iter_mut() {
        sim.step_n(1);
    }
    let mut batch_rates = Vec::new();
    let mut serial_rates = Vec::new();
    let mut ratios = Vec::new();
    for _ in 0..MEASURE_REPS {
        let t0 = Instant::now();
        batch.step_all_n(iters);
        let b = total_cells * iters as f64 / t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for _ in 0..iters {
            for sim in sims.iter_mut() {
                sim.step();
            }
        }
        let s = total_cells * iters as f64 / t0.elapsed().as_secs_f64();
        batch_rates.push(b);
        serial_rates.push(s);
        ratios.push(b / s);
    }
    (median(batch_rates), median(serial_rates), median(ratios))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // At least one measured step: zero iterations would make every rate
    // 0/0 and the emitted speedups NaN (invalid JSON).
    let iters = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(8usize)
        .max(1);
    let detected_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if detected_cores == 1 {
        println!(
            "detected_cores 1: multi-lane thread_sweep rows measure scheduling \
             overhead only — discount them"
        );
    }

    let mut rows = Vec::new();
    for case in cases() {
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let plan = compile::<f32>(&case.kernel, case.shape, &opts).unwrap();
        let input = Grid::<f32>::smooth_random(case.kernel.dims(), case.shape);
        let cells = (case.shape[0] * case.shape[1] * case.shape[2]) as f64;
        let edge_block_fraction = plan.exec.edge_block_fraction();

        // One-time session construction cost, reported separately.
        let t0 = Instant::now();
        let mut sim = Simulation::new(EngineBackend::with_parallelism(&plan, &input, 1));
        let setup_seconds = t0.elapsed().as_secs_f64();

        let mut lane_rates: Vec<(usize, f64)> = Vec::new();
        for lanes in [1usize, 2, 4] {
            if lanes > 1 {
                sim = Simulation::new(EngineBackend::with_parallelism(&plan, &input, lanes));
            }
            lane_rates.push((lanes, measure(&mut sim, cells, iters)));
        }
        let optimized = lane_rates[0].1;
        let mut naive_sim = Simulation::new(NaiveBackend::new(&plan, &input));
        let naive = measure(&mut naive_sim, cells, iters);
        let speedup = optimized / naive;

        // Per-phase split of the staged step (single-lane, per step):
        // where the remaining time goes across stage/MMA/scatter/mirror
        // — plus which kernel path produced the numbers.
        let phases = sparstencil::exec::profile_phases(&plan, &input, iters);
        let stage_seconds = phases.stage_seconds / iters as f64;
        let mma_seconds = phases.mma_seconds / iters as f64;
        let scatter_seconds = phases.scatter_seconds / iters as f64;
        let mirror_seconds = phases.mirror_seconds / iters as f64;
        let simd = sparstencil::exec::simd::kernel_path();
        let phase_pct = |s: f64| 100.0 * s / phases.wall_seconds;
        println!(
            "{:<22} optimized {:>12.0} cells/s   naive {:>12.0} cells/s   speedup {speedup:.2}x   \
             setup {:.1} ms   edge_blocks {edge_block_fraction:.3}   simd {simd}",
            case.name,
            optimized,
            naive,
            setup_seconds * 1e3
        );
        println!(
            "{:<22}   phases  stage {:.2} ms/step ({:.0}%)   mma {:.2} ms/step ({:.0}%)   \
             scatter {:.2} ms/step ({:.0}%)   mirror {:.2} ms/step ({:.0}%)",
            "",
            stage_seconds * 1e3,
            phase_pct(phases.stage_seconds),
            mma_seconds * 1e3,
            phase_pct(phases.mma_seconds),
            scatter_seconds * 1e3,
            phase_pct(phases.scatter_seconds),
            mirror_seconds * 1e3,
            phase_pct(phases.mirror_seconds),
        );
        for &(lanes, rate) in &lane_rates[1..] {
            println!(
                "{:<22}   {lanes} lanes  {:>12.0} cells/s   ({:.2}x vs 1 lane{})",
                "",
                rate,
                rate / optimized,
                if lanes > detected_cores {
                    ", more lanes than cores"
                } else {
                    ""
                }
            );
        }
        let threads_json = lane_rates
            .iter()
            .map(|&(lanes, rate)| format!("{{\"lanes\": {lanes}, \"cells_per_sec\": {rate:.1}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        rows.push(format!(
            "    {{\"case\": \"{}\", \"iters\": {iters}, \
             \"detected_cores\": {detected_cores}, \
             \"edge_block_fraction\": {edge_block_fraction:.4}, \
             \"setup_seconds\": {setup_seconds:.6}, \
             \"stage_seconds\": {stage_seconds:.6}, \
             \"mma_seconds\": {mma_seconds:.6}, \
             \"scatter_seconds\": {scatter_seconds:.6}, \
             \"mirror_seconds\": {mirror_seconds:.6}, \
             \"simd\": \"{simd}\", \
             \"optimized_cells_per_sec\": {optimized:.1}, \
             \"naive_cells_per_sec\": {naive:.1}, \
             \"speedup\": {speedup:.3}, \
             \"thread_sweep\": [{threads_json}]}}",
            case.name
        ));
    }

    // Batched multi-session serving throughput: one guided queue over N
    // sessions vs the serial round-robin loop, both single-lane so the
    // comparison isolates the dispatch discipline (and stays meaningful
    // on the 1-CPU CI box).
    let mut batch_rows = Vec::new();
    for bc in batch_cases() {
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let plan = compile::<f32>(&bc.kernel, bc.shape, &opts).unwrap();
        let cells = (bc.shape[0] * bc.shape[1] * bc.shape[2]) as f64;
        let total_cells = cells * bc.sessions as f64;
        let inputs: Vec<Grid<f32>> = (0..bc.sessions)
            .map(|_| Grid::<f32>::smooth_random(bc.kernel.dims(), bc.shape))
            .collect();

        let mut serial_sims: Vec<Simulation<'_, f32>> = inputs
            .iter()
            .map(|input| Simulation::new(EngineBackend::with_parallelism(&plan, input, 1)))
            .collect();
        let mut batch = Batch::with_parallelism(&plan, &inputs, 1);
        let (batch_rate, serial, batch_speedup) =
            measure_batch_vs_serial(&mut batch, &mut serial_sims, total_cells, iters);
        drop(serial_sims);
        drop(batch);

        // Batch lane sweep: the cross-session balancing win only
        // materializes with real cores, so a multi-core re-run
        // (workflow_dispatch) must produce multi-lane batch evidence —
        // the gated ratio above stays the 1-lane number.
        let mut batch_sweep: Vec<(usize, f64)> = vec![(1, batch_rate)];
        for lanes in [2usize, 4] {
            let mut b = Batch::with_parallelism(&plan, &inputs, lanes);
            b.step_all();
            let rates: Vec<f64> = (0..MEASURE_REPS)
                .map(|_| {
                    let t0 = Instant::now();
                    b.step_all_n(iters);
                    total_cells * iters as f64 / t0.elapsed().as_secs_f64()
                })
                .collect();
            batch_sweep.push((lanes, median(rates)));
        }

        println!(
            "{:<26} batch {:>12.0} cells/s   serial-loop {:>12.0} cells/s   \
             ratio {batch_speedup:.3}   ({} sessions)",
            bc.name, batch_rate, serial, bc.sessions
        );
        for &(lanes, rate) in &batch_sweep[1..] {
            println!(
                "{:<26}   {lanes} lanes  {:>12.0} cells/s   ({:.2}x vs 1 lane{})",
                "",
                rate,
                rate / batch_rate,
                if lanes > detected_cores {
                    ", more lanes than cores"
                } else {
                    ""
                }
            );
        }
        let sweep_json = batch_sweep
            .iter()
            .map(|&(lanes, rate)| format!("{{\"lanes\": {lanes}, \"cells_per_sec\": {rate:.1}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        batch_rows.push(format!(
            "    {{\"case\": \"{}\", \"sessions\": {}, \"iters\": {iters}, \
             \"detected_cores\": {detected_cores}, \
             \"batch_cells_per_sec\": {batch_rate:.1}, \
             \"serial_cells_per_sec\": {serial:.1}, \
             \"batch_speedup\": {batch_speedup:.3}, \
             \"batch_thread_sweep\": [{sweep_json}]}}",
            bc.name, bc.sessions
        ));

        // Degraded-mode serving throughput: the same batch with one
        // member quarantined (its claims drain unexecuted through the
        // guided queue). The gated ratio is per-member throughput —
        // degraded aggregate over N−1 movers vs full aggregate over N —
        // so the row rides the existing batch_speedup >= 1 − tolerance
        // gate: sidelining a member must not slow the survivors down.
        // Interleaved repetition pairs, as above.
        let (degraded_rate, full_rate, per_member_ratio) = {
            let mut full = Batch::with_parallelism(&plan, &inputs, 1);
            let mut degraded = Batch::with_parallelism(&plan, &inputs, 1);
            degraded.quarantine(0);
            full.step_all();
            degraded.step_all();
            let movers = (bc.sessions - 1) as f64;
            let degraded_cells = cells * movers;
            let mut full_rates = Vec::new();
            let mut degraded_rates = Vec::new();
            let mut ratios = Vec::new();
            for _ in 0..MEASURE_REPS {
                let t0 = Instant::now();
                degraded.step_all_n(iters);
                let d = degraded_cells * iters as f64 / t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                full.step_all_n(iters);
                let f = total_cells * iters as f64 / t0.elapsed().as_secs_f64();
                degraded_rates.push(d);
                full_rates.push(f);
                ratios.push((d / movers) / (f / bc.sessions as f64));
            }
            (median(degraded_rates), median(full_rates), median(ratios))
        };
        println!(
            "{:<26} degraded {:>11.0} cells/s   full {:>12.0} cells/s   \
             per-member ratio {per_member_ratio:.3}   ({}-of-{} quarantined)",
            bc.name, degraded_rate, full_rate, 1, bc.sessions
        );
        batch_rows.push(format!(
            "    {{\"case\": \"degraded_{}\", \"sessions\": {}, \"iters\": {iters}, \
             \"detected_cores\": {detected_cores}, \
             \"batch_cells_per_sec\": {degraded_rate:.1}, \
             \"serial_cells_per_sec\": {full_rate:.1}, \
             \"batch_speedup\": {per_member_ratio:.3}, \
             \"batch_thread_sweep\": [{{\"lanes\": 1, \"cells_per_sec\": {degraded_rate:.1}}}]}}",
            bc.name, bc.sessions
        ));
    }

    // Supervised serving: per-round step latency percentiles over a
    // tenant fleet (including mid-run fault recoveries — the histogram
    // records only the batched step itself, so supervision work that
    // delays a round shows up, recovery replay does not), then
    // membership-churn throughput against the live pool.
    let mut serve_rows = Vec::new();
    for sc in serve_cases() {
        use sparstencil_serve::{ServePolicy, SessionManager};

        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let plan = compile::<f32>(&sc.kernel, sc.shape, &opts).unwrap();
        let policy = ServePolicy {
            max_sessions: sc.tenants + 1,
            checkpoint_every: 4,
            checkpoint_ring: 2,
            backoff_base: 1,
            backoff_cap: 2,
            ..ServePolicy::default()
        };
        let mut mgr = SessionManager::with_parallelism(&plan, policy, 1);
        let inputs: Vec<Grid<f32>> = (0..sc.tenants)
            .map(|_| Grid::<f32>::smooth_random(sc.kernel.dims(), sc.shape))
            .collect();
        let mut live: Vec<sparstencil_serve::TenantId> = inputs
            .iter()
            .map(|g| mgr.admit(g).expect("within capacity"))
            .collect();

        // Warm the pool (arena + checkpoint rings), then measure.
        for _ in 0..6 {
            mgr.step();
        }
        mgr.reset_latency();
        mgr.drain_events();
        for round in 0..sc.rounds {
            // A fault every 16 rounds keeps the self-healing loop in the
            // measured distribution without dominating it.
            if round % 16 == 8 {
                mgr.quarantine(live[round % live.len()])
                    .expect("tenant is live");
            }
            mgr.step();
        }
        let hist = mgr.latency();
        let p50_ms = hist.quantile(0.5).as_secs_f64() * 1e3;
        let p99_ms = hist.quantile(0.99).as_secs_f64() * 1e3;
        let mut recoveries = 0usize;
        let mut evictions = 0usize;
        for ev in mgr.drain_events() {
            match ev {
                sparstencil_serve::ServeEvent::Recovered { .. } => recoveries += 1,
                sparstencil_serve::ServeEvent::Evicted { .. } => evictions += 1,
                _ => {}
            }
        }

        // Churn throughput: retire + admit cycles against the live pool
        // (surviving members' buffers untouched, no plan rebuild). One
        // churn op = one retire or one admit.
        let mut seed = 0x00C0FFEEusize;
        let t0 = Instant::now();
        for i in 0..sc.churn_cycles {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let victim = live.swap_remove(seed % live.len());
            mgr.retire(victim).expect("tenant is live");
            live.push(mgr.admit(&inputs[i % inputs.len()]).expect("slot freed"));
        }
        let churn_ops_per_sec = (2 * sc.churn_cycles) as f64 / t0.elapsed().as_secs_f64();

        println!(
            "{:<26} step p50 {p50_ms:>8.3} ms  p99 {p99_ms:>8.3} ms   churn {:>8.0} ops/s   \
             ({} tenants, {} rounds, {recoveries} recoveries, {evictions} evictions)",
            sc.name, churn_ops_per_sec, sc.tenants, sc.rounds
        );
        serve_rows.push(format!(
            "    {{\"case\": \"{}\", \"tenants\": {}, \"rounds\": {}, \
             \"detected_cores\": {detected_cores}, \
             \"p50_step_ms\": {p50_ms:.4}, \
             \"p99_step_ms\": {p99_ms:.4}, \
             \"churn_ops_per_sec\": {churn_ops_per_sec:.1}, \
             \"recoveries\": {recoveries}, \
             \"evictions\": {evictions}}}",
            sc.name, sc.tenants, sc.rounds
        ));
    }

    // Sharded-grid execution: one semantic grid decomposed across N
    // halo-exchanging shard-sessions ([`sparstencil_shard`]). Reported
    // per shard count: aggregate cells/s over the global grid
    // (single-lane — the number tracks protocol overhead, not core
    // scaling) and the static `exchange_fraction` = halo cells copied
    // per step / global cells. Wall-clock rates are machine-dependent,
    // so `bench_compare` schema-gates these rows (presence + sanity)
    // without a hard ratio gate.
    let mut shard_rows = Vec::new();
    for sc in shard_cases() {
        use sparstencil_shard::ShardedSimulation;

        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let input = Grid::<f32>::smooth_random(sc.kernel.dims(), sc.shape);
        let cells = (sc.shape[0] * sc.shape[1] * sc.shape[2]) as f64;
        for &n in sc.shard_counts {
            let mut sharded =
                ShardedSimulation::<f32>::try_with_parallelism(&sc.kernel, &input, &opts, n, 1)
                    .expect("shard case must decompose");
            let exchange_fraction = sharded.exchange_cells() as f64 / cells;
            sharded.step(); // warm up arena + exchange counters
            let rate = median(
                (0..MEASURE_REPS)
                    .map(|_| {
                        let t0 = Instant::now();
                        sharded.step_n(iters);
                        cells * iters as f64 / t0.elapsed().as_secs_f64()
                    })
                    .collect(),
            );
            println!(
                "{:<26} {n} shard(s) {:>12.0} cells/s   exchange {:.4} of domain/step",
                sc.name, rate, exchange_fraction
            );
            shard_rows.push(format!(
                "    {{\"case\": \"{}_s{n}\", \"shards\": {n}, \"iters\": {iters}, \
                 \"detected_cores\": {detected_cores}, \
                 \"shard_cells_per_sec\": {rate:.1}, \
                 \"exchange_fraction\": {exchange_fraction:.6}}}",
                sc.name
            ));
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"step_throughput\",\n  \"results\": [\n{}\n  ],\n  \
         \"batch_results\": [\n{}\n  ],\n  \"serving_results\": [\n{}\n  ],\n  \
         \"shard_results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        batch_rows.join(",\n"),
        serve_rows.join(",\n"),
        shard_rows.join(",\n")
    );
    std::fs::write("BENCH_step_throughput.json", &json).expect("write BENCH_step_throughput.json");
    println!("wrote BENCH_step_throughput.json");
}
