//! Figure 11 — hardware utilization comparison.
//!
//! Six metrics for SparStencil, ConvStencil and cuDNN on a Box-2D49P
//! workload. Paper values: SparStencil SM 74.5% / occupancy 96.9% /
//! L1 64.5% / memory 64.1% / DRAM 17.5% / L2 52.6%; ConvStencil SM 18.3%,
//! occupancy 61.3%; cuDNN SM 59.4%, occupancy 88.5%, DRAM 43.5%,
//! L2 61.6%. The signature SparStencil shape — high SM utilization and
//! occupancy, high L1 reuse, *low* DRAM dependence — must reproduce.

use sparstencil::layout::ExecMode;
use sparstencil::plan::OptFlags;
use sparstencil::prelude::*;
use sparstencil_baselines::{gemm_libs::CudnnLike, tcu_pipelines::ConvStencilLike, Baseline};
use sparstencil_bench::{f1, sparstencil_stats, Scale, Table};
use sparstencil_tcu::{GpuConfig, UtilizationReport};

fn main() {
    let scale = Scale::from_args();
    let gpu = GpuConfig::a100();
    let kernel = StencilKernel::box2d49p();
    let n = match scale {
        Scale::Quick => 2048,
        Scale::Full => 10240,
    };
    let shape = [1, n + 6, n + 6];
    let iters = 100;

    println!("== Figure 11: hardware utilization (Box-2D49P, FP16, %) ==\n");

    let (spar, _) = sparstencil_stats(
        &kernel,
        shape,
        iters,
        1,
        ExecMode::SparseTcu,
        OptFlags::default(),
        Precision::Fp16,
        &gpu,
    );
    let conv = ConvStencilLike
        .model(&kernel, shape, iters, Precision::Fp16, &gpu)
        .unwrap();
    let cudnn = CudnnLike
        .model(&kernel, shape, iters, Precision::Fp16, &gpu)
        .unwrap();

    let mut t = Table::new(&[
        "metric",
        "SparStencil",
        "ConvStencil",
        "cuDNN",
        "paper Spar",
    ]);
    type MetricRow = (&'static str, fn(&UtilizationReport) -> f64, &'static str);
    let rows: [MetricRow; 6] = [
        ("SM utilization", |u| u.sm_utilization, "74.5"),
        ("occupancy", |u| u.occupancy, "96.9"),
        ("L1/TEX throughput", |u| u.l1_throughput, "64.5"),
        ("memory throughput", |u| u.mem_throughput, "64.1"),
        ("DRAM throughput", |u| u.dram_throughput, "17.5"),
        ("L2 throughput", |u| u.l2_throughput, "52.6"),
    ];
    for (name, get, paper) in rows {
        t.row(vec![
            name.into(),
            f1(get(&spar.utilization) * 100.0),
            f1(get(&conv.utilization) * 100.0),
            f1(get(&cudnn.utilization) * 100.0),
            paper.into(),
        ]);
    }
    // Absolute traffic rows: the §4.6 claim "reducing dependence on L2 and
    // minimizing global memory pressure" is about bytes moved, which the
    // percentage view obscures when runtimes differ.
    let per_point = |bytes: u64, s: &sparstencil::exec::RunStats| {
        bytes as f64 / (s.points_per_iter * s.iters as u64) as f64
    };
    t.row(vec![
        "DRAM B/point".into(),
        f1(per_point(spar.counters.dram_bytes(), &spar)),
        f1(per_point(conv.counters.dram_bytes(), &conv)),
        f1(per_point(cudnn.counters.dram_bytes(), &cudnn)),
        "-".into(),
    ]);
    t.row(vec![
        "L2 B/point".into(),
        f1(per_point(spar.counters.global_bytes(), &spar)),
        f1(per_point(conv.counters.global_bytes(), &conv)),
        f1(per_point(cudnn.counters.global_bytes(), &cudnn)),
        "-".into(),
    ]);
    t.print();

    println!("\n  expected shape: SparStencil moves the fewest L2/DRAM bytes per point");
    println!("  (layout-aware access promotes L1/shared reuse, §4.6). Percentage");
    println!("  metrics follow our model's definitions (pipe-busy fractions over");
    println!("  modelled time), which differ from Nsight's counter definitions;");
    println!("  see EXPERIMENTS.md for the mapping.");
}
