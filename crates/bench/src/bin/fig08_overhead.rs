//! Figure 8 — preprocessing overhead across stencils.
//!
//! Shares of total runtime spent in Transformation (TS), Metadata (MD)
//! and Lookup Table (LUT) preprocessing as iteration counts grow. Host
//! times are measured (wall clock) during compilation; kernel time comes
//! from the model. The paper observes: overall overhead is minimal and
//! quickly amortized; 1D5P's LUT share briefly peaks (~30%) then decays;
//! higher-dimensional stencils stay low throughout.

use sparstencil::pipeline::Executor;
use sparstencil::plan::Options;
use sparstencil_bench::{compile_shape_for, f1, table2, Scale, Table};

fn main() {
    let scale = Scale::from_args();
    println!("== Figure 8: preprocessing overhead (% of total runtime) ==\n");
    let iteration_counts = [1usize, 5, 10, 50, 100, 500, 1000];

    for b in table2() {
        let shape = scale.shape(&b);
        let compile_shape = compile_shape_for(&b.kernel, shape);
        let exec =
            Executor::<f32>::new(&b.kernel, compile_shape, &Options::default()).expect("compile");
        let profile = exec.overhead_profile(&iteration_counts);

        println!("-- {} --", b.kernel.name());
        let mut t = Table::new(&["iterations", "TS %", "MD %", "LUT %", "total %"]);
        for p in &profile {
            t.row(vec![
                p.iters.to_string(),
                f1(p.transform_pct),
                f1(p.metadata_pct),
                f1(p.lut_pct),
                f1(p.transform_pct + p.metadata_pct + p.lut_pct),
            ]);
        }
        t.print();
        let first = &profile[0];
        let last = profile.last().unwrap();
        let tot =
            |p: &sparstencil::pipeline::OverheadPoint| p.transform_pct + p.metadata_pct + p.lut_pct;
        println!(
            "   amortization: {:.1}% at 1 iter -> {:.3}% at {} iters\n",
            tot(first),
            tot(last),
            last.iters
        );
    }
}
