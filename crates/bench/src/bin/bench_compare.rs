//! Bench-regression gate: validate the schema of
//! `BENCH_step_throughput.json` files and compare a freshly generated
//! one against the committed baseline, failing the build (exit code 1)
//! on a malformed file, a case missing from the fresh run, or a
//! performance regression beyond the tolerated fraction (default 10%).
//!
//! **Schema gate.** Both files must carry every field the perf
//! trajectory depends on: per-case rows need `iters`,
//! `detected_cores`, `edge_block_fraction`, `setup_seconds`,
//! `stage_seconds`/`mma_seconds`/`scatter_seconds`/`mirror_seconds`
//! (present and non-negative — the full phase split is how gather- and
//! kernel-cost progress is tracked), a `simd` kernel-path tag
//! (`"avx2"` or `"scalar"` — committed numbers must say which kernels
//! produced them), the three throughput numbers, and a `thread_sweep`; batch rows need `sessions`,
//! `batch_cells_per_sec`, `serial_cells_per_sec`, `batch_speedup`,
//! `detected_cores`, and a `batch_thread_sweep`; serving rows need
//! `tenants`, `rounds`, `detected_cores`, `p50_step_ms`,
//! `p99_step_ms` (ordered: p99 ≥ p50 > 0), `churn_ops_per_sec`,
//! `recoveries`, and `evictions`; shard rows need `shards`, `iters`,
//! `detected_cores`, `shard_cells_per_sec`, and an `exchange_fraction`
//! in `[0, 1)`. A silently dropped field or case would otherwise erase
//! part of the trajectory without failing anything. Fields introduced
//! by a schema revision (`scatter_seconds`, `mirror_seconds`, `simd`)
//! are required of the fresh run only: a committed baseline written by
//! an older bench may predate them, and must not fail the gate for a
//! field that did not exist when it was committed.
//!
//! Serving latencies and sharded-grid rates are wall-clock on the
//! measuring machine, so they get NO cross-machine ratio gate — only
//! the schema/sanity gate plus the missing-case check: a serving or
//! shard row disappearing from a fresh run is a regression, its
//! number moving is runner variance (reported informationally).
//!
//! **Performance gates.** The single-core metric is the per-case
//! `speedup` (optimized engine vs `run_naive`, measured in the same
//! process on the same machine): the naive path is the stable
//! denominator that normalizes out hardware differences between the
//! machine that committed the baseline and the CI runner, so the gate
//! trips on code regressions, not on runner variance. Batch rows gate
//! on `batch_speedup` (batched vs serial-loop stepping, same process):
//! the batch driver must never be tolerably slower than the loop it
//! replaces. Absolute `cells_per_sec` drops are reported as warnings
//! only, and multi-lane sweep numbers are explicitly discounted when
//! `detected_cores` is 1.
//!
//! **Thread-sweep sanity rule.** The rule applies *only* when the row
//! reports `detected_cores > 1`: every fresh multi-lane rate with
//! `lanes ≤ detected_cores` must stay within the tolerance of the same
//! row's 1-lane rate. Parallel stepping need not beat one lane on a
//! loaded runner, but on hardware that can actually run the lanes it
//! must never lose badly to the serial path. On a single-core runner
//! the rule is skipped entirely — extra lanes there measure scheduling
//! overhead only (the sweep is recorded for the trajectory, not
//! gated), and applying the expectation would fail every run.
//!
//! **Zoo mode (`--zoo`).** With the `--zoo` flag the two files are
//! `BENCH_zoo.json` files (written by the `bench_zoo` bin: one row per
//! zoo kernel). The schema gate requires of *every* row the tuner
//! decision (`default_layout`/`tuned_layout` as `RxC`,
//! `shared_stage`/`prefetch`/`retuned` booleans, both model costs),
//! the three rates, `speedup`, `tuned_vs_default`, the phase split,
//! and the `simd` tag — and the fresh row count may not shrink (a
//! kernel disappearing from the zoo sweep is a regression). Two ratio
//! gates run on top: `tuned_vs_default` is same-process and
//! machine-invariant, so **every** fresh row must keep it above
//! `1 − tolerance` — this is the tuner's never-slower contract,
//! checked in CI on real hardware; and the pinned representative
//! subset ([`ZOO_REPRESENTATIVES`], the same kernels the
//! zoo-equivalence CI leg verifies) additionally gates
//! `speedup`-vs-naive against the baseline, like the main bench's
//! per-case gate. The remaining 70+ rows' speedups are trajectory
//! data, not gates — at zoo problem sizes their run-to-run noise
//! exceeds any tolerance worth alarming on.
//!
//! The parser is deliberately a line scanner over the fixed format the
//! `bench` bin emits (one result object per line) rather than a JSON
//! library — the workspace vendors only API-subset shims, and the
//! format is owned by this crate.
//!
//! Usage:
//! `cargo run --release -p sparstencil-bench --bin bench_compare -- \
//!      <baseline.json> <fresh.json> [--tolerance 0.10] [--zoo]`

use std::process::ExitCode;

/// Extract the string value of `"key": "…"` from a line, if present.
fn string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract the numeric value of `"key": <number>` from a line, if
/// present.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract the boolean value of `"key": true|false` from a line, if
/// present.
fn bool_field(line: &str, key: &str) -> Option<bool> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Parse a main row's `thread_sweep` array into `(lanes,
/// cells_per_sec)` pairs. Absent or malformed arrays parse to empty —
/// presence is the schema gate's job, not this parser's.
fn thread_sweep(line: &str) -> Vec<(f64, f64)> {
    let Some(start) = line.find("\"thread_sweep\": [") else {
        return Vec::new();
    };
    let rest = &line[start..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    rest[..end]
        .split('{')
        .skip(1)
        .filter_map(|entry| {
            Some((
                number_field(entry, "lanes")?,
                number_field(entry, "cells_per_sec")?,
            ))
        })
        .collect()
}

/// One per-case row of the main `results` array (raw fields, validated
/// by [`validate`]).
struct Row {
    case: String,
    line: String,
    speedup: f64,
    cells_per_sec: f64,
    detected_cores: Option<f64>,
}

/// One row of the `batch_results` array.
struct BatchRow {
    case: String,
    line: String,
    batch_speedup: f64,
    batch_cells_per_sec: f64,
}

/// One row of the `shard_results` array (sharded-grid execution over
/// the halo-exchange protocol).
struct ShardRow {
    case: String,
    line: String,
    shard_cells_per_sec: f64,
    exchange_fraction: f64,
}

/// One row of the `serving_results` array.
struct ServeRow {
    case: String,
    line: String,
    p50_step_ms: f64,
    p99_step_ms: f64,
    churn_ops_per_sec: f64,
}

struct BenchFile {
    path: String,
    rows: Vec<Row>,
    batch: Vec<BatchRow>,
    serving: Vec<ServeRow>,
    shard: Vec<ShardRow>,
}

/// Parse per-case rows from a bench JSON file. A line with
/// `optimized_cells_per_sec` is a main row; one with
/// `batch_cells_per_sec` is a batch row; one with `p99_step_ms` is a
/// serving row; one with `shard_cells_per_sec` is a shard row.
///
/// A missing, unreadable, or truncated file is an `Err` with a
/// human-readable diagnostic (including how to regenerate the file) —
/// never a panic with a backtrace: this gate runs in CI and locally
/// against artifacts people routinely move around, and "you forgot to
/// run bench" must read as exactly that.
fn parse(path: &str) -> Result<BenchFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read bench file {path}: {e}\n  regenerate it with: \
             cargo run --release -p sparstencil-bench --bin bench"
        )
    })?;
    if text.trim().is_empty() {
        return Err(format!(
            "bench file {path} is empty — the bench run was interrupted before \
             writing results; regenerate it with: \
             cargo run --release -p sparstencil-bench --bin bench"
        ));
    }
    // The writer emits the closing object brace last; a file cut off
    // mid-write (full disk, killed run, partial copy) loses it.
    if !text.trim_end().ends_with('}') {
        return Err(format!(
            "bench file {path} is truncated (no closing brace) — likely an \
             interrupted bench run or partial copy; regenerate it with: \
             cargo run --release -p sparstencil-bench --bin bench"
        ));
    }
    let mut rows = Vec::new();
    let mut batch = Vec::new();
    let mut serving = Vec::new();
    let mut shard = Vec::new();
    for line in text.lines() {
        let Some(case) = string_field(line, "case") else {
            continue;
        };
        if line.contains("\"optimized_cells_per_sec\"") {
            rows.push(Row {
                case,
                line: line.to_string(),
                speedup: number_field(line, "speedup").unwrap_or(f64::NAN),
                cells_per_sec: number_field(line, "optimized_cells_per_sec").unwrap_or(f64::NAN),
                detected_cores: number_field(line, "detected_cores"),
            });
        } else if line.contains("\"batch_cells_per_sec\"") {
            batch.push(BatchRow {
                case,
                line: line.to_string(),
                batch_speedup: number_field(line, "batch_speedup").unwrap_or(f64::NAN),
                batch_cells_per_sec: number_field(line, "batch_cells_per_sec").unwrap_or(f64::NAN),
            });
        } else if line.contains("\"p99_step_ms\"") {
            serving.push(ServeRow {
                case,
                line: line.to_string(),
                p50_step_ms: number_field(line, "p50_step_ms").unwrap_or(f64::NAN),
                p99_step_ms: number_field(line, "p99_step_ms").unwrap_or(f64::NAN),
                churn_ops_per_sec: number_field(line, "churn_ops_per_sec").unwrap_or(f64::NAN),
            });
        } else if line.contains("\"shard_cells_per_sec\"") {
            shard.push(ShardRow {
                case,
                line: line.to_string(),
                shard_cells_per_sec: number_field(line, "shard_cells_per_sec").unwrap_or(f64::NAN),
                exchange_fraction: number_field(line, "exchange_fraction").unwrap_or(f64::NAN),
            });
        }
    }
    Ok(BenchFile {
        path: path.to_string(),
        rows,
        batch,
        serving,
        shard,
    })
}

/// Schema validation: every required field present and sane on every
/// row of both sections. Returns human-readable violations.
///
/// `strict` is set for the fresh run only: fields introduced by a
/// schema revision (`scatter_seconds`, `mirror_seconds`, `simd`) are
/// required of the file the current bench just wrote, but a committed
/// baseline from an older bench may predate them — it is only checked
/// for the fields it has (which must still be sane when present).
fn validate(file: &BenchFile, strict: bool) -> Vec<String> {
    let mut errs = Vec::new();
    let err = |errs: &mut Vec<String>, case: &str, msg: String| {
        errs.push(format!("{}: case {case}: {msg}", file.path));
    };

    if file.rows.is_empty() {
        errs.push(format!("{}: no parsable per-case results", file.path));
    }
    if file.batch.is_empty() {
        errs.push(format!("{}: no parsable batch_results rows", file.path));
    }
    if file.serving.is_empty() {
        errs.push(format!("{}: no parsable serving_results rows", file.path));
    }
    if file.shard.is_empty() {
        errs.push(format!("{}: no parsable shard_results rows", file.path));
    }

    // (field, minimum allowed value): the phase-split seconds may
    // legitimately be ~0 on degenerate cases but never negative;
    // throughputs and counts must be positive.
    let required_main: &[(&str, f64)] = &[
        ("iters", 1.0),
        ("detected_cores", 1.0),
        ("edge_block_fraction", 0.0),
        ("setup_seconds", 0.0),
        ("stage_seconds", 0.0),
        ("mma_seconds", 0.0),
        ("optimized_cells_per_sec", f64::MIN_POSITIVE),
        ("naive_cells_per_sec", f64::MIN_POSITIVE),
        ("speedup", f64::MIN_POSITIVE),
    ];
    // Fields newer than some committed baselines: required only of the
    // fresh run, sanity-checked when an older file happens to have them.
    let revision_main: &[(&str, f64)] = &[("scatter_seconds", 0.0), ("mirror_seconds", 0.0)];
    for row in &file.rows {
        for &(key, min) in required_main {
            match number_field(&row.line, key) {
                None => err(&mut errs, &row.case, format!("missing field {key}")),
                Some(v) if !v.is_finite() || v < min => {
                    err(&mut errs, &row.case, format!("field {key} = {v} (< {min})"));
                }
                Some(_) => {}
            }
        }
        for &(key, min) in revision_main {
            match number_field(&row.line, key) {
                None if strict => err(&mut errs, &row.case, format!("missing field {key}")),
                Some(v) if !v.is_finite() || v < min => {
                    err(&mut errs, &row.case, format!("field {key} = {v} (< {min})"));
                }
                _ => {}
            }
        }
        // Kernel-path tag: the number is meaningless without knowing
        // which kernels produced it, so an absent or unknown tag is a
        // schema error, not a warning.
        match string_field(&row.line, "simd").as_deref() {
            Some("avx2") | Some("scalar") => {}
            Some(other) => err(
                &mut errs,
                &row.case,
                format!("field simd = \"{other}\" (expected \"avx2\" or \"scalar\")"),
            ),
            None if strict => err(&mut errs, &row.case, "missing field simd".into()),
            None => {}
        }
        if !row.line.contains("\"thread_sweep\"") {
            err(&mut errs, &row.case, "missing field thread_sweep".into());
        }
    }

    let required_batch: &[(&str, f64)] = &[
        ("sessions", 1.0),
        ("iters", 1.0),
        ("detected_cores", 1.0),
        ("batch_cells_per_sec", f64::MIN_POSITIVE),
        ("serial_cells_per_sec", f64::MIN_POSITIVE),
        ("batch_speedup", f64::MIN_POSITIVE),
    ];
    for row in &file.batch {
        for &(key, min) in required_batch {
            match number_field(&row.line, key) {
                None => err(&mut errs, &row.case, format!("missing field {key}")),
                Some(v) if !v.is_finite() || v < min => {
                    err(&mut errs, &row.case, format!("field {key} = {v} (< {min})"));
                }
                Some(_) => {}
            }
        }
        if !row.line.contains("\"batch_thread_sweep\"") {
            err(
                &mut errs,
                &row.case,
                "missing field batch_thread_sweep".into(),
            );
        }
    }

    // Serving rows: latency percentiles must exist, be positive, and be
    // ordered; churn throughput must be positive; the fault-activity
    // counters must exist (zero is fine — faults are optional) so a run
    // that silently stopped exercising recovery is visible.
    let required_serving: &[(&str, f64)] = &[
        ("tenants", 1.0),
        ("rounds", 1.0),
        ("detected_cores", 1.0),
        ("p50_step_ms", f64::MIN_POSITIVE),
        ("p99_step_ms", f64::MIN_POSITIVE),
        ("churn_ops_per_sec", f64::MIN_POSITIVE),
        ("recoveries", 0.0),
        ("evictions", 0.0),
    ];
    for row in &file.serving {
        for &(key, min) in required_serving {
            match number_field(&row.line, key) {
                None => err(&mut errs, &row.case, format!("missing field {key}")),
                Some(v) if !v.is_finite() || v < min => {
                    err(&mut errs, &row.case, format!("field {key} = {v} (< {min})"));
                }
                Some(_) => {}
            }
        }
        if row.p99_step_ms.is_finite()
            && row.p50_step_ms.is_finite()
            && row.p99_step_ms < row.p50_step_ms
        {
            err(
                &mut errs,
                &row.case,
                format!(
                    "p99_step_ms {} < p50_step_ms {} (percentiles out of order)",
                    row.p99_step_ms, row.p50_step_ms
                ),
            );
        }
    }

    // Shard rows: throughput must be positive; the exchange fraction is
    // a plan-time share of the domain, so it must sit in [0, 1) — 0 is
    // the legitimate single-shard row, 1+ would mean the schedule
    // copies the whole grid and the decomposition is broken.
    let required_shard: &[(&str, f64)] = &[
        ("shards", 1.0),
        ("iters", 1.0),
        ("detected_cores", 1.0),
        ("shard_cells_per_sec", f64::MIN_POSITIVE),
        ("exchange_fraction", 0.0),
    ];
    for row in &file.shard {
        for &(key, min) in required_shard {
            match number_field(&row.line, key) {
                None => err(&mut errs, &row.case, format!("missing field {key}")),
                Some(v) if !v.is_finite() || v < min => {
                    err(&mut errs, &row.case, format!("field {key} = {v} (< {min})"));
                }
                Some(_) => {}
            }
        }
        if row.exchange_fraction.is_finite() && row.exchange_fraction >= 1.0 {
            err(
                &mut errs,
                &row.case,
                format!(
                    "exchange_fraction {} >= 1 (halo schedule copies the whole domain)",
                    row.exchange_fraction
                ),
            );
        }
    }
    errs
}

/// The pinned zoo subset whose speedup-vs-naive is ratio-gated against
/// the baseline — the same kernels the zoo-equivalence CI leg verifies
/// bit-identical to `run_naive`: a radius-4 star, a dense diagonal
/// box, an anisotropic pattern, a 3D flow kernel, a long-range 1D
/// line, and an LBM stream. Pinned by name so a zoo rename cannot
/// silently drop a kernel out of the gate.
const ZOO_REPRESENTATIVES: &[&str] = &[
    "acoustic-2d-fd8",
    "motion-blur-5x5",
    "phase-aniso-2d-9p",
    "boundary-layer-3d-7p",
    "wave-1d-fd8",
    "lbm-d2q9",
];

/// One per-kernel row of a `BENCH_zoo.json` `results` array.
struct ZooRow {
    case: String,
    line: String,
    speedup: f64,
    tuned_vs_default: f64,
    tuned_cells_per_sec: f64,
}

/// Parse a `BENCH_zoo.json` file (same read/truncation diagnostics as
/// [`parse`]); a zoo row is a line with `tuned_cells_per_sec`.
fn parse_zoo(path: &str) -> Result<Vec<ZooRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read zoo bench file {path}: {e}\n  regenerate it with: \
             cargo run --release -p sparstencil-bench --bin bench_zoo"
        )
    })?;
    if text.trim().is_empty() || !text.trim_end().ends_with('}') {
        return Err(format!(
            "zoo bench file {path} is empty or truncated — likely an interrupted \
             run or partial copy; regenerate it with: \
             cargo run --release -p sparstencil-bench --bin bench_zoo"
        ));
    }
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(case) = string_field(line, "case") else {
            continue;
        };
        if line.contains("\"tuned_cells_per_sec\"") {
            rows.push(ZooRow {
                case,
                line: line.to_string(),
                speedup: number_field(line, "speedup").unwrap_or(f64::NAN),
                tuned_vs_default: number_field(line, "tuned_vs_default").unwrap_or(f64::NAN),
                tuned_cells_per_sec: number_field(line, "tuned_cells_per_sec").unwrap_or(f64::NAN),
            });
        }
    }
    Ok(rows)
}

/// Schema validation for zoo rows: every field `bench_zoo` writes must
/// be present and sane on every row — the zoo file exists to make the
/// tuner's decisions auditable over time, and a silently dropped
/// column erases that audit trail.
fn validate_zoo(path: &str, rows: &[ZooRow]) -> Vec<String> {
    let mut errs = Vec::new();
    let err = |errs: &mut Vec<String>, case: &str, msg: String| {
        errs.push(format!("{path}: case {case}: {msg}"));
    };
    if rows.is_empty() {
        errs.push(format!("{path}: no parsable zoo rows"));
    }
    let required: &[(&str, f64)] = &[
        ("cells", 1.0),
        ("iters", 1.0),
        ("detected_cores", 1.0),
        ("model_cost", f64::MIN_POSITIVE),
        ("model_default_cost", f64::MIN_POSITIVE),
        ("tuned_cells_per_sec", f64::MIN_POSITIVE),
        ("default_cells_per_sec", f64::MIN_POSITIVE),
        ("naive_cells_per_sec", f64::MIN_POSITIVE),
        ("speedup", f64::MIN_POSITIVE),
        ("tuned_vs_default", f64::MIN_POSITIVE),
        ("stage_seconds", 0.0),
        ("mma_seconds", 0.0),
        ("scatter_seconds", 0.0),
        ("mirror_seconds", 0.0),
    ];
    let layout_ok = |s: &str| {
        let mut it = s.split('x');
        matches!(
            (
                it.next().and_then(|v| v.parse::<usize>().ok()),
                it.next().and_then(|v| v.parse::<usize>().ok()),
                it.next(),
            ),
            (Some(r1), Some(r2), None) if r1 >= 1 && r2 >= 1
        )
    };
    for row in rows {
        for &(key, min) in required {
            match number_field(&row.line, key) {
                None => err(&mut errs, &row.case, format!("missing field {key}")),
                Some(v) if !v.is_finite() || v < min => {
                    err(&mut errs, &row.case, format!("field {key} = {v} (< {min})"));
                }
                Some(_) => {}
            }
        }
        for key in ["domain"] {
            if string_field(&row.line, key).is_none_or(|v| v.is_empty()) {
                err(&mut errs, &row.case, format!("missing field {key}"));
            }
        }
        for key in ["default_layout", "tuned_layout"] {
            match string_field(&row.line, key) {
                Some(v) if layout_ok(&v) => {}
                Some(v) => err(
                    &mut errs,
                    &row.case,
                    format!("field {key} = \"{v}\" (expected \"RxC\")"),
                ),
                None => err(&mut errs, &row.case, format!("missing field {key}")),
            }
        }
        for key in ["shared_stage", "prefetch", "retuned"] {
            if bool_field(&row.line, key).is_none() {
                err(&mut errs, &row.case, format!("missing field {key}"));
            }
        }
        match string_field(&row.line, "simd").as_deref() {
            Some("avx2") | Some("scalar") => {}
            Some(other) => err(
                &mut errs,
                &row.case,
                format!("field simd = \"{other}\" (expected \"avx2\" or \"scalar\")"),
            ),
            None => err(&mut errs, &row.case, "missing field simd".into()),
        }
    }
    errs
}

/// The `--zoo` gate: schema on both files, no shrinking row set, the
/// tuner's never-slower contract on every fresh row, and a
/// speedup-vs-naive ratio gate on the pinned representative subset.
fn zoo_gate(baseline_path: &str, fresh_path: &str, tolerance: f64) -> ExitCode {
    let (baseline, fresh) = match (parse_zoo(baseline_path), parse_zoo(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for e in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut schema_errs = validate_zoo(baseline_path, &baseline);
    schema_errs.extend(validate_zoo(fresh_path, &fresh));
    for name in ZOO_REPRESENTATIVES {
        for (path, rows) in [(baseline_path, &baseline), (fresh_path, &fresh)] {
            if !rows.iter().any(|r| r.case == *name) {
                schema_errs.push(format!(
                    "{path}: pinned representative kernel {name} has no zoo row"
                ));
            }
        }
    }
    if !schema_errs.is_empty() {
        for e in &schema_errs {
            eprintln!("SCHEMA: {e}");
        }
        eprintln!(
            "zoo bench schema validation failed ({} errors)",
            schema_errs.len()
        );
        return ExitCode::FAILURE;
    }

    let mut failed = false;

    // No kernel may vanish from the sweep.
    for old in &baseline {
        if !fresh.iter().any(|r| r.case == old.case) {
            eprintln!(
                "REGRESSION: zoo case {} missing from fresh results",
                old.case
            );
            failed = true;
        }
    }

    // Never-slower contract: tuned vs default is a same-process ratio,
    // gated on every fresh row.
    let mut worst: Option<&ZooRow> = None;
    for row in &fresh {
        if row.tuned_vs_default < 1.0 - tolerance {
            eprintln!(
                "REGRESSION: zoo case {} tuned_vs_default {:.3} — the tuner's choice \
                 is more than {:.0}% slower than the fixed default",
                row.case,
                row.tuned_vs_default,
                tolerance * 100.0
            );
            failed = true;
        }
        if worst.is_none_or(|w| row.tuned_vs_default < w.tuned_vs_default) {
            worst = Some(row);
        }
    }
    if let Some(w) = worst {
        println!(
            "note       worst tuned_vs_default {:.3} ({}) across {} fresh zoo rows",
            w.tuned_vs_default,
            w.case,
            fresh.len()
        );
    }

    // Representative subset: speedup-vs-naive ratio gate, like the main
    // bench's per-case gate.
    for name in ZOO_REPRESENTATIVES {
        let (old, new) = (
            baseline
                .iter()
                .find(|r| r.case == *name)
                .expect("pinned above"),
            fresh
                .iter()
                .find(|r| r.case == *name)
                .expect("pinned above"),
        );
        let ratio = new.speedup / old.speedup;
        let verdict = if ratio < 1.0 - tolerance {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{verdict:<10} {:<26} zoo speedup-vs-naive {:.2}x -> {:.2}x (ratio {ratio:.3})  \
             abs {:.0} -> {:.0} cells/s",
            name, old.speedup, new.speedup, old.tuned_cells_per_sec, new.tuned_cells_per_sec
        );
    }

    if failed {
        eprintln!(
            "zoo bench gate failed: a kernel went missing, a tuner choice fell more \
             than {:.0}% behind the fixed default, or a representative kernel's \
             speedup-vs-naive regressed by more than {:.0}%",
            tolerance * 100.0,
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let zoo_mode = args.iter().any(|a| a == "--zoo");
    let tolerance = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.10f64);
    let mut positional = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--zoo" => {}
            "--tolerance" => i += 1,
            _ => positional.push(args[i].clone()),
        }
        i += 1;
    }
    if positional.len() != 2 {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json> [--tolerance 0.10] [--zoo]");
        return ExitCode::FAILURE;
    }
    if zoo_mode {
        return zoo_gate(&positional[0], &positional[1], tolerance);
    }

    let (baseline, fresh) = match (parse(&positional[0]), parse(&positional[1])) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for e in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    // ---- Schema gate: both files, every row, every required field. ----
    let mut schema_errs = validate(&baseline, false);
    schema_errs.extend(validate(&fresh, true));
    if !schema_errs.is_empty() {
        for e in &schema_errs {
            eprintln!("SCHEMA: {e}");
        }
        eprintln!(
            "bench JSON schema validation failed ({} errors)",
            schema_errs.len()
        );
        return ExitCode::FAILURE;
    }

    let single_core = fresh
        .rows
        .iter()
        .chain(baseline.rows.iter())
        .filter_map(|r| r.detected_cores)
        .any(|c| c <= 1.0);
    if single_core {
        println!(
            "note       a measurement ran on detected_cores = 1: multi-lane \
             thread_sweep rows measure scheduling overhead only — discounted"
        );
    }

    let mut failed = false;

    // ---- Single-core gate: per-case speedup vs naive. ----
    for old in &baseline.rows {
        let Some(new) = fresh.rows.iter().find(|r| r.case == old.case) else {
            eprintln!("REGRESSION: case {} missing from fresh results", old.case);
            failed = true;
            continue;
        };
        let ratio = new.speedup / old.speedup;
        let abs_ratio = new.cells_per_sec / old.cells_per_sec;
        let verdict = if ratio < 1.0 - tolerance {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{verdict:<10} {:<26} speedup-vs-naive {:.2}x -> {:.2}x (ratio {ratio:.3})  \
             abs {:.0} -> {:.0} cells/s (ratio {abs_ratio:.3})",
            old.case, old.speedup, new.speedup, old.cells_per_sec, new.cells_per_sec
        );
        if abs_ratio < 1.0 - tolerance && verdict == "ok" {
            println!(
                "warning    {:<26} absolute throughput dropped {:.0}% — likely runner \
                 hardware variance (speedup-vs-naive held)",
                old.case,
                (1.0 - abs_ratio) * 100.0
            );
        }
    }

    // ---- Thread-sweep sanity gate (multi-core runners only; see the
    // module docs). Gated on the fresh file: the baseline's sweep was
    // vetted when it was committed, and re-gating it would block fixing
    // a bad baseline. ----
    for row in &fresh.rows {
        let cores = row.detected_cores.unwrap_or(1.0);
        if cores <= 1.0 {
            continue;
        }
        let sweep = thread_sweep(&row.line);
        let Some(&(_, base_rate)) = sweep.iter().find(|&&(lanes, _)| lanes == 1.0) else {
            continue;
        };
        for &(lanes, rate) in &sweep {
            if lanes > 1.0 && lanes <= cores && rate < (1.0 - tolerance) * base_rate {
                eprintln!(
                    "REGRESSION: case {} thread_sweep: {lanes:.0} lanes at {rate:.0} cells/s \
                     fell more than {:.0}% below the 1-lane rate {base_rate:.0} on a \
                     {cores:.0}-core runner",
                    row.case,
                    tolerance * 100.0
                );
                failed = true;
            }
        }
    }

    // ---- Batch gate: batched stepping must not lose to the serial
    // loop it replaces (same-process ratio, machine-invariant), and no
    // batch case may vanish. ----
    for old in &baseline.batch {
        let Some(new) = fresh.batch.iter().find(|r| r.case == old.case) else {
            eprintln!(
                "REGRESSION: batch case {} missing from fresh results",
                old.case
            );
            failed = true;
            continue;
        };
        let verdict = if new.batch_speedup < 1.0 - tolerance {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{verdict:<10} {:<26} batch-vs-serial {:.3} -> {:.3}  \
             abs {:.0} -> {:.0} cells/s",
            old.case,
            old.batch_speedup,
            new.batch_speedup,
            old.batch_cells_per_sec,
            new.batch_cells_per_sec
        );
    }

    // ---- Serving gate: every baseline serving row must still exist in
    // the fresh run (schema/sanity was enforced above); the latency and
    // churn numbers themselves are machine wall-clock, so the movement
    // is printed informationally, never gated. ----
    for old in &baseline.serving {
        let Some(new) = fresh.serving.iter().find(|r| r.case == old.case) else {
            eprintln!(
                "REGRESSION: serving case {} missing from fresh results",
                old.case
            );
            failed = true;
            continue;
        };
        println!(
            "{:<10} {:<26} step p50 {:.3} -> {:.3} ms  p99 {:.3} -> {:.3} ms  \
             churn {:.0} -> {:.0} ops/s (wall-clock, not gated)",
            "ok",
            old.case,
            old.p50_step_ms,
            new.p50_step_ms,
            old.p99_step_ms,
            new.p99_step_ms,
            old.churn_ops_per_sec,
            new.churn_ops_per_sec
        );
    }

    // ---- Shard gate: every baseline shard row must still exist in the
    // fresh run; the rates are machine wall-clock, so movement is
    // printed informationally, never gated. ----
    for old in &baseline.shard {
        let Some(new) = fresh.shard.iter().find(|r| r.case == old.case) else {
            eprintln!(
                "REGRESSION: shard case {} missing from fresh results",
                old.case
            );
            failed = true;
            continue;
        };
        println!(
            "{:<10} {:<26} sharded {:.0} -> {:.0} cells/s  exchange_fraction {:.4} -> {:.4} \
             (wall-clock, not gated)",
            "ok",
            old.case,
            old.shard_cells_per_sec,
            new.shard_cells_per_sec,
            old.exchange_fraction,
            new.exchange_fraction
        );
    }

    if failed {
        eprintln!(
            "bench gate failed: a case went missing (incl. batch, serving, and shard rows), \
             single-core speedup-vs-naive regressed by more than {:.0}%, or batched \
             stepping fell more than {:.0}% behind the serial loop",
            tolerance * 100.0,
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
