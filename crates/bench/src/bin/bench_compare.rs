//! Bench-regression gate: compare a freshly generated
//! `BENCH_step_throughput.json` against a committed baseline and fail
//! (exit code 1) when single-core performance regressed by more than
//! the tolerated fraction (default 10%).
//!
//! The gating metric is the per-case `speedup` (optimized engine vs
//! `run_naive`, measured in the same process on the same machine):
//! the naive path is the stable denominator that normalizes out
//! hardware differences between the machine that committed the
//! baseline and the CI runner, so the gate trips on code regressions,
//! not on runner variance. Absolute `optimized_cells_per_sec` drops
//! are reported as warnings only.
//!
//! The parser is deliberately a line scanner over the fixed format the
//! `bench` bin emits (one result object per line) rather than a JSON
//! library — the workspace vendors only API-subset shims, and the
//! format is owned by this crate.
//!
//! Usage:
//! `cargo run --release -p sparstencil-bench --bin bench_compare -- \
//!      <baseline.json> <fresh.json> [--tolerance 0.10]`

use std::process::ExitCode;

/// Extract the string value of `"key": "…"` from a line, if present.
fn string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract the numeric value of `"key": <number>` from a line, if
/// present.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct Row {
    case: String,
    speedup: f64,
    cells_per_sec: f64,
}

/// Parse per-case rows from a bench JSON file.
fn parse(path: &str) -> Vec<Row> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    text.lines()
        .filter_map(|line| {
            Some(Row {
                case: string_field(line, "case")?,
                speedup: number_field(line, "speedup")?,
                cells_per_sec: number_field(line, "optimized_cells_per_sec")?,
            })
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json> [--tolerance 0.10]");
        return ExitCode::FAILURE;
    }
    let tolerance = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.10f64);

    let baseline = parse(&args[1]);
    let fresh = parse(&args[2]);
    if baseline.is_empty() {
        eprintln!("no parsable results in baseline {}", args[1]);
        return ExitCode::FAILURE;
    }
    if fresh.is_empty() {
        eprintln!("no parsable results in fresh run {}", args[2]);
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for old in &baseline {
        let Some(new) = fresh.iter().find(|r| r.case == old.case) else {
            eprintln!("REGRESSION: case {} missing from fresh results", old.case);
            failed = true;
            continue;
        };
        let ratio = new.speedup / old.speedup;
        let abs_ratio = new.cells_per_sec / old.cells_per_sec;
        let verdict = if ratio < 1.0 - tolerance {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{verdict:<10} {:<24} speedup-vs-naive {:.2}x -> {:.2}x (ratio {ratio:.3})  \
             abs {:.0} -> {:.0} cells/s (ratio {abs_ratio:.3})",
            old.case, old.speedup, new.speedup, old.cells_per_sec, new.cells_per_sec
        );
        if abs_ratio < 1.0 - tolerance && verdict == "ok" {
            println!(
                "warning    {:<24} absolute throughput dropped {:.0}% — likely runner \
                 hardware variance (speedup-vs-naive held)",
                old.case,
                (1.0 - abs_ratio) * 100.0
            );
        }
    }
    if failed {
        eprintln!(
            "single-core throughput (speedup vs naive) regressed by more than {:.0}% on at \
             least one case",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
