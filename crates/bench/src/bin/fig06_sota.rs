//! Figure 6 — SparStencil vs state-of-the-art, GStencil/s at FP16.
//!
//! Columns follow §4.3: cuDNN, AMOS, Brick, DRStencil, TCStencil,
//! ConvStencil and SparStencil over the eight Table-2 kernels.
//! Per §4.1, ConvStencil and SparStencil apply 3× temporal fusion on
//! small kernels (GStencil/s counts all fused updates).
//!
//! `--full` evaluates the model at the paper's problem sizes; the default
//! quick mode uses reduced grids.

use sparstencil::layout::ExecMode;
use sparstencil::plan::OptFlags;
use sparstencil::prelude::*;
use sparstencil_baselines::all_baselines;
use sparstencil_bench::{f1, sparstencil_stats, table2, Scale, Table};
use sparstencil_tcu::GpuConfig;

fn main() {
    let scale = Scale::from_args();
    let gpu = GpuConfig::a100();
    println!("== Figure 6: state-of-the-art comparison (FP16, GStencil/s, {scale:?} scale) ==\n");

    let baselines = all_baselines();
    let mut headers: Vec<&str> = vec!["kernel", "size"];
    let names: Vec<&'static str> = baselines.iter().map(|b| b.name()).collect();
    headers.extend(names.iter());
    headers.push("SparStencil");
    headers.push("vs best");
    let mut t = Table::new(&headers);

    let mut speedups_vs_conv = Vec::new();
    let mut speedups_vs_cudnn = Vec::new();

    for b in table2() {
        let shape = scale.shape(&b);
        let iters = scale.iters(&b);
        let fusion = if b.fuse_small { 3 } else { 1 };

        let mut cells = vec![
            b.kernel.name().to_string(),
            format!("{}x{}x{}", shape[0], shape[1], shape[2]),
        ];
        let mut best_baseline = 0.0f64;
        let mut conv = 0.0f64;
        let mut cudnn = 0.0f64;
        for base in &baselines {
            // ConvStencil gets the same fusion courtesy as SparStencil.
            let (gst, label_fused) = if base.name() == "ConvStencil" && fusion > 1 {
                let fused = b.kernel.temporal_fusion(fusion);
                let s = base.model(&fused, shape, iters, Precision::Fp16, &gpu);
                (s.map(|s| s.gstencil_per_sec * fusion as f64), true)
            } else {
                let s = base.model(&b.kernel, shape, iters, Precision::Fp16, &gpu);
                (s.map(|s| s.gstencil_per_sec), false)
            };
            let _ = label_fused;
            match gst {
                Some(v) => {
                    best_baseline = best_baseline.max(v);
                    if base.name() == "ConvStencil" {
                        conv = v;
                    }
                    if base.name() == "cuDNN" {
                        cudnn = v;
                    }
                    cells.push(f1(v));
                }
                None => cells.push("-".into()),
            }
        }

        let (stats, ff) = sparstencil_stats(
            &b.kernel,
            shape,
            iters,
            fusion,
            ExecMode::SparseTcu,
            OptFlags::default(),
            Precision::Fp16,
            &gpu,
        );
        let spar = stats.gstencil_per_sec * ff;
        cells.push(f1(spar));
        cells.push(format!("{:.2}x", spar / best_baseline));
        t.row(cells);

        if conv > 0.0 {
            speedups_vs_conv.push(spar / conv);
        }
        if cudnn > 0.0 {
            speedups_vs_cudnn.push(spar / cudnn);
        }
    }

    t.print();
    println!(
        "\n  geomean speedup vs ConvStencil: {:.2}x   (paper: avg 3.1x across Fig. 10, ≤1.39x on 7x7 kernels)",
        sparstencil_bench::geomean(&speedups_vs_conv)
    );
    println!(
        "  geomean speedup vs cuDNN:       {:.2}x   (paper: 2.89x–60.35x)",
        sparstencil_bench::geomean(&speedups_vs_cudnn)
    );
}
