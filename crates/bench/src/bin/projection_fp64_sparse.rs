//! §4.7 future-work projection — FP64 sparse tensor cores.
//!
//! The paper closes its FP64 study with: "Future sparse TCUs with FP64
//! support will further amplify SparStencil's benefits, as our
//! sparse-aware optimization framework is inherently aligned with
//! next-generation hardware trends." This experiment quantifies that
//! claim on a projected Hopper-successor
//! ([`GpuConfig::future_fp64_sparse`]): same SparStencil pipeline, FP64
//! operands, dense vs (hypothetical) 2:4-sparse fragments, on today's
//! A100 and on the projected part.

use sparstencil::layout::ExecMode;
use sparstencil::plan::OptFlags;
use sparstencil::prelude::*;
use sparstencil_bench::{f1, f2, sparstencil_stats, Scale, Table};
use sparstencil_tcu::GpuConfig;

fn main() {
    let scale = Scale::from_args();
    let n = match scale {
        Scale::Quick => 2048,
        Scale::Full => 10240,
    };
    let iters = 100;
    println!("== Projection (§4.7): FP64 sparse tensor cores (GFlops/s) ==\n");

    let a100 = GpuConfig::a100();
    let future = GpuConfig::future_fp64_sparse();
    assert!(!a100.supports_sparse(Precision::Fp64));
    assert!(future.supports_sparse(Precision::Fp64));

    let kernels = [
        StencilKernel::heat2d(),
        StencilKernel::box2d9p(),
        StencilKernel::star2d13p(),
        StencilKernel::box2d49p(),
    ];

    let mut t = Table::new(&[
        "kernel",
        "A100 dense",
        "future dense",
        "future sparse",
        "sparse gain",
        "total gain",
    ]);
    for k in &kernels {
        let e = k.extent()[2];
        let shape = [1, n + e - 1, n + e - 1];
        let run = |mode: ExecMode, gpu: &GpuConfig| {
            sparstencil_stats(
                k,
                shape,
                iters,
                1,
                mode,
                OptFlags::default(),
                Precision::Fp64,
                gpu,
            )
            .0
            .gflops_per_sec
        };
        let a100_dense = run(ExecMode::DenseTcu, &a100);
        let fut_dense = run(ExecMode::DenseTcu, &future);
        let fut_sparse = run(ExecMode::SparseTcu, &future);
        t.row(vec![
            k.name().to_string(),
            f1(a100_dense),
            f1(fut_dense),
            f1(fut_sparse),
            f2(fut_sparse / fut_dense),
            f2(fut_sparse / a100_dense),
        ]);
    }
    t.print();

    println!("\n  `sparse gain` isolates the hypothetical FP64 2:4 capability on the");
    println!("  same projected chip; `total gain` combines it with generational");
    println!("  throughput/bandwidth scaling. A gain > 1 on compute-bound kernels");
    println!("  (large boxes) substantiates the paper's §4.7 claim; memory-bound");
    println!("  kernels (3x3 at FP64) stay bandwidth-limited — sparsity cannot");
    println!("  manufacture DRAM bytes.");
}
