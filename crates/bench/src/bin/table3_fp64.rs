//! Table 3 — FP64 precision on dense tensor cores (GFlops/s).
//!
//! Sparse TCUs lack FP64 support (§4.7), so SparStencil falls back to its
//! dense-TCU path — still ahead of the baselines thanks to adaptive
//! layout morphing and search. Paper rows (GFlops/s):
//!
//! | method | Heat-2D | Box-2D9P | Star-2D13P | Box-2D49P |
//! |---|---|---|---|---|
//! | AMOS | 10.16 | 10.23 | 10.51 | 10.59 |
//! | cuDNN | 64.33 | 64.57 | 17.05 | 17.15 |
//! | DRStencil | 55.46 | 57.63 | 50.16 | 20.28 |
//! | ConvStencil | 65.83 | 62.76 | 64.37 | 63.93 |
//! | SparStencil | 72.49 | 73.25 | 71.34 | 67.28 |

use sparstencil::layout::ExecMode;
use sparstencil::plan::OptFlags;
use sparstencil::prelude::*;
use sparstencil_baselines::all_baselines;
use sparstencil_bench::{f1, sparstencil_stats, Scale, Table};
use sparstencil_tcu::GpuConfig;

fn main() {
    let scale = Scale::from_args();
    let gpu = GpuConfig::a100();
    let n = match scale {
        Scale::Quick => 2048,
        Scale::Full => 10240,
    };
    let iters = 100;
    println!("== Table 3: FP64 on dense TCUs (GFlops/s) ==\n");

    let kernels = [
        StencilKernel::heat2d(),
        StencilKernel::box2d9p(),
        StencilKernel::star2d13p(),
        StencilKernel::box2d49p(),
    ];

    let mut headers = vec!["method".to_string()];
    headers.extend(kernels.iter().map(|k| k.name().to_string()));
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&hdr_refs);

    for base in all_baselines() {
        let mut cells = vec![base.name().to_string()];
        let mut any = false;
        for k in &kernels {
            let e = k.extent()[2];
            let shape = [1, n + e - 1, n + e - 1];
            match base.model(k, shape, iters, Precision::Fp64, &gpu) {
                Some(s) => {
                    cells.push(f1(s.gflops_per_sec));
                    any = true;
                }
                None => cells.push("-".into()),
            }
        }
        if any {
            t.row(cells);
        }
    }

    let mut cells = vec!["SparStencil".to_string()];
    for k in &kernels {
        let e = k.extent()[2];
        let shape = [1, n + e - 1, n + e - 1];
        let (s, _) = sparstencil_stats(
            k,
            shape,
            iters,
            1,
            ExecMode::DenseTcu,
            OptFlags::default(),
            Precision::Fp64,
            &gpu,
        );
        cells.push(f1(s.gflops_per_sec));
    }
    t.row(cells);
    t.print();

    println!("\n  expected shape: SparStencil ≥ ConvStencil > DRStencil, cuDNN collapses");
    println!("  on 7x7 kernels, AMOS lowest throughout (paper speedups 1.11x–7.13x).");
}
