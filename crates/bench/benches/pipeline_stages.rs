//! Criterion microbenchmarks for the compilation pipeline stages:
//! flattening, crush, conflict-graph matching (Algorithm 1 vs Blossom),
//! 2:4 compression, and full compilation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparstencil::convert::{convert, Strategy};
use sparstencil::crush::{build_a_prime, CrushPlan};
use sparstencil::flatten::flatten_2d;
use sparstencil::grid::Grid;
use sparstencil::plan::{compile, Options};
use sparstencil::stencil::StencilKernel;
use sparstencil_mat::TwoFourMatrix;
use std::hint::black_box;

fn bench_flatten(c: &mut Criterion) {
    let kernel = StencilKernel::box2d9p();
    let grid = Grid::<f64>::smooth_random(2, [1, 66, 66]);
    c.bench_function("flatten/box2d9p/64x64", |b| {
        b.iter(|| flatten_2d(black_box(&kernel), black_box(&grid)))
    });
}

fn bench_crush(c: &mut Criterion) {
    let mut g = c.benchmark_group("crush_a_prime");
    for (r1, r2) in [(4, 4), (8, 8)] {
        for kernel in [StencilKernel::box2d9p(), StencilKernel::box2d49p()] {
            let [_, ey, ex] = kernel.extent();
            let plan = CrushPlan::new(ey, ex, r1, r2);
            let slice = kernel.slice2d(0);
            g.bench_with_input(
                BenchmarkId::new(kernel.name().to_string(), format!("r{r1}x{r2}")),
                &plan,
                |b, plan| b.iter(|| build_a_prime(black_box(&slice), black_box(plan))),
            );
        }
    }
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparsity_conversion");
    for kernel in [StencilKernel::box2d9p(), StencilKernel::box2d49p()] {
        let [_, ey, ex] = kernel.extent();
        let plan = CrushPlan::new(ey, ex, 4, 4);
        let a = build_a_prime(&kernel.slice2d(0), &plan);
        g.bench_with_input(
            BenchmarkId::new("hierarchical", kernel.name().to_string()),
            &a,
            |b, a| b.iter(|| convert(black_box(a), &plan, Strategy::Hierarchical)),
        );
        g.bench_with_input(
            BenchmarkId::new("blossom", kernel.name().to_string()),
            &a,
            |b, a| b.iter(|| convert(black_box(a), &plan, Strategy::Blossom)),
        );
    }
    g.finish();
}

fn bench_compression(c: &mut Criterion) {
    let kernel = StencilKernel::box2d49p();
    let [_, ey, ex] = kernel.extent();
    let plan = CrushPlan::new(ey, ex, 4, 4);
    let a = build_a_prime(&kernel.slice2d(0), &plan);
    let conv = convert(&a, &plan, Strategy::Auto);
    let permuted = conv.perm.apply_to_cols(&a);
    let padded = permuted.pad_to(16, permuted.cols().div_ceil(32) * 32);
    c.bench_function("two_four_compress/box2d49p", |b| {
        b.iter(|| TwoFourMatrix::compress(black_box(&padded)).unwrap())
    });
}

fn bench_full_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_compile");
    g.sample_size(20);
    for kernel in [StencilKernel::box2d9p(), StencilKernel::box2d49p()] {
        let opts = Options::default();
        g.bench_function(kernel.name().to_string(), |b| {
            b.iter(|| compile::<f32>(black_box(&kernel), [1, 262, 262], &opts).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_flatten,
    bench_crush,
    bench_matching,
    bench_compression,
    bench_full_compile
);
criterion_main!(benches);
