//! Criterion microbenchmarks for the TCU simulator's functional hot
//! paths: dense vs sparse fragment MMAs and one full executor step.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sparstencil::exec;
use sparstencil::grid::Grid;
use sparstencil::plan::{compile, Options};
use sparstencil::stencil::StencilKernel;
use sparstencil_mat::{DenseMatrix, TwoFourMatrix};
use sparstencil_tcu::{fragment::dense_fragment_mma, sparse::sparse_fragment_mma, FragmentShape};
use std::hint::black_box;

fn bench_fragment_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("fragment_mma");

    let dense_frag = FragmentShape::dense_fp16();
    let a = DenseMatrix::from_fn(16, 16, |r, cc| ((r * 17 + cc * 3) % 7) as f32 - 3.0);
    let b = DenseMatrix::from_fn(16, 8, |r, cc| ((r * 5 + cc) % 9) as f32 - 4.0);
    g.throughput(Throughput::Elements(dense_frag.executed_flops()));
    g.bench_function("dense_m16n8k16", |bench| {
        let mut cacc = DenseMatrix::zeros(16, 8);
        bench.iter(|| dense_fragment_mma(dense_frag, black_box(&a), black_box(&b), &mut cacc))
    });

    let sparse_frag = FragmentShape::sparse_fp16();
    let a_wide = DenseMatrix::from_fn(16, 32, |r, cc| {
        if cc % 4 < 2 {
            ((r * 13 + cc * 7) % 11) as f32 - 5.0
        } else {
            0.0
        }
    });
    let a24 = TwoFourMatrix::compress(&a_wide).unwrap();
    let b_wide = DenseMatrix::from_fn(32, 8, |r, cc| ((r * 3 + cc * 5) % 7) as f32 - 3.0);
    g.throughput(Throughput::Elements(sparse_frag.logical_flops()));
    g.bench_function("sparse_m16n8k32", |bench| {
        let mut cacc = DenseMatrix::zeros(16, 8);
        bench.iter(|| {
            sparse_fragment_mma(sparse_frag, black_box(&a24), black_box(&b_wide), &mut cacc)
        })
    });
    g.finish();
}

fn bench_executor_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_step");
    g.sample_size(10);
    for kernel in [StencilKernel::box2d9p(), StencilKernel::box2d49p()] {
        let shape = [1, 262, 262];
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let plan = compile::<f32>(&kernel, shape, &opts).unwrap();
        let grid = Grid::<f32>::smooth_random(2, shape);
        let points = grid.valid_points(&kernel) as u64;
        g.throughput(Throughput::Elements(points));
        g.bench_function(kernel.name().to_string(), |bench| {
            bench.iter(|| exec::run(black_box(&plan), black_box(&grid), 1))
        });
    }
    g.finish();
}

/// Optimized engine vs retained naive path on the perf-tracking cases
/// (2D-5pt at 256², 3D-27pt at 128³): the zero-allocation rewrite must
/// hold a ≥2× steady-state advantage on the 3D-27pt case. Each
/// measurement runs several steps so the per-run arena setup amortizes
/// and the numbers reflect steady-state stepping.
fn bench_engine_vs_naive(c: &mut Criterion) {
    const STEPS: usize = 6;
    let mut g = c.benchmark_group("engine_vs_naive");
    g.sample_size(10);
    let cases = [
        ("2d5pt_256", StencilKernel::heat2d(), [1usize, 256, 256]),
        ("3d27pt_128", StencilKernel::box3d27p(), [128, 128, 128]),
    ];
    for (name, kernel, shape) in cases {
        let opts = Options {
            layout: Some((4, 4)),
            ..Options::default()
        };
        let plan = compile::<f32>(&kernel, shape, &opts).unwrap();
        let grid = Grid::<f32>::smooth_random(kernel.dims(), shape);
        let cells = (shape[0] * shape[1] * shape[2]) as u64;
        g.throughput(Throughput::Elements(cells * STEPS as u64));
        g.bench_function(format!("{name}/optimized"), |bench| {
            bench.iter(|| exec::run(black_box(&plan), black_box(&grid), STEPS))
        });
        g.bench_function(format!("{name}/naive"), |bench| {
            bench.iter(|| exec::run_naive(black_box(&plan), black_box(&grid), STEPS))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fragment_ops,
    bench_executor_step,
    bench_engine_vs_naive
);
criterion_main!(benches);
