//! Sharded-execution equivalence suite: a [`ShardedSimulation`] over N
//! halo-exchanging shard-sessions must be **bit-identical** to the
//! unsharded solo session at every step — across the equivalence kernel
//! set (1D/2D/3D, star and box, wide radii, temporal fusion), shard
//! counts, slab axes, and pencil decompositions — plus the typed-error
//! surface of the decomposition and the checkpoint/rollback path.

use std::sync::{Arc, Mutex};

use sparstencil::grid::Grid;
use sparstencil::pipeline::Executor;
use sparstencil::plan::Options;
use sparstencil::session::SessionError;
use sparstencil::stencil::StencilKernel;
use sparstencil_shard::{
    DecomposeError, Decomposition, ShardCheckpoint, ShardError, ShardedSimulation,
};

fn opts_3d() -> Options {
    Options {
        layout: Some((4, 4)),
        ..Options::default()
    }
}

/// Step a solo session and a sharded simulation over the same input in
/// lockstep and assert the full semantic field is bit-identical after
/// **every** step (not just the last).
fn assert_sharded_matches_solo(
    k: &StencilKernel,
    shape: [usize; 3],
    opts: &Options,
    n_shards: usize,
    steps: usize,
) {
    let input = Grid::<f32>::smooth_random(k.dims(), shape);
    let exec = Executor::<f32>::new(k, shape, opts).unwrap();
    let mut solo = exec.session(&input);
    let mut sharded = ShardedSimulation::<f32>::new(k, &input, opts, n_shards);
    assert_eq!(sharded.n_shards(), n_shards);
    assert_eq!(sharded.shape(), shape);
    // Loads quantize inputs identically on both paths, so the pre-step
    // assembly must already match the solo session's view.
    assert_eq!(
        sharded.to_grid(),
        solo.to_grid(),
        "{}: pre-step assembly must match the solo session",
        k.name()
    );
    for step in 1..=steps {
        solo.step();
        sharded.step();
        assert_eq!(sharded.steps(), step);
        assert_eq!(
            sharded.to_grid(),
            solo.to_grid(),
            "{}: sharded ({n_shards} shards) differs from solo at step {step}",
            k.name()
        );
    }
    // Point reads route through owner lookup — spot-check against the
    // assembled grid.
    let grid = sharded.to_grid();
    let view = sharded.field();
    assert_eq!(view.shape(), shape);
    assert_eq!(view.len(), shape[0] * shape[1] * shape[2]);
    for (z, y, x) in [
        (0, 0, 0),
        (shape[0] - 1, shape[1] - 1, shape[2] - 1),
        (shape[0] / 2, shape[1] / 2, shape[2] / 2),
    ] {
        assert_eq!(view.get(z, y, x), grid.get(z, y, x));
        let (s, l, local) = view.locate(z, y, x);
        assert!(s < n_shards);
        assert_eq!(local.get(l[0], l[1], l[2]), grid.get(z, y, x));
    }
}

#[test]
fn sharded_matches_solo_1d() {
    let opts = Options {
        layout: Some((4, 2)),
        ..Options::default()
    };
    // x-slab split: valid x extent 384 divides evenly and each chunk is
    // a multiple of r1 = 4.
    for k in [StencilKernel::heat1d(), StencilKernel::onedim5p()] {
        let e = k.extent();
        let shape = [1, 1, 384 + e[2] - 1];
        for n in [1, 2, 4, 8] {
            assert_sharded_matches_solo(&k, shape, &opts, n, 3);
        }
    }
}

#[test]
fn sharded_matches_solo_2d() {
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    // y-slab split: valid y extent 32 divides evenly at 1/2/4/8 shards
    // and every chunk (32/16/8/4) is a multiple of r2 = 4.
    for k in [
        StencilKernel::heat2d(),
        StencilKernel::box2d9p(),
        StencilKernel::star2d13p(),
        StencilKernel::box2d49p(),
        StencilKernel::star2d(2),
    ] {
        let e = k.extent();
        let shape = [1, 32 + e[1] - 1, 36 + e[2] - 1];
        for n in [2, 4, 8] {
            assert_sharded_matches_solo(&k, shape, &opts, n, 2);
        }
    }
}

#[test]
fn sharded_matches_solo_3d() {
    // z-slab split (no tile-period alignment constraint at all).
    for k in [StencilKernel::heat3d(), StencilKernel::box3d27p()] {
        for n in [2, 4, 8] {
            assert_sharded_matches_solo(&k, [10, 20, 20], &opts_3d(), n, 3);
        }
    }
}

#[test]
fn sharded_matches_solo_explored_layout() {
    // No pinned layout: the sharded constructor must resolve the SAME
    // deterministic layout exploration a solo compile runs on the
    // global shape, so the grids still match bit-for-bit.
    assert_sharded_matches_solo(
        &StencilKernel::box3d27p(),
        [10, 20, 20],
        &Options::default(),
        4,
        3,
    );
}

#[test]
fn sharded_matches_solo_temporal_fusion() {
    let fused = StencilKernel::heat2d().temporal_fusion(3);
    let e = fused.extent();
    let shape = [1, 32 + e[1] - 1, 36 + e[2] - 1];
    assert_sharded_matches_solo(&fused, shape, &opts_3d(), 4, 2);
}

#[test]
fn sharded_pencil_decompositions_match_solo() {
    // 2D y×x pencil: 4 shards as a 2×2 grid of blocks (corner halos
    // exercise the per-cell owner routing).
    let k = StencilKernel::box2d9p();
    let shape = [1, 34, 34];
    let input = Grid::<f32>::smooth_random(2, shape);
    let opts = opts_3d();
    let exec = Executor::<f32>::new(&k, shape, &opts).unwrap();
    let mut solo = exec.session(&input);
    let d = Decomposition::new(&k, shape, [1, 2, 2]).unwrap();
    let mut sharded = ShardedSimulation::try_with_decomposition(&k, &input, &opts, d, 4).unwrap();
    for step in 1..=3 {
        solo.step();
        sharded.step();
        assert_eq!(sharded.to_grid(), solo.to_grid(), "2d pencil step {step}");
    }

    // 3D z×y pencil.
    let k = StencilKernel::box3d27p();
    let shape = [10, 18, 20];
    let input = Grid::<f32>::smooth_random(3, shape);
    let exec = Executor::<f32>::new(&k, shape, &opts).unwrap();
    let mut solo = exec.session(&input);
    let d = Decomposition::new(&k, shape, [2, 2, 1]).unwrap();
    let mut sharded = ShardedSimulation::try_with_decomposition(&k, &input, &opts, d, 4).unwrap();
    for step in 1..=3 {
        solo.step();
        sharded.step();
        assert_eq!(sharded.to_grid(), solo.to_grid(), "3d pencil step {step}");
    }
}

/// The acceptance case: a 3D 27-point grid stepped as 4 and as 8 shards,
/// probed at EVERY step, bit-identical to the unsharded session at each
/// probed step.
#[test]
fn sharded_3d27pt_probed_every_step_matches_solo() {
    let k = StencilKernel::box3d27p();
    let shape = [10, 20, 20];
    let steps = 5;
    let input = Grid::<f32>::smooth_random(3, shape);

    let exec = Executor::<f32>::new(&k, shape, &opts_3d()).unwrap();
    let solo_frames: Arc<Mutex<Vec<Grid<f32>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut solo = exec.session(&input);
    {
        let frames = Arc::clone(&solo_frames);
        solo.probe(1, move |_, field| {
            frames.lock().unwrap().push(field.to_grid());
        });
    }
    solo.step_n(steps);
    let solo_frames = solo_frames.lock().unwrap();
    assert_eq!(solo_frames.len(), steps);

    type Frames = Arc<Mutex<Vec<(usize, Grid<f32>)>>>;
    for n in [4, 8] {
        let frames: Frames = Arc::new(Mutex::new(Vec::new()));
        let mut sharded = ShardedSimulation::<f32>::new(&k, &input, &opts_3d(), n);
        {
            let frames = Arc::clone(&frames);
            sharded.probe(1, move |step, view| {
                frames.lock().unwrap().push((step, view.to_grid()));
            });
        }
        sharded.step_n(steps);
        let frames = frames.lock().unwrap();
        assert_eq!(frames.len(), steps, "{n} shards: probe fired every step");
        for (i, (step, grid)) in frames.iter().enumerate() {
            assert_eq!(*step, i + 1);
            assert_eq!(
                grid, &solo_frames[i],
                "{n} shards: probed field differs from solo at step {step}"
            );
        }
    }
}

#[test]
fn sharded_results_identical_across_lane_counts() {
    let k = StencilKernel::box3d27p();
    let shape = [10, 20, 20];
    let input = Grid::<f32>::smooth_random(3, shape);
    let mut base =
        ShardedSimulation::<f32>::try_with_parallelism(&k, &input, &opts_3d(), 4, 1).unwrap();
    base.step_n(3);
    let want = base.to_grid();
    for lanes in [2, 3, 8] {
        let mut s =
            ShardedSimulation::<f32>::try_with_parallelism(&k, &input, &opts_3d(), 4, lanes)
                .unwrap();
        s.step_n(3);
        assert_eq!(s.to_grid(), want, "lanes={lanes}");
    }
}

#[test]
fn sharded_load_reset_and_exchange_surface() {
    let k = StencilKernel::box3d27p();
    let shape = [10, 20, 20];
    let a = Grid::<f32>::smooth_random(3, shape);
    let b = Grid::<f32>::from_fn_3d(3, shape, |z, y, x| ((z * 7 + y * 3 + x) % 13) as f32 * 0.05);

    let mut sharded = ShardedSimulation::<f32>::new(&k, &a, &opts_3d(), 4);
    assert!(sharded.exchange_cells() > 0, "interior faces must exchange");
    assert!(sharded.batch().halo_exchange().is_some());
    sharded.step_n(2);

    // load: fresh input, steps cleared, same buffers.
    sharded.load(&b).unwrap();
    assert_eq!(sharded.steps(), 0);
    let exec = Executor::<f32>::new(&k, shape, &opts_3d()).unwrap();
    let mut solo = exec.session(&b);
    assert_eq!(sharded.to_grid(), solo.to_grid());
    sharded.step();
    solo.step();
    assert_eq!(sharded.to_grid(), solo.to_grid());
    let after_one = sharded.to_grid();

    // reset: rewinds to the load-time field.
    sharded.reset();
    assert_eq!(sharded.steps(), 0);
    assert_ne!(sharded.to_grid(), after_one);
    sharded.step();
    assert_eq!(sharded.to_grid(), after_one);

    // Shape mismatch is typed.
    let wrong = Grid::<f32>::smooth_random(3, [10, 20, 22]);
    assert!(matches!(
        sharded.load(&wrong),
        Err(ShardError::Session(SessionError::ShapeMismatch { .. }))
    ));

    // Single shard: the degenerate schedule is empty but the facade
    // still works.
    let mut one = ShardedSimulation::<f32>::new(&k, &a, &opts_3d(), 1);
    assert_eq!(one.exchange_cells(), 0);
    one.step();
    let mut solo = exec.session(&a);
    solo.step();
    assert_eq!(one.to_grid(), solo.to_grid());
}

#[test]
fn sharded_checkpoint_restore_roundtrip() {
    let k = StencilKernel::heat3d();
    let shape = [10, 18, 22];
    let input = Grid::<f32>::smooth_random(3, shape);
    let mut sharded = ShardedSimulation::<f32>::new(&k, &input, &opts_3d(), 4);

    sharded.step_n(2);
    let mut ck = ShardCheckpoint::new();
    assert!(!ck.is_filled());
    sharded.checkpoint_into(&mut ck);
    assert!(ck.is_filled());
    assert_eq!(ck.steps(), 2);
    let at_ck = sharded.to_grid();

    sharded.step_n(3);
    let at_5 = sharded.to_grid();
    assert_ne!(at_5, at_ck, "field must evolve between checkpoints");

    sharded.restore(&ck).unwrap();
    assert_eq!(sharded.steps(), 2);
    assert_eq!(sharded.to_grid(), at_ck);
    sharded.step_n(3);
    assert_eq!(
        sharded.to_grid(),
        at_5,
        "replay after restore must be bit-identical"
    );

    // Restoring from an empty checkpoint is a typed error.
    let empty = ShardCheckpoint::<f32>::new();
    assert!(matches!(
        sharded.restore(&empty),
        Err(ShardError::Session(SessionError::EmptyCheckpoint))
    ));
}

#[test]
fn decomposition_errors_are_typed() {
    let k = StencilKernel::box3d27p();
    // No axis of valid extent [8, 18, 18] splits into 7 equal slabs.
    let err = ShardedSimulation::<f32>::try_new(
        &k,
        &Grid::<f32>::smooth_random(3, [10, 20, 20]),
        &opts_3d(),
        7,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        ShardError::Decompose(DecomposeError::Indivisible { .. })
    ));

    // Zero shards.
    assert!(matches!(
        Decomposition::slab(&k, [10, 20, 20], 0),
        Err(DecomposeError::ZeroShards)
    ));

    // Grid smaller than the kernel extent.
    assert!(matches!(
        Decomposition::slab(&k, [2, 20, 20], 2),
        Err(DecomposeError::KernelTooLarge { axis: 0 })
    ));

    // A y-split whose chunk is not a multiple of the tile period r2.
    let k2 = StencilKernel::box2d9p();
    let d = Decomposition::new(&k2, [1, 32 + 2, 36], [1, 2, 1]).unwrap(); // chunk_y = 16
    let opts = Options {
        layout: Some((4, 3)), // 16 % 3 != 0
        ..Options::default()
    };
    let err = ShardedSimulation::try_with_decomposition(
        &k2,
        &Grid::<f32>::smooth_random(2, [1, 34, 36]),
        &opts,
        d,
        2,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        ShardError::Decompose(DecomposeError::MisalignedChunk { axis: 1, .. })
    ));

    // An input whose shape disagrees with the decomposition.
    let d = Decomposition::slab(&k, [10, 20, 20], 2).unwrap();
    let err = ShardedSimulation::try_with_decomposition(
        &k,
        &Grid::<f32>::smooth_random(3, [12, 20, 20]),
        &opts_3d(),
        d,
        2,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        ShardError::Session(SessionError::ShapeMismatch { .. })
    ));
}
