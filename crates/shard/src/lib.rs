//! # Sharded-grid execution — one simulation over N cooperating shards
//!
//! The engine's ghost-zone padding and per-step boundary mirror are a
//! halo protocol with one participant; this crate scales it out. A
//! [`ShardedSimulation`] decomposes one semantic grid into N equal
//! shards ([`Decomposition`] — 1D/2D slab or pencil over the padded-tile
//! geometry), runs them as the members of one
//! [`sparstencil::session::Batch`] over one shared plan, and replaces
//! each interior shard face's mirror with a plan-time **halo-exchange
//! schedule** ([`HaloExchange`], compiled by
//! [`compile_halo_exchange`]): typed [`HaloSegment`] copies that move
//! freshly stepped neighbor data into each shard's halo *inside* the
//! batch's parallel region, allocation-free at steady state. True
//! domain boundaries keep the mirror; only interior faces exchange.
//!
//! The result is **bit-identical** to stepping the unsharded grid in a
//! solo session, at every step, for every kernel, radius, and shard
//! count the decomposition admits (`crates/shard/tests` pins this
//! across the equivalence-kernel zoo): shard layouts are pinned to the
//! layout the unsharded grid would choose, split chunks are validated
//! against the tile period, and the exchange delivers exactly the
//! cells a solo step would have computed in place.
//!
//! Fault containment is **all-or-nothing**: shards exchange data
//! mid-step, so a fault in one shard aborts the whole step — every
//! shard's visible field (victim included) stays at the consistent
//! pre-step state, [`ShardedSimulation::try_step`] returns the typed
//! [`SessionError::Poisoned`], and [`ShardedSimulation::heal`] resumes
//! from right there (or [`ShardedSimulation::restore`] rewinds to a
//! [`ShardCheckpoint`]).
//!
//! ```
//! use sparstencil::prelude::*;
//! use sparstencil_shard::ShardedSimulation;
//!
//! let kernel = StencilKernel::box3d27p();
//! let shape = [10, 20, 20];
//! let input = Grid::<f32>::smooth_random(3, shape);
//!
//! let mut sharded = ShardedSimulation::new(&kernel, &input, &Options::default(), 4);
//! sharded.step_n(3);
//!
//! // Bit-identical to the unsharded session.
//! let exec = Executor::<f32>::new(&kernel, shape, &Options::default()).unwrap();
//! let mut solo = exec.session(&input);
//! solo.step_n(3);
//! assert_eq!(sharded.to_grid(), solo.to_grid());
//! ```

#![warn(missing_docs)]

use sparstencil::grid::{FieldView, Grid};
use sparstencil::layout;
use sparstencil::plan::{compile, CompileError, CompiledStencil, Options};
use sparstencil::session::{Batch, Checkpoint, Health, SessionError};
use sparstencil::stencil::StencilKernel;
use sparstencil_mat::Real;

pub use sparstencil::exec::RunStats;
pub use sparstencil::plan::{
    compile_halo_exchange, DecomposeError, Decomposition, HaloExchange, HaloSegment,
};

/// Errors from building or driving a sharded simulation: the union of
/// the compile, decomposition, and session error domains it spans.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// Compiling the per-shard plan failed.
    Compile(CompileError),
    /// The decomposition or halo-exchange schedule was rejected.
    Decompose(DecomposeError),
    /// The underlying batch reported a session fault.
    Session(SessionError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Compile(e) => write!(f, "shard plan compilation: {e}"),
            ShardError::Decompose(e) => write!(f, "shard decomposition: {e}"),
            ShardError::Session(e) => write!(f, "shard session: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<CompileError> for ShardError {
    fn from(e: CompileError) -> Self {
        ShardError::Compile(e)
    }
}

impl From<DecomposeError> for ShardError {
    fn from(e: DecomposeError) -> Self {
        ShardError::Decompose(e)
    }
}

impl From<SessionError> for ShardError {
    fn from(e: SessionError) -> Self {
        ShardError::Session(e)
    }
}

type ProbeFn<R> = Box<dyn FnMut(usize, &ShardedFieldView<'_, R>) + Send>;

/// A registered observer: fires every `every` steps with the step
/// number and the seamless cross-shard field view.
struct Probe<R: Real> {
    every: usize,
    f: ProbeFn<R>,
}

/// One semantic simulation decomposed into N shard-sessions stepped as
/// a single cooperating batch with plan-time halo exchange. See the
/// [crate docs](self) for the protocol and guarantees.
pub struct ShardedSimulation<R: Real> {
    batch: Batch<'static, R>,
    decomp: Decomposition,
    dims: usize,
    steps: usize,
    exchange_cells: usize,
    probes: Vec<Probe<R>>,
}

impl<R: Real> std::fmt::Debug for ShardedSimulation<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimulation")
            .field("shape", &self.decomp.global_shape)
            .field("parts", &self.decomp.parts)
            .field("steps", &self.steps)
            .field("exchange_cells", &self.exchange_cells)
            .field("probes", &self.probes.len())
            .finish_non_exhaustive()
    }
}

impl<R: Real> ShardedSimulation<R> {
    /// Decompose `input` into `n_shards` slabs for `kernel` and build
    /// the sharded session ([`ShardedSimulation::try_new`] is the
    /// fallible form).
    ///
    /// # Panics
    /// Panics on any [`ShardError`]: an indivisible domain, a chunk
    /// misaligned with the tile period, a failed compile, or a
    /// non-finite input.
    pub fn new(
        kernel: &StencilKernel,
        input: &Grid<R>,
        options: &Options,
        n_shards: usize,
    ) -> Self {
        Self::try_new(kernel, input, options, n_shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ShardedSimulation::new`]: slab decomposition over the
    /// outermost splittable axis, pool-default lane count.
    pub fn try_new(
        kernel: &StencilKernel,
        input: &Grid<R>,
        options: &Options,
        n_shards: usize,
    ) -> Result<Self, ShardError> {
        let decomp = Decomposition::slab(kernel, input.shape(), n_shards)?;
        Self::try_with_decomposition(kernel, input, options, decomp, rayon::current_num_threads())
    }

    /// [`ShardedSimulation::try_new`] with an explicit worker-lane
    /// count; results are identical for every lane count.
    pub fn try_with_parallelism(
        kernel: &StencilKernel,
        input: &Grid<R>,
        options: &Options,
        n_shards: usize,
        lanes: usize,
    ) -> Result<Self, ShardError> {
        let decomp = Decomposition::slab(kernel, input.shape(), n_shards)?;
        Self::try_with_decomposition(kernel, input, options, decomp, lanes)
    }

    /// Build a sharded session over an explicit [`Decomposition`]
    /// (slab or pencil — any `parts` the domain admits).
    ///
    /// Bit-exactness with the unsharded session is engineered here: the
    /// `(r1, r2)` tile layout is resolved against the **global** shape
    /// (`options.layout` if fixed, otherwise the same deterministic
    /// exploration a solo compile would run), then pinned into the
    /// per-shard plan — so every shard assigns each global cell the
    /// same program row, in the same accumulation order, as the
    /// unsharded grid.
    pub fn try_with_decomposition(
        kernel: &StencilKernel,
        input: &Grid<R>,
        options: &Options,
        decomp: Decomposition,
        lanes: usize,
    ) -> Result<Self, ShardError> {
        if input.shape() != decomp.global_shape {
            return Err(ShardError::Session(SessionError::ShapeMismatch {
                expected: decomp.global_shape,
                got: input.shape(),
            }));
        }
        let (r1, r2) = match options.layout {
            Some(rs) => rs,
            None => {
                layout::explore(
                    kernel,
                    decomp.global_shape,
                    options.effective_frag(),
                    options.mode,
                    options.precision,
                    &options.gpu,
                    options.max_r,
                )
                .best
            }
        };
        decomp.validate_layout(r1, r2)?;
        let shard_opts = Options {
            layout: Some((r1, r2)),
            ..options.clone()
        };
        let plan: CompiledStencil<R> = compile(kernel, decomp.shard_shape, &shard_opts)?;
        let hx = compile_halo_exchange(&plan, &decomp)?;
        let exchange_cells = hx.exchange_cells();
        let inputs: Vec<Grid<R>> = (0..decomp.n_shards())
            .map(|s| input.subgrid(decomp.origin(s), decomp.shard_shape))
            .collect();
        let mut batch = Batch::try_owned_with_parallelism(plan, &inputs, lanes)?;
        batch.install_halo_exchange(hx)?;
        Ok(Self {
            batch,
            decomp,
            dims: input.dims(),
            steps: 0,
            exchange_cells,
            probes: Vec::new(),
        })
    }

    /// Advance the whole sharded simulation by one time step (compute +
    /// halo exchange in one parallel region), firing due probes.
    /// Allocation-free after construction.
    ///
    /// # Panics
    /// Panics on a shard fault ([`ShardedSimulation::try_step`] is the
    /// fallible form).
    pub fn step(&mut self) {
        self.try_step().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`ShardedSimulation::step`]: all-or-nothing. On
    /// [`SessionError::Poisoned`] no shard's field moved — the whole
    /// job sits at the consistent pre-step state, recoverable via
    /// [`ShardedSimulation::heal`] (resume in place) or
    /// [`ShardedSimulation::restore`] (rewind). Probes do not fire on a
    /// failed step.
    pub fn try_step(&mut self) -> Result<(), ShardError> {
        self.batch.step_all_coupled()?;
        self.steps += 1;
        self.fire_probes();
        Ok(())
    }

    /// Advance by `n` time steps, firing due probes after each.
    ///
    /// # Panics
    /// As [`ShardedSimulation::step`].
    pub fn step_n(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Fallible [`ShardedSimulation::step_n`]: stops at the first
    /// faulted step (earlier completed steps stand).
    pub fn try_step_n(&mut self, n: usize) -> Result<(), ShardError> {
        for _ in 0..n {
            self.try_step()?;
        }
        Ok(())
    }

    /// Steps completed since construction or the last
    /// `load`/`reset`/`restore`.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Register an observer fired after every `every`-th step with the
    /// seamless cross-shard view. Probes stack (registration order).
    ///
    /// # Errors
    /// [`SessionError::ProbeMisuse`] for a zero cadence.
    pub fn try_probe(
        &mut self,
        every: usize,
        f: impl FnMut(usize, &ShardedFieldView<'_, R>) + Send + 'static,
    ) -> Result<(), ShardError> {
        if every == 0 {
            return Err(ShardError::Session(SessionError::ProbeMisuse));
        }
        self.probes.push(Probe {
            every,
            f: Box::new(f),
        });
        Ok(())
    }

    /// Infallible [`ShardedSimulation::try_probe`].
    ///
    /// # Panics
    /// Panics for a zero cadence.
    pub fn probe(
        &mut self,
        every: usize,
        f: impl FnMut(usize, &ShardedFieldView<'_, R>) + Send + 'static,
    ) {
        self.try_probe(every, f).unwrap_or_else(|e| panic!("{e}"));
    }

    fn fire_probes(&mut self) {
        if self.probes.is_empty() {
            return;
        }
        // Split borrows: the view reads `batch`/`decomp`, the closures
        // live in `probes` — disjoint fields.
        let Self {
            batch,
            decomp,
            dims,
            steps,
            probes,
            ..
        } = self;
        let view = ShardedFieldView {
            batch,
            decomp,
            dims: *dims,
        };
        for p in probes.iter_mut() {
            if *steps % p.every == 0 {
                (p.f)(*steps, &view);
            }
        }
    }

    /// Seamless zero-copy view of the full semantic field across all
    /// shards — reads route to the owning shard, no assembly pass.
    pub fn field(&self) -> ShardedFieldView<'_, R> {
        ShardedFieldView {
            batch: &self.batch,
            decomp: &self.decomp,
            dims: self.dims,
        }
    }

    /// Materialize the full semantic field as one owned [`Grid`].
    pub fn to_grid(&self) -> Grid<R> {
        self.field().to_grid()
    }

    /// The decomposition this simulation runs under.
    pub fn decomposition(&self) -> &Decomposition {
        &self.decomp
    }

    /// Number of shard-sessions.
    pub fn n_shards(&self) -> usize {
        self.decomp.n_shards()
    }

    /// Global semantic shape `[nz, ny, nx]`.
    pub fn shape(&self) -> [usize; 3] {
        self.decomp.global_shape
    }

    /// Each shard's local semantic shape.
    pub fn shard_shape(&self) -> [usize; 3] {
        self.decomp.shard_shape
    }

    /// Cells copied between shards per step by the halo exchange
    /// (benches report `exchange_cells / domain cells` as the exchange
    /// fraction).
    pub fn exchange_cells(&self) -> usize {
        self.exchange_cells
    }

    /// Shard `i`'s accumulated simulated-hardware statistics.
    pub fn shard_stats(&self, i: usize) -> RunStats {
        self.batch.stats(i)
    }

    /// Shard `i`'s numeric-health record.
    pub fn shard_health(&self, i: usize) -> &Health {
        self.batch.health(i)
    }

    /// The typed fault parked on shard `i`, if any (set when a coupled
    /// step aborts).
    pub fn shard_error(&self, i: usize) -> Option<SessionError> {
        self.batch.error(i)
    }

    /// Clear every shard's fault status and resume from the current
    /// (consistent pre-fault) field — sound because an aborted coupled
    /// step never moves any shard's visible state.
    pub fn heal(&mut self) {
        for i in 0..self.n_shards() {
            self.batch.clear_fault(i);
        }
    }

    /// Replace the field with a new global input of the same shape,
    /// clearing steps, counters, and fault status. Reuses every shard's
    /// buffers (the per-shard slicing allocates transient staging
    /// grids; steady-state *stepping* stays allocation-free).
    ///
    /// # Errors
    /// [`SessionError::ShapeMismatch`] when `input` is not the global
    /// shape.
    pub fn load(&mut self, input: &Grid<R>) -> Result<(), ShardError> {
        if input.shape() != self.decomp.global_shape {
            return Err(ShardError::Session(SessionError::ShapeMismatch {
                expected: self.decomp.global_shape,
                got: input.shape(),
            }));
        }
        for s in 0..self.n_shards() {
            let sub = input.subgrid(self.decomp.origin(s), self.decomp.shard_shape);
            self.batch.load(s, &sub);
        }
        self.steps = 0;
        Ok(())
    }

    /// Rewind every shard to the initially loaded field, clearing
    /// steps, counters, and fault status. No reallocation.
    pub fn reset(&mut self) {
        self.batch.reset();
        self.steps = 0;
    }

    /// Snapshot the whole job into a fresh [`ShardCheckpoint`]. Prefer
    /// [`ShardedSimulation::checkpoint_into`] in steady state (reuses
    /// the caller's buffers, zero allocations once warm).
    pub fn checkpoint(&self) -> ShardCheckpoint<R> {
        let mut ck = ShardCheckpoint::new();
        self.checkpoint_into(&mut ck);
        ck
    }

    /// Snapshot every shard's field, counters, and the job's step count
    /// into `ck`, reusing its buffers when already filled from this
    /// decomposition.
    pub fn checkpoint_into(&self, ck: &mut ShardCheckpoint<R>) {
        let n = self.n_shards();
        if ck.shards.len() != n {
            ck.shards = (0..n).map(|_| Checkpoint::new()).collect();
        }
        for (i, slot) in ck.shards.iter_mut().enumerate() {
            self.batch.checkpoint_into(i, slot);
        }
        ck.steps = self.steps;
    }

    /// Rewind the whole job to `ck`, clearing fault status — the
    /// targeted recovery path when resuming in place
    /// ([`ShardedSimulation::heal`]) is not wanted.
    ///
    /// # Errors
    /// [`SessionError::EmptyCheckpoint`] for a never-filled checkpoint
    /// or one taken from a different shard count;
    /// [`SessionError::ShapeMismatch`]/[`SessionError::NonFiniteInput`]
    /// per shard as [`Batch::restore`]. Shards already restored before
    /// a per-shard error stand (take checkpoints from healthy states to
    /// avoid partial restores).
    pub fn restore(&mut self, ck: &ShardCheckpoint<R>) -> Result<(), ShardError> {
        if ck.shards.len() != self.n_shards() || ck.shards.iter().any(|c| !c.is_filled()) {
            return Err(ShardError::Session(SessionError::EmptyCheckpoint));
        }
        for (i, slot) in ck.shards.iter().enumerate() {
            self.batch.restore(i, slot)?;
        }
        self.steps = ck.steps;
        Ok(())
    }

    /// The underlying batch (read-only): plan, per-shard fields, the
    /// installed [`HaloExchange`].
    pub fn batch(&self) -> &Batch<'static, R> {
        &self.batch
    }
}

/// A caller-held snapshot of a whole sharded job: one [`Checkpoint`]
/// per shard plus the job step count. Created empty with
/// [`ShardCheckpoint::new`]; filled by
/// [`ShardedSimulation::checkpoint_into`], which reuses the buffers on
/// every refill.
#[derive(Debug, Clone, Default)]
pub struct ShardCheckpoint<R: Real> {
    shards: Vec<Checkpoint<R>>,
    steps: usize,
}

impl<R: Real> ShardCheckpoint<R> {
    /// An empty checkpoint; the first `checkpoint_into` allocates its
    /// per-shard buffers, later refills reuse them.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` once filled by a `checkpoint_into` call.
    pub fn is_filled(&self) -> bool {
        !self.shards.is_empty() && self.shards.iter().all(Checkpoint::is_filled)
    }

    /// The job step count captured at the snapshot.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

/// A zero-copy, read-only view of the full semantic field assembled
/// across all shards: reads route to the shard owning the cell (global
/// boundary bands to the last shard along each axis), so observers see
/// one seamless grid with no per-step assembly cost. The cross-shard
/// analogue of [`FieldView`].
pub struct ShardedFieldView<'a, R: Real> {
    batch: &'a Batch<'static, R>,
    decomp: &'a Decomposition,
    dims: usize,
}

impl<R: Real> ShardedFieldView<'_, R> {
    /// Global semantic shape `[nz, ny, nx]`.
    pub fn shape(&self) -> [usize; 3] {
        self.decomp.global_shape
    }

    /// Dimensionality of the simulated field (1, 2, or 3).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        let s = self.decomp.global_shape;
        s[0] * s[1] * s[2]
    }

    /// `true` for a degenerate zero-cell field.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read global cell `(z, y, x)` (routes to the owning shard).
    pub fn get(&self, z: usize, y: usize, x: usize) -> R {
        let (s, l) = self.decomp.owner_of([z, y, x]);
        self.batch.field(s).get(l[0], l[1], l[2])
    }

    /// The shard-local view holding global cell `(z, y, x)`, with the
    /// cell's shard index and local coordinates.
    pub fn locate(&self, z: usize, y: usize, x: usize) -> (usize, [usize; 3], FieldView<'_, R>) {
        let (s, l) = self.decomp.owner_of([z, y, x]);
        (s, l, self.batch.field(s))
    }

    /// Materialize the full semantic field as one owned [`Grid`],
    /// copying each row's owner runs (halo overlaps hold identical
    /// values in every holder, so any owner works; the canonical one is
    /// used). The input grid's recorded dimensionality is preserved
    /// verbatim, exactly as the solo session's [`FieldView::to_grid`]
    /// does — the two paths must agree even on metadata.
    pub fn to_grid(&self) -> Grid<R> {
        let shape = self.decomp.global_shape;
        let mut out = Grid::<R>::from_fn_3d(self.dims, shape, |_, _, _| R::from_f64(0.0));
        let chunk = self.decomp.chunk;
        let parts = self.decomp.parts;
        for z in 0..shape[0] {
            for y in 0..shape[1] {
                let mut x = 0;
                while x < shape[2] {
                    let (s, l) = self.decomp.owner_of([z, y, x]);
                    let px = (x / chunk[2]).min(parts[2] - 1);
                    let run_end = if px == parts[2] - 1 {
                        shape[2]
                    } else {
                        (px + 1) * chunk[2]
                    };
                    let len = run_end - x;
                    let row = self.batch.field(s).row(l[0], l[1]);
                    let base = out.index(z, y, x);
                    out.as_mut_slice()[base..base + len].copy_from_slice(&row[l[2]..l[2] + len]);
                    x = run_end;
                }
            }
        }
        out
    }
}
