//! Conflict-graph construction (Definitions 1–2, Figure 5b).
//!
//! Given a kernel matrix `A'`, the **conflict graph** has one node per
//! column and an edge between two columns whenever some row holds nonzeros
//! in both (Definition 1). Non-adjacent nodes may share an aligned 4-group
//! without violating the ≤2-per-group constraint.
//!
//! The self-similar staircase structure produced by Duplicates Crush
//! induces *two-level* conflict graphs: a **global** graph over block
//! columns and identical **local** graphs inside each block (Figure 5b).
//! Theorem 1 (verified by [`verify_non_conflict_theorem`] and by property
//! tests) states that in a width-`k` staircase, columns at distance ≥ `k`
//! never conflict — the key fact behind Algorithm 1's stride choice.

use crate::graph::Graph;
use sparstencil_mat::{BitMask, DenseMatrix, Real};

/// Build the conflict graph of the columns of `a` (Definition 1).
pub fn conflict_graph<R: Real>(a: &DenseMatrix<R>) -> Graph {
    conflict_graph_of_mask(&BitMask::from_matrix(a))
}

/// Build the conflict graph from a precomputed nonzero mask.
pub fn conflict_graph_of_mask(mask: &BitMask) -> Graph {
    let n = mask.cols();
    let mut g = Graph::new(n);
    // Row-sweep construction: columns conflict iff they co-occur in a row.
    // For each row collect its nonzero columns and connect all pairs; this
    // is O(rows * nnz_per_row²), tiny for kernel matrices and much faster
    // than the naive O(n² rows) pairwise scan for sparse inputs.
    for r in 0..mask.rows() {
        let cols: Vec<usize> = (0..n).filter(|&c| mask.get(r, c)).collect();
        for (i, &u) in cols.iter().enumerate() {
            for &v in &cols[i + 1..] {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// The two-level conflict structure of a block-partitioned matrix
/// (Figure 5b): a global graph over block columns plus one local graph per
/// block column (all identical for self-similar staircases; stored
/// per-block for generality).
#[derive(Debug, Clone)]
pub struct TwoLevelConflict {
    /// Global conflict graph: node `i` = block column `i`; edge iff some
    /// block row holds nonzero blocks in both block columns.
    pub global: Graph,
    /// Local conflict graph of each block column, over its `block_cols`
    /// columns (union of conflicts across all block rows touching it).
    pub local: Vec<Graph>,
    /// Columns per block.
    pub block_cols: usize,
}

impl TwoLevelConflict {
    /// `true` iff every local graph equals the first — the "Exactly Same!"
    /// observation of Figure 5(b) that lets Algorithm 1 analyze a single
    /// subgraph.
    pub fn locals_identical(&self) -> bool {
        self.local.windows(2).all(|w| w[0] == w[1])
    }
}

/// Build the two-level conflict graphs of `a` partitioned into blocks of
/// `block_rows × block_cols`.
///
/// # Panics
/// Panics if the matrix shape is not divisible by the block shape.
pub fn two_level_conflict<R: Real>(
    a: &DenseMatrix<R>,
    block_rows: usize,
    block_cols: usize,
) -> TwoLevelConflict {
    assert!(
        a.rows().is_multiple_of(block_rows) && a.cols().is_multiple_of(block_cols),
        "matrix {}x{} not divisible into {}x{} blocks",
        a.rows(),
        a.cols(),
        block_rows,
        block_cols
    );
    let grid_rows = a.rows() / block_rows;
    let grid_cols = a.cols() / block_cols;

    // Block nonzero pattern.
    let block_nnz = |gr: usize, gc: usize| -> bool {
        a.block(gr * block_rows, gc * block_cols, block_rows, block_cols)
            .nnz()
            > 0
    };

    let mut global = Graph::new(grid_cols);
    for gr in 0..grid_rows {
        let cols: Vec<usize> = (0..grid_cols).filter(|&gc| block_nnz(gr, gc)).collect();
        for (i, &u) in cols.iter().enumerate() {
            for &v in &cols[i + 1..] {
                global.add_edge(u, v);
            }
        }
    }

    // Local graph per block column: union of per-block conflict relations
    // over every block row whose block at this column is nonzero.
    let mut local = Vec::with_capacity(grid_cols);
    for gc in 0..grid_cols {
        let mut lg = Graph::new(block_cols);
        for gr in 0..grid_rows {
            if !block_nnz(gr, gc) {
                continue;
            }
            let blk = a.block(gr * block_rows, gc * block_cols, block_rows, block_cols);
            let bg = conflict_graph(&blk);
            for u in 0..block_cols {
                for v in (u + 1)..block_cols {
                    if bg.has_edge(u, v) {
                        lg.add_edge(u, v);
                    }
                }
            }
        }
        local.push(lg);
    }

    TwoLevelConflict {
        global,
        local,
        block_cols,
    }
}

/// Check Theorem 1 on a concrete conflict graph: no edge joins columns at
/// distance ≥ `k`. Returns the first violating pair, if any.
pub fn verify_non_conflict_theorem(g: &Graph, k: usize) -> Option<(usize, usize)> {
    for u in 0..g.len() {
        for v in (u + k)..g.len() {
            if g.has_edge(u, v) {
                return Some((u, v));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparstencil_mat::staircase::{block_staircase, staircase_from_weights};

    #[test]
    fn simple_conflicts() {
        // Columns 0,1 share row 0; column 2 isolated.
        let mut a = DenseMatrix::<f64>::zeros(2, 3);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 2, 3.0);
        let g = conflict_graph(&a);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn staircase_conflicts_are_banded() {
        // Width-3 staircase on 5 rows: columns within distance 2 conflict,
        // distance ≥ 3 never (Theorem 1).
        let s = staircase_from_weights(&[1.0f64, 2.0, 3.0], 5);
        let g = conflict_graph(&s);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        assert_eq!(verify_non_conflict_theorem(&g, 3), None);
        assert_eq!(verify_non_conflict_theorem(&g, 2), Some((0, 2)));
    }

    #[test]
    fn star_weights_reduce_conflicts() {
        // Weights [1, 0, 3]: columns at distance 1 do NOT conflict
        // (no row holds adjacent nonzeros), distance 2 does.
        let s = staircase_from_weights(&[1.0f64, 0.0, 3.0], 4);
        let g = conflict_graph(&s);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert_eq!(verify_non_conflict_theorem(&g, 3), None);
    }

    #[test]
    fn two_level_matches_figure5() {
        // Self-similar staircase: 3 block-rows, blocks of a width-2
        // staircase on 2 rows (2×3 blocks), 2 blocks per block-row.
        let b0 = staircase_from_weights(&[1.0f64, 2.0], 2);
        let b1 = staircase_from_weights(&[3.0f64, 4.0], 2);
        let a = block_staircase(&[b0, b1], 3);
        let tl = two_level_conflict(&a, 2, 3);
        // Global: width-2 staircase over 4 block columns.
        assert!(tl.global.has_edge(0, 1));
        assert!(!tl.global.has_edge(0, 2));
        assert_eq!(verify_non_conflict_theorem(&tl.global, 2), None);
        // Locals identical, and banded with width 2.
        assert!(tl.locals_identical());
        for lg in &tl.local {
            assert_eq!(verify_non_conflict_theorem(lg, 2), None);
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_blocks_panic() {
        let a = DenseMatrix::<f64>::zeros(4, 5);
        let _ = two_level_conflict(&a, 2, 2);
    }

    #[test]
    fn empty_matrix_graph() {
        let a = DenseMatrix::<f64>::zeros(3, 4);
        let g = conflict_graph(&a);
        assert_eq!(g.edge_count(), 0);
    }
}
