//! # sparstencil-graph — conflict graphs and matching for SparStencil
//!
//! The Structured Sparsity Conversion stage (§3.2 of the paper) reduces the
//! problem of rearranging a staircase-sparse kernel matrix into a
//! 2:4-compatible layout to *minimum zero-column matching* on a **conflict
//! graph** (Definitions 1–3): columns are nodes, and two columns conflict
//! when they share a row with nonzeros in both. Any perfect matching of
//! columns into non-conflicting pairs yields a valid 2:4 layout (two pairs
//! per aligned 4-group ⇒ at most two nonzeros per row per group); zero
//! columns are appended for nodes that cannot be paired.
//!
//! This crate provides:
//!
//! - [`Graph`] — a small undirected graph with bitset adjacency.
//! - [`conflict`] — conflict-graph construction from matrices, including
//!   the two-level (global block / local column) graphs of Figure 5(b).
//! - [`hierarchical`] — the paper's Algorithm 1, *Hierarchical Two-Level
//!   Matching*: linear time, provably pad-optimal on self-similar
//!   staircase inputs (Theorems 1–2).
//! - [`blossom`] — a complete Edmonds blossom maximum-matching
//!   implementation, used (on the *complement* graph) as the fallback for
//!   arbitrary sparsity patterns, and as the exactness oracle in tests.
//! - [`matching`] — the matching data type, validity checking
//!   (Definition 3) and the minimum-padding computation (Problem 1).

#![warn(missing_docs)]

pub mod blossom;
pub mod conflict;
pub mod graph;
pub mod hierarchical;
pub mod matching;

pub use graph::Graph;
pub use matching::{Matching, PairList};
