//! Edmonds' blossom algorithm for maximum matching in general graphs.
//!
//! §3.2 of the paper: when the input deviates from the k-staircase
//! structure, Structured Sparsity Conversion "falls back to the classical
//! Blossom algorithm \[Edmonds 1965\] to compute maximum matchings over
//! arbitrary sparsity patterns". The matching is computed on the
//! *complement* of the conflict graph (we pair columns that do **not**
//! conflict), and the minimum number of zero-pad columns equals
//! `n − 2·|maximum matching|`.
//!
//! This is the standard O(V³) contraction-free formulation: repeated BFS
//! searches for augmenting paths with on-the-fly blossom base relabelling
//! (`base[]`), as in Edmonds (1965) — "Paths, Trees, and Flowers".

use crate::graph::Graph;

/// Maximum matching of `g`. Returns `mate`, where `mate[v] = Some(u)` iff
/// `v` is matched to `u` (symmetric), `None` if exposed.
pub fn maximum_matching(g: &Graph) -> Vec<Option<usize>> {
    let n = g.len();
    let adj = g.adjacency_list();
    let mut mate: Vec<Option<usize>> = vec![None; n];

    // Greedy warm start: halves the number of augmenting searches.
    for v in 0..n {
        if mate[v].is_none() {
            for &u in &adj[v] {
                if mate[u].is_none() {
                    mate[v] = Some(u);
                    mate[u] = Some(v);
                    break;
                }
            }
        }
    }

    for root in 0..n {
        if mate[root].is_some() {
            continue;
        }
        // find_augmenting_path augments in place when a path is found.
        let _ = find_augmenting_path(&adj, &mut mate, root);
    }
    mate
}

/// Size (number of edges) of a matching in `mate` representation.
pub fn matching_size(mate: &[Option<usize>]) -> usize {
    mate.iter().flatten().count() / 2
}

/// Per-search state for the augmenting BFS.
struct Search {
    /// `parent[v]`: the *odd* predecessor of even-level vertex v's mate,
    /// i.e. the standard `p[]` array of the contraction-free formulation.
    parent: Vec<Option<usize>>,
    /// `base[v]`: current blossom base of v.
    base: Vec<usize>,
    /// Queue membership (even-level vertices).
    used: Vec<bool>,
    /// Scratch marker for blossom contraction.
    blossom: Vec<bool>,
}

fn find_augmenting_path(
    adj: &[Vec<usize>],
    mate: &mut [Option<usize>],
    root: usize,
) -> Option<usize> {
    let n = adj.len();
    let mut s = Search {
        parent: vec![None; n],
        base: (0..n).collect(),
        used: vec![false; n],
        blossom: vec![false; n],
    };
    let mut queue = std::collections::VecDeque::new();
    s.used[root] = true;
    queue.push_back(root);

    while let Some(v) = queue.pop_front() {
        for &to in &adj[v] {
            if s.base[v] == s.base[to] || mate[v] == Some(to) {
                continue;
            }
            if to == root || matches!(mate[to], Some(m) if s.parent[m].is_some()) {
                // Odd cycle: contract the blossom rooted at lca(v, to).
                let curbase = lca(&s, mate, v, to);
                s.blossom.iter_mut().for_each(|b| *b = false);
                mark_path(&mut s, mate, v, curbase, to);
                mark_path(&mut s, mate, to, curbase, v);
                for i in 0..n {
                    if s.blossom[s.base[i]] {
                        s.base[i] = curbase;
                        if !s.used[i] {
                            s.used[i] = true;
                            queue.push_back(i);
                        }
                    }
                }
            } else if s.parent[to].is_none() {
                s.parent[to] = Some(v);
                match mate[to] {
                    None => {
                        // Exposed vertex reached: flip the alternating
                        // path root → … → to.
                        augment(&s, mate, to);
                        return Some(to);
                    }
                    Some(m) => {
                        s.used[m] = true;
                        queue.push_back(m);
                    }
                }
            }
        }
    }
    None
}

/// Flip matched/unmatched edges along the augmenting path ending at the
/// exposed vertex `leaf`, following the `parent` threading built during the
/// search (and re-rooted through blossoms by [`mark_path`]).
fn augment(s: &Search, mate: &mut [Option<usize>], leaf: usize) {
    let mut v = Some(leaf);
    while let Some(cur) = v {
        let pv = s.parent[cur].expect("augmenting path vertex must have a parent");
        let ppv = mate[pv];
        mate[cur] = Some(pv);
        mate[pv] = Some(cur);
        v = ppv;
    }
}

/// Lowest common ancestor of `a` and `b` in the alternating forest,
/// walking via blossom bases.
fn lca(s: &Search, mate: &[Option<usize>], a: usize, b: usize) -> usize {
    let n = s.base.len();
    let mut visited = vec![false; n];
    // Walk up from a, marking bases.
    let mut x = a;
    loop {
        x = s.base[x];
        visited[x] = true;
        match mate[x] {
            None => break, // reached the root
            Some(m) => match s.parent[m] {
                Some(p) => x = p,
                None => break,
            },
        }
    }
    // Walk up from b until a marked base is found.
    let mut y = b;
    loop {
        y = s.base[y];
        if visited[y] {
            return y;
        }
        match mate[y] {
            None => unreachable!("walk from b must hit a visited base"),
            Some(m) => match s.parent[m] {
                Some(p) => y = p,
                None => unreachable!("walk from b must hit a visited base"),
            },
        }
    }
}

/// Mark blossom vertices on the path from `v` down to `base_vertex`,
/// re-rooting parents toward `child` so future augmentations can traverse
/// the contracted blossom in either direction.
fn mark_path(
    s: &mut Search,
    mate: &[Option<usize>],
    mut v: usize,
    base_vertex: usize,
    mut child: usize,
) {
    while s.base[v] != base_vertex {
        let m = mate[v].expect("non-base blossom vertex must be matched");
        s.blossom[s.base[v]] = true;
        s.blossom[s.base[m]] = true;
        s.parent[v] = Some(child);
        child = m;
        v = s.parent[m].expect("blossom path must be parented");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Exhaustive maximum matching by brute force (n ≤ 10).
    fn brute_force(g: &Graph) -> usize {
        fn rec(g: &Graph, used: &mut Vec<bool>, start: usize) -> usize {
            let n = g.len();
            let mut v = start;
            while v < n && used[v] {
                v += 1;
            }
            if v >= n {
                return 0;
            }
            used[v] = true;
            // Option 1: leave v unmatched.
            let mut best = rec(g, used, v + 1);
            // Option 2: match v with any free neighbor.
            for u in g.neighbors(v) {
                if !used[u] {
                    used[u] = true;
                    best = best.max(1 + rec(g, used, v + 1));
                    used[u] = false;
                }
            }
            used[v] = false;
            best
        }
        rec(g, &mut vec![false; g.len()], 0)
    }

    fn check(g: &Graph) {
        let mate = maximum_matching(g);
        // Symmetry + edges exist.
        for v in 0..g.len() {
            if let Some(u) = mate[v] {
                assert_eq!(mate[u], Some(v), "matching not symmetric");
                assert!(g.has_edge(u, v), "matched pair not an edge");
            }
        }
        assert_eq!(matching_size(&mate), brute_force(g), "not maximum");
    }

    #[test]
    fn path_graph() {
        let mut g = Graph::new(5);
        for v in 0..4 {
            g.add_edge(v, v + 1);
        }
        check(&g);
        assert_eq!(matching_size(&maximum_matching(&g)), 2);
    }

    #[test]
    fn odd_cycle_triangle() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        check(&g);
        assert_eq!(matching_size(&maximum_matching(&g)), 1);
    }

    #[test]
    fn five_cycle_needs_blossom() {
        let mut g = Graph::new(5);
        for v in 0..5 {
            g.add_edge(v, (v + 1) % 5);
        }
        check(&g);
        assert_eq!(matching_size(&maximum_matching(&g)), 2);
    }

    #[test]
    fn petersen_graph_perfect_matching() {
        // The Petersen graph has a perfect matching (size 5) but is not
        // bipartite — a classic blossom stress test.
        let mut g = Graph::new(10);
        for v in 0..5 {
            g.add_edge(v, (v + 1) % 5); // outer cycle
            g.add_edge(v + 5, (v + 2) % 5 + 5); // inner pentagram
            g.add_edge(v, v + 5); // spokes
        }
        let mate = maximum_matching(&g);
        assert_eq!(matching_size(&mate), 5);
        check(&g);
    }

    #[test]
    fn two_triangles_bridge() {
        // Two triangles joined by a bridge: perfect matching of size 3.
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 3);
        g.add_edge(2, 3);
        check(&g);
        assert_eq!(matching_size(&maximum_matching(&g)), 3);
    }

    #[test]
    fn empty_and_edgeless() {
        check(&Graph::new(0));
        check(&Graph::new(7));
        assert_eq!(matching_size(&maximum_matching(&Graph::new(7))), 0);
    }

    #[test]
    fn complete_graphs() {
        for n in 1..8 {
            let mut g = Graph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    g.add_edge(u, v);
                }
            }
            check(&g);
            assert_eq!(matching_size(&maximum_matching(&g)), n / 2);
        }
    }

    #[test]
    fn random_graphs_match_brute_force() {
        // Deterministic xorshift-generated graphs, n up to 9.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let n = 3 + (rand() % 7) as usize;
            let mut g = Graph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rand() % 100 < 40 {
                        g.add_edge(u, v);
                    }
                }
            }
            let _ = trial;
            check(&g);
        }
    }
}
