//! Matchings, validity (Definition 3) and minimum zero-column padding
//! (Problem 1).
//!
//! A *valid matching* covers every original column exactly once with pairs
//! that are conflict-free; columns that cannot be paired with another
//! column are paired with inserted zero columns. The minimum number of
//! zero columns is `n − 2·ν(Ḡ)` where `ν(Ḡ)` is the maximum matching size
//! of the conflict graph's complement — computed exactly by the blossom
//! algorithm.

use crate::blossom;
use crate::graph::Graph;

/// A pair of column indices, or a column paired with an inserted zero
/// column ([`PairList::PAD`]).
pub type Pair = (usize, usize);

/// An ordered list of column pairs; the downstream conversion lays each
/// consecutive two pairs into one aligned 4-group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairList {
    /// Pairs `(a, b)`; `b == PairList::PAD` denotes a zero-column partner.
    pub pairs: Vec<Pair>,
    /// Number of original columns covered.
    pub n: usize,
}

impl PairList {
    /// Sentinel partner index marking an inserted zero column.
    pub const PAD: usize = usize::MAX;

    /// Number of inserted zero columns.
    pub fn pad_count(&self) -> usize {
        self.pairs.iter().filter(|&&(_, b)| b == Self::PAD).count()
    }

    /// Validity per Definition 3 against a conflict graph:
    /// (i) coverage — every node in `0..n` appears exactly once;
    /// (ii) conflict-freedom — no pair is an edge of `conflicts`.
    pub fn validate(&self, conflicts: &Graph) -> Result<(), MatchingError> {
        if conflicts.len() != self.n {
            return Err(MatchingError::WrongNodeCount {
                expected: self.n,
                got: conflicts.len(),
            });
        }
        let mut seen = vec![false; self.n];
        for &(a, b) in &self.pairs {
            for v in [a, b] {
                if v == Self::PAD {
                    continue;
                }
                if v >= self.n {
                    return Err(MatchingError::OutOfRange { node: v });
                }
                if seen[v] {
                    return Err(MatchingError::DoublyCovered { node: v });
                }
                seen[v] = true;
            }
            if a != Self::PAD && b != Self::PAD && conflicts.has_edge(a, b) {
                return Err(MatchingError::ConflictingPair { a, b });
            }
        }
        if let Some(node) = seen.iter().position(|&s| !s) {
            return Err(MatchingError::Uncovered { node });
        }
        Ok(())
    }
}

/// Reasons a pair list fails Definition 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchingError {
    /// Conflict graph size differs from the pair list's node count.
    WrongNodeCount {
        /// Expected node count.
        expected: usize,
        /// Actual node count.
        got: usize,
    },
    /// A pair references a node outside `0..n`.
    OutOfRange {
        /// The offending node.
        node: usize,
    },
    /// A node appears in more than one pair.
    DoublyCovered {
        /// The offending node.
        node: usize,
    },
    /// A node appears in no pair.
    Uncovered {
        /// The offending node.
        node: usize,
    },
    /// A pair joins two conflicting columns.
    ConflictingPair {
        /// First column.
        a: usize,
        /// Second column.
        b: usize,
    },
}

impl std::fmt::Display for MatchingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchingError::WrongNodeCount { expected, got } => {
                write!(f, "conflict graph has {got} nodes, expected {expected}")
            }
            MatchingError::OutOfRange { node } => write!(f, "node {node} out of range"),
            MatchingError::DoublyCovered { node } => write!(f, "node {node} covered twice"),
            MatchingError::Uncovered { node } => write!(f, "node {node} uncovered"),
            MatchingError::ConflictingPair { a, b } => {
                write!(f, "pair ({a},{b}) joins conflicting columns")
            }
        }
    }
}

impl std::error::Error for MatchingError {}

/// Alias kept for readability at call sites.
pub type Matching = PairList;

/// Solve Problem 1 exactly for an arbitrary conflict graph: compute a
/// maximum matching on the complement (pairable columns) with the blossom
/// algorithm, then pad every unmatched column with a zero column.
/// The returned pad count `n − 2·ν(Ḡ)` is minimal.
pub fn min_padding_matching(conflicts: &Graph) -> PairList {
    let n = conflicts.len();
    let compatible = conflicts.complement();
    let mate = blossom::maximum_matching(&compatible);
    let mut pairs = Vec::with_capacity(n.div_ceil(2));
    let mut done = vec![false; n];
    for v in 0..n {
        if done[v] {
            continue;
        }
        match mate[v] {
            Some(u) if !done[u] => {
                pairs.push((v, u));
                done[v] = true;
                done[u] = true;
            }
            _ => {
                pairs.push((v, PairList::PAD));
                done[v] = true;
            }
        }
    }
    PairList { pairs, n }
}

/// Lower bound on padding for any valid matching: `n − 2·ν(Ḡ)`.
/// [`min_padding_matching`] achieves it; Algorithm 1 must match it on
/// staircase inputs (Theorem 2) — asserted by tests.
pub fn optimal_pad_count(conflicts: &Graph) -> usize {
    let compatible = conflicts.complement();
    let mate = blossom::maximum_matching(&compatible);
    conflicts.len() - 2 * blossom::matching_size(&mate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_conflicts(n: usize) -> Graph {
        // Conflicts between adjacent columns only (width-2 staircase).
        let mut g = Graph::new(n);
        for v in 0..n.saturating_sub(1) {
            g.add_edge(v, v + 1);
        }
        g
    }

    #[test]
    fn min_padding_on_path() {
        // 4 columns, adjacent conflicts: (0,2),(1,3) is a perfect
        // conflict-free matching → zero pads.
        let g = path_conflicts(4);
        let m = min_padding_matching(&g);
        assert_eq!(m.pad_count(), 0);
        m.validate(&g).unwrap();
    }

    #[test]
    fn min_padding_odd_count() {
        let g = path_conflicts(5);
        let m = min_padding_matching(&g);
        assert_eq!(m.pad_count(), 1);
        m.validate(&g).unwrap();
        assert_eq!(optimal_pad_count(&g), 1);
    }

    #[test]
    fn complete_conflicts_pad_everything() {
        // Every pair conflicts: all columns need zero partners.
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        let m = min_padding_matching(&g);
        assert_eq!(m.pad_count(), 3);
        m.validate(&g).unwrap();
        assert_eq!(optimal_pad_count(&g), 3);
    }

    #[test]
    fn no_conflicts_no_padding_even() {
        let g = Graph::new(6);
        let m = min_padding_matching(&g);
        assert_eq!(m.pad_count(), 0);
        m.validate(&g).unwrap();
    }

    #[test]
    fn validate_detects_conflicting_pair() {
        let g = path_conflicts(2);
        let m = PairList {
            pairs: vec![(0, 1)],
            n: 2,
        };
        assert_eq!(
            m.validate(&g),
            Err(MatchingError::ConflictingPair { a: 0, b: 1 })
        );
    }

    #[test]
    fn validate_detects_uncovered() {
        let g = Graph::new(3);
        let m = PairList {
            pairs: vec![(0, 1)],
            n: 3,
        };
        assert_eq!(m.validate(&g), Err(MatchingError::Uncovered { node: 2 }));
    }

    #[test]
    fn validate_detects_double_cover() {
        let g = Graph::new(3);
        let m = PairList {
            pairs: vec![(0, 1), (1, 2)],
            n: 3,
        };
        assert_eq!(
            m.validate(&g),
            Err(MatchingError::DoublyCovered { node: 1 })
        );
    }

    #[test]
    fn validate_detects_out_of_range() {
        let g = Graph::new(2);
        let m = PairList {
            pairs: vec![(0, 5)],
            n: 2,
        };
        assert_eq!(m.validate(&g), Err(MatchingError::OutOfRange { node: 5 }));
    }

    #[test]
    fn empty_matching_is_valid() {
        let g = Graph::new(0);
        let m = PairList {
            pairs: vec![],
            n: 0,
        };
        m.validate(&g).unwrap();
        assert_eq!(min_padding_matching(&g).pairs.len(), 0);
    }
}
