//! Hierarchical Two-Level Matching — the paper's Algorithm 1.
//!
//! Specialized to the self-similar k-staircase structure produced by
//! Duplicates Crush: the global conflict graph over `m = n/g` block
//! columns and the (identical) local conflict graphs over `g` columns per
//! block are both width-`k` banded (Theorem 1: nodes ≥ `k` apart never
//! conflict). The algorithm therefore pairs
//!
//! 1. block `i` with block `i + s1`, `s1 = max(⌊m/2⌋, k)` (level 1), and
//! 2. inside each unmatched block, column `u` with `u + s2`,
//!    `s2 = max(⌊g/2⌋, k)`, inserting a zero column when `u + s2`
//!    overflows the block (level 2),
//!
//! then expands level-1 block pairs into column pairs `(v_t^p, v_t^q)`.
//! Runs in `O(n)` and achieves the minimum zero-column count on staircase
//! inputs (Theorem 2); tests verify pad-optimality against the blossom
//! exact solver.

use crate::matching::PairList;

/// Description of a self-similar staircase instance for Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaircaseSpec {
    /// Total number of columns (`n` in the paper); must be a multiple of
    /// `g`.
    pub n: usize,
    /// Columns per subgraph / block (`g`).
    pub g: usize,
    /// Staircase width (`k`): conflicts only occur at distance < `k`, both
    /// at block level and inside blocks.
    pub k: usize,
}

/// Errors for malformed staircase specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// `g` must be positive.
    ZeroBlock,
    /// `k` must be positive.
    ZeroWidth,
    /// `n` must be a positive multiple of `g`.
    Indivisible {
        /// Total columns.
        n: usize,
        /// Block size.
        g: usize,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::ZeroBlock => write!(f, "subgraph size g must be positive"),
            SpecError::ZeroWidth => write!(f, "staircase width k must be positive"),
            SpecError::Indivisible { n, g } => {
                write!(f, "column count {n} is not a positive multiple of g={g}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Run Algorithm 1. Returns the pair list (global column indices; PAD
/// partners mark inserted zero columns), ordered deterministically:
/// level-1 pairs by `(block, t)`, then level-2 pairs by `(block, u)`.
pub fn hierarchical_matching(spec: StaircaseSpec) -> Result<PairList, SpecError> {
    let StaircaseSpec { n, g, k } = spec;
    if g == 0 {
        return Err(SpecError::ZeroBlock);
    }
    if k == 0 {
        return Err(SpecError::ZeroWidth);
    }
    if n == 0 || n % g != 0 {
        return Err(SpecError::Indivisible { n, g });
    }
    let m = n / g;

    // ---- Level 1: match whole subgraphs at stride s1 (lines 1–4). ----
    let s1 = (m / 2).max(k);
    let mut block_matched = vec![false; m];
    let mut m1: Vec<(usize, usize)> = Vec::new();
    for i in 0..m {
        if !block_matched[i] && i + s1 < m && !block_matched[i + s1] {
            m1.push((i, i + s1));
            block_matched[i] = true;
            block_matched[i + s1] = true;
        }
    }

    // ---- Level 2: match columns inside unmatched subgraphs (lines 5–13). --
    let s2 = (g / 2).max(k);
    let mut m2: Vec<(usize, usize)> = Vec::new();
    for (x, _) in block_matched.iter().enumerate().filter(|&(_, &bm)| !bm) {
        let base = x * g;
        let mut col_matched = vec![false; g];
        for u in 0..g {
            if col_matched[u] {
                continue;
            }
            let v = u + s2;
            if v < g {
                m2.push((base + u, base + v));
                col_matched[u] = true;
                col_matched[v] = true;
            } else {
                // Zero node ζ (line 13): partner is an inserted zero column.
                m2.push((base + u, PairList::PAD));
                col_matched[u] = true;
            }
        }
    }

    // ---- Combine (lines 14–17): expand block pairs column-wise. ----
    let mut pairs = Vec::with_capacity(n.div_ceil(2));
    for &(p, q) in &m1 {
        for t in 0..g {
            pairs.push((p * g + t, q * g + t));
        }
    }
    pairs.extend(m2);

    Ok(PairList { pairs, n })
}

/// Pad count Algorithm 1 will produce for a spec, without materializing
/// the pairs — used by the layout explorer's analytic cost model.
pub fn hierarchical_pad_count(spec: StaircaseSpec) -> Result<usize, SpecError> {
    let StaircaseSpec { n, g, k } = spec;
    if g == 0 {
        return Err(SpecError::ZeroBlock);
    }
    if k == 0 {
        return Err(SpecError::ZeroWidth);
    }
    if n == 0 || n % g != 0 {
        return Err(SpecError::Indivisible { n, g });
    }
    let m = n / g;
    let s1 = (m / 2).max(k);
    // Number of level-1 pairs: greedy over i with stride s1.
    let mut block_matched = vec![false; m];
    let mut unmatched_blocks = 0usize;
    for i in 0..m {
        if !block_matched[i] {
            if i + s1 < m && !block_matched[i + s1] {
                block_matched[i] = true;
                block_matched[i + s1] = true;
            } else {
                unmatched_blocks += 1;
            }
        }
    }
    // Per unmatched block: columns g−s2..g that cannot find partners,
    // minus those consumed as right partners.
    let s2 = (g / 2).max(k);
    let pads_per_block = if s2 >= g {
        g
    } else {
        g - 2 * (g - s2).min(g / 2)
    };
    Ok(unmatched_blocks * pads_per_block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict;
    use crate::matching::optimal_pad_count;
    use sparstencil_mat::staircase::{block_staircase, staircase_from_weights};
    use sparstencil_mat::DenseMatrix;

    /// Build the crushed kernel matrix of a k×k all-ones box stencil:
    /// blocks are width-k staircases of k rows → block size (rows=k... )
    /// Here we only need its *column* structure: g columns per block.
    fn box_staircase(k: usize, block_rows: usize, global_rows: usize) -> DenseMatrix<f64> {
        let weights: Vec<f64> = (1..=k).map(|i| i as f64).collect();
        let blocks: Vec<DenseMatrix<f64>> = (0..k)
            .map(|b| {
                let mut blk = staircase_from_weights(&weights, block_rows);
                // Differentiate blocks without disturbing the zero pattern.
                blk.map_inplace(|v| if v == 0.0 { 0.0 } else { v + b as f64 * 0.1 });
                blk
            })
            .collect();
        block_staircase(&blocks, global_rows)
    }

    #[test]
    fn matches_are_valid_on_real_staircase() {
        // 3×3 box crush with r1 = 4, r2 = 3: blocks are 4-row width-3
        // staircases (g = 6 columns), global staircase of width 3 over
        // 5 block columns (3 block rows).
        let a = box_staircase(3, 4, 3);
        let g_cols = 6; // 4 + 3 - 1
        let spec = StaircaseSpec {
            n: a.cols(),
            g: g_cols,
            k: 3,
        };
        let m = hierarchical_matching(spec).unwrap();
        let cg = conflict::conflict_graph(&a);
        m.validate(&cg).unwrap();
    }

    /// Reproduction note: Theorem 2's minimality proof analyzes a *single
    /// subgraph*; Algorithm 1 as printed is pad-optimal per subgraph, but
    /// when the block count `m` is odd it leaves one whole block to
    /// intra-block matching, while an exact (blossom) matching may pair
    /// that block's columns with non-aligned columns of distant blocks and
    /// save up to `g` pads. We therefore assert exact optimality whenever
    /// no block is left unmatched at level 1 (m even, or m ≤ stride cases
    /// handled internally), and bounded sub-optimality (≤ one block's
    /// worth of pads) otherwise. The conversion layer exposes a Blossom
    /// strategy for callers that want the exact optimum.
    #[test]
    fn pad_optimal_vs_blossom_on_staircases() {
        for k in 1..=4usize {
            for block_rows in 1..=4usize {
                for global_rows in 1..=4usize {
                    let a = box_staircase(k, block_rows, global_rows);
                    let g_cols = block_rows + k - 1;
                    let spec = StaircaseSpec {
                        n: a.cols(),
                        g: g_cols,
                        k,
                    };
                    let m = hierarchical_matching(spec).unwrap();
                    let cg = conflict::conflict_graph(&a);
                    m.validate(&cg).unwrap_or_else(|e| {
                        panic!("invalid matching k={k} br={block_rows} gr={global_rows}: {e}")
                    });
                    let opt = optimal_pad_count(&cg);
                    // Replay the greedy level-1 pass to count leftover blocks.
                    let n_blocks = a.cols() / g_cols;
                    let s1 = (n_blocks / 2).max(k);
                    let mut bm = vec![false; n_blocks];
                    for i in 0..n_blocks {
                        if !bm[i] && i + s1 < n_blocks && !bm[i + s1] {
                            bm[i] = true;
                            bm[i + s1] = true;
                        }
                    }
                    let unmatched_blocks = bm.iter().filter(|&&b| !b).count();
                    if unmatched_blocks == 0 {
                        assert_eq!(m.pad_count(), opt, "k={k} br={block_rows} gr={global_rows}");
                    } else {
                        assert!(
                            m.pad_count() <= opt + unmatched_blocks * g_cols,
                            "k={k} br={block_rows} gr={global_rows}: pads {} vs optimal {opt}",
                            m.pad_count()
                        );
                        assert!(m.pad_count() >= opt, "cannot beat the exact optimum");
                    }
                }
            }
        }
    }

    #[test]
    fn pad_count_prediction_matches_materialized() {
        for n_blocks in 1..=6usize {
            for g in 1..=8usize {
                for k in 1..=4usize {
                    let spec = StaircaseSpec {
                        n: n_blocks * g,
                        g,
                        k,
                    };
                    let m = hierarchical_matching(spec).unwrap();
                    let predicted = hierarchical_pad_count(spec).unwrap();
                    assert_eq!(m.pad_count(), predicted, "nb={n_blocks} g={g} k={k}");
                }
            }
        }
    }

    #[test]
    fn even_blocks_perfectly_matched() {
        // m even, k small: every block pairs at level 1 → no pads.
        let spec = StaircaseSpec { n: 24, g: 6, k: 2 };
        let m = hierarchical_matching(spec).unwrap();
        assert_eq!(m.pad_count(), 0);
        assert_eq!(m.pairs.len(), 12);
    }

    #[test]
    fn single_block_internal_matching() {
        // One block of 6 columns, k=3: s2 = 3 → pairs (0,3),(1,4),(2,5).
        let spec = StaircaseSpec { n: 6, g: 6, k: 3 };
        let m = hierarchical_matching(spec).unwrap();
        assert_eq!(m.pad_count(), 0);
        assert!(m.pairs.contains(&(0, 3)));
        assert!(m.pairs.contains(&(1, 4)));
        assert!(m.pairs.contains(&(2, 5)));
    }

    #[test]
    fn wide_k_forces_padding() {
        // One block of 4 columns, k=3: s2 = 3 → (0,3), then 1 and 2 pad.
        let spec = StaircaseSpec { n: 4, g: 4, k: 3 };
        let m = hierarchical_matching(spec).unwrap();
        assert_eq!(m.pad_count(), 2);
    }

    #[test]
    fn spec_errors() {
        assert_eq!(
            hierarchical_matching(StaircaseSpec { n: 5, g: 0, k: 1 }),
            Err(SpecError::ZeroBlock)
        );
        assert_eq!(
            hierarchical_matching(StaircaseSpec { n: 5, g: 2, k: 1 }),
            Err(SpecError::Indivisible { n: 5, g: 2 })
        );
        assert_eq!(
            hierarchical_matching(StaircaseSpec { n: 4, g: 2, k: 0 }),
            Err(SpecError::ZeroWidth)
        );
        assert_eq!(
            hierarchical_matching(StaircaseSpec { n: 0, g: 2, k: 1 }),
            Err(SpecError::Indivisible { n: 0, g: 2 })
        );
    }

    #[test]
    fn theorem2_validity_all_pairs_at_distance_k() {
        // Every matched (non-pad) pair must be ≥ k apart in column index
        // *within the same block* or pair corresponding columns of blocks
        // ≥ k apart — both imply conflict-freedom on staircases.
        let spec = StaircaseSpec { n: 30, g: 6, k: 3 };
        let m = hierarchical_matching(spec).unwrap();
        for &(a, b) in &m.pairs {
            if b == PairList::PAD {
                continue;
            }
            let (ba, bb) = (a / 6, b / 6);
            if ba == bb {
                assert!(b.abs_diff(a) >= 3, "intra-block pair ({a},{b}) too close");
            } else {
                assert!(bb.abs_diff(ba) >= 3, "inter-block pair ({a},{b}) too close");
                assert_eq!(a % 6, b % 6, "inter-block pairs must align columns");
            }
        }
    }
}
