//! A small undirected graph with bitset adjacency.
//!
//! Conflict graphs derived from stencil kernel matrices are tiny (the node
//! count is the crushed `k'` dimension, a few dozen to a few hundred), so a
//! dense bitset adjacency matrix is both the simplest and the fastest
//! representation: conflict queries during matching validation are O(1)
//! word operations.

/// An undirected graph on `n` nodes with bitset adjacency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    words_per_row: usize,
    adj: Vec<u64>,
}

impl Graph {
    /// An edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64).max(1);
        Self {
            n,
            words_per_row,
            adj: vec![0; n * words_per_row],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add the undirected edge `(u, v)`. Self-loops are ignored.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range {}",
            self.n
        );
        if u == v {
            return;
        }
        self.adj[u * self.words_per_row + v / 64] |= 1 << (v % 64);
        self.adj[v * self.words_per_row + u / 64] |= 1 << (u % 64);
    }

    /// `true` iff `(u, v)` is an edge.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        debug_assert!(u < self.n && v < self.n);
        (self.adj[u * self.words_per_row + v / 64] >> (v % 64)) & 1 == 1
    }

    /// Degree of node `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u * self.words_per_row..(u + 1) * self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        (0..self.n).map(|u| self.degree(u)).sum::<usize>() / 2
    }

    /// Neighbors of `u` in ascending order.
    pub fn neighbors(&self, u: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for (wi, &word) in self.adj[u * self.words_per_row..(u + 1) * self.words_per_row]
            .iter()
            .enumerate()
        {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                out.push(wi * 64 + b);
                w &= w - 1;
            }
        }
        out
    }

    /// Adjacency-list view (`Vec` of neighbor `Vec`s), the format consumed
    /// by the blossom algorithm.
    pub fn adjacency_list(&self) -> Vec<Vec<usize>> {
        (0..self.n).map(|u| self.neighbors(u)).collect()
    }

    /// The complement graph (no self-loops).
    pub fn complement(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Node-induced subgraph on `nodes` (renumbered 0..nodes.len() in the
    /// given order).
    pub fn induced(&self, nodes: &[usize]) -> Graph {
        let mut g = Graph::new(nodes.len());
        for (i, &u) in nodes.iter().enumerate() {
            for (j, &v) in nodes.iter().enumerate().skip(i + 1) {
                if self.has_edge(u, v) {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_and_degrees() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 4);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(0), vec![1, 4]);
    }

    #[test]
    fn self_loop_ignored() {
        let mut g = Graph::new(3);
        g.add_edge(1, 1);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn large_graph_word_boundaries() {
        let mut g = Graph::new(130);
        g.add_edge(0, 129);
        g.add_edge(63, 64);
        assert!(g.has_edge(129, 0));
        assert!(g.has_edge(64, 63));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(129), vec![0]);
    }

    #[test]
    fn complement_roundtrip() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let c = g.complement();
        assert!(!c.has_edge(0, 1));
        assert!(c.has_edge(0, 2));
        assert_eq!(c.edge_count(), 4); // K4 has 6 edges; 6 - 2 = 4.
        assert_eq!(c.complement(), g);
    }

    #[test]
    fn induced_subgraph() {
        let mut g = Graph::new(5);
        g.add_edge(0, 2);
        g.add_edge(2, 4);
        g.add_edge(1, 3);
        let s = g.induced(&[0, 2, 4]);
        assert_eq!(s.len(), 3);
        assert!(s.has_edge(0, 1)); // 0-2 in original
        assert!(s.has_edge(1, 2)); // 2-4 in original
        assert!(!s.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 2);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
    }
}
