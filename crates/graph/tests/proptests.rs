//! Property-based tests for conflict graphs and matching algorithms.

use proptest::prelude::*;
use sparstencil_graph::blossom::{matching_size, maximum_matching};
use sparstencil_graph::conflict::{conflict_graph, verify_non_conflict_theorem};
use sparstencil_graph::hierarchical::{hierarchical_matching, StaircaseSpec};
use sparstencil_graph::matching::{min_padding_matching, optimal_pad_count};
use sparstencil_graph::Graph;
use sparstencil_mat::staircase::staircase_from_weights;
use sparstencil_mat::DenseMatrix;

/// Random undirected graph from an edge-probability matrix seed.
fn random_graph(n: usize, edges: &[(usize, usize)]) -> Graph {
    let mut g = Graph::new(n);
    for &(u, v) in edges {
        if u < n && v < n && u != v {
            g.add_edge(u, v);
        }
    }
    g
}

proptest! {
    #[test]
    fn blossom_matching_is_valid(
        n in 1usize..20,
        edges in proptest::collection::vec((0usize..20, 0usize..20), 0..60),
    ) {
        let g = random_graph(n, &edges);
        let mate = maximum_matching(&g);
        for v in 0..n {
            if let Some(u) = mate[v] {
                prop_assert_eq!(mate[u], Some(v));
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn blossom_is_maximal(
        n in 1usize..16,
        edges in proptest::collection::vec((0usize..16, 0usize..16), 0..40),
    ) {
        // A maximum matching is in particular maximal: no edge joins two
        // exposed vertices.
        let g = random_graph(n, &edges);
        let mate = maximum_matching(&g);
        for u in 0..n {
            if mate[u].is_none() {
                for v in g.neighbors(u) {
                    prop_assert!(mate[v].is_some(), "edge ({u},{v}) joins exposed vertices");
                }
            }
        }
    }

    #[test]
    fn min_padding_matching_always_valid(
        n in 1usize..16,
        edges in proptest::collection::vec((0usize..16, 0usize..16), 0..40),
    ) {
        let g = random_graph(n, &edges);
        let m = min_padding_matching(&g);
        prop_assert!(m.validate(&g).is_ok());
        prop_assert_eq!(m.pad_count(), optimal_pad_count(&g));
    }

    #[test]
    fn theorem1_on_random_staircases(
        rows in 1usize..10,
        weights in proptest::collection::vec(-4i32..=4, 1..6),
    ) {
        // Theorem 1: in a width-k staircase, columns ≥ k apart never
        // conflict — regardless of interior zeros in the weights.
        let w: Vec<f64> = weights.iter().map(|&x| f64::from(x)).collect();
        let s = staircase_from_weights(&w, rows);
        let g = conflict_graph(&s);
        prop_assert_eq!(verify_non_conflict_theorem(&g, w.len()), None);
    }

    #[test]
    fn hierarchical_always_valid_on_staircases(
        rows in 1usize..8,
        k in 1usize..5,
        blocks in 1usize..5,
    ) {
        // Build an explicit self-similar staircase and check Algorithm 1's
        // output against its true conflict graph.
        let weights: Vec<f64> = (1..=k).map(|i| i as f64).collect();
        let base = staircase_from_weights(&weights, rows);
        let blks: Vec<DenseMatrix<f64>> = (0..k).map(|_| base.clone()).collect();
        let a = sparstencil_mat::staircase::block_staircase(&blks, blocks);
        let g_cols = rows + k - 1;
        let spec = StaircaseSpec { n: a.cols(), g: g_cols, k };
        let m = hierarchical_matching(spec).unwrap();
        let cg = conflict_graph(&a);
        prop_assert!(m.validate(&cg).is_ok(), "invalid: rows={rows} k={k} blocks={blocks}");
        // Never better than the exact optimum.
        prop_assert!(m.pad_count() >= optimal_pad_count(&cg));
    }

    #[test]
    fn complement_matching_disjoint_from_conflicts(
        n in 2usize..14,
        edges in proptest::collection::vec((0usize..14, 0usize..14), 0..30),
    ) {
        let g = random_graph(n, &edges);
        let m = min_padding_matching(&g);
        for &(a, b) in &m.pairs {
            if b != usize::MAX {
                prop_assert!(!g.has_edge(a, b));
            }
        }
    }

    #[test]
    fn matching_size_halves_cover(
        n in 1usize..16,
        edges in proptest::collection::vec((0usize..16, 0usize..16), 0..40),
    ) {
        let g = random_graph(n, &edges);
        let mate = maximum_matching(&g);
        let covered = mate.iter().flatten().count();
        prop_assert_eq!(covered % 2, 0);
        prop_assert_eq!(matching_size(&mate), covered / 2);
    }
}
