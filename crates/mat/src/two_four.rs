//! The 2:4 compressed operand format of sparse tensor cores.
//!
//! Ampere's sparse MMA consumes matrix `A` in compressed form: for every
//! aligned group of 4 columns only 2 values are stored, plus 2-bit
//! *metadata* indices recording which columns they came from. Groups with
//! fewer than 2 nonzeros (the 0:4 / 1:4 sub-patterns of §2.1) are handled
//! by promoting zero elements to stored slots — multiplying by zero keeps
//! the result correct while satisfying the fixed 2-of-4 storage layout.
//!
//! [`TwoFourMatrix`] reproduces that layout bit-for-bit: values in a
//! `rows × cols/2` matrix and metadata packed 2 bits per stored element,
//! 16 indices per `u32` word, exactly like the hardware's `e` operand.

use crate::dense::DenseMatrix;
use crate::mask::BitMask;
use crate::real::Real;
use crate::{GROUP, KEEP};

/// Error produced when a matrix cannot be 2:4-compressed as-is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Column count is not a multiple of 4; pad first.
    UnalignedColumns {
        /// The offending column count.
        cols: usize,
    },
    /// Some aligned group of 4 holds more than 2 nonzeros.
    GroupTooDense {
        /// Row of the violating group.
        row: usize,
        /// Group index (columns `4*group .. 4*group+4`).
        group: usize,
        /// Number of nonzeros found in the group.
        count: usize,
    },
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::UnalignedColumns { cols } => {
                write!(f, "column count {cols} is not a multiple of {GROUP}")
            }
            CompressError::GroupTooDense { row, group, count } => write!(
                f,
                "row {row}, group {group} holds {count} nonzeros (max {KEEP})"
            ),
        }
    }
}

impl std::error::Error for CompressError {}

/// A matrix stored in hardware 2:4 compressed layout.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoFourMatrix<R: Real> {
    /// Logical (uncompressed) column count; always a multiple of 4.
    logical_cols: usize,
    /// Stored values, `rows × logical_cols/2`.
    values: DenseMatrix<R>,
    /// 2-bit indices, 16 per `u32`, row-major by (row, stored element).
    meta: Vec<u32>,
    meta_words_per_row: usize,
}

impl<R: Real> TwoFourMatrix<R> {
    /// Compress `a`, which must already satisfy the (relaxed) 2:4 pattern:
    /// every aligned 4-group of every row holds at most 2 nonzeros.
    ///
    /// Index selection follows the hardware rule: metadata indices within a
    /// group are strictly increasing. Groups with fewer than 2 nonzeros
    /// promote the lowest-index zero columns not already selected.
    pub fn compress(a: &DenseMatrix<R>) -> Result<Self, CompressError> {
        if !a.cols().is_multiple_of(GROUP) {
            return Err(CompressError::UnalignedColumns { cols: a.cols() });
        }
        let groups = a.cols() / GROUP;
        let stored_cols = groups * KEEP;
        let meta_words_per_row = stored_cols.div_ceil(16);
        let mut values = DenseMatrix::zeros(a.rows(), stored_cols);
        let mut meta = vec![0u32; a.rows() * meta_words_per_row];

        for r in 0..a.rows() {
            for g in 0..groups {
                let base = g * GROUP;
                // Indices of nonzeros within the group, ascending.
                let mut picks = [0usize; KEEP];
                let mut npicks = 0;
                for l in 0..GROUP {
                    if !a.get(r, base + l).is_zero() {
                        if npicks == KEEP {
                            return Err(CompressError::GroupTooDense {
                                row: r,
                                group: g,
                                count: (0..GROUP)
                                    .filter(|&l| !a.get(r, base + l).is_zero())
                                    .count(),
                            });
                        }
                        picks[npicks] = l;
                        npicks += 1;
                    }
                }
                // Promote zeros (lowest unused indices) to fill the 2 slots,
                // keeping indices strictly increasing as hardware requires.
                let mut l = 0;
                while npicks < KEEP {
                    if !picks[..npicks].contains(&l) {
                        picks[npicks] = l;
                        npicks += 1;
                        picks[..npicks].sort_unstable();
                    }
                    l += 1;
                }
                for (slot, &pick) in picks.iter().enumerate() {
                    let stored_idx = g * KEEP + slot;
                    values.set(r, stored_idx, a.get(r, base + pick));
                    let word = r * meta_words_per_row + stored_idx / 16;
                    let shift = (stored_idx % 16) * 2;
                    meta[word] |= (pick as u32) << shift;
                }
            }
        }

        Ok(Self {
            logical_cols: a.cols(),
            values,
            meta,
            meta_words_per_row,
        })
    }

    /// Compress after zero-padding the column count up to a multiple of 4.
    pub fn compress_padded(a: &DenseMatrix<R>) -> Result<Self, CompressError> {
        let padded_cols = a.cols().div_ceil(GROUP) * GROUP;
        if padded_cols == a.cols() {
            Self::compress(a)
        } else {
            Self::compress(&a.pad_to(a.rows(), padded_cols))
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.values.rows()
    }

    /// Logical (uncompressed) column count.
    pub fn logical_cols(&self) -> usize {
        self.logical_cols
    }

    /// Stored (compressed) column count — half the logical count.
    pub fn stored_cols(&self) -> usize {
        self.values.cols()
    }

    /// The stored value matrix (`rows × logical_cols/2`).
    pub fn values(&self) -> &DenseMatrix<R> {
        &self.values
    }

    /// Metadata size in bytes (the paper's "Metadata" preprocessing
    /// artifact, Figure 8).
    pub fn metadata_bytes(&self) -> usize {
        self.meta.len() * 4
    }

    /// Metadata index of stored element `(r, stored_idx)` within its group.
    #[inline]
    pub fn meta_index(&self, r: usize, stored_idx: usize) -> usize {
        let word = self.meta[r * self.meta_words_per_row + stored_idx / 16];
        ((word >> ((stored_idx % 16) * 2)) & 0b11) as usize
    }

    /// Logical column of stored element `(r, stored_idx)`.
    #[inline]
    pub fn logical_col(&self, r: usize, stored_idx: usize) -> usize {
        (stored_idx / KEEP) * GROUP + self.meta_index(r, stored_idx)
    }

    /// Reconstruct the logical (uncompressed) matrix.
    pub fn decompress(&self) -> DenseMatrix<R> {
        let mut out = DenseMatrix::zeros(self.rows(), self.logical_cols);
        for r in 0..self.rows() {
            for s in 0..self.stored_cols() {
                let c = self.logical_col(r, s);
                let v = self.values.get(r, s);
                if !v.is_zero() {
                    out.set(r, c, v);
                }
            }
        }
        out
    }

    /// Sparse × dense product `C = (A ⊙ M) × B` using only the stored
    /// values and metadata — the arithmetic a sparse tensor core performs.
    ///
    /// # Panics
    /// Panics if `b.rows() != logical_cols`.
    pub fn spmm(&self, b: &DenseMatrix<R>) -> DenseMatrix<R> {
        assert_eq!(
            b.rows(),
            self.logical_cols,
            "spmm dimension mismatch: logical k={} vs B rows={}",
            self.logical_cols,
            b.rows()
        );
        let n = b.cols();
        let mut c = DenseMatrix::zeros(self.rows(), n);
        for r in 0..self.rows() {
            let c_row_ptr: *mut R = c.row_mut(r).as_mut_ptr();
            for s in 0..self.stored_cols() {
                let v = self.values.get(r, s);
                if v.is_zero() {
                    continue;
                }
                let k = self.logical_col(r, s);
                let b_row = b.row(k);
                // Safety: c_row_ptr points at row r of c which lives for the
                // whole loop body; no aliasing with b.
                let c_row = unsafe { std::slice::from_raw_parts_mut(c_row_ptr, n) };
                for j in 0..n {
                    c_row[j] += v * b_row[j];
                }
            }
        }
        c
    }

    /// The nonzero mask of the logical matrix.
    pub fn mask(&self) -> BitMask {
        BitMask::from_matrix(&self.decompress())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm;

    /// A 2:4-compatible 2×8 matrix exercising 2:4, 1:4 and 0:4 groups.
    fn sample() -> DenseMatrix<f64> {
        let mut a = DenseMatrix::zeros(2, 8);
        // Row 0: group 0 has 2 nnz (cols 1,3); group 1 has 1 nnz (col 6).
        a.set(0, 1, 2.0);
        a.set(0, 3, -1.0);
        a.set(0, 6, 4.0);
        // Row 1: group 0 empty; group 1 has 2 nnz (cols 4,7).
        a.set(1, 4, 5.0);
        a.set(1, 7, 0.5);
        a
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let a = sample();
        let c = TwoFourMatrix::compress(&a).unwrap();
        assert_eq!(c.decompress(), a);
        assert_eq!(c.stored_cols(), 4);
        assert_eq!(c.logical_cols(), 8);
    }

    #[test]
    fn metadata_indices_ascending() {
        let a = sample();
        let c = TwoFourMatrix::compress(&a).unwrap();
        for r in 0..c.rows() {
            for g in 0..c.stored_cols() / KEEP {
                let i0 = c.meta_index(r, g * KEEP);
                let i1 = c.meta_index(r, g * KEEP + 1);
                assert!(i0 < i1, "indices must be strictly increasing: {i0} {i1}");
            }
        }
    }

    #[test]
    fn dense_group_rejected() {
        let mut a = DenseMatrix::<f32>::zeros(1, 4);
        for c in 0..3 {
            a.set(0, c, 1.0);
        }
        match TwoFourMatrix::compress(&a) {
            Err(CompressError::GroupTooDense {
                row: 0,
                group: 0,
                count: 3,
            }) => {}
            other => panic!("expected GroupTooDense, got {other:?}"),
        }
    }

    #[test]
    fn unaligned_columns_rejected() {
        let a = DenseMatrix::<f32>::zeros(1, 6);
        assert_eq!(
            TwoFourMatrix::compress(&a),
            Err(CompressError::UnalignedColumns { cols: 6 })
        );
    }

    #[test]
    fn compress_padded_accepts_unaligned() {
        let mut a = DenseMatrix::<f64>::zeros(1, 6);
        a.set(0, 5, 3.0);
        let c = TwoFourMatrix::compress_padded(&a).unwrap();
        assert_eq!(c.logical_cols(), 8);
        assert_eq!(c.decompress().get(0, 5), 3.0);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let a = sample();
        let b = DenseMatrix::from_fn(8, 5, |r, c| ((r * 5 + c * 3) % 7) as f64 - 3.0);
        let c24 = TwoFourMatrix::compress(&a).unwrap();
        assert_eq!(c24.spmm(&b), gemm::matmul(&a, &b));
    }

    #[test]
    fn spmm_dimension_mismatch_panics() {
        let a = sample();
        let c24 = TwoFourMatrix::compress(&a).unwrap();
        let b = DenseMatrix::<f64>::zeros(4, 2);
        assert!(std::panic::catch_unwind(move || c24.spmm(&b)).is_err());
    }

    #[test]
    fn all_zero_matrix_compresses() {
        let a = DenseMatrix::<f64>::zeros(3, 16);
        let c = TwoFourMatrix::compress(&a).unwrap();
        assert_eq!(c.decompress(), a);
        // Promoted zero slots must still have valid ascending metadata.
        // 16 logical columns → 4 groups of 4.
        for r in 0..3 {
            for g in 0..4 {
                assert!(c.meta_index(r, g * 2) < c.meta_index(r, g * 2 + 1));
            }
        }
    }

    #[test]
    fn metadata_bytes_accounting() {
        // 32 logical cols → 16 stored → 1 u32 word per row.
        let a = DenseMatrix::<f32>::zeros(4, 32);
        let c = TwoFourMatrix::compress(&a).unwrap();
        assert_eq!(c.metadata_bytes(), 4 * 4);
    }

    #[test]
    fn mask_is_two_four_compatible() {
        let a = sample();
        let c = TwoFourMatrix::compress(&a).unwrap();
        assert!(c.mask().is_two_four_compatible());
    }
}
