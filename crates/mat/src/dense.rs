//! Row-major dense matrices over [`Real`] scalars.
//!
//! This is the workhorse container of the pipeline: flattened stencil
//! matrices, crushed kernel matrices, fragment tiles and verification
//! buffers are all `DenseMatrix`. The type is deliberately simple — a
//! `Vec<R>` plus dimensions — because the performance-critical paths in the
//! simulator operate on raw row slices.

use crate::real::Real;

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<R: Real> {
    rows: usize,
    cols: usize,
    data: Vec<R>,
}

impl<R: Real> DenseMatrix<R> {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![R::ZERO; rows * cols],
        }
    }

    /// Build from a closure `f(row, col) -> value`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> R) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<R>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { R::ONE } else { R::ZERO })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> R {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: R) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[R] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [R] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow the full row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[R] {
        &self.data
    }

    /// Mutably borrow the full row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [R] {
        &mut self.data
    }

    /// Extract column `c` as an owned vector.
    pub fn col(&self, c: usize) -> Vec<R> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Number of exactly-zero entries.
    pub fn zero_count(&self) -> usize {
        self.data.iter().filter(|v| v.is_zero()).count()
    }

    /// Number of nonzero entries.
    pub fn nnz(&self) -> usize {
        self.data.len() - self.zero_count()
    }

    /// Fraction of entries that are zero (`0.0` for an empty matrix).
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.zero_count() as f64 / self.data.len() as f64
    }

    /// `true` iff column `c` is entirely zero.
    pub fn col_is_zero(&self, c: usize) -> bool {
        (0..self.rows).all(|r| self.get(r, c).is_zero())
    }

    /// Copy of the matrix padded with zeros to `new_rows × new_cols`.
    ///
    /// # Panics
    /// Panics if the new shape is smaller than the current one.
    pub fn pad_to(&self, new_rows: usize, new_cols: usize) -> Self {
        assert!(
            new_rows >= self.rows && new_cols >= self.cols,
            "pad_to target {new_rows}x{new_cols} smaller than {}x{}",
            self.rows,
            self.cols
        );
        let mut out = Self::zeros(new_rows, new_cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
        }
        out
    }

    /// Extract the `rows × cols` block whose top-left corner is `(r0, c0)`.
    /// Out-of-range elements are zero-filled, so blocks may overhang the
    /// matrix edge (used when tiling to fragment boundaries).
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Self {
        Self::from_fn(rows, cols, |r, c| {
            let (rr, cc) = (r0 + r, c0 + c);
            if rr < self.rows && cc < self.cols {
                self.get(rr, cc)
            } else {
                R::ZERO
            }
        })
    }

    /// Overwrite the block at `(r0, c0)` with `src`, ignoring any part of
    /// `src` that would fall outside `self`.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &Self) {
        for r in 0..src.rows {
            if r0 + r >= self.rows {
                break;
            }
            for c in 0..src.cols {
                if c0 + c >= self.cols {
                    break;
                }
                self.set(r0 + r, c0 + c, src.get(r, c));
            }
        }
    }

    /// Select columns in the given order into a new matrix. Indices equal to
    /// `usize::MAX` produce zero columns (used for zero-column padding in
    /// the sparsity conversion).
    pub fn select_cols(&self, order: &[usize]) -> Self {
        Self::from_fn(self.rows, order.len(), |r, i| {
            let c = order[i];
            if c == usize::MAX {
                R::ZERO
            } else {
                self.get(r, c)
            }
        })
    }

    /// Select rows in the given order into a new matrix. Indices equal to
    /// `usize::MAX` produce zero rows.
    pub fn select_rows(&self, order: &[usize]) -> Self {
        Self::from_fn(order.len(), self.cols, |i, c| {
            let r = order[i];
            if r == usize::MAX {
                R::ZERO
            } else {
                self.get(r, c)
            }
        })
    }

    /// Largest absolute difference against another matrix of the same shape.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Largest relative difference `|a-b| / max(1, |a|, |b|)` against
    /// another matrix of the same shape.
    pub fn max_rel_diff(&self, other: &Self) -> f64 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_rel_diff"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| {
                let (a, b) = (a.to_f64(), b.to_f64());
                (a - b).abs() / 1.0_f64.max(a.abs()).max(b.abs())
            })
            .fold(0.0, f64::max)
    }

    /// Set every element to `v` (used to reset reusable accumulator
    /// fragments without reallocating).
    #[inline]
    pub fn fill(&mut self, v: R) {
        self.data.fill(v);
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(R) -> R) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix<f64> {
        DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64)
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 3), 11.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(m.col(2), vec![2.0, 6.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        let _ = DenseMatrix::from_vec(2, 2, vec![1.0f32, 2.0, 3.0]);
    }

    #[test]
    fn identity_is_identity() {
        let i = DenseMatrix::<f32>::identity(4);
        assert_eq!(i.nnz(), 4);
        for r in 0..4 {
            assert_eq!(i.get(r, r), 1.0);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(3, 2), m.get(2, 3));
    }

    #[test]
    fn sparsity_statistics() {
        let mut m = DenseMatrix::<f64>::zeros(2, 4);
        assert_eq!(m.sparsity(), 1.0);
        m.set(0, 0, 1.0);
        m.set(1, 3, 2.0);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.zero_count(), 6);
        assert!((m.sparsity() - 0.75).abs() < 1e-12);
        assert!(m.col_is_zero(1));
        assert!(!m.col_is_zero(0));
    }

    #[test]
    fn pad_preserves_and_zero_fills() {
        let m = sample();
        let p = m.pad_to(5, 6);
        assert_eq!(p.shape(), (5, 6));
        assert_eq!(p.get(2, 3), 11.0);
        assert_eq!(p.get(4, 5), 0.0);
        assert_eq!(p.get(2, 4), 0.0);
    }

    #[test]
    #[should_panic(expected = "smaller")]
    fn pad_smaller_panics() {
        sample().pad_to(2, 4);
    }

    #[test]
    fn block_overhang_is_zero_filled() {
        let m = sample();
        let b = m.block(2, 3, 2, 2);
        assert_eq!(b.get(0, 0), 11.0);
        assert_eq!(b.get(0, 1), 0.0);
        assert_eq!(b.get(1, 0), 0.0);
    }

    #[test]
    fn set_block_clips() {
        let mut m = DenseMatrix::<f64>::zeros(3, 3);
        let src = DenseMatrix::from_fn(2, 2, |_, _| 7.0);
        m.set_block(2, 2, &src);
        assert_eq!(m.get(2, 2), 7.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn select_cols_with_zero_padding() {
        let m = sample();
        let s = m.select_cols(&[3, usize::MAX, 0]);
        assert_eq!(s.cols(), 3);
        assert_eq!(s.get(0, 0), 3.0);
        assert!(s.col_is_zero(1));
        assert_eq!(s.get(1, 2), 4.0);
    }

    #[test]
    fn select_rows_with_zero_padding() {
        let m = sample();
        let s = m.select_rows(&[2, usize::MAX]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), m.row(2));
        assert!(s.row(1).iter().all(|v| *v == 0.0));
    }

    #[test]
    fn diff_metrics() {
        let a = sample();
        let mut b = a.clone();
        b.set(1, 1, 5.5);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
        assert!(a.max_rel_diff(&a) == 0.0);
    }

    #[test]
    fn map_inplace_applies() {
        let mut m = sample();
        m.map_inplace(|v| v * 2.0);
        assert_eq!(m.get(2, 3), 22.0);
    }

    #[test]
    fn fill_overwrites_everything() {
        let mut m = sample();
        m.fill(1.5);
        assert!(m.as_slice().iter().all(|&v| v == 1.5));
    }
}
