//! Software emulation of tensor-core operand precisions.
//!
//! Sparse tensor cores on Ampere accept FP16 / BF16 / TF32 operands and
//! accumulate in FP32 (§2.1 of the paper). This environment has no GPU, so
//! we reproduce the *numerics* in software: operands are rounded to the
//! target format with IEEE round-to-nearest-even before every fragment
//! operation, while all arithmetic runs in `f32`/`f64`.
//!
//! The FP16 conversion here is a complete binary16 implementation
//! (normals, subnormals, overflow-to-infinity, NaN preservation) rather
//! than a truncation, because stencil weights are often tiny (e.g. `1/90`
//! coefficients of high-order finite differences) and correct rounding is
//! what keeps the FP16 pipeline within the verification tolerances used by
//! the test-suite.

/// Operand precision of a (simulated) tensor-core fragment operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Precision {
    /// IEEE binary16 operands, FP32 accumulate (the paper's main mode).
    Fp16,
    /// bfloat16 operands, FP32 accumulate.
    Bf16,
    /// TF32 (19-bit) operands, FP32 accumulate.
    Tf32,
    /// IEEE binary32 operands (CUDA-core FFMA path).
    Fp32,
    /// IEEE binary64 operands (dense-TCU FP64 path of Table 3).
    Fp64,
}

impl Precision {
    /// Bytes of storage per element in this precision.
    pub fn bytes(self) -> usize {
        match self {
            Precision::Fp16 | Precision::Bf16 => 2,
            Precision::Tf32 | Precision::Fp32 => 4,
            Precision::Fp64 => 8,
        }
    }

    /// Human-readable name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            Precision::Fp16 => "FP16",
            Precision::Bf16 => "BF16",
            Precision::Tf32 => "TF32",
            Precision::Fp32 => "FP32",
            Precision::Fp64 => "FP64",
        }
    }

    /// Round an `f64` value through this precision's storage format.
    pub fn round_f64(self, v: f64) -> f64 {
        match self {
            Precision::Fp16 => f16_to_f32(f32_to_f16(v as f32)) as f64,
            Precision::Bf16 => bf16_round(v as f32) as f64,
            Precision::Tf32 => tf32_round(v as f32) as f64,
            Precision::Fp32 => v as f32 as f64,
            Precision::Fp64 => v,
        }
    }

    /// Round an `f32` value through this precision's storage format.
    /// `Fp64` is the identity at `f32` width.
    #[inline]
    pub fn round_f32(self, v: f32) -> f32 {
        match self {
            Precision::Fp16 => fp16_round(v),
            Precision::Bf16 => bf16_round(v),
            Precision::Tf32 => tf32_round(v),
            Precision::Fp32 | Precision::Fp64 => v,
        }
    }
}

/// Round an `f32` to the nearest FP16-representable value, staying in
/// `f32` format. Bit-identical to `f16_to_f32(f32_to_f16(v))` for every
/// input (verified exhaustively over all 2³² bit patterns), but with a
/// branch-light fast path for the f16 normal range — this sits on the
/// executor's per-step re-quantization path, where the full
/// convert-and-back round trip dominated.
#[inline]
pub fn fp16_round(v: f32) -> f32 {
    let bits = v.to_bits();
    let exp = (bits >> 23) & 0xff;
    // Exponents 113..=141 cover values whose rounded result is a normal
    // f16 (rounding never decreases the exponent; carry from 141 lands
    // on 2^15, still representable). Outside — zeros, f16 subnormals,
    // overflow to infinity, NaNs — defer to the exact conversion pair.
    if (113..=141).contains(&exp) {
        // Round-to-nearest-even on the low 13 mantissa bits, performed
        // directly on the f32 representation.
        let rounded = (bits + 0x0FFF + ((bits >> 13) & 1)) & !0x1FFF;
        f32::from_bits(rounded)
    } else {
        f16_to_f32(f32_to_f16(v))
    }
}

/// Convert an `f32` to IEEE binary16 bits with round-to-nearest-even.
pub fn f32_to_f16(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: preserve NaN payload top bits, force quiet bit.
        return if mant == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00 | ((mant >> 13) as u16 & 0x3ff)
        };
    }

    // Re-bias from 127 to 15.
    let unbiased = exp - 127;
    let half_exp = unbiased + 15;

    if half_exp >= 0x1f {
        // Overflow → infinity.
        return sign | 0x7c00;
    }

    if half_exp <= 0 {
        // Subnormal half (or underflow to zero).
        if half_exp < -10 {
            return sign; // Rounds to ±0.
        }
        // Implicit leading one becomes explicit.
        let full_mant = mant | 0x0080_0000;
        let shift = (14 - half_exp) as u32; // 14..=24
        let half_mant = (full_mant >> shift) as u16;
        // Round-to-nearest-even on the shifted-out bits.
        let rem = full_mant & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded = match rem.cmp(&halfway) {
            std::cmp::Ordering::Greater => half_mant + 1,
            std::cmp::Ordering::Equal => half_mant + (half_mant & 1),
            std::cmp::Ordering::Less => half_mant,
        };
        return sign | rounded;
    }

    // Normal half.
    let half_mant = (mant >> 13) as u16;
    let base = sign | ((half_exp as u16) << 10) | half_mant;
    let rem = mant & 0x1fff;
    match rem.cmp(&0x1000) {
        std::cmp::Ordering::Greater => base + 1, // May carry into exponent: correct (rounds up to next binade / inf).
        std::cmp::Ordering::Equal => base + (base & 1),
        std::cmp::Ordering::Less => base,
    }
}

/// Convert IEEE binary16 bits to `f32` (exact).
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mant = (bits & 0x3ff) as u32;

    let out = if exp == 0 {
        if mant == 0 {
            sign // ±0
        } else {
            // Subnormal: value = mant * 2^-24 = (mant / 2^10) * 2^-14.
            // Normalize: after s left-shifts the value is 1.f × 2^(-14-s).
            let mut m = mant;
            let mut e = -14i32;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x3ff;
            sign | (((e + 127) as u32) << 23) | (m << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13) // Inf / NaN
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Round an `f32` to bfloat16 precision (truncate mantissa to 7 bits, RNE).
pub fn bf16_round(v: f32) -> f32 {
    let bits = v.to_bits();
    if v.is_nan() {
        return v;
    }
    let rem = bits & 0xffff;
    let base = bits & 0xffff_0000;
    let rounded = match rem.cmp(&0x8000) {
        std::cmp::Ordering::Greater => base.wrapping_add(0x1_0000),
        std::cmp::Ordering::Equal => base.wrapping_add(base & 0x1_0000),
        std::cmp::Ordering::Less => base,
    };
    f32::from_bits(rounded)
}

/// Round an `f32` to TF32 precision (10-bit mantissa, RNE), the format used
/// by Ampere tensor cores for FP32 inputs.
pub fn tf32_round(v: f32) -> f32 {
    let bits = v.to_bits();
    if v.is_nan() {
        return v;
    }
    // Keep 10 mantissa bits: drop the low 13 of the 23-bit mantissa.
    let rem = bits & 0x1fff;
    let base = bits & !0x1fff;
    let rounded = match rem.cmp(&0x1000) {
        std::cmp::Ordering::Greater => base.wrapping_add(0x2000),
        std::cmp::Ordering::Equal => base.wrapping_add(base & 0x2000),
        std::cmp::Ordering::Less => base,
    };
    f32::from_bits(rounded)
}

/// Quantize a whole slice in place through `precision`.
pub fn quantize_slice_f32(data: &mut [f32], precision: Precision) {
    for v in data.iter_mut() {
        *v = precision.round_f32(*v);
    }
}

/// Relative-error tolerance appropriate for verifying a pipeline that ran
/// its operands through `precision`. Used by tests and examples.
pub fn verify_tolerance(precision: Precision) -> f64 {
    match precision {
        Precision::Fp16 => 5e-2,
        Precision::Bf16 => 1e-1,
        Precision::Tf32 => 1e-3,
        Precision::Fp32 => 1e-5,
        Precision::Fp64 => 1e-12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_exact_values() {
        // Values exactly representable in binary16 must round-trip.
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            1024.0,
            65504.0,
            -65504.0,
            0.000061035156,
        ] {
            let rt = f16_to_f32(f32_to_f16(v));
            assert_eq!(rt, v, "roundtrip failed for {v}");
        }
    }

    #[test]
    fn f16_overflow_to_infinity() {
        assert_eq!(f16_to_f32(f32_to_f16(1e6)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(-1e6)), f32::NEG_INFINITY);
        // 65520 is the halfway point between 65504 (max half) and "65536";
        // RNE rounds it up, i.e. to infinity.
        assert_eq!(f16_to_f32(f32_to_f16(65520.0)), f32::INFINITY);
        // Just below halfway stays finite.
        assert_eq!(f16_to_f32(f32_to_f16(65519.0)), 65504.0);
    }

    #[test]
    fn f16_subnormals() {
        let min_sub = 5.960_464_5e-8; // 2^-24
        let rt = f16_to_f32(f32_to_f16(min_sub));
        assert!((rt - min_sub).abs() < 1e-12);
        // Half of the smallest subnormal rounds to zero (RNE ties-to-even).
        assert_eq!(f16_to_f32(f32_to_f16(min_sub / 2.0)), 0.0);
        // Slightly more than half rounds up to the smallest subnormal.
        let rt2 = f16_to_f32(f32_to_f16(min_sub * 0.51));
        assert!(rt2 > 0.0);
    }

    #[test]
    fn f16_nan_preserved() {
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next half;
        // RNE keeps the even mantissa, i.e. 1.0.
        let halfway = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(f16_to_f32(f32_to_f16(halfway)), 1.0);
        // 1.0 + 3*2^-11 is halfway between odd and even+1 → rounds up.
        let halfway_up = 1.0 + 3.0 * 2.0_f32.powi(-11);
        let expect = 1.0 + 2.0 * 2.0_f32.powi(-10);
        assert_eq!(f16_to_f32(f32_to_f16(halfway_up)), expect);
    }

    #[test]
    fn tf32_keeps_10_bits() {
        let v = 1.0 + 2.0_f32.powi(-10);
        assert_eq!(tf32_round(v), v, "2^-10 must survive TF32");
        let w = 1.0 + 2.0_f32.powi(-12);
        assert_eq!(tf32_round(w), 1.0, "2^-12 must be rounded away");
    }

    #[test]
    fn bf16_keeps_7_bits() {
        let v = 1.0 + 2.0_f32.powi(-7);
        assert_eq!(bf16_round(v), v);
        let w = 1.0 + 2.0_f32.powi(-9);
        assert_eq!(bf16_round(w), 1.0);
    }

    #[test]
    fn precision_bytes_and_names() {
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Tf32.bytes(), 4);
        assert_eq!(Precision::Fp64.bytes(), 8);
        assert_eq!(Precision::Fp16.name(), "FP16");
    }

    #[test]
    fn fp16_round_matches_conversion_pair() {
        // The fast path was verified exhaustively over all 2³² bit
        // patterns offline; this test pins the interesting subspace so
        // any edit to the magic constants fails immediately: every
        // low-mantissa pattern (the RNE tie/carry space) across the
        // fast-path exponent boundaries (112/113, 141/142), extremes,
        // and NaN/Inf/subnormal exponents — both signs — plus a
        // deterministic pseudo-random sample of full-width patterns.
        let check = |bits: u32| {
            let v = f32::from_bits(bits);
            let fast = fp16_round(v);
            let slow = f16_to_f32(f32_to_f16(v));
            assert!(
                fast.to_bits() == slow.to_bits() || (fast.is_nan() && slow.is_nan()),
                "fp16_round mismatch at bits {bits:#010x}: fast {:#010x} slow {:#010x}",
                fast.to_bits(),
                slow.to_bits()
            );
        };
        for exp in [
            0u32, 1, 100, 111, 112, 113, 114, 127, 140, 141, 142, 143, 254, 255,
        ] {
            for mant_low in 0..(1u32 << 13) {
                for mant_high in [0u32, 0x155, 0x3ff] {
                    for sign in [0u32, 1] {
                        check((sign << 31) | (exp << 23) | (mant_high << 13) | mant_low);
                    }
                }
            }
        }
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..1_000_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            check((state >> 32) as u32);
        }
    }

    #[test]
    fn round_f64_path_matches_f32_path() {
        for v in [0.1f32, 2.5, -0.007, 123.456] {
            let a = Precision::Fp16.round_f32(v) as f64;
            let b = Precision::Fp16.round_f64(v as f64);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn quantize_slice_applies_everywhere() {
        let mut data = vec![0.1f32; 16];
        quantize_slice_f32(&mut data, Precision::Fp16);
        let q = Precision::Fp16.round_f32(0.1);
        assert!(data.iter().all(|&v| v == q));
    }
}
