//! Scalar abstraction over the floating-point types used by the pipeline.
//!
//! SparStencil operates in FP16 (emulated, FP32 accumulate), TF32 and FP64.
//! Rather than threading three storage types through the code base, the
//! pipeline is generic over [`Real`] (`f32` or `f64`) and precision-specific
//! *rounding* is applied explicitly via [`crate::half`]. This mirrors the
//! hardware: tensor-core inputs are rounded to the operand precision while
//! arithmetic accumulates at higher precision.

use crate::half::Precision;
use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar usable throughout the SparStencil pipeline.
///
/// Implemented for `f32` and `f64`. The trait is deliberately small: the
/// numeric kernels only ever need ring operations, comparisons and
/// conversions to/from `f64` for statistics.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossless (for the value range we use) conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Round through `precision`'s storage format at native width.
    /// Equivalent to `from_f64(precision.round_f64(self.to_f64()))` but
    /// without the `f64` round trip for `f32` (the rounding functions
    /// narrow to `f32` first either way, so the results are identical
    /// bit for bit).
    fn round_to(self, precision: Precision) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `true` iff the value is exactly zero (used for sparsity masks).
    #[inline]
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }
    /// `true` iff the value is neither NaN nor infinite (used by the
    /// executor's numeric-health scan and input validation).
    fn is_finite(self) -> bool;
    /// Maximum of two values (NaN-free inputs assumed).
    #[inline]
    fn max(self, other: Self) -> Self {
        if self > other {
            self
        } else {
            other
        }
    }
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn round_to(self, precision: Precision) -> Self {
        precision.round_f32(self)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn round_to(self, precision: Precision) -> Self {
        precision.round_f64(self)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<R: Real>(v: f64) -> f64 {
        R::from_f64(v).to_f64()
    }

    #[test]
    fn f64_roundtrip_is_exact() {
        for v in [0.0, 1.0, -2.5, 1e-30, 1e30, 0.1] {
            assert_eq!(roundtrip::<f64>(v), v);
        }
    }

    #[test]
    fn f32_roundtrip_small_integers_exact() {
        for v in [0.0, 1.0, -2.0, 1024.0, -65504.0] {
            assert_eq!(roundtrip::<f32>(v), v);
        }
    }

    #[test]
    fn zero_one_constants() {
        assert!(f32::ZERO.is_zero());
        assert!(!f32::ONE.is_zero());
        assert!(f64::ZERO.is_zero());
        assert_eq!(f64::ONE + f64::ONE, 2.0);
    }

    #[test]
    fn round_to_matches_f64_path() {
        for v in [0.1f32, -3.75, 1234.5, 1e-5, 65000.0] {
            for p in [
                Precision::Fp16,
                Precision::Bf16,
                Precision::Tf32,
                Precision::Fp32,
                Precision::Fp64,
            ] {
                assert_eq!(v.round_to(p), f32::from_f64(p.round_f64(v as f64)));
                let d = v as f64;
                assert_eq!(d.round_to(p), p.round_f64(d));
            }
        }
    }

    #[test]
    fn finiteness_classification() {
        assert!(1.5f32.is_finite() && 0.0f64.is_finite());
        assert!(!f32::NAN.is_finite());
        assert!(!f32::INFINITY.is_finite());
        assert!(!f64::NEG_INFINITY.is_finite());
    }

    #[test]
    fn abs_and_max() {
        assert_eq!((-3.5f32).abs(), 3.5);
        assert_eq!(Real::max(2.0f64, -5.0), 2.0);
        assert_eq!(Real::max(-2.0f32, 5.0), 5.0);
    }
}
