//! # sparstencil-mat — matrix substrate for SparStencil
//!
//! This crate provides every matrix-shaped building block the SparStencil
//! pipeline needs, independent of stencils and of the TCU simulator:
//!
//! - [`DenseMatrix`] — row-major dense matrices over [`Real`] scalars
//!   (`f32` / `f64`) with views, block extraction and padding helpers.
//! - [`gemm`] — reference, blocked and Rayon-parallel matrix products used
//!   to validate the fragment engine.
//! - [`half`] — software emulation of IEEE binary16 (FP16) and TF32
//!   round-to-nearest-even, matching the input quantization performed by
//!   real tensor cores (inputs rounded, accumulation in FP32).
//! - [`BitMask`] — binary sparsity masks with the 2:4 validity predicate of
//!   the paper's Equation (2) and sparsity statistics (residual sparsity,
//!   clustered-sparsity measure).
//! - [`TwoFourMatrix`] — the compressed operand format consumed by sparse
//!   tensor cores: a value matrix of width `k/2` plus 2-bit-per-element
//!   metadata selecting which 2 of every 4 columns are stored, including
//!   the sub-pattern (0:4, 1:4) promotion rule of §2.1.
//! - [`staircase`] — constructors and checkers for the *k-staircase*
//!   property (Definition 4) and the self-similar block staircase produced
//!   by Duplicates Crush.
//! - [`Permutation`] — column/row permutations and the Permutation
//!   Invariant Transformation (PIT) of Equation (5).
//!
//! Everything here is pure CPU math; no hardware modelling. The TCU
//! simulator (`sparstencil-tcu`) consumes these types.

#![warn(missing_docs)]

pub mod dense;
pub mod gemm;
pub mod half;
pub mod mask;
pub mod permute;
pub mod real;
pub mod staircase;
pub mod two_four;

pub use dense::DenseMatrix;
pub use mask::BitMask;
pub use permute::Permutation;
pub use real::Real;
pub use two_four::TwoFourMatrix;

/// Number of columns in one structured-sparsity group (the "4" of 2:4).
pub const GROUP: usize = 4;
/// Number of elements kept per group (the "2" of 2:4).
pub const KEEP: usize = 2;
