//! Reference matrix products.
//!
//! These are the ground-truth kernels the fragment engine and the whole
//! SparStencil pipeline are validated against. Three variants are provided:
//! a textbook triple loop, a cache-blocked version, and a Rayon row-parallel
//! version used by the larger integration tests. All three must agree
//! exactly for `f64` inputs whose products are exactly representable, and
//! to within accumulation-order tolerance otherwise (the parallel version
//! uses the same per-row loop order as the serial ones, so in practice they
//! agree bit-for-bit).

use crate::dense::DenseMatrix;
use crate::real::Real;
use rayon::prelude::*;

/// `C = A × B` with the textbook i-k-j loop (good spatial locality on
/// row-major data).
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul<R: Real>(a: &DenseMatrix<R>, b: &DenseMatrix<R>) -> DenseMatrix<R> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul dimension mismatch: {}x{} times {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = DenseMatrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        for (kk, &aik) in a_row.iter().enumerate().take(k) {
            if aik.is_zero() {
                continue;
            }
            let b_row = b.row(kk);
            let c_row = c.row_mut(i);
            for j in 0..n {
                c_row[j] += aik * b_row[j];
            }
        }
    }
    c
}

/// Cache-blocked `C = A × B` with `block`-sized tiles along every dimension.
pub fn matmul_blocked<R: Real>(
    a: &DenseMatrix<R>,
    b: &DenseMatrix<R>,
    block: usize,
) -> DenseMatrix<R> {
    assert!(block > 0, "block size must be positive");
    assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = DenseMatrix::zeros(m, n);
    for i0 in (0..m).step_by(block) {
        for k0 in (0..k).step_by(block) {
            for j0 in (0..n).step_by(block) {
                let i1 = (i0 + block).min(m);
                let k1 = (k0 + block).min(k);
                let j1 = (j0 + block).min(n);
                for i in i0..i1 {
                    for kk in k0..k1 {
                        let aik = a.get(i, kk);
                        if aik.is_zero() {
                            continue;
                        }
                        let b_row = &b.row(kk)[j0..j1];
                        let c_row = &mut c.row_mut(i)[j0..j1];
                        for (cj, bj) in c_row.iter_mut().zip(b_row.iter()) {
                            *cj += aik * *bj;
                        }
                    }
                }
            }
        }
    }
    c
}

/// Rayon row-parallel `C = A × B`. Per-row arithmetic order matches
/// [`matmul`], so results agree bit-for-bit with the serial version.
/// Workers write directly into disjoint row chunks of the output — no
/// intermediate per-row buffers are allocated.
pub fn matmul_parallel<R: Real>(a: &DenseMatrix<R>, b: &DenseMatrix<R>) -> DenseMatrix<R> {
    assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = DenseMatrix::zeros(m, n);
    if n == 0 {
        return c;
    }
    c.as_mut_slice()
        .par_chunks_mut(n)
        .enumerate()
        .for_each(|(i, c_row)| {
            let a_row = a.row(i);
            for (kk, &aik) in a_row.iter().enumerate().take(k) {
                if aik.is_zero() {
                    continue;
                }
                let b_row = b.row(kk);
                for j in 0..n {
                    c_row[j] += aik * b_row[j];
                }
            }
        });
    c
}

/// `y = A × x` (matrix-vector product).
///
/// # Panics
/// Panics if `A.cols() != x.len()`.
pub fn matvec<R: Real>(a: &DenseMatrix<R>, x: &[R]) -> Vec<R> {
    assert_eq!(a.cols(), x.len(), "matvec dimension mismatch");
    (0..a.rows())
        .map(|i| {
            a.row(i)
                .iter()
                .zip(x.iter())
                .map(|(&aij, &xj)| aij * xj)
                .sum()
        })
        .collect()
}

/// `y = x × B` (row-vector times matrix), the shape produced by Stencil
/// Flattening before Duplicates Crush.
pub fn vecmat<R: Real>(x: &[R], b: &DenseMatrix<R>) -> Vec<R> {
    assert_eq!(x.len(), b.rows(), "vecmat dimension mismatch");
    let n = b.cols();
    let mut y = vec![R::ZERO; n];
    for (kk, &xk) in x.iter().enumerate() {
        if xk.is_zero() {
            continue;
        }
        let b_row = b.row(kk);
        for j in 0..n {
            y[j] += xk * b_row[j];
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> DenseMatrix<f64> {
        DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }
    fn b() -> DenseMatrix<f64> {
        DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0])
    }

    #[test]
    fn small_known_product() {
        let c = matmul(&a(), &b());
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn variants_agree() {
        let m = DenseMatrix::from_fn(17, 23, |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0);
        let n = DenseMatrix::from_fn(23, 19, |r, c| ((r * 5 + c * 11) % 17) as f64 - 8.0);
        let reference = matmul(&m, &n);
        assert_eq!(matmul_blocked(&m, &n, 4), reference);
        assert_eq!(matmul_blocked(&m, &n, 8), reference);
        assert_eq!(matmul_blocked(&m, &n, 64), reference);
        assert_eq!(matmul_parallel(&m, &n), reference);
    }

    #[test]
    fn identity_is_neutral() {
        let m = DenseMatrix::from_fn(5, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(matmul(&m, &DenseMatrix::identity(5)), m);
        assert_eq!(matmul(&DenseMatrix::identity(5), &m), m);
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = a();
        let x = vec![1.0, -1.0, 2.0];
        let y = matvec(&m, &x);
        let xmat = DenseMatrix::from_vec(3, 1, x);
        let c = matmul(&m, &xmat);
        assert_eq!(y, c.as_slice());
    }

    #[test]
    fn vecmat_matches_matmul() {
        let m = b();
        let x = vec![1.0, -2.0, 0.5];
        let y = vecmat(&x, &m);
        let xmat = DenseMatrix::from_vec(1, 3, x);
        let c = matmul(&xmat, &m);
        assert_eq!(y, c.as_slice());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatch_panics() {
        let _ = matmul(&a(), &a());
    }

    #[test]
    fn zero_block_size_panics() {
        let r = std::panic::catch_unwind(|| matmul_blocked(&a(), &b(), 0));
        assert!(r.is_err());
    }
}
