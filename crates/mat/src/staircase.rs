//! k-staircase matrices (Definition 4) and the self-similar block
//! staircase produced by Duplicates Crush (§3.1, Figure 5a).
//!
//! A matrix has the *k-staircase property* when the support of row `r` is
//! contained in columns `[r, r+k)`: each row is the previous row shifted
//! right by one. Horizontal Duplicates Crush produces exactly this shape
//! (row `j` holds the kernel weights shifted by `j`); Vertical Duplicates
//! Crush nests it — the block-level pattern is itself a staircase whose
//! blocks are local staircases ("Global Staircase" / "Local Staircase").
//!
//! The staircase property is what makes the Hierarchical Two-Level
//! Matching of `sparstencil-graph` linear-time and optimal (Theorems 1–2):
//! columns at distance ≥ k never conflict.

use crate::dense::DenseMatrix;
use crate::real::Real;

/// Build the `rows × (rows + weights.len() - 1)` staircase matrix whose
/// row `r` holds `weights` starting at column `r`.
///
/// Zero entries inside `weights` are preserved (star stencils produce
/// staircases with interior zeros); the *support* is still confined to the
/// staircase band.
///
/// # Panics
/// Panics if `weights` is empty or `rows == 0`.
pub fn staircase_from_weights<R: Real>(weights: &[R], rows: usize) -> DenseMatrix<R> {
    assert!(!weights.is_empty(), "weights must be non-empty");
    assert!(rows > 0, "rows must be positive");
    let k = weights.len();
    let cols = rows + k - 1;
    let mut m = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        for (i, &w) in weights.iter().enumerate() {
            m.set(r, r + i, w);
        }
    }
    m
}

/// `true` iff the support of `m` is contained in the k-staircase band:
/// `m[r, c] != 0 ⇒ r ≤ c < r + k`.
pub fn is_staircase_within<R: Real>(m: &DenseMatrix<R>, k: usize) -> bool {
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            if !m.get(r, c).is_zero() && !(r..r + k).contains(&c) {
                return false;
            }
        }
    }
    true
}

/// Smallest `k` such that `m` satisfies [`is_staircase_within`], or `None`
/// if some nonzero lies below the diagonal (no staircase width fits).
pub fn staircase_width<R: Real>(m: &DenseMatrix<R>) -> Option<usize> {
    let mut k = 0usize;
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            if !m.get(r, c).is_zero() {
                if c < r {
                    return None;
                }
                k = k.max(c - r + 1);
            }
        }
    }
    Some(k.max(1))
}

/// Build the self-similar block staircase of Figure 5(a): `block_rows`
/// block-rows, where block-row `s` places `blocks[b]` at block-column
/// `s + b`. All blocks must share one shape. The result has
/// `block_rows × blocks[0].rows()` rows and
/// `(block_rows + blocks.len() - 1) × blocks[0].cols()` columns.
///
/// # Panics
/// Panics if `blocks` is empty, `block_rows == 0`, or block shapes differ.
pub fn block_staircase<R: Real>(blocks: &[DenseMatrix<R>], block_rows: usize) -> DenseMatrix<R> {
    assert!(!blocks.is_empty(), "blocks must be non-empty");
    assert!(block_rows > 0, "block_rows must be positive");
    let (br, bc) = blocks[0].shape();
    for (i, b) in blocks.iter().enumerate() {
        assert_eq!(b.shape(), (br, bc), "block {i} shape mismatch");
    }
    let nb = blocks.len();
    let mut m = DenseMatrix::zeros(block_rows * br, (block_rows + nb - 1) * bc);
    for s in 0..block_rows {
        for (b, blk) in blocks.iter().enumerate() {
            m.set_block(s * br, (s + b) * bc, blk);
        }
    }
    m
}

/// Check the two-level self-similarity of Figure 5(a): the block-level
/// pattern of `m` (with `block_rows × block_cols`-shaped blocks) is a
/// staircase of width `global_k`, and every nonzero block is a local
/// staircase of width `local_k`.
pub fn is_self_similar_staircase<R: Real>(
    m: &DenseMatrix<R>,
    block_rows: usize,
    block_cols: usize,
    global_k: usize,
    local_k: usize,
) -> bool {
    if !m.rows().is_multiple_of(block_rows) || !m.cols().is_multiple_of(block_cols) {
        return false;
    }
    let grid_rows = m.rows() / block_rows;
    let grid_cols = m.cols() / block_cols;
    for gr in 0..grid_rows {
        for gc in 0..grid_cols {
            let blk = m.block(gr * block_rows, gc * block_cols, block_rows, block_cols);
            let in_band = gc >= gr && gc < gr + global_k;
            if !in_band {
                if blk.nnz() != 0 {
                    return false;
                }
            } else if !is_staircase_within(&blk, local_k) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_shape_and_support() {
        let s = staircase_from_weights(&[1.0f64, 2.0, 3.0], 4);
        assert_eq!(s.shape(), (4, 6));
        assert!(is_staircase_within(&s, 3));
        assert!(!is_staircase_within(&s, 2));
        assert_eq!(s.get(2, 2), 1.0);
        assert_eq!(s.get(2, 4), 3.0);
        assert_eq!(s.get(2, 1), 0.0);
        assert_eq!(staircase_width(&s), Some(3));
    }

    #[test]
    fn staircase_with_interior_zeros() {
        // Star-like weights: [1, 0, 2] — zero inside the band is fine.
        let s = staircase_from_weights(&[1.0f64, 0.0, 2.0], 3);
        assert!(is_staircase_within(&s, 3));
        assert_eq!(s.get(0, 1), 0.0);
        assert_eq!(staircase_width(&s), Some(3));
    }

    #[test]
    fn below_diagonal_is_not_staircase() {
        let mut m = DenseMatrix::<f64>::zeros(3, 3);
        m.set(2, 0, 1.0);
        assert!(!is_staircase_within(&m, 3));
        assert_eq!(staircase_width(&m), None);
    }

    #[test]
    fn zero_matrix_width_is_one() {
        let m = DenseMatrix::<f64>::zeros(3, 5);
        assert_eq!(staircase_width(&m), Some(1));
        assert!(is_staircase_within(&m, 1));
    }

    #[test]
    fn block_staircase_structure() {
        let b0 = staircase_from_weights(&[1.0f64, 2.0], 2); // 2×3
        let b1 = staircase_from_weights(&[3.0f64, 4.0], 2); // 2×3
        let m = block_staircase(&[b0.clone(), b1.clone()], 3);
        assert_eq!(m.shape(), (6, 12));
        // Block (0,0) is b0, block (0,1) is b1, block (1,0) empty.
        assert_eq!(m.block(0, 0, 2, 3), b0);
        assert_eq!(m.block(0, 3, 2, 3), b1);
        assert_eq!(m.block(2, 0, 2, 3).nnz(), 0);
        assert!(is_self_similar_staircase(&m, 2, 3, 2, 2));
        assert!(!is_self_similar_staircase(&m, 2, 3, 1, 2));
    }

    #[test]
    fn self_similar_detects_local_violation() {
        let b0 = staircase_from_weights(&[1.0f64, 2.0], 2);
        let mut m = block_staircase(&[b0], 2);
        // Corrupt a local block below its diagonal.
        m.set(1, 0, 9.0);
        assert!(!is_self_similar_staircase(&m, 2, 3, 1, 2));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_weights_panics() {
        let _ = staircase_from_weights::<f64>(&[], 2);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_blocks_panic() {
        let b0 = DenseMatrix::<f64>::zeros(2, 2);
        let b1 = DenseMatrix::<f64>::zeros(2, 3);
        let _ = block_staircase(&[b0, b1], 2);
    }
}
