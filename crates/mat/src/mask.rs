//! Binary sparsity masks and the 2:4 validity predicate.
//!
//! The mask matrix `M` of the paper's Equation (1) is a bit pattern; the
//! structured-sparsity constraint of Equation (2) requires each aligned
//! group of 4 row elements to contain *exactly* two ones. §2.1 relaxes this
//! to *at most* two ones per group (0:4 and 1:4 sub-patterns are processed
//! by promoting zeros to stored "nonzeros"), which is the predicate the
//! conversion stage must establish and the one checked here.

use crate::dense::DenseMatrix;
use crate::real::Real;
use crate::{GROUP, KEEP};

/// A dense bit mask over an `rows × cols` matrix, one bit per element,
/// packed row-major into `u64` words per row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMask {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMask {
    /// All-zeros mask.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        Self {
            rows,
            cols,
            words_per_row,
            bits: vec![0; rows * words_per_row],
        }
    }

    /// Mask of the nonzero pattern of a matrix.
    pub fn from_matrix<R: Real>(m: &DenseMatrix<R>) -> Self {
        let mut mask = Self::zeros(m.rows(), m.cols());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                if !m.get(r, c).is_zero() {
                    mask.set(r, c, true);
                }
            }
        }
        mask
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read bit `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        let w = r * self.words_per_row + c / 64;
        (self.bits[w] >> (c % 64)) & 1 == 1
    }

    /// Write bit `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        debug_assert!(r < self.rows && c < self.cols);
        let w = r * self.words_per_row + c / 64;
        if v {
            self.bits[w] |= 1 << (c % 64);
        } else {
            self.bits[w] &= !(1 << (c % 64));
        }
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of zero bits, i.e. the sparsity ratio reported in Figure 9.
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.count_ones() as f64 / total as f64
    }

    /// Number of set bits in the aligned 4-group `g` of row `r`
    /// (columns `4g .. 4g+4`, truncated at the matrix edge).
    pub fn group_count(&self, r: usize, g: usize) -> usize {
        let start = g * GROUP;
        let end = (start + GROUP).min(self.cols);
        (start..end).filter(|&c| self.get(r, c)).count()
    }

    /// `true` iff every aligned 4-group of every row has at most [`KEEP`]
    /// set bits — the relaxed 2:4 compatibility predicate of §2.1
    /// (sub-patterns 0:4 and 1:4 are allowed; 3:4 and 4:4 are not).
    pub fn is_two_four_compatible(&self) -> bool {
        self.two_four_violations() == 0
    }

    /// Number of `(row, group)` pairs violating the ≤2-per-4 constraint.
    /// This is the quantity the Structured Sparsity Conversion must drive
    /// to zero.
    pub fn two_four_violations(&self) -> usize {
        let groups = self.cols.div_ceil(GROUP);
        let mut violations = 0;
        for r in 0..self.rows {
            for g in 0..groups {
                if self.group_count(r, g) > KEEP {
                    violations += 1;
                }
            }
        }
        violations
    }

    /// A measure of *clustered sparsity* (§2.3): the fraction of aligned
    /// 4-groups that are either completely full or completely empty. Dense
    /// clusters violate 2:4 alignment; empty clusters waste fragment slots.
    /// AI-style uniformly random 50% masks score near zero; stencil-induced
    /// masks score high until the conversion regularizes them.
    pub fn clustering_ratio(&self) -> f64 {
        let groups = self.cols.div_ceil(GROUP);
        if self.rows == 0 || groups == 0 {
            return 0.0;
        }
        let mut clustered = 0usize;
        for r in 0..self.rows {
            for g in 0..groups {
                let width = (self.cols - g * GROUP).min(GROUP);
                let count = self.group_count(r, g);
                if count == width || count == 0 {
                    clustered += 1;
                }
            }
        }
        clustered as f64 / (self.rows * groups) as f64
    }

    /// `true` iff two columns share a row in which both have a set bit —
    /// the conflict relation of the paper's Definition 1.
    pub fn cols_conflict(&self, c1: usize, c2: usize) -> bool {
        (0..self.rows).any(|r| self.get(r, c1) && self.get(r, c2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut m = BitMask::zeros(2, 130);
        m.set(0, 0, true);
        m.set(0, 63, true);
        m.set(0, 64, true);
        m.set(1, 129, true);
        assert!(m.get(0, 0) && m.get(0, 63) && m.get(0, 64) && m.get(1, 129));
        assert!(!m.get(1, 0));
        assert_eq!(m.count_ones(), 4);
        m.set(0, 63, false);
        assert!(!m.get(0, 63));
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    fn from_matrix_matches_pattern() {
        let mut d = DenseMatrix::<f32>::zeros(2, 4);
        d.set(0, 1, 3.0);
        d.set(1, 3, -1.0);
        let m = BitMask::from_matrix(&d);
        assert!(m.get(0, 1) && m.get(1, 3));
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn sparsity_ratio() {
        let mut m = BitMask::zeros(1, 8);
        assert_eq!(m.sparsity(), 1.0);
        for c in 0..4 {
            m.set(0, c, true);
        }
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_four_compatibility() {
        // Row with 2 nonzeros in group 0, 1 in group 1: compatible.
        let mut ok = BitMask::zeros(1, 8);
        ok.set(0, 0, true);
        ok.set(0, 2, true);
        ok.set(0, 5, true);
        assert!(ok.is_two_four_compatible());
        assert_eq!(ok.two_four_violations(), 0);

        // Row with 3 nonzeros in one aligned group: violation.
        let mut bad = BitMask::zeros(1, 8);
        bad.set(0, 0, true);
        bad.set(0, 1, true);
        bad.set(0, 2, true);
        assert!(!bad.is_two_four_compatible());
        assert_eq!(bad.two_four_violations(), 1);

        // Straddling the 4-boundary does NOT count: groups are aligned.
        let mut straddle = BitMask::zeros(1, 8);
        straddle.set(0, 2, true);
        straddle.set(0, 3, true);
        straddle.set(0, 4, true);
        straddle.set(0, 5, true);
        assert!(straddle.is_two_four_compatible());
    }

    #[test]
    fn ragged_tail_group() {
        // 6 columns → group 1 has width 2; 2 nonzeros there are allowed.
        let mut m = BitMask::zeros(1, 6);
        m.set(0, 4, true);
        m.set(0, 5, true);
        assert!(m.is_two_four_compatible());
    }

    #[test]
    fn clustering_ratio_extremes() {
        // Fully dense row: every group full → ratio 1.
        let mut dense = BitMask::zeros(1, 8);
        for c in 0..8 {
            dense.set(0, c, true);
        }
        assert_eq!(dense.clustering_ratio(), 1.0);

        // Perfect 2:4 pattern: no group full or empty → ratio 0.
        let mut tf = BitMask::zeros(1, 8);
        for c in [0, 1, 4, 5] {
            tf.set(0, c, true);
        }
        assert_eq!(tf.clustering_ratio(), 0.0);
    }

    #[test]
    fn conflict_relation() {
        let mut m = BitMask::zeros(3, 3);
        m.set(0, 0, true);
        m.set(0, 1, true);
        m.set(2, 2, true);
        assert!(m.cols_conflict(0, 1));
        assert!(!m.cols_conflict(0, 2));
        assert!(!m.cols_conflict(1, 2));
    }
}
