//! Permutations and the Permutation Invariant Transformation (PIT).
//!
//! PIT (Equation 5 of the paper) simultaneously permutes the columns of `A`
//! and the rows of `B` along the shared `k` dimension:
//!
//! ```text
//! C = Σᵢ aᵢ bᵢᵀ = Σᵢ a_P(i) b_P(i)ᵀ
//! ```
//!
//! so `A × B` is invariant under any shared permutation `P`. The sparsity
//! conversion additionally inserts *zero columns* into `A` (Problem 1's
//! padding); the matching rows of `B` may hold arbitrary values because the
//! corresponding `A` columns are identically zero. [`Permutation`] models
//! both: a sequence of source indices where the sentinel [`Permutation::PAD`]
//! denotes an inserted zero column.

use crate::dense::DenseMatrix;
use crate::gemm;
use crate::real::Real;

/// A (possibly padding-extended) permutation of `n` source indices.
///
/// `order[i]` is the source index placed at destination position `i`, or
/// [`Permutation::PAD`] for an inserted zero column/row. Every non-PAD
/// source index must appear exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    order: Vec<usize>,
    source_len: usize,
}

impl Permutation {
    /// Sentinel marking an inserted zero column/row.
    pub const PAD: usize = usize::MAX;

    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Self {
            order: (0..n).collect(),
            source_len: n,
        }
    }

    /// Build from an explicit destination→source order over `source_len`
    /// original indices.
    ///
    /// # Panics
    /// Panics if any non-PAD index is out of range or duplicated, or if any
    /// source index is missing.
    pub fn from_order(order: Vec<usize>, source_len: usize) -> Self {
        let mut seen = vec![false; source_len];
        let mut covered = 0;
        for &idx in &order {
            if idx == Self::PAD {
                continue;
            }
            assert!(idx < source_len, "index {idx} out of range {source_len}");
            assert!(!seen[idx], "duplicate index {idx} in permutation");
            seen[idx] = true;
            covered += 1;
        }
        assert_eq!(
            covered, source_len,
            "permutation covers {covered} of {source_len} source indices"
        );
        Self { order, source_len }
    }

    /// Destination length (source length plus inserted padding).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` iff the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of original (source) indices.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// Number of inserted zero pads.
    pub fn pad_count(&self) -> usize {
        self.order.iter().filter(|&&i| i == Self::PAD).count()
    }

    /// The destination→source order, with [`Permutation::PAD`] sentinels.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Source index at destination `i` (may be PAD).
    pub fn source_of(&self, i: usize) -> usize {
        self.order[i]
    }

    /// Destination position of each source index (source→destination).
    pub fn inverse_positions(&self) -> Vec<usize> {
        let mut pos = vec![Self::PAD; self.source_len];
        for (dst, &src) in self.order.iter().enumerate() {
            if src != Self::PAD {
                pos[src] = dst;
            }
        }
        pos
    }

    /// Apply to the columns of `a`: destination column `i` is source column
    /// `order[i]` (zero column for PAD).
    pub fn apply_to_cols<R: Real>(&self, a: &DenseMatrix<R>) -> DenseMatrix<R> {
        assert_eq!(a.cols(), self.source_len, "column count mismatch");
        a.select_cols(&self.order)
    }

    /// Apply to the rows of `b`: destination row `i` is source row
    /// `order[i]` (zero row for PAD).
    pub fn apply_to_rows<R: Real>(&self, b: &DenseMatrix<R>) -> DenseMatrix<R> {
        assert_eq!(b.rows(), self.source_len, "row count mismatch");
        b.select_rows(&self.order)
    }

    /// The Permutation Invariant Transformation: permute `A`'s columns and
    /// `B`'s rows jointly, preserving `A × B` exactly (PAD slots contribute
    /// `0 × b = 0`).
    pub fn pit<R: Real>(
        &self,
        a: &DenseMatrix<R>,
        b: &DenseMatrix<R>,
    ) -> (DenseMatrix<R>, DenseMatrix<R>) {
        (self.apply_to_cols(a), self.apply_to_rows(b))
    }
}

/// Verify Equation (5) numerically: `A×B == P(A)×P(B)` for the given
/// permutation. Returns the max absolute deviation (0.0 for `f64` inputs —
/// the permuted product performs the same additions in a different order,
/// which for our test matrices is exact).
pub fn pit_deviation<R: Real>(a: &DenseMatrix<R>, b: &DenseMatrix<R>, p: &Permutation) -> f64 {
    let base = gemm::matmul(a, b);
    let (ap, bp) = p.pit(a, b);
    let permuted = gemm::matmul(&ap, &bp);
    base.max_abs_diff(&permuted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let a = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        let p = Permutation::identity(4);
        assert_eq!(p.apply_to_cols(&a), a);
        assert_eq!(p.pad_count(), 0);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn reversal_permutation() {
        let a = DenseMatrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let p = Permutation::from_order(vec![2, 1, 0], 3);
        let ap = p.apply_to_cols(&a);
        assert_eq!(ap.col(0), a.col(2));
        assert_eq!(ap.col(2), a.col(0));
    }

    #[test]
    fn padding_inserts_zero_columns() {
        let a = DenseMatrix::from_fn(2, 2, |_, _| 1.0f64);
        let p = Permutation::from_order(vec![0, Permutation::PAD, 1], 2);
        let ap = p.apply_to_cols(&a);
        assert_eq!(ap.cols(), 3);
        assert!(ap.col_is_zero(1));
        assert_eq!(p.pad_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_index_rejected() {
        let _ = Permutation::from_order(vec![0, 0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "covers")]
    fn missing_index_rejected() {
        let _ = Permutation::from_order(vec![0, Permutation::PAD], 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = Permutation::from_order(vec![0, 5], 2);
    }

    #[test]
    fn inverse_positions_roundtrip() {
        let p = Permutation::from_order(vec![2, Permutation::PAD, 0, 1], 3);
        let inv = p.inverse_positions();
        assert_eq!(inv, vec![2, 3, 0]);
        for (src, &dst) in inv.iter().enumerate() {
            assert_eq!(p.source_of(dst), src);
        }
    }

    #[test]
    fn pit_preserves_product_exactly() {
        let a = DenseMatrix::from_fn(4, 6, |r, c| ((r * 7 + c * 3) % 5) as f64 - 2.0);
        let b = DenseMatrix::from_fn(6, 5, |r, c| ((r * 3 + c * 11) % 7) as f64 - 3.0);
        let p = Permutation::from_order(vec![5, 3, 1, 0, 2, 4], 6);
        assert_eq!(pit_deviation(&a, &b, &p), 0.0);
    }

    #[test]
    fn pit_with_padding_preserves_product() {
        let a = DenseMatrix::from_fn(3, 4, |r, c| (r + c) as f64);
        let b = DenseMatrix::from_fn(4, 3, |r, c| (r * c) as f64 + 1.0);
        let p = Permutation::from_order(vec![1, Permutation::PAD, 3, 0, Permutation::PAD, 2], 4);
        assert_eq!(pit_deviation(&a, &b, &p), 0.0);
    }
}
