//! Property-based tests for the matrix substrate.
//!
//! These pin the invariants the rest of the pipeline relies on:
//! compress∘decompress identity, sparse MMA ≡ dense MMA, PIT invariance,
//! fp16 rounding monotonicity, and staircase band containment.

use proptest::prelude::*;
use sparstencil_mat::dense::DenseMatrix;
use sparstencil_mat::gemm;
use sparstencil_mat::half::{f16_to_f32, f32_to_f16, Precision};
use sparstencil_mat::mask::BitMask;
use sparstencil_mat::permute::{pit_deviation, Permutation};
use sparstencil_mat::staircase;
use sparstencil_mat::two_four::TwoFourMatrix;

/// Strategy: a 2:4-compatible matrix (each aligned group of 4 gets at most
/// 2 nonzeros, at random positions with random small-integer values).
fn two_four_matrix(max_rows: usize, max_groups: usize) -> impl Strategy<Value = DenseMatrix<f64>> {
    (1..=max_rows, 1..=max_groups).prop_flat_map(|(rows, groups)| {
        let cells = rows * groups;
        proptest::collection::vec(
            (0usize..=2, 0usize..4, 0usize..4, -8i32..=8, -8i32..=8),
            cells,
        )
        .prop_map(move |specs| {
            let mut m = DenseMatrix::zeros(rows, groups * 4);
            for (cell, (count, p0, p1, v0, v1)) in specs.into_iter().enumerate() {
                let (r, g) = (cell / groups, cell % groups);
                let base = g * 4;
                if count >= 1 && v0 != 0 {
                    m.set(r, base + p0, v0 as f64);
                }
                if count >= 2 && v1 != 0 && p1 != p0 {
                    m.set(r, base + p1, v1 as f64);
                }
            }
            m
        })
    })
}

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix<f64>> {
    proptest::collection::vec(-10i32..=10, rows * cols).prop_map(move |v| {
        DenseMatrix::from_vec(rows, cols, v.into_iter().map(f64::from).collect())
    })
}

proptest! {
    #[test]
    fn compress_decompress_identity(a in two_four_matrix(6, 5)) {
        let c = TwoFourMatrix::compress(&a).unwrap();
        prop_assert_eq!(c.decompress(), a);
    }

    #[test]
    fn spmm_equals_dense_matmul(a in two_four_matrix(5, 4), n in 1usize..6) {
        let k = a.cols();
        let b = DenseMatrix::from_fn(k, n, |r, c| ((r * 13 + c * 7) % 9) as f64 - 4.0);
        let c24 = TwoFourMatrix::compress(&a).unwrap();
        prop_assert_eq!(c24.spmm(&b), gemm::matmul(&a, &b));
    }

    #[test]
    fn compressed_mask_is_compatible(a in two_four_matrix(5, 6)) {
        let mask = BitMask::from_matrix(&a);
        prop_assert!(mask.is_two_four_compatible());
        prop_assert_eq!(mask.two_four_violations(), 0);
    }

    #[test]
    fn metadata_indices_strictly_increase(a in two_four_matrix(4, 6)) {
        let c = TwoFourMatrix::compress(&a).unwrap();
        for r in 0..c.rows() {
            for g in 0..c.logical_cols() / 4 {
                prop_assert!(c.meta_index(r, g * 2) < c.meta_index(r, g * 2 + 1));
            }
        }
    }

    #[test]
    fn pit_invariance_random_permutation(
        a in small_matrix(4, 8),
        b in small_matrix(8, 3),
        seed in 0u64..1000,
    ) {
        // Deterministic Fisher-Yates from the seed.
        let mut order: Vec<usize> = (0..8).collect();
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        for i in (1..8).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let p = Permutation::from_order(order, 8);
        prop_assert_eq!(pit_deviation(&a, &b, &p), 0.0);
    }

    #[test]
    fn pit_invariance_with_padding(
        a in small_matrix(3, 6),
        b in small_matrix(6, 4),
        pads in proptest::collection::vec(0usize..=6, 0..3),
    ) {
        let mut order: Vec<usize> = (0..6).collect();
        for (i, pos) in pads.into_iter().enumerate() {
            order.insert(pos.min(order.len()), Permutation::PAD);
            let _ = i;
        }
        let p = Permutation::from_order(order, 6);
        prop_assert_eq!(pit_deviation(&a, &b, &p), 0.0);
    }

    #[test]
    fn f16_roundtrip_idempotent(bits in any::<u16>()) {
        // Rounding an already-rounded value must be the identity
        // (skip NaNs where equality is undefined).
        let v = f16_to_f32(bits);
        if !v.is_nan() {
            let rt = f16_to_f32(f32_to_f16(v));
            prop_assert_eq!(rt, v);
        }
    }

    #[test]
    fn f16_rounding_error_bounded(v in -60000.0f32..60000.0) {
        // Relative error of one rounding step is at most 2^-11 for normals;
        // absolute error at most 2^-25 in the subnormal range.
        let r = f16_to_f32(f32_to_f16(v));
        let err = (r - v).abs();
        let bound = (v.abs() * 2.0f32.powi(-11)).max(2.0f32.powi(-25));
        prop_assert!(err <= bound, "v={v} r={r} err={err} bound={bound}");
    }

    #[test]
    fn precision_round_idempotent(v in -1000.0f32..1000.0) {
        for p in [Precision::Fp16, Precision::Bf16, Precision::Tf32, Precision::Fp32] {
            let once = p.round_f32(v);
            prop_assert_eq!(p.round_f32(once), once);
        }
    }

    #[test]
    fn staircase_band_containment(
        k in 1usize..6,
        rows in 1usize..8,
        weights in proptest::collection::vec(-5i32..=5, 1..6),
    ) {
        let w: Vec<f64> = weights.iter().map(|&x| f64::from(x)).collect();
        let s = staircase::staircase_from_weights(&w, rows);
        prop_assert!(staircase::is_staircase_within(&s, w.len()));
        let _ = k;
        if let Some(width) = staircase::staircase_width(&s) {
            prop_assert!(width <= w.len());
        }
    }

    #[test]
    fn matmul_variants_agree(a in small_matrix(5, 7), b in small_matrix(7, 6)) {
        let reference = gemm::matmul(&a, &b);
        prop_assert_eq!(gemm::matmul_blocked(&a, &b, 3), reference.clone());
        prop_assert_eq!(gemm::matmul_parallel(&a, &b), reference);
    }

    #[test]
    fn select_cols_inverse(a in small_matrix(4, 6), seed in 0u64..100) {
        let mut order: Vec<usize> = (0..6).collect();
        let mut state = seed.wrapping_add(1);
        for i in (1..6).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let p = Permutation::from_order(order.clone(), 6);
        let shuffled = p.apply_to_cols(&a);
        // Undo via inverse positions.
        let inv = p.inverse_positions();
        let restored = shuffled.select_cols(&inv);
        prop_assert_eq!(restored, a);
    }
}
