//! Supervised multi-tenant serving over one batched plan: the layer
//! that keeps a fleet of [`sparstencil::session::Batch`] members alive
//! under churn, budgets, and faults without the client hand-rolling
//! recovery.
//!
//! The core crate supplies the mechanisms — retire-and-swap membership
//! ([`Batch::admit`]/[`Batch::retire`]), SKIP-path sit-outs
//! ([`Batch::pause`]), validated checkpoint/restore, typed
//! [`SessionError`]s — and this crate's [`SessionManager`] composes
//! them into policy:
//!
//! - **Admission control** ([`SessionManager::admit`]): a configurable
//!   capacity gate (max live sessions, max aggregate cells) that
//!   returns a typed [`RejectReason`] instead of growing without bound.
//! - **Step budgets with backpressure**
//!   ([`SessionManager::set_step_budget`]): a tenant at its budget sits
//!   out [`SessionManager::step`] exactly like a quarantined member —
//!   the same SKIP flag drains its claims allocation-free — and
//!   resumes the moment the budget is raised.
//! - **Supervision** (inside every [`SessionManager::step`]): periodic
//!   auto-checkpoints per member into a ring of K snapshots (reusing
//!   [`Batch::checkpoint_into`]; zero steady-state allocations), and on
//!   [`SessionError::Poisoned`]/[`SessionError::Quarantined`] an
//!   automatic restore-to-last-good + solo catch-up + rejoin, with
//!   bounded retry attempts and an escalating sit-out (backoff measured
//!   in supervised rounds) before the member is dropped and the tenant
//!   notified via a typed [`EvictionReason`].
//! - **Deadline-aware stepping** ([`SessionManager::run_until`]): the
//!   supervised loop against a wall-clock deadline, folding every
//!   round's step latency into a fixed-bucket
//!   [`LatencyHistogram`] so a serving workload can report p50/p99.
//!
//! The manager preserves the batch layer's load-bearing guarantee:
//! every tenant's trajectory stays **bit-identical** to a solo session
//! over the same plan, through admission, churn of unrelated members,
//! budget pauses, and fault recovery (restore + deterministic replay).
//! `tests/serve_manager.rs` pins the guarantee round by round and
//! `tests/serve_soak.rs` soaks it under injected panics and NaN storms.
//!
//! ```
//! use sparstencil::prelude::*;
//! use sparstencil_serve::{ServePolicy, SessionManager};
//!
//! let kernel = StencilKernel::heat2d();
//! let shape = [1, 40, 40];
//! let exec = Executor::<f32>::new(&kernel, shape, &Options::default()).unwrap();
//! let mut mgr = SessionManager::new(exec.plan(), ServePolicy::default());
//!
//! let a = mgr.admit(&Grid::<f32>::smooth_random(2, shape)).unwrap();
//! let b = mgr.admit(&Grid::<f32>::smooth_random(7, shape)).unwrap();
//! for _ in 0..5 {
//!     mgr.step();
//! }
//! assert_eq!(mgr.steps(a), Some(5));
//! mgr.retire(b).unwrap();
//! assert_eq!(mgr.live_sessions(), 1);
//! ```

use sparstencil::exec::LatencyHistogram;
use sparstencil::grid::{FieldView, Grid};
use sparstencil::plan::CompiledStencil;
use sparstencil::session::{Batch, Checkpoint, Health, HealthPolicy, SessionError};
use sparstencil_mat::Real;
use std::collections::BTreeMap;
use std::time::Instant;

/// Capacity and supervision policy for a [`SessionManager`]; every knob
/// has a serving-shaped default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServePolicy {
    /// Admission gate: maximum live sessions (default 64).
    pub max_sessions: usize,
    /// Admission gate: maximum aggregate semantic cells across live
    /// sessions (default unlimited).
    pub max_total_cells: u64,
    /// Auto-checkpoint cadence in per-member steps (default 8). The
    /// supervisor snapshots a healthy member whenever it has advanced
    /// this many steps past its last snapshot.
    pub checkpoint_every: usize,
    /// Snapshots retained per member, newest-first ring (default 3).
    /// Zero disables the ring; recovery then falls back to the
    /// admission-time snapshot.
    pub checkpoint_ring: usize,
    /// Recovery attempts granted per tenant before eviction (default
    /// 3). The counter decays back to zero after [`heal_after`] clean
    /// rounds, so sporadic transient faults do not accumulate into an
    /// eviction over a long residency.
    ///
    /// [`heal_after`]: ServePolicy::heal_after
    pub max_recoveries: u32,
    /// First post-recovery sit-out, in supervised rounds (default 2).
    /// Doubles per consecutive attempt: attempt `k` sits out
    /// `backoff_base << (k-1)` rounds, capped at [`backoff_cap`].
    ///
    /// [`backoff_cap`]: ServePolicy::backoff_cap
    pub backoff_base: u64,
    /// Ceiling for the escalating sit-out (default 64 rounds).
    pub backoff_cap: u64,
    /// Clean rounds after which a tenant's recovery counter resets to
    /// zero (default 64).
    pub heal_after: u64,
}

impl Default for ServePolicy {
    fn default() -> Self {
        Self {
            max_sessions: 64,
            max_total_cells: u64::MAX,
            checkpoint_every: 8,
            checkpoint_ring: 3,
            max_recoveries: 3,
            backoff_base: 2,
            backoff_cap: 64,
            heal_after: 64,
        }
    }
}

/// Opaque tenant handle. Identifiers are never reused, so a stale
/// handle can be answered precisely ([`TenantStatus::Evicted`] with its
/// reason, or `None` for a retired/unknown tenant) instead of silently
/// aliasing a newer admission the way a raw batch slot index would
/// after retire-and-swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Why an [`SessionManager::admit`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The live-session cap is already reached.
    SessionCapacity {
        /// The policy's `max_sessions`.
        limit: usize,
        /// Live sessions at the time of the request.
        live: usize,
    },
    /// Admitting would push the aggregate cell count over the cap.
    CellCapacity {
        /// The policy's `max_total_cells`.
        limit: u64,
        /// Aggregate cells across live sessions before the request.
        live: u64,
        /// Cells the requested session would add.
        requested: u64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::SessionCapacity { limit, live } => {
                write!(f, "session capacity reached ({live} live, limit {limit})")
            }
            RejectReason::CellCapacity {
                limit,
                live,
                requested,
            } => write!(
                f,
                "cell capacity would be exceeded ({live} live + {requested} requested > {limit})"
            ),
        }
    }
}

/// Why a tenant was dropped by the supervisor (carried by
/// [`ServeEvent::Evicted`] and [`TenantStatus::Evicted`]).
#[derive(Debug, Clone, PartialEq)]
pub enum EvictionReason {
    /// The tenant faulted again after exhausting its recovery budget.
    RecoveryBudgetExhausted {
        /// Recovery attempts that were granted and spent.
        attempts: u32,
        /// The fault that broke the camel's back.
        last_fault: SessionError,
    },
    /// No retained snapshot (ring or admission-time) passed restore
    /// validation — every candidate was rejected, e.g. as
    /// [`SessionError::NonFiniteInput`].
    NoViableCheckpoint {
        /// The last restore rejection observed while walking the ring.
        last_error: SessionError,
    },
}

impl std::fmt::Display for EvictionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvictionReason::RecoveryBudgetExhausted {
                attempts,
                last_fault,
            } => write!(
                f,
                "recovery budget exhausted after {attempts} attempts (last fault: {last_fault})"
            ),
            EvictionReason::NoViableCheckpoint { last_error } => {
                write!(f, "no retained checkpoint restores cleanly ({last_error})")
            }
        }
    }
}

/// Everything a [`SessionManager`] call can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control refused the request.
    Rejected(RejectReason),
    /// The handle names no live tenant (retired, evicted, or never
    /// admitted here).
    UnknownTenant(TenantId),
    /// The underlying session layer refused (shape mismatch, non-finite
    /// input, …).
    Session(SessionError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "admission rejected: {r}"),
            ServeError::UnknownTenant(id) => write!(f, "no live tenant {id}"),
            ServeError::Session(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SessionError> for ServeError {
    fn from(e: SessionError) -> Self {
        ServeError::Session(e)
    }
}

/// A tenant's position in the supervision state machine (see the
/// state-machine diagram in [`sparstencil::session`]'s module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum TenantStatus {
    /// Healthy and stepping.
    Running,
    /// Sitting out rounds until its step budget is raised.
    AtBudget,
    /// Recovered from a fault; sitting out its escalating backoff.
    BackingOff {
        /// First supervised round it will step in again.
        until_round: u64,
    },
    /// Faulted since the last supervised round; the next
    /// [`SessionManager::step`] will attempt recovery.
    Faulted(SessionError),
    /// Dropped by the supervisor; the reason is retained for the
    /// tenant to query.
    Evicted(EvictionReason),
}

/// Notifications drained via [`SessionManager::drain_events`], in
/// occurrence order.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// A tenant was admitted into the given batch slot.
    Admitted {
        /// The new tenant.
        tenant: TenantId,
        /// Its batch slot at admission (may change on later retires).
        slot: usize,
    },
    /// A tenant was retired at its own request.
    Retired {
        /// The departed tenant.
        tenant: TenantId,
    },
    /// The supervisor restored a faulted tenant and replayed it back to
    /// its pre-fault step count.
    Recovered {
        /// The recovered tenant.
        tenant: TenantId,
        /// The fault that triggered recovery.
        fault: SessionError,
        /// Step count of the snapshot that was restored.
        restored_to_step: usize,
        /// Solo catch-up steps replayed after the restore.
        replayed: usize,
        /// Which recovery attempt this was (1-based).
        attempt: u32,
        /// Rounds the tenant sits out before rejoining.
        sit_out_rounds: u64,
    },
    /// The supervisor dropped a tenant.
    Evicted {
        /// The dropped tenant.
        tenant: TenantId,
        /// Why.
        reason: EvictionReason,
    },
}

/// What one supervised [`SessionManager::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepReport {
    /// The supervised round just completed (1-based).
    pub round: u64,
    /// Members that stepped.
    pub active: usize,
    /// Members parked in a post-recovery backoff this round (their
    /// sit-out expires by itself; budget-parked members are *not*
    /// counted — only a budget change can wake those).
    pub backing_off: usize,
    /// Members restored + replayed this round.
    pub recovered: usize,
    /// Members evicted this round.
    pub evicted: usize,
}

/// Aggregate of a [`SessionManager::run_until`] deadline loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Supervised rounds completed before the deadline.
    pub rounds: u64,
    /// Total members restored + replayed.
    pub recovered: usize,
    /// Total members evicted.
    pub evicted: usize,
}

/// Per-tenant supervision state (the manager's side; execution state
/// lives in the batch member the `slot` points at).
struct Tenant<R: Real> {
    slot: usize,
    /// Lifetime step budget; the member pauses at `steps >= budget`.
    budget: Option<usize>,
    /// Auto-checkpoint ring, rotated at `next_ck`; newest snapshot is
    /// the slot written most recently.
    ring: Vec<Checkpoint<R>>,
    next_ck: usize,
    /// Admission-time snapshot: the recovery path of last resort, never
    /// rotated out.
    genesis: Checkpoint<R>,
    /// Member step count at the most recent ring snapshot.
    last_ck_step: usize,
    /// Recovery attempts spent (decays after `heal_after` clean
    /// rounds).
    recoveries: u32,
    /// Supervised round until which the tenant sits out, if any.
    backoff_until: Option<u64>,
    /// Round of the most recent fault (drives the heal decay).
    last_fault_round: u64,
}

impl<R: Real> Tenant<R> {
    /// Ring indices newest → oldest.
    fn ring_newest_first(&self) -> impl Iterator<Item = usize> + '_ {
        let len = self.ring.len();
        (0..len).map(move |k| (self.next_ck + len - 1 - k) % len)
    }
}

/// A supervised multi-tenant serving front over one live [`Batch`]: see
/// the [crate docs](self) for the full feature tour and the guarantees.
///
/// The manager owns the batch; tenants are addressed by stable
/// [`TenantId`] handles while the underlying batch slots shift under
/// retire-and-swap. All supervision (fault recovery, checkpoints,
/// budget/backoff gating) happens inside [`SessionManager::step`] —
/// there is no background thread, so the caller decides when
/// supervision work may run.
pub struct SessionManager<'p, R: Real> {
    plan: &'p CompiledStencil<R>,
    lanes: Option<usize>,
    policy: ServePolicy,
    /// `None` until the first admission (a batch cannot be *built*
    /// empty; it may later be *drained* empty by retires).
    batch: Option<Batch<'p, R>>,
    /// Batch slot → tenant, kept in lockstep with the batch's member
    /// table across swap-removals.
    slots: Vec<TenantId>,
    tenants: BTreeMap<TenantId, Tenant<R>>,
    /// Terminal notices for tenants the supervisor dropped.
    evicted: BTreeMap<TenantId, EvictionReason>,
    next_id: u64,
    round: u64,
    hist: LatencyHistogram,
    events: Vec<ServeEvent>,
    cells_per_session: u64,
    live_cells: u64,
}

impl<'p, R: Real> SessionManager<'p, R> {
    /// A manager serving `plan` with the pool-wide default lane count.
    pub fn new(plan: &'p CompiledStencil<R>, policy: ServePolicy) -> Self {
        Self::build(plan, policy, None)
    }

    /// A manager with an explicit worker-lane count (forwarded to the
    /// batch; results are identical for every lane count).
    pub fn with_parallelism(
        plan: &'p CompiledStencil<R>,
        policy: ServePolicy,
        lanes: usize,
    ) -> Self {
        Self::build(plan, policy, Some(lanes))
    }

    fn build(plan: &'p CompiledStencil<R>, policy: ServePolicy, lanes: Option<usize>) -> Self {
        let [nz, ny, nx] = plan.grid_shape;
        Self {
            plan,
            lanes,
            policy,
            batch: None,
            slots: Vec::new(),
            tenants: BTreeMap::new(),
            evicted: BTreeMap::new(),
            next_id: 0,
            round: 0,
            hist: LatencyHistogram::new(),
            events: Vec::new(),
            cells_per_session: (nz * ny * nx) as u64,
            live_cells: 0,
        }
    }

    /// The policy this manager enforces.
    pub fn policy(&self) -> &ServePolicy {
        &self.policy
    }

    /// The shared compiled plan.
    pub fn plan(&self) -> &CompiledStencil<R> {
        self.plan
    }

    /// Live (admitted, not retired/evicted) sessions.
    pub fn live_sessions(&self) -> usize {
        self.slots.len()
    }

    /// Aggregate semantic cells across live sessions.
    pub fn live_cells(&self) -> u64 {
        self.live_cells
    }

    /// Supervised rounds completed.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Live tenant handles, in admission order.
    pub fn tenants(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.tenants.keys().copied()
    }

    /// The live tenant currently occupying batch slot `slot`, if any.
    /// Slots shift on retire-and-swap, so this mapping is only stable
    /// between membership changes — which is exactly the window a
    /// fault-injection harness arms its per-slot hooks in.
    pub fn tenant_at(&self, slot: usize) -> Option<TenantId> {
        self.slots.get(slot).copied()
    }

    /// The batch slot tenant `id` currently occupies, if live.
    pub fn slot_of(&self, id: TenantId) -> Option<usize> {
        self.tenants.get(&id).map(|t| t.slot)
    }

    /// Admit a tenant: capacity gates first (typed
    /// [`ServeError::Rejected`]), then [`Batch::admit`] (shape +
    /// non-finite validation), then supervision bootstrap — the member
    /// runs under [`HealthPolicy::Quarantine`] (the supervisor *is* the
    /// recovery path) and its admission-time snapshot is taken
    /// immediately so recovery is possible before the first ring
    /// checkpoint.
    pub fn admit(&mut self, input: &Grid<R>) -> Result<TenantId, ServeError> {
        let live = self.slots.len();
        if live >= self.policy.max_sessions {
            return Err(ServeError::Rejected(RejectReason::SessionCapacity {
                limit: self.policy.max_sessions,
                live,
            }));
        }
        if self.live_cells.saturating_add(self.cells_per_session) > self.policy.max_total_cells {
            return Err(ServeError::Rejected(RejectReason::CellCapacity {
                limit: self.policy.max_total_cells,
                live: self.live_cells,
                requested: self.cells_per_session,
            }));
        }
        let slot = match self.batch.as_mut() {
            Some(batch) => batch.admit(input)?,
            None => {
                let inputs = std::slice::from_ref(input);
                let batch = match self.lanes {
                    Some(lanes) => Batch::try_with_parallelism(self.plan, inputs, lanes)?,
                    None => Batch::try_new(self.plan, inputs)?,
                };
                self.batch = Some(batch);
                0
            }
        };
        let batch = self.batch.as_mut().expect("batch exists after admission");
        batch.set_health_policy(slot, HealthPolicy::Quarantine);
        let mut genesis = Checkpoint::new();
        batch.checkpoint_into(slot, &mut genesis);
        let id = TenantId(self.next_id);
        self.next_id += 1;
        self.tenants.insert(
            id,
            Tenant {
                slot,
                budget: None,
                ring: Vec::with_capacity(self.policy.checkpoint_ring),
                next_ck: 0,
                genesis,
                last_ck_step: 0,
                recoveries: 0,
                backoff_until: None,
                last_fault_round: self.round,
            },
        );
        self.slots.push(id);
        self.live_cells += self.cells_per_session;
        self.events.push(ServeEvent::Admitted { tenant: id, slot });
        Ok(id)
    }

    /// Retire tenant `id`: its batch member is swap-removed (surviving
    /// members' buffers untouched; the member formerly in the last slot
    /// takes the freed one, and the tenant table is re-pointed), its
    /// snapshots are dropped, and its capacity is released.
    pub fn retire(&mut self, id: TenantId) -> Result<(), ServeError> {
        let slot = self.slot_of(id).ok_or(ServeError::UnknownTenant(id))?;
        self.remove_slot(slot);
        self.events.push(ServeEvent::Retired { tenant: id });
        Ok(())
    }

    /// Set (or clear) tenant `id`'s lifetime step budget. A member
    /// whose step count has reached its budget is parked on the batch's
    /// SKIP path — state frozen, zero cost per round — and rejoins the
    /// round after the budget is raised or cleared.
    pub fn set_step_budget(
        &mut self,
        id: TenantId,
        budget: Option<usize>,
    ) -> Result<(), ServeError> {
        self.tenants
            .get_mut(&id)
            .ok_or(ServeError::UnknownTenant(id))?
            .budget = budget;
        Ok(())
    }

    /// Administratively fault tenant `id` (quarantine its member):
    /// the next supervised round treats it exactly like an organic
    /// fault — restore, replay, backoff. An operational kill-switch and
    /// a deterministic way to exercise the recovery machinery without
    /// the `fault-inject` feature.
    pub fn quarantine(&mut self, id: TenantId) -> Result<(), ServeError> {
        let slot = self.slot_of(id).ok_or(ServeError::UnknownTenant(id))?;
        self.batch
            .as_mut()
            .expect("live tenant implies batch")
            .quarantine(slot);
        Ok(())
    }

    /// Tenant `id`'s position in the supervision state machine; `None`
    /// for handles this manager never issued or whose tenant retired.
    pub fn status(&self, id: TenantId) -> Option<TenantStatus> {
        if let Some(reason) = self.evicted.get(&id) {
            return Some(TenantStatus::Evicted(reason.clone()));
        }
        let t = self.tenants.get(&id)?;
        let batch = self.batch.as_ref()?;
        if let Some(e) = batch.error(t.slot) {
            return Some(TenantStatus::Faulted(e));
        }
        if let Some(until_round) = t.backoff_until {
            return Some(TenantStatus::BackingOff { until_round });
        }
        if t.budget.is_some_and(|b| batch.steps(t.slot) >= b) {
            return Some(TenantStatus::AtBudget);
        }
        Some(TenantStatus::Running)
    }

    /// Tenant `id`'s completed-step count, if live.
    pub fn steps(&self, id: TenantId) -> Option<usize> {
        let t = self.tenants.get(&id)?;
        Some(self.batch.as_ref()?.steps(t.slot))
    }

    /// Zero-copy view of tenant `id`'s current semantic field, if live.
    pub fn field(&self, id: TenantId) -> Option<FieldView<'_, R>> {
        let t = self.tenants.get(&id)?;
        Some(self.batch.as_ref()?.field(t.slot))
    }

    /// Materialize tenant `id`'s current semantic field, if live.
    pub fn to_grid(&self, id: TenantId) -> Option<Grid<R>> {
        Some(self.field(id)?.to_grid())
    }

    /// Tenant `id`'s numeric-health record, if live.
    pub fn health(&self, id: TenantId) -> Option<Health> {
        let t = self.tenants.get(&id)?;
        Some(*self.batch.as_ref()?.health(t.slot))
    }

    /// Per-round step-latency histogram recorded by
    /// [`SessionManager::step`] / [`SessionManager::run_until`].
    pub fn latency(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Forget the recorded latency samples (e.g. between bench phases).
    pub fn reset_latency(&mut self) {
        self.hist.clear();
    }

    /// Drain the accumulated [`ServeEvent`]s, oldest first.
    pub fn drain_events(&mut self) -> Vec<ServeEvent> {
        std::mem::take(&mut self.events)
    }

    /// One supervised round:
    ///
    /// 1. **Recover or evict** every faulted member (fault verdicts
    ///    come from the *previous* round's step or solo activity):
    ///    restore the newest snapshot that passes validation (ring,
    ///    then the admission-time snapshot), solo-replay to the
    ///    pre-fault step count, park the member for its escalating
    ///    backoff — or evict when the retry budget is spent or no
    ///    snapshot restores.
    /// 2. **Auto-checkpoint** every healthy member that advanced
    ///    `checkpoint_every` steps past its last snapshot (ring slots
    ///    are reused once warm: zero steady-state allocations).
    /// 3. **Gate**: park members at budget or in backoff on the SKIP
    ///    path, wake the rest.
    /// 4. **Step** all active members through the one guided queue,
    ///    folding the step's wall time into the latency histogram.
    ///
    /// The round counter advances even when no member stepped, so
    /// backoffs expire without external help.
    pub fn step(&mut self) -> StepReport {
        let mut report = StepReport {
            round: self.round + 1,
            ..StepReport::default()
        };
        self.recover_or_evict_faulted(&mut report);
        self.take_due_checkpoints();
        self.apply_gates(&mut report);
        if report.active > 0 {
            let batch = self.batch.as_mut().expect("active members imply batch");
            let t0 = Instant::now();
            batch.step_all();
            self.hist.record(t0.elapsed());
        }
        self.round += 1;
        report
    }

    /// Supervised rounds until the wall clock reaches `deadline`. The
    /// deadline is checked between rounds (a round in flight completes;
    /// see [`Batch::step_all_until`] for why aborting mid-step is not
    /// an option). Returns early when no member could ever step again
    /// without external action — every tenant gone, or every survivor
    /// parked at a budget with no backoff pending.
    pub fn run_until(&mut self, deadline: Instant) -> RunReport {
        let mut report = RunReport::default();
        while Instant::now() < deadline && !self.slots.is_empty() {
            let r = self.step();
            report.rounds += 1;
            report.recovered += r.recovered;
            report.evicted += r.evicted;
            if r.active == 0 && r.backing_off == 0 {
                break;
            }
        }
        report
    }

    /// Drop the member in `slot` and re-point the tenant displaced by
    /// the swap-removal. Returns the removed tenant's handle.
    fn remove_slot(&mut self, slot: usize) -> TenantId {
        self.batch
            .as_mut()
            .expect("live slot implies batch")
            .retire(slot);
        let id = self.slots.swap_remove(slot);
        self.tenants.remove(&id);
        if let Some(&moved) = self.slots.get(slot) {
            self.tenants
                .get_mut(&moved)
                .expect("slot table mirrors tenant table")
                .slot = slot;
        }
        self.live_cells -= self.cells_per_session;
        id
    }

    /// Phase 1: walk the slot table and put every faulted member back
    /// on its feet (or out the door). Index-walk instead of iterator:
    /// an eviction swap-removes into the current slot, which must then
    /// be re-examined.
    fn recover_or_evict_faulted(&mut self, report: &mut StepReport) {
        let mut slot = 0;
        while slot < self.slots.len() {
            let fault = self
                .batch
                .as_ref()
                .expect("live slots imply batch")
                .error(slot);
            match fault {
                None => slot += 1,
                Some(fault) => {
                    let id = self.slots[slot];
                    if !self.recover_or_evict(id, slot, fault, report) {
                        slot += 1;
                    }
                }
            }
        }
    }

    /// Recover one faulted tenant, or evict it. Returns `true` when the
    /// tenant was evicted (its slot now holds a different member).
    fn recover_or_evict(
        &mut self,
        id: TenantId,
        slot: usize,
        fault: SessionError,
        report: &mut StepReport,
    ) -> bool {
        let heal_after = self.policy.heal_after;
        let round = self.round;
        {
            let t = self.tenants.get_mut(&id).expect("slot table in sync");
            if t.recoveries > 0 && round.saturating_sub(t.last_fault_round) >= heal_after {
                t.recoveries = 0;
            }
            t.last_fault_round = round;
        }
        let spent = self.tenants[&id].recoveries;
        let attempt = spent + 1;
        if attempt > self.policy.max_recoveries {
            let reason = EvictionReason::RecoveryBudgetExhausted {
                attempts: spent,
                last_fault: fault,
            };
            self.evict(id, slot, reason);
            report.evicted += 1;
            return true;
        }

        // Restore the newest snapshot that passes validation. Disjoint
        // field borrows: the ring lives in `tenants`, the buffers in
        // `batch`.
        let t = self.tenants.get(&id).expect("slot table in sync");
        let batch = self.batch.as_mut().expect("live slots imply batch");
        let target = batch.steps(slot);
        let mut restored = None;
        let mut last_error = None;
        for idx in t.ring_newest_first() {
            match batch.restore(slot, &t.ring[idx]) {
                Ok(()) => {
                    restored = Some(t.ring[idx].steps());
                    break;
                }
                Err(e) => last_error = Some(e),
            }
        }
        if restored.is_none() {
            match batch.restore(slot, &t.genesis) {
                Ok(()) => restored = Some(t.genesis.steps()),
                Err(e) => last_error = Some(e),
            }
        }
        let Some(from_step) = restored else {
            let reason = EvictionReason::NoViableCheckpoint {
                last_error: last_error.expect("the genesis restore was tried"),
            };
            self.evict(id, slot, reason);
            report.evicted += 1;
            return true;
        };

        // Solo catch-up to the pre-fault step count — deterministic
        // replay, so a transient fault leaves the tenant bit-identical
        // to its unfaulted twin. A *persistent* fault re-trips
        // quarantine during the replay; stop there and let the next
        // round escalate the attempt counter toward eviction.
        let replay = target - from_step;
        {
            let mut member = batch.session_mut(slot);
            for _ in 0..replay {
                member.step();
                if member.health().is_quarantined() {
                    break;
                }
            }
        }

        let sit_out = (self.policy.backoff_base << (attempt - 1).min(32))
            .min(self.policy.backoff_cap)
            .max(1);
        let t = self.tenants.get_mut(&id).expect("slot table in sync");
        t.recoveries = attempt;
        t.backoff_until = Some(round + sit_out);
        self.events.push(ServeEvent::Recovered {
            tenant: id,
            fault,
            restored_to_step: from_step,
            replayed: replay,
            attempt,
            sit_out_rounds: sit_out,
        });
        report.recovered += 1;
        false
    }

    fn evict(&mut self, id: TenantId, slot: usize, reason: EvictionReason) {
        self.remove_slot(slot);
        self.evicted.insert(id, reason.clone());
        self.events.push(ServeEvent::Evicted { tenant: id, reason });
    }

    /// Phase 2: ring-snapshot every healthy member that advanced far
    /// enough since its last snapshot.
    fn take_due_checkpoints(&mut self) {
        let Some(batch) = self.batch.as_mut() else {
            return;
        };
        let every = self.policy.checkpoint_every.max(1);
        let cap = self.policy.checkpoint_ring;
        for t in self.tenants.values_mut() {
            let steps = batch.steps(t.slot);
            if cap == 0 || batch.error(t.slot).is_some() || steps < t.last_ck_step + every {
                continue;
            }
            if t.ring.len() < cap {
                let mut ck = Checkpoint::new();
                batch.checkpoint_into(t.slot, &mut ck);
                t.ring.push(ck);
                t.next_ck = t.ring.len() % cap;
            } else {
                batch.checkpoint_into(t.slot, &mut t.ring[t.next_ck]);
                t.next_ck = (t.next_ck + 1) % t.ring.len();
            }
            t.last_ck_step = steps;
        }
    }

    /// Phase 3: publish this round's SKIP set from budgets and
    /// backoffs, expiring due backoffs along the way.
    fn apply_gates(&mut self, report: &mut StepReport) {
        let Some(batch) = self.batch.as_mut() else {
            return;
        };
        let round = self.round;
        for t in self.tenants.values_mut() {
            if t.backoff_until.is_some_and(|until| round >= until) {
                t.backoff_until = None;
            }
            let at_budget = t.budget.is_some_and(|b| batch.steps(t.slot) >= b);
            if at_budget || t.backoff_until.is_some() {
                batch.pause(t.slot);
            } else {
                batch.resume(t.slot);
            }
            if batch.is_active(t.slot) {
                report.active += 1;
            } else if t.backoff_until.is_some() {
                report.backing_off += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparstencil::plan::{compile, Options};
    use sparstencil::StencilKernel;

    fn plan(shape: [usize; 3]) -> CompiledStencil<f32> {
        let k = StencilKernel::heat2d();
        compile::<f32>(&k, shape, &Options::default()).unwrap()
    }

    fn input(seed: usize, shape: [usize; 3]) -> Grid<f32> {
        Grid::<f32>::smooth_random(seed, shape)
    }

    #[test]
    fn admission_caps_are_typed() {
        let shape = [1, 24, 24];
        let plan = plan(shape);
        let policy = ServePolicy {
            max_sessions: 2,
            ..ServePolicy::default()
        };
        let mut mgr = SessionManager::new(&plan, policy);
        let a = mgr.admit(&input(1, shape)).unwrap();
        let _b = mgr.admit(&input(2, shape)).unwrap();
        let err = mgr.admit(&input(3, shape)).unwrap_err();
        assert_eq!(
            err,
            ServeError::Rejected(RejectReason::SessionCapacity { limit: 2, live: 2 })
        );
        // Retiring frees the slot.
        mgr.retire(a).unwrap();
        assert!(mgr.admit(&input(3, shape)).is_ok());

        // Cell capacity: room for exactly one 24×24 session.
        let policy = ServePolicy {
            max_total_cells: 600,
            ..ServePolicy::default()
        };
        let mut mgr = SessionManager::new(&plan, policy);
        mgr.admit(&input(1, shape)).unwrap();
        assert_eq!(
            mgr.admit(&input(2, shape)).unwrap_err(),
            ServeError::Rejected(RejectReason::CellCapacity {
                limit: 600,
                live: 576,
                requested: 576
            })
        );
    }

    #[test]
    fn unknown_and_stale_handles_answer_typed() {
        let shape = [1, 24, 24];
        let plan = plan(shape);
        let mut mgr = SessionManager::new(&plan, ServePolicy::default());
        let a = mgr.admit(&input(1, shape)).unwrap();
        mgr.retire(a).unwrap();
        assert_eq!(mgr.retire(a), Err(ServeError::UnknownTenant(a)));
        assert_eq!(mgr.status(a), None, "retired handles are gone");
        assert_eq!(mgr.steps(a), None);
        // Handles are never reused.
        let b = mgr.admit(&input(2, shape)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn ring_rotation_is_newest_first() {
        let t: Tenant<f32> = Tenant {
            slot: 0,
            budget: None,
            ring: vec![Checkpoint::new(), Checkpoint::new(), Checkpoint::new()],
            next_ck: 1, // most recent write was index 0
            genesis: Checkpoint::new(),
            last_ck_step: 0,
            recoveries: 0,
            backoff_until: None,
            last_fault_round: 0,
        };
        assert_eq!(t.ring_newest_first().collect::<Vec<_>>(), vec![0, 2, 1]);
    }

    #[test]
    fn displays_are_human_readable() {
        let r = RejectReason::SessionCapacity { limit: 4, live: 4 };
        assert!(format!("{r}").contains("limit 4"));
        let e = ServeError::UnknownTenant(TenantId(7));
        assert!(format!("{e}").contains("t7"));
        let ev = EvictionReason::RecoveryBudgetExhausted {
            attempts: 3,
            last_fault: SessionError::Poisoned { session: 1 },
        };
        assert!(format!("{ev}").contains("3 attempts"));
    }
}
