//! # sparstencil-zoo — 79 real-world stencil kernels across 9 domains
//!
//! The paper's Figure 10 evaluates SparStencil on "79 real-world stencil
//! kernels spanning 9 application domains" (PDE solvers, fluid dynamics,
//! lattice Boltzmann methods, phase-field models, geophysical
//! simulations, and more). The authors' exact kernel list is not
//! published; this zoo reconstructs an equivalent population spanning the
//! same domains and the same structural axes — dimensionality (1D/2D/3D),
//! pattern (star / box / asymmetric / diagonal), radius (1–4), and
//! anisotropy — with weights taken from standard finite-difference,
//! lattice-Boltzmann and image-processing operators.
//!
//! Every entry is a plain [`StencilKernel`] the SparStencil pipeline (and
//! every baseline) can compile unchanged.

#![warn(missing_docs)]

use sparstencil::stencil::StencilKernel;

/// The nine application domains of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// Elliptic/parabolic PDE solvers (Jacobi, Poisson, biharmonic).
    PdeSolvers,
    /// Computational fluid dynamics (advection, diffusion, vorticity).
    FluidDynamics,
    /// Lattice Boltzmann methods (DdQq neighborhoods).
    LatticeBoltzmann,
    /// Phase-field models (Allen–Cahn, Cahn–Hilliard, grain growth).
    PhaseField,
    /// Geophysics / seismic imaging (acoustic/elastic wave FD schemes).
    Geophysics,
    /// Weather & climate (shallow water, advection, boundary layers).
    WeatherClimate,
    /// Image processing (blur, gradient, sharpen, emboss).
    ImageProcessing,
    /// Computational electromagnetics (FDTD, Helmholtz, PML).
    Electromagnetics,
    /// Structural mechanics (elasticity, plate bending, thermal stress).
    StructuralMechanics,
}

impl Domain {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Domain::PdeSolvers => "PDE",
            Domain::FluidDynamics => "CFD",
            Domain::LatticeBoltzmann => "LBM",
            Domain::PhaseField => "Phase",
            Domain::Geophysics => "Seismic",
            Domain::WeatherClimate => "Climate",
            Domain::ImageProcessing => "Image",
            Domain::Electromagnetics => "EM",
            Domain::StructuralMechanics => "Solid",
        }
    }

    /// All nine domains.
    pub fn all() -> [Domain; 9] {
        [
            Domain::PdeSolvers,
            Domain::FluidDynamics,
            Domain::LatticeBoltzmann,
            Domain::PhaseField,
            Domain::Geophysics,
            Domain::WeatherClimate,
            Domain::ImageProcessing,
            Domain::Electromagnetics,
            Domain::StructuralMechanics,
        ]
    }
}

/// One zoo entry.
pub struct ZooEntry {
    /// Kernel name.
    pub name: &'static str,
    /// Application domain.
    pub domain: Domain,
    /// Kernel constructor.
    pub build: fn() -> StencilKernel,
    /// Per-entry problem size `[nz, ny, nx]` — the grid the zoo bench
    /// and equivalence sweeps run this kernel at. Scaled to the
    /// kernel's extent (see [`default_shape`]) so every entry keeps a
    /// comparable interior fraction and a valid staging window.
    pub shape: [usize; 3],
}

impl ZooEntry {
    /// Build the kernel, renamed to the zoo entry name.
    pub fn kernel(&self) -> StencilKernel {
        (self.build)().with_name(self.name)
    }

    /// Cells of the entry's problem size.
    pub fn cells(&self) -> usize {
        self.shape.iter().product()
    }
}

/// The per-entry problem size for a kernel: dimensionality picks the
/// base grid, the kernel extent is added per axis so radius-4 kernels
/// keep the same interior fraction as radius-1 ones (and the 3D staging
/// ring always fits the plane count).
pub fn default_shape(kernel: &StencilKernel) -> [usize; 3] {
    let e = kernel.extent();
    match kernel.dims() {
        1 => [1, 1, 2048 + e[2]],
        2 => [1, 64 + e[1], 64 + e[2]],
        _ => [12 + e[0], 24 + e[1], 24 + e[2]],
    }
}

// --------------------------- weight helpers ---------------------------

/// 2D star from per-ring coefficients: `center`, then `ring[r-1]` applied
/// to the four axis neighbors at distance `r`.
fn star2(center: f64, rings: &[f64]) -> StencilKernel {
    let radius = rings.len();
    let e = 2 * radius + 1;
    let c = radius;
    let mut w = vec![0.0; e * e];
    w[c * e + c] = center;
    for (i, &v) in rings.iter().enumerate() {
        let r = i + 1;
        w[c * e + (c - r)] = v;
        w[c * e + (c + r)] = v;
        w[(c - r) * e + c] = v;
        w[(c + r) * e + c] = v;
    }
    StencilKernel::new("star2", 2, [1, e, e], w)
}

/// Anisotropic 2D star (distinct x / y coefficients).
fn star2_aniso(center: f64, x_rings: &[f64], y_rings: &[f64]) -> StencilKernel {
    assert_eq!(x_rings.len(), y_rings.len());
    let radius = x_rings.len();
    let e = 2 * radius + 1;
    let c = radius;
    let mut w = vec![0.0; e * e];
    w[c * e + c] = center;
    for i in 0..radius {
        let r = i + 1;
        w[c * e + (c - r)] = x_rings[i];
        w[c * e + (c + r)] = x_rings[i];
        w[(c - r) * e + c] = y_rings[i];
        w[(c + r) * e + c] = y_rings[i];
    }
    StencilKernel::new("star2a", 2, [1, e, e], w)
}

/// 2D box from an explicit `e×e` weight table.
fn box2(e: usize, w: Vec<f64>) -> StencilKernel {
    StencilKernel::new("box2", 2, [1, e, e], w)
}

/// 1D kernel from explicit weights.
fn line1(w: Vec<f64>) -> StencilKernel {
    let e = w.len();
    StencilKernel::new("line1", 1, [1, 1, e], w)
}

/// 3D star from per-ring coefficients (six neighbors per ring).
fn star3(center: f64, rings: &[f64]) -> StencilKernel {
    let radius = rings.len();
    let e = 2 * radius + 1;
    let c = radius;
    let idx = |z: usize, y: usize, x: usize| (z * e + y) * e + x;
    let mut w = vec![0.0; e * e * e];
    w[idx(c, c, c)] = center;
    for (i, &v) in rings.iter().enumerate() {
        let r = i + 1;
        for (z, y, x) in [
            (c - r, c, c),
            (c + r, c, c),
            (c, c - r, c),
            (c, c + r, c),
            (c, c, c - r),
            (c, c, c + r),
        ] {
            w[idx(z, y, x)] = v;
        }
    }
    StencilKernel::new("star3", 3, [e, e, e], w)
}

/// 3D radius-1 kernel from center/face/edge/corner weights (the LBM DdQq
/// and compact-FD shapes).
fn cube1(center: f64, face: f64, edge: f64, corner: f64) -> StencilKernel {
    let mut w = vec![0.0; 27];
    for dz in 0..3usize {
        for dy in 0..3usize {
            for dx in 0..3usize {
                let dist = usize::from(dz != 1) + usize::from(dy != 1) + usize::from(dx != 1);
                w[(dz * 3 + dy) * 3 + dx] = match dist {
                    0 => center,
                    1 => face,
                    2 => edge,
                    _ => corner,
                };
            }
        }
    }
    StencilKernel::new("cube1", 3, [3, 3, 3], w)
}

/// 2D 9-point compact pattern (center / edge / corner weights).
fn compact9(center: f64, edge: f64, corner: f64) -> StencilKernel {
    #[rustfmt::skip]
    let w = vec![
        corner, edge, corner,
        edge, center, edge,
        corner, edge, corner,
    ];
    box2(3, w)
}

/// Classic 4th-order central second-derivative coefficients.
const FD4: [f64; 2] = [4.0 / 3.0, -1.0 / 12.0];
/// 6th-order central second-derivative coefficients.
const FD6: [f64; 3] = [1.5, -0.15, 1.0 / 90.0];
/// 8th-order central second-derivative coefficients.
const FD8: [f64; 4] = [8.0 / 5.0, -0.2, 8.0 / 315.0, -1.0 / 560.0];

// ----------------------------- the registry ---------------------------

/// The full 79-kernel registry.
pub fn all() -> Vec<ZooEntry> {
    use Domain::*;
    let mut v: Vec<ZooEntry> = Vec::with_capacity(79);
    let mut push = |name: &'static str, domain: Domain, build: fn() -> StencilKernel| {
        v.push(ZooEntry {
            name,
            domain,
            build,
            shape: default_shape(&build()),
        })
    };

    // --- PDE solvers (10) ---
    push("jacobi-1d-3p", PdeSolvers, || line1(vec![0.25, 0.5, 0.25]));
    push("jacobi-2d-5p", PdeSolvers, || star2(0.5, &[0.125]));
    push("jacobi-3d-7p", PdeSolvers, || star3(0.4, &[0.1]));
    push("poisson-2d-5p", PdeSolvers, || star2(-2.0, &[0.5]));
    push("poisson-2d-9p", PdeSolvers, || {
        compact9(-10.0 / 3.0, 2.0 / 3.0, 1.0 / 6.0)
    });
    push("laplace-2d-fd4", PdeSolvers, || {
        star2(-5.0, &[FD4[0], FD4[1]])
    });
    push("laplace-3d-fd4", PdeSolvers, || {
        star3(-7.5, &[FD4[0], FD4[1]])
    });
    push("biharmonic-2d-13p", PdeSolvers, || {
        star2(20.0, &[-8.0, 1.0])
    });
    push("helmholtz-2d-5p", PdeSolvers, || star2(-3.9, &[1.0]));
    push("jacobi-1d-fd8", PdeSolvers, || {
        line1(vec![
            FD8[3],
            FD8[2],
            FD8[1],
            FD8[0],
            -2.0 * (FD8[0] + FD8[1] + FD8[2] + FD8[3]),
            FD8[0],
            FD8[1],
            FD8[2],
            FD8[3],
        ])
    });

    // --- Fluid dynamics (9) ---
    push("diffusion-2d-5p", FluidDynamics, || star2(0.6, &[0.1]));
    push("advection-1d-up3", FluidDynamics, || {
        // 3rd-order upwind: asymmetric support.
        line1(vec![1.0 / 6.0, -1.0, 0.5, 1.0 / 3.0, 0.0])
    });
    push("advdiff-2d-9p", FluidDynamics, || compact9(0.4, 0.1, 0.05));
    push("burgers-1d-5p", FluidDynamics, || {
        line1(vec![-0.05, 0.3, 0.5, 0.3, -0.05])
    });
    push("vorticity-2d-13p", FluidDynamics, || {
        star2(0.5, &[0.1, 0.025])
    });
    push("ns-pressure-2d-5p", FluidDynamics, || star2(-4.0, &[1.0]));
    push("smagorinsky-2d-9p", FluidDynamics, || {
        compact9(0.5, 0.08, 0.045)
    });
    push("channel-3d-7p", FluidDynamics, || star3(0.52, &[0.08]));
    push("jet-2d-25p", FluidDynamics, || {
        box2(
            5,
            (0..25)
                .map(|i| 1.0 / 25.0 + (i as f64 - 12.0) * 1e-3)
                .collect(),
        )
    });

    // --- Lattice Boltzmann (8) ---
    push("lbm-d2q5", LatticeBoltzmann, || {
        star2(1.0 / 3.0, &[1.0 / 6.0])
    });
    push("lbm-d2q9", LatticeBoltzmann, || {
        compact9(4.0 / 9.0, 1.0 / 9.0, 1.0 / 36.0)
    });
    push("lbm-d3q7", LatticeBoltzmann, || star3(0.25, &[0.125]));
    push("lbm-d3q15", LatticeBoltzmann, || {
        cube1(2.0 / 9.0, 1.0 / 9.0, 0.0, 1.0 / 72.0)
    });
    push("lbm-d3q19", LatticeBoltzmann, || {
        cube1(1.0 / 3.0, 1.0 / 18.0, 1.0 / 36.0, 0.0)
    });
    push("lbm-d3q27", LatticeBoltzmann, || {
        cube1(8.0 / 27.0, 2.0 / 27.0, 1.0 / 54.0, 1.0 / 216.0)
    });
    push("lbm-d2q9-mrt", LatticeBoltzmann, || {
        compact9(0.5, 0.075, 0.05)
    });
    push("lbm-thermal-d2q5", LatticeBoltzmann, || star2(0.4, &[0.15]));

    // --- Phase field (8) ---
    push("allen-cahn-2d-5p", PhaseField, || star2(0.52, &[0.12]));
    push("allen-cahn-3d-7p", PhaseField, || star3(0.46, &[0.09]));
    push("cahn-hilliard-2d-13p", PhaseField, || {
        star2(19.0, &[-7.5, 0.875])
    });
    push("cahn-hilliard-2d-25p", PhaseField, || {
        box2(5, {
            let mut w = vec![0.005; 25];
            w[12] = 0.88;
            for i in [7, 11, 13, 17] {
                w[i] = 0.02;
            }
            w
        })
    });
    push("grain-growth-2d-9p", PhaseField, || {
        compact9(0.6, 0.075, 0.025)
    });
    push("dendrite-2d-13p", PhaseField, || star2(0.44, &[0.12, 0.02]));
    push("spinodal-3d-19p", PhaseField, || {
        cube1(0.4, 0.06, 0.01, 0.0)
    });
    push("phase-aniso-2d-9p", PhaseField, || {
        star2_aniso(0.5, &[0.2, 0.0], &[0.05, 0.0])
    });

    // --- Geophysics / seismic (10) ---
    push("acoustic-2d-fd4", Geophysics, || {
        star2(-5.0, &[FD4[0], FD4[1]])
    });
    push("acoustic-2d-fd8", Geophysics, || {
        star2(-2.0 * 2.0 * (FD8[0] + FD8[1] + FD8[2] + FD8[3]), &FD8)
    });
    push("acoustic-3d-fd4", Geophysics, || {
        star3(-7.5, &[FD4[0], FD4[1]])
    });
    push("acoustic-3d-fd6", Geophysics, || {
        star3(-3.0 * 2.0 * (FD6[0] + FD6[1] + FD6[2]), &FD6)
    });
    push("wave-1d-fd8", Geophysics, || {
        line1(vec![
            FD8[3],
            FD8[2],
            FD8[1],
            FD8[0],
            -2.0 * (FD8[0] + FD8[1] + FD8[2] + FD8[3]),
            FD8[0],
            FD8[1],
            FD8[2],
            FD8[3],
        ])
    });
    push("elastic-2d-9p", Geophysics, || compact9(-3.0, 0.6, 0.15));
    push("rtm-2d-fd6", Geophysics, || {
        star2(-2.0 * 2.0 * (FD6[0] + FD6[1] + FD6[2]), &FD6)
    });
    push("tti-2d-25p", Geophysics, || {
        box2(5, {
            let mut w = vec![0.01; 25];
            w[12] = -0.4;
            w[2] = 0.08;
            w[22] = 0.08;
            w[10] = 0.08;
            w[14] = 0.08;
            w
        })
    });
    push("vsp-1d-fd4", Geophysics, || {
        line1(vec![
            FD4[1],
            FD4[0],
            -2.0 * (FD4[0] + FD4[1]),
            FD4[0],
            FD4[1],
        ])
    });
    push("overthrust-3d-7p", Geophysics, || star3(-6.0, &[1.0]));

    // --- Weather & climate (8) ---
    push("shallow-water-2d-5p", WeatherClimate, || {
        star2(0.56, &[0.11])
    });
    push("shallow-water-2d-9p", WeatherClimate, || {
        compact9(0.44, 0.11, 0.03)
    });
    push("barotropic-2d-13p", WeatherClimate, || {
        star2(0.4, &[0.13, 0.02])
    });
    push("advection-3d-7p", WeatherClimate, || star3(0.49, &[0.085]));
    push("coriolis-2d-9p", WeatherClimate, || {
        // Rotationally asymmetric weights.
        box2(3, vec![0.02, 0.1, 0.05, 0.12, 0.42, 0.08, 0.05, 0.1, 0.06])
    });
    push("radiation-1d-5p", WeatherClimate, || {
        line1(vec![0.05, 0.2, 0.5, 0.2, 0.05])
    });
    push("boundary-layer-3d-7p", WeatherClimate, || {
        // Strong vertical anisotropy (z-diffusion dominates).
        let e = 3usize;
        let idx = |z: usize, y: usize, x: usize| (z * e + y) * e + x;
        let base = star3(0.4, &[0.05]);
        let mut w = base.weights().to_vec();
        w[idx(0, 1, 1)] = 0.2;
        w[idx(2, 1, 1)] = 0.2;
        StencilKernel::new("boundary-layer-3d-7p", 3, [3, 3, 3], w)
    });
    push("monsoon-2d-25p", WeatherClimate, || {
        box2(
            5,
            (0..25).map(|i| if i == 12 { 0.4 } else { 0.025 }).collect(),
        )
    });

    // --- Image processing (10) ---
    push("gaussian-3x3", ImageProcessing, || {
        compact9(0.25, 0.125, 0.0625)
    });
    push("gaussian-5x5", ImageProcessing, || {
        let g = [1.0, 4.0, 6.0, 4.0, 1.0];
        box2(5, (0..25).map(|i| g[i / 5] * g[i % 5] / 256.0).collect())
    });
    push("sobel-x-3x3", ImageProcessing, || {
        box2(3, vec![-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0])
    });
    push("sobel-y-3x3", ImageProcessing, || {
        box2(3, vec![-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0])
    });
    push("laplacian-3x3", ImageProcessing, || {
        compact9(-4.0, 1.0, 0.0)
    });
    push("sharpen-3x3", ImageProcessing, || compact9(5.0, -1.0, 0.0));
    push("emboss-3x3", ImageProcessing, || {
        box2(3, vec![-2.0, -1.0, 0.0, -1.0, 1.0, 1.0, 0.0, 1.0, 2.0])
    });
    push("motion-blur-5x5", ImageProcessing, || {
        // Diagonal-only support: a pattern far from any star/box.
        box2(
            5,
            (0..25)
                .map(|i| if i / 5 == i % 5 { 0.2 } else { 0.0 })
                .collect(),
        )
    });
    push("box-blur-7x7", ImageProcessing, || {
        box2(7, vec![1.0 / 49.0; 49])
    });
    push("unsharp-5x5", ImageProcessing, || {
        let g = [1.0, 4.0, 6.0, 4.0, 1.0];
        box2(
            5,
            (0..25)
                .map(|i| {
                    let gauss = g[i / 5] * g[i % 5] / 256.0;
                    if i == 12 {
                        2.0 - gauss
                    } else {
                        -gauss
                    }
                })
                .collect(),
        )
    });

    // --- Electromagnetics (8) ---
    push("fdtd-2d-te-5p", Electromagnetics, || {
        // Curl update touches 4 off-center points asymmetrically.
        box2(3, vec![0.0, -0.5, 0.0, -0.5, 1.0, 0.5, 0.0, 0.5, 0.0])
    });
    push("fdtd-2d-tm-5p", Electromagnetics, || star2(0.8, &[0.05]));
    push("fdtd-3d-7p", Electromagnetics, || star3(0.7, &[0.05]));
    push("mur-abc-1d-3p", Electromagnetics, || {
        line1(vec![0.33, 0.34, 0.33])
    });
    push("pml-2d-9p", Electromagnetics, || compact9(0.52, 0.09, 0.03));
    push("helmholtz-2d-9p", Electromagnetics, || {
        compact9(-2.7, 0.55, 0.125)
    });
    push("waveguide-2d-13p", Electromagnetics, || {
        star2(-4.9, &[FD4[0], FD4[1]])
    });
    push("maxwell-3d-19p", Electromagnetics, || {
        cube1(0.34, 0.07, 0.0175, 0.0)
    });

    // --- Structural mechanics (8) ---
    push("elasticity-2d-9p", StructuralMechanics, || {
        compact9(-2.67, 0.58, 0.085)
    });
    push("elasticity-3d-27p", StructuralMechanics, || {
        cube1(-0.5, 0.1, 0.04, 0.01)
    });
    push("plate-bending-13p", StructuralMechanics, || {
        star2(20.0, &[-8.0, 1.0])
    });
    push("beam-1d-5p", StructuralMechanics, || {
        line1(vec![1.0, -4.0, 6.0, -4.0, 1.0])
    });
    push("thermal-stress-2d-5p", StructuralMechanics, || {
        star2(0.55, &[0.1125])
    });
    push("vonmises-2d-9p", StructuralMechanics, || {
        compact9(0.48, 0.1, 0.03)
    });
    push("crack-2d-25p", StructuralMechanics, || {
        box2(5, {
            let mut w = vec![0.0; 25];
            w[12] = 0.5;
            for i in [6, 8, 16, 18, 2, 10, 14, 22] {
                w[i] = 0.0625;
            }
            w
        })
    });
    push("shell-3d-19p", StructuralMechanics, || {
        cube1(0.3, 0.08, 0.0275, 0.0)
    });

    assert_eq!(v.len(), 79, "registry must hold exactly 79 kernels");
    v
}

/// Entries of one domain. Never empty: every domain of [`Domain::all`]
/// holds at least eight kernels (pinned by the registry tests), so an
/// empty result can only mean the registry itself regressed.
pub fn by_domain(domain: Domain) -> Vec<ZooEntry> {
    let v: Vec<ZooEntry> = all().into_iter().filter(|e| e.domain == domain).collect();
    debug_assert!(
        !v.is_empty(),
        "domain {} has no registry entries",
        domain.name()
    );
    v
}

/// Find a kernel by name. Lookup is forgiving: surrounding whitespace
/// is trimmed and ASCII case is ignored, so `" LBM-D2Q9 "` finds
/// `lbm-d2q9` — registry names are the canonical lower-case forms.
pub fn find(name: &str) -> Option<ZooEntry> {
    let want = name.trim();
    all()
        .into_iter()
        .find(|e| e.name.eq_ignore_ascii_case(want))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_79_kernels_across_9_domains() {
        let zoo = all();
        assert_eq!(zoo.len(), 79);
        let domains: HashSet<_> = zoo.iter().map(|e| e.domain).collect();
        assert_eq!(domains.len(), 9);
        for d in Domain::all() {
            assert!(
                by_domain(d).len() >= 8,
                "{} has {} kernels",
                d.name(),
                by_domain(d).len()
            );
        }
    }

    #[test]
    fn names_unique_and_kernels_buildable() {
        let zoo = all();
        let names: HashSet<_> = zoo.iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 79, "duplicate kernel names");
        for e in &zoo {
            let k = e.kernel();
            assert!(k.points() > 0, "{} has no points", e.name);
            assert_eq!(k.name(), e.name);
            let [ez, ey, ex] = k.extent();
            assert!(ez * ey * ex >= k.points());
        }
    }

    #[test]
    fn structural_diversity() {
        let zoo = all();
        let kernels: Vec<_> = zoo.iter().map(|e| e.kernel()).collect();
        assert!(kernels.iter().any(|k| k.dims() == 1));
        assert!(kernels.iter().any(|k| k.dims() == 2));
        assert!(kernels.iter().any(|k| k.dims() == 3));
        // Sparse (star-like) and dense (box-like) bounding boxes.
        assert!(kernels.iter().any(|k| k.bounding_box_sparsity() > 0.5));
        assert!(kernels.iter().any(|k| k.bounding_box_sparsity() == 0.0));
        // Radii 1 through ≥3.
        assert!(kernels.iter().any(|k| k.extent()[2] >= 7));
        let pts: Vec<_> = kernels.iter().map(|k| k.points()).collect();
        assert!(pts.iter().min().unwrap() <= &3);
        assert!(pts.iter().max().unwrap() >= &27);
    }

    #[test]
    fn find_by_name() {
        assert!(find("lbm-d2q9").is_some());
        assert!(find("acoustic-2d-fd8").is_some());
        assert!(find("nonexistent").is_none());
        assert_eq!(
            find("gaussian-3x3").unwrap().domain,
            Domain::ImageProcessing
        );
    }

    #[test]
    fn find_trims_and_case_folds() {
        // CLI/CI callers hand in user-typed names; lookup must not be
        // whitespace- or case-sensitive.
        assert_eq!(find("  lbm-d2q9\t").unwrap().name, "lbm-d2q9");
        assert_eq!(find("LBM-D2Q9").unwrap().name, "lbm-d2q9");
        assert_eq!(find(" Acoustic-2D-FD8 ").unwrap().name, "acoustic-2d-fd8");
        // Folding never invents matches.
        assert!(find("lbm d2q9").is_none());
        assert!(find("").is_none());
    }

    #[test]
    fn every_domain_nonempty() {
        for d in Domain::all() {
            assert!(!by_domain(d).is_empty(), "{} is empty", d.name());
        }
    }

    #[test]
    fn per_entry_shapes_fit_their_kernels() {
        // The 79-kernel invariant against the per-entry problem sizes:
        // every shape admits the kernel (extent fits per axis), keeps a
        // majority-interior valid region, and matches the documented
        // sizing rule.
        let zoo = all();
        assert_eq!(zoo.len(), 79);
        for e in &zoo {
            let k = e.kernel();
            let ext = k.extent();
            assert_eq!(e.shape, default_shape(&k), "{}: shape drifted", e.name);
            for (ax, &e_ax) in ext.iter().enumerate() {
                assert!(
                    e.shape[ax] >= e_ax,
                    "{}: axis {ax} smaller than kernel",
                    e.name
                );
            }
            let valid: usize = (0..3).map(|ax| e.shape[ax] - ext[ax] + 1).product();
            assert!(
                valid * 5 > e.cells() * 2,
                "{}: valid region {valid} under 40% of {} cells",
                e.name,
                e.cells()
            );
            assert_eq!(e.cells(), e.shape.iter().product::<usize>());
        }
    }

    #[test]
    fn fd_kernels_sum_near_zero() {
        // Laplacian-type FD kernels must be zero-sum (constant fields are
        // in their null space).
        for name in [
            "acoustic-2d-fd8",
            "acoustic-3d-fd6",
            "wave-1d-fd8",
            "beam-1d-5p",
        ] {
            let k = find(name).unwrap().kernel();
            let s: f64 = k.weights().iter().sum();
            assert!(s.abs() < 1e-9, "{name}: sum {s}");
        }
    }
}
