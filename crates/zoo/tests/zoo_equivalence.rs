//! Zoo-at-scale equivalence: every zoo kernel driven through the
//! session engine at its per-entry benchmark shape must match the
//! retained naive path bit-for-bit (both execute the same compiled
//! plan's fragment MMAs, so this pins the staged executor — staging
//! ring, shared-stage shifts, prefetch, scatter — against the direct
//! per-work-item reference). A representative subset of exotic shapes
//! additionally goes through [`Executor::verify_at`] (tolerance vs the
//! scalar `f64` reference) and the auto-tuner.

use sparstencil::pipeline::Executor;
use sparstencil::plan::Options;
use sparstencil::prelude::{Grid, StencilKernel};
use sparstencil_mat::half::{verify_tolerance, Precision};
use sparstencil_zoo::{all, find};

/// The exotic-stencil subset the CI zoo-equivalence leg pins by name:
/// a radius-4 star, a dense diagonal box, anisotropic 2D/3D patterns,
/// a long-range 1D line, and the compact LBM 9-point.
const REPRESENTATIVES: [&str; 6] = [
    "acoustic-2d-fd8",      // radius-4 star (FD8)
    "motion-blur-5x5",      // diagonal/box
    "phase-aniso-2d-9p",    // anisotropic 2D
    "boundary-layer-3d-7p", // anisotropic 3D
    "wave-1d-fd8",          // long-range 1D
    "lbm-d2q9",             // compact 9-point
];

/// Tolerance scaled by the kernel's ℓ1 mass (zoo weights are not all
/// normalized; FP16 error is relative to operand magnitude).
fn tolerance(kernel: &StencilKernel) -> f64 {
    let mass: f64 = kernel.weights().iter().map(|w| w.abs()).sum();
    verify_tolerance(Precision::Fp16) * mass.max(1.0)
}

#[test]
fn all_79_kernels_engine_matches_naive_bitwise() {
    let entries = all();
    assert_eq!(entries.len(), 79);
    let mut failures = Vec::new();
    for entry in entries {
        let kernel = entry.kernel();
        let shape = entry.shape;
        let exec = match Executor::<f32>::new(&kernel, shape, &Options::default()) {
            Ok(e) => e,
            Err(e) => {
                failures.push(format!("{}: compile error {e}", entry.name));
                continue;
            }
        };
        let input = Grid::<f32>::smooth_random(kernel.dims(), shape);
        let (engine, _) = exec.run(&input, 2);
        let (naive, _) = exec.run_naive(&input, 2);
        if engine.as_slice() != naive.as_slice() {
            failures.push(format!("{}: engine != naive bitwise", entry.name));
        }
    }
    assert!(
        failures.is_empty(),
        "zoo equivalence failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn representative_subset_verifies_against_scalar_reference() {
    for name in REPRESENTATIVES {
        let entry = find(name).unwrap_or_else(|| panic!("zoo entry {name}"));
        let kernel = entry.kernel();
        let exec = Executor::<f32>::new(&kernel, entry.shape, &Options::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let input = Grid::<f32>::smooth_random(kernel.dims(), entry.shape);
        for (iters, err) in exec.verify_at(&input, &[1, 2, 4]) {
            assert!(
                err <= tolerance(&kernel) * iters as f64,
                "{name}: rel err {err:.3e} after {iters} iters exceeds {:.1e}",
                tolerance(&kernel) * iters as f64
            );
        }
    }
}

#[test]
fn representative_subset_tuned_plan_is_bit_identical() {
    for name in REPRESENTATIVES {
        let entry = find(name).unwrap_or_else(|| panic!("zoo entry {name}"));
        let kernel = entry.kernel();
        let opts = Options::default();
        let fixed = Executor::<f32>::new(&kernel, entry.shape, &opts)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let (tuned, choice) = Executor::<f32>::auto(&kernel, entry.shape, &opts)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(choice.fusion, 1, "{name}: default tune must not fuse");
        let input = Grid::<f32>::smooth_random(kernel.dims(), entry.shape);
        let (a, _) = fixed.run(&input, 3);
        let (b, _) = tuned.run(&input, 3);
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "{name}: tuned plan (layout {:?} -> {:?}, policy {:?}) diverged",
            choice.default_layout,
            choice.layout,
            choice.policy
        );
        // The tuned engine must also stay bit-identical to ITS naive
        // path (naive shares the tuned plan's operands).
        let (c, _) = tuned.run_naive(&input, 3);
        assert_eq!(b.as_slice(), c.as_slice(), "{name}: tuned engine != naive");
    }
}
